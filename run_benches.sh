#!/bin/sh
# Runs every bench binary sequentially and records the combined output.
# Table benches also dump machine-readable per-cell results (one
# "<slug>.cells.json" per bench) into bench_results/, keyed by the
# PPN_RESULTS_JSON directory. Each bench additionally runs with
# PPN_PROFILE_JSON set, so a merged observability profile
# ("<bench>.profile.json": kernel counters, per-cell wall times, solver
# iteration stats, reward traces) is archived next to the results JSON.
# PPN_WORKERS controls experiment parallelism (default: hardware thread
# count; 0 forces the serial inline path).
#
# google-benchmark binaries (micro_kernels, serve_bench, stress_bench)
# archive their machine-readable report as "<bench>.json" in
# bench_results/ — the
# input format of tools/bench_diff.py, which compares two archived runs
# and flags throughput regressions.
#
# Regression gate: PPN_BENCH_GATE=1 turns bench_diff.py into a gate.
# Before running a gated bench the previous archived report (the newest
# bench_results/<bench>.json) is kept as
# <bench>.baseline.json; afterwards the two are diffed and the
# script exits non-zero when any benchmark's median regressed by more
# than 10%. PPN_BENCH_REPS (default 3) sets --benchmark_repetitions so
# the reports carry median aggregates (bench_diff compares medians when
# present, making the gate robust to single-run jitter). When the gate
# is on but no previous archive exists, the bench is reported as
# GATE-SKIPPED (there is nothing to compare against) — NOT as a pass.
#
# CAVEAT: archived baselines are only meaningful against candidates from
# the SAME HOST and the same quiet measurement window (same CPU, same
# governor, nothing else loading the machine). A baseline produced on a
# different box, or hours earlier under different load, makes both the
# gate and any speedup claim noise. For A/B comparisons (e.g.
# PPN_SIMD=scalar vs avx2) run the two sides back to back.
#
# Observability: each bench also runs with PPN_STATS_JSONL set, archiving
# a periodic ppn.stats.v1 time-series stream ("<bench>.stats.jsonl") next
# to its profile — inspect live with `ppn_cli top --dir
# bench_results/<bench>.stats.jsonl`. SLO gate: when PPN_HEALTH is set
# (e.g. PPN_HEALTH='exec.cell.seconds.p99<=2s') each bench prints a
# PPN_HEALTH: PASS|FAIL verdict at exit; any FAIL in the combined output
# makes this script exit non-zero.
cd /root/repo
mkdir -p bench_results
PPN_RESULTS_JSON=/root/repo/bench_results
export PPN_RESULTS_JSON
gate_status=0
{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      name=$(basename "$b")
      echo "===== RUNNING $name ====="
      case "$name" in
        micro_kernels|serve_bench|stress_bench)
          baseline=""
          if [ "${PPN_BENCH_GATE:-0}" = "1" ] && \
             [ -f "/root/repo/bench_results/$name.json" ]; then
            cp "/root/repo/bench_results/$name.json" \
               "/root/repo/bench_results/$name.baseline.json"
            baseline="/root/repo/bench_results/$name.baseline.json"
          fi
          PPN_PROFILE_JSON="/root/repo/bench_results/$name.profile.json" \
            PPN_STATS_JSONL="/root/repo/bench_results/$name.stats.jsonl" \
            "$b" \
            --benchmark_repetitions="${PPN_BENCH_REPS:-3}" \
            --benchmark_out="/root/repo/bench_results/$name.json" \
            --benchmark_out_format=json
          if [ -n "$baseline" ]; then
            echo "===== BENCH GATE: $name ====="
            echo "comparing archive pair:"
            echo "  baseline:  $baseline"
            echo "  candidate: /root/repo/bench_results/$name.json"
            echo "(same-host, same-window runs only — see header caveat)"
            if ! python3 /root/repo/tools/bench_diff.py "$baseline" \
                 "/root/repo/bench_results/$name.json"; then
              echo "BENCH_GATE_FAILED: $name"
              gate_status=1
            fi
          elif [ "${PPN_BENCH_GATE:-0}" = "1" ]; then
            echo "BENCH_GATE_SKIPPED: $name (no previous archive to" \
                 "compare against — this is NOT a pass; rerun once" \
                 "bench_results/$name.json is committed)"
          fi
          ;;
        *)
          PPN_PROFILE_JSON="/root/repo/bench_results/$name.profile.json" \
            PPN_STATS_JSONL="/root/repo/bench_results/$name.stats.jsonl" \
            "$b"
          ;;
      esac
      echo ""
    fi
  done
  echo "ALL_BENCHES_DONE"
} > /root/repo/bench_output.txt 2>&1
# SLO gate: a bench dtor cannot change its process exit status, so the
# health verdict is gated here off the grep-stable token each bench
# prints when PPN_HEALTH is set.
if grep -q "PPN_HEALTH: FAIL" /root/repo/bench_output.txt; then
  echo "BENCH_HEALTH_FAILED: a PPN_HEALTH rule was violated (see" \
       "bench_output.txt for the [health] lines)" >&2
  gate_status=1
fi
exit "$gate_status"
