#!/bin/sh
# Runs every bench binary sequentially and records the combined output.
# Table benches also dump machine-readable per-cell results (one
# "<slug>.cells.json" per bench) into bench_results/, keyed by the
# PPN_RESULTS_JSON directory. PPN_WORKERS controls experiment parallelism
# (default: hardware thread count; 0 forces the serial inline path).
cd /root/repo
mkdir -p bench_results
PPN_RESULTS_JSON=/root/repo/bench_results
export PPN_RESULTS_JSON
{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== RUNNING $(basename "$b") ====="
      "$b"
      echo ""
    fi
  done
  echo "ALL_BENCHES_DONE"
} > /root/repo/bench_output.txt 2>&1
