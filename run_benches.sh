#!/bin/sh
# Runs every bench binary sequentially and records the combined output.
cd /root/repo
{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== RUNNING $(basename "$b") ====="
      "$b"
      echo ""
    fi
  done
  echo "ALL_BENCHES_DONE"
} > /root/repo/bench_output.txt 2>&1
