#!/bin/sh
# Runs every bench binary sequentially and records the combined output.
# Table benches also dump machine-readable per-cell results (one
# "<slug>.cells.json" per bench) into bench_results/, keyed by the
# PPN_RESULTS_JSON directory. Each bench additionally runs with
# PPN_PROFILE_JSON set, so a merged observability profile
# ("<bench>.profile.json": kernel counters, per-cell wall times, solver
# iteration stats, reward traces) is archived next to the results JSON.
# PPN_WORKERS controls experiment parallelism (default: hardware thread
# count; 0 forces the serial inline path).
#
# google-benchmark binaries (micro_kernels) additionally archive their
# machine-readable report as "<bench>.json" in bench_results/ — the
# input format of tools/bench_diff, which compares two archived runs
# and flags throughput regressions.
cd /root/repo
mkdir -p bench_results
PPN_RESULTS_JSON=/root/repo/bench_results
export PPN_RESULTS_JSON
{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      name=$(basename "$b")
      echo "===== RUNNING $name ====="
      case "$name" in
        micro_kernels)
          PPN_PROFILE_JSON="/root/repo/bench_results/$name.profile.json" \
            "$b" \
            --benchmark_out="/root/repo/bench_results/$name.json" \
            --benchmark_out_format=json
          ;;
        *)
          PPN_PROFILE_JSON="/root/repo/bench_results/$name.profile.json" "$b"
          ;;
      esac
      echo ""
    fi
  done
  echo "ALL_BENCHES_DONE"
} > /root/repo/bench_output.txt 2>&1
