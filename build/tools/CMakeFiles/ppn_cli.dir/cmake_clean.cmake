file(REMOVE_RECURSE
  "CMakeFiles/ppn_cli.dir/ppn_cli.cc.o"
  "CMakeFiles/ppn_cli.dir/ppn_cli.cc.o.d"
  "ppn_cli"
  "ppn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
