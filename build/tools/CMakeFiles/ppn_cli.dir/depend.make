# Empty dependencies file for ppn_cli.
# This may be replaced when dependencies are built.
