file(REMOVE_RECURSE
  "CMakeFiles/correlation_study.dir/correlation_study.cpp.o"
  "CMakeFiles/correlation_study.dir/correlation_study.cpp.o.d"
  "correlation_study"
  "correlation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
