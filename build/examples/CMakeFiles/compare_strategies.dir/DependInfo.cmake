
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compare_strategies.cpp" "examples/CMakeFiles/compare_strategies.dir/compare_strategies.cpp.o" "gcc" "examples/CMakeFiles/compare_strategies.dir/compare_strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppn/CMakeFiles/ppn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/strategies/CMakeFiles/ppn_strategies.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/backtest/CMakeFiles/ppn_backtest.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/ppn_market.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ppn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/ppn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ppn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
