file(REMOVE_RECURSE
  "CMakeFiles/cost_sensitivity_study.dir/cost_sensitivity_study.cpp.o"
  "CMakeFiles/cost_sensitivity_study.dir/cost_sensitivity_study.cpp.o.d"
  "cost_sensitivity_study"
  "cost_sensitivity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_sensitivity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
