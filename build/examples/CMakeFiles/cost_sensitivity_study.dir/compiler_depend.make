# Empty compiler generated dependencies file for cost_sensitivity_study.
# This may be replaced when dependencies are built.
