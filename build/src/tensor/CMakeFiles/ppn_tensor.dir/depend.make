# Empty dependencies file for ppn_tensor.
# This may be replaced when dependencies are built.
