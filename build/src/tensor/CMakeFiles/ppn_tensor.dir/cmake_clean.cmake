file(REMOVE_RECURSE
  "CMakeFiles/ppn_tensor.dir/ops.cc.o"
  "CMakeFiles/ppn_tensor.dir/ops.cc.o.d"
  "CMakeFiles/ppn_tensor.dir/tensor.cc.o"
  "CMakeFiles/ppn_tensor.dir/tensor.cc.o.d"
  "libppn_tensor.a"
  "libppn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
