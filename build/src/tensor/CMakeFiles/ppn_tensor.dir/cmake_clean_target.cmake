file(REMOVE_RECURSE
  "libppn_tensor.a"
)
