# Empty compiler generated dependencies file for ppn_nn.
# This may be replaced when dependencies are built.
