
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/ppn_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/ppn_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/ppn_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/ppn_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/ppn_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/ppn_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/ppn_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/ppn_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/ppn_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/ppn_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/ppn_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/ppn_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/ppn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ppn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
