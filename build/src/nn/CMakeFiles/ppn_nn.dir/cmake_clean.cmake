file(REMOVE_RECURSE
  "CMakeFiles/ppn_nn.dir/conv.cc.o"
  "CMakeFiles/ppn_nn.dir/conv.cc.o.d"
  "CMakeFiles/ppn_nn.dir/init.cc.o"
  "CMakeFiles/ppn_nn.dir/init.cc.o.d"
  "CMakeFiles/ppn_nn.dir/linear.cc.o"
  "CMakeFiles/ppn_nn.dir/linear.cc.o.d"
  "CMakeFiles/ppn_nn.dir/lstm.cc.o"
  "CMakeFiles/ppn_nn.dir/lstm.cc.o.d"
  "CMakeFiles/ppn_nn.dir/module.cc.o"
  "CMakeFiles/ppn_nn.dir/module.cc.o.d"
  "CMakeFiles/ppn_nn.dir/optimizer.cc.o"
  "CMakeFiles/ppn_nn.dir/optimizer.cc.o.d"
  "libppn_nn.a"
  "libppn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
