file(REMOVE_RECURSE
  "libppn_nn.a"
)
