file(REMOVE_RECURSE
  "libppn_market.a"
)
