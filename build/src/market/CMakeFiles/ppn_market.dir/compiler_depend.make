# Empty compiler generated dependencies file for ppn_market.
# This may be replaced when dependencies are built.
