
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/dataset.cc" "src/market/CMakeFiles/ppn_market.dir/dataset.cc.o" "gcc" "src/market/CMakeFiles/ppn_market.dir/dataset.cc.o.d"
  "/root/repo/src/market/generator.cc" "src/market/CMakeFiles/ppn_market.dir/generator.cc.o" "gcc" "src/market/CMakeFiles/ppn_market.dir/generator.cc.o.d"
  "/root/repo/src/market/io.cc" "src/market/CMakeFiles/ppn_market.dir/io.cc.o" "gcc" "src/market/CMakeFiles/ppn_market.dir/io.cc.o.d"
  "/root/repo/src/market/presets.cc" "src/market/CMakeFiles/ppn_market.dir/presets.cc.o" "gcc" "src/market/CMakeFiles/ppn_market.dir/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ppn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
