file(REMOVE_RECURSE
  "CMakeFiles/ppn_market.dir/dataset.cc.o"
  "CMakeFiles/ppn_market.dir/dataset.cc.o.d"
  "CMakeFiles/ppn_market.dir/generator.cc.o"
  "CMakeFiles/ppn_market.dir/generator.cc.o.d"
  "CMakeFiles/ppn_market.dir/io.cc.o"
  "CMakeFiles/ppn_market.dir/io.cc.o.d"
  "CMakeFiles/ppn_market.dir/presets.cc.o"
  "CMakeFiles/ppn_market.dir/presets.cc.o.d"
  "libppn_market.a"
  "libppn_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
