
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cc" "src/common/CMakeFiles/ppn_common.dir/csv.cc.o" "gcc" "src/common/CMakeFiles/ppn_common.dir/csv.cc.o.d"
  "/root/repo/src/common/math_utils.cc" "src/common/CMakeFiles/ppn_common.dir/math_utils.cc.o" "gcc" "src/common/CMakeFiles/ppn_common.dir/math_utils.cc.o.d"
  "/root/repo/src/common/random.cc" "src/common/CMakeFiles/ppn_common.dir/random.cc.o" "gcc" "src/common/CMakeFiles/ppn_common.dir/random.cc.o.d"
  "/root/repo/src/common/run_scale.cc" "src/common/CMakeFiles/ppn_common.dir/run_scale.cc.o" "gcc" "src/common/CMakeFiles/ppn_common.dir/run_scale.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/common/CMakeFiles/ppn_common.dir/table_printer.cc.o" "gcc" "src/common/CMakeFiles/ppn_common.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
