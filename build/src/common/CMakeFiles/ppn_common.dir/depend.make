# Empty dependencies file for ppn_common.
# This may be replaced when dependencies are built.
