file(REMOVE_RECURSE
  "libppn_common.a"
)
