file(REMOVE_RECURSE
  "CMakeFiles/ppn_common.dir/csv.cc.o"
  "CMakeFiles/ppn_common.dir/csv.cc.o.d"
  "CMakeFiles/ppn_common.dir/math_utils.cc.o"
  "CMakeFiles/ppn_common.dir/math_utils.cc.o.d"
  "CMakeFiles/ppn_common.dir/random.cc.o"
  "CMakeFiles/ppn_common.dir/random.cc.o.d"
  "CMakeFiles/ppn_common.dir/run_scale.cc.o"
  "CMakeFiles/ppn_common.dir/run_scale.cc.o.d"
  "CMakeFiles/ppn_common.dir/table_printer.cc.o"
  "CMakeFiles/ppn_common.dir/table_printer.cc.o.d"
  "libppn_common.a"
  "libppn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
