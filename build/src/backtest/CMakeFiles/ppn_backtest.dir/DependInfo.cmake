
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backtest/backtester.cc" "src/backtest/CMakeFiles/ppn_backtest.dir/backtester.cc.o" "gcc" "src/backtest/CMakeFiles/ppn_backtest.dir/backtester.cc.o.d"
  "/root/repo/src/backtest/costs.cc" "src/backtest/CMakeFiles/ppn_backtest.dir/costs.cc.o" "gcc" "src/backtest/CMakeFiles/ppn_backtest.dir/costs.cc.o.d"
  "/root/repo/src/backtest/metrics.cc" "src/backtest/CMakeFiles/ppn_backtest.dir/metrics.cc.o" "gcc" "src/backtest/CMakeFiles/ppn_backtest.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/ppn_market.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ppn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
