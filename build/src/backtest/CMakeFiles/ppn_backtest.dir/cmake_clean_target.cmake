file(REMOVE_RECURSE
  "libppn_backtest.a"
)
