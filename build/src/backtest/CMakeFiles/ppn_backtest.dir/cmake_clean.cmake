file(REMOVE_RECURSE
  "CMakeFiles/ppn_backtest.dir/backtester.cc.o"
  "CMakeFiles/ppn_backtest.dir/backtester.cc.o.d"
  "CMakeFiles/ppn_backtest.dir/costs.cc.o"
  "CMakeFiles/ppn_backtest.dir/costs.cc.o.d"
  "CMakeFiles/ppn_backtest.dir/metrics.cc.o"
  "CMakeFiles/ppn_backtest.dir/metrics.cc.o.d"
  "libppn_backtest.a"
  "libppn_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
