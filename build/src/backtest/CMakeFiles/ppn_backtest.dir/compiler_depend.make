# Empty compiler generated dependencies file for ppn_backtest.
# This may be replaced when dependencies are built.
