# Empty dependencies file for ppn_strategies.
# This may be replaced when dependencies are built.
