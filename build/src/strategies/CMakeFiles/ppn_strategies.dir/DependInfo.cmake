
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategies/anticor.cc" "src/strategies/CMakeFiles/ppn_strategies.dir/anticor.cc.o" "gcc" "src/strategies/CMakeFiles/ppn_strategies.dir/anticor.cc.o.d"
  "/root/repo/src/strategies/common.cc" "src/strategies/CMakeFiles/ppn_strategies.dir/common.cc.o" "gcc" "src/strategies/CMakeFiles/ppn_strategies.dir/common.cc.o.d"
  "/root/repo/src/strategies/mean_reversion.cc" "src/strategies/CMakeFiles/ppn_strategies.dir/mean_reversion.cc.o" "gcc" "src/strategies/CMakeFiles/ppn_strategies.dir/mean_reversion.cc.o.d"
  "/root/repo/src/strategies/registry.cc" "src/strategies/CMakeFiles/ppn_strategies.dir/registry.cc.o" "gcc" "src/strategies/CMakeFiles/ppn_strategies.dir/registry.cc.o.d"
  "/root/repo/src/strategies/simple.cc" "src/strategies/CMakeFiles/ppn_strategies.dir/simple.cc.o" "gcc" "src/strategies/CMakeFiles/ppn_strategies.dir/simple.cc.o.d"
  "/root/repo/src/strategies/universal.cc" "src/strategies/CMakeFiles/ppn_strategies.dir/universal.cc.o" "gcc" "src/strategies/CMakeFiles/ppn_strategies.dir/universal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backtest/CMakeFiles/ppn_backtest.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/ppn_market.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ppn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
