file(REMOVE_RECURSE
  "libppn_strategies.a"
)
