file(REMOVE_RECURSE
  "CMakeFiles/ppn_strategies.dir/anticor.cc.o"
  "CMakeFiles/ppn_strategies.dir/anticor.cc.o.d"
  "CMakeFiles/ppn_strategies.dir/common.cc.o"
  "CMakeFiles/ppn_strategies.dir/common.cc.o.d"
  "CMakeFiles/ppn_strategies.dir/mean_reversion.cc.o"
  "CMakeFiles/ppn_strategies.dir/mean_reversion.cc.o.d"
  "CMakeFiles/ppn_strategies.dir/registry.cc.o"
  "CMakeFiles/ppn_strategies.dir/registry.cc.o.d"
  "CMakeFiles/ppn_strategies.dir/simple.cc.o"
  "CMakeFiles/ppn_strategies.dir/simple.cc.o.d"
  "CMakeFiles/ppn_strategies.dir/universal.cc.o"
  "CMakeFiles/ppn_strategies.dir/universal.cc.o.d"
  "libppn_strategies.a"
  "libppn_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
