file(REMOVE_RECURSE
  "libppn_autograd.a"
)
