# Empty compiler generated dependencies file for ppn_autograd.
# This may be replaced when dependencies are built.
