file(REMOVE_RECURSE
  "CMakeFiles/ppn_autograd.dir/grad_check.cc.o"
  "CMakeFiles/ppn_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/ppn_autograd.dir/ops.cc.o"
  "CMakeFiles/ppn_autograd.dir/ops.cc.o.d"
  "CMakeFiles/ppn_autograd.dir/variable.cc.o"
  "CMakeFiles/ppn_autograd.dir/variable.cc.o.d"
  "libppn_autograd.a"
  "libppn_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
