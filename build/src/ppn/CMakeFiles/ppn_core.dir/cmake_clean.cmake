file(REMOVE_RECURSE
  "CMakeFiles/ppn_core.dir/config.cc.o"
  "CMakeFiles/ppn_core.dir/config.cc.o.d"
  "CMakeFiles/ppn_core.dir/ddpg.cc.o"
  "CMakeFiles/ppn_core.dir/ddpg.cc.o.d"
  "CMakeFiles/ppn_core.dir/eiie.cc.o"
  "CMakeFiles/ppn_core.dir/eiie.cc.o.d"
  "CMakeFiles/ppn_core.dir/feature_nets.cc.o"
  "CMakeFiles/ppn_core.dir/feature_nets.cc.o.d"
  "CMakeFiles/ppn_core.dir/policy_network.cc.o"
  "CMakeFiles/ppn_core.dir/policy_network.cc.o.d"
  "CMakeFiles/ppn_core.dir/pvm.cc.o"
  "CMakeFiles/ppn_core.dir/pvm.cc.o.d"
  "CMakeFiles/ppn_core.dir/reward.cc.o"
  "CMakeFiles/ppn_core.dir/reward.cc.o.d"
  "CMakeFiles/ppn_core.dir/strategy_adapter.cc.o"
  "CMakeFiles/ppn_core.dir/strategy_adapter.cc.o.d"
  "CMakeFiles/ppn_core.dir/trainer.cc.o"
  "CMakeFiles/ppn_core.dir/trainer.cc.o.d"
  "libppn_core.a"
  "libppn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
