file(REMOVE_RECURSE
  "libppn_core.a"
)
