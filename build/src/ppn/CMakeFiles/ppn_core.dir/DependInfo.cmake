
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppn/config.cc" "src/ppn/CMakeFiles/ppn_core.dir/config.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/config.cc.o.d"
  "/root/repo/src/ppn/ddpg.cc" "src/ppn/CMakeFiles/ppn_core.dir/ddpg.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/ddpg.cc.o.d"
  "/root/repo/src/ppn/eiie.cc" "src/ppn/CMakeFiles/ppn_core.dir/eiie.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/eiie.cc.o.d"
  "/root/repo/src/ppn/feature_nets.cc" "src/ppn/CMakeFiles/ppn_core.dir/feature_nets.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/feature_nets.cc.o.d"
  "/root/repo/src/ppn/policy_network.cc" "src/ppn/CMakeFiles/ppn_core.dir/policy_network.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/policy_network.cc.o.d"
  "/root/repo/src/ppn/pvm.cc" "src/ppn/CMakeFiles/ppn_core.dir/pvm.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/pvm.cc.o.d"
  "/root/repo/src/ppn/reward.cc" "src/ppn/CMakeFiles/ppn_core.dir/reward.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/reward.cc.o.d"
  "/root/repo/src/ppn/strategy_adapter.cc" "src/ppn/CMakeFiles/ppn_core.dir/strategy_adapter.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/strategy_adapter.cc.o.d"
  "/root/repo/src/ppn/trainer.cc" "src/ppn/CMakeFiles/ppn_core.dir/trainer.cc.o" "gcc" "src/ppn/CMakeFiles/ppn_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ppn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/ppn_market.dir/DependInfo.cmake"
  "/root/repo/build/src/backtest/CMakeFiles/ppn_backtest.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/ppn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ppn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
