# Empty dependencies file for ppn_core.
# This may be replaced when dependencies are built.
