# Empty dependencies file for ppn_analysis.
# This may be replaced when dependencies are built.
