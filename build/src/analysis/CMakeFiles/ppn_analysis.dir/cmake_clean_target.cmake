file(REMOVE_RECURSE
  "libppn_analysis.a"
)
