file(REMOVE_RECURSE
  "CMakeFiles/ppn_analysis.dir/rolling.cc.o"
  "CMakeFiles/ppn_analysis.dir/rolling.cc.o.d"
  "CMakeFiles/ppn_analysis.dir/theory.cc.o"
  "CMakeFiles/ppn_analysis.dir/theory.cc.o.d"
  "libppn_analysis.a"
  "libppn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
