file(REMOVE_RECURSE
  "CMakeFiles/autograd_grad_test.dir/autograd/ops_grad_test.cc.o"
  "CMakeFiles/autograd_grad_test.dir/autograd/ops_grad_test.cc.o.d"
  "autograd_grad_test"
  "autograd_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
