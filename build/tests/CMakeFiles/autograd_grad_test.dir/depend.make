# Empty dependencies file for autograd_grad_test.
# This may be replaced when dependencies are built.
