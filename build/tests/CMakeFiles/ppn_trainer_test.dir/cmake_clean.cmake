file(REMOVE_RECURSE
  "CMakeFiles/ppn_trainer_test.dir/ppn/trainer_test.cc.o"
  "CMakeFiles/ppn_trainer_test.dir/ppn/trainer_test.cc.o.d"
  "ppn_trainer_test"
  "ppn_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
