# Empty compiler generated dependencies file for ppn_trainer_test.
# This may be replaced when dependencies are built.
