# Empty dependencies file for market_dataset_test.
# This may be replaced when dependencies are built.
