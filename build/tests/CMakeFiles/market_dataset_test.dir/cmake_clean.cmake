file(REMOVE_RECURSE
  "CMakeFiles/market_dataset_test.dir/market/dataset_test.cc.o"
  "CMakeFiles/market_dataset_test.dir/market/dataset_test.cc.o.d"
  "market_dataset_test"
  "market_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
