file(REMOVE_RECURSE
  "CMakeFiles/ppn_ddpg_test.dir/ppn/ddpg_test.cc.o"
  "CMakeFiles/ppn_ddpg_test.dir/ppn/ddpg_test.cc.o.d"
  "ppn_ddpg_test"
  "ppn_ddpg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_ddpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
