# Empty dependencies file for ppn_ddpg_test.
# This may be replaced when dependencies are built.
