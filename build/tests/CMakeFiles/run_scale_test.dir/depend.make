# Empty dependencies file for run_scale_test.
# This may be replaced when dependencies are built.
