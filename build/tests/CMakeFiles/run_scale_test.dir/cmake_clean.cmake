file(REMOVE_RECURSE
  "CMakeFiles/run_scale_test.dir/common/run_scale_test.cc.o"
  "CMakeFiles/run_scale_test.dir/common/run_scale_test.cc.o.d"
  "run_scale_test"
  "run_scale_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
