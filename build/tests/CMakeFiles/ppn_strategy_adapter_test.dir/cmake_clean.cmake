file(REMOVE_RECURSE
  "CMakeFiles/ppn_strategy_adapter_test.dir/ppn/strategy_adapter_test.cc.o"
  "CMakeFiles/ppn_strategy_adapter_test.dir/ppn/strategy_adapter_test.cc.o.d"
  "ppn_strategy_adapter_test"
  "ppn_strategy_adapter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_strategy_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
