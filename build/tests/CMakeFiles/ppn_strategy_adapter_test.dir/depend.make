# Empty dependencies file for ppn_strategy_adapter_test.
# This may be replaced when dependencies are built.
