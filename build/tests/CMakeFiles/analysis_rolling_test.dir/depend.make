# Empty dependencies file for analysis_rolling_test.
# This may be replaced when dependencies are built.
