file(REMOVE_RECURSE
  "CMakeFiles/analysis_rolling_test.dir/analysis/rolling_test.cc.o"
  "CMakeFiles/analysis_rolling_test.dir/analysis/rolling_test.cc.o.d"
  "analysis_rolling_test"
  "analysis_rolling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_rolling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
