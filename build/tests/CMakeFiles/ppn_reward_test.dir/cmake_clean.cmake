file(REMOVE_RECURSE
  "CMakeFiles/ppn_reward_test.dir/ppn/reward_test.cc.o"
  "CMakeFiles/ppn_reward_test.dir/ppn/reward_test.cc.o.d"
  "ppn_reward_test"
  "ppn_reward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
