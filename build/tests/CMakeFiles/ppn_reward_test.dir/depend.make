# Empty dependencies file for ppn_reward_test.
# This may be replaced when dependencies are built.
