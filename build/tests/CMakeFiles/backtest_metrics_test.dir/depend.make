# Empty dependencies file for backtest_metrics_test.
# This may be replaced when dependencies are built.
