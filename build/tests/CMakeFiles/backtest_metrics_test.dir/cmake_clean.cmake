file(REMOVE_RECURSE
  "CMakeFiles/backtest_metrics_test.dir/backtest/metrics_test.cc.o"
  "CMakeFiles/backtest_metrics_test.dir/backtest/metrics_test.cc.o.d"
  "backtest_metrics_test"
  "backtest_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtest_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
