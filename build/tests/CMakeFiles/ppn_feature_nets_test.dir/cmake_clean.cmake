file(REMOVE_RECURSE
  "CMakeFiles/ppn_feature_nets_test.dir/ppn/feature_nets_test.cc.o"
  "CMakeFiles/ppn_feature_nets_test.dir/ppn/feature_nets_test.cc.o.d"
  "ppn_feature_nets_test"
  "ppn_feature_nets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_feature_nets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
