# Empty compiler generated dependencies file for ppn_feature_nets_test.
# This may be replaced when dependencies are built.
