file(REMOVE_RECURSE
  "CMakeFiles/analysis_theory_test.dir/analysis/theory_test.cc.o"
  "CMakeFiles/analysis_theory_test.dir/analysis/theory_test.cc.o.d"
  "analysis_theory_test"
  "analysis_theory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
