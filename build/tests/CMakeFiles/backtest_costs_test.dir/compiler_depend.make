# Empty compiler generated dependencies file for backtest_costs_test.
# This may be replaced when dependencies are built.
