file(REMOVE_RECURSE
  "CMakeFiles/backtest_costs_test.dir/backtest/costs_test.cc.o"
  "CMakeFiles/backtest_costs_test.dir/backtest/costs_test.cc.o.d"
  "backtest_costs_test"
  "backtest_costs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtest_costs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
