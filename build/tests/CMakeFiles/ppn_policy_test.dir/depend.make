# Empty dependencies file for ppn_policy_test.
# This may be replaced when dependencies are built.
