file(REMOVE_RECURSE
  "CMakeFiles/ppn_policy_test.dir/ppn/policy_test.cc.o"
  "CMakeFiles/ppn_policy_test.dir/ppn/policy_test.cc.o.d"
  "ppn_policy_test"
  "ppn_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppn_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
