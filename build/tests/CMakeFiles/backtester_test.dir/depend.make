# Empty dependencies file for backtester_test.
# This may be replaced when dependencies are built.
