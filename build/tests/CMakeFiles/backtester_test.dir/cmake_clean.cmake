file(REMOVE_RECURSE
  "CMakeFiles/backtester_test.dir/backtest/backtester_test.cc.o"
  "CMakeFiles/backtester_test.dir/backtest/backtester_test.cc.o.d"
  "backtester_test"
  "backtester_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtester_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
