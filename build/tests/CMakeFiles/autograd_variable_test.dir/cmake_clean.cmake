file(REMOVE_RECURSE
  "CMakeFiles/autograd_variable_test.dir/autograd/variable_test.cc.o"
  "CMakeFiles/autograd_variable_test.dir/autograd/variable_test.cc.o.d"
  "autograd_variable_test"
  "autograd_variable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_variable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
