file(REMOVE_RECURSE
  "CMakeFiles/strategies_baselines_test.dir/strategies/baselines_test.cc.o"
  "CMakeFiles/strategies_baselines_test.dir/strategies/baselines_test.cc.o.d"
  "strategies_baselines_test"
  "strategies_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategies_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
