# Empty dependencies file for strategies_baselines_test.
# This may be replaced when dependencies are built.
