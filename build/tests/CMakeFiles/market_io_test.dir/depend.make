# Empty dependencies file for market_io_test.
# This may be replaced when dependencies are built.
