file(REMOVE_RECURSE
  "CMakeFiles/market_io_test.dir/market/io_test.cc.o"
  "CMakeFiles/market_io_test.dir/market/io_test.cc.o.d"
  "market_io_test"
  "market_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
