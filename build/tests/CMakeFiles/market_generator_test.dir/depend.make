# Empty dependencies file for market_generator_test.
# This may be replaced when dependencies are built.
