# Empty compiler generated dependencies file for table9_rl_algos.
# This may be replaced when dependencies are built.
