file(REMOVE_RECURSE
  "CMakeFiles/table9_rl_algos.dir/bench_util.cc.o"
  "CMakeFiles/table9_rl_algos.dir/bench_util.cc.o.d"
  "CMakeFiles/table9_rl_algos.dir/table9_rl_algos.cc.o"
  "CMakeFiles/table9_rl_algos.dir/table9_rl_algos.cc.o.d"
  "table9_rl_algos"
  "table9_rl_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_rl_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
