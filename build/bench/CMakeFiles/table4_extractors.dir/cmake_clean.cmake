file(REMOVE_RECURSE
  "CMakeFiles/table4_extractors.dir/bench_util.cc.o"
  "CMakeFiles/table4_extractors.dir/bench_util.cc.o.d"
  "CMakeFiles/table4_extractors.dir/table4_extractors.cc.o"
  "CMakeFiles/table4_extractors.dir/table4_extractors.cc.o.d"
  "table4_extractors"
  "table4_extractors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_extractors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
