# Empty dependencies file for table4_extractors.
# This may be replaced when dependencies are built.
