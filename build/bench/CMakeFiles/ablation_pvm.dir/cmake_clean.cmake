file(REMOVE_RECURSE
  "CMakeFiles/ablation_pvm.dir/ablation_pvm.cc.o"
  "CMakeFiles/ablation_pvm.dir/ablation_pvm.cc.o.d"
  "CMakeFiles/ablation_pvm.dir/bench_util.cc.o"
  "CMakeFiles/ablation_pvm.dir/bench_util.cc.o.d"
  "ablation_pvm"
  "ablation_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
