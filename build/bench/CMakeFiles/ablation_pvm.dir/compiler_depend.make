# Empty compiler generated dependencies file for ablation_pvm.
# This may be replaced when dependencies are built.
