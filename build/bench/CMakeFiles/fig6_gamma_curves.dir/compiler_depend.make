# Empty compiler generated dependencies file for fig6_gamma_curves.
# This may be replaced when dependencies are built.
