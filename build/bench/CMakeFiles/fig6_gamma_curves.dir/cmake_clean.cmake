file(REMOVE_RECURSE
  "CMakeFiles/fig6_gamma_curves.dir/bench_util.cc.o"
  "CMakeFiles/fig6_gamma_curves.dir/bench_util.cc.o.d"
  "CMakeFiles/fig6_gamma_curves.dir/fig6_gamma_curves.cc.o"
  "CMakeFiles/fig6_gamma_curves.dir/fig6_gamma_curves.cc.o.d"
  "fig6_gamma_curves"
  "fig6_gamma_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gamma_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
