file(REMOVE_RECURSE
  "CMakeFiles/table7_lambda.dir/bench_util.cc.o"
  "CMakeFiles/table7_lambda.dir/bench_util.cc.o.d"
  "CMakeFiles/table7_lambda.dir/table7_lambda.cc.o"
  "CMakeFiles/table7_lambda.dir/table7_lambda.cc.o.d"
  "table7_lambda"
  "table7_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
