# Empty compiler generated dependencies file for table7_lambda.
# This may be replaced when dependencies are built.
