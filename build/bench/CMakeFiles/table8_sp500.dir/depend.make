# Empty dependencies file for table8_sp500.
# This may be replaced when dependencies are built.
