file(REMOVE_RECURSE
  "CMakeFiles/table8_sp500.dir/bench_util.cc.o"
  "CMakeFiles/table8_sp500.dir/bench_util.cc.o.d"
  "CMakeFiles/table8_sp500.dir/table8_sp500.cc.o"
  "CMakeFiles/table8_sp500.dir/table8_sp500.cc.o.d"
  "table8_sp500"
  "table8_sp500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_sp500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
