# Empty dependencies file for table3_profitability.
# This may be replaced when dependencies are built.
