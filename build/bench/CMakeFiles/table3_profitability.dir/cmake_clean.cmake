file(REMOVE_RECURSE
  "CMakeFiles/table3_profitability.dir/bench_util.cc.o"
  "CMakeFiles/table3_profitability.dir/bench_util.cc.o.d"
  "CMakeFiles/table3_profitability.dir/table3_profitability.cc.o"
  "CMakeFiles/table3_profitability.dir/table3_profitability.cc.o.d"
  "table3_profitability"
  "table3_profitability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_profitability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
