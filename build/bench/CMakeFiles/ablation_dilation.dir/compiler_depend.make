# Empty compiler generated dependencies file for ablation_dilation.
# This may be replaced when dependencies are built.
