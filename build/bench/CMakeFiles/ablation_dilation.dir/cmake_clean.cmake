file(REMOVE_RECURSE
  "CMakeFiles/ablation_dilation.dir/ablation_dilation.cc.o"
  "CMakeFiles/ablation_dilation.dir/ablation_dilation.cc.o.d"
  "CMakeFiles/ablation_dilation.dir/bench_util.cc.o"
  "CMakeFiles/ablation_dilation.dir/bench_util.cc.o.d"
  "ablation_dilation"
  "ablation_dilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
