# Empty dependencies file for table5_cost_rates.
# This may be replaced when dependencies are built.
