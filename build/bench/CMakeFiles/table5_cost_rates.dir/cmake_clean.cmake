file(REMOVE_RECURSE
  "CMakeFiles/table5_cost_rates.dir/bench_util.cc.o"
  "CMakeFiles/table5_cost_rates.dir/bench_util.cc.o.d"
  "CMakeFiles/table5_cost_rates.dir/table5_cost_rates.cc.o"
  "CMakeFiles/table5_cost_rates.dir/table5_cost_rates.cc.o.d"
  "table5_cost_rates"
  "table5_cost_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cost_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
