# Empty dependencies file for table6_gamma.
# This may be replaced when dependencies are built.
