file(REMOVE_RECURSE
  "CMakeFiles/table6_gamma.dir/bench_util.cc.o"
  "CMakeFiles/table6_gamma.dir/bench_util.cc.o.d"
  "CMakeFiles/table6_gamma.dir/table6_gamma.cc.o"
  "CMakeFiles/table6_gamma.dir/table6_gamma.cc.o.d"
  "table6_gamma"
  "table6_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
