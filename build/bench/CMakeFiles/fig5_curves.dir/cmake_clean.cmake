file(REMOVE_RECURSE
  "CMakeFiles/fig5_curves.dir/bench_util.cc.o"
  "CMakeFiles/fig5_curves.dir/bench_util.cc.o.d"
  "CMakeFiles/fig5_curves.dir/fig5_curves.cc.o"
  "CMakeFiles/fig5_curves.dir/fig5_curves.cc.o.d"
  "fig5_curves"
  "fig5_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
