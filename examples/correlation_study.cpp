// Correlation study: demonstrates WHY the correlational convolution
// matters. Two markets are generated that differ in exactly one respect —
// whether follower assets echo their leader's lagged returns (cross-asset
// structure). PPN (correlation-aware) and PPN-I (independent evaluation)
// are trained on both.
//
// Expected outcome: PPN beats PPN-I clearly on the lead-lag market; on the
// structure-free market the two are close.
//
// Build & run:  ./build/examples/correlation_study

#include <cstdio>

#include "backtest/backtester.h"
#include "common/table_printer.h"
#include "market/generator.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"

namespace {

ppn::backtest::Metrics TrainVariantOn(
    const ppn::market::MarketDataset& dataset,
    ppn::core::PolicyVariant variant) {
  using namespace ppn;
  core::PolicyConfig policy_config;
  policy_config.variant = variant;
  policy_config.num_assets = dataset.panel.num_assets();
  policy_config.window = 30;
  Rng init_rng(21);
  Rng dropout_rng(22);
  auto policy = core::MakePolicy(policy_config, &init_rng, &dropout_rng);
  core::TrainerConfig trainer_config;
  trainer_config.steps = 300;
  trainer_config.batch_size = 16;
  trainer_config.learning_rate = 3e-3f;
  trainer_config.reward.cost_rate = 0.0025;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, trainer_config);
  trainer.Train();
  core::PolicyStrategy strategy(policy.get(), core::VariantName(variant));
  return backtest::ComputeMetrics(
      backtest::RunOnTestRange(&strategy, dataset, 0.0025));
}

}  // namespace

int main() {
  using namespace ppn;

  market::SyntheticMarketConfig base;
  base.num_assets = 8;
  base.num_periods = 1800;
  base.seed = 99;
  base.late_listing_fraction = 0.0;

  market::SyntheticMarketConfig with_structure = base;
  with_structure.lead_lag_strength = 0.7;  // Followers echo leaders.
  market::SyntheticMarketConfig without_structure = base;
  without_structure.lead_lag_strength = 0.0;  // No cross-asset signal.

  TablePrinter printer(
      {"Market", "PPN APV", "PPN-I APV", "PPN advantage"});
  for (const auto& [label, config] :
       {std::pair{"with lead-lag", with_structure},
        std::pair{"without lead-lag", without_structure}}) {
    market::SyntheticMarketGenerator generator(config);
    const market::MarketDataset dataset =
        generator.GenerateDataset(label, 0.85);
    const backtest::Metrics ppn =
        TrainVariantOn(dataset, core::PolicyVariant::kPpn);
    const backtest::Metrics ppn_i =
        TrainVariantOn(dataset, core::PolicyVariant::kPpnI);
    printer.AddRow(label, {ppn.apv, ppn_i.apv, ppn.apv - ppn_i.apv}, 3);
  }
  std::printf("%s\n", printer.ToString().c_str());
  std::printf(
      "The PPN advantage should be clearly positive only when the market\n"
      "has cross-asset (lead-lag) structure for the CCONV to extract.\n");
  return 0;
}
