// Cost-sensitivity study: demonstrates the two knobs of the cost-sensitive
// reward (paper Eq. 1) on one market —
//
//   * γ (transaction-cost constraint): larger γ -> lower turnover; at the
//     extreme the policy simply stops trading;
//   * λ (risk penalty): larger λ -> lower return standard deviation.
//
// Build & run:  ./build/examples/cost_sensitivity_study

#include <cstdio>

#include "backtest/backtester.h"
#include "common/table_printer.h"
#include "market/presets.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"

namespace {

ppn::backtest::Metrics TrainWith(const ppn::market::MarketDataset& dataset,
                                 double gamma, double lambda) {
  using namespace ppn;
  core::PolicyConfig policy_config;
  policy_config.variant = core::PolicyVariant::kPpn;
  policy_config.num_assets = dataset.panel.num_assets();
  policy_config.window = 30;
  Rng init_rng(11);
  Rng dropout_rng(12);
  auto policy = core::MakePolicy(policy_config, &init_rng, &dropout_rng);
  core::TrainerConfig trainer_config;
  trainer_config.steps = 250;
  trainer_config.batch_size = 16;
  trainer_config.learning_rate = 3e-3f;
  trainer_config.reward.gamma = gamma;
  trainer_config.reward.lambda = lambda;
  trainer_config.reward.cost_rate = 0.0025;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, trainer_config);
  trainer.Train();
  core::PolicyStrategy strategy(policy.get(), "PPN");
  return backtest::ComputeMetrics(
      backtest::RunOnTestRange(&strategy, dataset, 0.0025));
}

}  // namespace

int main() {
  using namespace ppn;
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, RunScale::kSmoke);

  std::printf("--- gamma sweep (transaction-cost constraint) ---\n");
  TablePrinter gamma_table({"gamma", "APV", "TO"});
  for (const double gamma : {0.0, 1e-3, 1e-1, 1.0}) {
    const backtest::Metrics metrics = TrainWith(dataset, gamma, 1e-4);
    gamma_table.AddRow(TablePrinter::FormatCell(gamma, 4),
                       {metrics.apv, metrics.turnover}, 4);
  }
  std::printf("%s\n", gamma_table.ToString().c_str());

  std::printf("--- lambda sweep (risk penalty) ---\n");
  TablePrinter lambda_table({"lambda", "APV", "STD(%)", "MDD(%)"});
  for (const double lambda : {0.0, 1e-2, 1e-1, 1.0}) {
    const backtest::Metrics metrics = TrainWith(dataset, 1e-3, lambda);
    lambda_table.AddRow(TablePrinter::FormatCell(lambda, 4),
                        {metrics.apv, metrics.std_pct, metrics.mdd_pct}, 4);
  }
  std::printf("%s\n", lambda_table.ToString().c_str());
  return 0;
}
