// Strategy shoot-out: runs the twelve classic OLPS baselines and a trained
// PPN on the same synthetic crypto market and prints a Table-3-style
// comparison. Demonstrates the unified strategy registry (`MakeStrategy`
// builds classics and trains neural policies through one call) and the
// backtest metrics.
//
// Build & run:  ./build/examples/compare_strategies

#include <cstdio>

#include "backtest/backtester.h"
#include "common/table_printer.h"
#include "market/presets.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  constexpr double kCostRate = 0.0025;  // Poloniex max commission.

  // A small preset market so the example finishes in about a minute.
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, RunScale::kSmoke);
  std::printf("dataset %s: %lld assets, %lld train + %lld test periods\n\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.panel.num_assets()),
              static_cast<long long>(dataset.train_end),
              static_cast<long long>(dataset.panel.num_periods() -
                                     dataset.train_end));

  TablePrinter printer({"Strategy", "APV", "SR(%)", "CR", "MDD(%)", "TO"});
  auto evaluate = [&](backtest::Strategy* strategy) {
    const backtest::Metrics metrics = backtest::ComputeMetrics(
        backtest::RunOnTestRange(strategy, dataset, kCostRate));
    printer.AddRow(strategy->name(),
                   {metrics.apv, metrics.sr_pct, metrics.cr, metrics.mdd_pct,
                    metrics.turnover}, 3);
  };

  // The classic online portfolio selection family.
  for (const std::string& name : strategies::ClassicBaselineNames()) {
    auto strategy = strategies::MakeStrategy({.name = name}, dataset);
    evaluate(strategy.get());
  }

  // A briefly trained PPN for comparison: the same factory call trains the
  // policy on the dataset's training range before wrapping it.
  strategies::StrategySpec ppn{.name = "PPN"};
  ppn.label = "PPN (trained)";
  ppn.base_steps = 250;
  ppn.seed = 3;
  // kQuick keeps the 250-step budget unscaled (kSmoke would divide it).
  ppn.scale = RunScale::kQuick;
  auto ppn_strategy = strategies::MakeStrategy(ppn, dataset);
  evaluate(ppn_strategy.get());

  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
