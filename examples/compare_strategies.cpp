// Strategy shoot-out: runs the twelve classic OLPS baselines and a trained
// PPN on the same synthetic crypto market and prints a Table-3-style
// comparison. Demonstrates the `Strategy` interface, the baseline
// registry, and the backtest metrics.
//
// Build & run:  ./build/examples/compare_strategies

#include <cstdio>

#include "backtest/backtester.h"
#include "common/table_printer.h"
#include "market/presets.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  constexpr double kCostRate = 0.0025;  // Poloniex max commission.

  // A small preset market so the example finishes in about a minute.
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, RunScale::kSmoke);
  std::printf("dataset %s: %lld assets, %lld train + %lld test periods\n\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.panel.num_assets()),
              static_cast<long long>(dataset.train_end),
              static_cast<long long>(dataset.panel.num_periods() -
                                     dataset.train_end));

  TablePrinter printer({"Strategy", "APV", "SR(%)", "CR", "MDD(%)", "TO"});
  auto evaluate = [&](backtest::Strategy* strategy) {
    const backtest::Metrics metrics = backtest::ComputeMetrics(
        backtest::RunOnTestRange(strategy, dataset, kCostRate));
    printer.AddRow(strategy->name(),
                   {metrics.apv, metrics.sr_pct, metrics.cr, metrics.mdd_pct,
                    metrics.turnover}, 3);
  };

  // The classic online portfolio selection family.
  for (const std::string& name : strategies::ClassicBaselineNames()) {
    auto strategy = strategies::MakeClassicBaseline(name);
    evaluate(strategy.get());
  }

  // A briefly trained PPN for comparison.
  core::PolicyConfig policy_config;
  policy_config.variant = core::PolicyVariant::kPpn;
  policy_config.num_assets = dataset.panel.num_assets();
  policy_config.window = 30;
  Rng init_rng(3);
  Rng dropout_rng(4);
  auto policy = core::MakePolicy(policy_config, &init_rng, &dropout_rng);
  core::TrainerConfig trainer_config;
  trainer_config.steps = 250;
  trainer_config.batch_size = 16;
  trainer_config.learning_rate = 3e-3f;
  trainer_config.reward.cost_rate = kCostRate;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, trainer_config);
  trainer.Train();
  core::PolicyStrategy ppn_strategy(policy.get(), "PPN (trained)");
  evaluate(&ppn_strategy);

  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
