// Quickstart: the complete PPN pipeline in ~40 lines.
//
//  1. Generate a synthetic crypto-like market (the library's substitute for
//     a Poloniex feed).
//  2. Build the two-stream portfolio policy network.
//  3. Train it by direct policy gradient on the cost-sensitive reward.
//  4. Backtest on the held-out range and print the paper's metrics.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "backtest/backtester.h"
#include "market/generator.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"

int main() {
  using namespace ppn;

  // 1. A 12-asset market with momentum and lead-lag structure.
  market::SyntheticMarketConfig market_config;
  market_config.num_assets = 12;
  market_config.num_periods = 2000;
  market_config.seed = 42;
  market::SyntheticMarketGenerator generator(market_config);
  market::MarketDataset dataset =
      generator.GenerateDataset("quickstart", /*train_fraction=*/0.9);

  // 2. The PPN from the paper: LSTM stream + correlational conv stream.
  core::PolicyConfig policy_config;
  policy_config.variant = core::PolicyVariant::kPpn;
  policy_config.num_assets = market_config.num_assets;
  policy_config.window = 30;
  Rng init_rng(1);
  Rng dropout_rng(2);
  auto policy = core::MakePolicy(policy_config, &init_rng, &dropout_rng);
  std::printf("PPN built: %lld trainable parameters\n",
              static_cast<long long>(policy->ParameterCount()));

  // 3. Direct policy gradient on the cost-sensitive reward (Eq. 1).
  core::TrainerConfig trainer_config;
  trainer_config.steps = 300;
  trainer_config.batch_size = 16;
  trainer_config.learning_rate = 3e-3f;
  trainer_config.reward.gamma = 1e-3;    // Transaction-cost constraint.
  trainer_config.reward.lambda = 1e-4;   // Risk penalty.
  trainer_config.reward.cost_rate = 0.0025;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, trainer_config);
  const double tail_reward = trainer.Train();
  std::printf("training done; tail mean reward per period = %.5f\n",
              tail_reward);

  // 4. Backtest on the test range with 0.25% proportional costs.
  core::PolicyStrategy strategy(policy.get(), "PPN");
  const backtest::BacktestRecord record =
      backtest::RunOnTestRange(&strategy, dataset, 0.0025);
  const backtest::Metrics metrics = backtest::ComputeMetrics(record);
  std::printf(
      "test range: APV=%.3f  SR=%.2f%%  CR=%.2f  MDD=%.1f%%  TO=%.3f\n",
      metrics.apv, metrics.sr_pct, metrics.cr, metrics.mdd_pct,
      metrics.turnover);
  return 0;
}
