#!/usr/bin/env python3
"""Compare two archived google-benchmark JSON reports.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]
                        [--json OUT.json]

Prints a per-benchmark table of wall-time deltas (negative = faster) and
speedup ratios (baseline/candidate: >1 = candidate faster) and exits
non-zero when any benchmark common to both files regressed by more than
the threshold (default 10% slower real time). Benchmarks present in only
one file are listed but never fail the run — the suite is allowed to
grow.

--json OUT.json additionally writes the comparison machine-readably:
    {"threshold": 0.1, "regressions": ["..."],
     "benchmarks": {"BM_X/64": {"baseline_ns": ..., "candidate_ns": ...,
                                "delta": -0.12, "speedup": 1.14}, ...},
     "only_baseline": [...], "only_candidate": [...]}
(used to archive PPN_SIMD=scalar vs avx2 A/B ratios in bench_results/).

The inputs are what run_benches.sh archives in bench_results/ (the
--benchmark_out=... --benchmark_out_format=json report of
bench/micro_kernels). Aggregate rows (mean/median/stddev/cv, present
when a run used --benchmark_repetitions) are preferred over raw
iteration rows when available: only the "median" aggregate is compared,
everything else is skipped.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: real_time_ns} for the comparable rows of a report."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"bench_diff: cannot read {path}: {error}")
    rows = report.get("benchmarks", [])
    if not rows:
        sys.exit(f"bench_diff: {path} has no 'benchmarks' array")

    have_aggregates = any(r.get("run_type") == "aggregate" for r in rows)
    out = {}
    for row in rows:
        if have_aggregates:
            if row.get("aggregate_name") != "median":
                continue
            name = row["run_name"]
        else:
            if row.get("run_type") == "aggregate":
                continue
            name = row["name"]
        # Normalize to nanoseconds so reports with different time_unit
        # settings stay comparable.
        unit = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            row.get("time_unit", "ns"), 1.0)
        out[name] = float(row["real_time"]) * unit
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional real-time increase that counts as a regression "
             "(default 0.10 = 10%%)")
    parser.add_argument(
        "--json", metavar="OUT",
        help="also write the comparison as machine-readable JSON to OUT")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    common = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if not common:
        sys.exit("bench_diff: no benchmarks in common")

    name_width = max(len(n) for n in common)
    print(f"{'benchmark':<{name_width}}  {'baseline':>12}  "
          f"{'candidate':>12}  {'delta':>8}  {'speedup':>8}")
    regressions = []
    rows = {}
    for name in common:
        old, new = base[name], cand[name]
        delta = (new - old) / old if old > 0 else 0.0
        speedup = old / new if new > 0 else float("inf")
        rows[name] = {
            "baseline_ns": old,
            "candidate_ns": new,
            "delta": delta,
            "speedup": speedup,
        }
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  REGRESSION"
        print(f"{name:<{name_width}}  {old:>10.0f}ns  {new:>10.0f}ns  "
              f"{delta:>+7.1%}  {speedup:>7.2f}x{flag}")

    for name in only_base:
        print(f"{name}: removed (baseline only)")
    for name in only_cand:
        print(f"{name}: new (candidate only)")

    if args.json:
        report = {
            "baseline": args.baseline,
            "candidate": args.candidate,
            "threshold": args.threshold,
            "benchmarks": rows,
            "regressions": [name for name, _ in regressions],
            "only_baseline": only_base,
            "only_candidate": only_cand,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"({len(common)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
