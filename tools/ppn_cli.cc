// ppn_cli — command-line front end for the library.
//
//   ppn_cli generate  --dataset crypto-a --out data/run1
//   ppn_cli train     --dataset crypto-a --variant PPN --steps 600
//                     [--gamma 1e-3 --lambda 1e-4 --cost 0.0025
//                      --weights ppn.weights --checkpoint-dir ckpt
//                      --checkpoint-every 50 --resume 1 --adversarial 0.01]
//   ppn_cli backtest  --dataset crypto-a --variant PPN --weights ppn.weights
//   ppn_cli serve     --dataset crypto-a --variant PPN --weights ppn.weights
//                     [--users 1000 --ticks 50 --batch 256 --workers 0
//                      --queue-capacity 4096 --cost 0.0025]
//   ppn_cli baselines --dataset crypto-a
//   ppn_cli help-env
//   ppn_cli sweep     --datasets crypto-a,crypto-b
//                     [--strategies UBAH,EIIE,PPN --costs 0.0025,0.01
//                      --seeds 1,2 --steps 400 --gamma 1e-3 --lambda 1e-4
//                      --workers 4 --json results.json
//                      --checkpoint-dir ckpt --telemetry-dir telemetry
//                      --processes 4 --fabric-dir scratch]
//   ppn_cli report    --dir telemetry [--window 50 --trace trace.json
//                      --merge-trace fabric_dir --out merged.json]
//   ppn_cli top       --dir <fabric_dir|telemetry_dir|stats.jsonl>
//                     [--refresh-ms 250 --iterations 0]
//   ppn_cli stress    --dataset crypto-a
//                     [--packs flash-crash,jump-cluster,corr-break,
//                      liquidity-hole,delisting | all]
//                     [--strategies UBAH,CRP,OLMAR,PPN --cost 0.0025
//                      --seeds 1 --steps 400 --stress-seed 7
//                      --replay bars.csv --replay-name NAME
//                      --train-frac 0.92 --workers 4 --json results.json]
//
// `--dataset` accepts crypto-a/b/c/d and sp500 (generated presets honoring
// PPN_SCALE), or `--data <prefix>` to load a panel saved by `generate`.
//
// `stress` builds the robustness table: every strategy is trained on the
// benign history and evaluated on the unstressed test range, on each
// requested stress pack (see market/stress.h), and — with `--replay` — on
// an external long-format OHLC CSV (columns period,asset,open,high,low,
// close; see market/replay_io.h). Results are bit-identical at any
// `--workers` count.
// `sweep` fans the (strategy × dataset × cost × seed) grid across a worker
// pool (default: PPN_WORKERS or the hardware thread count) with results
// bit-identical at any worker count. `--processes N` switches to the
// multi-process fabric (src/exec/fabric.h): the coordinator re-execs this
// binary as the hidden `sweep-worker` subcommand, one process per slot,
// with work-stealing and elastic restart — still bit-identical, including
// across worker crashes (see PPN_FABRIC_* in `help-env`).
//
// Checkpointing: `train --checkpoint-dir` snapshots the full training
// state (parameters, Adam moments, RNG streams, PVM, step counters) every
// `--checkpoint-every` steps (default 50, atomically, newest 3 retained);
// `--resume 1` restores the newest intact snapshot and continues to a
// final policy bit-identical to an uninterrupted run. `sweep
// --checkpoint-dir` checkpoints each finished cell; rerunning the same
// sweep after a kill recomputes only the unfinished cells.
//
// Telemetry: `sweep --telemetry-dir <dir>` enables obs and streams one
// per-step JSONL run log per trained cell into <dir> (schema
// ppn.runlog.v1, see obs/run_log.h); `report --dir <dir>` summarizes the
// logs (final-step reward decomposition, turnover trajectory, step
// timing), and `report --trace <file>` lists the slowest spans of a
// Chrome trace captured via PPN_TRACE_JSON=<file> (open the file itself
// in ui.perfetto.dev for the timeline).
//
// Observability plane (see obs/sampler.h, obs/trace_merge.h,
// obs/health.h): PPN_STATS_JSONL=<file> streams periodic ppn.stats.v1
// samples every PPN_SAMPLE_MS from ANY command; `top --dir <target>`
// tails those streams (plus a fabric dir's queue/done counts) as an
// in-place refreshing table. A traced multi-process sweep
// (`sweep --processes N` with PPN_TRACE_JSON) stitches coordinator and
// worker timelines into one Perfetto JSON automatically — or on demand
// via `report --merge-trace <fabric_dir>`. PPN_HEALTH=<rules> turns SLO
// violations into a red end-of-run summary and a nonzero exit.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backtest/backtester.h"
#include "ckpt/checkpoint.h"
#include "common/env.h"
#include "common/parse.h"
#include "common/table_printer.h"
#include "exec/experiment.h"
#include "exec/fabric.h"
#include "exec/thread_pool.h"
#include "market/io.h"
#include "market/presets.h"
#include "market/replay_io.h"
#include "market/stress.h"
#include "obs/health.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"
#include "serve/portfolio_server.h"
#include "strategies/registry.h"

namespace {

using namespace ppn;

/// Parsed --key value pairs.
using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag, got '%s'\n", key);
      std::exit(2);
    }
    flags[key + 2] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const Flags& flags, const std::string& key,
                   const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

double NumFlagOr(const Flags& flags, const std::string& key, double fallback) {
  auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  return ParseDoubleOrDie(it->second, "--" + key);
}

bool DatasetIdFromName(const std::string& name, market::DatasetId* id) {
  if (name == "crypto-a") *id = market::DatasetId::kCryptoA;
  else if (name == "crypto-b") *id = market::DatasetId::kCryptoB;
  else if (name == "crypto-c") *id = market::DatasetId::kCryptoC;
  else if (name == "crypto-d") *id = market::DatasetId::kCryptoD;
  else if (name == "sp500") *id = market::DatasetId::kSp500;
  else return false;
  return true;
}

market::MarketDataset ResolveDataset(const Flags& flags) {
  if (flags.count("data") > 0) {
    market::MarketDataset dataset;
    if (!market::LoadDataset(flags.at("data"), &dataset)) {
      std::fprintf(stderr, "could not load dataset '%s'\n",
                   flags.at("data").c_str());
      std::exit(1);
    }
    return dataset;
  }
  const std::string name = FlagOr(flags, "dataset", "crypto-a");
  market::DatasetId id;
  if (!DatasetIdFromName(name, &id)) {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    std::exit(2);
  }
  return market::MakeDataset(id, GetRunScale());
}

core::PolicyConfig PolicyConfigFor(const Flags& flags,
                                   const market::MarketDataset& dataset) {
  core::PolicyConfig config;
  const std::string variant_name = FlagOr(flags, "variant", "PPN");
  if (!core::VariantFromName(variant_name, &config.variant)) {
    std::fprintf(stderr, "unknown variant '%s'\n", variant_name.c_str());
    std::exit(2);
  }
  config.num_assets = dataset.panel.num_assets();
  config.window = static_cast<int64_t>(NumFlagOr(flags, "window", 30));
  config.dropout = static_cast<float>(NumFlagOr(flags, "dropout", 0.1));
  config.seed = static_cast<uint64_t>(NumFlagOr(flags, "seed", 1));
  return config;
}

void PrintMetrics(const std::string& label, const backtest::Metrics& m) {
  std::printf(
      "%-14s APV=%.4f  SR=%.2f%%  STD=%.2f%%  CR=%.2f  MDD=%.1f%%  TO=%.4f\n",
      label.c_str(), m.apv, m.sr_pct, m.std_pct, m.cr, m.mdd_pct, m.turnover);
}

int CmdGenerate(const Flags& flags) {
  const market::MarketDataset dataset = ResolveDataset(flags);
  const std::string out = FlagOr(flags, "out", "dataset");
  if (!market::SaveDataset(dataset, out)) {
    std::fprintf(stderr, "failed writing '%s'\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s.meta.csv and %s.prices.csv (%lld periods x %lld assets)\n",
              out.c_str(), out.c_str(),
              static_cast<long long>(dataset.panel.num_periods()),
              static_cast<long long>(dataset.panel.num_assets()));
  return 0;
}

int CmdTrain(const Flags& flags) {
  const market::MarketDataset dataset = ResolveDataset(flags);
  const core::PolicyConfig policy_config = PolicyConfigFor(flags, dataset);
  Rng init(policy_config.seed * 7 + 1);
  Rng dropout(policy_config.seed * 7 + 2);
  auto policy = core::MakePolicy(policy_config, &init, &dropout);
  std::printf("training %s on %s (%lld params)\n",
              core::VariantName(policy_config.variant).c_str(),
              dataset.name.c_str(),
              static_cast<long long>(policy->ParameterCount()));
  core::TrainerConfig trainer_config;
  trainer_config.steps = static_cast<int64_t>(NumFlagOr(flags, "steps", 600));
  trainer_config.batch_size =
      static_cast<int64_t>(NumFlagOr(flags, "batch", 16));
  trainer_config.learning_rate =
      static_cast<float>(NumFlagOr(flags, "lr", 3e-3));
  trainer_config.weight_decay =
      static_cast<float>(NumFlagOr(flags, "weight-decay", 1e-3));
  trainer_config.seed = policy_config.seed;
  trainer_config.adversarial_epsilon = NumFlagOr(flags, "adversarial", 0.0);
  trainer_config.reward.gamma = NumFlagOr(flags, "gamma", 1e-3);
  trainer_config.reward.lambda = NumFlagOr(flags, "lambda", 1e-4);
  trainer_config.reward.cost_rate = NumFlagOr(flags, "cost", 0.0025);
  core::PolicyGradientTrainer trainer(policy.get(), dataset, trainer_config);

  const std::string checkpoint_dir = FlagOr(flags, "checkpoint-dir", "");
  const int64_t checkpoint_every =
      static_cast<int64_t>(NumFlagOr(flags, "checkpoint-every", 50));
  const bool resume = NumFlagOr(flags, "resume", 0) != 0;
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume 1 requires --checkpoint-dir\n");
    return 2;
  }
  std::unique_ptr<ckpt::Checkpointer> checkpointer;
  if (!checkpoint_dir.empty()) {
    if (checkpoint_every <= 0) {
      std::fprintf(stderr, "--checkpoint-every must be > 0\n");
      return 2;
    }
    checkpointer = std::make_unique<ckpt::Checkpointer>(
        ckpt::Checkpointer::Options{checkpoint_dir, /*retain=*/3});
  }
  if (resume) {
    int64_t restored_step = 0;
    std::string error;
    if (checkpointer->RestoreLatest(
            [&](ckpt::CheckpointReader* reader, std::string* load_error) {
              return trainer.LoadState(reader, &dropout, load_error);
            },
            &restored_step, &error)) {
      std::printf("resumed from step %lld\n",
                  static_cast<long long>(restored_step));
    } else if (error.rfind("no snapshots", 0) != 0) {
      // An empty directory is a normal first run; anything else is fatal.
      std::fprintf(stderr, "resume failed: %s\n", error.c_str());
      return 1;
    }
  }

  double tail;
  if (checkpointer != nullptr) {
    while (trainer.steps_done() < trainer_config.steps) {
      trainer.TrainStep();
      if (trainer.steps_done() % checkpoint_every == 0 ||
          trainer.steps_done() == trainer_config.steps) {
        std::string error;
        if (!checkpointer->WriteSnapshot(
                trainer.steps_done(),
                [&](ckpt::CheckpointWriter* writer) {
                  trainer.SaveState(writer, &dropout);
                },
                &error)) {
          std::fprintf(stderr, "checkpoint write failed: %s\n", error.c_str());
          return 1;
        }
      }
    }
    tail = trainer.tail_mean();
  } else {
    tail = trainer.Train();
  }
  std::printf("tail mean reward: %.6f\n", tail);
  const std::string weights = FlagOr(flags, "weights", "policy.weights");
  if (!policy->SaveParameters(weights)) {
    std::fprintf(stderr, "failed writing weights '%s'\n", weights.c_str());
    return 1;
  }
  std::printf("weights saved to %s\n", weights.c_str());
  // Immediate test-range evaluation for convenience.
  core::PolicyStrategy strategy(policy.get(),
                                core::VariantName(policy_config.variant));
  PrintMetrics("test range",
               backtest::ComputeMetrics(backtest::RunOnTestRange(
                   &strategy, dataset, trainer_config.reward.cost_rate)));
  return 0;
}

int CmdBacktest(const Flags& flags) {
  const market::MarketDataset dataset = ResolveDataset(flags);
  const core::PolicyConfig policy_config = PolicyConfigFor(flags, dataset);
  Rng init(1);
  Rng dropout(2);
  auto policy = core::MakePolicy(policy_config, &init, &dropout);
  const std::string weights = FlagOr(flags, "weights", "policy.weights");
  if (!policy->LoadParameters(weights)) {
    std::fprintf(stderr,
                 "failed loading weights '%s' (train first, and use the "
                 "same --variant/--window)\n",
                 weights.c_str());
    return 1;
  }
  core::PolicyStrategy strategy(policy.get(),
                                core::VariantName(policy_config.variant));
  PrintMetrics(core::VariantName(policy_config.variant),
               backtest::ComputeMetrics(backtest::RunOnTestRange(
                   &strategy, dataset, NumFlagOr(flags, "cost", 0.0025))));
  return 0;
}

/// Exact percentile of a sorted latency vector (the obs histogram's
/// log2-bucketed estimate is fine for dashboards; the CLI keeps the raw
/// samples so the reported p50/p95/p99 are exact).
double ExactPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int CmdServe(const Flags& flags) {
  const market::MarketDataset dataset = ResolveDataset(flags);
  const core::PolicyConfig policy_config = PolicyConfigFor(flags, dataset);
  Rng init(1);
  Rng dropout(2);
  auto policy = core::MakePolicy(policy_config, &init, &dropout);
  const std::string weights = FlagOr(flags, "weights", "policy.weights");
  if (!policy->LoadParameters(weights)) {
    std::fprintf(stderr,
                 "failed loading weights '%s' (train first, and use the "
                 "same --variant/--window)\n",
                 weights.c_str());
    return 1;
  }

  serve::ServerConfig config;
  config.max_batch = static_cast<int64_t>(NumFlagOr(flags, "batch", 256));
  config.queue_capacity =
      static_cast<int64_t>(NumFlagOr(flags, "queue-capacity", 4096));
  config.workers = static_cast<int>(NumFlagOr(flags, "workers", 0));
  config.costs =
      backtest::CostModel::Uniform(NumFlagOr(flags, "cost", 0.0025));
  serve::PortfolioServer server(&dataset.panel, policy.get(), config);

  // Users start on the test range (never earlier than one full lookback
  // window) and advance tick-by-tick until the feed runs out.
  const int64_t num_users =
      static_cast<int64_t>(NumFlagOr(flags, "users", 1000));
  const int64_t first =
      std::max<int64_t>(policy_config.window, dataset.train_end);
  int64_t ticks = static_cast<int64_t>(NumFlagOr(flags, "ticks", 50));
  const int64_t available = dataset.panel.num_periods() - first;
  if (ticks > available) {
    std::fprintf(stderr, "clamping --ticks %lld to the %lld feed periods\n",
                 static_cast<long long>(ticks),
                 static_cast<long long>(available));
    ticks = available;
  }
  if (num_users <= 0 || ticks <= 0) {
    std::fprintf(stderr, "serve needs --users > 0 and --ticks > 0\n");
    return 2;
  }
  for (int64_t u = 0; u < num_users; ++u) server.AddUser(first);

  const auto begin = std::chrono::steady_clock::now();
  for (int64_t tick = 0; tick < ticks; ++tick) {
    for (int64_t u = 0; u < num_users; ++u) {
      if (!server.TrySubmitTick(u)) {
        // Admission control rejected: drain the backlog, then lean on the
        // blocking path (backpressure) for this request.
        server.DrainPending();
        server.SubmitTick(u);
      }
    }
    server.DrainPending();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<double> latencies = server.latency_seconds();
  std::sort(latencies.begin(), latencies.end());
  double wealth_min = 1e300, wealth_max = -1e300, wealth_sum = 0.0;
  for (int64_t u = 0; u < num_users; ++u) {
    const double w = server.user(u).wealth;
    wealth_min = std::min(wealth_min, w);
    wealth_max = std::max(wealth_max, w);
    wealth_sum += w;
  }
  std::printf("served %lld users x %lld ticks = %lld decisions in %.3f s\n",
              static_cast<long long>(num_users),
              static_cast<long long>(ticks),
              static_cast<long long>(server.decisions()), elapsed);
  std::printf("throughput: %.0f decisions/s (batch<=%lld, workers=%d)\n",
              static_cast<double>(server.decisions()) / elapsed,
              static_cast<long long>(config.max_batch), config.workers);
  std::printf("decision latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
              1e3 * ExactPercentile(latencies, 0.50),
              1e3 * ExactPercentile(latencies, 0.95),
              1e3 * ExactPercentile(latencies, 0.99));
  if (env::HasValue("PPN_STATS_JSONL")) {
    std::printf("rolling p50/p95/p99 sampled every %lld ms -> %s "
                "(watch live with `ppn_cli top --dir <that file>`)\n",
                static_cast<long long>(env::Int64Or("PPN_SAMPLE_MS", 250)),
                env::StringOr("PPN_STATS_JSONL", "").c_str());
  }
  std::printf("final wealth: mean %.4f, min %.4f, max %.4f\n",
              wealth_sum / static_cast<double>(num_users), wealth_min,
              wealth_max);
  return 0;
}

int CmdHelpEnv() {
  std::printf("environment knobs (all PPN_* reads go through common/env):\n");
  size_t name_width = 0, kind_width = 0, fallback_width = 0;
  for (const env::VarInfo& info : env::Registry()) {
    name_width = std::max(name_width, std::strlen(info.name));
    kind_width = std::max(kind_width, std::strlen(info.kind));
    fallback_width = std::max(fallback_width, std::strlen(info.fallback));
  }
  for (const env::VarInfo& info : env::Registry()) {
    std::printf("  %-*s  %-*s  default: %-*s  %s\n",
                static_cast<int>(name_width), info.name,
                static_cast<int>(kind_width), info.kind,
                static_cast<int>(fallback_width), info.fallback,
                info.description);
  }
  return 0;
}

int CmdBaselines(const Flags& flags) {
  const market::MarketDataset dataset = ResolveDataset(flags);
  const double cost = NumFlagOr(flags, "cost", 0.0025);
  TablePrinter printer({"Algos", "APV", "SR(%)", "CR", "MDD(%)", "TO"});
  for (const std::string& name : strategies::ClassicBaselineNames()) {
    auto strategy = strategies::MakeStrategy({.name = name}, dataset);
    const backtest::Metrics m = backtest::ComputeMetrics(
        backtest::RunOnTestRange(strategy.get(), dataset, cost));
    printer.AddRow(name, {m.apv, m.sr_pct, m.cr, m.mdd_pct, m.turnover}, 3);
  }
  std::printf("%s (test range, cost %.4f)\n%s\n", dataset.name.c_str(), cost,
              printer.ToString().c_str());
  return 0;
}

std::vector<std::string> SplitCsvList(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

/// Builds the sweep `ExperimentSpec` from the shared sweep flags
/// (--datasets/--strategies/--costs/--seeds/--gamma/--lambda/--steps/
/// --checkpoint-dir/--telemetry-dir). Used by `sweep` (coordinator or
/// in-process) AND by the hidden `sweep-worker` subcommand — both sides of
/// the fabric MUST derive the spec from the same flags, or the worker's
/// seed validation rejects every task. Returns 0 on success, else the
/// process exit code.
int BuildSweepSpec(const Flags& flags, exec::ExperimentSpec* spec) {
  spec->title = "sweep";
  spec->scale = GetRunScale();
  const std::string datasets_flag =
      FlagOr(flags, "datasets", FlagOr(flags, "dataset", "crypto-a"));
  for (const std::string& name : SplitCsvList(datasets_flag)) {
    market::DatasetId id;
    if (!DatasetIdFromName(name, &id)) {
      std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
      return 2;
    }
    spec->datasets.push_back(id);
  }
  // Absent --strategies sweeps the whole registry; an explicitly empty
  // value is almost certainly a scripting mistake, not a request for the
  // full (expensive) roster.
  std::vector<std::string> names;
  if (flags.count("strategies") == 0) {
    names = strategies::AllStrategyNames();
  } else {
    names = SplitCsvList(flags.at("strategies"));
    if (names.empty()) {
      std::fprintf(stderr,
                   "--strategies is empty; omit the flag to sweep every "
                   "registered strategy\n");
      return 2;
    }
  }
  for (const std::string& name : names) {
    strategies::StrategySpec strategy{.name = name};
    strategy.gamma = NumFlagOr(flags, "gamma", strategy.gamma);
    strategy.lambda = NumFlagOr(flags, "lambda", strategy.lambda);
    strategy.base_steps =
        static_cast<int64_t>(NumFlagOr(flags, "steps", strategy.base_steps));
    spec->strategies.push_back(strategy);
  }
  if (flags.count("costs") > 0) {
    spec->cost_rates.clear();
    for (const std::string& rate : SplitCsvList(flags.at("costs"))) {
      spec->cost_rates.push_back(ParseDoubleOrDie(rate, "--costs"));
    }
  }
  if (flags.count("seeds") > 0) {
    spec->seeds.clear();
    for (const std::string& seed : SplitCsvList(flags.at("seeds"))) {
      const int64_t value = ParseInt64OrDie(seed, "--seeds");
      if (value < 0) {
        std::fprintf(stderr, "ppn: --seeds entries must be >= 0, got %s\n",
                     seed.c_str());
        return 2;
      }
      spec->seeds.push_back(static_cast<uint64_t>(value));
    }
  }

  spec->checkpoint_dir = FlagOr(flags, "checkpoint-dir", "");
  spec->telemetry_dir = FlagOr(flags, "telemetry-dir", "");
  if (spec->telemetry_dir.empty()) {
    // Env-var spelling, for parity with the bench binaries.
    spec->telemetry_dir = env::StringOr("PPN_RUNLOG_DIR", "");
  }
  // Asking for run logs implies turning the obs layer on (RunLog::Open is
  // gated on obs::Enabled(), like every other sink).
  if (!spec->telemetry_dir.empty()) obs::SetEnabled(true);
  return 0;
}

/// Hidden subcommand: one fabric worker process. Spawned by
/// `sweep --processes N`; not part of the public CLI surface.
int CmdSweepWorker(const Flags& flags) {
  exec::ExperimentSpec spec;
  const int status = BuildSweepSpec(flags, &spec);
  if (status != 0) return status;
  const std::string fabric_dir = FlagOr(flags, "fabric-dir", "");
  if (fabric_dir.empty()) {
    std::fprintf(stderr, "sweep-worker needs --fabric-dir\n");
    return 2;
  }
  return exec::FabricWorkerMain(
      spec, fabric_dir,
      static_cast<int>(NumFlagOr(flags, "worker-slot", 0)),
      static_cast<int>(NumFlagOr(flags, "worker-gen", 0)));
}

int CmdSweep(const Flags& flags) {
  exec::ExperimentSpec spec;
  const int build_status = BuildSweepSpec(flags, &spec);
  if (build_status != 0) return build_status;

  const bool many_costs = spec.cost_rates.size() > 1;
  const bool many_seeds = spec.seeds.size() > 1;
  const int processes = static_cast<int>(NumFlagOr(flags, "processes", 0));
  std::vector<exec::CellResult> rows;
  int64_t ckpt_write_failures = 0;
  if (processes > 0) {
    // Multi-process fabric: re-exec this binary as `sweep-worker`,
    // forwarding exactly the spec-building flags (anything else —
    // --processes, --json, --workers, --fabric-dir — is coordinator-only).
    exec::FabricOptions options;
    options.num_processes = processes;
    options.fabric_dir = FlagOr(flags, "fabric-dir", "");
    if (options.fabric_dir.empty()) {
      options.fabric_dir =
          (std::filesystem::temp_directory_path() /
           ("ppn-fabric-" + std::to_string(::getpid())))
              .string();
    } else {
      options.keep_fabric_dir = true;  // User-chosen scratch: leave it.
    }
    std::error_code self_error;
    const std::string self =
        std::filesystem::canonical("/proc/self/exe", self_error).string();
    if (self_error) {
      std::fprintf(stderr, "cannot resolve own binary path: %s\n",
                   self_error.message().c_str());
      return 1;
    }
    options.worker_argv = {self, "sweep-worker"};
    for (const auto& [key, value] : flags) {
      if (key == "processes" || key == "fabric-dir" || key == "json" ||
          key == "workers") {
        continue;
      }
      options.worker_argv.push_back("--" + key);
      options.worker_argv.push_back(value);
    }
    std::printf("sweep: %zu cells across %d worker processes\n\n",
                spec.datasets.size() * spec.strategies.size() *
                    spec.cost_rates.size() * spec.seeds.size(),
                processes);
    exec::FabricStats stats;
    rows = exec::RunSweepFabric(spec, options, &stats);
    ckpt_write_failures = stats.ckpt_write_failures;
    std::printf("fabric: %lld workers spawned (%lld died, %lld restarted), "
                "%lld cells stolen, %lld re-dispatched, %lld restored, "
                "%lld profile merges failed\n\n",
                static_cast<long long>(stats.workers_spawned),
                static_cast<long long>(stats.workers_died),
                static_cast<long long>(stats.workers_restarted),
                static_cast<long long>(stats.cells_stolen),
                static_cast<long long>(stats.cells_redispatched),
                static_cast<long long>(stats.cells_restored),
                static_cast<long long>(stats.profile_merge_failed));
    if (stats.profile_merge_failed > 0) {
      std::fprintf(stderr,
                   "WARNING: %lld worker profile(s) could not be merged — "
                   "results are complete, but the aggregated obs counters "
                   "undercount that worker's activity\n",
                   static_cast<long long>(stats.profile_merge_failed));
    }
  } else {
    const int workers = static_cast<int>(NumFlagOr(flags, "workers", -1.0));
    const exec::ExperimentRunner runner(
        workers >= 0 ? workers : exec::DefaultWorkerCount());
    std::printf("sweep: %zu cells across %d workers\n\n",
                spec.datasets.size() * spec.strategies.size() *
                    spec.cost_rates.size() * spec.seeds.size(),
                runner.num_workers());
    exec::RunStats stats;
    rows = runner.Run(spec, &stats);
    ckpt_write_failures = stats.ckpt_write_failures;
  }
  if (ckpt_write_failures > 0) {
    std::fprintf(stderr,
                 "WARNING: %lld cell checkpoint write(s) FAILED — results "
                 "are complete in this output, but a rerun will recompute "
                 "those cells (disk full? permissions?)\n",
                 static_cast<long long>(ckpt_write_failures));
  }

  for (const market::DatasetId id : spec.datasets) {
    const std::string dataset_name = market::DatasetName(id);
    std::vector<std::pair<std::string, const exec::CellResult*>> table_rows;
    for (const exec::CellResult& row : rows) {
      if (row.key.dataset != dataset_name) continue;
      std::string label = row.key.strategy;
      if (many_costs) {
        label += " c=" + TablePrinter::FormatCell(row.key.cost_rate, 4);
      }
      if (many_seeds) label += " s" + std::to_string(row.key.seed);
      table_rows.emplace_back(std::move(label), &row);
    }
    const TablePrinter printer = exec::MakeMetricsTable(
        "Algos", table_rows,
        {"APV", "SR(%)", "STD(%)", "MDD(%)", "CR", "TO"});
    std::printf("--- %s ---\n%s\n", dataset_name.c_str(),
                printer.ToString().c_str());
  }
  if (flags.count("json") > 0) {
    const std::string path = flags.at("json");
    if (!exec::WriteResultsJson(path, rows)) {
      std::fprintf(stderr, "failed writing '%s'\n", path.c_str());
      return 1;
    }
    std::printf("results written to %s\n", path.c_str());
  }
  return 0;
}

int CmdStress(const Flags& flags) {
  market::MarketDataset base = ResolveDataset(flags);

  std::vector<market::StressPack> packs;
  const std::string packs_flag = FlagOr(flags, "packs", "all");
  if (packs_flag == "all") {
    packs = market::AllStressPacks();
  } else {
    for (const std::string& name : SplitCsvList(packs_flag)) {
      market::StressPack pack;
      if (!market::StressPackFromName(name, &pack)) {
        std::fprintf(stderr, "unknown stress pack '%s' (known:", name.c_str());
        for (const market::StressPack known : market::AllStressPacks()) {
          std::fprintf(stderr, " %s", market::StressPackName(known).c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
      packs.push_back(pack);
    }
  }
  const uint64_t stress_seed =
      static_cast<uint64_t>(NumFlagOr(flags, "stress-seed", 7));

  // The dataset axis: the unstressed base first (the reference row of the
  // robustness table), one variant per pack, then the optional replay.
  exec::ExperimentSpec spec;
  spec.title = "stress";
  spec.scale = GetRunScale();
  std::vector<std::string> variant_labels;
  spec.custom_datasets.push_back({base, {}});
  variant_labels.push_back("base");
  for (const market::StressPack pack : packs) {
    market::StressedDataset stressed =
        market::ApplyStressPack(base, pack, stress_seed);
    spec.custom_datasets.push_back({std::move(stressed.dataset),
                                    std::move(stressed.cost_multipliers)});
    variant_labels.push_back(market::StressPackName(pack));
  }
  if (flags.count("replay") > 0) {
    market::ReplayCsvOptions options;
    options.name = FlagOr(flags, "replay-name", "");
    options.train_fraction = NumFlagOr(flags, "train-frac", 0.92);
    market::MarketDataset replay;
    std::string error;
    if (!market::LoadReplayCsv(flags.at("replay"), options, &replay, &error)) {
      std::fprintf(stderr, "replay load failed: %s\n", error.c_str());
      return 1;
    }
    spec.custom_datasets.push_back({std::move(replay), {}});
    variant_labels.push_back("replay");
  }

  // Three classic baselines plus the paper's policy by default: enough to
  // see whether the learned strategy degrades gracefully where the
  // cost-blind baselines crater.
  for (const std::string& name :
       SplitCsvList(FlagOr(flags, "strategies", "UBAH,CRP,OLMAR,PPN"))) {
    strategies::StrategySpec strategy{.name = name};
    strategy.gamma = NumFlagOr(flags, "gamma", strategy.gamma);
    strategy.lambda = NumFlagOr(flags, "lambda", strategy.lambda);
    strategy.base_steps =
        static_cast<int64_t>(NumFlagOr(flags, "steps", strategy.base_steps));
    spec.strategies.push_back(strategy);
  }
  if (spec.strategies.empty()) {
    std::fprintf(stderr, "--strategies is empty\n");
    return 2;
  }
  spec.cost_rates = {NumFlagOr(flags, "cost", 0.0025)};
  if (flags.count("seeds") > 0) {
    spec.seeds.clear();
    for (const std::string& seed : SplitCsvList(flags.at("seeds"))) {
      const int64_t value = ParseInt64OrDie(seed, "--seeds");
      if (value < 0) {
        std::fprintf(stderr, "ppn: --seeds entries must be >= 0, got %s\n",
                     seed.c_str());
        return 2;
      }
      spec.seeds.push_back(static_cast<uint64_t>(value));
    }
  }

  const int workers = static_cast<int>(NumFlagOr(flags, "workers", -1.0));
  const exec::ExperimentRunner runner(
      workers >= 0 ? workers : exec::DefaultWorkerCount());
  std::printf("stress: %zu strategies x %zu market variants across %d "
              "workers (stress seed %llu)\n\n",
              spec.strategies.size(), spec.custom_datasets.size(),
              runner.num_workers(),
              static_cast<unsigned long long>(stress_seed));
  const std::vector<exec::CellResult> rows = runner.Run(spec);

  // Per-variant detail tables.
  const bool many_seeds = spec.seeds.size() > 1;
  for (size_t v = 0; v < spec.custom_datasets.size(); ++v) {
    const std::string& dataset_name = spec.custom_datasets[v].dataset.name;
    std::vector<std::pair<std::string, const exec::CellResult*>> table_rows;
    for (const exec::CellResult& row : rows) {
      if (row.key.dataset != dataset_name) continue;
      std::string label = row.key.strategy;
      if (many_seeds) label += " s" + std::to_string(row.key.seed);
      table_rows.emplace_back(std::move(label), &row);
    }
    const TablePrinter printer = exec::MakeMetricsTable(
        "Algos", table_rows, {"APV", "SR(%)", "CR", "MDD(%)"});
    std::printf("--- %s [%s] ---\n%s\n", dataset_name.c_str(),
                variant_labels[v].c_str(), printer.ToString().c_str());
  }

  // The robustness matrix: APV of each strategy under each market variant
  // (seed-averaged), the one-glance answer to "who survives the tails".
  std::vector<std::string> header = {"APV"};
  header.insert(header.end(), variant_labels.begin(), variant_labels.end());
  TablePrinter matrix(std::move(header));
  for (const strategies::StrategySpec& strategy : spec.strategies) {
    std::vector<double> cells;
    for (const exec::CustomDataset& variant : spec.custom_datasets) {
      double sum = 0.0;
      int64_t count = 0;
      for (const exec::CellResult& row : rows) {
        if (row.key.strategy != strategy.display() ||
            row.key.dataset != variant.dataset.name) {
          continue;
        }
        sum += row.metrics.apv;
        ++count;
      }
      cells.push_back(count > 0 ? sum / static_cast<double>(count) : 0.0);
    }
    matrix.AddRow(strategy.display(), cells, 3);
  }
  std::printf("--- robustness (APV%s) ---\n%s\n",
              many_seeds ? ", seed mean" : "", matrix.ToString().c_str());

  if (flags.count("json") > 0) {
    const std::string path = flags.at("json");
    if (!exec::WriteResultsJson(path, rows)) {
      std::fprintf(stderr, "failed writing '%s'\n", path.c_str());
      return 1;
    }
    std::printf("results written to %s\n", path.c_str());
  }
  return 0;
}

int CmdReport(const Flags& flags) {
  const std::string dir = FlagOr(flags, "dir", "");
  const std::string trace = FlagOr(flags, "trace", "");
  const std::string merge_dir = FlagOr(flags, "merge-trace", "");
  if (!merge_dir.empty()) {
    const std::string out = FlagOr(
        flags, "out",
        (std::filesystem::path(merge_dir) / "obs" / "merged.trace.json")
            .string());
    obs::TraceMergeStats stats;
    std::string error;
    if (!obs::MergeFabricTraces(merge_dir, out, &error, &stats)) {
      std::fprintf(stderr, "trace merge failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("merged trace: %d processes, %lld events, %lld cross-process "
                "flow pairs -> %s (open in ui.perfetto.dev)\n",
                stats.processes, static_cast<long long>(stats.events),
                static_cast<long long>(stats.flow_pairs), out.c_str());
    if (stats.skipped_files > 0) {
      std::fprintf(stderr, "warning: %d unreadable trace file(s) skipped\n",
                   stats.skipped_files);
    }
    if (dir.empty() && trace.empty()) return 0;
  }
  if (dir.empty() && trace.empty()) {
    std::fprintf(stderr,
                 "report needs --dir <telemetry-dir>, --trace <trace.json>, "
                 "and/or --merge-trace <fabric_dir>\n");
    return 2;
  }
  const int64_t window =
      static_cast<int64_t>(NumFlagOr(flags, "window", 50));
  std::vector<obs::RunLogSummary> cells;
  if (!dir.empty()) {
    std::vector<std::string> errors;
    cells = obs::SummarizeRunLogDir(dir, window, &errors);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "warning: %s\n", error.c_str());
    }
    if (cells.empty()) {
      std::fprintf(stderr, "no readable *.runlog.jsonl files in %s\n",
                   dir.c_str());
      return 1;
    }
  }
  std::vector<obs::SpanStat> spans;
  if (!trace.empty()) {
    std::string error;
    if (!obs::SummarizeTrace(trace, &spans, &error)) {
      std::fprintf(stderr, "cannot summarize trace %s: %s\n", trace.c_str(),
                   error.c_str());
      return 1;
    }
  }
  std::printf("%s", obs::RenderReport(cells, spans).c_str());
  return 0;
}

/// Collects the `ppn.stats.v1` stream paths a `top --dir` target holds: a
/// stream file itself, a directory of streams, or a fabric scratch dir
/// (whose per-worker streams live under obs/).
std::vector<std::string> CollectStatsStreams(const std::string& target) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  if (fs::is_regular_file(target, ec)) {
    paths.push_back(target);
    return paths;
  }
  for (const fs::path dir : {fs::path(target), fs::path(target) / "obs"}) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      const std::string suffix = ".stats.jsonl";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0 &&
          name.rfind(".workers.jsonl") == std::string::npos) {
        paths.push_back(entry.path().string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// One refresh of the live monitor: parses every stream and renders a
/// per-process table plus (for fabric dirs) the queue/claim/done counts.
std::string RenderTopFrame(const std::string& target) {
  namespace fs = std::filesystem;
  std::string out;
  const std::vector<std::string> streams = CollectStatsStreams(target);
  TablePrinter table({"process", "up(s)", "dec/s", "p99(ms)", "cells",
                      "nonconv%", "hlth_fail"});
  for (const std::string& path : streams) {
    obs::StatsStream stream;
    if (!obs::ReadStatsStream(path, &stream)) continue;
    double decisions_per_s = 0.0;
    double p99_ms = 0.0;
    double cells = 0.0;
    double solver_calls = 0.0;
    double solver_nonconv = 0.0;
    double up_s = 0.0;
    double health_fail = 0.0;
    for (const obs::StatsSample& sample : stream.samples) {
      for (const auto& [name, delta] : sample.counters) {
        if (name == "exec.cells.completed" || name == "exec.cells.restored") {
          cells += delta;
        } else if (name == "backtest.solver.calls") {
          solver_calls += delta;
        } else if (name == "backtest.solver.nonconverged") {
          solver_nonconv += delta;
        }
      }
      health_fail += sample.health_failed;
      up_s = sample.t_ms / 1e3;
    }
    if (!stream.samples.empty()) {
      const obs::StatsSample& last = stream.samples.back();
      if (last.window_ms > 0.0) {
        auto it = last.counters.find("serve.decisions");
        if (it != last.counters.end()) {
          decisions_per_s = it->second / (last.window_ms / 1e3);
        }
      }
      for (const char* hist :
           {"serve.decide.latency.seconds", "exec.cell.seconds"}) {
        auto it = last.hists.find(hist);
        if (it != last.hists.end()) {
          p99_ms = it->second.p99 * 1e3;
          break;
        }
      }
    }
    const double nonconv_pct =
        solver_calls > 0.0 ? 100.0 * solver_nonconv / solver_calls : 0.0;
    table.AddRow(stream.process.empty() ? path : stream.process,
                 {up_s, decisions_per_s, p99_ms, cells, nonconv_pct,
                  health_fail},
                 2);
  }
  if (streams.empty()) {
    out += "no *.stats.jsonl streams under " + target +
           " (set PPN_STATS_JSONL on the run you want to watch)\n";
  } else {
    out += table.ToString();
  }

  // A fabric scratch dir also tells us queue depth and completion
  // directly from the file protocol — live even between sample windows.
  std::error_code ec;
  if (fs::is_directory(fs::path(target) / "queue", ec)) {
    auto count_entries = [](const fs::path& dir) {
      std::error_code count_ec;
      int64_t n = 0;
      for ([[maybe_unused]] const fs::directory_entry& entry :
           fs::directory_iterator(dir, count_ec)) {
        ++n;
      }
      return n;
    };
    int64_t queued = 0;
    for (const fs::directory_entry& shard :
         fs::directory_iterator(fs::path(target) / "queue", ec)) {
      queued += count_entries(shard.path());
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "fabric: %lld done, %lld running, %lld queued, %lld "
                  "failed\n",
                  static_cast<long long>(
                      count_entries(fs::path(target) / "done")),
                  static_cast<long long>(
                      count_entries(fs::path(target) / "claims")),
                  static_cast<long long>(queued),
                  static_cast<long long>(
                      count_entries(fs::path(target) / "failed")));
    out += line;
  }
  return out;
}

int CmdTop(const Flags& flags) {
  const std::string target = FlagOr(flags, "dir", "");
  if (target.empty()) {
    std::fprintf(stderr,
                 "top needs --dir <fabric_dir|telemetry_dir|stats.jsonl> "
                 "[--refresh-ms N] [--iterations N]\n");
    return 2;
  }
  const int64_t sample_ms = env::Int64Or("PPN_SAMPLE_MS", 250);
  const int64_t refresh_ms = static_cast<int64_t>(NumFlagOr(
      flags, "refresh-ms",
      static_cast<double>(std::max<int64_t>(250, sample_ms))));
  // 0 = watch until interrupted; tests and scripts pass a finite count.
  const int64_t iterations =
      static_cast<int64_t>(NumFlagOr(flags, "iterations", 0));
  const bool interactive = ::isatty(1) != 0 && iterations != 1;
  for (int64_t frame = 0; iterations <= 0 || frame < iterations; ++frame) {
    const std::string rendered = RenderTopFrame(target);
    if (interactive) std::printf("\x1b[2J\x1b[H");
    std::printf("ppn top — %s (refresh %lldms)\n%s", target.c_str(),
                static_cast<long long>(refresh_ms), rendered.c_str());
    std::fflush(stdout);
    if (iterations > 0 && frame + 1 >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: ppn_cli <generate|train|backtest|serve|baselines|"
               "sweep|stress|report|top|help-env> [--flag value ...]\n"
               "see the header comment of tools/ppn_cli.cc for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  // Periodic sampler (PPN_STATS_JSONL): covers the whole command — serve
  // ticks, trainer steps, fabric workers (each re-exec'd `sweep-worker`
  // reaches this same line with a per-worker redirected path).
  std::unique_ptr<ppn::obs::StatsSampler> sampler =
      ppn::obs::StartSamplerFromEnv(command);
  int status = 2;
  if (command == "generate") status = CmdGenerate(flags);
  else if (command == "train") status = CmdTrain(flags);
  else if (command == "backtest") status = CmdBacktest(flags);
  else if (command == "serve") status = CmdServe(flags);
  else if (command == "baselines") status = CmdBaselines(flags);
  else if (command == "sweep") status = CmdSweep(flags);
  else if (command == "sweep-worker") status = CmdSweepWorker(flags);
  else if (command == "stress") status = CmdStress(flags);
  else if (command == "report") status = CmdReport(flags);
  else if (command == "top") status = CmdTop(flags);
  else if (command == "help-env") status = CmdHelpEnv();
  else Usage();
  if (sampler != nullptr) {
    const bool sampler_ok = sampler->Stop();
    if (sampler_ok) {
      std::fprintf(stderr, "stats stream written to %s\n",
                   sampler->path().c_str());
    } else {
      std::fprintf(stderr, "WARNING: stats stream %s lost writes\n",
                   sampler->path().c_str());
    }
    sampler.reset();
  }
  if (ppn::obs::WriteProfileIfRequested()) {
    std::fprintf(stderr, "profile written to %s\n",
                 ppn::env::StringOr("PPN_PROFILE_JSON", "").c_str());
  }
  if (ppn::obs::WriteTraceIfRequested()) {
    std::fprintf(stderr, "trace written to %s (open in ui.perfetto.dev)\n",
                 ppn::env::StringOr("PPN_TRACE_JSON", "").c_str());
  }
  // SLO gate: a violated PPN_HEALTH rule makes an otherwise-clean run
  // exit nonzero (consumed by run_benches.sh and CI).
  const int health_status = ppn::obs::ReportHealthIfRequested();
  if (status == 0 && health_status != 0) status = health_status;
  return status;
}
