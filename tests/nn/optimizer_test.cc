#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace ppn::nn {
namespace {

// Minimizes f(x) = ||x - target||^2 with the given optimizer.
template <typename Opt, typename... Args>
double MinimizeQuadratic(int steps, Args&&... args) {
  ag::Var x = ag::Parameter(Tensor({3}, {5.0f, -4.0f, 2.0f}));
  const Tensor target({3}, {1.0f, 2.0f, 3.0f});
  Opt optimizer({x}, std::forward<Args>(args)...);
  for (int i = 0; i < steps; ++i) {
    x->ZeroGrad();
    ag::Var diff = ag::Sub(x, ag::Constant(target));
    ag::Var loss = ag::SumAll(ag::Mul(diff, diff));
    ag::Backward(loss);
    optimizer.Step();
  }
  double err = 0.0;
  for (int64_t i = 0; i < 3; ++i) {
    err += std::fabs(x->value()[i] - target[i]);
  }
  return err;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimizeQuadratic<Sgd>(200, 0.1f), 1e-3);
}

TEST(SgdTest, MomentumConverges) {
  EXPECT_LT(MinimizeQuadratic<Sgd>(200, 0.05f, 0.9f), 1e-3);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimizeQuadratic<Adam>(500, 0.1f), 1e-2);
}

TEST(AdamTest, StepCountIncrements) {
  ag::Var x = ag::Parameter(Tensor({1}, {1.0f}));
  Adam adam({x}, 0.01f);
  x->ZeroGrad();
  ag::Backward(ag::Mul(x, x));
  adam.Step();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(AdamTest, NoGradMeansNoChange) {
  ag::Var x = ag::Parameter(Tensor({1}, {1.0f}));
  Adam adam({x}, 0.5f);
  adam.Step();  // No gradient accumulated.
  EXPECT_FLOAT_EQ(x->value()[0], 1.0f);
}

TEST(OptimizerTest, RejectsNonTrainableLeaf) {
  ag::Var c = ag::Constant(Tensor({1}));
  EXPECT_DEATH(Sgd({c}, 0.1f), "non-trainable");
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  ag::Var x = ag::Parameter(Tensor({2}));
  x->AccumulateGrad(Tensor({2}, {3.0f, 4.0f}));  // Norm 5.
  Sgd sgd({x}, 0.1f);
  const double norm = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(x->grad()[0], 0.6f, 1e-6);
  EXPECT_NEAR(x->grad()[1], 0.8f, 1e-6);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Var x = ag::Parameter(Tensor({2}));
  x->AccumulateGrad(Tensor({2}, {0.3f, 0.4f}));
  Sgd sgd({x}, 0.1f);
  sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(x->grad()[0], 0.3f, 1e-7);
}

TEST(AdamTest, BiasCorrectionMakesFirstStepsLearningRateSized) {
  // With bias correction the very first Adam step is ~lr in magnitude.
  ag::Var x = ag::Parameter(Tensor({1}, {10.0f}));
  Adam adam({x}, 0.1f);
  x->ZeroGrad();
  ag::Backward(ag::Mul(x, x));  // grad = 20.
  adam.Step();
  EXPECT_NEAR(x->value()[0], 10.0f - 0.1f, 1e-3);
}

}  // namespace
}  // namespace ppn::nn
