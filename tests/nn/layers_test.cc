#include <cmath>

#include <gtest/gtest.h>

#include "nn/conv.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/module.h"

namespace ppn::nn {
namespace {

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Tensor w = XavierUniform({100, 50}, 100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w[i]), bound);
  }
}

TEST(InitTest, KaimingBounds) {
  Rng rng(1);
  Tensor w = KaimingUniform({64, 32}, 32, &rng);
  const float bound = std::sqrt(6.0f / 32.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w[i]), bound);
  }
}

TEST(LinearTest, KnownAffineMap) {
  Rng rng(1);
  Linear layer(2, 3, &rng);
  // Overwrite weights with known values.
  float* w = layer.weight()->mutable_value()->MutableData();
  const float weights[6] = {1, 2, 3, 4, 5, 6};  // [2,3] row-major.
  for (int i = 0; i < 6; ++i) w[i] = weights[i];
  float* b = layer.bias()->mutable_value()->MutableData();
  b[0] = 0.5f;
  b[1] = -0.5f;
  b[2] = 1.0f;
  ag::Var x = ag::Constant(Tensor({1, 2}, {1.0f, 2.0f}));
  ag::Var y = layer.Forward(x);
  // y = [1*1+2*4, 1*2+2*5, 1*3+2*6] + b = [9.5, 11.5, 16].
  EXPECT_TRUE(y->value().AllClose(Tensor({1, 3}, {9.5f, 11.5f, 16.0f})));
}

TEST(LinearTest, WrongInputWidthAborts) {
  Rng rng(1);
  Linear layer(4, 2, &rng);
  ag::Var x = ag::Constant(Tensor({1, 3}));
  EXPECT_DEATH(layer.Forward(x), "PPN_CHECK");
}

TEST(ModuleTest, ParameterCountsAndNames) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
  const auto named = layer.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(7);
  Linear a(3, 2, &rng);
  Linear b(3, 2, &rng);  // Different init.
  const std::string path = ::testing::TempDir() + "/linear_params.txt";
  ASSERT_TRUE(a.SaveParameters(path));
  ASSERT_TRUE(b.LoadParameters(path));
  EXPECT_TRUE(b.weight()->value().AllClose(a.weight()->value()));
  EXPECT_TRUE(b.bias()->value().AllClose(a.bias()->value()));
}

TEST(ModuleTest, LoadRejectsWrongShape) {
  Rng rng(7);
  Linear a(3, 2, &rng);
  Linear b(2, 2, &rng);
  const std::string path = ::testing::TempDir() + "/linear_params2.txt";
  ASSERT_TRUE(a.SaveParameters(path));
  EXPECT_FALSE(b.LoadParameters(path));
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng(1);
  Linear a(3, 2, &rng);
  Linear b(3, 2, &rng);
  b.CopyParametersFrom(a);
  EXPECT_TRUE(b.weight()->value().AllClose(a.weight()->value()));
}

TEST(ModuleTest, PolyakUpdateMovesToward) {
  Rng rng(1);
  Linear a(2, 2, &rng);
  Linear b(2, 2, &rng);
  const float before = b.weight()->value()[0];
  const float target = a.weight()->value()[0];
  b.PolyakUpdateFrom(a, 0.25f);
  const float after = b.weight()->value()[0];
  EXPECT_NEAR(after, 0.75f * before + 0.25f * target, 1e-6f);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(1);
  Linear layer(2, 2, &rng);
  ag::Var x = ag::Constant(Tensor::Full({1, 2}, 1.0f));
  ag::Var loss = ag::SumAll(layer.Forward(x));
  ag::Backward(loss);
  EXPECT_TRUE(layer.weight()->has_grad());
  layer.ZeroGrad();
  EXPECT_TRUE(layer.weight()->grad().AllClose(Tensor({2, 2})));
}

TEST(ModuleTest, TrainingFlagPropagates) {
  struct Parent : Module {
    explicit Parent(Rng* rng) : child(2, 2, rng) {
      RegisterSubmodule("child", &child);
    }
    Linear child;
  };
  Rng rng(1);
  Parent parent(&rng);
  parent.SetTraining(false);
  EXPECT_FALSE(parent.child.training());
  parent.SetTraining(true);
  EXPECT_TRUE(parent.child.training());
}

// ----------------------------------------------------------- conv ----

TEST(ConvGeometryTest, CausalPreservesLength) {
  for (const int64_t dilation : {1, 2, 4, 8}) {
    const Conv2dGeometry g = CausalTimeConvGeometry(3, dilation);
    EXPECT_EQ(g.OutW(30), 30) << "dilation=" << dilation;
    EXPECT_EQ(g.OutH(7), 7);
  }
}

TEST(ConvGeometryTest, CorrelationalPreservesAssets) {
  for (const int64_t m : {2, 5, 12, 44}) {
    const Conv2dGeometry g = CorrelationalConvGeometry(m);
    EXPECT_EQ(g.OutH(m), m) << "m=" << m;
  }
}

TEST(ConvGeometryTest, TimeCollapseGivesWidthOne) {
  const Conv2dGeometry g = TimeCollapseConvGeometry(30);
  EXPECT_EQ(g.OutW(30), 1);
}

TEST(ConvLayerTest, CausalityNoFutureLeakage) {
  // Changing the input at time t must not change outputs at times < t.
  Rng rng(3);
  Conv2dLayer layer(1, 2, CausalTimeConvGeometry(3, 2), &rng);
  Tensor input({1, 1, 1, 10});
  Rng data_rng(5);
  for (int64_t i = 0; i < 10; ++i) {
    input.MutableData()[i] = static_cast<float>(data_rng.Normal());
  }
  ag::Var base_out = layer.Forward(ag::Constant(input.Clone()));
  Tensor perturbed = input.Clone();
  const int64_t t_changed = 6;
  perturbed.MutableData()[t_changed] += 10.0f;
  ag::Var new_out = layer.Forward(ag::Constant(perturbed));
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t t = 0; t < 10; ++t) {
      const float before = base_out->value().At({0, c, 0, t});
      const float after = new_out->value().At({0, c, 0, t});
      if (t < t_changed) {
        EXPECT_FLOAT_EQ(before, after) << "leak at t=" << t;
      }
    }
  }
  // The changed position itself must be affected (kernel tap at lag 0).
  EXPECT_NE(base_out->value().At({0, 0, 0, t_changed}),
            new_out->value().At({0, 0, 0, t_changed}));
}

TEST(ConvLayerTest, DilatedReceptiveFieldReachesBack) {
  // With kernel 3, dilation 4, output at t depends on t-8 but not t-9.
  Rng rng(3);
  Conv2dLayer layer(1, 1, CausalTimeConvGeometry(3, 4), &rng);
  Tensor input({1, 1, 1, 16});
  auto out_at = [&](const Tensor& in, int64_t t) {
    ag::Var out = layer.Forward(ag::Constant(in.Clone()));
    return out->value().At({0, 0, 0, t});
  };
  const int64_t t = 12;
  Tensor in_base = input.Clone();
  Tensor in_reach = input.Clone();
  in_reach.MutableData()[t - 8] += 1.0f;
  Tensor in_beyond = input.Clone();
  in_beyond.MutableData()[t - 9] += 1.0f;
  EXPECT_NE(out_at(in_base, t), out_at(in_reach, t));
  EXPECT_FLOAT_EQ(out_at(in_base, t), out_at(in_beyond, t));
}

TEST(ConvLayerTest, CorrelationalConvMixesAssets) {
  Rng rng(3);
  const int64_t m = 5;
  Conv2dLayer layer(1, 1, CorrelationalConvGeometry(m), &rng);
  Tensor input({1, 1, m, 4});
  ag::Var base = layer.Forward(ag::Constant(input.Clone()));
  Tensor perturbed = input.Clone();
  perturbed.Set({0, 0, 0, 2}, 5.0f);  // Change asset 0 only.
  ag::Var changed = layer.Forward(ag::Constant(perturbed));
  // Some OTHER asset's output at the same time step must change.
  bool other_asset_affected = false;
  for (int64_t a = 1; a < m; ++a) {
    if (base->value().At({0, 0, a, 2}) != changed->value().At({0, 0, a, 2})) {
      other_asset_affected = true;
    }
  }
  EXPECT_TRUE(other_asset_affected);
}

// ----------------------------------------------------------- lstm ----

TEST(LstmTest, HandComputedSingleStep) {
  Rng rng(1);
  Lstm lstm(1, 1, &rng);
  // Set all weights to known values: w_ih = [0.5 0.5 0.5 0.5],
  // w_hh = 0 (first step anyway), bias = 0.
  auto params = lstm.NamedParameters();
  for (auto& [name, var] : params) {
    float* data = var->mutable_value()->MutableData();
    for (int64_t i = 0; i < var->numel(); ++i) {
      data[i] = name == "w_ih" ? 0.5f : 0.0f;
    }
  }
  ag::Var x = ag::Constant(Tensor({1, 1, 1}, {1.0f}));
  ag::Var h = lstm.ForwardLastHidden(x);
  // z = 0.5 for all gates: i = f = o = sigmoid(0.5), g = tanh(0.5),
  // c = i * g, h = o * tanh(c).
  const double gate = 1.0 / (1.0 + std::exp(-0.5));
  const double c = gate * std::tanh(0.5);
  const double expected = gate * std::tanh(c);
  EXPECT_NEAR(h->value()[0], expected, 1e-6);
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
  Rng rng(1);
  Lstm lstm(2, 3, &rng);
  for (const auto& [name, var] : lstm.NamedParameters()) {
    if (name != "bias") continue;
    for (int64_t j = 0; j < 12; ++j) {
      const float expected = (j >= 3 && j < 6) ? 1.0f : 0.0f;
      EXPECT_FLOAT_EQ(var->value()[j], expected) << "j=" << j;
    }
  }
}

TEST(LstmTest, LastHiddenMatchesAllHiddenTail) {
  Rng rng(9);
  Lstm lstm(3, 4, &rng);
  Tensor seq_data({2, 5, 3});
  Rng data_rng(10);
  for (int64_t i = 0; i < seq_data.numel(); ++i) {
    seq_data.MutableData()[i] = static_cast<float>(data_rng.Normal());
  }
  ag::Var seq = ag::Constant(seq_data);
  ag::Var last = lstm.ForwardLastHidden(seq);
  ag::Var all = lstm.ForwardAllHidden(seq);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t h = 0; h < 4; ++h) {
      EXPECT_FLOAT_EQ(last->value().At({b, h}), all->value().At({b, 4, h}));
    }
  }
}

TEST(LstmTest, OrderSensitivity) {
  // An LSTM must distinguish sequence order (unlike a mean pool).
  Rng rng(11);
  Lstm lstm(1, 4, &rng);
  Tensor forward_seq({1, 4, 1}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor reversed_seq({1, 4, 1}, {4.0f, 3.0f, 2.0f, 1.0f});
  ag::Var h1 = lstm.ForwardLastHidden(ag::Constant(forward_seq));
  ag::Var h2 = lstm.ForwardLastHidden(ag::Constant(reversed_seq));
  EXPECT_FALSE(h1->value().AllClose(h2->value()));
}

TEST(LstmTest, GradientFlowsThroughTime) {
  Rng rng(13);
  Lstm lstm(1, 2, &rng);
  Tensor seq({1, 6, 1}, {0.1f, -0.2f, 0.3f, 0.2f, -0.1f, 0.4f});
  ag::Var input = ag::Parameter(seq);
  ag::Var h = lstm.ForwardLastHidden(input);
  ag::Backward(ag::SumAll(h));
  // Gradient w.r.t. the FIRST timestep must be nonzero (full BPTT).
  EXPECT_NE(input->grad()[0], 0.0f);
  for (const ag::Var& p : lstm.Parameters()) {
    EXPECT_TRUE(p->has_grad());
  }
}

}  // namespace
}  // namespace ppn::nn
