// Module parameter persistence: the legacy text format must round-trip
// non-finite values (regression: the reader used iostream `>>`, which
// rejects the "nan"/"inf" tokens the writer emits), writes must be atomic
// (temp + rename, no partial files), and the binary SaveState/LoadState
// path must round-trip exact bits with contextual mismatch errors.

#include "nn/module.h"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/binio.h"
#include "common/random.h"
#include "nn/linear.h"

namespace ppn::nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/module_io_" + name;
}

Linear MakeLinear(uint64_t seed = 1) {
  Rng rng(seed);
  return Linear(3, 2, &rng);
}

void ExpectBitIdentical(const Module& a, const Module& b) {
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->numel(), pb[i]->numel());
    EXPECT_EQ(std::memcmp(pa[i]->value().Data(), pb[i]->value().Data(),
                          sizeof(float) * pa[i]->numel()),
              0)
        << "parameter " << i;
  }
}

TEST(ModuleTextIoTest, FiniteRoundTrip) {
  Linear source = MakeLinear(1);
  const std::string path = TempPath("finite.weights");
  ASSERT_TRUE(source.SaveParameters(path));
  Linear loaded = MakeLinear(2);
  ASSERT_TRUE(loaded.LoadParameters(path));
  // Text rounds to 9 significant digits, which is exact for float32.
  ExpectBitIdentical(source, loaded);
}

TEST(ModuleTextIoTest, NonFiniteValuesRoundTrip) {
  // Regression: training that diverged to NaN/Inf produced weight files
  // the loader refused ("failed loading weights"), because operator>>
  // rejects the very tokens operator<< emits for non-finite floats.
  Linear source = MakeLinear(1);
  float* data = source.Parameters()[0]->mutable_value()->MutableData();
  data[0] = std::numeric_limits<float>::quiet_NaN();
  data[1] = std::numeric_limits<float>::infinity();
  data[2] = -std::numeric_limits<float>::infinity();
  const std::string path = TempPath("nonfinite.weights");
  ASSERT_TRUE(source.SaveParameters(path));

  Linear loaded = MakeLinear(2);
  ASSERT_TRUE(loaded.LoadParameters(path));
  const float* in = loaded.Parameters()[0]->value().Data();
  EXPECT_TRUE(std::isnan(in[0]));
  EXPECT_EQ(in[1], std::numeric_limits<float>::infinity());
  EXPECT_EQ(in[2], -std::numeric_limits<float>::infinity());
}

TEST(ModuleTextIoTest, SaveIsAtomic) {
  const std::string path = TempPath("atomic.weights");
  Linear source = MakeLinear(1);
  ASSERT_TRUE(source.SaveParameters(path));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ModuleTextIoTest, SaveToBadPathFailsCleanly) {
  Linear source = MakeLinear(1);
  EXPECT_FALSE(source.SaveParameters("/nonexistent_dir/zzz/x.weights"));
}

TEST(ModuleTextIoTest, LoadRejectsShapeMismatch) {
  Linear source = MakeLinear(1);
  const std::string path = TempPath("shape.weights");
  ASSERT_TRUE(source.SaveParameters(path));
  Rng rng(2);
  Linear other(4, 2, &rng);  // Different input width.
  EXPECT_FALSE(other.LoadParameters(path));
}

TEST(ModuleBinaryIoTest, ExactBitRoundTrip) {
  Linear source = MakeLinear(1);
  float* data = source.Parameters()[0]->mutable_value()->MutableData();
  data[0] = std::numeric_limits<float>::quiet_NaN();
  data[1] = std::nextafterf(1.0f, 2.0f);  // Needs all 24 mantissa bits.

  std::ostringstream out;
  ckpt::BinWriter writer(&out);
  source.SaveState(&writer);
  const std::string bytes = out.str();

  Linear loaded = MakeLinear(2);
  ckpt::BinReader reader(bytes.data(), bytes.size());
  std::string error;
  ASSERT_TRUE(loaded.LoadState(&reader, &error)) << error;
  ExpectBitIdentical(source, loaded);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ModuleBinaryIoTest, LoadReportsNameMismatch) {
  Linear source = MakeLinear(1);
  std::ostringstream out;
  ckpt::BinWriter writer(&out);
  source.SaveState(&writer);
  const std::string bytes = out.str();

  // A module tree with different parameter shapes must refuse with a
  // message naming what it found (NOT Linear(2,3): its transposed weight
  // has the same numel and would wrongly pass a count-only check).
  Rng rng(2);
  Linear other(4, 4, &rng);
  ckpt::BinReader reader(bytes.data(), bytes.size());
  std::string error;
  EXPECT_FALSE(other.LoadState(&reader, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ModuleBinaryIoTest, LoadFailsOnTruncatedPayload) {
  Linear source = MakeLinear(1);
  std::ostringstream out;
  ckpt::BinWriter writer(&out);
  source.SaveState(&writer);
  const std::string bytes = out.str().substr(0, out.str().size() / 2);

  Linear loaded = MakeLinear(2);
  ckpt::BinReader reader(bytes.data(), bytes.size());
  std::string error;
  EXPECT_FALSE(loaded.LoadState(&reader, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ppn::nn
