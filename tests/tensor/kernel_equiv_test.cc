#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tensor/dispatch.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

// Pins the blocked/vectorized kernels in tensor/ops.cc to the naive
// reference loops BIT-FOR-BIT — under EVERY dispatch path. The
// production kernels are allowed any blocking, SIMD width, or thread
// count as long as each output element's k terms accumulate in
// ascending order into a single float — these tests are the contract's
// enforcement (see DESIGN.md "Memory & kernel architecture" and §2.8).

namespace ppn {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kQNaN = std::numeric_limits<float>::quiet_NaN();

// Runs `fn` once per available dispatch path (scalar always; AVX2 when
// the host supports it), with the path forced for the duration. Tests
// written against this helper therefore prove scalar==naive and
// avx2==naive, i.e. scalar==avx2 bit-for-bit.
template <typename Fn>
void ForEachPath(Fn fn) {
  {
    dispatch::ScopedForcePath force(dispatch::SimdPath::kScalar);
    fn("scalar");
  }
  if (dispatch::Avx2Available()) {
    dispatch::ScopedForcePath force(dispatch::SimdPath::kAvx2);
    fn("avx2");
  }
}

// Reference implementations: the seed repo's triple loops, one float
// accumulator per output element, k ascending.

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.Data()[i * k + p] * b.Data()[p * n + j];
      }
      out.MutableData()[i * n + j] = acc;
    }
  }
  return out;
}

Tensor NaiveMatMulTransA(const Tensor& a, const Tensor& b) {
  const int64_t k = a.shape()[0], m = a.shape()[1], n = b.shape()[1];
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.Data()[p * m + i] * b.Data()[p * n + j];
      }
      out.MutableData()[i * n + j] = acc;
    }
  }
  return out;
}

Tensor NaiveMatMulTransB(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.Data()[i * k + p] * b.Data()[j * k + p];
      }
      out.MutableData()[i * n + j] = acc;
    }
  }
  return out;
}

// EXPECT-style bitwise tensor equality. AllClose would hide both
// rounding drift and NaN-payload differences; bit_cast hides nothing.
void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const char* label) {
  ASSERT_EQ(got.shape(), want.shape()) << label;
  const float* pg = got.Data();
  const float* pw = want.Data();
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(pg[i]), std::bit_cast<uint32_t>(pw[i]))
        << label << ": element " << i << " got " << pg[i] << " want " << pw[i];
  }
}

// Random matrix with a sprinkling of exact zeros (the seed kernels had a
// `== 0.0f` fast path; zeros must still round-trip bit-identically) and
// negative values (exercises -0.0-adjacent products).
Tensor TestMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = RandomUniform({rows, cols}, -2.0f, 2.0f, &rng);
  float* p = t.MutableData();
  for (int64_t i = 0; i < t.numel(); i += 7) p[i] = 0.0f;
  return t;
}

struct Dims {
  int64_t m, k, n;
};

// Odd shapes chosen to hit every edge path of the blocked driver: unit,
// sub-block, exact-block, non-multiple-of-block, tall/skinny in each
// dimension, one size big enough to trip the OpenMP branch, and
// SIMD-hostile cases — k=1 (single-term accumulators), n in {7, 9, 17}
// (odd vector tails around the 8-lane width), and zero-size extents
// (empty loops must not touch the null buffer).
const Dims kShapes[] = {
    {1, 1, 1},   {1, 5, 1},   {5, 9, 7},    {13, 21, 17}, {37, 3, 65},
    {3, 64, 2},  {8, 8, 8},   {16, 16, 16}, {64, 64, 64}, {2, 100, 9},
    {100, 2, 3}, {9, 7, 100}, {48, 48, 48}, {8, 1, 8},    {16, 1, 17},
    {8, 8, 7},   {9, 5, 9},   {24, 24, 17}, {0, 3, 4},    {3, 0, 4},
    {3, 4, 0},
};

TEST(KernelEquivalenceTest, MatMulBitIdenticalToNaive) {
  ForEachPath([](const char* path) {
    SCOPED_TRACE(path);
    for (const Dims& d : kShapes) {
      Tensor a = TestMatrix(d.m, d.k, 101 + d.m);
      Tensor b = TestMatrix(d.k, d.n, 202 + d.n);
      ExpectBitIdentical(MatMul(a, b), NaiveMatMul(a, b), "MatMul");
    }
  });
}

TEST(KernelEquivalenceTest, MatMulTransABitIdenticalToNaive) {
  ForEachPath([](const char* path) {
    SCOPED_TRACE(path);
    for (const Dims& d : kShapes) {
      Tensor a = TestMatrix(d.k, d.m, 303 + d.m);
      Tensor b = TestMatrix(d.k, d.n, 404 + d.n);
      ExpectBitIdentical(MatMulTransA(a, b), NaiveMatMulTransA(a, b),
                         "MatMulTransA");
    }
  });
}

TEST(KernelEquivalenceTest, MatMulTransBBitIdenticalToNaive) {
  ForEachPath([](const char* path) {
    SCOPED_TRACE(path);
    for (const Dims& d : kShapes) {
      Tensor a = TestMatrix(d.m, d.k, 505 + d.m);
      Tensor b = TestMatrix(d.n, d.k, 606 + d.n);
      ExpectBitIdentical(MatMulTransB(a, b), NaiveMatMulTransB(a, b),
                         "MatMulTransB");
    }
  });
}

// Inputs sliced out of a larger matrix with Narrow at an odd column
// offset: the slice copies element patterns that started at a
// misaligned address, and the odd widths keep every row's vector tail
// busy. (Kernels use unaligned loads throughout; this pins that no
// future "aligned fast path" sneaks in wrong.)
TEST(KernelEquivalenceTest, NarrowedViewsBitIdenticalAcrossPaths) {
  Tensor big_a = TestMatrix(21, 40, 1111);
  Tensor big_b = TestMatrix(40, 33, 2222);
  Tensor a = Narrow(big_a, /*axis=*/1, /*start=*/1, /*length=*/19);   // 21x19
  Tensor b2 = Narrow(big_b, /*axis=*/0, /*start=*/3, /*length=*/19);  // 19x33
  Tensor b = Narrow(b2, /*axis=*/1, /*start=*/5, /*length=*/17);      // 19x17
  Tensor want_sum;
  {
    dispatch::ScopedForcePath force(dispatch::SimdPath::kScalar);
    want_sum = SumRows(a);
  }
  ForEachPath([&](const char* path) {
    SCOPED_TRACE(path);
    ExpectBitIdentical(MatMul(a, b), NaiveMatMul(a, b), "MatMul/narrowed");
    ExpectBitIdentical(SumRows(a), want_sum, "SumRows/narrowed");
  });
  // Direct unaligned-pointer check on the raw tables: feed the
  // elementwise kernels a pointer offset by one float (4 bytes past the
  // pool's 64-byte line). Scalar and AVX2 must agree bitwise.
  if (dispatch::Avx2Available()) {
    Tensor x = TestMatrix(1, 64, 3333);
    Tensor ys(std::vector<int64_t>{63});
    Tensor yv(std::vector<int64_t>{63});
    const vec::KernelTable& scalar = vec::ScalarKernels();
    const vec::KernelTable& avx2 = *vec::Avx2KernelsOrNull();
    scalar.unary(vec::UnaryOp::kMulScalar, x.Data() + 1, ys.MutableData(), 63,
                 1.5f, 0.0f);
    avx2.unary(vec::UnaryOp::kMulScalar, x.Data() + 1, yv.MutableData(), 63,
               1.5f, 0.0f);
    ExpectBitIdentical(yv, ys, "unary/unaligned");
  }
}

// Every enumerated elementwise kernel, both paths, against the seed's
// scalar lambda — over odd tail sizes and a value set that includes
// +/-0, +/-Inf, NaN, denormals, and the clamp boundaries.
TEST(KernelEquivalenceTest, ElementwiseOpsBitIdenticalAcrossPaths) {
  constexpr float kDenorm = 1e-40f;
  std::vector<float> specials = {0.0f,  -0.0f,   1.0f,   -1.0f, 0.5f,
                                 -2.5f, kInf,    -kInf,  kQNaN, kDenorm,
                                 -kDenorm, 1e30f, -1e30f, 0.25f, -0.75f};
  const int64_t sizes[] = {0, 1, 7, 8, 9, 16, 17, 100};
  const float lo = -1.0f, hi = 1.0f;
  for (const int64_t n : sizes) {
    Tensor a = Tensor::Uninitialized({n});
    Tensor b = Tensor::Uninitialized({n});
    Rng rng(40 + n);
    for (int64_t i = 0; i < n; ++i) {
      // Mix specials with random values; b gets a shifted special cycle
      // so special-vs-special pairs occur.
      a.MutableData()[i] = (i % 3 == 0)
                               ? specials[i % specials.size()]
                               : static_cast<float>(rng.Uniform(-2.0, 2.0));
      b.MutableData()[i] = (i % 4 == 0)
                               ? specials[(i + 5) % specials.size()]
                               : static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    // Seed-exact references for each enum entry.
    auto ref_unary = [&](vec::UnaryOp op, float x) -> float {
      switch (op) {
        case vec::UnaryOp::kAddScalar: return x + 0.75f;
        case vec::UnaryOp::kMulScalar: return x * 0.75f;
        case vec::UnaryOp::kReluFwd: return x > 0.0f ? x : 0.0f;
        case vec::UnaryOp::kAbsFwd: return std::fabs(x);
        case vec::UnaryOp::kClampFwd: return x < lo ? lo : (x > hi ? hi : x);
      }
      return 0.0f;
    };
    auto ref_binary = [&](vec::BinaryOp op, float g, float y) -> float {
      switch (op) {
        case vec::BinaryOp::kAdd: return g + y;
        case vec::BinaryOp::kSub: return g - y;
        case vec::BinaryOp::kMul: return g * y;
        case vec::BinaryOp::kDiv: return g / y;
        case vec::BinaryOp::kTanhBwd: return g * (1.0f - y * y);
        case vec::BinaryOp::kSigmoidBwd: return g * (y * (1.0f - y));
        case vec::BinaryOp::kReluBwd: return g * (y > 0.0f ? 1.0f : 0.0f);
        case vec::BinaryOp::kAbsBwd:
          return g * (y > 0.0f ? 1.0f : (y < 0.0f ? -1.0f : 0.0f));
        case vec::BinaryOp::kSqrtBwd:
          return g * (0.5f / (y > 1e-12f ? y : 1e-12f));
        case vec::BinaryOp::kClampBwd:
          return g * ((y > lo && y < hi) ? 1.0f : 0.0f);
      }
      return 0.0f;
    };
    for (const vec::UnaryOp op :
         {vec::UnaryOp::kAddScalar, vec::UnaryOp::kMulScalar,
          vec::UnaryOp::kReluFwd, vec::UnaryOp::kAbsFwd,
          vec::UnaryOp::kClampFwd}) {
      Tensor want = Tensor::Uninitialized({n});
      for (int64_t i = 0; i < n; ++i) {
        want.MutableData()[i] = ref_unary(op, a.Data()[i]);
      }
      const float p0 = op == vec::UnaryOp::kClampFwd ? lo : 0.75f;
      const float p1 = op == vec::UnaryOp::kClampFwd ? hi : 0.0f;
      ForEachPath([&](const char* path) {
        SCOPED_TRACE(testing::Message() << path << " n=" << n << " unary op "
                                        << static_cast<int>(op));
        ExpectBitIdentical(EltwiseUnary(op, a, p0, p1), want, "unary");
      });
    }
    for (const vec::BinaryOp op :
         {vec::BinaryOp::kAdd, vec::BinaryOp::kSub, vec::BinaryOp::kMul,
          vec::BinaryOp::kDiv, vec::BinaryOp::kTanhBwd,
          vec::BinaryOp::kSigmoidBwd, vec::BinaryOp::kReluBwd,
          vec::BinaryOp::kAbsBwd, vec::BinaryOp::kSqrtBwd,
          vec::BinaryOp::kClampBwd}) {
      Tensor want = Tensor::Uninitialized({n});
      for (int64_t i = 0; i < n; ++i) {
        want.MutableData()[i] = ref_binary(op, a.Data()[i], b.Data()[i]);
      }
      ForEachPath([&](const char* path) {
        SCOPED_TRACE(testing::Message() << path << " n=" << n << " binary op "
                                        << static_cast<int>(op));
        ExpectBitIdentical(EltwiseBinary(op, a, b, lo, hi), want, "binary");
      });
    }
  }
}

// Row reductions and the conv lowering across paths, including odd
// column tails and the dilated causal geometry the paper's network uses.
TEST(KernelEquivalenceTest, RowAndConvKernelsBitIdenticalAcrossPaths) {
  for (const int64_t n : {1LL, 7LL, 8LL, 9LL, 17LL, 100LL}) {
    Tensor a = TestMatrix(13, n, 50 + n);
    Tensor b = TestMatrix(1, n, 90 + n).Reshaped({n});
    Tensor want_sum(std::vector<int64_t>{n});
    for (int64_t i = 0; i < 13; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        want_sum.MutableData()[j] += a.Data()[i * n + j];
      }
    }
    Tensor want_arv = Tensor::Uninitialized({13, n});
    for (int64_t i = 0; i < 13; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        want_arv.MutableData()[i * n + j] = a.Data()[i * n + j] + b.Data()[j];
      }
    }
    ForEachPath([&](const char* path) {
      SCOPED_TRACE(testing::Message() << path << " n=" << n);
      ExpectBitIdentical(SumRows(a), want_sum, "SumRows");
      ExpectBitIdentical(AddRowVector(a, b), want_arv, "AddRowVector");
    });
  }
  // Im2Col/Col2Im: dilated causal time conv (kernel 1x3, dilation 2,
  // left pad 4 — boundary AND interior gather pixels) plus a symmetric
  // 3x3. Compare both paths against the scalar table directly.
  struct Geo {
    Conv2dGeometry g;
    const char* label;
  };
  Conv2dGeometry causal;
  causal.kernel_w = 3;
  causal.dilation_w = 2;
  causal.pad_left = 4;
  Conv2dGeometry sym;
  sym.kernel_h = 3;
  sym.kernel_w = 3;
  sym.pad_top = 1;
  sym.pad_bottom = 1;
  sym.pad_left = 1;
  sym.pad_right = 1;
  const Geo geos[] = {{causal, "causal"}, {sym, "3x3"}};
  Rng rng(7777);
  Tensor input = RandomUniform({2, 3, 9, 13}, -2.0f, 2.0f, &rng);
  for (const Geo& geo : geos) {
    Tensor want_cols;
    Tensor want_img;
    {
      dispatch::ScopedForcePath force(dispatch::SimdPath::kScalar);
      want_cols = Im2Col(input, geo.g);
      want_img = Col2Im(want_cols, input.shape(), geo.g);
    }
    ForEachPath([&](const char* path) {
      SCOPED_TRACE(testing::Message() << path << " " << geo.label);
      Tensor cols = Im2Col(input, geo.g);
      ExpectBitIdentical(cols, want_cols, "Im2Col");
      ExpectBitIdentical(Col2Im(cols, input.shape(), geo.g), want_img,
                         "Col2Im");
    });
  }
}

// The fused elementwise kernels must match the type-erased API exactly
// (same functor, same order, just statically dispatched).
TEST(KernelEquivalenceTest, FusedMapMatchesTypeErasedMap) {
  Tensor a = TestMatrix(17, 23, 707);
  auto fn = [](float x) { return std::tanh(x) + 0.5f * x; };
  ExpectBitIdentical(MapFused(a, fn), Map(a, fn), "MapFused");
}

TEST(KernelEquivalenceTest, FusedZipMapMatchesTypeErasedZipMap) {
  Tensor a = TestMatrix(17, 23, 808);
  Tensor b = TestMatrix(17, 23, 909);
  auto fn = [](float x, float y) { return x * y + (x > 0.0f ? y : -y); };
  ExpectBitIdentical(ZipMapFused(a, b, fn), ZipMap(a, b, fn), "ZipMapFused");
}

// Regression for the seed's `a_ip == 0.0f` skip, which silently dropped
// the 0 * Inf = NaN and 0 * NaN = NaN terms required by IEEE 754. A
// non-finite value anywhere in the reduction must poison the output.

TEST(NonFinitePropagationTest, ZeroTimesInfIsNaNInMatMul) {
  // a row contains an explicit 0 lined up against Inf in b.
  Tensor a({2, 3}, {0.0f, 1.0f, 2.0f,  //
                    1.0f, 0.0f, 1.0f});
  Tensor b({3, 2}, {kInf, 1.0f,  //
                    1.0f, kInf,  //
                    1.0f, 1.0f});
  ForEachPath([&](const char* path) {
    SCOPED_TRACE(path);
    Tensor c = MatMul(a, b);
    // Row 0: 0*Inf + 1*1 + 2*1 = NaN ; 0*1 + 1*Inf + 2*1 = Inf.
    EXPECT_TRUE(std::isnan(c.Data()[0]));
    EXPECT_TRUE(std::isinf(c.Data()[1]));
    // Row 1: 1*Inf + 0*1 + 1*1 = Inf ; 1*1 + 0*Inf + 1*1 = NaN.
    EXPECT_TRUE(std::isinf(c.Data()[2]));
    EXPECT_TRUE(std::isnan(c.Data()[3]));
  });
}

TEST(NonFinitePropagationTest, NaNAgainstZeroPropagatesInAllVariants) {
  // A NaN in `a` must reach every output element its row/column feeds,
  // even where the other operand is zero.
  Tensor a({2, 2}, {kQNaN, 1.0f, 1.0f, 1.0f});
  Tensor zeros({2, 2}, {0.0f, 0.0f, 0.0f, 0.0f});
  ForEachPath([&](const char* path) {
    SCOPED_TRACE(path);
    for (float v : {MatMul(a, zeros).Data()[0], MatMul(zeros, a).Data()[0],
                    MatMulTransA(a, zeros).Data()[0],
                    MatMulTransB(zeros, a).Data()[0]}) {
      EXPECT_TRUE(std::isnan(v));
    }
  });
}

TEST(NonFinitePropagationTest, MatchesNaiveReferenceOnNonFiniteInputs) {
  // Beyond "is NaN": the full non-finite pattern must match the naive
  // loops (which never had the skip).
  Rng rng(42);
  Tensor a = RandomUniform({9, 11}, -1.0f, 1.0f, &rng);
  Tensor b = RandomUniform({11, 6}, -1.0f, 1.0f, &rng);
  a.MutableData()[3] = kInf;
  a.MutableData()[25] = 0.0f;
  b.MutableData()[7] = kQNaN;
  b.MutableData()[30] = -kInf;
  Tensor want = NaiveMatMul(a, b);
  ForEachPath([&](const char* path) {
    SCOPED_TRACE(path);
    Tensor got = MatMul(a, b);
    const float* pg = got.Data();
    const float* pw = want.Data();
    for (int64_t i = 0; i < got.numel(); ++i) {
      if (std::isnan(pw[i])) {
        EXPECT_TRUE(std::isnan(pg[i])) << "element " << i;
      } else {
        EXPECT_EQ(std::bit_cast<uint32_t>(pg[i]),
                  std::bit_cast<uint32_t>(pw[i]))
            << "element " << i;
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ResolvePathSpecHonorsForcedValues) {
  EXPECT_EQ(dispatch::ResolvePathSpec("scalar"), dispatch::SimdPath::kScalar);
  if (dispatch::Avx2Available()) {
    EXPECT_EQ(dispatch::ResolvePathSpec("avx2"), dispatch::SimdPath::kAvx2);
    EXPECT_EQ(dispatch::ResolvePathSpec("auto"), dispatch::SimdPath::kAvx2);
  } else {
    EXPECT_EQ(dispatch::ResolvePathSpec("auto"), dispatch::SimdPath::kScalar);
  }
}

TEST(SimdDispatchTest, ScopedForcePathRestoresPreviousPath) {
  const dispatch::SimdPath before = dispatch::ActivePath();
  {
    dispatch::ScopedForcePath force(dispatch::SimdPath::kScalar);
    EXPECT_EQ(dispatch::ActivePath(), dispatch::SimdPath::kScalar);
  }
  EXPECT_EQ(dispatch::ActivePath(), before);
}

TEST(SimdDispatchDeathTest, MalformedPpnSimdValueAborts) {
  // The same parser backs the env read at first kernel use: a typo'd
  // PPN_SIMD must abort with a message naming the knob, never silently
  // fall back.
  EXPECT_DEATH(dispatch::ResolvePathSpec("avx512"),
               "PPN_SIMD: unknown value .*avx512");
  EXPECT_DEATH(dispatch::ResolvePathSpec(""), "PPN_SIMD: unknown value");
}

}  // namespace
}  // namespace ppn
