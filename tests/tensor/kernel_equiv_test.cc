#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

// Pins the blocked/vectorized kernels in tensor/ops.cc to the naive
// reference loops BIT-FOR-BIT. The production kernels are allowed any
// blocking, SIMD width, or thread count as long as each output element's
// k terms accumulate in ascending order into a single float — these
// tests are the contract's enforcement (see DESIGN.md "Memory & kernel
// architecture").

namespace ppn {
namespace {

// Reference implementations: the seed repo's triple loops, one float
// accumulator per output element, k ascending.

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.Data()[i * k + p] * b.Data()[p * n + j];
      }
      out.MutableData()[i * n + j] = acc;
    }
  }
  return out;
}

Tensor NaiveMatMulTransA(const Tensor& a, const Tensor& b) {
  const int64_t k = a.shape()[0], m = a.shape()[1], n = b.shape()[1];
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.Data()[p * m + i] * b.Data()[p * n + j];
      }
      out.MutableData()[i * n + j] = acc;
    }
  }
  return out;
}

Tensor NaiveMatMulTransB(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.Data()[i * k + p] * b.Data()[j * k + p];
      }
      out.MutableData()[i * n + j] = acc;
    }
  }
  return out;
}

// EXPECT-style bitwise tensor equality. AllClose would hide both
// rounding drift and NaN-payload differences; bit_cast hides nothing.
void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const char* label) {
  ASSERT_EQ(got.shape(), want.shape()) << label;
  const float* pg = got.Data();
  const float* pw = want.Data();
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(pg[i]), std::bit_cast<uint32_t>(pw[i]))
        << label << ": element " << i << " got " << pg[i] << " want " << pw[i];
  }
}

// Random matrix with a sprinkling of exact zeros (the seed kernels had a
// `== 0.0f` fast path; zeros must still round-trip bit-identically) and
// negative values (exercises -0.0-adjacent products).
Tensor TestMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = RandomUniform({rows, cols}, -2.0f, 2.0f, &rng);
  float* p = t.MutableData();
  for (int64_t i = 0; i < t.numel(); i += 7) p[i] = 0.0f;
  return t;
}

struct Dims {
  int64_t m, k, n;
};

// Odd shapes chosen to hit every edge path of the blocked driver: unit,
// sub-block, exact-block, non-multiple-of-block, tall/skinny in each
// dimension, and one size big enough to trip the OpenMP branch.
const Dims kShapes[] = {
    {1, 1, 1},   {1, 5, 1},  {5, 9, 7},    {13, 21, 17}, {37, 3, 65},
    {3, 64, 2},  {8, 8, 8},  {16, 16, 16}, {64, 64, 64}, {2, 100, 9},
    {100, 2, 3}, {9, 7, 100}, {48, 48, 48},
};

TEST(KernelEquivalenceTest, MatMulBitIdenticalToNaive) {
  for (const Dims& d : kShapes) {
    Tensor a = TestMatrix(d.m, d.k, 101 + d.m);
    Tensor b = TestMatrix(d.k, d.n, 202 + d.n);
    ExpectBitIdentical(MatMul(a, b), NaiveMatMul(a, b), "MatMul");
  }
}

TEST(KernelEquivalenceTest, MatMulTransABitIdenticalToNaive) {
  for (const Dims& d : kShapes) {
    Tensor a = TestMatrix(d.k, d.m, 303 + d.m);
    Tensor b = TestMatrix(d.k, d.n, 404 + d.n);
    ExpectBitIdentical(MatMulTransA(a, b), NaiveMatMulTransA(a, b),
                       "MatMulTransA");
  }
}

TEST(KernelEquivalenceTest, MatMulTransBBitIdenticalToNaive) {
  for (const Dims& d : kShapes) {
    Tensor a = TestMatrix(d.m, d.k, 505 + d.m);
    Tensor b = TestMatrix(d.n, d.k, 606 + d.n);
    ExpectBitIdentical(MatMulTransB(a, b), NaiveMatMulTransB(a, b),
                       "MatMulTransB");
  }
}

// The fused elementwise kernels must match the type-erased API exactly
// (same functor, same order, just statically dispatched).
TEST(KernelEquivalenceTest, FusedMapMatchesTypeErasedMap) {
  Tensor a = TestMatrix(17, 23, 707);
  auto fn = [](float x) { return std::tanh(x) + 0.5f * x; };
  ExpectBitIdentical(MapFused(a, fn), Map(a, fn), "MapFused");
}

TEST(KernelEquivalenceTest, FusedZipMapMatchesTypeErasedZipMap) {
  Tensor a = TestMatrix(17, 23, 808);
  Tensor b = TestMatrix(17, 23, 909);
  auto fn = [](float x, float y) { return x * y + (x > 0.0f ? y : -y); };
  ExpectBitIdentical(ZipMapFused(a, b, fn), ZipMap(a, b, fn), "ZipMapFused");
}

// Regression for the seed's `a_ip == 0.0f` skip, which silently dropped
// the 0 * Inf = NaN and 0 * NaN = NaN terms required by IEEE 754. A
// non-finite value anywhere in the reduction must poison the output.
constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kQNaN = std::numeric_limits<float>::quiet_NaN();

TEST(NonFinitePropagationTest, ZeroTimesInfIsNaNInMatMul) {
  // a row contains an explicit 0 lined up against Inf in b.
  Tensor a({2, 3}, {0.0f, 1.0f, 2.0f,  //
                    1.0f, 0.0f, 1.0f});
  Tensor b({3, 2}, {kInf, 1.0f,  //
                    1.0f, kInf,  //
                    1.0f, 1.0f});
  Tensor c = MatMul(a, b);
  // Row 0: 0*Inf + 1*1 + 2*1 = NaN ; 0*1 + 1*Inf + 2*1 = Inf.
  EXPECT_TRUE(std::isnan(c.Data()[0]));
  EXPECT_TRUE(std::isinf(c.Data()[1]));
  // Row 1: 1*Inf + 0*1 + 1*1 = Inf ; 1*1 + 0*Inf + 1*1 = NaN.
  EXPECT_TRUE(std::isinf(c.Data()[2]));
  EXPECT_TRUE(std::isnan(c.Data()[3]));
}

TEST(NonFinitePropagationTest, NaNAgainstZeroPropagatesInAllVariants) {
  // A NaN in `a` must reach every output element its row/column feeds,
  // even where the other operand is zero.
  Tensor a({2, 2}, {kQNaN, 1.0f, 1.0f, 1.0f});
  Tensor zeros({2, 2}, {0.0f, 0.0f, 0.0f, 0.0f});
  for (float v : {MatMul(a, zeros).Data()[0], MatMul(zeros, a).Data()[0],
                  MatMulTransA(a, zeros).Data()[0],
                  MatMulTransB(zeros, a).Data()[0]}) {
    EXPECT_TRUE(std::isnan(v));
  }
}

TEST(NonFinitePropagationTest, MatchesNaiveReferenceOnNonFiniteInputs) {
  // Beyond "is NaN": the full non-finite pattern must match the naive
  // loops (which never had the skip).
  Rng rng(42);
  Tensor a = RandomUniform({9, 11}, -1.0f, 1.0f, &rng);
  Tensor b = RandomUniform({11, 6}, -1.0f, 1.0f, &rng);
  a.MutableData()[3] = kInf;
  a.MutableData()[25] = 0.0f;
  b.MutableData()[7] = kQNaN;
  b.MutableData()[30] = -kInf;
  Tensor got = MatMul(a, b);
  Tensor want = NaiveMatMul(a, b);
  const float* pg = got.Data();
  const float* pw = want.Data();
  for (int64_t i = 0; i < got.numel(); ++i) {
    if (std::isnan(pw[i])) {
      EXPECT_TRUE(std::isnan(pg[i])) << "element " << i;
    } else {
      EXPECT_EQ(std::bit_cast<uint32_t>(pg[i]), std::bit_cast<uint32_t>(pw[i]))
          << "element " << i;
    }
  }
}

}  // namespace
}  // namespace ppn
