#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(ElementwiseTest, AddSubMulDiv) {
  Tensor a({2}, {4.0f, 9.0f});
  Tensor b({2}, {2.0f, 3.0f});
  EXPECT_TRUE(Add(a, b).AllClose(Tensor({2}, {6.0f, 12.0f})));
  EXPECT_TRUE(Sub(a, b).AllClose(Tensor({2}, {2.0f, 6.0f})));
  EXPECT_TRUE(Mul(a, b).AllClose(Tensor({2}, {8.0f, 27.0f})));
  EXPECT_TRUE(Div(a, b).AllClose(Tensor({2}, {2.0f, 3.0f})));
}

TEST(ElementwiseTest, ShapeMismatchAborts) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

TEST(ElementwiseTest, ScalarOps) {
  Tensor a({2}, {1.0f, 2.0f});
  EXPECT_TRUE(AddScalar(a, 1.0f).AllClose(Tensor({2}, {2.0f, 3.0f})));
  EXPECT_TRUE(MulScalar(a, -2.0f).AllClose(Tensor({2}, {-2.0f, -4.0f})));
}

TEST(MapTest, AppliesFunction) {
  Tensor a({3}, {1.0f, 4.0f, 9.0f});
  Tensor r = Map(a, [](float x) { return std::sqrt(x); });
  EXPECT_TRUE(r.AllClose(Tensor({3}, {1.0f, 2.0f, 3.0f})));
}

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(c.AllClose(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(MatMulTest, InnerDimMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_DEATH(MatMul(a, b), "PPN_CHECK");
}

TEST(MatMulTest, TransAEqualsExplicitTranspose) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 4}, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
  EXPECT_TRUE(MatMulTransA(a, b).AllClose(MatMul(Transpose2D(a), b)));
}

TEST(MatMulTest, TransBEqualsExplicitTranspose) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({4, 3}, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
  EXPECT_TRUE(MatMulTransB(a, b).AllClose(MatMul(a, Transpose2D(b))));
}

TEST(TransposeTest, Known) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_TRUE(t.AllClose(Tensor({3, 2}, {1, 4, 2, 5, 3, 6})));
}

TEST(ReduceTest, SumAndMean) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(SumAll(a), 10.0);
  EXPECT_DOUBLE_EQ(MeanAll(a), 2.5);
}

TEST(ReduceTest, SumRows) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(SumRows(a).AllClose(Tensor({3}, {5, 7, 9})));
}

TEST(BroadcastTest, AddRowVector) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  EXPECT_TRUE(
      AddRowVector(a, b).AllClose(Tensor({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(ConcatTest, Axis0) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_TRUE(c.AllClose(Tensor({3, 2}, {1, 2, 3, 4, 5, 6})));
}

TEST(ConcatTest, Axis1) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 1);
  EXPECT_TRUE(c.AllClose(Tensor({2, 3}, {1, 3, 4, 2, 5, 6})));
}

TEST(ConcatTest, NegativeAxis) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 1}, {3, 4});
  Tensor c = Concat({a, b}, -1);
  EXPECT_TRUE(c.AllClose(Tensor({2, 2}, {1, 3, 2, 4})));
}

TEST(ConcatTest, IncompatibleShapesAbort) {
  Tensor a({2, 2});
  Tensor b({3, 3});
  EXPECT_DEATH(Concat({a, b}, 0), "PPN_CHECK");
}

TEST(NarrowTest, MiddleSlice) {
  Tensor a({4}, {1, 2, 3, 4});
  EXPECT_TRUE(Narrow(a, 0, 1, 2).AllClose(Tensor({2}, {2, 3})));
}

TEST(NarrowTest, Axis1Of2D) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(Narrow(a, 1, 1, 2).AllClose(Tensor({2, 2}, {2, 3, 5, 6})));
}

TEST(NarrowTest, ConcatNarrowRoundTrip) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 3}, {5, 6, 7, 8, 9, 10});
  Tensor c = Concat({a, b}, 1);
  EXPECT_TRUE(Narrow(c, 1, 0, 2).AllClose(a));
  EXPECT_TRUE(Narrow(c, 1, 2, 3).AllClose(b));
}

TEST(NarrowTest, OutOfRangeAborts) {
  Tensor a({3});
  EXPECT_DEATH(Narrow(a, 0, 2, 2), "Narrow out of range");
}

TEST(RandomTensorTest, UniformBoundsAndDeterminism) {
  Rng rng1(5);
  Rng rng2(5);
  Tensor a = RandomUniform({100}, -1.0f, 1.0f, &rng1);
  Tensor b = RandomUniform({100}, -1.0f, 1.0f, &rng2);
  EXPECT_TRUE(a.AllClose(b));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_GE(a[i], -1.0f);
    EXPECT_LT(a[i], 1.0f);
  }
}

// ------------------------------------------------------------ im2col ----

TEST(Im2ColTest, Identity1x1) {
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 4});
  Conv2dGeometry g;  // 1x1 kernel.
  Tensor cols = Im2Col(input, g);
  EXPECT_EQ(cols.dim(0), 4);
  EXPECT_EQ(cols.dim(1), 1);
  EXPECT_TRUE(cols.AllClose(Tensor({4, 1}, {1, 2, 3, 4})));
}

TEST(Im2ColTest, CausalPaddingReadsZeros) {
  // 1x3 causal kernel along width with pad_left=2 keeps width.
  Tensor input({1, 1, 1, 3}, {1, 2, 3});
  Conv2dGeometry g;
  g.kernel_w = 3;
  g.pad_left = 2;
  Tensor cols = Im2Col(input, g);
  ASSERT_EQ(cols.dim(0), 3);
  ASSERT_EQ(cols.dim(1), 3);
  // Output position 0 sees [0, 0, 1]; position 2 sees [1, 2, 3].
  EXPECT_TRUE(cols.AllClose(
      Tensor({3, 3}, {0, 0, 1, 0, 1, 2, 1, 2, 3})));
}

TEST(Im2ColTest, DilationSkipsTaps) {
  Tensor input({1, 1, 1, 5}, {1, 2, 3, 4, 5});
  Conv2dGeometry g;
  g.kernel_w = 2;
  g.dilation_w = 2;
  // out_w = 5 - 2 = 3: positions see (1,3), (2,4), (3,5).
  Tensor cols = Im2Col(input, g);
  EXPECT_TRUE(cols.AllClose(Tensor({3, 2}, {1, 3, 2, 4, 3, 5})));
}

TEST(Im2ColTest, MultiChannelLayout) {
  // 2 channels, 1x1 kernel: each column is [c0, c1].
  Tensor input({1, 2, 1, 2}, {1, 2, 10, 20});
  Conv2dGeometry g;
  Tensor cols = Im2Col(input, g);
  EXPECT_TRUE(cols.AllClose(Tensor({2, 2}, {1, 10, 2, 20})));
}

TEST(Col2ImTest, AdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for random x, y (adjoint property).
  Rng rng(9);
  Tensor x = RandomNormal({2, 3, 4, 5}, 0.0f, 1.0f, &rng);
  Conv2dGeometry g;
  g.kernel_h = 2;
  g.kernel_w = 3;
  g.dilation_w = 2;
  g.pad_top = 1;
  g.pad_left = 2;
  Tensor cols = Im2Col(x, g);
  Tensor y = RandomNormal(cols.shape(), 0.0f, 1.0f, &rng);
  Tensor back = Col2Im(y, x.shape(), g);
  double lhs = 0.0;
  for (int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  double rhs = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Conv2dGeometryTest, OutputSizes) {
  Conv2dGeometry g;
  g.kernel_w = 3;
  g.dilation_w = 4;
  g.pad_left = 8;
  EXPECT_EQ(g.OutW(30), 30);  // Causal shape-preserving config.
  EXPECT_EQ(g.OutH(12), 12);
}

}  // namespace
}  // namespace ppn
