#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.ndim(), 1);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullFactory) {
  Tensor t = Tensor::Full({2, 2}, 7.0f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 7.0f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.ndim(), 1);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t[1], 2.0f);
}

TEST(TensorTest, ShapeValueMismatchAborts) {
  EXPECT_DEATH(Tensor({2, 2}, {1.0f, 2.0f}), "PPN_CHECK");
}

TEST(TensorTest, MultiIndexAccess) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.At({0, 0}), 0.0f);
  EXPECT_EQ(t.At({0, 2}), 2.0f);
  EXPECT_EQ(t.At({1, 0}), 3.0f);
  EXPECT_EQ(t.At({1, 2}), 5.0f);
}

TEST(TensorTest, SetWrites) {
  Tensor t({2, 2});
  t.Set({1, 1}, 9.0f);
  EXPECT_EQ(t.At({1, 1}), 9.0f);
  EXPECT_EQ(t.At({0, 0}), 0.0f);
}

TEST(TensorTest, NegativeAxisDim) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, CopiesShareStorage) {
  Tensor a({2});
  Tensor b = a;
  a.MutableData()[0] = 5.0f;
  EXPECT_EQ(b[0], 5.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a({2});
  Tensor b = a.Clone();
  a.MutableData()[0] = 5.0f;
  EXPECT_EQ(b[0], 0.0f);
}

TEST(TensorTest, ReshapedSharesDataAndChangesShape) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor b = a.Reshaped({3, 2});
  EXPECT_EQ(b.dim(0), 3);
  EXPECT_EQ(b.At({2, 1}), 5.0f);
  a.MutableData()[5] = 50.0f;
  EXPECT_EQ(b.At({2, 1}), 50.0f);  // View semantics.
}

TEST(TensorTest, ReshapeWrongCountAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(a.Reshaped({4}), "PPN_CHECK");
}

TEST(TensorTest, AllCloseDetectsDifferences) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.0f + 1e-7f});
  Tensor c({2}, {1.0f, 3.0f});
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
}

TEST(TensorTest, AllCloseRejectsShapeMismatch) {
  Tensor a({2});
  Tensor b({2, 1});
  EXPECT_FALSE(a.AllClose(b));
}

TEST(TensorTest, FillSetsEveryElement) {
  Tensor a({3, 3});
  a.Fill(2.5f);
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(a[i], 2.5f);
}

TEST(TensorTest, ToStringSmallShowsValues) {
  Tensor a({2}, {1.0f, 2.0f});
  const std::string s = a.ToString();
  EXPECT_NE(s.find("[2]"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(ShapeTest, ShapeNumelAndToString) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

TEST(ShapeTest, NegativeDimensionAborts) {
  EXPECT_DEATH(ShapeNumel({2, -1}), "PPN_CHECK");
}

}  // namespace
}  // namespace ppn
