// Property tests over randomly shaped tensors: algebraic identities that
// must hold for the raw kernels regardless of shape or values.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tensor/ops.h"

namespace ppn {
namespace {

class TensorProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<uint64_t>(GetParam()) * 977 + 5};

  Tensor RandomMatrix(int64_t rows, int64_t cols) {
    return RandomNormal({rows, cols}, 0.0f, 1.0f, &rng_);
  }
};

TEST_P(TensorProperty, MatMulDistributesOverAddition) {
  const int64_t m = 1 + rng_.UniformInt(6);
  const int64_t k = 1 + rng_.UniformInt(6);
  const int64_t n = 1 + rng_.UniformInt(6);
  Tensor a = RandomMatrix(m, k);
  Tensor b = RandomMatrix(k, n);
  Tensor c = RandomMatrix(k, n);
  Tensor lhs = MatMul(a, Add(b, c));
  Tensor rhs = Add(MatMul(a, b), MatMul(a, c));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-4f));
}

TEST_P(TensorProperty, MatMulAssociativity) {
  const int64_t d = 2 + rng_.UniformInt(5);
  Tensor a = RandomMatrix(d, d);
  Tensor b = RandomMatrix(d, d);
  Tensor c = RandomMatrix(d, d);
  Tensor lhs = MatMul(MatMul(a, b), c);
  Tensor rhs = MatMul(a, MatMul(b, c));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-3f));
}

TEST_P(TensorProperty, TransposeIsInvolution) {
  Tensor a = RandomMatrix(1 + rng_.UniformInt(7), 1 + rng_.UniformInt(7));
  EXPECT_TRUE(Transpose2D(Transpose2D(a)).AllClose(a));
}

TEST_P(TensorProperty, TransposeReversesMatMul) {
  const int64_t m = 1 + rng_.UniformInt(5);
  const int64_t k = 1 + rng_.UniformInt(5);
  const int64_t n = 1 + rng_.UniformInt(5);
  Tensor a = RandomMatrix(m, k);
  Tensor b = RandomMatrix(k, n);
  // (AB)^T == B^T A^T.
  Tensor lhs = Transpose2D(MatMul(a, b));
  Tensor rhs = MatMul(Transpose2D(b), Transpose2D(a));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-4f));
}

TEST_P(TensorProperty, ConcatThenNarrowRecoversParts) {
  const int64_t rows = 1 + rng_.UniformInt(4);
  const int64_t c1 = 1 + rng_.UniformInt(4);
  const int64_t c2 = 1 + rng_.UniformInt(4);
  Tensor a = RandomMatrix(rows, c1);
  Tensor b = RandomMatrix(rows, c2);
  Tensor joined = Concat({a, b}, 1);
  EXPECT_TRUE(Narrow(joined, 1, 0, c1).AllClose(a));
  EXPECT_TRUE(Narrow(joined, 1, c1, c2).AllClose(b));
}

TEST_P(TensorProperty, SumRowsMatchesMatMulWithOnes) {
  const int64_t rows = 1 + rng_.UniformInt(6);
  const int64_t cols = 1 + rng_.UniformInt(6);
  Tensor a = RandomMatrix(rows, cols);
  Tensor ones_row({1, rows});
  ones_row.Fill(1.0f);
  Tensor via_matmul = MatMul(ones_row, a).Reshaped({cols});
  EXPECT_TRUE(SumRows(a).AllClose(via_matmul, 1e-4f));
}

TEST_P(TensorProperty, SumAllIsLinear) {
  const int64_t rows = 1 + rng_.UniformInt(6);
  const int64_t cols = 1 + rng_.UniformInt(6);
  Tensor a = RandomMatrix(rows, cols);
  Tensor b = RandomMatrix(rows, cols);
  EXPECT_NEAR(SumAll(Add(a, b)), SumAll(a) + SumAll(b), 1e-3);
  EXPECT_NEAR(SumAll(MulScalar(a, 3.0f)), 3.0 * SumAll(a), 1e-3);
}

TEST_P(TensorProperty, Im2ColPreservesEnergyFor1x1Kernel) {
  // A 1x1 kernel lowering is a pure permutation of the input values.
  Tensor input = RandomNormal(
      {1 + rng_.UniformInt(3), 1 + rng_.UniformInt(3),
       1 + rng_.UniformInt(5), 1 + rng_.UniformInt(5)},
      0.0f, 1.0f, &rng_);
  Conv2dGeometry geometry;  // 1x1, no padding/dilation.
  Tensor cols = Im2Col(input, geometry);
  EXPECT_EQ(cols.numel(), input.numel());
  double energy_in = 0.0;
  double energy_out = 0.0;
  for (int64_t i = 0; i < input.numel(); ++i) {
    energy_in += input[i] * input[i];
    energy_out += cols[i] * cols[i];
  }
  EXPECT_NEAR(energy_in, energy_out, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, TensorProperty,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace ppn
