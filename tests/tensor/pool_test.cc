#include "tensor/pool.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "common/random.h"
#include "market/generator.h"
#include "obs/stats.h"
#include "ppn/policy_module.h"
#include "ppn/trainer.h"
#include "tensor/tensor.h"

namespace ppn {
namespace {

// All tests below reason in DELTAS of pool::LocalStats(): the pool is
// thread-local and the stats accumulate across tests in this binary.

TEST(PoolTest, AcquireReleaseRoundTripsThroughFreeList) {
  pool::TrimThreadCache();
  const pool::ThreadStats before = pool::LocalStats();

  float* p = pool::Acquire(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << "64-byte alignment";
  pool::Release(p, 100);

  // Same size class (128 floats) must be served from the list...
  float* q = pool::Acquire(128);
  EXPECT_EQ(q, p);
  pool::Release(q, 128);

  const pool::ThreadStats after = pool::LocalStats();
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(after.releases_cached - before.releases_cached, 2);
}

TEST(PoolTest, EveryAllocationPathIsAligned) {
  // Odd sizes straddling class boundaries, both the cached and the
  // pool-off paths: the SIMD kernels assume pool::kAlignment for fresh
  // tensor buffers, so alignment must hold for every size, not just
  // round ones.
  const int64_t sizes[] = {1, 3, 7, 9, 17, 31, 33, 63, 65, 127, 129, 1000, 4097};
  for (const int64_t numel : sizes) {
    float* p = pool::Acquire(numel);
    ASSERT_NE(p, nullptr) << "numel " << numel;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % pool::kAlignment, 0u)
        << "numel " << numel;
    pool::Release(p, numel);
    // Second acquire of the same class comes from the free list — the
    // recycled pointer must be just as aligned.
    float* q = pool::Acquire(numel);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % pool::kAlignment, 0u)
        << "recycled, numel " << numel;
    pool::Release(q, numel);
  }
  pool::ScopedPoolDisable disable;
  for (const int64_t numel : sizes) {
    float* p = pool::Acquire(numel);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % pool::kAlignment, 0u)
        << "pool off, numel " << numel;
    pool::Release(p, numel);
  }
}

TEST(PoolTest, TensorBuffersAreAligned) {
  Tensor t({3, 7});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(t.Data()) % pool::kAlignment, 0u);
  Tensor u = Tensor::Uninitialized({11});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(u.Data()) % pool::kAlignment, 0u);
}

TEST(PoolTest, ZeroNumelIsNull) {
  EXPECT_EQ(pool::Acquire(0), nullptr);
  pool::Release(nullptr, 0);  // Must be a safe no-op.
}

TEST(PoolTest, TensorBuffersAreRecycled) {
  pool::TrimThreadCache();
  const float* first;
  {
    Tensor t({4, 8});
    first = t.Data();
  }
  Tensor u({4, 8});
  EXPECT_EQ(u.Data(), first);
}

TEST(PoolTest, ZeroingConstructorClearsRecycledBuffer) {
  pool::TrimThreadCache();
  {
    Tensor garbage({3, 5});
    for (int64_t i = 0; i < garbage.numel(); ++i) {
      garbage.MutableData()[i] = 1e30f;
    }
  }
  Tensor t({3, 5});
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t.Data()[i], 0.0f) << "element " << i;
  }
}

TEST(PoolTest, UninitializedKeepsRecycledContents) {
  pool::TrimThreadCache();
  const float kSentinel = 123.5f;
  const float* recycled;
  {
    Tensor t({16});
    for (int64_t i = 0; i < t.numel(); ++i) t.MutableData()[i] = kSentinel;
    recycled = t.Data();
  }
  Tensor u = Tensor::Uninitialized({16});
  // Same buffer came back and was NOT zero-filled — this is the whole
  // point of the Uninitialized path (callers overwrite every element).
  ASSERT_EQ(u.Data(), recycled);
  for (int64_t i = 0; i < u.numel(); ++i) {
    EXPECT_EQ(u.Data()[i], kSentinel);
  }
}

TEST(PoolTest, ScopedDisableBypassesCaching) {
  pool::TrimThreadCache();
  pool::ScopedPoolDisable disable;
  EXPECT_FALSE(pool::Enabled());

  const pool::ThreadStats before = pool::LocalStats();
  float* p = pool::Acquire(64);
  ASSERT_NE(p, nullptr);
  pool::Release(p, 64);
  float* q = pool::Acquire(64);
  ASSERT_NE(q, nullptr);
  pool::Release(q, 64);
  const pool::ThreadStats after = pool::LocalStats();

  EXPECT_EQ(after.hits - before.hits, 0);
  EXPECT_EQ(after.misses - before.misses, 2);
  EXPECT_EQ(after.releases_freed - before.releases_freed, 2);
  EXPECT_EQ(after.bytes_cached, before.bytes_cached);
}

TEST(PoolTest, TrimThreadCacheDropsCachedBytes) {
  { Tensor t({64, 64}); }
  EXPECT_GT(pool::LocalStats().bytes_cached, 0);
  pool::TrimThreadCache();
  EXPECT_EQ(pool::LocalStats().bytes_cached, 0);
}

TEST(PoolTest, BytesInUseTracksLiveBuffers) {
  pool::TrimThreadCache();
  const int64_t base = pool::LocalStats().bytes_in_use;
  {
    Tensor t({32});  // Size class 32 floats = 128 bytes.
    EXPECT_EQ(pool::LocalStats().bytes_in_use - base, 128);
  }
  EXPECT_EQ(pool::LocalStats().bytes_in_use - base, 0);
}

TEST(PoolObsTest, CountersExportedWhenObsEnabled) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  obs::ScopedObsEnable enable;
  obs::ResetAll();
  pool::TrimThreadCache();

  { Tensor t({10, 10}); }  // miss + release_cached
  { Tensor t({10, 10}); }  // hit + release_cached

  obs::Snapshot snapshot = obs::TakeSnapshot();
  EXPECT_GE(snapshot.counters["tensor.pool.miss"], 1.0);
  EXPECT_GE(snapshot.counters["tensor.pool.hit"], 1.0);
  EXPECT_GE(snapshot.counters["tensor.pool.release_cached"], 2.0);
  EXPECT_GT(snapshot.gauges["tensor.pool.bytes_in_use"], 0.0);
}

// The payoff test: after warm-up, a training step's whole tensor churn
// is served from the free list — zero new heap allocations.
TEST(PoolTrainerTest, TrainingStepsStopAllocatingAfterWarmup) {
  market::SyntheticMarketConfig market_config;
  market_config.num_assets = 4;
  market_config.num_periods = 300;
  market_config.seed = 9;
  market_config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(market_config);
  market::MarketDataset dataset = generator.GenerateDataset("tiny", 0.8);

  core::PolicyConfig policy_config;
  policy_config.variant = core::PolicyVariant::kPpn;
  policy_config.num_assets = 4;
  policy_config.window = 10;
  policy_config.lstm_hidden = 4;
  policy_config.block1_channels = 3;
  policy_config.block2_channels = 4;
  policy_config.seed = 3;

  core::TrainerConfig trainer_config;
  trainer_config.batch_size = 8;
  trainer_config.steps = 30;
  trainer_config.seed = 5;

  Rng init(1);
  Rng dropout(2);
  auto policy = core::MakePolicy(policy_config, &init, &dropout);
  core::PolicyGradientTrainer trainer(policy.get(), dataset, trainer_config);

  // Warm-up: first steps populate the free list (and Adam state).
  for (int step = 0; step < 6; ++step) trainer.TrainStep();

  const int64_t misses_before = pool::LocalStats().misses;
  for (int step = 0; step < 5; ++step) trainer.TrainStep();
  const int64_t misses_after = pool::LocalStats().misses;

  EXPECT_EQ(misses_after - misses_before, 0)
      << "warm training steps should be fully served by the buffer pool";
}

}  // namespace
}  // namespace ppn
