#include "autograd/variable.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace ppn::ag {
namespace {

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Var c = Constant(Tensor({2}));
  EXPECT_FALSE(c->requires_grad());
}

TEST(VariableTest, ParameterRequiresGrad) {
  Var p = Parameter(Tensor({2}));
  EXPECT_TRUE(p->requires_grad());
}

TEST(VariableTest, DetachStopsGradient) {
  Var p = Parameter(Tensor::Full({2}, 3.0f));
  Var d = Detach(p);
  EXPECT_FALSE(d->requires_grad());
  Var loss = SumAll(MulScalar(d, 2.0f));
  Backward(loss);
  EXPECT_FALSE(p->has_grad());
}

TEST(VariableTest, AccumulateGradAddsUp) {
  Var p = Parameter(Tensor({2}));
  p->AccumulateGrad(Tensor({2}, {1.0f, 2.0f}));
  p->AccumulateGrad(Tensor({2}, {10.0f, 20.0f}));
  EXPECT_TRUE(p->grad().AllClose(Tensor({2}, {11.0f, 22.0f})));
}

TEST(VariableTest, AccumulateGradShapeMismatchAborts) {
  Var p = Parameter(Tensor({2}));
  EXPECT_DEATH(p->AccumulateGrad(Tensor({3})), "gradient shape");
}

TEST(VariableTest, ZeroGradClears) {
  Var p = Parameter(Tensor({2}));
  p->AccumulateGrad(Tensor({2}, {1.0f, 1.0f}));
  p->ZeroGrad();
  EXPECT_TRUE(p->grad().AllClose(Tensor({2})));
}

TEST(BackwardTest, ScalarSeedIsOne) {
  Var p = Parameter(Tensor({1}, {5.0f}));
  Var y = MulScalar(p, 3.0f);
  Backward(y);
  EXPECT_TRUE(p->grad().AllClose(Tensor({1}, {3.0f})));
}

TEST(BackwardTest, NonScalarRootAborts) {
  Var p = Parameter(Tensor({2}));
  Var y = MulScalar(p, 2.0f);
  EXPECT_DEATH(Backward(y), "scalar root");
}

TEST(BackwardTest, DiamondGraphAccumulatesBothPaths) {
  // y = x*x + x  (x used twice: the diamond). dy/dx = 2x + 1.
  Var x = Parameter(Tensor({1}, {3.0f}));
  Var y = Add(Mul(x, x), x);
  Backward(y);
  EXPECT_TRUE(x->grad().AllClose(Tensor({1}, {7.0f})));
}

TEST(BackwardTest, DeepChainDoesNotOverflow) {
  // 3000 chained adds exercise the iterative topological sort.
  Var x = Parameter(Tensor({1}, {1.0f}));
  Var y = x;
  for (int i = 0; i < 3000; ++i) y = AddScalar(y, 1.0f);
  Backward(y);
  EXPECT_TRUE(x->grad().AllClose(Tensor({1}, {1.0f})));
}

TEST(BackwardTest, ConstantBranchReceivesNoGradient) {
  Var x = Parameter(Tensor({1}, {2.0f}));
  Var c = Constant(Tensor({1}, {4.0f}));
  Var y = Mul(x, c);
  Backward(y);
  EXPECT_TRUE(x->grad().AllClose(Tensor({1}, {4.0f})));
  EXPECT_FALSE(c->has_grad());
}

TEST(BackwardTest, GradAccumulatesAcrossBackwardCalls) {
  Var x = Parameter(Tensor({1}, {1.0f}));
  {
    Var y = MulScalar(x, 2.0f);
    Backward(y);
  }
  {
    Var y = MulScalar(x, 3.0f);
    Backward(y);
  }
  EXPECT_TRUE(x->grad().AllClose(Tensor({1}, {5.0f})));
}

TEST(ScalarValueTest, ReadsValue) {
  Var v = Constant(Tensor({1}, {2.5f}));
  EXPECT_FLOAT_EQ(ScalarValue(v), 2.5f);
}

TEST(ScalarValueTest, NonScalarAborts) {
  Var v = Constant(Tensor({2}));
  EXPECT_DEATH(ScalarValue(v), "PPN_CHECK");
}

TEST(GraphLifetimeTest, ConstantInputsDropTapeEdges) {
  // Ops on constants produce constants with no parents: inference graphs
  // stay flat and are freed eagerly.
  Var a = Constant(Tensor({2}, {1.0f, 2.0f}));
  Var b = Constant(Tensor({2}, {3.0f, 4.0f}));
  Var c = Add(a, b);
  EXPECT_FALSE(c->requires_grad());
  EXPECT_TRUE(c->parents.empty());
}

}  // namespace
}  // namespace ppn::ag
