#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "tensor/ops.h"

namespace ppn::ag {
namespace {

// Every differentiable op is verified against central finite differences.
// Inputs are kept away from non-smooth points (|x| for Abs, kinks for Relu
// and Clamp) by construction.

struct GradCase {
  std::string name;
  ScalarGraphFn fn;
  std::vector<Tensor> inputs;
  double tolerance = 2e-2;
};

class OpGradTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(OpGradTest, MatchesFiniteDifferences) {
  const GradCase& test_case = GetParam();
  const GradCheckResult result =
      CheckGradients(test_case.fn, test_case.inputs);
  EXPECT_LT(result.max_rel_error, test_case.tolerance)
      << test_case.name << " abs_err=" << result.max_abs_error;
}

Tensor SmallTensor() { return Tensor({2, 3}, {0.5f, -1.2f, 2.0f, 0.8f, -0.4f, 1.5f}); }
Tensor PositiveTensor() { return Tensor({2, 3}, {0.5f, 1.2f, 2.0f, 0.8f, 0.4f, 1.5f}); }

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  auto add_case = [&](std::string name, ScalarGraphFn fn,
                      std::vector<Tensor> inputs, double tol = 2e-2) {
    cases.push_back({std::move(name), std::move(fn), std::move(inputs), tol});
  };

  add_case("Add", [](const std::vector<Var>& in) {
    return SumAll(Add(in[0], in[1]));
  }, {SmallTensor(), PositiveTensor()});

  add_case("Sub", [](const std::vector<Var>& in) {
    return SumAll(Mul(Sub(in[0], in[1]), in[0]));
  }, {SmallTensor(), PositiveTensor()});

  add_case("Mul", [](const std::vector<Var>& in) {
    return SumAll(Mul(in[0], in[1]));
  }, {SmallTensor(), PositiveTensor()});

  add_case("Div", [](const std::vector<Var>& in) {
    return SumAll(Div(in[0], in[1]));
  }, {SmallTensor(), PositiveTensor()});

  add_case("AddScalar", [](const std::vector<Var>& in) {
    return SumAll(Mul(AddScalar(in[0], 2.0f), in[0]));
  }, {SmallTensor()});

  add_case("MulScalar", [](const std::vector<Var>& in) {
    return SumAll(Mul(MulScalar(in[0], -1.5f), in[0]));
  }, {SmallTensor()});

  add_case("Neg", [](const std::vector<Var>& in) {
    return SumAll(Mul(Neg(in[0]), in[0]));
  }, {SmallTensor()});

  add_case("Exp", [](const std::vector<Var>& in) {
    return SumAll(Exp(in[0]));
  }, {SmallTensor()});

  add_case("Log", [](const std::vector<Var>& in) {
    return SumAll(Log(in[0]));
  }, {PositiveTensor()});

  add_case("Tanh", [](const std::vector<Var>& in) {
    return SumAll(Tanh(in[0]));
  }, {SmallTensor()});

  add_case("Sigmoid", [](const std::vector<Var>& in) {
    return SumAll(Sigmoid(in[0]));
  }, {SmallTensor()});

  // Relu inputs are away from 0 so finite differences are valid.
  add_case("Relu", [](const std::vector<Var>& in) {
    return SumAll(Relu(in[0]));
  }, {SmallTensor()});

  add_case("Abs", [](const std::vector<Var>& in) {
    return SumAll(Abs(in[0]));
  }, {SmallTensor()});

  add_case("Sqrt", [](const std::vector<Var>& in) {
    return SumAll(Sqrt(in[0]));
  }, {PositiveTensor()});

  // Clamp active and inactive regions, away from the boundaries.
  add_case("Clamp", [](const std::vector<Var>& in) {
    return SumAll(Mul(Clamp(in[0], -1.0f, 1.0f), in[0]));
  }, {SmallTensor()});

  add_case("MatMul", [](const std::vector<Var>& in) {
    return SumAll(MatMul(in[0], in[1]));
  }, {Tensor({2, 3}, {0.5f, -1.0f, 2.0f, 1.0f, 0.3f, -0.7f}),
      Tensor({3, 2}, {1.0f, 2.0f, -0.5f, 0.8f, 0.2f, -1.1f})});

  add_case("MatMulChained", [](const std::vector<Var>& in) {
    return SumAll(Mul(MatMul(in[0], in[1]), MatMul(in[0], in[1])));
  }, {Tensor({2, 2}, {0.5f, -1.0f, 2.0f, 1.0f}),
      Tensor({2, 2}, {1.0f, 2.0f, -0.5f, 0.8f})});

  add_case("Transpose2D", [](const std::vector<Var>& in) {
    return SumAll(Mul(Transpose2D(in[0]), Transpose2D(in[0])));
  }, {SmallTensor()});

  add_case("AddRowVector", [](const std::vector<Var>& in) {
    return SumAll(Mul(AddRowVector(in[0], in[1]), in[0]));
  }, {SmallTensor(), Tensor({3}, {0.1f, -0.2f, 0.3f})});

  add_case("MeanAll", [](const std::vector<Var>& in) {
    return MeanAll(Mul(in[0], in[0]));
  }, {SmallTensor()});

  add_case("BroadcastScalar", [](const std::vector<Var>& in) {
    Var mean = MeanAll(in[0]);
    return SumAll(Mul(BroadcastScalar(mean, in[0]->shape()), in[0]));
  }, {SmallTensor()});

  add_case("VarianceAll", [](const std::vector<Var>& in) {
    return VarianceAll(in[0]);
  }, {SmallTensor()});

  add_case("Reshape", [](const std::vector<Var>& in) {
    Var r = Reshape(in[0], {3, 2});
    return SumAll(Mul(r, r));
  }, {SmallTensor()});

  add_case("Concat", [](const std::vector<Var>& in) {
    Var c = ConcatVars({in[0], in[1]}, 1);
    return SumAll(Mul(c, c));
  }, {SmallTensor(), PositiveTensor()});

  add_case("Narrow", [](const std::vector<Var>& in) {
    Var n = NarrowVar(in[0], 1, 1, 2);
    return SumAll(Mul(n, n));
  }, {SmallTensor()});

  add_case("SoftmaxRows", [](const std::vector<Var>& in) {
    Var s = SoftmaxRows(in[0]);
    // Weighted sum to give every output a distinct weight.
    return SumAll(Mul(s, Constant(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}))));
  }, {SmallTensor()});

  add_case("Permute4", [](const std::vector<Var>& in) {
    Var p = Permute4(in[0], {0, 3, 1, 2});
    return SumAll(Mul(p, p));
  }, {Tensor({2, 2, 2, 2}, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f,
                            -0.1f, -0.2f, -0.3f, -0.4f, 1.1f, 1.2f, 1.3f,
                            1.4f})});

  // Conv2d: plain, causal-padded, and dilated geometries.
  {
    Conv2dGeometry plain;
    plain.kernel_h = 1;
    plain.kernel_w = 3;
    add_case("Conv2dValid", [plain](const std::vector<Var>& in) {
      Var y = Conv2d(in[0], in[1], in[2], plain);
      return SumAll(Mul(y, y));
    }, {Tensor({1, 2, 2, 5}, {0.1f, 0.4f, -0.2f, 0.3f, 0.5f,
                              0.2f, -0.1f, 0.6f, -0.3f, 0.1f,
                              0.7f, 0.2f, -0.5f, 0.4f, -0.6f,
                              0.3f, 0.1f, 0.2f, -0.4f, 0.5f}),
        Tensor({3, 2, 1, 3}, {0.5f, -0.2f, 0.1f, 0.3f, 0.2f, -0.4f,
                              0.1f, 0.6f, -0.3f, 0.2f, -0.1f, 0.5f,
                              -0.2f, 0.3f, 0.4f, 0.1f, -0.5f, 0.2f}),
        Tensor({3}, {0.1f, -0.1f, 0.2f})});
  }
  {
    Conv2dGeometry causal;
    causal.kernel_w = 3;
    causal.dilation_w = 2;
    causal.pad_left = 4;
    add_case("Conv2dCausalDilated", [causal](const std::vector<Var>& in) {
      Var y = Conv2d(in[0], in[1], in[2], causal);
      return SumAll(Mul(y, y));
    }, {Tensor({1, 1, 1, 6}, {0.1f, 0.4f, -0.2f, 0.3f, 0.5f, -0.1f}),
        Tensor({2, 1, 1, 3}, {0.5f, -0.2f, 0.1f, 0.3f, 0.2f, -0.4f}),
        Tensor({2}, {0.05f, -0.05f})});
  }
  {
    Conv2dGeometry same_h;
    same_h.kernel_h = 3;
    same_h.pad_top = 1;
    same_h.pad_bottom = 1;
    add_case("Conv2dSameHeight", [same_h](const std::vector<Var>& in) {
      Var y = Conv2d(in[0], in[1], in[2], same_h);
      return SumAll(Mul(y, y));
    }, {Tensor({1, 1, 3, 2}, {0.1f, 0.4f, -0.2f, 0.3f, 0.5f, -0.1f}),
        Tensor({1, 1, 3, 1}, {0.5f, -0.2f, 0.1f}),
        Tensor({1}, {0.1f})});
  }

  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

TEST(DropoutGradTest, MaskIsConsistentBetweenForwardAndBackward) {
  Rng rng(3);
  Var x = Parameter(Tensor::Full({1000}, 1.0f));
  Var y = Dropout(x, 0.5f, /*training=*/true, &rng);
  Var loss = SumAll(y);
  Backward(loss);
  // Where the output is zero the gradient must be zero; where it is 2 (the
  // inverted-dropout scale) the gradient must be 2.
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_FLOAT_EQ(x->grad()[i], y->value()[i]);
  }
}

TEST(DropoutGradTest, EvalModeIsIdentity) {
  Rng rng(3);
  Var x = Parameter(Tensor::Full({10}, 3.0f));
  Var y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(y->value().AllClose(x->value()));
}

TEST(DropoutGradTest, DropFractionNearP) {
  Rng rng(11);
  Var x = Constant(Tensor::Full({20000}, 1.0f));
  Var y = Dropout(x, 0.3f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y->numel(); ++i) {
    if (y->value()[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y->numel(), 0.3, 0.02);
}

}  // namespace
}  // namespace ppn::ag
