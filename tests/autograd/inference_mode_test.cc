// InferenceMode contract: ops built under the guard record no tape (no
// parent links, no backward closures, no grad buffers, no tape-node
// counter ticks), forward values stay bit-identical to recording mode,
// nesting/re-entry restore correctly, and the training path is unchanged
// when no guard is active.

#include "autograd/variable.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "obs/stats.h"
#include "tensor/tensor.h"

namespace ppn::ag {
namespace {

// Small but non-trivial forward: matmul + nonlinearity + reduction.
Var SmallForward(const Var& weight, const Var& input) {
  return MeanAll(Tanh(MatMul(input, weight)));
}

Tensor RampTensor(std::vector<int64_t> shape, float scale) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.MutableData()[i] = scale * static_cast<float>(i % 13) - 0.5f;
  }
  return t;
}

TEST(InferenceModeTest, GradRecordingIsOnByDefault) {
  EXPECT_TRUE(GradEnabled());
}

TEST(InferenceModeTest, GuardDisablesNestsAndRestores) {
  {
    InferenceMode guard;
    EXPECT_FALSE(GradEnabled());
    {
      InferenceMode nested;
      EXPECT_FALSE(GradEnabled());
    }
    EXPECT_FALSE(GradEnabled());  // Inner guard restores, not resets.
  }
  EXPECT_TRUE(GradEnabled());
  {
    InferenceMode reentry;
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_TRUE(GradEnabled());
}

TEST(InferenceModeTest, OpsOnParametersProduceConstants) {
  const Var weight = Parameter(RampTensor({4, 4}, 0.1f));
  const Var input = Constant(RampTensor({2, 4}, 0.2f));
  InferenceMode guard;
  const Var out = SmallForward(weight, input);
  EXPECT_FALSE(out->requires_grad());
  EXPECT_TRUE(out->parents.empty());
  EXPECT_EQ(out->backward_fn, nullptr);
}

TEST(InferenceModeTest, ForwardValuesBitIdenticalToRecordingMode) {
  const Var weight = Parameter(RampTensor({8, 8}, 0.05f));
  const Var input = Constant(RampTensor({3, 8}, 0.07f));
  const Var recorded = SmallForward(weight, input);
  Tensor guarded_value;
  {
    InferenceMode guard;
    guarded_value = SmallForward(weight, input)->value();
  }
  ASSERT_EQ(guarded_value.numel(), recorded->numel());
  for (int64_t i = 0; i < guarded_value.numel(); ++i) {
    EXPECT_EQ(guarded_value[i], recorded->value()[i]) << "element " << i;
  }
}

TEST(InferenceModeTest, BackwardThroughGuardedGraphReachesNoParameter) {
  const Var weight = Parameter(RampTensor({4, 4}, 0.1f));
  const Var input = Constant(RampTensor({2, 4}, 0.2f));
  Var out;
  {
    InferenceMode guard;
    out = SmallForward(weight, input);
  }
  Backward(out);  // No-op for gradients: the root has no tape behind it.
  EXPECT_FALSE(weight->has_grad());
}

TEST(InferenceModeTest, NoTapeNodeCounterTicksUnderGuard) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  obs::ScopedObsEnable obs_on;
  const Var weight = Parameter(RampTensor({6, 6}, 0.1f));
  const Var input = Constant(RampTensor({2, 6}, 0.2f));

  obs::ResetAll();
  {
    InferenceMode guard;
    SmallForward(weight, input);
  }
  const obs::Snapshot guarded = obs::TakeSnapshot();
  const auto it = guarded.counters.find("autograd.tape.nodes");
  EXPECT_TRUE(it == guarded.counters.end() || it->second == 0.0)
      << "tape nodes recorded under InferenceMode";

  obs::ResetAll();
  SmallForward(weight, input);
  const obs::Snapshot recorded = obs::TakeSnapshot();
  ASSERT_NE(recorded.counters.find("autograd.tape.nodes"),
            recorded.counters.end());
  EXPECT_GT(recorded.counters.at("autograd.tape.nodes"), 0.0);
}

TEST(InferenceModeTest, SteadyStateForwardTouchesNoFreshMemory) {
  obs::ScopedObsEnable obs_on;
  const Var weight = Parameter(RampTensor({16, 16}, 0.02f));
  const Var input = Constant(RampTensor({4, 16}, 0.03f));
  // Warm the thread-local pool free lists: after two identical grad-free
  // forwards, every intermediate buffer is cached.
  for (int i = 0; i < 2; ++i) {
    InferenceMode guard;
    SmallForward(weight, input);
  }
  obs::ResetAll();
  {
    InferenceMode guard;
    SmallForward(weight, input);
  }
  const obs::Snapshot snapshot = obs::TakeSnapshot();
  const auto miss = snapshot.counters.find("tensor.pool.miss");
  EXPECT_TRUE(miss == snapshot.counters.end() || miss->second == 0.0)
      << "a warmed-up inference forward should allocate no new buffers";
}

TEST(InferenceModeTest, TrainingPathUnchangedAfterGuardExits) {
  const Var weight = Parameter(RampTensor({4, 4}, 0.1f));
  const Var input = Constant(RampTensor({2, 4}, 0.2f));
  {
    InferenceMode guard;
    SmallForward(weight, input);
  }
  // Same thread, guard gone: the tape records and gradients flow again.
  const Var loss = SmallForward(weight, input);
  EXPECT_TRUE(loss->requires_grad());
  Backward(loss);
  ASSERT_TRUE(weight->has_grad());
  double grad_l1 = 0.0;
  for (int64_t i = 0; i < weight->grad().numel(); ++i) {
    grad_l1 += std::abs(static_cast<double>(weight->grad()[i]));
  }
  EXPECT_GT(grad_l1, 0.0);
}

}  // namespace
}  // namespace ppn::ag
