// The multi-process sweep fabric: merged results must be bit-identical to
// the in-process runner at any process count — including when a worker is
// SIGKILLed mid-sweep and a replacement rejoins, when a queue file is
// corrupted on disk, and when a hung worker's cell is re-dispatched to a
// backup. Workers are real processes: each test fork/execs the ppn_cli
// binary (PPN_CLI_BIN, injected by CMake) as `sweep-worker`.

#include "exec/fabric.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "exec/experiment.h"
#include "obs/stats.h"

namespace ppn::exec {
namespace {

using strategies::StrategySpec;

// Workers rebuild the spec from flags via GetRunScale(), so the scale must
// travel through the environment, not just the in-process spec.
const bool kScaleForced = [] {
  ::setenv("PPN_SCALE", "smoke", 1);
  return true;
}();

/// Sets an env var for one test and restores the previous state on exit,
/// so fault-injection knobs cannot leak into later tests' worker fleets.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) ::setenv(name_, old_.c_str(), 1);
    else ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/fabric_" + name;
  std::filesystem::remove_all(dir);
  return dir;  // Created by the fabric.
}

/// Classic-baseline spec: no training, so twelve cells finish in seconds
/// even on one core, and every metric is exactly reproducible.
ExperimentSpec SmallSpec() {
  ExperimentSpec spec;
  spec.title = "fabric test";
  spec.scale = RunScale::kSmoke;
  spec.datasets = {market::DatasetId::kCryptoA};
  spec.strategies = {StrategySpec{.name = "UBAH"}, StrategySpec{.name = "CRP"},
                     StrategySpec{.name = "OLMAR"}};
  spec.cost_rates = {0.0, 0.0025};
  spec.seeds = {1, 7};
  return spec;
}

/// The worker argv that rebuilds SmallSpec() from flags. Must agree with
/// the spec above or the workers reject every task.
std::vector<std::string> SmallSpecArgv() {
  return {PPN_CLI_BIN,      "sweep-worker", "--datasets", "crypto-a",
          "--strategies",   "UBAH,CRP,OLMAR",
          "--costs",        "0,0.0025",
          "--seeds",        "1,7"};
}

FabricOptions BaseOptions(const std::string& dir_name) {
  FabricOptions options;
  options.fabric_dir = FreshDir(dir_name);
  options.worker_argv = SmallSpecArgv();
  options.worker_timeout_s = 300.0;  // No accidental straggler triggers.
  options.max_restarts = 8;
  return options;
}

void ExpectIdenticalRows(const std::vector<CellResult>& a,
                         const std::vector<CellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(a[i].key.strategy, b[i].key.strategy);
    EXPECT_EQ(a[i].key.dataset, b[i].key.dataset);
    EXPECT_EQ(a[i].key.cost_rate, b[i].key.cost_rate);
    EXPECT_EQ(a[i].key.seed, b[i].key.seed);
    EXPECT_EQ(a[i].derived_seed, b[i].derived_seed);
    // Bitwise equality is the contract, not near-equality.
    EXPECT_EQ(a[i].metrics.apv, b[i].metrics.apv);
    EXPECT_EQ(a[i].metrics.sr_pct, b[i].metrics.sr_pct);
    EXPECT_EQ(a[i].metrics.std_pct, b[i].metrics.std_pct);
    EXPECT_EQ(a[i].metrics.mdd_pct, b[i].metrics.mdd_pct);
    EXPECT_EQ(a[i].metrics.cr, b[i].metrics.cr);
    EXPECT_EQ(a[i].metrics.turnover, b[i].metrics.turnover);
  }
}

std::vector<CellResult> InProcessRows(const ExperimentSpec& spec) {
  return ExperimentRunner(0).Run(spec);
}

TEST(FabricTest, TwoProcessesMatchInProcessRunner) {
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("two_proc");
  options.num_processes = 2;
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(InProcessRows(spec), rows);
  EXPECT_EQ(stats.workers_spawned, 2);
  EXPECT_EQ(stats.workers_died, 0);
  EXPECT_EQ(stats.ckpt_write_failures, 0);
  // Scratch is cleaned up after a fully successful run.
  EXPECT_FALSE(std::filesystem::exists(options.fabric_dir));
}

TEST(FabricTest, SigkilledWorkerIsRespawnedAndResultsAreIdentical) {
  // One slot, killed by SIGKILL after its first completed cell: the
  // coordinator must requeue whatever it held, respawn the slot (with the
  // fault knob stripped from the replacement), and still merge rows
  // bit-identical to the in-process run.
  const ScopedEnv kill("PPN_FABRIC_TEST_KILL_AFTER", "0:1");
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("kill");
  options.num_processes = 1;
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(InProcessRows(spec), rows);
  EXPECT_GE(stats.workers_died, 1);
  EXPECT_GE(stats.workers_restarted, 1);
}

TEST(FabricTest, KilledWorkersCellsAreStolenByTheSurvivor) {
  // Two slots, slot 0 dies early: slot 1 steals the dead worker's shard
  // (or the respawned slot 0 resumes it) — either way, identical bits.
  const ScopedEnv kill("PPN_FABRIC_TEST_KILL_AFTER", "0:1");
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("kill_steal");
  options.num_processes = 2;
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(InProcessRows(spec), rows);
  EXPECT_GE(stats.workers_died, 1);
}

TEST(FabricTest, CorruptQueueFileIsRecoveredFromTheCellList) {
  // Scribble over one task file after the queue is written: the claiming
  // worker must quarantine it (never compute a garbled cell) and the
  // coordinator must rewrite it from its authoritative cell list.
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("corrupt");
  options.num_processes = 2;
  options.after_queue_hook = [&options] {
    const std::string shard0 = options.fabric_dir + "/queue/shard-0";
    bool scribbled = false;
    for (const auto& entry : std::filesystem::directory_iterator(shard0)) {
      std::ofstream out(entry.path(), std::ios::trunc);
      out << "not a task file at all\n";
      scribbled = true;
      break;
    }
    ASSERT_TRUE(scribbled) << "no task file found to corrupt";
  };
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(InProcessRows(spec), rows);
  EXPECT_GE(stats.queue_corrupt, 1);
}

TEST(FabricTest, PreAgedQueueFilesDoNotTriggerSpuriousBackups) {
  // rename(2) preserves mtime, so a claim file's on-disk timestamp is
  // really the task's write time. Age every queued task an hour into the
  // past: if staleness were judged from mtime, every cell would look like
  // a straggler the instant it was claimed. The coordinator must age
  // claims against its own first-seen clock and dispatch no backups.
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("pre_aged");
  options.num_processes = 2;
  options.worker_timeout_s = 5.0;  // Far above any real cell's runtime.
  options.after_queue_hook = [&options] {
    const auto past = std::filesystem::file_time_type::clock::now() -
                      std::chrono::hours(1);
    for (int shard = 0; shard < 2; ++shard) {
      const std::string dir =
          options.fabric_dir + "/queue/shard-" + std::to_string(shard);
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        std::filesystem::last_write_time(entry.path(), past);
      }
    }
  };
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(InProcessRows(spec), rows);
  EXPECT_EQ(stats.cells_redispatched, 0);
}

TEST(FabricTest, ForeignEntriesFromAReusedFabricDirAreDiscarded) {
  // A reused fabric dir can hold claim/fail/task/corrupt entries from a
  // previous, larger spec. Indices parsed from those names must be
  // bounds-checked and the entries discarded — never used to index the
  // coordinator's per-cell state, and never computed by a worker.
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("foreign");
  options.num_processes = 2;
  options.after_queue_hook = [&options] {
    auto drop = [&options](const std::string& rel,
                           const std::string& content) {
      std::ofstream out(options.fabric_dir + "/" + rel, std::ios::binary);
      out << content;
      ASSERT_TRUE(out.good()) << rel;
    };
    drop("claims/T999.a0.s7.g9.claim", "ppnfab1 999 00000000deadbeef\n");
    drop("failed/T500.a0.s7.g9.fail", "ppnfab1 500 00000000deadbeef\n");
    drop("corrupt/T888.a0.task.corrupt", "scribble\n");
    drop("queue/shard-0/T777.a0.task", "ppnfab1 777 00000000deadbeef\n");
    // An in-flight-looking temp must never be claimed AS its base task;
    // workers quarantine it, and the coordinator recovers cell 3 from
    // its authoritative list.
    drop("queue/shard-0/T3.a0.task.tmp", "ppnfab1 3 00000000deadbeef\n");
  };
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(InProcessRows(spec), rows);
  // The pre-dropped claim, fail marker, and corrupt entry are processed
  // on the coordinator's first supervision pass, so they are always in
  // the discard count; the shard junk is quarantined by workers on a
  // schedule of its own and only sometimes lands before completion.
  EXPECT_GE(stats.queue_corrupt, 3);
}

TEST(FabricTest, HungWorkerCellIsRedispatchedToABackup) {
  // Slot 0 hangs forever on its first claim. The claim goes stale, the
  // coordinator re-dispatches a backup task, slot 1 computes it, and the
  // straggler is killed at shutdown without poisoning anything.
  const ScopedEnv hang("PPN_FABRIC_TEST_HANG_AFTER", "0:1");
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("hang");
  options.num_processes = 2;
  options.worker_timeout_s = 0.3;
  // The hung worker never exits on its own; don't burn the full
  // shutdown grace waiting for it.
  options.shutdown_grace_s = 0.2;
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(InProcessRows(spec), rows);
  EXPECT_GE(stats.cells_redispatched, 1);
}

TEST(FabricTest, ResumesFromExistingCellCheckpoints) {
  // A sweep pointed at a checkpoint dir that already holds every cell
  // dispatches nothing: no workers, rows assembled straight from disk.
  ExperimentSpec spec = SmallSpec();
  spec.checkpoint_dir = FreshDir("resume_cells");
  const std::vector<CellResult> expected = InProcessRows(spec);

  FabricOptions options = BaseOptions("resume");
  options.num_processes = 2;
  std::vector<std::string> argv = options.worker_argv;
  argv.push_back("--checkpoint-dir");
  argv.push_back(spec.checkpoint_dir);
  options.worker_argv = argv;
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  ExpectIdenticalRows(expected, rows);
  EXPECT_EQ(stats.workers_spawned, 0);
}

TEST(FabricTest, MergesWorkerProfilesAndPublishesFabricCounters) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  const bool was_enabled = obs::SetEnabled(true);
  // Snapshots are cumulative, so measure the run as a delta.
  const obs::Snapshot before = obs::TakeSnapshot();
  const ExperimentSpec spec = SmallSpec();
  FabricOptions options = BaseOptions("obs_merge");
  options.num_processes = 2;
  FabricStats stats;
  const std::vector<CellResult> rows = RunSweepFabric(spec, options, &stats);
  const obs::Snapshot after = obs::TakeSnapshot();
  obs::SetEnabled(was_enabled);
  ASSERT_EQ(rows.size(), 12u);
  // Workers computed the cells, yet the coordinator's snapshot carries
  // their counters: the per-worker profile JSONs were merged in.
  auto delta = [&before, &after](const std::string& name) {
    const auto now = after.counters.find(name);
    const auto base = before.counters.find(name);
    return (now == after.counters.end() ? 0.0 : now->second) -
           (base == before.counters.end() ? 0.0 : base->second);
  };
  EXPECT_GE(delta("exec.cells.completed"), 12.0);
  EXPECT_EQ(delta("exec.fabric.workers_spawned"), 2.0);
  EXPECT_EQ(delta("exec.fabric.workers_died"), 0.0);
}

// ------------------------------------------------------------------ e2e --

/// Rows of a results JSON written by `ppn_cli sweep --json`, with
/// wall_seconds dropped — everything else must be bit-exact across
/// process counts, which is why WriteResultsJson emits %.17g.
std::vector<std::string> JsonRowsModuloWall(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  std::string error;
  EXPECT_TRUE(ParseJson(buffer.str(), &root, &error)) << error;
  std::vector<std::string> rows;
  for (const JsonValue& row : root.AsArray()) {
    std::ostringstream canon;
    for (const auto& [key, value] : row.AsObject()) {
      if (key == "wall_seconds") continue;
      canon << key << "=";
      if (value.is_number()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value.AsNumber());
        canon << buf;
      } else if (value.is_string()) {
        canon << value.AsString();
      }
      canon << ";";
    }
    rows.push_back(canon.str());
  }
  return rows;
}

// The heavy acceptance case below trains neural cells; under
// ThreadSanitizer that is minutes of instrumented training, so the tsan
// lane keeps the classic-strategy cases only.
#if defined(__SANITIZE_THREAD__)
#define PPN_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PPN_TSAN_BUILD 1
#endif
#endif

TEST(FabricCliTest, Table3SmokeSpecMatchesAcrossProcessCountsAndAKill) {
#ifdef PPN_TSAN_BUILD
  GTEST_SKIP() << "neural training under tsan is too slow for CI";
#endif
  // The acceptance spec: a table3-shaped smoke sweep (classic baselines
  // plus the EIIE / PPN-I / PPN neural rows) run at --processes 4 with
  // one worker SIGKILLed mid-run, at --processes 1, and in-process — all
  // three bit-identical modulo wall_seconds.
  const std::string dir = FreshDir("table3");
  std::filesystem::create_directories(dir);
  const std::string base =
      std::string(PPN_CLI_BIN) +
      " sweep --datasets crypto-a"
      " --strategies UBAH,Best,CRP,EG,OLMAR,RMR,EIIE,PPN-I,PPN"
      " --costs 0.0025 --seeds 1 --steps 100";
  const std::string log = dir + "/cli.log";
  {
    const ScopedEnv kill("PPN_FABRIC_TEST_KILL_AFTER", "0:1");
    ASSERT_EQ(std::system((base + " --processes 4 --json " + dir +
                           "/p4.json >> " + log + " 2>&1")
                              .c_str()),
              0);
  }
  ASSERT_EQ(std::system((base + " --processes 1 --json " + dir +
                         "/p1.json >> " + log + " 2>&1")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((base + " --workers 0 --json " + dir +
                         "/inproc.json >> " + log + " 2>&1")
                            .c_str()),
            0);
  const std::vector<std::string> p4 = JsonRowsModuloWall(dir + "/p4.json");
  const std::vector<std::string> p1 = JsonRowsModuloWall(dir + "/p1.json");
  const std::vector<std::string> inproc =
      JsonRowsModuloWall(dir + "/inproc.json");
  ASSERT_EQ(p4.size(), 9u);
  EXPECT_EQ(p4, p1);
  EXPECT_EQ(p4, inproc);
}

TEST(FabricCliTest, FourProcessSweepJsonMatchesOneProcessAndInProcess) {
  const std::string dir = FreshDir("cli");
  std::filesystem::create_directories(dir);
  const std::string base =
      std::string(PPN_CLI_BIN) +
      " sweep --datasets crypto-a --strategies UBAH,CRP,OLMAR"
      " --costs 0,0.0025 --seeds 1,7";
  const std::string log = dir + "/cli.log";
  ASSERT_EQ(std::system((base + " --processes 4 --json " + dir +
                         "/p4.json >> " + log + " 2>&1")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((base + " --processes 1 --json " + dir +
                         "/p1.json >> " + log + " 2>&1")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((base + " --workers 0 --json " + dir +
                         "/inproc.json >> " + log + " 2>&1")
                            .c_str()),
            0);
  const std::vector<std::string> p4 = JsonRowsModuloWall(dir + "/p4.json");
  const std::vector<std::string> p1 = JsonRowsModuloWall(dir + "/p1.json");
  const std::vector<std::string> inproc =
      JsonRowsModuloWall(dir + "/inproc.json");
  ASSERT_EQ(p4.size(), 12u);
  EXPECT_EQ(p4, p1);
  EXPECT_EQ(p4, inproc);
}

}  // namespace
}  // namespace ppn::exec
