// Tests for the fixed-size thread pool: inline mode, completion of all
// submitted tasks, Wait semantics, and the inner-parallelism guard that
// stops pool workers from oversubscribing the tensor kernels.

#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/parallel.h"
#include "obs/stats.h"

namespace ppn::exec {
namespace {

TEST(ThreadPoolTest, InlineModeRunsTaskOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed;
  bool ran = false;
  pool.Submit([&] {
    observed = std::this_thread::get_id();
    ran = true;
  });
  // Inline mode runs the task before Submit returns.
  EXPECT_TRUE(ran);
  EXPECT_EQ(observed, caller);
  pool.Wait();
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, WaitBlocksUntilTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
  // Wait on an already-drained pool returns immediately.
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_caller{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      if (std::this_thread::get_id() != caller) off_caller.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(off_caller.load(), 16);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No Wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, SaturatingPoolDisablesInnerParallelismInWorkers) {
  // A pool as wide as the machine (always "saturating" under the
  // num_threads * 2 > HardwareThreads() rule) must run its tasks with the
  // inner OpenMP parallelism disabled; the calling thread is unaffected.
  ThreadPool pool(HardwareThreads());
  std::atomic<int> inner_enabled_count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      if (InnerParallelEnabled()) inner_enabled_count.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(inner_enabled_count.load(), 0);
  EXPECT_TRUE(InnerParallelEnabled());
}

TEST(ThreadPoolTest, InlineModeKeepsInnerParallelismEnabled) {
  // Inline mode runs on the caller: one cell at a time, so the tensor
  // kernels keep their inner parallelism.
  ThreadPool pool(0);
  bool inner = false;
  pool.Submit([&] { inner = InnerParallelEnabled(); });
  pool.Wait();
  EXPECT_TRUE(inner);
}

TEST(ScopedInnerParallelDisableTest, RestoresOnExit) {
  ASSERT_TRUE(InnerParallelEnabled());
  {
    ScopedInnerParallelDisable guard;
    EXPECT_FALSE(InnerParallelEnabled());
  }
  EXPECT_TRUE(InnerParallelEnabled());
}

TEST(DefaultWorkerCountTest, HonorsEnvironmentVariable) {
  const char* saved = env::Raw("PPN_WORKERS");
  const std::string saved_value = saved == nullptr ? "" : saved;

  setenv("PPN_WORKERS", "3", 1);
  EXPECT_EQ(DefaultWorkerCount(), 3);
  setenv("PPN_WORKERS", "0", 1);
  EXPECT_EQ(DefaultWorkerCount(), 0);

  if (saved == nullptr) {
    unsetenv("PPN_WORKERS");
  } else {
    setenv("PPN_WORKERS", saved_value.c_str(), 1);
  }
  EXPECT_GE(DefaultWorkerCount(), 0);
}

TEST(DefaultWorkerCountDeathTest, MalformedValueAborts) {
  // Regression: atoi turned PPN_WORKERS=abc into 0, i.e. a silent serial
  // run. The strict parser must abort with a message naming the variable.
  const char* saved = env::Raw("PPN_WORKERS");
  const std::string saved_value = saved == nullptr ? "" : saved;

  setenv("PPN_WORKERS", "abc", 1);
  EXPECT_DEATH(DefaultWorkerCount(), "PPN_WORKERS");
  setenv("PPN_WORKERS", "4x", 1);
  EXPECT_DEATH(DefaultWorkerCount(), "PPN_WORKERS");
  setenv("PPN_WORKERS", "", 1);
  EXPECT_DEATH(DefaultWorkerCount(), "PPN_WORKERS");
  setenv("PPN_WORKERS", "-2", 1);
  EXPECT_DEATH(DefaultWorkerCount(), "PPN_WORKERS");

  if (saved == nullptr) {
    unsetenv("PPN_WORKERS");
  } else {
    setenv("PPN_WORKERS", saved_value.c_str(), 1);
  }
}

TEST(ThreadPoolObsTest, RecordsQueueDepthAndTaskTimings) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  obs::ScopedObsEnable enable;
  obs::ResetAll();
  constexpr int kTasks = 16;
  {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), kTasks);
  }
  const obs::Snapshot snapshot = obs::TakeSnapshot();
  ASSERT_EQ(snapshot.gauges.count("exec.pool.queue_depth.max"), 1u);
  EXPECT_GE(snapshot.gauges.at("exec.pool.queue_depth.max"), 1.0);
  ASSERT_EQ(snapshot.histograms.count("exec.pool.task_run.seconds"), 1u);
  EXPECT_EQ(snapshot.histograms.at("exec.pool.task_run.seconds").count,
            kTasks);
  ASSERT_EQ(snapshot.histograms.count("exec.pool.task_wait.seconds"), 1u);
  EXPECT_EQ(snapshot.histograms.at("exec.pool.task_wait.seconds").count,
            kTasks);
  obs::ResetAll();
}

TEST(ThreadPoolObsTest, DisabledModeRecordsNothing) {
  obs::ScopedObsEnable disable(false);
  obs::ResetAll();
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) pool.Submit([] {});
  pool.Wait();
  const obs::Snapshot snapshot = obs::TakeSnapshot();
  EXPECT_EQ(snapshot.histograms.count("exec.pool.task_run.seconds"), 0u);
  EXPECT_EQ(snapshot.histograms.count("exec.pool.task_wait.seconds"), 0u);
}

}  // namespace
}  // namespace ppn::exec
