#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exec/experiment.h"
#include "market/generator.h"
#include "market/stress.h"

/// The robustness-table path end to end: stressed custom datasets (with
/// cost-multiplier schedules and tradeability masks) flowing through the
/// ExperimentRunner, bit-identical at any worker count.

namespace ppn::exec {
namespace {

market::MarketDataset SmallDataset() {
  market::SyntheticMarketConfig config;
  config.num_assets = 5;
  config.num_periods = 500;
  config.seed = 47;
  return market::SyntheticMarketGenerator(config).GenerateDataset("Small",
                                                                  0.8);
}

/// The stress CLI's spec in miniature: base + every pack, classic
/// baselines only (fast), one cost rate, one seed.
ExperimentSpec StressSpec() {
  const market::MarketDataset base = SmallDataset();
  ExperimentSpec spec;
  spec.title = "stress-test";
  spec.custom_datasets.push_back({base, {}});
  for (const market::StressPack pack : market::AllStressPacks()) {
    market::StressedDataset stressed = market::ApplyStressPack(base, pack, 7);
    spec.custom_datasets.push_back({std::move(stressed.dataset),
                                    std::move(stressed.cost_multipliers)});
  }
  spec.strategies = {{.name = "UBAH"}, {.name = "CRP"}, {.name = "OLMAR"}};
  spec.cost_rates = {0.0025};
  spec.seeds = {1};
  return spec;
}

TEST(StressSweepTest, RunsEveryPackTimesEveryStrategy) {
  const ExperimentSpec spec = StressSpec();
  const std::vector<CellResult> rows = ExperimentRunner(0).Run(spec);
  ASSERT_EQ(rows.size(), 6u * 3u);  // (base + 5 packs) x 3 strategies.
  for (const CellResult& row : rows) {
    EXPECT_GT(row.metrics.apv, 0.0)
        << row.key.strategy << " on " << row.key.dataset;
  }
}

TEST(StressSweepTest, BitIdenticalAcrossWorkerCounts) {
  const ExperimentSpec spec = StressSpec();
  const std::vector<CellResult> inline_rows = ExperimentRunner(0).Run(spec);
  const std::vector<CellResult> pooled_rows = ExperimentRunner(4).Run(spec);
  ASSERT_EQ(inline_rows.size(), pooled_rows.size());
  for (size_t i = 0; i < inline_rows.size(); ++i) {
    EXPECT_EQ(inline_rows[i].key.strategy, pooled_rows[i].key.strategy);
    EXPECT_EQ(inline_rows[i].key.dataset, pooled_rows[i].key.dataset);
    EXPECT_EQ(inline_rows[i].derived_seed, pooled_rows[i].derived_seed);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(inline_rows[i].metrics.apv, pooled_rows[i].metrics.apv)
        << inline_rows[i].key.strategy << " on " << inline_rows[i].key.dataset;
    EXPECT_EQ(inline_rows[i].metrics.sr_pct, pooled_rows[i].metrics.sr_pct);
    EXPECT_EQ(inline_rows[i].metrics.mdd_pct, pooled_rows[i].metrics.mdd_pct);
    EXPECT_EQ(inline_rows[i].metrics.turnover,
              pooled_rows[i].metrics.turnover);
  }
}

TEST(StressSweepTest, LiquidityHoleMultipliersRaiseCosts) {
  const market::MarketDataset base = SmallDataset();
  market::StressedDataset hole =
      market::ApplyStressPack(base, market::StressPack::kLiquidityHole, 7);

  ExperimentSpec with_multipliers;
  with_multipliers.custom_datasets.push_back(
      {hole.dataset, hole.cost_multipliers});
  with_multipliers.strategies = {{.name = "OLMAR"}};

  // Same panel, multiplier schedule dropped: costs must be strictly lower
  // (OLMAR trades every period, and the hole overlaps the test range).
  ExperimentSpec without_multipliers = with_multipliers;
  without_multipliers.custom_datasets[0].cost_multipliers.clear();

  const CellResult with_row =
      ExperimentRunner(0).Run(with_multipliers).at(0);
  const CellResult without_row =
      ExperimentRunner(0).Run(without_multipliers).at(0);
  EXPECT_LT(with_row.metrics.apv, without_row.metrics.apv);
}

TEST(StressSweepDeathTest, RejectsBothDatasetAxes) {
  ExperimentSpec spec = StressSpec();
  spec.datasets.push_back(market::DatasetId::kCryptoA);
  EXPECT_DEATH(ExperimentRunner(0).Run(spec), "exactly one dataset source");
}

TEST(StressSweepDeathTest, RejectsDuplicateCustomNames) {
  const market::MarketDataset base = SmallDataset();
  ExperimentSpec spec;
  spec.custom_datasets.push_back({base, {}});
  spec.custom_datasets.push_back({base, {}});
  spec.strategies = {{.name = "UBAH"}};
  EXPECT_DEATH(ExperimentRunner(0).Run(spec), "duplicate custom dataset");
}

}  // namespace
}  // namespace ppn::exec
