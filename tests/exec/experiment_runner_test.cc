// Tests for the experiment harness: deterministic cell seeding derived
// from the cell KEY (not submission order), bit-identical results across
// worker counts, enumeration-ordered rows, and the ResultSink / table /
// JSON plumbing.

#include "exec/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats.h"

namespace ppn::exec {
namespace {

using strategies::StrategySpec;

/// A small all-classic sweep: fast enough to run at several worker counts.
ExperimentSpec SmallClassicSpec() {
  ExperimentSpec spec;
  spec.title = "exec test sweep";
  spec.scale = RunScale::kSmoke;
  spec.datasets = {market::DatasetId::kCryptoA};
  spec.strategies = {StrategySpec{.name = "UBAH"}, StrategySpec{.name = "CRP"},
                     StrategySpec{.name = "OLMAR"}};
  spec.cost_rates = {0.0, 0.0025};
  spec.seeds = {1, 7};
  return spec;
}

void ExpectIdenticalRows(const std::vector<CellResult>& a,
                         const std::vector<CellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(a[i].key.strategy, b[i].key.strategy);
    EXPECT_EQ(a[i].key.dataset, b[i].key.dataset);
    EXPECT_EQ(a[i].key.cost_rate, b[i].key.cost_rate);
    EXPECT_EQ(a[i].key.seed, b[i].key.seed);
    EXPECT_EQ(a[i].derived_seed, b[i].derived_seed);
    // Bitwise metric equality, not near-equality: the determinism contract
    // is that worker count never changes a single bit of any result.
    EXPECT_EQ(a[i].metrics.apv, b[i].metrics.apv);
    EXPECT_EQ(a[i].metrics.sr_pct, b[i].metrics.sr_pct);
    EXPECT_EQ(a[i].metrics.std_pct, b[i].metrics.std_pct);
    EXPECT_EQ(a[i].metrics.mdd_pct, b[i].metrics.mdd_pct);
    EXPECT_EQ(a[i].metrics.cr, b[i].metrics.cr);
    EXPECT_EQ(a[i].metrics.turnover, b[i].metrics.turnover);
  }
}

TEST(CellSeedTest, DeterministicInKey) {
  const CellKey key{"PPN", "Crypto-A", 0.0025, 1};
  EXPECT_EQ(CellSeed(key), CellSeed(key));
  EXPECT_NE(CellSeed(key), 0u);
}

TEST(CellSeedTest, EveryKeyFieldPerturbsTheSeed) {
  const CellKey base{"PPN", "Crypto-A", 0.0025, 1};
  CellKey other = base;
  other.strategy = "EIIE";
  EXPECT_NE(CellSeed(base), CellSeed(other));
  other = base;
  other.dataset = "Crypto-B";
  EXPECT_NE(CellSeed(base), CellSeed(other));
  other = base;
  other.cost_rate = 0.005;
  EXPECT_NE(CellSeed(base), CellSeed(other));
  other = base;
  other.seed = 2;
  EXPECT_NE(CellSeed(base), CellSeed(other));
}

TEST(CellSeedTest, FieldBoundariesMatter) {
  // Length-prefixed hashing: moving a character across the field boundary
  // must change the seed.
  const CellKey a{"ab", "c", 0.0025, 1};
  const CellKey b{"a", "bc", 0.0025, 1};
  EXPECT_NE(CellSeed(a), CellSeed(b));
}

TEST(CellSeedTest, SpreadsAcrossAGrid) {
  // No collisions across a realistic sweep grid.
  std::set<uint64_t> seeds;
  int cells = 0;
  for (const char* strategy : {"UBAH", "PPN", "PPN-AC", "EIIE"}) {
    for (const char* dataset : {"Crypto-A", "Crypto-B", "S&P500"}) {
      for (const double cost : {0.0, 0.0025, 0.01}) {
        for (const uint64_t seed : {1ull, 2ull, 3ull}) {
          seeds.insert(CellSeed(CellKey{strategy, dataset, cost, seed}));
          ++cells;
        }
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seeds.size()), cells);
}

TEST(ExperimentRunnerTest, RowsComeBackInEnumerationOrder) {
  const ExperimentSpec spec = SmallClassicSpec();
  const std::vector<CellResult> rows = ExperimentRunner(0).Run(spec);
  // datasets-major, then strategies, then cost rates, then seeds.
  ASSERT_EQ(rows.size(), 1u * 3u * 2u * 2u);
  int index = 0;
  for (const auto& strategy : spec.strategies) {
    for (const double cost : spec.cost_rates) {
      for (const uint64_t seed : spec.seeds) {
        SCOPED_TRACE("row " + std::to_string(index));
        EXPECT_EQ(rows[index].key.strategy, strategy.display());
        EXPECT_EQ(rows[index].key.dataset,
                  market::DatasetName(spec.datasets[0]));
        EXPECT_EQ(rows[index].key.cost_rate, cost);
        EXPECT_EQ(rows[index].key.seed, seed);
        EXPECT_EQ(rows[index].derived_seed, CellSeed(rows[index].key));
        ++index;
      }
    }
  }
}

TEST(ExperimentRunnerTest, WorkerCountDoesNotChangeResults) {
  // The acceptance criterion of the harness: inline (0), single-worker,
  // and multi-worker runs of the same spec are bit-identical.
  const ExperimentSpec spec = SmallClassicSpec();
  const std::vector<CellResult> inline_rows = ExperimentRunner(0).Run(spec);
  const std::vector<CellResult> serial_rows = ExperimentRunner(1).Run(spec);
  const std::vector<CellResult> parallel_rows = ExperimentRunner(4).Run(spec);
  ExpectIdenticalRows(inline_rows, serial_rows);
  ExpectIdenticalRows(inline_rows, parallel_rows);
}

TEST(ExperimentRunnerTest, DeterminismHoldsWithInstrumentationEnabled) {
  // The obs layer must only OBSERVE: with profiling on, the worker-count
  // determinism contract still holds bit-for-bit, and the results equal
  // those of an unprofiled run.
  const ExperimentSpec spec = SmallClassicSpec();
  std::vector<CellResult> plain_rows;
  {
    obs::ScopedObsEnable disable(false);
    plain_rows = ExperimentRunner(0).Run(spec);
  }
  obs::ScopedObsEnable enable;
  obs::ResetAll();
  const std::vector<CellResult> inline_rows = ExperimentRunner(0).Run(spec);
  const std::vector<CellResult> parallel_rows = ExperimentRunner(4).Run(spec);
  ExpectIdenticalRows(inline_rows, parallel_rows);
  ExpectIdenticalRows(plain_rows, inline_rows);
#ifndef PPN_OBS_DISABLED
  // And the instrumentation did actually record the cells (unless it was
  // compiled out, in which case the determinism checks above still ran).
  const obs::Snapshot snapshot = obs::TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("exec.cells.completed"),
            static_cast<double>(2 * inline_rows.size()));
  ASSERT_EQ(snapshot.histograms.count("exec.cell.seconds"), 1u);
  EXPECT_EQ(snapshot.histograms.at("exec.cell.seconds").count,
            static_cast<int64_t>(2 * inline_rows.size()));
  obs::ResetAll();
#endif
}

TEST(ExperimentRunnerTest, KeepRecordsRetainsWealthCurves) {
  ExperimentSpec spec = SmallClassicSpec();
  spec.strategies = {StrategySpec{.name = "UBAH"}};
  spec.cost_rates = {0.0025};
  spec.seeds = {1};
  spec.keep_records = true;
  const std::vector<CellResult> rows = ExperimentRunner(0).Run(spec);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].key.strategy.empty());
  EXPECT_FALSE(rows[0].record.wealth_curve.empty());
  EXPECT_EQ(rows[0].record.wealth_curve.back(), rows[0].metrics.apv);

  spec.keep_records = false;
  const std::vector<CellResult> bare = ExperimentRunner(0).Run(spec);
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_TRUE(bare[0].record.wealth_curve.empty());
}

TEST(ExperimentRunnerDeathTest, DuplicateDisplayLabelsAbort) {
  // Cells are keyed (and seeded) by display label, so a sweep that varies a
  // knob without relabelling would silently alias cells. The runner aborts.
  ExperimentSpec spec;
  spec.scale = RunScale::kSmoke;
  spec.datasets = {market::DatasetId::kCryptoA};
  StrategySpec a{.name = "CRP"};
  StrategySpec b{.name = "CRP"};
  spec.strategies = {a, b};
  EXPECT_DEATH(ExperimentRunner(0).Run(spec), "");
}

TEST(ExperimentRunnerDeathTest, EmptyAxesAbort) {
  ExperimentSpec no_datasets;
  no_datasets.strategies = {StrategySpec{.name = "UBAH"}};
  EXPECT_DEATH(ExperimentRunner(0).Run(no_datasets), "");

  ExperimentSpec no_strategies;
  no_strategies.datasets = {market::DatasetId::kCryptoA};
  EXPECT_DEATH(ExperimentRunner(0).Run(no_strategies), "");
}

TEST(ResultSinkTest, ReturnsRowsInIndexOrder) {
  ResultSink sink(3);
  CellResult r0, r1, r2;
  r0.key.strategy = "zero";
  r1.key.strategy = "one";
  r2.key.strategy = "two";
  // Report out of order, as parallel completion would.
  sink.Set(2, r2);
  sink.Set(0, r0);
  sink.Set(1, r1);
  const std::vector<CellResult> rows = sink.Take();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key.strategy, "zero");
  EXPECT_EQ(rows[1].key.strategy, "one");
  EXPECT_EQ(rows[2].key.strategy, "two");
}

TEST(ResultSinkDeathTest, DoubleReportAborts) {
  ResultSink sink(2);
  sink.Set(0, CellResult{});
  EXPECT_DEATH(sink.Set(0, CellResult{}), "");
}

TEST(ResultSinkDeathTest, TakeWithMissingCellAborts) {
  ResultSink sink(2);
  sink.Set(0, CellResult{});
  EXPECT_DEATH(sink.Take(), "");
}

TEST(MetricValueTest, MapsEveryPaperColumn) {
  backtest::Metrics metrics;
  metrics.apv = 2.0;
  metrics.sr_pct = 3.0;
  metrics.std_pct = 4.0;
  metrics.mdd_pct = 5.0;
  metrics.cr = 6.0;
  metrics.turnover = 7.0;
  EXPECT_EQ(MetricValue(metrics, "APV"), 2.0);
  EXPECT_EQ(MetricValue(metrics, "SR(%)"), 3.0);
  EXPECT_EQ(MetricValue(metrics, "STD(%)"), 4.0);
  EXPECT_EQ(MetricValue(metrics, "MDD(%)"), 5.0);
  EXPECT_EQ(MetricValue(metrics, "CR"), 6.0);
  EXPECT_EQ(MetricValue(metrics, "TO"), 7.0);
}

TEST(MakeMetricsTableTest, RendersLabelsAndColumns) {
  CellResult result;
  result.metrics.apv = 1.5;
  result.metrics.turnover = 0.25;
  const TablePrinter table = MakeMetricsTable(
      "Algos", {{"UBAH", &result}}, {"APV", "TO"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Algos"), std::string::npos);
  EXPECT_NE(rendered.find("UBAH"), std::string::npos);
  EXPECT_NE(rendered.find("1.500"), std::string::npos);
  EXPECT_NE(rendered.find("0.250"), std::string::npos);
}

TEST(WriteResultsJsonTest, DumpsKeyFieldsAndMetrics) {
  CellResult result;
  result.key = CellKey{"UBAH", "Crypto-A", 0.0025, 1};
  result.derived_seed = CellSeed(result.key);
  result.metrics.apv = 1.25;
  const std::string path =
      testing::TempDir() + "/exec_experiment_results_test.json";
  ASSERT_TRUE(WriteResultsJson(path, {result}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"UBAH\""), std::string::npos);
  EXPECT_NE(json.find("\"Crypto-A\""), std::string::npos);
  EXPECT_NE(json.find("apv"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteResultsJsonTest, DoublesRoundTripBitExactly) {
  // The fabric's merged-results equality check compares JSON files from
  // different runs, so every double must survive the text round-trip
  // bit-for-bit — %.17g, not a display precision.
  CellResult result;
  result.key = CellKey{"UBAH", "Crypto-A", 1.0 / 3.0, 1};
  result.derived_seed = CellSeed(result.key);
  result.metrics.apv = 1.0 + 1e-15;        // Lost at < 16 digits.
  result.metrics.sr_pct = 0.1;             // Not exactly representable.
  result.metrics.turnover = 3.0e-300;      // Extreme exponent.
  const std::string path =
      testing::TempDir() + "/exec_experiment_results_roundtrip.json";
  ASSERT_TRUE(WriteResultsJson(path, {result}));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  auto extract = [&json](const std::string& field) {
    const size_t at = json.find("\"" + field + "\":");
    EXPECT_NE(at, std::string::npos) << field;
    const size_t start = at + field.size() + 3;
    size_t end = start;
    while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
    return std::strtod(json.substr(start, end - start).c_str(), nullptr);
  };
  EXPECT_EQ(extract("cost_rate"), 1.0 / 3.0);
  EXPECT_EQ(extract("apv"), 1.0 + 1e-15);
  EXPECT_EQ(extract("sr_pct"), 0.1);
  EXPECT_EQ(extract("turnover"), 3.0e-300);
  std::remove(path.c_str());
}

TEST(WriteResultsJsonTest, WritesAtomically) {
  // An existing target must never be visible half-overwritten: the new
  // content arrives via temp-then-rename, and no .tmp residue remains.
  const std::string path =
      testing::TempDir() + "/exec_experiment_results_atomic.json";
  {
    std::ofstream prior(path);
    prior << "prior content";
  }
  CellResult result;
  result.key = CellKey{"UBAH", "Crypto-A", 0.0025, 1};
  ASSERT_TRUE(WriteResultsJson(path, {result}));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str().find("prior content"), std::string::npos);
  EXPECT_NE(buffer.str().find("\"UBAH\""), std::string::npos);
  std::ifstream temp(path + ".tmp");
  EXPECT_FALSE(temp.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppn::exec
