#include "backtest/costs.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/random.h"
#include "obs/stats.h"

namespace ppn::backtest {
namespace {

TEST(CostSolverTest, NoTradeNoCost) {
  const std::vector<double> p = {0.2, 0.5, 0.3};
  const double omega = SolveNetWealthFactor(p, p, CostModel::Uniform(0.0025));
  EXPECT_DOUBLE_EQ(omega, 1.0);
}

TEST(CostSolverTest, ZeroRateNoCost) {
  const std::vector<double> a = {1.0, 0.0, 0.0};
  const std::vector<double> b = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(SolveNetWealthFactor(a, b, CostModel::Uniform(0.0)), 1.0);
}

TEST(CostSolverTest, FullSwitchFromCashApproxRate) {
  // Buying the full portfolio from cash costs about ψ (purchases only).
  const std::vector<double> cash = {1.0, 0.0};
  const std::vector<double> risk = {0.0, 1.0};
  const double psi = 0.0025;
  const double omega = SolveNetWealthFactor(cash, risk, CostModel::Uniform(psi));
  // Fixed point: 1-ω = ψ·ω  →  ω = 1/(1+ψ).
  EXPECT_NEAR(omega, 1.0 / (1.0 + psi), 1e-12);
}

TEST(CostSolverTest, SatisfiesFixedPointEquation) {
  Rng rng(5);
  const CostModel model = CostModel::Uniform(0.0025);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 2 + static_cast<int>(rng.UniformInt(8));
    const std::vector<double> prev = rng.Dirichlet(m + 1, 1.0);
    const std::vector<double> target = rng.Dirichlet(m + 1, 1.0);
    const double omega = SolveNetWealthFactor(prev, target, model);
    const double c = CostFractionAt(prev, target, omega, model);
    EXPECT_NEAR(omega, 1.0 - c, 1e-10);
    EXPECT_GT(omega, 0.0);
    EXPECT_LE(omega, 1.0);
  }
}

TEST(CostSolverTest, UniformRateMatchesL1Identity) {
  // With ψ_p = ψ_s = ψ, c = ψ ‖a ω - â‖₁ over risk assets.
  Rng rng(6);
  const double psi = 0.01;
  const CostModel model = CostModel::Uniform(psi);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<double> prev = rng.Dirichlet(5, 1.0);
    const std::vector<double> target = rng.Dirichlet(5, 1.0);
    const double omega = SolveNetWealthFactor(prev, target, model);
    double l1 = 0.0;
    for (size_t i = 1; i < prev.size(); ++i) {
      l1 += std::fabs(target[i] * omega - prev[i]);
    }
    EXPECT_NEAR(1.0 - omega, psi * l1, 1e-10);
  }
}

TEST(CostSolverTest, AsymmetricRates) {
  const std::vector<double> prev = {0.0, 1.0, 0.0};
  const std::vector<double> target = {0.0, 0.0, 1.0};
  CostModel model;
  model.sale_rate = 0.02;
  model.purchase_rate = 0.01;
  const double omega = SolveNetWealthFactor(prev, target, model);
  // Sell everything (cost 0.02·1) and buy ω (cost 0.01·ω):
  // 1-ω = 0.02 + 0.01ω → ω = 0.98/1.01.
  EXPECT_NEAR(omega, 0.98 / 1.01, 1e-10);
}

// Property: Proposition 4 bounds hold for random rebalances at several ψ.
class Prop4Property : public ::testing::TestWithParam<double> {};

TEST_P(Prop4Property, BoundsHold) {
  const double psi = GetParam();
  Rng rng(static_cast<uint64_t>(psi * 1e6) + 1);
  const CostModel model = CostModel::Uniform(psi);
  for (int trial = 0; trial < 300; ++trial) {
    const int m = 2 + static_cast<int>(rng.UniformInt(10));
    const std::vector<double> prev = rng.Dirichlet(m + 1, 0.7);
    const std::vector<double> target = rng.Dirichlet(m + 1, 0.7);
    const double omega = SolveNetWealthFactor(prev, target, model);
    const double cost = 1.0 - omega;
    const CostBounds bounds = Proposition4Bounds(prev, target, psi);
    EXPECT_GE(cost, bounds.lower - 1e-9)
        << "psi=" << psi << " trial=" << trial;
    EXPECT_LE(cost, bounds.upper + 1e-9)
        << "psi=" << psi << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(CostRates, Prop4Property,
                         ::testing::Values(0.0001, 0.001, 0.0025, 0.01, 0.05,
                                           0.25));

TEST(Prop4Test, BoundsAreOrderedAndScaleWithPsi) {
  // Regression for the dead ternary that returned ψ/(1+ψ)·d for BOTH
  // bounds: the interval must be genuinely two-sided, lower ≤ upper with
  // a strict gap whenever ψ > 0 and d > 0.
  Rng rng(21);
  for (const double psi : {0.0001, 0.0025, 0.01, 0.25, 0.5}) {
    for (int trial = 0; trial < 100; ++trial) {
      const std::vector<double> prev = rng.Dirichlet(5, 0.7);
      const std::vector<double> target = rng.Dirichlet(5, 0.7);
      double distance = 0.0;
      for (size_t i = 1; i < target.size(); ++i) {
        distance += std::fabs(target[i] - prev[i]);
      }
      const CostBounds bounds = Proposition4Bounds(prev, target, psi);
      EXPECT_LE(bounds.lower, bounds.upper) << "psi=" << psi;
      EXPECT_NEAR(bounds.lower, psi / (1.0 + psi) * distance, 1e-12);
      EXPECT_NEAR(bounds.upper, psi / (1.0 - psi) * distance, 1e-12);
      if (distance > 0.0) {
        EXPECT_LT(bounds.lower, bounds.upper) << "psi=" << psi;
      }
    }
  }
  // ψ = 0: trading is free and both bounds collapse to zero.
  const CostBounds free_bounds =
      Proposition4Bounds({0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, 0.0);
  EXPECT_EQ(free_bounds.lower, 0.0);
  EXPECT_EQ(free_bounds.upper, 0.0);
}

TEST(Prop4Test, L1DistanceWithinStatedRange) {
  // Paper: ‖a - â‖₁ ∈ (0, 2(1-ψ)/(1+ψ)] — sanity-check the upper limit on
  // the extreme all-in switch.
  const std::vector<double> prev = {0.0, 1.0, 0.0};
  const std::vector<double> target = {0.0, 0.0, 1.0};
  double distance = 0.0;
  for (size_t i = 1; i < prev.size(); ++i) {
    distance += std::fabs(target[i] - prev[i]);
  }
  EXPECT_NEAR(distance, 2.0, 1e-12);
  const double psi = 0.0025;
  EXPECT_LE(2.0 * (1 - psi) / (1 + psi), 2.0);
}

TEST(DriftPortfolioTest, RenormalizesByReturn) {
  const std::vector<double> action = {0.5, 0.5};
  const std::vector<double> relative = {1.0, 2.0};
  const std::vector<double> drifted = DriftPortfolio(action, relative);
  EXPECT_NEAR(drifted[0], 0.5 / 1.5, 1e-12);
  EXPECT_NEAR(drifted[1], 1.0 / 1.5, 1e-12);
  EXPECT_TRUE(IsOnSimplex(drifted, 1e-12));
}

TEST(DriftPortfolioTest, NoChangeWhenRelativesEqual) {
  const std::vector<double> action = {0.3, 0.4, 0.3};
  const std::vector<double> drifted = DriftPortfolio(action, {1.5, 1.5, 1.5});
  for (size_t i = 0; i < action.size(); ++i) {
    EXPECT_NEAR(drifted[i], action[i], 1e-12);
  }
}

TEST(DriftPortfolioDeathTest, NonPositiveRelativeAborts) {
  EXPECT_DEATH(DriftPortfolio({1.0, 0.0}, {0.0, 1.0}), "PPN_CHECK");
}

TEST(CostSolverTest, DetailedReportsConvergenceAndIterations) {
  const std::vector<double> prev = {0.2, 0.5, 0.3};
  const NetWealthSolve solve =
      SolveNetWealthFactorDetailed(prev, prev, CostModel::Uniform(0.0025));
  EXPECT_TRUE(solve.converged);
  EXPECT_GT(solve.iterations, 0);
  EXPECT_DOUBLE_EQ(solve.omega, 1.0);
}

TEST(CostSolverTest, ExtremePsiFullSwitchConverges) {
  // Regression: the contraction factor is ≈ ψ, so ψ = 0.9 needs ~300
  // iterations — past the old 200-iteration cap, which silently returned
  // the non-converged iterate. The raised cap and ψ-scaled tolerance must
  // converge and satisfy the fixed-point identity.
  const std::vector<double> prev = {0.0, 1.0, 0.0};
  const std::vector<double> target = {0.0, 0.0, 1.0};
  for (const double psi : {0.5, 0.8, 0.9, 0.99}) {
    const CostModel model = CostModel::Uniform(psi);
    const NetWealthSolve solve =
        SolveNetWealthFactorDetailed(prev, target, model);
    EXPECT_TRUE(solve.converged) << "psi=" << psi;
    // Full switch: sell 1 (cost ψ), buy ω (cost ψω) → ω = (1-ψ)/(1+ψ).
    EXPECT_NEAR(solve.omega, (1.0 - psi) / (1.0 + psi), 1e-9 / (1.0 - psi))
        << "psi=" << psi;
    const double c = CostFractionAt(prev, target, solve.omega, model);
    EXPECT_NEAR(solve.omega, 1.0 - c, 1e-12 / (1.0 - psi)) << "psi=" << psi;
  }
}

TEST(CostSolverTest, ExtremePsiAdversarialPortfoliosConverge) {
  Rng rng(11);
  for (const double psi : {0.9, 0.99}) {
    const CostModel model = CostModel::Uniform(psi);
    for (int trial = 0; trial < 50; ++trial) {
      const int m = 2 + static_cast<int>(rng.UniformInt(8));
      // Spiky Dirichlet draws (alpha 0.1): near-vertex portfolios, the
      // worst case for turnover and thus for the fixed-point contraction.
      const std::vector<double> prev = rng.Dirichlet(m + 1, 0.1);
      const std::vector<double> target = rng.Dirichlet(m + 1, 0.1);
      const NetWealthSolve solve =
          SolveNetWealthFactorDetailed(prev, target, model);
      EXPECT_TRUE(solve.converged) << "psi=" << psi << " trial=" << trial;
      EXPECT_GT(solve.omega, 0.0);
      EXPECT_LE(solve.omega, 1.0);
    }
  }
}

TEST(CostSolverTest, NormalPsiIterationCountIsSmall) {
  // The fix must not disturb realistic-rate behaviour: at the paper's
  // ψ = 0.25% the solve still finishes in a handful of iterations.
  Rng rng(12);
  const CostModel model = CostModel::Uniform(0.0025);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> prev = rng.Dirichlet(6, 1.0);
    const std::vector<double> target = rng.Dirichlet(6, 1.0);
    const NetWealthSolve solve =
        SolveNetWealthFactorDetailed(prev, target, model);
    EXPECT_TRUE(solve.converged);
    EXPECT_LE(solve.iterations, 20);
  }
}

TEST(CostSolverTest, SolvesAreCountedInObsRegistry) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  obs::ScopedObsEnable enable;
  obs::ResetAll();
  const std::vector<double> prev = {0.2, 0.5, 0.3};
  const std::vector<double> target = {0.1, 0.3, 0.6};
  SolveNetWealthFactor(prev, target, CostModel::Uniform(0.0025));
  SolveNetWealthFactor(prev, target, CostModel::Uniform(0.01));
  const obs::Snapshot snapshot = obs::TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("backtest.solver.calls"), 2.0);
  ASSERT_EQ(snapshot.histograms.count("backtest.solver.iterations"), 1u);
  EXPECT_EQ(snapshot.histograms.at("backtest.solver.iterations").count, 2);
  EXPECT_EQ(snapshot.counters.count("backtest.solver.nonconverged"), 0u);
  obs::ResetAll();
}

TEST(CostSolverDeathTest, NonSimplexInputsAbort) {
  const std::vector<double> bad = {0.9, 0.9};
  const std::vector<double> good = {0.5, 0.5};
  EXPECT_DEATH(SolveNetWealthFactor(bad, good, CostModel::Uniform(0.01)),
               "not a portfolio");
}

}  // namespace
}  // namespace ppn::backtest
