#include "backtest/backtester.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"

namespace ppn::backtest {
namespace {

// Deterministic two-asset panel with known relatives.
market::OhlcPanel MakePanel(int64_t periods, double growth0, double growth1) {
  market::OhlcPanel panel(periods, 2);
  double c0 = 10.0;
  double c1 = 20.0;
  for (int64_t t = 0; t < periods; ++t) {
    for (int64_t a = 0; a < 2; ++a) {
      const double close = a == 0 ? c0 : c1;
      panel.SetPrice(t, a, market::kOpen, close);
      panel.SetPrice(t, a, market::kHigh, close * 1.001);
      panel.SetPrice(t, a, market::kLow, close * 0.999);
      panel.SetPrice(t, a, market::kClose, close);
    }
    c0 *= growth0;
    c1 *= growth1;
  }
  return panel;
}

// Always stays fully in cash.
class CashStrategy : public Strategy {
 public:
  std::string name() const override { return "Cash"; }
  std::vector<double> DecideWeights(const MarketView& view,
                                    const std::vector<double>&) override {
    std::vector<double> action(view.panel.num_assets() + 1, 0.0);
    action[0] = 1.0;
    return action;
  }
};

// Always all-in on one risk asset.
class SingleAssetStrategy : public Strategy {
 public:
  explicit SingleAssetStrategy(int64_t asset) : asset_(asset) {}
  std::string name() const override { return "Single"; }
  std::vector<double> DecideWeights(const MarketView& view,
                                    const std::vector<double>&) override {
    std::vector<double> action(view.panel.num_assets() + 1, 0.0);
    action[asset_ + 1] = 1.0;
    return action;
  }

 private:
  int64_t asset_;
};

// Returns a non-simplex vector (for the contract death test).
class BrokenStrategy : public Strategy {
 public:
  std::string name() const override { return "Broken"; }
  std::vector<double> DecideWeights(const MarketView& view,
                                    const std::vector<double>&) override {
    return std::vector<double>(view.panel.num_assets() + 1, 0.9);
  }
};

TEST(BacktesterTest, CashKeepsWealthAtOne) {
  market::OhlcPanel panel = MakePanel(20, 1.02, 0.99);
  CashStrategy strategy;
  BacktestConfig config;
  config.start_period = 5;
  config.end_period = 20;
  const BacktestRecord record = RunBacktest(&strategy, panel, config);
  ASSERT_EQ(record.wealth_curve.size(), 15u);
  for (const double w : record.wealth_curve) EXPECT_NEAR(w, 1.0, 1e-12);
  for (const double c : record.cost_fractions) EXPECT_NEAR(c, 0.0, 1e-12);
}

TEST(BacktesterTest, SingleAssetTracksGrowthWithoutCosts) {
  market::OhlcPanel panel = MakePanel(20, 1.02, 0.99);
  SingleAssetStrategy strategy(0);
  BacktestConfig config;
  config.costs = CostModel::Uniform(0.0);
  config.start_period = 1;
  config.end_period = 20;
  const BacktestRecord record = RunBacktest(&strategy, panel, config);
  EXPECT_NEAR(record.wealth_curve.back(), std::pow(1.02, 19), 1e-6);
}

TEST(BacktesterTest, InitialBuyIncursCost) {
  market::OhlcPanel panel = MakePanel(10, 1.0, 1.0);  // Flat market.
  SingleAssetStrategy strategy(0);
  BacktestConfig config;
  config.costs = CostModel::Uniform(0.0025);
  config.start_period = 1;
  config.end_period = 10;
  const BacktestRecord record = RunBacktest(&strategy, panel, config);
  // One initial purchase: wealth = 1/(1+ψ); then no further trades
  // (portfolio already on target), so wealth stays there.
  EXPECT_NEAR(record.wealth_curve.back(), 1.0 / 1.0025, 1e-9);
  EXPECT_GT(record.cost_fractions[0], 0.0);
  for (size_t t = 1; t < record.cost_fractions.size(); ++t) {
    EXPECT_NEAR(record.cost_fractions[t], 0.0, 1e-12);
  }
}

TEST(BacktesterTest, WealthIdentityHolds) {
  // wealth_t = Π (a·x) ω — recompute independently from the record.
  market::OhlcPanel panel = MakePanel(15, 1.01, 0.98);
  SingleAssetStrategy strategy(1);
  BacktestConfig config;
  config.start_period = 2;
  config.end_period = 15;
  const BacktestRecord record = RunBacktest(&strategy, panel, config);
  double wealth = 1.0;
  for (size_t i = 0; i < record.log_returns.size(); ++i) {
    wealth *= std::exp(record.log_returns[i]);
    EXPECT_NEAR(record.wealth_curve[i], wealth, 1e-9);
  }
}

TEST(BacktesterTest, ActionsAreRecordedOnSimplex) {
  market::OhlcPanel panel = MakePanel(10, 1.01, 1.0);
  SingleAssetStrategy strategy(0);
  BacktestConfig config;
  config.start_period = 1;
  config.end_period = 10;
  const BacktestRecord record = RunBacktest(&strategy, panel, config);
  for (const auto& action : record.actions) {
    EXPECT_TRUE(IsOnSimplex(action, 1e-9));
  }
}

TEST(BacktesterTest, HaltedAssetIsForceLiquidated) {
  // Asset 0 grows 2%/period but goes non-tradeable at t=5: the backtester
  // must force the position out (to cash here — the strategy wants nothing
  // else) and the halted bars contribute relative 1.0.
  market::OhlcPanel panel = MakePanel(10, 1.02, 1.0);
  for (int64_t t = 5; t < 10; ++t) panel.SetTradeable(t, 0, false);
  SingleAssetStrategy strategy(0);
  BacktestConfig config;
  config.costs = CostModel::Uniform(0.0);
  config.start_period = 1;
  config.end_period = 10;
  const BacktestRecord record = RunBacktest(&strategy, panel, config);
  // 4 tradeable growth periods (t=1..4), then flat in cash.
  EXPECT_NEAR(record.wealth_curve.back(), std::pow(1.02, 4), 1e-9);
  const std::vector<double>& last_action = record.actions.back();
  EXPECT_NEAR(last_action[0], 1.0, 1e-12);
  EXPECT_NEAR(last_action[1], 0.0, 1e-12);
}

TEST(BacktesterTest, CostMultipliersScaleRebalanceCosts) {
  // Flat market, one initial buy at t=1 where the multiplier doubles ψ:
  // wealth = 1/(1 + 2ψ) instead of the unscaled 1/(1 + ψ).
  market::OhlcPanel panel = MakePanel(10, 1.0, 1.0);
  SingleAssetStrategy strategy(0);
  BacktestConfig config;
  config.costs = CostModel::Uniform(0.0025);
  config.start_period = 1;
  config.end_period = 10;
  config.cost_multipliers.assign(10, 1.0);
  config.cost_multipliers[1] = 2.0;
  const BacktestRecord record = RunBacktest(&strategy, panel, config);
  EXPECT_NEAR(record.wealth_curve.back(), 1.0 / 1.005, 1e-9);
}

TEST(BacktesterTest, RunOnTestRangeUsesSplit) {
  market::MarketDataset dataset;
  dataset.panel = MakePanel(30, 1.01, 1.0);
  dataset.train_end = 20;
  CashStrategy strategy;
  const BacktestRecord record = RunOnTestRange(&strategy, dataset, 0.0025);
  EXPECT_EQ(record.wealth_curve.size(), 10u);
}

TEST(BacktesterDeathTest, NonSimplexActionAborts) {
  market::OhlcPanel panel = MakePanel(10, 1.0, 1.0);
  BrokenStrategy strategy;
  BacktestConfig config;
  config.start_period = 1;
  config.end_period = 10;
  EXPECT_DEATH(RunBacktest(&strategy, panel, config), "non-simplex");
}

TEST(BacktesterDeathTest, BadRangeAborts) {
  market::OhlcPanel panel = MakePanel(10, 1.0, 1.0);
  CashStrategy strategy;
  BacktestConfig config;
  config.start_period = 8;
  config.end_period = 8;
  EXPECT_DEATH(RunBacktest(&strategy, panel, config), "PPN_CHECK");
}

}  // namespace
}  // namespace ppn::backtest
