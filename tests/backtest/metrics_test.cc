#include "backtest/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ppn::backtest {
namespace {

TEST(MaxDrawdownTest, MonotoneCurveHasNone) {
  EXPECT_DOUBLE_EQ(MaxDrawdown({1.1, 1.2, 1.5, 2.0}), 0.0);
}

TEST(MaxDrawdownTest, SimpleDrop) {
  // Peak 2.0 -> trough 1.0: drawdown 50%.
  EXPECT_DOUBLE_EQ(MaxDrawdown({1.5, 2.0, 1.0, 1.8}), 0.5);
}

TEST(MaxDrawdownTest, UsesImplicitStartAtOne) {
  // Curve starts below 1: peak is the implicit S_0 = 1.
  EXPECT_DOUBLE_EQ(MaxDrawdown({0.8, 0.9}), 0.2);
}

TEST(MaxDrawdownTest, TakesWorstOfSeveral) {
  EXPECT_DOUBLE_EQ(MaxDrawdown({2.0, 1.8, 2.0, 1.0, 3.0, 2.4}), 0.5);
}

TEST(MetricsTest, HandComputedValues) {
  BacktestRecord record;
  record.log_returns = {0.1, -0.05, 0.2, 0.05};
  double wealth = 1.0;
  for (const double r : record.log_returns) {
    wealth *= std::exp(r);
    record.wealth_curve.push_back(wealth);
  }
  record.turnover_terms = {0.4, 0.2, 0.0, 0.2};
  const Metrics metrics = ComputeMetrics(record);
  EXPECT_NEAR(metrics.apv, std::exp(0.3), 1e-9);
  const double mean = 0.075;
  const double var = (0.025 * 0.025 + 0.125 * 0.125 + 0.125 * 0.125 +
                      0.025 * 0.025) /
                     4.0;
  EXPECT_NEAR(metrics.std_pct, std::sqrt(var) * 100.0, 1e-9);
  EXPECT_NEAR(metrics.sr_pct, mean / std::sqrt(var) * 100.0, 1e-9);
  // TO = sum / (2n) = 0.8 / 8.
  EXPECT_NEAR(metrics.turnover, 0.1, 1e-12);
  // MDD: wealth dips from e^0.1 to e^0.05.
  EXPECT_NEAR(metrics.mdd_pct, (1.0 - std::exp(-0.05)) * 100.0, 1e-9);
  EXPECT_NEAR(metrics.cr,
              (metrics.apv - 1.0) / (1.0 - std::exp(-0.05)), 1e-6);
}

TEST(MetricsTest, NegativeCalmarForLosingRun) {
  BacktestRecord record;
  record.log_returns = {-0.1, -0.1};
  record.wealth_curve = {std::exp(-0.1), std::exp(-0.2)};
  const Metrics metrics = ComputeMetrics(record);
  EXPECT_LT(metrics.cr, 0.0);
  EXPECT_LT(metrics.apv, 1.0);
}

TEST(MetricsTest, ZeroVarianceUsesSignPreservingFloor) {
  // A zero-variance always-profitable run must not score WORSE than a
  // noisy one: the SR floors std at 1e-6 (mirroring the CR floor) rather
  // than reporting 0.
  BacktestRecord record;
  record.log_returns = {0.01, 0.01, 0.01};
  record.wealth_curve = {1.01, 1.02, 1.03};
  const Metrics metrics = ComputeMetrics(record);
  EXPECT_DOUBLE_EQ(metrics.std_pct, 0.0);
  EXPECT_DOUBLE_EQ(metrics.sr_pct, 0.01 / 1e-6 * 100.0);
}

TEST(MetricsTest, ZeroVarianceLosingRunHasNegativeSharpe) {
  BacktestRecord record;
  record.log_returns = {-0.01, -0.01};
  record.wealth_curve = {std::exp(-0.01), std::exp(-0.02)};
  const Metrics metrics = ComputeMetrics(record);
  EXPECT_DOUBLE_EQ(metrics.sr_pct, -0.01 / 1e-6 * 100.0);
}

TEST(MetricsTest, SharpeFloorDoesNotBindAboveThreshold) {
  // std > 1e-6: the floored formula is bit-identical to mean/std.
  BacktestRecord record;
  record.log_returns = {0.02, 0.0};
  record.wealth_curve = {std::exp(0.02), std::exp(0.02)};
  const Metrics metrics = ComputeMetrics(record);
  EXPECT_DOUBLE_EQ(metrics.sr_pct, 0.01 / 0.01 * 100.0);
}

TEST(MetricsTest, NoDrawdownUsesFloor) {
  BacktestRecord record;
  record.log_returns = {0.1, 0.1};
  record.wealth_curve = {1.1, 1.21};
  const Metrics metrics = ComputeMetrics(record);
  EXPECT_GT(metrics.cr, 1e4);  // Huge but finite.
}

TEST(MetricsDeathTest, EmptyRecordAborts) {
  BacktestRecord record;
  EXPECT_DEATH(ComputeMetrics(record), "PPN_CHECK");
}

TEST(MetricsDeathTest, MismatchedSizesAbort) {
  BacktestRecord record;
  record.wealth_curve = {1.0, 1.1};
  record.log_returns = {0.1};
  EXPECT_DEATH(ComputeMetrics(record), "PPN_CHECK");
}

}  // namespace
}  // namespace ppn::backtest
