#include <cmath>

#include <gtest/gtest.h>

#include "backtest/backtester.h"
#include "common/math_utils.h"
#include "market/generator.h"
#include "strategies/anticor.h"
#include "strategies/common.h"
#include "strategies/mean_reversion.h"
#include "strategies/registry.h"
#include "strategies/simple.h"
#include "strategies/universal.h"

namespace ppn::strategies {
namespace {

market::OhlcPanel SyntheticPanel(uint64_t seed = 3, int64_t assets = 5,
                                 int64_t periods = 300) {
  market::SyntheticMarketConfig config;
  config.num_assets = assets;
  config.num_periods = periods;
  config.seed = seed;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.Generate();
}

/// Builds a classic baseline through the unified registry (the only
/// factory since the deprecated MakeClassicBaseline shim was removed).
/// Classics ignore the train/test split, so any panel wrapper works.
std::unique_ptr<backtest::Strategy> MakeBaseline(const std::string& name) {
  market::MarketDataset dataset;
  dataset.name = "baselines-test";
  dataset.panel = SyntheticPanel();
  dataset.train_end = 200;
  return MakeStrategy({.name = name}, dataset);
}

// Flat panel where asset prices never move.
market::OhlcPanel FlatPanel(int64_t assets, int64_t periods) {
  market::OhlcPanel panel(periods, assets);
  for (int64_t t = 0; t < periods; ++t) {
    for (int64_t a = 0; a < assets; ++a) {
      const double price = 10.0 * (a + 1);
      panel.SetPrice(t, a, market::kOpen, price);
      panel.SetPrice(t, a, market::kHigh, price);
      panel.SetPrice(t, a, market::kLow, price);
      panel.SetPrice(t, a, market::kClose, price);
    }
  }
  return panel;
}

TEST(HelpersTest, UniformRiskPortfolio) {
  const std::vector<double> p = UniformRiskPortfolio(4);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  for (int i = 1; i <= 4; ++i) EXPECT_DOUBLE_EQ(p[i], 0.25);
}

TEST(HelpersTest, WithCashClipsNegatives) {
  const std::vector<double> p = WithCash({0.5, -0.2, 0.5});
  EXPECT_TRUE(IsOnSimplex(p, 1e-12));
  EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(HelpersTest, WithCashAllClippedFallsBackToUniform) {
  const std::vector<double> p = WithCash({-1.0, -2.0});
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(HelpersTest, L1MedianOfSymmetricPointsIsCenter) {
  const std::vector<std::vector<double>> points = {
      {1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}, {0.0, -1.0}};
  const std::vector<double> median = L1Median(points);
  EXPECT_NEAR(median[0], 0.0, 1e-6);
  EXPECT_NEAR(median[1], 0.0, 1e-6);
}

TEST(HelpersTest, L1MedianRobustToOutlier) {
  // Geometric median resists one far outlier better than the mean.
  const std::vector<std::vector<double>> points = {
      {1.0}, {1.1}, {0.9}, {100.0}};
  const std::vector<double> median = L1Median(points);
  EXPECT_LT(median[0], 2.0);
}

// --- Generic contract checks over all registered baselines. -------------

class BaselineContract : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineContract, ProducesSimplexPortfoliosThroughoutARun) {
  market::OhlcPanel panel = SyntheticPanel();
  auto strategy = MakeBaseline(GetParam());
  backtest::BacktestConfig config;
  config.start_period = 40;
  config.end_period = 200;
  const backtest::BacktestRecord record =
      backtest::RunBacktest(strategy.get(), panel, config);
  for (const auto& action : record.actions) {
    EXPECT_TRUE(IsOnSimplex(action, 1e-6)) << GetParam();
  }
  EXPECT_GT(record.wealth_curve.back(), 0.0);
}

TEST_P(BaselineContract, NoLookahead) {
  if (GetParam() == "Best") {
    GTEST_SKIP() << "Best is a hindsight oracle by definition";
  }
  // Decisions up to period t must not change when the future changes.
  market::OhlcPanel panel_a = SyntheticPanel(3);
  market::OhlcPanel panel_b = SyntheticPanel(3);
  // Rewrite the future (t >= 150) of panel_b.
  for (int64_t t = 150; t < panel_b.num_periods(); ++t) {
    for (int64_t a = 0; a < panel_b.num_assets(); ++a) {
      for (int f = 0; f < market::kNumPriceFields; ++f) {
        panel_b.SetPrice(t, a, static_cast<market::PriceField>(f),
                         1.0 + 0.01 * (a + f + t % 7));
      }
    }
  }
  auto strategy_a = MakeBaseline(GetParam());
  auto strategy_b = MakeBaseline(GetParam());
  strategy_a->Reset(panel_a, 40);
  strategy_b->Reset(panel_b, 40);
  std::vector<double> prev_hat = UniformRiskPortfolio(panel_a.num_assets());
  for (int64_t t = 40; t < 150; ++t) {
    const std::vector<double> action_a =
        strategy_a->DecideWeights({panel_a, t}, prev_hat);
    const std::vector<double> action_b =
        strategy_b->DecideWeights({panel_b, t}, prev_hat);
    ASSERT_EQ(action_a.size(), action_b.size());
    for (size_t i = 0; i < action_a.size(); ++i) {
      ASSERT_NEAR(action_a[i], action_b[i], 1e-12)
          << GetParam() << " leaked future data at t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineContract,
                         ::testing::ValuesIn(ClassicBaselineNames()),
                         [](const auto& info) { return info.param; });

TEST(RegistryTest, TwelveBaselines) {
  EXPECT_EQ(ClassicBaselineNames().size(), 12u);
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeBaseline("Nope"), "unknown strategy");
}

// --- Behavioral checks. --------------------------------------------------

TEST(UbahTest, NeverTradesAfterFirstPeriod) {
  market::OhlcPanel panel = SyntheticPanel();
  UbahStrategy strategy;
  backtest::BacktestConfig config;
  config.start_period = 10;
  config.end_period = 100;
  const backtest::BacktestRecord record =
      backtest::RunBacktest(&strategy, panel, config);
  for (size_t t = 1; t < record.cost_fractions.size(); ++t) {
    EXPECT_NEAR(record.cost_fractions[t], 0.0, 1e-12);
  }
}

TEST(BestTest, PicksTheHindsightWinner) {
  // Asset 1 grows fastest by construction.
  market::OhlcPanel panel(50, 3);
  for (int64_t t = 0; t < 50; ++t) {
    const double growth[3] = {1.0, 1.05, 1.01};
    for (int64_t a = 0; a < 3; ++a) {
      const double close = 10.0 * std::pow(growth[a], t);
      panel.SetPrice(t, a, market::kOpen, close);
      panel.SetPrice(t, a, market::kHigh, close);
      panel.SetPrice(t, a, market::kLow, close);
      panel.SetPrice(t, a, market::kClose, close);
    }
  }
  BestStrategy strategy;
  strategy.Reset(panel, 1);
  const std::vector<double> action =
      strategy.DecideWeights({panel, 1}, UniformRiskPortfolio(3));
  EXPECT_DOUBLE_EQ(action[2], 1.0);  // Risk asset 1 = index 2 with cash.
}

TEST(CrpTest, AlwaysUniform) {
  market::OhlcPanel panel = SyntheticPanel();
  CrpStrategy strategy;
  strategy.Reset(panel, 50);
  for (int64_t t = 50; t < 60; ++t) {
    const std::vector<double> action =
        strategy.DecideWeights({panel, t}, UniformRiskPortfolio(5));
    for (int64_t i = 1; i <= 5; ++i) EXPECT_DOUBLE_EQ(action[i], 0.2);
  }
}

TEST(EgTest, TiltsTowardRecentWinner) {
  // Asset 0 keeps winning: EG weight on it must grow past uniform.
  market::OhlcPanel panel(100, 2);
  for (int64_t t = 0; t < 100; ++t) {
    const double c0 = 10.0 * std::pow(1.03, t);
    const double c1 = 10.0;
    for (int64_t a = 0; a < 2; ++a) {
      const double close = a == 0 ? c0 : c1;
      panel.SetPrice(t, a, market::kOpen, close);
      panel.SetPrice(t, a, market::kHigh, close);
      panel.SetPrice(t, a, market::kLow, close);
      panel.SetPrice(t, a, market::kClose, close);
    }
  }
  EgStrategy strategy;
  strategy.Reset(panel, 1);
  const std::vector<double> early =
      strategy.DecideWeights({panel, 20}, UniformRiskPortfolio(2));
  const std::vector<double> late =
      strategy.DecideWeights({panel, 60}, UniformRiskPortfolio(2));
  EXPECT_GT(late[1], 0.5);
  EXPECT_GT(late[1], early[1]);  // Tilt strengthens with more evidence.
}

TEST(PamrTest, ShiftsTowardRecentLoser) {
  // One big up-move for asset 0: PAMR (mean reversion) must underweight it.
  market::OhlcPanel panel = FlatPanel(2, 20);
  for (int64_t t = 10; t < 20; ++t) {
    panel.SetPrice(t, 0, market::kClose, 20.0);
    panel.SetPrice(t, 0, market::kHigh, 20.0);
    panel.SetPrice(t, 0, market::kOpen, 20.0);
    panel.SetPrice(t, 0, market::kLow, 20.0);
  }
  PamrStrategy strategy(0.5);
  strategy.Reset(panel, 1);
  const std::vector<double> action =
      strategy.DecideWeights({panel, 12}, UniformRiskPortfolio(2));
  EXPECT_LT(action[1], action[2]);
}

TEST(OlmarTest, BuysAssetBelowItsMovingAverage) {
  // Asset 0 crashed relative to its MA: OLMAR predicts reversion up.
  market::OhlcPanel panel = FlatPanel(2, 30);
  for (int64_t t = 25; t < 30; ++t) {
    panel.SetPrice(t, 0, market::kClose, 5.0);
    panel.SetPrice(t, 0, market::kOpen, 5.0);
    panel.SetPrice(t, 0, market::kHigh, 5.0);
    panel.SetPrice(t, 0, market::kLow, 5.0);
  }
  OlmarStrategy strategy(5, 10.0);
  strategy.Reset(panel, 1);
  const std::vector<double> action =
      strategy.DecideWeights({panel, 27}, UniformRiskPortfolio(2));
  EXPECT_GT(action[1], action[2]);
}

TEST(RmrTest, MedianPredictionAlsoBuysDip) {
  market::OhlcPanel panel = FlatPanel(2, 30);
  for (int64_t t = 26; t < 30; ++t) {
    panel.SetPrice(t, 0, market::kClose, 5.0);
    panel.SetPrice(t, 0, market::kOpen, 5.0);
    panel.SetPrice(t, 0, market::kHigh, 5.0);
    panel.SetPrice(t, 0, market::kLow, 5.0);
  }
  RmrStrategy strategy(5, 5.0);
  strategy.Reset(panel, 1);
  const std::vector<double> action =
      strategy.DecideWeights({panel, 28}, UniformRiskPortfolio(2));
  EXPECT_GT(action[1], action[2]);
}

TEST(CwmrTest, StaysOnSimplexUnderRepeatedUpdates) {
  market::OhlcPanel panel = SyntheticPanel(11, 4, 200);
  CwmrStrategy strategy;
  strategy.Reset(panel, 1);
  for (int64_t t = 10; t < 150; t += 10) {
    const std::vector<double> action =
        strategy.DecideWeights({panel, t}, UniformRiskPortfolio(4));
    EXPECT_TRUE(IsOnSimplex(action, 1e-6)) << "t=" << t;
  }
}

TEST(WmamrTest, FlatMarketKeepsUniform) {
  market::OhlcPanel panel = FlatPanel(3, 40);
  WmamrStrategy strategy;
  strategy.Reset(panel, 1);
  const std::vector<double> action =
      strategy.DecideWeights({panel, 30}, UniformRiskPortfolio(3));
  // All relatives are 1: loss = max(0, 1 - 0.5) triggers, but the centered
  // signal is zero so no direction exists; weights stay uniform.
  for (int64_t i = 1; i <= 3; ++i) EXPECT_NEAR(action[i], 1.0 / 3, 1e-9);
}

TEST(AnticorTest, RespondsToAlternatingPattern) {
  // Two assets alternating out of phase: Anticor should move weight and
  // stay on the simplex.
  market::OhlcPanel panel(80, 2);
  for (int64_t t = 0; t < 80; ++t) {
    const double c0 = 10.0 * (t % 2 == 0 ? 1.0 : 1.2);
    const double c1 = 10.0 * (t % 2 == 0 ? 1.2 : 1.0);
    for (int64_t a = 0; a < 2; ++a) {
      const double close = a == 0 ? c0 : c1;
      panel.SetPrice(t, a, market::kOpen, close);
      panel.SetPrice(t, a, market::kHigh, close * 1.001);
      panel.SetPrice(t, a, market::kLow, close * 0.999);
      panel.SetPrice(t, a, market::kClose, close);
    }
  }
  AnticorStrategy strategy(4);
  strategy.Reset(panel, 1);
  const std::vector<double> action =
      strategy.DecideWeights({panel, 60}, UniformRiskPortfolio(2));
  EXPECT_TRUE(IsOnSimplex(action, 1e-9));
}

TEST(UpTest, ConvergesTowardBetterConstantPortfolios) {
  // Asset 0 dominates: UP's weighted average must overweight it.
  market::OhlcPanel panel(200, 2);
  for (int64_t t = 0; t < 200; ++t) {
    const double c0 = 10.0 * std::pow(1.02, t);
    const double c1 = 10.0 * std::pow(0.999, t);
    for (int64_t a = 0; a < 2; ++a) {
      const double close = a == 0 ? c0 : c1;
      panel.SetPrice(t, a, market::kOpen, close);
      panel.SetPrice(t, a, market::kHigh, close);
      panel.SetPrice(t, a, market::kLow, close);
      panel.SetPrice(t, a, market::kClose, close);
    }
  }
  UpStrategy strategy(300, 5);
  strategy.Reset(panel, 1);
  const std::vector<double> action =
      strategy.DecideWeights({panel, 150}, UniformRiskPortfolio(2));
  EXPECT_GT(action[1], 0.65);
}

TEST(OnsTest, StableOnRandomData) {
  market::OhlcPanel panel = SyntheticPanel(21, 4, 250);
  OnsStrategy strategy;
  backtest::BacktestConfig config;
  config.start_period = 10;
  config.end_period = 200;
  const backtest::BacktestRecord record =
      backtest::RunBacktest(&strategy, panel, config);
  EXPECT_GT(record.wealth_curve.back(), 0.1);
  for (const auto& action : record.actions) {
    EXPECT_TRUE(IsOnSimplex(action, 1e-6));
  }
}

}  // namespace
}  // namespace ppn::strategies
