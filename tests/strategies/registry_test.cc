// Tests for the unified strategy registry: name-list consistency, the
// `MakeStrategy` factory covering classics and neural policies through one
// call, lookahead safety of registry-built strategies, determinism in the
// spec seed, and `StrategySpec::Validate` contract checks.

#include "strategies/registry.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "backtest/backtester.h"
#include "common/math_utils.h"
#include "market/generator.h"
#include "market/presets.h"
#include "strategies/common.h"

namespace ppn::strategies {
namespace {

market::OhlcPanel SyntheticPanel(uint64_t seed = 3, int64_t assets = 5,
                                 int64_t periods = 300) {
  market::SyntheticMarketConfig config;
  config.num_assets = assets;
  config.num_periods = periods;
  config.seed = seed;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.Generate();
}

/// Wraps a synthetic panel in a dataset (classics ignore the split).
market::MarketDataset SyntheticDataset() {
  market::MarketDataset dataset;
  dataset.name = "registry-test";
  dataset.panel = SyntheticPanel();
  dataset.train_end = 200;
  return dataset;
}

// --- Name lists. ---------------------------------------------------------

TEST(RegistryNamesTest, TwelveClassicsAndTheNeuralFamily) {
  const std::vector<std::string> classics = ClassicBaselineNames();
  EXPECT_EQ(classics.size(), 12u);
  const std::vector<std::string> neurals = NeuralStrategyNames();
  for (const char* required : {"PPN", "EIIE", "PPN-AC"}) {
    EXPECT_NE(std::find(neurals.begin(), neurals.end(), required),
              neurals.end())
        << required;
  }
}

TEST(RegistryNamesTest, AllNamesIsClassicsThenNeurals) {
  const std::vector<std::string> all = AllStrategyNames();
  const std::vector<std::string> classics = ClassicBaselineNames();
  const std::vector<std::string> neurals = NeuralStrategyNames();
  ASSERT_EQ(all.size(), classics.size() + neurals.size());
  for (size_t i = 0; i < classics.size(); ++i) EXPECT_EQ(all[i], classics[i]);
  for (size_t i = 0; i < neurals.size(); ++i) {
    EXPECT_EQ(all[classics.size() + i], neurals[i]);
  }
}

TEST(RegistryNamesTest, PredicatesPartitionTheNames) {
  for (const std::string& name : AllStrategyNames()) {
    EXPECT_NE(IsClassicBaselineName(name), IsNeuralStrategyName(name))
        << name << " must be exactly one of classic/neural";
  }
  EXPECT_FALSE(IsClassicBaselineName("Nope"));
  EXPECT_FALSE(IsNeuralStrategyName("Nope"));
}

TEST(StrategySpecTest, DisplayFallsBackToName) {
  StrategySpec spec{.name = "PPN"};
  EXPECT_EQ(spec.display(), "PPN");
  spec.label = "PPN gamma=0";
  EXPECT_EQ(spec.display(), "PPN gamma=0");
}

// --- MakeStrategy: classics. ---------------------------------------------

TEST(MakeStrategyTest, ClassicsAreDeterministicAcrossConstructions) {
  // Two registry-built instances of the same classic must agree bitwise —
  // construction carries no hidden randomness or shared mutable state.
  const market::MarketDataset dataset = SyntheticDataset();
  for (const std::string& name : ClassicBaselineNames()) {
    SCOPED_TRACE(name);
    auto first = MakeStrategy({.name = name}, dataset);
    auto second = MakeStrategy({.name = name}, dataset);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(first->name(), name);
    first->Reset(dataset.panel, 40);
    second->Reset(dataset.panel, 40);
    std::vector<double> prev_hat =
        UniformRiskPortfolio(dataset.panel.num_assets());
    for (int64_t t = 40; t < 80; ++t) {
      const std::vector<double> a =
          first->DecideWeights({dataset.panel, t}, prev_hat);
      const std::vector<double> b =
          second->DecideWeights({dataset.panel, t}, prev_hat);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(MakeStrategyTest, ClassicsHaveNoLookahead) {
  // The registry-built strategies must not read past the decision period:
  // rewrite the future of one panel and check decisions stay identical.
  const market::MarketDataset dataset = SyntheticDataset();
  market::OhlcPanel mutated = SyntheticPanel();
  for (int64_t t = 150; t < mutated.num_periods(); ++t) {
    for (int64_t a = 0; a < mutated.num_assets(); ++a) {
      for (int f = 0; f < market::kNumPriceFields; ++f) {
        mutated.SetPrice(t, a, static_cast<market::PriceField>(f),
                         1.0 + 0.01 * (a + f + t % 7));
      }
    }
  }
  for (const std::string& name : ClassicBaselineNames()) {
    if (name == "Best") continue;  // Hindsight oracle by definition.
    SCOPED_TRACE(name);
    auto strategy_a = MakeStrategy({.name = name}, dataset);
    auto strategy_b = MakeStrategy({.name = name}, dataset);
    strategy_a->Reset(dataset.panel, 40);
    strategy_b->Reset(mutated, 40);
    const std::vector<double> prev_hat =
        UniformRiskPortfolio(dataset.panel.num_assets());
    for (int64_t t = 40; t < 150; ++t) {
      const std::vector<double> action_a =
          strategy_a->DecideWeights({dataset.panel, t}, prev_hat);
      const std::vector<double> action_b =
          strategy_b->DecideWeights({mutated, t}, prev_hat);
      ASSERT_EQ(action_a.size(), action_b.size());
      for (size_t i = 0; i < action_a.size(); ++i) {
        ASSERT_NEAR(action_a[i], action_b[i], 1e-12)
            << name << " leaked future data at t=" << t;
      }
    }
  }
}

// --- MakeStrategy: neural policies. --------------------------------------

StrategySpec TinyPpnSpec() {
  StrategySpec spec{.name = "PPN"};
  spec.base_steps = 8;  // kSmoke divides by 8 -> a 1-step training run.
  spec.scale = RunScale::kSmoke;
  spec.seed = 5;
  return spec;
}

TEST(MakeStrategyTest, TrainsAndBacktestsANeuralPolicy) {
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, RunScale::kSmoke);
  StrategySpec spec = TinyPpnSpec();
  spec.label = "PPN (tiny)";
  auto strategy = MakeStrategy(spec, dataset);
  ASSERT_NE(strategy, nullptr);
  EXPECT_EQ(strategy->name(), "PPN (tiny)");
  const backtest::BacktestRecord record =
      backtest::RunOnTestRange(strategy.get(), dataset, 0.0025);
  ASSERT_FALSE(record.actions.empty());
  for (const auto& action : record.actions) {
    EXPECT_TRUE(IsOnSimplex(action, 1e-4));
  }
  EXPECT_GT(record.wealth_curve.back(), 0.0);
}

TEST(MakeStrategyTest, NeuralTrainingIsDeterministicInTheSeed) {
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, RunScale::kSmoke);
  const StrategySpec spec = TinyPpnSpec();
  auto first = MakeStrategy(spec, dataset);
  auto second = MakeStrategy(spec, dataset);
  first->Reset(dataset.panel, dataset.train_end);
  second->Reset(dataset.panel, dataset.train_end);
  const std::vector<double> prev_hat =
      UniformRiskPortfolio(dataset.panel.num_assets());
  for (int64_t t = dataset.train_end; t < dataset.train_end + 5; ++t) {
    const std::vector<double> a =
        first->DecideWeights({dataset.panel, t}, prev_hat);
    const std::vector<double> b =
        second->DecideWeights({dataset.panel, t}, prev_hat);
    ASSERT_EQ(a.size(), b.size());
    // Bitwise equality: identical seeds must reproduce identical policies.
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "t=" << t;
  }
}

// --- Validate contract. --------------------------------------------------

TEST(StrategySpecDeathTest, UnknownNameAborts) {
  const market::MarketDataset dataset = SyntheticDataset();
  EXPECT_DEATH(MakeStrategy({.name = "Nope"}, dataset), "unknown strategy");
}

TEST(StrategySpecDeathTest, MalformedKnobsAbort) {
  StrategySpec spec{.name = "PPN"};
  spec.gamma = -1.0;
  EXPECT_DEATH(spec.Validate(), "");
  spec = StrategySpec{.name = "PPN"};
  spec.lambda = -0.5;
  EXPECT_DEATH(spec.Validate(), "");
  spec = StrategySpec{.name = "PPN"};
  spec.cost_rate = 1.0;
  EXPECT_DEATH(spec.Validate(), "cost_rate");
  spec = StrategySpec{.name = "PPN"};
  spec.base_steps = 0;
  EXPECT_DEATH(spec.Validate(), "");
}

}  // namespace
}  // namespace ppn::strategies
