#include "obs/stats.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ppn::obs {
namespace {

/// Every test enables profiling and starts from a zeroed registry. Metric
/// NAMES are still shared process-wide, so each test uses its own prefix.
class ObsStatsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }
  ScopedObsEnable enable_;
};

TEST_F(ObsStatsTest, CounterMergeIsIndependentOfThreadCount) {
  constexpr double kPerThreadAdds = 1000;
  auto run = [](int num_threads) {
    ResetAll();
    const double adds_per_thread = kPerThreadAdds * 4 / num_threads;
    std::vector<std::thread> threads;
    for (int i = 0; i < num_threads; ++i) {
      threads.emplace_back([adds_per_thread] {
        Counter& counter = GetCounter("t.merge.counter");
        for (double j = 0; j < adds_per_thread; ++j) counter.Add(1.0);
      });
    }
    for (std::thread& thread : threads) thread.join();
    return TakeSnapshot().counters.at("t.merge.counter");
  };
  const double with_1 = run(1);
  const double with_2 = run(2);
  const double with_4 = run(4);
  EXPECT_EQ(with_1, kPerThreadAdds * 4);
  EXPECT_EQ(with_1, with_2);
  EXPECT_EQ(with_1, with_4);
}

TEST_F(ObsStatsTest, GaugeMergesAsHighWatermark) {
  std::vector<std::thread> threads;
  for (int i = 1; i <= 4; ++i) {
    threads.emplace_back([i] {
      Gauge& gauge = GetGauge("t.gauge.depth");
      gauge.UpdateMax(static_cast<double>(i));
      gauge.UpdateMax(static_cast<double>(i) - 0.5);  // Lower: ignored.
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(TakeSnapshot().gauges.at("t.gauge.depth"), 4.0);
}

TEST_F(ObsStatsTest, UntouchedGaugeIsAbsentFromSnapshot) {
  GetGauge("t.gauge.untouched");
  const Snapshot snapshot = TakeSnapshot();
  EXPECT_EQ(snapshot.gauges.count("t.gauge.untouched"), 0u);
}

TEST_F(ObsStatsTest, HistogramCountSumMinMax) {
  Histogram& histogram = GetHistogram("t.hist.basic");
  histogram.Observe(3.0);
  histogram.Observe(0.5);
  histogram.Observe(10.0);
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.hist.basic");
  EXPECT_EQ(merged.count, 3);
  EXPECT_DOUBLE_EQ(merged.sum, 13.5);
  EXPECT_DOUBLE_EQ(merged.min, 0.5);
  EXPECT_DOUBLE_EQ(merged.max, 10.0);
  int64_t bucket_total = 0;
  for (const int64_t count : merged.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, 3);
}

TEST_F(ObsStatsTest, HistogramBucketsAreLog2Spaced) {
  // Bucket i covers [2^(i-31), 2^(i-30)): 3.0 lands in the bucket with
  // upper bound 4, 0.5 in the one with upper bound 1.
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(30), 1.0);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(31), 2.0);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(32), 4.0);
  Histogram& histogram = GetHistogram("t.hist.buckets");
  histogram.Observe(3.0);
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.hist.buckets");
  EXPECT_EQ(merged.buckets[32], 1);
}

TEST_F(ObsStatsTest, HistogramClampsNonPositiveAndHugeValues) {
  Histogram& histogram = GetHistogram("t.hist.clamp");
  histogram.Observe(0.0);
  histogram.Observe(-5.0);
  histogram.Observe(1e300);
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.hist.clamp");
  EXPECT_EQ(merged.count, 3);
  EXPECT_EQ(merged.buckets[0], 2);
  EXPECT_EQ(merged.buckets[kHistogramBuckets - 1], 1);
}

TEST_F(ObsStatsTest, HistogramMergesAcrossThreads) {
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([] {
      Histogram& histogram = GetHistogram("t.hist.threads");
      histogram.Observe(1.5);
      histogram.Observe(100.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.hist.threads");
  EXPECT_EQ(merged.count, 6);
  EXPECT_DOUBLE_EQ(merged.min, 1.5);
  EXPECT_DOUBLE_EQ(merged.max, 100.0);
}

TEST_F(ObsStatsTest, PercentileOfSingleValueHistogramIsThatValue) {
  Histogram& histogram = GetHistogram("t.pct.single");
  histogram.Observe(3.0);
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.pct.single");
  // The [min, max] clamp collapses every quantile onto the lone value.
  EXPECT_DOUBLE_EQ(merged.Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(merged.Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(merged.Percentile(0.95), 3.0);
  EXPECT_DOUBLE_EQ(merged.Percentile(1.0), 3.0);
}

TEST_F(ObsStatsTest, PercentilesAreMonotoneAndBucketAccurate) {
  Histogram& histogram = GetHistogram("t.pct.uniform");
  for (int i = 1; i <= 100; ++i) histogram.Observe(static_cast<double>(i));
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.pct.uniform");
  EXPECT_DOUBLE_EQ(merged.Percentile(0.0), 1.0);    // p0 = min.
  EXPECT_DOUBLE_EQ(merged.Percentile(1.0), 100.0);  // p100 = max.
  const double p50 = merged.Percentile(0.50);
  const double p95 = merged.Percentile(0.95);
  const double p99 = merged.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, merged.max);
  // Log2 buckets bound resolution to 2x: the true median 50 lies in
  // bucket [32, 64), the true p99 of 100 in [64, 128) clamped to 100.
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 100.0);
}

TEST_F(ObsStatsTest, PercentileOfEmptyHistogramIsZero) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
}

TEST_F(ObsStatsTest, PercentileSurvivesAdversarialQuantiles) {
  Histogram& histogram = GetHistogram("t.pct.adversarial");
  histogram.Observe(2.0);
  histogram.Observe(8.0);
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.pct.adversarial");
  // Out-of-range quantiles degrade to the watermarks instead of
  // extrapolating past the observed data.
  EXPECT_DOUBLE_EQ(merged.Percentile(-0.25), merged.min);
  EXPECT_DOUBLE_EQ(merged.Percentile(1.5), merged.max);
  // NaN must not poison the rank comparison into skipping every bucket:
  // it resolves like q <= 0 (the min watermark).
  EXPECT_DOUBLE_EQ(merged.Percentile(std::nan("")), merged.min);
}

TEST_F(ObsStatsTest, PercentileOfInconsistentSnapshotsDoesNotExplode) {
  // Hand-built snapshots can be internally inconsistent (torn reads of a
  // live histogram, or corrupted inputs): Percentile must stay finite.
  HistogramSnapshot torn;
  torn.count = 5;  // count > 0 but every bucket empty...
  torn.min = 1.0;
  torn.max = 4.0;
  // ...degrades to the max watermark (rank never reached), clamped.
  EXPECT_DOUBLE_EQ(torn.Percentile(0.5), 4.0);

  HistogramSnapshot crossed;
  crossed.count = 2;
  crossed.buckets[10] = 2;
  crossed.min = 100.0;  // min > max: the clamp must NOT apply, or every
  crossed.max = 1.0;    // quantile collapses onto the crossed bounds.
  const double value = crossed.Percentile(0.5);
  EXPECT_TRUE(std::isfinite(value));
  const double hi = HistogramBucketUpperBound(10);
  EXPECT_GE(value, hi * 0.5);
  EXPECT_LE(value, hi);
}

TEST_F(ObsStatsTest, PercentileIsMonotoneAcrossAFineQuantileSweep) {
  Histogram& histogram = GetHistogram("t.pct.sweep");
  // A lumpy multi-bucket shape: clusters near 0.01, 3, and 500.
  for (int i = 0; i < 40; ++i) histogram.Observe(0.01);
  for (int i = 0; i < 15; ++i) histogram.Observe(3.0);
  for (int i = 0; i < 5; ++i) histogram.Observe(500.0);
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.pct.sweep");
  double previous = merged.Percentile(0.0);
  for (int step = 1; step <= 1000; ++step) {
    const double q = static_cast<double>(step) / 1000.0;
    const double value = merged.Percentile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    EXPECT_GE(value, merged.min);
    EXPECT_LE(value, merged.max);
    previous = value;
  }
}

TEST_F(ObsStatsTest, ScopedTimerObservesElapsedSeconds) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  {
    ScopedTimer timer("t.timer.span");
    // Do a little real work so the span is strictly positive.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + std::sqrt(i);
  }
  const HistogramSnapshot merged =
      TakeSnapshot().histograms.at("t.timer.span");
  EXPECT_EQ(merged.count, 1);
  EXPECT_GT(merged.sum, 0.0);
  EXPECT_LT(merged.sum, 60.0);  // Sanity: well under a minute.
}

TEST_F(ObsStatsTest, DisabledModeRecordsNothing) {
  ScopedObsEnable disable(false);
  EXPECT_FALSE(Enabled());
  {
    ScopedTimer timer("t.disabled.timer");
  }
  // Call sites follow the guard idiom, so metric objects are never even
  // created while disabled; mimic that here.
  if (Enabled()) GetCounter("t.disabled.counter").Add(1.0);
  const Snapshot snapshot = TakeSnapshot();
  EXPECT_EQ(snapshot.counters.count("t.disabled.counter"), 0u);
  EXPECT_EQ(snapshot.histograms.count("t.disabled.timer"), 0u);
}

TEST_F(ObsStatsTest, SetEnabledReturnsPreviousValue) {
  const bool was = SetEnabled(false);
  EXPECT_TRUE(was);  // Fixture enabled it.
  EXPECT_FALSE(SetEnabled(true));
}

TEST_F(ObsStatsTest, TraceRingKeepsLastCapacityPoints) {
  TraceRing& ring = GetTraceRing("t.trace.wrap", {{"a", "b", "", ""}}, 4);
  for (int64_t step = 0; step < 10; ++step) {
    ring.Append(step, static_cast<double>(step), -1.0);
  }
  EXPECT_EQ(ring.total_appended(), 10);
  const std::vector<TracePoint> points = ring.Points();
  ASSERT_EQ(points.size(), 4u);
  // Oldest-first: steps 6, 7, 8, 9.
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].step, static_cast<int64_t>(6 + i));
    EXPECT_DOUBLE_EQ(points[i].values[0], static_cast<double>(6 + i));
    EXPECT_DOUBLE_EQ(points[i].values[1], -1.0);
  }
}

TEST_F(ObsStatsTest, TraceMergeSortsByStepAcrossThreads) {
  std::vector<std::thread> threads;
  // Two threads append disjoint step ranges to same-named rings (each
  // thread owns its shard's ring); the merged trace must come back
  // step-sorted regardless of scheduling.
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([i] {
      TraceRing& ring =
          GetTraceRing("t.trace.sorted", {{"v", "", "", ""}}, 16);
      for (int64_t j = 0; j < 5; ++j) {
        ring.Append(i + 2 * j, static_cast<double>(i + 2 * j));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const TraceSnapshot merged = TakeSnapshot().traces.at("t.trace.sorted");
  EXPECT_EQ(merged.total_appended, 10);
  ASSERT_EQ(merged.points.size(), 10u);
  for (size_t i = 0; i < merged.points.size(); ++i) {
    EXPECT_EQ(merged.points[i].step, static_cast<int64_t>(i));
  }
  EXPECT_EQ(merged.fields[0], "v");
}

TEST_F(ObsStatsTest, TraceMergeBreaksStepTiesByValues) {
  // Two threads record the SAME steps with different values (e.g. two
  // shards of a ring that raced); the merged order must not depend on
  // which thread's shard is visited first — ties sort by values.
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([i] {
      TraceRing& ring = GetTraceRing("t.trace.ties", {{"v", "", "", ""}}, 8);
      const double value = (i == 0) ? 5.0 : 3.0;
      ring.Append(0, value);
      ring.Append(1, value);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const TraceSnapshot merged = TakeSnapshot().traces.at("t.trace.ties");
  ASSERT_EQ(merged.points.size(), 4u);
  EXPECT_EQ(merged.points[0].step, 0);
  EXPECT_DOUBLE_EQ(merged.points[0].values[0], 3.0);
  EXPECT_DOUBLE_EQ(merged.points[1].values[0], 5.0);
  EXPECT_EQ(merged.points[2].step, 1);
  EXPECT_DOUBLE_EQ(merged.points[2].values[0], 3.0);
  EXPECT_DOUBLE_EQ(merged.points[3].values[0], 5.0);
}

TEST_F(ObsStatsTest, ResetAllZeroesEverythingButKeepsHandles) {
  Counter& counter = GetCounter("t.reset.counter");
  counter.Add(7.0);
  GetHistogram("t.reset.hist").Observe(1.0);
  ResetAll();
  EXPECT_EQ(counter.value(), 0.0);
  const Snapshot snapshot = TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("t.reset.counter"), 0.0);
  EXPECT_EQ(snapshot.histograms.count("t.reset.hist"), 0u);
  counter.Add(2.0);  // Handle still valid after reset.
  EXPECT_EQ(counter.value(), 2.0);
}

TEST_F(ObsStatsTest, SnapshotToJsonContainsAllSections) {
  GetCounter("t.json.counter").Add(3.0);
  GetGauge("t.json.gauge").UpdateMax(1.5);
  GetHistogram("t.json.hist").Observe(2.0);
  GetTraceRing("t.json.trace", {{"x", "", "", ""}}, 8).Append(0, 42.0);
  const std::string json = SnapshotToJson(TakeSnapshot());
  EXPECT_NE(json.find("\"t.json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"t.json.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"t.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // Percentile estimates ride along in every histogram section.
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"t.json.trace\""), std::string::npos);
  EXPECT_NE(json.find("\"x\": 42"), std::string::npos);
}

TEST_F(ObsStatsTest, WriteProfileJsonWritesReadableFile) {
  GetCounter("t.file.counter").Add(1.0);
  const std::string path =
      ::testing::TempDir() + "/obs_stats_test_profile.json";
  ASSERT_TRUE(WriteProfileJson(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("t.file.counter"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppn::obs
