// Cross-process trace stitching: schema validity of the merged Perfetto
// JSON (metadata events, (pid, ts, tid) ordering, flow s/f pairing,
// flow-id disjointness, clock alignment) on synthetic inputs, then the
// real thing — a 2-process traced fabric sweep through the ppn_cli
// binary, which must yield ONE merged timeline with the coordinator and
// both workers, >= 1 flow pair per completed cell, and result rows
// bit-identical to an untraced run.

#include "obs/trace_merge.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/sampler.h"

namespace ppn::obs {
namespace {

namespace fs = std::filesystem;

// Workers rebuild their spec from flags via GetRunScale(), so the scale
// must travel through the environment.
const bool kScaleForced = [] {
  ::setenv("PPN_SCALE", "smoke", 1);
  return true;
}();

/// Sets an env var for one test and restores the previous state on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) ::setenv(name_, old_.c_str(), 1);
    else ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/trace_merge_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

JsonValue ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  std::string error;
  EXPECT_TRUE(ParseJson(buffer.str(), &root, &error)) << path << ": " << error;
  return root;
}

/// A minimal coordinator-shaped trace: one `fabric.dispatch` slice per
/// cell index, anchored at wall-clock epoch `epoch_us`.
std::string CoordinatorTrace(int64_t epoch_us) {
  return R"({"traceEvents": [
    {"name": "fabric.dispatch", "ph": "X", "ts": 100.0, "dur": 10.0,
     "pid": 1, "tid": 1, "args": {"index": 0, "attempt": 0}},
    {"name": "fabric.dispatch", "ph": "X", "ts": 200.0, "dur": 10.0,
     "pid": 1, "tid": 1, "args": {"index": 1, "attempt": 0}},
    {"name": "flow.local", "ph": "s", "cat": "step", "id": 1,
     "ts": 150.0, "pid": 1, "tid": 1},
    {"name": "flow.local", "ph": "f", "bp": "e", "cat": "step", "id": 1,
     "ts": 160.0, "pid": 1, "tid": 1}
  ],
  "displayTimeUnit": "ms",
  "otherData": {"ppn_dropped_events": 0, "ppn_epoch_unix_us": )" +
         std::to_string(epoch_us) + "}}";
}

/// A worker-shaped trace: `exec.cell` slices for `indices`, with its own
/// local flow using the SAME raw id the coordinator used (the merge must
/// keep them disjoint).
std::string WorkerTrace(int64_t epoch_us, const std::vector<int>& indices) {
  std::string events;
  double ts = 50.0;
  for (const int index : indices) {
    if (!events.empty()) events += ",\n";
    events += R"({"name": "exec.cell", "ph": "X", "ts": )" +
              std::to_string(ts) + R"(, "dur": 40.0, "pid": 1, "tid": 1,
               "args": {"index": )" +
              std::to_string(index) + "}}";
    ts += 100.0;
  }
  events += R"(,
    {"name": "flow.local", "ph": "s", "cat": "step", "id": 1,
     "ts": 60.0, "pid": 1, "tid": 1},
    {"name": "flow.local", "ph": "f", "bp": "e", "cat": "step", "id": 1,
     "ts": 70.0, "pid": 1, "tid": 1})";
  return R"({"traceEvents": [)" + events + R"(],
  "displayTimeUnit": "ms",
  "otherData": {"ppn_dropped_events": 0, "ppn_epoch_unix_us": )" +
         std::to_string(epoch_us) + "}}";
}

struct MergedView {
  JsonValue root;
  std::vector<JsonValue> events;
  std::map<std::string, int64_t> process_pids;  ///< name -> pid.
};

void LoadMerged(const std::string& path, MergedView* view) {
  view->root = ParseFile(path);
  const JsonValue* events = view->root.Find("traceEvents");
  ASSERT_NE(events, nullptr) << path;
  ASSERT_TRUE(events->is_array()) << path;
  for (const JsonValue& event : events->AsArray()) {
    view->events.push_back(event);
    if (event.StringOr("ph", "") == "M" &&
        event.StringOr("name", "") == "process_name") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr) << "metadata event without args";
      view->process_pids[args->StringOr("name", "")] =
          static_cast<int64_t>(event.NumberOr("pid", -1.0));
    }
  }
}

TEST(TraceMergeTest, SyntheticTwoProcessMergeIsValidAndPaired) {
  const std::string dir = FreshDir("synthetic");
  const int64_t base_epoch = 1'700'000'000'000'000;
  WriteFile(dir + "/coord.json", CoordinatorTrace(base_epoch));
  // The worker's wall clock is 1000 us ahead: its local ts values must be
  // shifted right by 1000 on the merged axis.
  WriteFile(dir + "/worker.json", WorkerTrace(base_epoch + 1000, {0, 1}));

  const std::string out = dir + "/merged.json";
  TraceMergeStats stats;
  std::string error;
  ASSERT_TRUE(MergeChromeTraces({{"coordinator", dir + "/coord.json"},
                                 {"worker-0.g0", dir + "/worker.json"}},
                                out, &error, &stats))
      << error;
  EXPECT_EQ(stats.processes, 2);
  EXPECT_EQ(stats.skipped_files, 0);
  EXPECT_EQ(stats.flow_pairs, 2);  // Cells 0 and 1 seen on both sides.

  MergedView view;
  ASSERT_NO_FATAL_FAILURE(LoadMerged(out, &view));

  // Both processes present, distinct pids, metadata-led.
  ASSERT_EQ(view.process_pids.size(), 2u);
  ASSERT_TRUE(view.process_pids.count("coordinator"));
  ASSERT_TRUE(view.process_pids.count("worker-0.g0"));
  const int64_t coord_pid = view.process_pids["coordinator"];
  const int64_t worker_pid = view.process_pids["worker-0.g0"];
  EXPECT_NE(coord_pid, worker_pid);

  // Every event carries the required keys and the stream is sorted by
  // (pid, ts, tid) with metadata first within its pid.
  std::vector<std::vector<double>> keys;
  for (const JsonValue& event : view.events) {
    EXPECT_TRUE(event.Find("name") != nullptr);
    EXPECT_TRUE(event.Find("ph") != nullptr);
    EXPECT_TRUE(event.Find("pid") != nullptr);
    EXPECT_TRUE(event.Find("tid") != nullptr);
    const bool metadata = event.StringOr("ph", "") == "M";
    if (!metadata) {
      EXPECT_TRUE(event.Find("ts") != nullptr);
    }
    keys.push_back({event.NumberOr("pid", -1.0), metadata ? 0.0 : 1.0,
                    event.NumberOr("ts", 0.0), event.NumberOr("tid", -1.0)});
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  // Clock alignment: the worker's exec.cell for index 0 was at local ts
  // 50 with a +1000 us epoch skew; on the shared axis it lands at 1050.
  bool cell0_seen = false;
  for (const JsonValue& event : view.events) {
    if (event.StringOr("name", "") != "exec.cell") continue;
    const JsonValue* args = event.Find("args");
    if (args == nullptr ||
        static_cast<int>(args->NumberOr("index", -1.0)) != 0) {
      continue;
    }
    cell0_seen = true;
    EXPECT_DOUBLE_EQ(event.NumberOr("ts", 0.0), 1050.0);
  }
  EXPECT_TRUE(cell0_seen);

  // Flow validity: every `s` has exactly one same-(cat, id) `f`, and the
  // two processes' identically-numbered local flows stay disjoint. Ids
  // are emitted as hex STRINGS so 64-bit remapped values stay exact.
  std::map<std::string, int> starts;
  std::map<std::string, int> finishes;
  int fabric_flows = 0;
  for (const JsonValue& event : view.events) {
    const std::string ph = event.StringOr("ph", "");
    if (ph != "s" && ph != "f") continue;
    const std::string id = event.StringOr("id", "");
    EXPECT_FALSE(id.empty()) << "flow event with non-string id";
    const std::string key = event.StringOr("cat", "") + "#" + id;
    if (ph == "s") ++starts[key];
    if (ph == "f") {
      ++finishes[key];
      EXPECT_EQ(event.StringOr("bp", ""), "e") << key;
    }
    if (event.StringOr("cat", "") == "fabric") ++fabric_flows;
  }
  EXPECT_EQ(starts.size(), finishes.size());
  for (const auto& [key, count] : starts) {
    EXPECT_EQ(count, 1) << key;
    EXPECT_EQ(finishes[key], 1) << key;
  }
  // 2 local flows (coordinator's and worker's, disjoint after remap) + 2
  // synthetic fabric pairs.
  EXPECT_EQ(static_cast<int>(starts.size()), 4);
  EXPECT_EQ(fabric_flows, 4);  // 2 pairs x (s + f).

  // The fabric flow arrows cross processes: s on the coordinator, f on
  // the worker, s.ts <= f.ts.
  for (const JsonValue& event : view.events) {
    if (event.StringOr("cat", "") != "fabric") continue;
    if (event.StringOr("ph", "") == "s") {
      EXPECT_EQ(static_cast<int64_t>(event.NumberOr("pid", -1.0)),
                coord_pid);
    } else {
      EXPECT_EQ(static_cast<int64_t>(event.NumberOr("pid", -1.0)),
                worker_pid);
    }
  }

  // otherData summarizes the merge.
  const JsonValue* other = view.root.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(static_cast<int>(other->NumberOr("ppn_merged_processes", -1.0)),
            2);
  EXPECT_EQ(static_cast<int>(other->NumberOr("ppn_flow_pairs", -1.0)), 2);
}

TEST(TraceMergeTest, SameProcessDispatchAndCellPairsAreSuppressed) {
  // Dispatch and cell in ONE file (e.g. an in-process sweep's trace):
  // a flow arrow from a process to itself is noise, not a handoff.
  const std::string dir = FreshDir("same_pid");
  WriteFile(dir + "/solo.json", R"({"traceEvents": [
    {"name": "fabric.dispatch", "ph": "X", "ts": 10.0, "dur": 5.0,
     "pid": 1, "tid": 1, "args": {"index": 0}},
    {"name": "exec.cell", "ph": "X", "ts": 20.0, "dur": 5.0,
     "pid": 1, "tid": 2, "args": {"index": 0}}
  ], "otherData": {"ppn_epoch_unix_us": 0}})");
  TraceMergeStats stats;
  std::string error;
  ASSERT_TRUE(MergeChromeTraces({{"solo", dir + "/solo.json"}},
                                dir + "/merged.json", &error, &stats))
      << error;
  EXPECT_EQ(stats.flow_pairs, 0);
}

TEST(TraceMergeTest, UnreadableInputsAreSkippedNotFatal) {
  const std::string dir = FreshDir("skip");
  WriteFile(dir + "/good.json", CoordinatorTrace(0));
  WriteFile(dir + "/bad.json", "this is not json");
  TraceMergeStats stats;
  std::string error;
  ASSERT_TRUE(MergeChromeTraces(
      {{"coordinator", dir + "/good.json"},
       {"worker-0.g0", dir + "/bad.json"},
       {"worker-1.g0", dir + "/missing.json"}},
      dir + "/merged.json", &error, &stats));
  EXPECT_EQ(stats.processes, 1);
  EXPECT_EQ(stats.skipped_files, 2);
  // ...but NO parsable input at all is an error.
  EXPECT_FALSE(MergeChromeTraces({{"w", dir + "/bad.json"}},
                                 dir + "/merged2.json", &error, &stats));
}

// ------------------------------------------------------------------ e2e --

/// Rows of a results JSON with wall_seconds dropped — everything else
/// must be bit-exact with observability on or off.
std::vector<std::string> JsonRowsModuloWall(const std::string& path) {
  JsonValue root = ParseFile(path);
  std::vector<std::string> rows;
  for (const JsonValue& row : root.AsArray()) {
    std::ostringstream canon;
    for (const auto& [key, value] : row.AsObject()) {
      if (key == "wall_seconds") continue;
      canon << key << "=";
      if (value.is_number()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value.AsNumber());
        canon << buf;
      } else if (value.is_string()) {
        canon << value.AsString();
      }
      canon << ";";
    }
    rows.push_back(canon.str());
  }
  return rows;
}

int RunCommand(const std::string& command) {
  return std::system(command.c_str());
}

TEST(TraceMergeCliTest, TracedTwoProcessSweepStitchesOneTimeline) {
  const std::string dir = FreshDir("cli_e2e");
  const std::string fabric_dir = dir + "/fab";
  const std::string log = dir + "/cli.log";
  const std::string base =
      std::string(PPN_CLI_BIN) +
      " sweep --datasets crypto-a --strategies UBAH,CRP,OLMAR"
      " --costs 0.0025 --seeds 1,7";

  // Traced + sampled 2-process run. A user-chosen --fabric-dir is kept
  // after the sweep, so its obs/ artifacts stay inspectable.
  {
    const ScopedEnv trace("PPN_TRACE_JSON", dir + "/sweep.trace.json");
    const ScopedEnv stats_env("PPN_STATS_JSONL", dir + "/sweep.stats.jsonl");
    const ScopedEnv sample("PPN_SAMPLE_MS", "25");
    ASSERT_EQ(RunCommand(base + " --processes 2 --fabric-dir " + fabric_dir +
                  " --json " + dir + "/traced.json >> " + log + " 2>&1"),
              0);
  }
  // Plain run: rows must be bit-identical to the instrumented one.
  ASSERT_EQ(RunCommand(base + " --workers 0 --json " + dir + "/plain.json >> " +
                log + " 2>&1"),
            0);
  EXPECT_EQ(JsonRowsModuloWall(dir + "/traced.json"),
            JsonRowsModuloWall(dir + "/plain.json"));

#ifdef PPN_OBS_DISABLED
  // Compiled-out builds run the sweep but write no traces; the identity
  // check above is the whole contract.
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif

  // ONE merged timeline: coordinator + both workers, with >= 1 flow pair
  // per completed cell (6 cells, some possibly restored not computed).
  const std::string merged = fabric_dir + "/obs/merged.trace.json";
  ASSERT_TRUE(fs::exists(merged)) << merged;
  MergedView view;
  ASSERT_NO_FATAL_FAILURE(LoadMerged(merged, &view));
  ASSERT_GE(view.process_pids.size(), 3u);
  EXPECT_TRUE(view.process_pids.count("coordinator"));
  EXPECT_TRUE(view.process_pids.count("worker-0.g0"));
  EXPECT_TRUE(view.process_pids.count("worker-1.g0"));

  std::set<int> dispatched;
  std::set<std::string> flow_ids;
  int flow_starts = 0;
  int flow_finishes = 0;
  std::vector<std::vector<double>> keys;
  for (const JsonValue& event : view.events) {
    const bool metadata = event.StringOr("ph", "") == "M";
    keys.push_back({event.NumberOr("pid", -1.0), metadata ? 0.0 : 1.0,
                    event.NumberOr("ts", 0.0), event.NumberOr("tid", -1.0)});
    if (event.StringOr("name", "") == "fabric.dispatch") {
      if (const JsonValue* args = event.Find("args"); args != nullptr) {
        dispatched.insert(static_cast<int>(args->NumberOr("index", -1.0)));
      }
    }
    if (event.StringOr("cat", "") == "fabric") {
      if (event.StringOr("ph", "") == "s") ++flow_starts;
      if (event.StringOr("ph", "") == "f") ++flow_finishes;
      flow_ids.insert(event.StringOr("id", ""));
    }
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(dispatched.size(), 6u);  // All 6 cells dispatched once.
  EXPECT_EQ(flow_starts, 6);         // One handoff arrow per cell.
  EXPECT_EQ(flow_finishes, 6);
  EXPECT_EQ(flow_ids.size(), 6u);    // Pairwise-distinct flow ids.

  // The merged timeline is also copied next to $PPN_TRACE_JSON.
  EXPECT_TRUE(fs::exists(dir + "/sweep.trace.json.merged.json"));

  // Worker stats streams were merged for the coordinator...
  EXPECT_TRUE(fs::exists(dir + "/sweep.stats.jsonl.workers.jsonl"));
  EXPECT_TRUE(fs::exists(fabric_dir + "/obs/merged.stats.jsonl"));
  StatsStream worker_stream;
  ASSERT_TRUE(ReadStatsStream(fabric_dir + "/obs/worker-0.g0.stats.jsonl",
                              &worker_stream));
  EXPECT_EQ(worker_stream.process, "worker-0.g0");
  EXPECT_GE(worker_stream.samples.size(), 1u);

  // `ppn_cli top` renders one frame off the kept fabric dir.
  const std::string top_out = dir + "/top.out";
  ASSERT_EQ(RunCommand(std::string(PPN_CLI_BIN) + " top --dir " + fabric_dir +
                " --iterations 1 > " + top_out + " 2>&1"),
            0);
  std::ifstream top_in(top_out);
  std::ostringstream top_text;
  top_text << top_in.rdbuf();
  EXPECT_NE(top_text.str().find("worker-0.g0"), std::string::npos)
      << top_text.str();
  EXPECT_NE(top_text.str().find("fabric:"), std::string::npos);
  EXPECT_NE(top_text.str().find("done"), std::string::npos);

  // `report --merge-trace` re-stitches the same dir on demand.
  const std::string remerged = dir + "/remerged.json";
  ASSERT_EQ(RunCommand(std::string(PPN_CLI_BIN) + " report --merge-trace " +
                fabric_dir + " --out " + remerged + " >> " + log + " 2>&1"),
            0);
  MergedView review;
  ASSERT_NO_FATAL_FAILURE(LoadMerged(remerged, &review));
  EXPECT_GE(review.process_pids.size(), 3u);
}

TEST(TraceMergeCliTest, FailingHealthRuleMakesTheRunExitNonzero) {
  const std::string dir = FreshDir("cli_health");
  const std::string log = dir + "/cli.log";
  const std::string base =
      std::string(PPN_CLI_BIN) + " baselines --dataset crypto-a";
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  {
    // An invariant that cannot hold: at least one solver call happens.
    const ScopedEnv obs("PPN_OBS", "1");
    const ScopedEnv health("PPN_HEALTH", "backtest.solver.calls==0");
    const int status =
        RunCommand(base + " > " + log + " 2>&1");
    EXPECT_NE(status, 0);
  }
  std::ifstream in(log);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("PPN_HEALTH: FAIL"), std::string::npos)
      << text.str();
  {
    // And the same rule inverted passes with exit 0.
    const ScopedEnv obs("PPN_OBS", "1");
    const ScopedEnv health("PPN_HEALTH", "backtest.solver.calls>=1");
    EXPECT_EQ(RunCommand(base + " > " + log + " 2>&1"), 0);
  }
}

}  // namespace
}  // namespace ppn::obs
