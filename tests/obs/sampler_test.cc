// The periodic stats sampler: stream structure, counter-delta
// correctness, %.17g bit-exact round trips through common/json, health
// verdicts on sample lines, cross-thread metric updates while sampling
// (the tsan lane's target), and the multi-stream merge.

#include "obs/sampler.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/health.h"
#include "obs/stats.h"

namespace ppn::obs {
namespace {

#ifdef PPN_OBS_DISABLED
#define SKIP_IF_COMPILED_OUT() \
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)"
#else
#define SKIP_IF_COMPILED_OUT()
#endif

std::string FreshPath(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "/sampler_" + name + ".stats.jsonl";
  std::filesystem::remove(path);
  return path;
}

std::vector<std::string> RawLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Each test works against its own uniquely-named metrics (the registry
/// is process-global and other suites in this binary also use it).
class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  ScopedObsEnable enabled_;
};

TEST_F(SamplerTest, DisabledOrPathlessStartReturnsNull) {
  SamplerOptions options;  // Empty path.
  EXPECT_EQ(StatsSampler::Start(options), nullptr);
#ifndef PPN_OBS_DISABLED
  SetEnabled(false);
  options.path = FreshPath("disabled");
  EXPECT_EQ(StatsSampler::Start(options), nullptr);
  SetEnabled(true);
#endif
}

TEST_F(SamplerTest, ShortRunStillEmitsHeaderAndAtLeastOneSample) {
  SKIP_IF_COMPILED_OUT();
  const std::string path = FreshPath("short");
  SamplerOptions options;
  options.path = path;
  options.sample_ms = 60'000;  // Far longer than the test: only the
                               // final stop-time window can fire.
  auto sampler = StatsSampler::Start(options);
  ASSERT_NE(sampler, nullptr);
  GetCounter("sampler.test.short").Add(5.0);
  EXPECT_TRUE(sampler->Stop());

  StatsStream stream;
  std::string error;
  ASSERT_TRUE(ReadStatsStream(path, &stream, &error)) << error;
  EXPECT_EQ(stream.sample_ms, 60'000);
  // ProcessFromPath strips ".stats.jsonl" from the basename.
  EXPECT_EQ(stream.process, "sampler_short");
  EXPECT_GT(stream.start_unix_ms, 0);
  ASSERT_GE(stream.samples.size(), 1u);
  double total = 0.0;
  for (const StatsSample& sample : stream.samples) {
    auto it = sample.counters.find("sampler.test.short");
    if (it != sample.counters.end()) total += it->second;
  }
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST_F(SamplerTest, CounterDeltasAcrossWindowsSumToTheTotal) {
  SKIP_IF_COMPILED_OUT();
  const std::string path = FreshPath("deltas");
  SamplerOptions options;
  options.path = path;
  options.sample_ms = 5;
  auto sampler = StatsSampler::Start(options);
  ASSERT_NE(sampler, nullptr);
  Counter& counter = GetCounter("sampler.test.deltas");
  Histogram& hist = GetHistogram("sampler.test.delta_hist");
  for (int i = 0; i < 40; ++i) {
    counter.Add(1.0);
    hist.Observe(0.5 + 0.01 * i);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(sampler->Stop());

  StatsStream stream;
  ASSERT_TRUE(ReadStatsStream(path, &stream));
  // The 80 ms run at a 5 ms window must have produced several windows —
  // deltas, not cumulative values, or this would sum to far more.
  EXPECT_GE(stream.samples.size(), 3u);
  double counter_total = 0.0;
  int64_t hist_total = 0;
  double t_prev = -1.0;
  for (const StatsSample& sample : stream.samples) {
    // Timestamps are monotonic and windows tile the run.
    EXPECT_GT(sample.t_ms, t_prev);
    t_prev = sample.t_ms;
    EXPECT_GT(sample.window_ms, 0.0);
    auto it = sample.counters.find("sampler.test.deltas");
    if (it != sample.counters.end()) counter_total += it->second;
    auto h = sample.hists.find("sampler.test.delta_hist");
    if (h != sample.hists.end()) {
      hist_total += h->second.count;
      // Window percentiles stay inside the window's [min, max].
      EXPECT_GE(h->second.p50, h->second.min);
      EXPECT_LE(h->second.p99, h->second.max);
      EXPECT_GE(h->second.min, 0.5 - 1e-12);
      EXPECT_LE(h->second.max, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(counter_total, 40.0);
  EXPECT_EQ(hist_total, 40);
}

TEST_F(SamplerTest, DoublesRoundTripBitExactThroughCommonJson) {
  SKIP_IF_COMPILED_OUT();
  const std::string path = FreshPath("roundtrip");
  // A value with no short decimal representation: %.17g must carry
  // every bit through the stream and back out of the parser.
  const double awkward = 0.1234567890123456789;
  SamplerOptions options;
  options.path = path;
  options.sample_ms = 60'000;
  auto sampler = StatsSampler::Start(options);
  ASSERT_NE(sampler, nullptr);
  GetCounter("sampler.test.roundtrip").Add(awkward);
  GetGauge("sampler.test.roundtrip_gauge").UpdateMax(awkward);
  EXPECT_TRUE(sampler->Stop());

  StatsStream stream;
  ASSERT_TRUE(ReadStatsStream(path, &stream));
  bool counter_seen = false;
  bool gauge_seen = false;
  for (const StatsSample& sample : stream.samples) {
    if (auto it = sample.counters.find("sampler.test.roundtrip");
        it != sample.counters.end()) {
      EXPECT_EQ(it->second, awkward);  // Bitwise, not near.
      counter_seen = true;
    }
    if (auto it = sample.gauges.find("sampler.test.roundtrip_gauge");
        it != sample.gauges.end()) {
      EXPECT_EQ(it->second, awkward);
      gauge_seen = true;
    }
  }
  EXPECT_TRUE(counter_seen);
  EXPECT_TRUE(gauge_seen);
}

TEST_F(SamplerTest, HealthVerdictsLandOnSampleLines) {
  SKIP_IF_COMPILED_OUT();
  const std::string path = FreshPath("health");
  SamplerOptions options;
  options.path = path;
  options.sample_ms = 60'000;
  ASSERT_TRUE(ParseHealthRules("sampler.test.errs==0", &options.health));
  auto sampler = StatsSampler::Start(options);
  ASSERT_NE(sampler, nullptr);
  GetCounter("sampler.test.errs").Add(2.0);
  const bool write_ok = sampler->Stop();
  EXPECT_TRUE(write_ok);
  EXPECT_FALSE(sampler->healthy());
  EXPECT_NE(sampler->HealthSummary(false).find("PPN_HEALTH: FAIL"),
            std::string::npos);

  StatsStream stream;
  ASSERT_TRUE(ReadStatsStream(path, &stream));
  int failed = 0;
  for (const StatsSample& sample : stream.samples) {
    failed += sample.health_failed;
  }
  EXPECT_GE(failed, 1);
}

TEST_F(SamplerTest, ConcurrentMetricUpdatesWhileSamplingAreClean) {
  SKIP_IF_COMPILED_OUT();
  // The tsan-lane case: worker threads hammer the registry while the
  // sampling thread snapshots it and the owner polls health.
  const std::string path = FreshPath("tsan");
  SamplerOptions options;
  options.path = path;
  options.sample_ms = 2;
  ASSERT_TRUE(
      ParseHealthRules("sampler.test.tsan.work>=0", &options.health));
  auto sampler = StatsSampler::Start(options);
  ASSERT_NE(sampler, nullptr);
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&done] {
      Counter& work = GetCounter("sampler.test.tsan.work");
      Histogram& lat = GetHistogram("sampler.test.tsan.seconds");
      Gauge& depth = GetGauge("sampler.test.tsan.depth");
      int i = 0;
      while (!done.load(std::memory_order_relaxed)) {
        work.Add(1.0);
        lat.Observe(1e-6 * (1 + i % 1000));
        depth.UpdateMax(static_cast<double>(i % 64));
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(sampler->healthy());  // Live read races the sampler.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done.store(true);
  for (std::thread& worker : workers) worker.join();
  EXPECT_TRUE(sampler->Stop());
  StatsStream stream;
  ASSERT_TRUE(ReadStatsStream(path, &stream));
  EXPECT_GE(stream.samples.size(), 5u);
}

TEST_F(SamplerTest, MergeStampsProcessAndGlobalTimePreservingPayload) {
  SKIP_IF_COMPILED_OUT();
  const std::string path_a = FreshPath("merge_a");
  const std::string path_b = FreshPath("merge_b");
  for (const auto& [path, metric] :
       {std::pair<std::string, std::string>{path_a, "sampler.test.merge_a"},
        std::pair<std::string, std::string>{path_b,
                                            "sampler.test.merge_b"}}) {
    SamplerOptions options;
    options.path = path;
    options.sample_ms = 60'000;
    auto sampler = StatsSampler::Start(options);
    ASSERT_NE(sampler, nullptr);
    GetCounter(metric).Add(1.0);
    ASSERT_TRUE(sampler->Stop());
  }

  const std::string merged_path =
      ::testing::TempDir() + "/sampler_merged.jsonl";
  std::string error;
  int skipped = -1;
  ASSERT_TRUE(MergeStatsStreams({path_a, path_b}, merged_path, &error,
                                &skipped))
      << error;
  EXPECT_EQ(skipped, 0);

  const std::vector<std::string> lines = RawLines(merged_path);
  ASSERT_GE(lines.size(), 3u);  // Header + one sample per stream.
  JsonValue header;
  ASSERT_TRUE(ParseJson(lines[0], &header));
  EXPECT_EQ(header.StringOr("schema", ""), "ppn.stats.merged.v1");
  double t_prev = 0.0;
  for (size_t i = 1; i < lines.size(); ++i) {
    JsonValue value;
    ASSERT_TRUE(ParseJson(lines[i], &value)) << lines[i];
    // Every merged line is stamped with its origin and a global clock,
    // sorted by that clock.
    const std::string process = value.StringOr("process", "");
    EXPECT_TRUE(process == "sampler_merge_a" || process == "sampler_merge_b")
        << process;
    const double t_unix = value.NumberOr("t_unix_ms", -1.0);
    EXPECT_GE(t_unix, t_prev);
    t_prev = t_unix;
  }
  // Payload preservation: the original sample line's bytes after `{`
  // appear verbatim in exactly one merged line.
  const std::vector<std::string> original = RawLines(path_a);
  ASSERT_GE(original.size(), 2u);
  const std::string payload = original[1].substr(1);  // Drop "{".
  int found = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].size() >= payload.size() &&
        lines[i].compare(lines[i].size() - payload.size(), payload.size(),
                         payload) == 0) {
      ++found;
    }
  }
  EXPECT_EQ(found, 1);
}

TEST_F(SamplerTest, ReadRejectsMissingAndForeignFiles) {
  StatsStream stream;
  std::string error;
  EXPECT_FALSE(ReadStatsStream(
      ::testing::TempDir() + "/sampler_nonexistent.jsonl", &stream, &error));
  EXPECT_FALSE(error.empty());
  const std::string foreign = ::testing::TempDir() + "/sampler_foreign.jsonl";
  {
    std::ofstream out(foreign);
    out << "{\"schema\": \"something.else\"}\n";
  }
  EXPECT_FALSE(ReadStatsStream(foreign, &stream, &error));
}

TEST_F(SamplerTest, ReadSkipsTornTrailingLines) {
  const std::string path = ::testing::TempDir() + "/sampler_torn.jsonl";
  {
    std::ofstream out(path);
    out << "{\"schema\": \"ppn.stats.v1\", \"process\": \"p\", "
           "\"sample_ms\": 10, \"start_unix_ms\": 1000}\n";
    out << "{\"t_ms\": 10.0, \"window_ms\": 10.0, "
           "\"counters\": {\"a\": 1}}\n";
    out << "{\"t_ms\": 20.0, \"window_ms\": 10.0, \"coun";  // Torn.
  }
  StatsStream stream;
  ASSERT_TRUE(ReadStatsStream(path, &stream));
  ASSERT_EQ(stream.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(stream.samples[0].counters.at("a"), 1.0);
}

}  // namespace
}  // namespace ppn::obs
