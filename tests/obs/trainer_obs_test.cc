// Integration test: the trainer's obs instrumentation must faithfully
// mirror what the trainer returns, and turning instrumentation on must not
// change the training trajectory.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "market/generator.h"
#include "obs/stats.h"
#include "ppn/trainer.h"

namespace ppn::core {
namespace {

market::MarketDataset SmallDataset() {
  market::SyntheticMarketConfig config;
  config.num_assets = 4;
  config.num_periods = 400;
  config.seed = 9;
  config.late_listing_fraction = 0.0;
  config.momentum = 0.25;
  config.lead_lag_strength = 0.5;
  market::SyntheticMarketGenerator generator(config);
  return generator.GenerateDataset("tiny", 0.8);
}

PolicyConfig SmallPolicyConfig() {
  PolicyConfig config;
  config.variant = PolicyVariant::kPpn;
  config.num_assets = 4;
  config.window = 10;
  config.lstm_hidden = 4;
  config.block1_channels = 3;
  config.block2_channels = 4;
  config.seed = 3;
  return config;
}

TrainerConfig SmallTrainerConfig() {
  TrainerConfig config;
  config.batch_size = 8;
  config.steps = 30;
  config.seed = 5;
  return config;
}

std::vector<double> RunSteps(int steps) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(), &init, &dropout);
  PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
  std::vector<double> rewards;
  for (int step = 0; step < steps; ++step) {
    rewards.push_back(trainer.TrainStep());
  }
  return rewards;
}

TEST(TrainerObsTest, RewardTraceMatchesReturnedRewards) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  obs::ScopedObsEnable enable;
  obs::ResetAll();
  constexpr int kSteps = 12;
  const std::vector<double> rewards = RunSteps(kSteps);

  const obs::Snapshot snapshot = obs::TakeSnapshot();
  const std::string trace_name =
      "trainer.reward.seed" + std::to_string(SmallTrainerConfig().seed);
  ASSERT_EQ(snapshot.traces.count(trace_name), 1u)
      << "trainer did not record its reward trace";
  const obs::TraceSnapshot& trace = snapshot.traces.at(trace_name);
  EXPECT_EQ(trace.fields[0], "total");
  EXPECT_EQ(trace.fields[1], "log_return");
  EXPECT_EQ(trace.fields[2], "variance");
  EXPECT_EQ(trace.fields[3], "turnover");
  EXPECT_EQ(trace.total_appended, kSteps);
  ASSERT_EQ(trace.points.size(), static_cast<size_t>(kSteps));
  for (int step = 0; step < kSteps; ++step) {
    EXPECT_EQ(trace.points[step].step, step);
    EXPECT_DOUBLE_EQ(trace.points[step].values[0], rewards[step])
        << "trace total diverges from returned reward at step " << step;
    // The breakdown reconstructs the total:
    //   total = mean_log_return − λ·variance − γ·mean_turnover.
    const RewardConfig reward_config;  // Trainer ran with defaults.
    const double reconstructed = trace.points[step].values[1] -
                                 reward_config.lambda *
                                     trace.points[step].values[2] -
                                 reward_config.gamma *
                                     trace.points[step].values[3];
    // The graph combines the terms in float32, so reconstructing in double
    // only matches to single precision.
    EXPECT_NEAR(reconstructed, rewards[step],
                1e-5 * std::max(1.0, std::fabs(rewards[step])));
  }

  EXPECT_EQ(snapshot.counters.at("trainer.steps"), kSteps);
  ASSERT_EQ(snapshot.histograms.count("trainer.step.seconds"), 1u);
  EXPECT_EQ(snapshot.histograms.at("trainer.step.seconds").count, kSteps);
  // Training drove the policy's kernels, so the kernel counters are live.
  EXPECT_GT(snapshot.counters.at("tensor.matmul.calls"), 0.0);
  EXPECT_GT(snapshot.counters.at("tensor.matmul.flops"), 0.0);
  obs::ResetAll();
}

TEST(TrainerObsTest, InstrumentationDoesNotPerturbTraining) {
  std::vector<double> with_obs;
  {
    obs::ScopedObsEnable enable;
    obs::ResetAll();
    with_obs = RunSteps(6);
    obs::ResetAll();
  }
  std::vector<double> without_obs;
  {
    obs::ScopedObsEnable disable(false);
    without_obs = RunSteps(6);
  }
  ASSERT_EQ(with_obs.size(), without_obs.size());
  for (size_t i = 0; i < with_obs.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_obs[i], without_obs[i]) << "step " << i;
  }
}

}  // namespace
}  // namespace ppn::core
