// RunLog + report integration: the streaming per-step telemetry must
// capture exactly what the trainer computed (bit-exact after the JSONL
// round trip), must never perturb training, and must hold the sweep
// layer's worker-count determinism contract with telemetry enabled.

#include "obs/run_log.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/experiment.h"
#include "market/generator.h"
#include "obs/report.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "ppn/trainer.h"

namespace ppn::obs {
namespace {

#ifdef PPN_OBS_DISABLED
#define SKIP_IF_COMPILED_OUT() \
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)"
#else
#define SKIP_IF_COMPILED_OUT()
#endif

market::MarketDataset SmallDataset() {
  market::SyntheticMarketConfig config;
  config.num_assets = 4;
  config.num_periods = 400;
  config.seed = 9;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.GenerateDataset("tiny", 0.8);
}

core::PolicyConfig SmallPolicyConfig() {
  core::PolicyConfig config;
  config.variant = core::PolicyVariant::kPpn;
  config.num_assets = 4;
  config.window = 10;
  config.lstm_hidden = 4;
  config.block1_channels = 3;
  config.block2_channels = 4;
  config.seed = 3;
  return config;
}

core::TrainerConfig SmallTrainerConfig() {
  core::TrainerConfig config;
  config.batch_size = 8;
  config.steps = 10;
  config.seed = 5;
  return config;
}

std::string FreshPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  return path;
}

/// Trains `steps` steps of the small setup, optionally logging to `path`,
/// and returns the per-step rewards.
std::vector<double> RunSteps(int steps, const std::string& runlog_path) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto policy = core::MakePolicy(SmallPolicyConfig(), &init, &dropout);
  core::PolicyGradientTrainer trainer(policy.get(), dataset,
                                      SmallTrainerConfig());
  std::unique_ptr<RunLog> run_log;
  if (!runlog_path.empty()) {
    RunLogMeta meta;
    meta.run_id = "PPN";
    meta.strategy = "PPN";
    meta.dataset = dataset.name;
    meta.gamma = SmallTrainerConfig().reward.gamma;
    meta.lambda = SmallTrainerConfig().reward.lambda;
    meta.cost_rate = SmallTrainerConfig().reward.cost_rate;
    meta.seed = static_cast<int64_t>(SmallTrainerConfig().seed);
    meta.steps = steps;
    run_log = RunLog::Open(runlog_path, meta);
    EXPECT_NE(run_log, nullptr);
    trainer.AttachRunLog(run_log.get());
  }
  std::vector<double> rewards;
  for (int step = 0; step < steps; ++step) {
    rewards.push_back(trainer.TrainStep());
  }
  if (run_log != nullptr) {
    EXPECT_TRUE(run_log->Close());
  }
  return rewards;
}

TEST(RunLogTest, OpenReturnsNullWhenObsDisabled) {
  ScopedObsEnable disable(false);
  RunLogMeta meta;
  meta.run_id = "x";
  EXPECT_EQ(RunLog::Open(::testing::TempDir() + "/unused.jsonl", meta),
            nullptr);
}

TEST(RunLogTest, OpenReturnsNullForEmptyPath) {
  ScopedObsEnable enable;
  SKIP_IF_COMPILED_OUT();
  EXPECT_EQ(RunLog::Open("", RunLogMeta{}), nullptr);
}

TEST(RunLogTest, WritesHeaderAndRoundTripsRecordsExactly) {
  ScopedObsEnable enable;
  SKIP_IF_COMPILED_OUT();
  const std::string path = FreshPath("runlog_roundtrip.runlog.jsonl");
  RunLogMeta meta;
  meta.run_id = "PPN gamma=1e-3";
  meta.strategy = "PPN";
  meta.dataset = "Crypto-\"A\"";  // Escaping must survive the round trip.
  meta.gamma = 1e-3;
  meta.lambda = 1e-4;
  meta.cost_rate = 0.0025;
  meta.seed = 42;
  meta.steps = 3;
  auto log = RunLog::Open(path, meta);
  ASSERT_NE(log, nullptr);
  std::vector<RunLogRecord> written;
  for (int64_t step = 0; step < 3; ++step) {
    RunLogRecord record;
    record.step = step;
    // Deliberately awkward doubles: %.17g must reproduce them bit-exactly.
    record.reward_total = 0.1 * static_cast<double>(step + 1) / 3.0;
    record.reward_log_return = -1.0 / 3.0;
    record.reward_variance = 2.2250738585072014e-308;  // Smallest normal.
    record.reward_turnover = 0.30000000000000004;
    record.grad_norm = 1e100;
    record.pvm_staleness = 2.5;
    record.solver_iterations = 7.0;
    record.step_seconds = 0.001;
    log->Append(record);
    written.push_back(record);
  }
  ASSERT_TRUE(log->Close());

  ParsedRunLog parsed;
  std::string error;
  ASSERT_TRUE(ReadRunLog(path, &parsed, &error)) << error;
  EXPECT_EQ(parsed.schema, "ppn.runlog.v1");
  EXPECT_EQ(parsed.meta.run_id, meta.run_id);
  EXPECT_EQ(parsed.meta.dataset, meta.dataset);
  EXPECT_EQ(parsed.meta.gamma, meta.gamma);
  EXPECT_EQ(parsed.meta.seed, meta.seed);
  EXPECT_EQ(parsed.meta.steps, meta.steps);
  ASSERT_EQ(parsed.records.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(parsed.records[i].step, written[i].step);
    EXPECT_EQ(parsed.records[i].reward_total, written[i].reward_total);
    EXPECT_EQ(parsed.records[i].reward_log_return,
              written[i].reward_log_return);
    EXPECT_EQ(parsed.records[i].reward_variance, written[i].reward_variance);
    EXPECT_EQ(parsed.records[i].reward_turnover, written[i].reward_turnover);
    EXPECT_EQ(parsed.records[i].grad_norm, written[i].grad_norm);
    EXPECT_EQ(parsed.records[i].pvm_staleness, written[i].pvm_staleness);
    EXPECT_EQ(parsed.records[i].solver_iterations,
              written[i].solver_iterations);
    EXPECT_EQ(parsed.records[i].step_seconds, written[i].step_seconds);
  }
  std::remove(path.c_str());
}

TEST(RunLogTest, TrainerStreamsOneExactRecordPerStep) {
  ScopedObsEnable enable;
  SKIP_IF_COMPILED_OUT();
  const std::string path = FreshPath("runlog_trainer.runlog.jsonl");
  constexpr int kSteps = 10;
  const std::vector<double> rewards = RunSteps(kSteps, path);

  ParsedRunLog parsed;
  std::string error;
  ASSERT_TRUE(ReadRunLog(path, &parsed, &error)) << error;
  ASSERT_EQ(parsed.records.size(), static_cast<size_t>(kSteps));
  for (int step = 0; step < kSteps; ++step) {
    const RunLogRecord& record = parsed.records[step];
    EXPECT_EQ(record.step, step);
    // EXACT equality: the record holds the very double TrainStep returned,
    // and %.17g JSONL round-trips it bit-for-bit.
    EXPECT_EQ(record.reward_total, rewards[step]) << "step " << step;
    EXPECT_GT(record.grad_norm, 0.0);
    EXPECT_GT(record.solver_iterations, 0.0);
    EXPECT_GT(record.step_seconds, 0.0);
    EXPECT_GE(record.pvm_staleness, 0.0);
  }
  // Staleness grows once training revisits periods written steps earlier.
  EXPECT_GT(parsed.records.back().pvm_staleness, 0.0);

  // The report layer reproduces the final-step decomposition exactly.
  const RunLogSummary summary = SummarizeRunLog(parsed, /*window=*/4);
  EXPECT_EQ(summary.steps, kSteps);
  EXPECT_EQ(summary.final_step.reward_total, rewards.back());
  char expected[64];
  std::snprintf(expected, sizeof(expected), "%.17g", rewards.back());
  const std::string report = RenderReport({summary}, {});
  EXPECT_NE(report.find(expected), std::string::npos)
      << "report does not carry the exact final reward: " << report;
  std::remove(path.c_str());
}

TEST(RunLogTest, AttachingARunLogDoesNotPerturbTraining) {
  SKIP_IF_COMPILED_OUT();
  std::vector<double> with_log;
  {
    ScopedObsEnable enable;
    const std::string path = FreshPath("runlog_perturb.runlog.jsonl");
    with_log = RunSteps(6, path);
    std::remove(path.c_str());
  }
  std::vector<double> without_log;
  {
    ScopedObsEnable disable(false);
    without_log = RunSteps(6, "");
  }
  ASSERT_EQ(with_log.size(), without_log.size());
  for (size_t i = 0; i < with_log.size(); ++i) {
    EXPECT_EQ(with_log[i], without_log[i]) << "step " << i;
  }
}

/// Telemetry-enabled sweep fixture: one neural + one classic strategy at
/// smoke scale keeps each cell's training to a few steps.
exec::ExperimentSpec TelemetrySpec(const std::string& telemetry_dir) {
  exec::ExperimentSpec spec;
  spec.title = "runlog sweep test";
  spec.scale = RunScale::kSmoke;
  spec.datasets = {market::DatasetId::kCryptoA};
  strategies::StrategySpec neural;
  neural.name = "EIIE";
  neural.base_steps = 40;  // -> 5 steps at smoke scale.
  spec.strategies = {neural, strategies::StrategySpec{.name = "UBAH"}};
  spec.cost_rates = {0.0025, 0.01};
  spec.telemetry_dir = telemetry_dir;
  return spec;
}

TEST(RunLogTest, SweepStreamsOneLogPerNeuralCellAndStaysDeterministic) {
  ScopedObsEnable enable;
  SKIP_IF_COMPILED_OUT();
  const std::string dir_inline = FreshPath("runlog_sweep_w0");
  const std::string dir_pooled = FreshPath("runlog_sweep_w4");

  // Worker-count determinism with telemetry enabled: inline (0 workers)
  // and a 4-worker pool must produce bit-identical metrics.
  const std::vector<exec::CellResult> inline_rows =
      exec::ExperimentRunner(0).Run(TelemetrySpec(dir_inline));
  const std::vector<exec::CellResult> pooled_rows =
      exec::ExperimentRunner(4).Run(TelemetrySpec(dir_pooled));
  ASSERT_EQ(inline_rows.size(), 4u);
  ASSERT_EQ(pooled_rows.size(), 4u);
  for (size_t i = 0; i < inline_rows.size(); ++i) {
    EXPECT_EQ(inline_rows[i].key.strategy, pooled_rows[i].key.strategy);
    EXPECT_EQ(inline_rows[i].metrics.apv, pooled_rows[i].metrics.apv);
    EXPECT_EQ(inline_rows[i].metrics.sr_pct, pooled_rows[i].metrics.sr_pct);
    EXPECT_EQ(inline_rows[i].metrics.turnover,
              pooled_rows[i].metrics.turnover);
  }

  // One run log per NEURAL cell (classic cells train nothing), named by
  // the derived seed, with one record per training step.
  std::vector<std::string> errors;
  const std::vector<RunLogSummary> cells =
      SummarizeRunLogDir(dir_pooled, /*window=*/50, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(cells.size(), 2u);  // EIIE at two cost rates.
  for (const RunLogSummary& cell : cells) {
    EXPECT_EQ(cell.meta.strategy, "EIIE");
    EXPECT_EQ(cell.meta.steps, 5);
    EXPECT_EQ(cell.steps, 5);
    EXPECT_EQ(cell.final_step.step, 4);
    EXPECT_GT(cell.step_seconds_total, 0.0);
  }
  // The two cells trained at different cost rates.
  EXPECT_NE(cells[0].meta.cost_rate, cells[1].meta.cost_rate);

  // Same spec, same cells: the inline run wrote logs with identical
  // training trajectories (the metrics already matched; check the final
  // rewards recorded in the logs match too).
  const std::vector<RunLogSummary> inline_cells =
      SummarizeRunLogDir(dir_inline, /*window=*/50, &errors);
  ASSERT_EQ(inline_cells.size(), 2u);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(inline_cells[i].file, cells[i].file);
    EXPECT_EQ(inline_cells[i].final_step.reward_total,
              cells[i].final_step.reward_total);
    EXPECT_EQ(inline_cells[i].final_step.grad_norm,
              cells[i].final_step.grad_norm);
  }

  std::filesystem::remove_all(dir_inline);
  std::filesystem::remove_all(dir_pooled);
}

TEST(RunLogTest, ReportSummarizesTraceFiles) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  ResetTrace();
  {
    Span outer("t.report.outer");
    Span inner("t.report.inner");
  }
  const std::string path = FreshPath("runlog_trace_report.json");
  ASSERT_TRUE(WriteTraceJson(path));
  std::vector<SpanStat> spans;
  std::string error;
  ASSERT_TRUE(SummarizeTrace(path, &spans, &error)) << error;
  bool saw_outer = false;
  for (const SpanStat& span : spans) {
    if (span.name == "t.report.outer") {
      saw_outer = true;
      EXPECT_EQ(span.count, 1);
      EXPECT_GE(span.max_us, 0.0);
    }
  }
  EXPECT_TRUE(saw_outer);
  const std::string report = RenderReport({}, spans);
  EXPECT_NE(report.find("t.report.outer"), std::string::npos);
  std::remove(path.c_str());
  ResetTrace();
}

TEST(RunLogTest, ReadRunLogRejectsMissingOrMalformedFiles) {
  ParsedRunLog parsed;
  std::string error;
  EXPECT_FALSE(ReadRunLog(::testing::TempDir() + "/does_not_exist.jsonl",
                          &parsed, &error));
  EXPECT_FALSE(error.empty());

  const std::string path = FreshPath("runlog_bad_schema.runlog.jsonl");
  {
    std::ofstream out(path);
    out << "{\"schema\": \"ppn.runlog.v999\"}\n";
  }
  error.clear();
  EXPECT_FALSE(ReadRunLog(path, &parsed, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppn::obs
