// SLO health rules: the PPN_HEALTH grammar, metric resolution against
// snapshots (counters default to 0, histogram stats skip when empty), the
// cumulative HealthMonitor tallies, and the strict-parse abort contract
// of HealthRulesFromEnv.

#include "obs/health.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats.h"

namespace ppn::obs {
namespace {

/// Sets an env var for one test and restores the previous state on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) ::setenv(name_, old_.c_str(), 1);
    else ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(HealthParseTest, ParsesEveryOperatorSpelling) {
  std::vector<HealthRule> rules;
  ASSERT_TRUE(ParseHealthRules(
      "a<1,b<=2,c>3,d>=4,e==5,f!=6", &rules));
  ASSERT_EQ(rules.size(), 6u);
  EXPECT_EQ(rules[0].op, HealthOp::kLt);
  EXPECT_EQ(rules[1].op, HealthOp::kLe);
  EXPECT_EQ(rules[2].op, HealthOp::kGt);
  EXPECT_EQ(rules[3].op, HealthOp::kGe);
  EXPECT_EQ(rules[4].op, HealthOp::kEq);
  EXPECT_EQ(rules[5].op, HealthOp::kNe);
  EXPECT_EQ(rules[0].metric, "a");
  EXPECT_DOUBLE_EQ(rules[3].threshold, 4.0);
  // `raw` round-trips the source spelling for messages.
  EXPECT_EQ(rules[4].raw, "e==5");
}

TEST(HealthParseTest, TimeUnitSuffixesConvertToSeconds) {
  std::vector<HealthRule> rules;
  ASSERT_TRUE(ParseHealthRules(
      "lat.p99<5ms,spike.max<250us,cell.p50<2s,count>=10", &rules));
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 0.005);
  EXPECT_DOUBLE_EQ(rules[1].threshold, 0.00025);
  EXPECT_DOUBLE_EQ(rules[2].threshold, 2.0);
  EXPECT_DOUBLE_EQ(rules[3].threshold, 10.0);
}

TEST(HealthParseTest, WhitespaceAndEmptyListAreTolerated) {
  std::vector<HealthRule> rules;
  ASSERT_TRUE(ParseHealthRules("", &rules));
  EXPECT_TRUE(rules.empty());
  ASSERT_TRUE(ParseHealthRules(" a < 1 , b >= 2 ", &rules));
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].metric, "a");
  EXPECT_EQ(rules[1].metric, "b");
}

TEST(HealthParseTest, MalformedRulesAreRejectedWithAMessage) {
  std::vector<HealthRule> rules;
  std::string error;
  // No operator at all.
  EXPECT_FALSE(ParseHealthRules("latency.p99", &rules, &error));
  EXPECT_NE(error.find("latency.p99"), std::string::npos);
  // Empty metric.
  EXPECT_FALSE(ParseHealthRules("<5", &rules, &error));
  // Garbage threshold.
  EXPECT_FALSE(ParseHealthRules("a<banana", &rules, &error));
  EXPECT_NE(error.find("banana"), std::string::npos);
  // Trailing junk after the number.
  EXPECT_FALSE(ParseHealthRules("a<5msx", &rules, &error));
  // A bare unit with no digits.
  EXPECT_FALSE(ParseHealthRules("a<ms", &rules, &error));
  // One bad rule poisons the whole list.
  EXPECT_FALSE(ParseHealthRules("a<1,b", &rules, &error));
}

TEST(HealthParseTest, HealthOpNameRoundTrips) {
  EXPECT_EQ(HealthOpName(HealthOp::kLt), "<");
  EXPECT_EQ(HealthOpName(HealthOp::kLe), "<=");
  EXPECT_EQ(HealthOpName(HealthOp::kGt), ">");
  EXPECT_EQ(HealthOpName(HealthOp::kGe), ">=");
  EXPECT_EQ(HealthOpName(HealthOp::kEq), "==");
  EXPECT_EQ(HealthOpName(HealthOp::kNe), "!=");
}

TEST(HealthResolveTest, CountersGaugesAndAbsentNamesResolve) {
  Snapshot snapshot;
  snapshot.counters["exec.cells.completed"] = 12.0;
  snapshot.gauges["tensor.pool.bytes_in_use"] = 4096.0;
  double value = -1.0;
  ASSERT_TRUE(
      ResolveHealthMetric(snapshot, "exec.cells.completed", &value));
  EXPECT_DOUBLE_EQ(value, 12.0);
  ASSERT_TRUE(
      ResolveHealthMetric(snapshot, "tensor.pool.bytes_in_use", &value));
  EXPECT_DOUBLE_EQ(value, 4096.0);
  // Absent plain names read as 0 — `foo==0` invariants hold vacuously.
  ASSERT_TRUE(ResolveHealthMetric(snapshot, "never.recorded", &value));
  EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(HealthResolveTest, HistogramStatSuffixesResolveAndEmptySkips) {
  Snapshot snapshot;
  HistogramSnapshot& hist = snapshot.histograms["lat.seconds"];
  hist.count = 4;
  hist.sum = 2.0;
  hist.min = 0.25;
  hist.max = 1.0;
  hist.buckets[30] = 4;  // All four samples in [0.5, 1).
  double value = -1.0;
  ASSERT_TRUE(ResolveHealthMetric(snapshot, "lat.seconds.count", &value));
  EXPECT_DOUBLE_EQ(value, 4.0);
  ASSERT_TRUE(ResolveHealthMetric(snapshot, "lat.seconds.mean", &value));
  EXPECT_DOUBLE_EQ(value, 0.5);
  ASSERT_TRUE(ResolveHealthMetric(snapshot, "lat.seconds.min", &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  ASSERT_TRUE(ResolveHealthMetric(snapshot, "lat.seconds.max", &value));
  EXPECT_DOUBLE_EQ(value, 1.0);
  ASSERT_TRUE(ResolveHealthMetric(snapshot, "lat.seconds.p99", &value));
  EXPECT_GE(value, hist.min);
  EXPECT_LE(value, hist.max);
  // A histogram stat with NO observations is a skip, not a zero: "no
  // data" must never satisfy (or violate) a latency bound.
  snapshot.histograms["empty.seconds"];  // Present but count == 0.
  EXPECT_FALSE(ResolveHealthMetric(snapshot, "empty.seconds.p99", &value));
  // ...and a stat suffix on a name with no histogram at all is also a
  // skip (the suffix marks it as a histogram rule).
  EXPECT_FALSE(ResolveHealthMetric(snapshot, "no.such.hist.p95", &value));
}

TEST(HealthMonitorTest, TalliesViolationsAcrossWindows) {
  std::vector<HealthRule> rules;
  ASSERT_TRUE(ParseHealthRules("errs==0,lat.seconds.p99<5ms", &rules));
  HealthMonitor monitor(std::move(rules));
  ASSERT_TRUE(monitor.has_rules());
  EXPECT_TRUE(monitor.ok());

  // Window 1: no errors, no latency data → rule 1 passes, rule 2 skips.
  Snapshot clean;
  std::vector<HealthEval> evals = monitor.Evaluate(clean);
  ASSERT_EQ(evals.size(), 2u);
  EXPECT_TRUE(evals[0].evaluated);
  EXPECT_TRUE(evals[0].ok);
  EXPECT_FALSE(evals[1].evaluated);
  EXPECT_TRUE(monitor.ok());

  // Window 2: an error shows up.
  Snapshot bad;
  bad.counters["errs"] = 3.0;
  evals = monitor.Evaluate(bad);
  EXPECT_TRUE(evals[0].evaluated);
  EXPECT_FALSE(evals[0].ok);
  EXPECT_DOUBLE_EQ(evals[0].value, 3.0);
  EXPECT_FALSE(monitor.ok());

  // Window 3: clean again — but the monitor remembers the violation.
  monitor.Evaluate(clean);
  EXPECT_FALSE(monitor.ok());

  const std::string summary = monitor.Summary(/*color=*/false);
  EXPECT_NE(summary.find("FAIL"), std::string::npos);
  EXPECT_NE(summary.find("errs==0"), std::string::npos);
  EXPECT_NE(summary.find("PPN_HEALTH: FAIL"), std::string::npos);
  // The never-evaluated latency rule reports as skipped, not passed.
  EXPECT_NE(summary.find("SKIP"), std::string::npos);
}

TEST(HealthMonitorTest, AllPassingSummaryCarriesThePassToken) {
  std::vector<HealthRule> rules;
  ASSERT_TRUE(ParseHealthRules("errs==0", &rules));
  HealthMonitor monitor(std::move(rules));
  monitor.Evaluate(Snapshot{});
  EXPECT_TRUE(monitor.ok());
  const std::string summary = monitor.Summary(/*color=*/false);
  EXPECT_NE(summary.find("PPN_HEALTH: PASS"), std::string::npos);
  EXPECT_EQ(summary.find("FAIL"), std::string::npos);
}

TEST(HealthEnvTest, SetButEmptyYieldsNoRules) {
  const ScopedEnv empty("PPN_HEALTH", "");
  EXPECT_TRUE(HealthRulesFromEnv().empty());
}

TEST(HealthEnvTest, ValidRulesParseFromTheEnvironment) {
  const ScopedEnv health("PPN_HEALTH", "exec.cells.failed==0,lat.p99<5ms");
  const std::vector<HealthRule> rules = HealthRulesFromEnv();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].metric, "exec.cells.failed");
  EXPECT_DOUBLE_EQ(rules[1].threshold, 0.005);
}

TEST(HealthEnvDeathTest, MalformedEnvRulesAbortNamingTheVariable) {
  const ScopedEnv bad("PPN_HEALTH", "latency.p99<<fast");
  EXPECT_DEATH(HealthRulesFromEnv(), "PPN_HEALTH");
}

TEST(ReportHealthTest, NoRulesIsSilentSuccess) {
  const ScopedEnv unset("PPN_HEALTH", "");
  EXPECT_EQ(ReportHealthIfRequested(), 0);
}

TEST(ReportHealthTest, ViolatedRuleReturnsNonzero) {
#ifdef PPN_OBS_DISABLED
  // Compiled-out builds have an empty registry: the bumped counter below
  // never lands, so only the vacuous-pass branch is testable.
  const ScopedEnv health("PPN_HEALTH", "health.test.bump==0");
  EXPECT_EQ(ReportHealthIfRequested(), 0);
#else
  const ScopedObsEnable enabled;
  GetCounter("health.test.bump").Add(1.0);
  {
    const ScopedEnv health("PPN_HEALTH", "health.test.bump==0");
    EXPECT_EQ(ReportHealthIfRequested(), 1);
  }
  {
    const ScopedEnv health("PPN_HEALTH", "health.test.bump>=1");
    EXPECT_EQ(ReportHealthIfRequested(), 0);
  }
#endif
}

}  // namespace
}  // namespace ppn::obs
