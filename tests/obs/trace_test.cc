#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "exec/experiment.h"
#include "exec/thread_pool.h"
#include "market/presets.h"
#include "obs/stats.h"

namespace ppn::obs {
namespace {

// Tests that need the recording side skip themselves in the
// -DPPN_OBS_COMPILED=OFF build; the exporter still links there and must
// still produce valid (empty) JSON, which CompiledOutOrDisabledEmitsNothing
// covers in both builds.
#ifdef PPN_OBS_DISABLED
#define SKIP_IF_COMPILED_OUT() \
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)"
#else
#define SKIP_IF_COMPILED_OUT()
#endif

/// One parsed trace event, flattened for assertions.
struct Event {
  std::string ph;
  std::string name;
  int64_t tid = 0;
  double ts = 0.0;
  double dur = 0.0;
  double id = 0.0;
  std::map<std::string, double> args;
};

/// Parses `TraceToJson()` output and flattens the traceEvents array.
std::vector<Event> ParseTrace(const std::string& json) {
  JsonValue root;
  std::string error;
  EXPECT_TRUE(ParseJson(json, &root, &error)) << error;
  if (!root.is_object()) return {};
  const JsonValue* events = root.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  std::vector<Event> out;
  if (events == nullptr || !events->is_array()) return out;
  for (const JsonValue& item : events->AsArray()) {
    Event event;
    event.ph = item.StringOr("ph", "");
    event.name = item.StringOr("name", "");
    event.tid = static_cast<int64_t>(item.NumberOr("tid", 0.0));
    event.ts = item.NumberOr("ts", 0.0);
    event.dur = item.NumberOr("dur", 0.0);
    event.id = item.NumberOr("id", 0.0);
    if (const JsonValue* args = item.Find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->AsObject()) {
        if (value.is_number()) event.args[key] = value.AsNumber();
      }
    }
    out.push_back(std::move(event));
  }
  return out;
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetTrace(); }
  void TearDown() override { ResetTrace(); }
};

TEST_F(ObsTraceTest, CompiledOutOrDisabledEmitsNothing) {
  // No ScopedTraceEnable: recording must be off by default (and always off
  // when compiled out). Spans and flows must leave no events behind.
  ASSERT_FALSE(TraceEnabled());
  {
    Span span("t.should.not.record");
    span.AddArg("x", 1.0);
    const uint64_t flow = BeginFlow("t.no.flow");
    EXPECT_EQ(flow, 0u);
    EndFlow(flow, "t.no.flow");
  }
  const std::vector<Event> events = ParseTrace(TraceToJson());
  EXPECT_TRUE(events.empty());
}

TEST_F(ObsTraceTest, SpanRecordsCompleteEventWithArgs) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  {
    Span span("t.unit.work");
    span.AddArg("step", 7.0);
    span.AddArg("reward", -0.125);
  }
  const std::vector<Event> events = ParseTrace(TraceToJson());
  const auto it = std::find_if(events.begin(), events.end(), [](const Event& e) {
    return e.name == "t.unit.work";
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->ph, "X");
  EXPECT_GE(it->dur, 0.0);
  ASSERT_EQ(it->args.count("step"), 1u);
  EXPECT_DOUBLE_EQ(it->args.at("step"), 7.0);
  EXPECT_DOUBLE_EQ(it->args.at("reward"), -0.125);
}

TEST_F(ObsTraceTest, NestedSpansNestOnTheTimeline) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  {
    Span outer("t.nest.outer");
    {
      Span inner("t.nest.inner");
      volatile double sink = 0.0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  const std::vector<Event> events = ParseTrace(TraceToJson());
  const auto find = [&](const std::string& name) {
    return std::find_if(events.begin(), events.end(),
                        [&](const Event& e) { return e.name == name; });
  };
  const auto outer = find("t.nest.outer");
  const auto inner = find("t.nest.inner");
  ASSERT_NE(outer, events.end());
  ASSERT_NE(inner, events.end());
  EXPECT_EQ(outer->tid, inner->tid);
  // The inner slice must lie inside the outer slice.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
}

TEST_F(ObsTraceTest, MinDurationFilterSuppressesShortSpans) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  {
    Span span("t.filtered.span", /*min_duration_us=*/1e9);
  }
  const std::vector<Event> events = ParseTrace(TraceToJson());
  EXPECT_TRUE(std::none_of(events.begin(), events.end(), [](const Event& e) {
    return e.name == "t.filtered.span";
  }));
}

TEST_F(ObsTraceTest, ThreadPoolStitchesFlowsAcrossWorkers) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([] {
        volatile double sink = 0.0;
        for (int j = 0; j < 20000; ++j) sink = sink + j;
      });
    }
    pool.Wait();
  }
  const std::vector<Event> events = ParseTrace(TraceToJson());
  std::map<double, const Event*> starts;   // flow id -> "s" event
  std::map<double, const Event*> finishes; // flow id -> "f" event
  std::set<int64_t> finish_tids;
  for (const Event& event : events) {
    if (event.ph == "s") starts[event.id] = &event;
    if (event.ph == "f") {
      finishes[event.id] = &event;
      finish_tids.insert(event.tid);
    }
  }
  ASSERT_GE(finishes.size(), 16u);
  // Every finish pairs with a start of the same id, on a different thread
  // (submit happens on this thread, execution on a worker), and not
  // before it.
  for (const auto& [id, finish] : finishes) {
    ASSERT_EQ(starts.count(id), 1u) << "unpaired flow finish id " << id;
    const Event* start = starts.at(id);
    EXPECT_NE(start->tid, finish->tid);
    EXPECT_GE(finish->ts, start->ts);
  }
  // With 2 workers and 16 tasks, both workers should have executed some.
  EXPECT_GE(finish_tids.size(), 2u);
  // Each worker slice is a complete event the finish can bind to.
  for (const Event& event : events) {
    if (event.ph != "f") continue;
    const bool has_enclosing_slice = std::any_of(
        events.begin(), events.end(), [&](const Event& slice) {
          return slice.ph == "X" && slice.tid == event.tid &&
                 slice.ts <= event.ts &&
                 event.ts <= slice.ts + slice.dur;
        });
    EXPECT_TRUE(has_enclosing_slice);
  }
}

TEST_F(ObsTraceTest, SweepTraceIsValidChromeJsonWithNestingAndFlows) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  // A tiny classic-only sweep: 4 cells across 2 workers exercises the
  // exec.cell spans and the submit->worker flow stitching end to end.
  exec::ExperimentSpec spec;
  spec.title = "trace-test";
  spec.datasets = {market::DatasetId::kCryptoA};
  spec.strategies = {{.name = "UBAH"}, {.name = "CRP"}};
  spec.cost_rates = {0.0025, 0.01};
  const exec::ExperimentRunner runner(2);
  const std::vector<exec::CellResult> rows = runner.Run(spec);
  ASSERT_EQ(rows.size(), 4u);

  const std::string path = ::testing::TempDir() + "/obs_trace_sweep.json";
  ASSERT_TRUE(WriteTraceJson(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::vector<Event> events = ParseTrace(buffer.str());
  std::remove(path.c_str());

  // Per-cell spans ran on the workers.
  const int64_t cell_spans =
      std::count_if(events.begin(), events.end(),
                    [](const Event& e) { return e.name == "exec.cell"; });
  EXPECT_EQ(cell_spans, 4);
  // Begin/end nesting: within each thread, "X" slices must nest (no
  // partial overlap) — RAII scopes guarantee it, the exporter must
  // preserve it.
  std::map<int64_t, std::vector<const Event*>> by_tid;
  for (const Event& event : events) {
    if (event.ph == "X") by_tid[event.tid].push_back(&event);
  }
  EXPECT_GE(by_tid.size(), 2u);  // Main thread + at least one worker.
  for (const auto& [tid, slices] : by_tid) {
    for (const Event* a : slices) {
      for (const Event* b : slices) {
        const double a_end = a->ts + a->dur;
        const double b_end = b->ts + b->dur;
        const bool disjoint = a_end <= b->ts || b_end <= a->ts;
        const bool nested = (a->ts <= b->ts && b_end <= a_end) ||
                            (b->ts <= a->ts && a_end <= b_end);
        EXPECT_TRUE(disjoint || nested)
            << "slices overlap without nesting on tid " << tid << ": "
            << a->name << " and " << b->name;
      }
    }
  }
  // Flow pairing across >= 2 worker threads.
  std::map<double, int64_t> start_tid;
  std::set<int64_t> flow_finish_tids;
  int64_t paired = 0;
  for (const Event& event : events) {
    if (event.ph == "s") start_tid[event.id] = event.tid;
  }
  for (const Event& event : events) {
    if (event.ph != "f") continue;
    ASSERT_EQ(start_tid.count(event.id), 1u);
    EXPECT_NE(start_tid.at(event.id), event.tid);
    flow_finish_tids.insert(event.tid);
    ++paired;
  }
  EXPECT_GE(paired, 4);
  EXPECT_GE(flow_finish_tids.size(), 2u);
}

TEST_F(ObsTraceTest, OverflowDropsNewestAndCountsThem) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  // Fill a FRESH thread's buffer past its capacity (default 65536; the
  // env override is read at process start, so rely on the default).
  std::thread filler([] {
    for (int i = 0; i < 70000; ++i) {
      Span span("t.flood");
    }
  });
  filler.join();
  EXPECT_GT(TraceDroppedEvents(), 0);
  const std::string json = TraceToJson();
  EXPECT_NE(json.find("ppn_dropped_events"), std::string::npos);
  JsonValue root;
  ASSERT_TRUE(ParseJson(json, &root));
  const JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_GT(other->NumberOr("ppn_dropped_events", 0.0), 0.0);
}

TEST_F(ObsTraceTest, ResetTraceClearsEventsAndDrops) {
  SKIP_IF_COMPILED_OUT();
  ScopedTraceEnable enable;
  {
    Span span("t.reset.me");
  }
  ResetTrace();
  const std::vector<Event> events = ParseTrace(TraceToJson());
  EXPECT_TRUE(std::none_of(events.begin(), events.end(), [](const Event& e) {
    return e.name == "t.reset.me";
  }));
  EXPECT_EQ(TraceDroppedEvents(), 0);
}

}  // namespace
}  // namespace ppn::obs
