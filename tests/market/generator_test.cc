#include "market/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "market/presets.h"

namespace ppn::market {
namespace {

SyntheticMarketConfig SmallConfig() {
  SyntheticMarketConfig config;
  config.num_assets = 6;
  config.num_periods = 1500;
  config.seed = 77;
  return config;
}

TEST(GeneratorTest, DeterministicInSeed) {
  SyntheticMarketGenerator g1(SmallConfig());
  SyntheticMarketGenerator g2(SmallConfig());
  OhlcPanel p1 = g1.Generate();
  OhlcPanel p2 = g2.Generate();
  for (int64_t t = 0; t < p1.num_periods(); t += 97) {
    for (int64_t a = 0; a < p1.num_assets(); ++a) {
      EXPECT_DOUBLE_EQ(p1.Close(t, a), p2.Close(t, a));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticMarketConfig config = SmallConfig();
  config.seed = 78;
  SyntheticMarketGenerator g1(SmallConfig());
  SyntheticMarketGenerator g2(config);
  EXPECT_NE(g1.Generate().Close(100, 0), g2.Generate().Close(100, 0));
}

TEST(GeneratorTest, PanelIsCompleteAndValid) {
  SyntheticMarketGenerator generator(SmallConfig());
  OhlcPanel panel = generator.Generate();
  EXPECT_TRUE(panel.IsComplete());
  EXPECT_TRUE(panel.IsValid());
}

TEST(GeneratorTest, VolatilityInPlausibleRange) {
  SyntheticMarketGenerator generator(SmallConfig());
  OhlcPanel panel = generator.Generate();
  for (int64_t a = 0; a < panel.num_assets(); ++a) {
    std::vector<double> log_returns;
    for (int64_t t = 1; t < panel.num_periods(); ++t) {
      log_returns.push_back(std::log(panel.Close(t, a) /
                                     panel.Close(t - 1, a)));
    }
    const double vol = StdDev(log_returns);
    EXPECT_GT(vol, 0.004) << "asset " << a;
    EXPECT_LT(vol, 0.08) << "asset " << a;
  }
}

TEST(GeneratorTest, LeadLagStructureIsDetectable) {
  SyntheticMarketConfig config = SmallConfig();
  config.num_assets = 8;
  config.num_periods = 4000;
  config.follower_fraction = 0.9;
  config.lead_lag_strength = 0.5;
  SyntheticMarketGenerator generator(config);
  MarketGroundTruth truth;
  OhlcPanel panel = generator.Generate(&truth);
  // For at least one follower, corr(follower_t, leader_{t-lag}) must be
  // clearly positive and larger than the reverse direction.
  int followers_checked = 0;
  int detectable = 0;
  for (int64_t a = 0; a < config.num_assets; ++a) {
    if (truth.leader[a] < 0) continue;
    const int64_t leader = truth.leader[a];
    const int64_t lag = truth.lag[a];
    std::vector<double> follower_returns;
    std::vector<double> lagged_leader_returns;
    const int64_t start = std::max<int64_t>(truth.listing_period[a] + lag + 1,
                                            lag + 1);
    for (int64_t t = start; t < panel.num_periods(); ++t) {
      follower_returns.push_back(
          std::log(panel.Close(t, a) / panel.Close(t - 1, a)));
      lagged_leader_returns.push_back(std::log(
          panel.Close(t - lag, leader) / panel.Close(t - lag - 1, leader)));
    }
    const double corr =
        PearsonCorrelation(follower_returns, lagged_leader_returns);
    ++followers_checked;
    if (corr > 0.1) ++detectable;
  }
  ASSERT_GT(followers_checked, 0);
  EXPECT_GE(detectable, followers_checked / 2);
}

TEST(GeneratorTest, NoLeadLagWhenDisabled) {
  SyntheticMarketConfig config = SmallConfig();
  config.lead_lag_strength = 0.0;
  SyntheticMarketGenerator generator(config);
  MarketGroundTruth truth;
  OhlcPanel panel = generator.Generate(&truth);
  (void)panel;
  // Structure may still be drawn, but with zero strength it has no effect;
  // just verify generation succeeds and is valid.
  EXPECT_TRUE(panel.IsValid());
}

TEST(GeneratorTest, LateListedAssetsAreFlatFilled) {
  SyntheticMarketConfig config = SmallConfig();
  config.late_listing_fraction = 1.0;  // Everyone except asset 0 can be late.
  SyntheticMarketGenerator generator(config);
  MarketGroundTruth truth;
  OhlcPanel panel = generator.Generate(&truth);
  bool found_late = false;
  for (int64_t a = 0; a < config.num_assets; ++a) {
    if (truth.listing_period[a] <= 1) continue;
    found_late = true;
    // Before listing, the close is constant (flat fill).
    const double fill = panel.Close(0, a);
    for (int64_t t = 0; t < truth.listing_period[a]; ++t) {
      EXPECT_DOUBLE_EQ(panel.Close(t, a), fill);
    }
  }
  EXPECT_TRUE(found_late);
}

TEST(GeneratorTest, MeanReversionMatchesHandComputedPath) {
  // Every noise source off, beta pinned to 1: the close path reduces to
  //   p_t = p_{t-1} + drift + κ (MA_t − p_{t-1}),
  // where MA_t averages the last min(t, W) log prices — the regression
  // for the off-by-one that divided the rolling sum by W+1 terms.
  SyntheticMarketConfig config;
  config.num_assets = 1;
  config.num_periods = 8;
  config.seed = 5;
  config.idio_vol = 0.0;
  config.factor_vol = 0.0;
  config.beta_min = 1.0;
  config.beta_max = 1.0;
  config.regime_drifts = {0.01};  // Single regime: drift is deterministic.
  config.regime_switch_prob = 0.0;
  config.momentum = 0.0;
  config.mean_reversion = 0.1;
  config.reversion_window = 3;
  config.follower_fraction = 0.0;
  config.lead_lag_strength = 0.0;
  config.jump_prob = 0.0;
  config.late_listing_fraction = 0.0;
  config.intrabar_noise = 0.0;
  const OhlcPanel panel = SyntheticMarketGenerator(config).Generate();

  const double kappa = config.mean_reversion;
  const int64_t W = config.reversion_window;
  double p = std::log(panel.Close(0, 0));
  double running_sum = p;
  std::vector<double> path = {p};
  for (int64_t t = 1; t < config.num_periods; ++t) {
    const int64_t window = std::min<int64_t>(t, W);
    const double moving_average = running_sum / static_cast<double>(window);
    const double r = 0.01 + kappa * (moving_average - p);
    p += r;
    path.push_back(p);
    running_sum += p;
    if (t >= W) running_sum -= path[t - W];
  }
  for (int64_t t = 0; t < config.num_periods; ++t) {
    EXPECT_NEAR(std::log(panel.Close(t, 0)), path[t], 1e-12) << "t=" << t;
  }
  // Spot-check the first reverting step by hand: MA_1 has exactly ONE term
  // (p_0 itself), so the reversion contribution is zero and r_1 = drift.
  EXPECT_NEAR(std::log(panel.Close(1, 0) / panel.Close(0, 0)), 0.01, 1e-12);
}

TEST(GeneratorDeathTest, DegenerateSplitAborts) {
  SyntheticMarketConfig config = SmallConfig();
  config.num_periods = 10;
  SyntheticMarketGenerator generator(config);
  // floor(0.05 * 10) = 0 training periods.
  EXPECT_DEATH(generator.GenerateDataset("X", 0.05), "degenerate split");
}

TEST(GeneratorTest, GenerateDatasetSplits) {
  SyntheticMarketGenerator generator(SmallConfig());
  MarketDataset dataset = generator.GenerateDataset("Test", 0.8);
  EXPECT_EQ(dataset.train_end, 1200);
  EXPECT_EQ(dataset.asset_names.size(), 6u);
  EXPECT_EQ(dataset.name, "Test");
}

// ----------------------------------------------------------- presets ----

TEST(PresetsTest, AssetCountsMatchPaper) {
  EXPECT_EQ(PresetConfig(DatasetId::kCryptoA, RunScale::kQuick).num_assets, 12);
  EXPECT_EQ(PresetConfig(DatasetId::kCryptoB, RunScale::kQuick).num_assets, 16);
  EXPECT_EQ(PresetConfig(DatasetId::kCryptoC, RunScale::kQuick).num_assets, 21);
  EXPECT_EQ(PresetConfig(DatasetId::kCryptoD, RunScale::kQuick).num_assets, 44);
  EXPECT_EQ(PresetConfig(DatasetId::kSp500, RunScale::kFull).num_assets, 506);
}

TEST(PresetsTest, NamesAreStable) {
  EXPECT_EQ(DatasetName(DatasetId::kCryptoA), "Crypto-A");
  EXPECT_EQ(DatasetName(DatasetId::kSp500), "S&P500");
  EXPECT_EQ(CryptoDatasets().size(), 4u);
}

TEST(PresetsTest, Sp500SplitMatchesPaper) {
  MarketDataset sp = MakeDataset(DatasetId::kSp500, RunScale::kQuick);
  EXPECT_EQ(sp.train_end, 1101);
  EXPECT_EQ(sp.panel.num_periods() - sp.train_end, 94);
}

TEST(PresetsTest, SmokeDatasetsAreSmallAndValid) {
  for (const DatasetId id : CryptoDatasets()) {
    MarketDataset dataset = MakeDataset(id, RunScale::kSmoke);
    EXPECT_TRUE(dataset.panel.IsValid()) << DatasetName(id);
    EXPECT_LT(dataset.panel.num_periods(), 1000) << DatasetName(id);
    EXPECT_GT(dataset.panel.num_periods() - dataset.train_end, 30)
        << DatasetName(id);
  }
}

}  // namespace
}  // namespace ppn::market
