#include "market/stress.h"

#include <cmath>

#include <gtest/gtest.h>

#include "market/generator.h"

namespace ppn::market {
namespace {

MarketDataset SmallDataset() {
  SyntheticMarketConfig config;
  config.num_assets = 6;
  config.num_periods = 600;
  config.seed = 31;
  return SyntheticMarketGenerator(config).GenerateDataset("Small", 0.8);
}

TEST(StressPackNamesTest, RoundTrip) {
  for (const StressPack pack : AllStressPacks()) {
    StressPack parsed;
    ASSERT_TRUE(StressPackFromName(StressPackName(pack), &parsed))
        << StressPackName(pack);
    EXPECT_EQ(parsed, pack);
  }
  StressPack parsed;
  EXPECT_FALSE(StressPackFromName("earthquake", &parsed));
}

TEST(StressTest, DeterministicInSeed) {
  const MarketDataset base = SmallDataset();
  for (const StressPack pack : AllStressPacks()) {
    const StressedDataset s1 = ApplyStressPack(base, pack, 99);
    const StressedDataset s2 = ApplyStressPack(base, pack, 99);
    for (int64_t t = 0; t < base.panel.num_periods(); t += 13) {
      for (int64_t a = 0; a < base.panel.num_assets(); ++a) {
        ASSERT_EQ(s1.dataset.panel.Close(t, a), s2.dataset.panel.Close(t, a))
            << StressPackName(pack);
        ASSERT_EQ(s1.dataset.panel.Tradeable(t, a),
                  s2.dataset.panel.Tradeable(t, a));
      }
      ASSERT_EQ(s1.cost_multipliers[t], s2.cost_multipliers[t]);
    }
  }
}

TEST(StressTest, TrainRangeIsUntouched) {
  const MarketDataset base = SmallDataset();
  const StressedDataset stressed =
      ApplyStressPacks(base, AllStressPacks(), 5);
  for (int64_t t = 0; t < base.train_end; ++t) {
    for (int64_t a = 0; a < base.panel.num_assets(); ++a) {
      for (int f = 0; f < kNumPriceFields; ++f) {
        ASSERT_EQ(stressed.dataset.panel.Price(t, a,
                                               static_cast<PriceField>(f)),
                  base.panel.Price(t, a, static_cast<PriceField>(f)))
            << "t=" << t << " a=" << a;
      }
      ASSERT_TRUE(stressed.dataset.panel.Tradeable(t, a));
    }
    ASSERT_EQ(stressed.cost_multipliers[t], 1.0);
  }
}

TEST(StressTest, ResultStaysValidAndComplete) {
  const MarketDataset base = SmallDataset();
  for (const StressPack pack : AllStressPacks()) {
    const StressedDataset stressed = ApplyStressPack(base, pack, 17);
    EXPECT_TRUE(stressed.dataset.panel.IsComplete()) << StressPackName(pack);
    EXPECT_TRUE(stressed.dataset.panel.IsValid()) << StressPackName(pack);
    EXPECT_EQ(stressed.dataset.train_end, base.train_end);
  }
}

TEST(StressTest, NameRecordsAppliedPacks) {
  const MarketDataset base = SmallDataset();
  const StressedDataset one =
      ApplyStressPack(base, StressPack::kFlashCrash, 3);
  EXPECT_EQ(one.dataset.name, "Small+flash-crash");
  const StressedDataset two = ApplyStressPacks(
      base, {StressPack::kFlashCrash, StressPack::kDelisting}, 3);
  EXPECT_EQ(two.dataset.name, "Small+flash-crash+delisting");
  ASSERT_EQ(two.applied_packs.size(), 2u);
  EXPECT_EQ(two.applied_packs[0], "flash-crash");
  EXPECT_EQ(two.applied_packs[1], "delisting");
}

TEST(StressTest, FlashCrashDropsSomeAsset) {
  const MarketDataset base = SmallDataset();
  const StressedDataset stressed =
      ApplyStressPack(base, StressPack::kFlashCrash, 11);
  // At least one (test-range) bar of one asset must sit well below its
  // unstressed close: the crash bottom is >= 0.8 * 0.35 = 28% down.
  double worst_ratio = 1.0;
  for (int64_t t = base.train_end; t < base.panel.num_periods(); ++t) {
    for (int64_t a = 0; a < base.panel.num_assets(); ++a) {
      worst_ratio = std::min(
          worst_ratio, stressed.dataset.panel.Close(t, a) / base.panel.Close(t, a));
    }
  }
  EXPECT_LT(worst_ratio, 0.75);
}

TEST(StressTest, LiquidityHoleTouchesCostsOnly) {
  const MarketDataset base = SmallDataset();
  const StressedDataset stressed =
      ApplyStressPack(base, StressPack::kLiquidityHole, 23);
  // Panel bit-identical; only the multiplier schedule changes.
  double max_multiplier = 1.0;
  for (int64_t t = 0; t < base.panel.num_periods(); ++t) {
    for (int64_t a = 0; a < base.panel.num_assets(); ++a) {
      ASSERT_EQ(stressed.dataset.panel.Close(t, a), base.panel.Close(t, a));
    }
    ASSERT_GE(stressed.cost_multipliers[t], 1.0);
    ASSERT_LE(stressed.cost_multipliers[t], StressConfig().max_cost_multiplier);
    max_multiplier = std::max(max_multiplier, stressed.cost_multipliers[t]);
  }
  EXPECT_GT(max_multiplier, 1.5) << "the hole never raised slippage";
  EXPECT_FALSE(stressed.dataset.panel.HasTradeabilityMask());
}

TEST(StressTest, DelistingMasksAssetsButKeepsSurvivors) {
  const MarketDataset base = SmallDataset();
  const StressedDataset stressed =
      ApplyStressPack(base, StressPack::kDelisting, 29);
  const OhlcPanel& panel = stressed.dataset.panel;
  ASSERT_TRUE(panel.HasTradeabilityMask());
  const int64_t last = panel.num_periods() - 1;
  int64_t delisted = 0;
  for (int64_t a = 0; a < panel.num_assets(); ++a) {
    if (panel.Tradeable(last, a)) continue;
    ++delisted;
    // Once delisted, an asset stays delisted with frozen flat quotes.
    int64_t delist_t = base.train_end;
    while (panel.Tradeable(delist_t, a)) ++delist_t;
    const double frozen = base.panel.Close(delist_t - 1, a);
    for (int64_t t = delist_t; t <= last; ++t) {
      ASSERT_FALSE(panel.Tradeable(t, a));
      for (int f = 0; f < kNumPriceFields; ++f) {
        ASSERT_EQ(panel.Price(t, a, static_cast<PriceField>(f)), frozen);
      }
    }
    // Frozen value means relative exactly 1 through the halt.
    EXPECT_EQ(PriceRelatives(panel, delist_t)[a], 1.0);
  }
  EXPECT_GE(delisted, 1);
  EXPECT_LT(delisted, panel.num_assets()) << "someone must survive";
}

TEST(StressTest, CompositionMultipliesCostSchedules) {
  const MarketDataset base = SmallDataset();
  const StressedDataset both = ApplyStressPacks(
      base, {StressPack::kLiquidityHole, StressPack::kFlashCrash}, 41);
  const StressedDataset hole_only = ApplyStressPacks(
      base, {StressPack::kLiquidityHole}, 41);
  // The hole is pack 0 in both compositions (same derived sub-seed), and
  // the flash crash emits no multipliers — schedules must agree.
  for (int64_t t = 0; t < base.panel.num_periods(); ++t) {
    ASSERT_EQ(both.cost_multipliers[t], hole_only.cost_multipliers[t]);
  }
}

TEST(StressConfigDeathTest, RejectsOutOfRangeKnobs) {
  const MarketDataset base = SmallDataset();
  StressConfig config;
  config.crash_depth = 1.5;
  EXPECT_DEATH(
      ApplyStressPack(base, StressPack::kFlashCrash, 1, config),
      "crash_depth");
  StressConfig hole;
  hole.max_cost_multiplier = 0.5;
  EXPECT_DEATH(
      ApplyStressPack(base, StressPack::kLiquidityHole, 1, hole),
      "PPN_CHECK");
}

TEST(StressDeathTest, RejectsDegenerateSplit) {
  MarketDataset base = SmallDataset();
  base.train_end = 0;
  EXPECT_DEATH(ApplyStressPack(base, StressPack::kFlashCrash, 1),
               "non-degenerate");
}

}  // namespace
}  // namespace ppn::market
