#include "market/dataset.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace ppn::market {
namespace {

OhlcPanel MakeSimplePanel(int64_t periods, int64_t assets,
                          double start = 10.0, double growth = 1.1) {
  OhlcPanel panel(periods, assets);
  for (int64_t a = 0; a < assets; ++a) {
    double close = start * (a + 1);
    for (int64_t t = 0; t < periods; ++t) {
      panel.SetPrice(t, a, kOpen, close * 0.99);
      panel.SetPrice(t, a, kHigh, close * 1.02);
      panel.SetPrice(t, a, kLow, close * 0.98);
      panel.SetPrice(t, a, kClose, close);
      close *= growth;
    }
  }
  return panel;
}

TEST(OhlcPanelTest, FreshPanelIsMissing) {
  OhlcPanel panel(3, 2);
  EXPECT_TRUE(panel.IsMissing(0, 0));
  EXPECT_FALSE(panel.IsComplete());
}

TEST(OhlcPanelTest, SetAndReadBack) {
  OhlcPanel panel(2, 1);
  panel.SetPrice(1, 0, kClose, 42.0);
  EXPECT_DOUBLE_EQ(panel.Price(1, 0, kClose), 42.0);
  EXPECT_DOUBLE_EQ(panel.Close(1, 0), 42.0);
}

TEST(OhlcPanelTest, ValidityAcceptsSanePanel) {
  OhlcPanel panel = MakeSimplePanel(5, 2);
  EXPECT_TRUE(panel.IsComplete());
  EXPECT_TRUE(panel.IsValid());
}

TEST(OhlcPanelTest, ValidityRejectsHighBelowClose) {
  OhlcPanel panel = MakeSimplePanel(3, 1);
  panel.SetPrice(1, 0, kHigh, panel.Close(1, 0) * 0.5);
  EXPECT_FALSE(panel.IsValid());
}

TEST(OhlcPanelTest, ValidityRejectsNonPositive) {
  OhlcPanel panel = MakeSimplePanel(3, 1);
  panel.SetPrice(2, 0, kLow, -1.0);
  EXPECT_FALSE(panel.IsValid());
}

TEST(FlatFillTest, BackFillsEarlyHistory) {
  OhlcPanel panel = MakeSimplePanel(6, 1);
  // Blank out the first 3 periods.
  for (int64_t t = 0; t < 3; ++t) {
    for (int f = 0; f < kNumPriceFields; ++f) {
      panel.SetPrice(t, 0, static_cast<PriceField>(f),
                     std::numeric_limits<double>::quiet_NaN());
    }
  }
  const double first_close = panel.Close(3, 0);
  FlatFillMissing(&panel);
  EXPECT_TRUE(panel.IsComplete());
  for (int64_t t = 0; t < 3; ++t) {
    for (int f = 0; f < kNumPriceFields; ++f) {
      EXPECT_DOUBLE_EQ(panel.Price(t, 0, static_cast<PriceField>(f)),
                       first_close);
    }
  }
  // Flat fill means relative 1.0 within the filled span.
  EXPECT_DOUBLE_EQ(PriceRelatives(panel, 1)[0], 1.0);
}

TEST(FlatFillTest, ForwardFillsInteriorGap) {
  OhlcPanel panel = MakeSimplePanel(5, 1);
  const double before_gap = panel.Close(1, 0);
  for (int f = 0; f < kNumPriceFields; ++f) {
    panel.SetPrice(2, 0, static_cast<PriceField>(f),
                   std::numeric_limits<double>::quiet_NaN());
  }
  FlatFillMissing(&panel);
  EXPECT_DOUBLE_EQ(panel.Close(2, 0), before_gap);
}

TEST(FlatFillTest, ForwardFillsTrailingGap) {
  // A gap that runs to the end of the panel (an asset that stops printing)
  // must flat-fill forward at the last seen close, not stay NaN.
  OhlcPanel panel = MakeSimplePanel(6, 2);
  const double last_seen = panel.Close(3, 1);
  for (int64_t t = 4; t < 6; ++t) {
    for (int f = 0; f < kNumPriceFields; ++f) {
      panel.SetPrice(t, 1, static_cast<PriceField>(f),
                     std::numeric_limits<double>::quiet_NaN());
    }
  }
  FlatFillMissing(&panel);
  EXPECT_TRUE(panel.IsComplete());
  for (int64_t t = 4; t < 6; ++t) {
    for (int f = 0; f < kNumPriceFields; ++f) {
      EXPECT_DOUBLE_EQ(panel.Price(t, 1, static_cast<PriceField>(f)),
                       last_seen);
    }
  }
  // The untouched asset keeps its own path.
  EXPECT_DOUBLE_EQ(panel.Close(5, 0), MakeSimplePanel(6, 2).Close(5, 0));
}

TEST(OhlcPanelTest, ValidityRejectsZeroLow) {
  OhlcPanel panel = MakeSimplePanel(3, 1);
  panel.SetPrice(1, 0, kLow, 0.0);
  EXPECT_FALSE(panel.IsValid());
}

TEST(OhlcPanelTest, ValidityRejectsLowAboveOpen) {
  OhlcPanel panel = MakeSimplePanel(3, 1);
  panel.SetPrice(1, 0, kLow, panel.Price(1, 0, kOpen) * 1.5);
  EXPECT_FALSE(panel.IsValid());
}

// ------------------------------------------------- tradeability mask ----

TEST(TradeabilityTest, DefaultIsAllTradeable) {
  const OhlcPanel panel = MakeSimplePanel(4, 2);
  EXPECT_FALSE(panel.HasTradeabilityMask());
  EXPECT_TRUE(panel.Tradeable(2, 1));
}

TEST(TradeabilityTest, MaskedBarsAreExemptFromValidity) {
  OhlcPanel panel = MakeSimplePanel(4, 2);
  panel.SetPrice(2, 0, kLow, -1.0);
  EXPECT_FALSE(panel.IsValid());
  panel.SetTradeable(2, 0, false);
  EXPECT_TRUE(panel.HasTradeabilityMask());
  EXPECT_TRUE(panel.IsValid()) << "halted quotes are decorative";
  EXPECT_TRUE(panel.Tradeable(2, 1)) << "other assets keep trading";
}

TEST(TradeabilityTest, HaltedAssetHasUnitRelative) {
  OhlcPanel panel = MakeSimplePanel(5, 2, 10.0, 1.1);
  panel.SetTradeable(3, 0, false);
  // Halted at t or t-1 → frozen value → relative exactly 1.
  EXPECT_EQ(PriceRelatives(panel, 3)[0], 1.0);
  EXPECT_EQ(PriceRelatives(panel, 4)[0], 1.0);
  EXPECT_NEAR(PriceRelatives(panel, 3)[1], 1.1, 1e-12);
  // Away from the halt the quoted ratio applies again.
  EXPECT_NEAR(PriceRelatives(panel, 2)[0], 1.1, 1e-12);
}

TEST(TradeabilityTest, DegeneratePriceOnHaltedAssetDoesNotAbort) {
  OhlcPanel panel = MakeSimplePanel(5, 1);
  for (int f = 0; f < kNumPriceFields; ++f) {
    panel.SetPrice(3, 0, static_cast<PriceField>(f), 0.0);
  }
  panel.SetTradeable(3, 0, false);
  EXPECT_EQ(PriceRelatives(panel, 3)[0], 1.0);
}

TEST(TradeabilityTest, NormalizedWindowIsNeutralForHaltedAsset) {
  OhlcPanel panel = MakeSimplePanel(40, 2, 10.0, 1.05);
  panel.SetTradeable(35, 1, false);
  const Tensor window = NormalizedWindow(panel, 35, 10);
  for (int64_t j = 0; j < 10; ++j) {
    for (int f = 0; f < 4; ++f) {
      EXPECT_EQ(window.At({1, j, f}), 1.0f);
    }
  }
  // The tradeable asset keeps its real ratios.
  EXPECT_NEAR(window.At({0, 8, kClose}), 1.0 / 1.05, 1e-4);
}

TEST(TradeabilityDeathTest, DegeneratePriceOnTradeableAssetAborts) {
  OhlcPanel panel = MakeSimplePanel(5, 1);
  for (int f = 0; f < kNumPriceFields; ++f) {
    panel.SetPrice(3, 0, static_cast<PriceField>(f), 0.0);
  }
  EXPECT_DEATH(PriceRelatives(panel, 3), "tradeability mask");
  EXPECT_DEATH(NormalizedWindow(panel, 3, 2), "tradeability mask");
}

TEST(FlatFillDeathTest, AllMissingAssetAborts) {
  OhlcPanel panel(3, 1);
  EXPECT_DEATH(FlatFillMissing(&panel), "no observed data");
}

TEST(PriceRelativesTest, ComputesCloseRatios) {
  OhlcPanel panel = MakeSimplePanel(4, 2, 10.0, 1.1);
  const std::vector<double> x = PriceRelatives(panel, 2);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.1, 1e-12);
  EXPECT_NEAR(x[1], 1.1, 1e-12);
}

TEST(PriceRelativesTest, CashVariantPrependsOne) {
  OhlcPanel panel = MakeSimplePanel(4, 2);
  const std::vector<double> x = PriceRelativesWithCash(panel, 1);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(PriceRelativesDeathTest, PeriodZeroAborts) {
  OhlcPanel panel = MakeSimplePanel(4, 1);
  EXPECT_DEATH(PriceRelatives(panel, 0), "PPN_CHECK");
}

TEST(NormalizedWindowTest, LastPeriodIsAllOnes) {
  OhlcPanel panel = MakeSimplePanel(40, 3);
  const int64_t k = 30;
  Tensor window = NormalizedWindow(panel, 35, k);
  ASSERT_EQ(window.shape(), (std::vector<int64_t>{3, k, 4}));
  for (int64_t a = 0; a < 3; ++a) {
    for (int f = 0; f < 4; ++f) {
      EXPECT_NEAR(window.At({a, k - 1, f}), 1.0f, 1e-6f);
    }
  }
}

TEST(NormalizedWindowTest, ValuesAreRatios) {
  OhlcPanel panel = MakeSimplePanel(40, 1, 10.0, 1.05);
  Tensor window = NormalizedWindow(panel, 35, 10);
  // Close at slot j is close(t-9+j) / close(t): growth^(j-9).
  for (int64_t j = 0; j < 10; ++j) {
    const double expected = std::pow(1.05, static_cast<double>(j - 9));
    EXPECT_NEAR(window.At({0, j, kClose}), expected, 1e-4);
  }
}

TEST(NormalizedWindowTest, InsufficientHistoryAborts) {
  OhlcPanel panel = MakeSimplePanel(40, 1);
  EXPECT_DEATH(NormalizedWindow(panel, 5, 10), "PPN_CHECK");
}

TEST(DatasetStatsTest, SplitsCounts) {
  MarketDataset dataset;
  dataset.name = "X";
  dataset.panel = MakeSimplePanel(100, 2);
  dataset.train_end = 80;
  const DatasetStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.num_assets, 2);
  EXPECT_EQ(stats.train_periods, 80);
  EXPECT_EQ(stats.test_periods, 20);
}

}  // namespace
}  // namespace ppn::market
