#include "market/replay_io.h"

#include <cmath>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace ppn::market {
namespace {

class ReplayIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ppn_replay_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Writes a well-formed long-format file: `periods` x `assets` bars with
  /// close = 10*(a+1)*1.01^t and a small intra-bar envelope.
  std::string WriteGoodCsv(const std::string& name, int64_t periods,
                           int64_t assets) const {
    CsvTable table;
    table.header = {"period", "asset", "open", "high", "low", "close"};
    for (int64_t t = 0; t < periods; ++t) {
      for (int64_t a = 0; a < assets; ++a) {
        const double close =
            10.0 * static_cast<double>(a + 1) * std::pow(1.01, t);
        table.rows.push_back({static_cast<double>(t), static_cast<double>(a),
                              close * 0.99, close * 1.02, close * 0.98,
                              close});
      }
    }
    const std::string path = PathFor(name);
    EXPECT_TRUE(WriteCsv(path, table));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(ReplayIoTest, LoadsWellFormedFile) {
  const std::string path = WriteGoodCsv("good.csv", 50, 3);
  MarketDataset dataset;
  std::string error;
  ASSERT_TRUE(LoadReplayCsv(path, {}, &dataset, &error)) << error;
  EXPECT_EQ(dataset.panel.num_periods(), 50);
  EXPECT_EQ(dataset.panel.num_assets(), 3);
  EXPECT_EQ(dataset.name, path);
  EXPECT_EQ(dataset.train_end, 46);  // floor(0.92 * 50).
  EXPECT_TRUE(dataset.panel.IsComplete());
  EXPECT_TRUE(dataset.panel.IsValid());
  EXPECT_NEAR(dataset.panel.Close(1, 2), 30.0 * 1.01, 1e-9);
  EXPECT_EQ(dataset.asset_names.size(), 3u);
}

TEST_F(ReplayIoTest, OptionsOverrideNameAndSplit) {
  const std::string path = WriteGoodCsv("named.csv", 40, 2);
  ReplayCsvOptions options;
  options.name = "Vendor-X";
  options.train_end = 30;
  MarketDataset dataset;
  std::string error;
  ASSERT_TRUE(LoadReplayCsv(path, options, &dataset, &error)) << error;
  EXPECT_EQ(dataset.name, "Vendor-X");
  EXPECT_EQ(dataset.train_end, 30);
}

TEST_F(ReplayIoTest, ColumnsMatchByNameInAnyOrder) {
  CsvTable table;
  table.header = {"close", "asset", "volume", "low", "high", "open", "period"};
  for (int64_t t = 0; t < 10; ++t) {
    const double close = 5.0 + t;
    table.rows.push_back({close, 0.0, 999.0, close - 1.0, close + 1.0,
                          close - 0.5, static_cast<double>(t)});
  }
  const std::string path = PathFor("shuffled.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  MarketDataset dataset;
  std::string error;
  ASSERT_TRUE(LoadReplayCsv(path, {}, &dataset, &error)) << error;
  EXPECT_EQ(dataset.panel.num_assets(), 1);
  EXPECT_DOUBLE_EQ(dataset.panel.Close(3, 0), 8.0);
}

TEST_F(ReplayIoTest, MissingColumnIsReported) {
  CsvTable table;
  table.header = {"period", "asset", "open", "high", "low"};  // No close.
  table.rows.push_back({0.0, 0.0, 1.0, 1.1, 0.9});
  table.rows.push_back({1.0, 0.0, 1.0, 1.1, 0.9});
  const std::string path = PathFor("noclose.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  MarketDataset dataset;
  std::string error;
  EXPECT_FALSE(LoadReplayCsv(path, {}, &dataset, &error));
  EXPECT_NE(error.find("close"), std::string::npos) << error;
}

TEST_F(ReplayIoTest, DuplicateBarIsReported) {
  CsvTable table;
  table.header = {"period", "asset", "open", "high", "low", "close"};
  table.rows.push_back({0.0, 0.0, 1.0, 1.1, 0.9, 1.0});
  table.rows.push_back({1.0, 0.0, 1.0, 1.1, 0.9, 1.0});
  table.rows.push_back({1.0, 0.0, 1.0, 1.1, 0.9, 1.05});
  const std::string path = PathFor("dup.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  MarketDataset dataset;
  std::string error;
  EXPECT_FALSE(LoadReplayCsv(path, {}, &dataset, &error));
  EXPECT_NE(error.find("duplicate bar"), std::string::npos) << error;
}

TEST_F(ReplayIoTest, InvalidOhlcNamesTheBar) {
  CsvTable table;
  table.header = {"period", "asset", "open", "high", "low", "close"};
  table.rows.push_back({0.0, 0.0, 1.0, 1.1, 0.9, 1.0});
  // high < close at (1, 0).
  table.rows.push_back({1.0, 0.0, 1.0, 1.0, 0.9, 1.5});
  const std::string path = PathFor("badbar.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  MarketDataset dataset;
  std::string error;
  EXPECT_FALSE(LoadReplayCsv(path, {}, &dataset, &error));
  EXPECT_NE(error.find("period 1"), std::string::npos) << error;
}

TEST_F(ReplayIoTest, SparseBarsAreFlatFilled) {
  CsvTable table;
  table.header = {"period", "asset", "open", "high", "low", "close"};
  // Asset 0: all 6 periods. Asset 1: lists at period 3 and skips period 4.
  for (int64_t t = 0; t < 6; ++t) {
    table.rows.push_back({static_cast<double>(t), 0.0, 2.0, 2.2, 1.8, 2.0});
  }
  table.rows.push_back({3.0, 1.0, 7.0, 7.2, 6.8, 7.0});
  table.rows.push_back({5.0, 1.0, 8.0, 8.2, 6.8, 8.0});
  const std::string path = PathFor("sparse.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  ReplayCsvOptions options;
  options.train_end = 4;
  MarketDataset dataset;
  std::string error;
  ASSERT_TRUE(LoadReplayCsv(path, options, &dataset, &error)) << error;
  // Pre-listing backfill at the first observed close; interior gap forward.
  EXPECT_DOUBLE_EQ(dataset.panel.Close(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(dataset.panel.Close(4, 1), 7.0);
  EXPECT_DOUBLE_EQ(dataset.panel.Close(5, 1), 8.0);

  options.fill_missing = false;
  EXPECT_FALSE(LoadReplayCsv(path, options, &dataset, &error));
  EXPECT_NE(error.find("missing bar"), std::string::npos) << error;
}

TEST_F(ReplayIoTest, DegenerateSplitIsReported) {
  const std::string path = WriteGoodCsv("split.csv", 10, 1);
  ReplayCsvOptions options;
  options.train_end = 10;
  MarketDataset dataset;
  std::string error;
  EXPECT_FALSE(LoadReplayCsv(path, options, &dataset, &error));
  EXPECT_NE(error.find("degenerate split"), std::string::npos) << error;
}

TEST_F(ReplayIoTest, MissingFileIsReported) {
  MarketDataset dataset;
  std::string error;
  EXPECT_FALSE(LoadReplayCsv(PathFor("absent.csv"), {}, &dataset, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ppn::market
