#include "market/io.h"

#include <gtest/gtest.h>

#include "common/csv.h"
#include "market/generator.h"

namespace ppn::market {
namespace {

MarketDataset SmallDataset() {
  SyntheticMarketConfig config;
  config.num_assets = 3;
  config.num_periods = 50;
  config.seed = 5;
  SyntheticMarketGenerator generator(config);
  return generator.GenerateDataset("io-test", 0.8);
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  const MarketDataset original = SmallDataset();
  const std::string prefix = ::testing::TempDir() + "/dataset_roundtrip";
  ASSERT_TRUE(SaveDataset(original, prefix));
  MarketDataset loaded;
  ASSERT_TRUE(LoadDataset(prefix, &loaded));
  EXPECT_EQ(loaded.panel.num_periods(), original.panel.num_periods());
  EXPECT_EQ(loaded.panel.num_assets(), original.panel.num_assets());
  EXPECT_EQ(loaded.train_end, original.train_end);
  for (int64_t t = 0; t < original.panel.num_periods(); ++t) {
    for (int64_t a = 0; a < original.panel.num_assets(); ++a) {
      for (int f = 0; f < kNumPriceFields; ++f) {
        EXPECT_NEAR(loaded.panel.Price(t, a, static_cast<PriceField>(f)),
                    original.panel.Price(t, a, static_cast<PriceField>(f)),
                    1e-9);
      }
    }
  }
  EXPECT_TRUE(loaded.panel.IsValid());
}

TEST(DatasetIoTest, LoadFailsOnMissingFiles) {
  MarketDataset dataset;
  dataset.name = "untouched";
  EXPECT_FALSE(LoadDataset(::testing::TempDir() + "/nope", &dataset));
  EXPECT_EQ(dataset.name, "untouched");
}

TEST(DatasetIoTest, LoadRejectsTruncatedPrices) {
  const MarketDataset original = SmallDataset();
  const std::string prefix = ::testing::TempDir() + "/dataset_trunc";
  ASSERT_TRUE(SaveDataset(original, prefix));
  // Truncate the prices file (keep header + one row).
  {
    CsvTable prices;
    ASSERT_TRUE(ReadCsv(prefix + ".prices.csv", &prices));
    prices.rows.resize(1);
    ASSERT_TRUE(WriteCsv(prefix + ".prices.csv", prices));
  }
  MarketDataset loaded;
  EXPECT_FALSE(LoadDataset(prefix, &loaded));
}

TEST(DatasetIoTest, LoadRejectsCorruptMeta) {
  const MarketDataset original = SmallDataset();
  const std::string prefix = ::testing::TempDir() + "/dataset_badmeta";
  ASSERT_TRUE(SaveDataset(original, prefix));
  {
    CsvTable meta;
    meta.header = {"num_periods", "num_assets", "train_end"};
    meta.rows = {{50.0, 3.0, 60.0}};  // train_end > num_periods.
    ASSERT_TRUE(WriteCsv(prefix + ".meta.csv", meta));
  }
  MarketDataset loaded;
  EXPECT_FALSE(LoadDataset(prefix, &loaded));
}

TEST(DatasetIoDeathTest, SaveRejectsIncompletePanel) {
  MarketDataset dataset;
  dataset.panel = OhlcPanel(5, 2);  // All NaN.
  EXPECT_DEATH(SaveDataset(dataset, ::testing::TempDir() + "/nan"),
               "incomplete");
}

}  // namespace
}  // namespace ppn::market
