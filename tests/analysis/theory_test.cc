#include "analysis/theory.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "market/generator.h"

namespace ppn::analysis {
namespace {

TEST(GapTest, Theorem1Formula) {
  EXPECT_DOUBLE_EQ(Theorem1Gap(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Theorem1Gap(0.1), 0.225);
}

TEST(GapTest, Theorem2Formula) {
  EXPECT_DOUBLE_EQ(Theorem2Gap(0.0, 0.0, 0.0), 0.0);
  // λ=0.1, γ=0.01, ψ=0.0025: 0.225 + 2·0.01·0.9975/1.0025.
  EXPECT_NEAR(Theorem2Gap(0.1, 0.01, 0.0025),
              0.225 + 0.02 * 0.9975 / 1.0025, 1e-12);
}

TEST(GapTest, Theorem2ShrinksWithPsi) {
  // Larger ψ tightens the γ term: gap is decreasing in ψ.
  EXPECT_GT(Theorem2Gap(0.0, 0.1, 0.0), Theorem2Gap(0.0, 0.1, 0.5));
}

TEST(GrowthRateTest, ConstantGrowth) {
  std::vector<double> curve;
  double wealth = 1.0;
  for (int t = 0; t < 100; ++t) {
    wealth *= 1.01;
    curve.push_back(wealth);
  }
  EXPECT_NEAR(GrowthRate(curve), std::log(1.01), 1e-12);
}

TEST(HindsightCrpTest, ReturnsSimplexPortfolio) {
  market::SyntheticMarketConfig config;
  config.num_assets = 4;
  config.num_periods = 300;
  config.seed = 5;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  market::OhlcPanel panel = generator.Generate();
  const std::vector<double> crp = HindsightLogOptimalCrp(panel, 1, 300);
  EXPECT_TRUE(IsOnSimplex(crp, 1e-6));
}

TEST(HindsightCrpTest, BeatsUniformOnSkewedMarket) {
  // One asset trends strongly upward: the hindsight CRP must achieve a
  // growth rate at least that of uniform CRP.
  market::OhlcPanel panel(200, 2);
  for (int64_t t = 0; t < 200; ++t) {
    const double c0 = 10.0 * std::pow(1.02, t);
    const double c1 = 10.0 * std::pow(0.998, t);
    for (int64_t a = 0; a < 2; ++a) {
      const double close = a == 0 ? c0 : c1;
      panel.SetPrice(t, a, market::kOpen, close);
      panel.SetPrice(t, a, market::kHigh, close);
      panel.SetPrice(t, a, market::kLow, close);
      panel.SetPrice(t, a, market::kClose, close);
    }
  }
  const std::vector<double> best = HindsightLogOptimalCrp(panel, 1, 200);
  const std::vector<double> uniform = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  const double rate_best = FixedPortfolioGrowthRate(panel, best, 1, 200);
  const double rate_uniform =
      FixedPortfolioGrowthRate(panel, uniform, 1, 200);
  EXPECT_GE(rate_best, rate_uniform - 1e-9);
  // And it should be close to all-in on the winner.
  EXPECT_GT(best[1], 0.9);
}

TEST(HindsightCrpTest, NearOptimalityGapOfTheorem1HoldsEmpirically) {
  // The empirically best CRP's growth rate vs a risk-penalized variant:
  // the penalized optimum must lie within 9/4·λ of the log-optimum (we
  // verify the weaker, testable direction: penalizing by λ and re-running
  // the oracle loses at most the Theorem-1 gap on this data).
  market::SyntheticMarketConfig config;
  config.num_assets = 3;
  config.num_periods = 400;
  config.seed = 17;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  market::OhlcPanel panel = generator.Generate();
  const std::vector<double> log_optimal = HindsightLogOptimalCrp(panel, 1, 400);
  const double optimal_rate =
      FixedPortfolioGrowthRate(panel, log_optimal, 1, 400);
  // Risk-penalized oracle: grid over mixes of log-optimal and cash.
  const double lambda = 0.05;
  double best_penalized_rate = -1e9;
  for (double mix = 0.0; mix <= 1.0; mix += 0.05) {
    std::vector<double> candidate(log_optimal.size());
    for (size_t i = 0; i < candidate.size(); ++i) {
      candidate[i] = mix * log_optimal[i] + (i == 0 ? 1.0 - mix : 0.0);
    }
    // Penalized objective: mean log - λ var over the range.
    std::vector<double> log_returns;
    for (int64_t t = 1; t < 400; ++t) {
      log_returns.push_back(std::log(
          Dot(candidate, market::PriceRelativesWithCash(panel, t))));
    }
    const double objective = Mean(log_returns) - lambda * Variance(log_returns);
    if (objective > best_penalized_rate) best_penalized_rate = objective;
  }
  // The penalized optimum's objective can trail the log-optimal growth
  // rate by at most the Theorem-1 gap.
  EXPECT_GE(best_penalized_rate, optimal_rate - Theorem1Gap(lambda) - 1e-9);
}

TEST(GrowthRateDeathTest, EmptyCurveAborts) {
  EXPECT_DEATH(GrowthRate({}), "PPN_CHECK");
}

}  // namespace
}  // namespace ppn::analysis
