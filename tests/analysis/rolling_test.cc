#include "analysis/rolling.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ppn::analysis {
namespace {

TEST(DrawdownSeriesTest, TracksPeaks) {
  const std::vector<double> dd = DrawdownSeries({1.5, 2.0, 1.0, 2.5});
  EXPECT_DOUBLE_EQ(dd[0], 0.0);
  EXPECT_DOUBLE_EQ(dd[1], 0.0);
  EXPECT_DOUBLE_EQ(dd[2], 0.5);
  EXPECT_DOUBLE_EQ(dd[3], 0.0);
}

TEST(DrawdownSeriesTest, ImplicitUnitStart) {
  const std::vector<double> dd = DrawdownSeries({0.8});
  EXPECT_NEAR(dd[0], 0.2, 1e-12);
}

TEST(RollingSharpeTest, ConstantReturnsGiveZero) {
  // Zero variance -> defined as 0.
  const std::vector<double> s = RollingSharpe({0.01, 0.01, 0.01, 0.01}, 2);
  for (const double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RollingSharpeTest, WarmupIsZeroThenMatchesHandComputed) {
  const std::vector<double> returns = {0.02, -0.01, 0.02, -0.01};
  const std::vector<double> s = RollingSharpe(returns, 2);
  EXPECT_DOUBLE_EQ(s[0], 0.0);  // Warm-up.
  // Window {0.02, -0.01}: mean 0.005, std 0.015 -> 1/3.
  EXPECT_NEAR(s[1], 0.005 / 0.015, 1e-9);
}

TEST(RollingVolatilityTest, MatchesHandComputed) {
  const std::vector<double> v = RollingVolatility({0.02, -0.01, 0.02}, 2);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_NEAR(v[1], 0.015, 1e-12);
  EXPECT_NEAR(v[2], 0.015, 1e-12);
}

TEST(RollingTest, WindowLargerThanSeriesStaysZero) {
  const std::vector<double> s = RollingSharpe({0.01, 0.02}, 5);
  for (const double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RollingDeathTest, WindowOneAborts) {
  EXPECT_DEATH(RollingSharpe({0.1}, 1), "PPN_CHECK");
  EXPECT_DEATH(RollingVolatility({0.1}, 1), "PPN_CHECK");
}

TEST(NoTradeSpansTest, FindsRuns) {
  const std::vector<int64_t> spans =
      NoTradeSpans({0.0, 0.0, 0.5, 0.0, 0.5, 0.0, 0.0, 0.0}, 1e-3);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0], 2);
  EXPECT_EQ(spans[1], 1);
  EXPECT_EQ(spans[2], 3);
}

TEST(NoTradeSpansTest, AllTradingGivesEmpty) {
  EXPECT_TRUE(NoTradeSpans({0.5, 0.4}, 1e-3).empty());
}

TEST(LongestUnderwaterTest, CountsBelowPeakStretch) {
  // Peak 2.0 at t=1; below it for 3 periods, recovers at t=5.
  EXPECT_EQ(LongestUnderwaterSpell({1.5, 2.0, 1.8, 1.9, 1.99, 2.2, 2.1}), 3);
}

TEST(LongestUnderwaterTest, MonotoneCurveIsZero) {
  EXPECT_EQ(LongestUnderwaterSpell({1.1, 1.2, 1.3}), 0);
}

}  // namespace
}  // namespace ppn::analysis
