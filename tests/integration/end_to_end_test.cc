#include <cmath>

#include <gtest/gtest.h>

#include "backtest/backtester.h"
#include "common/math_utils.h"
#include "market/presets.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"
#include "strategies/registry.h"

namespace ppn {
namespace {

// Shared smoke-scale dataset: built once, reused across tests.
const market::MarketDataset& SmokeDataset() {
  static const market::MarketDataset* dataset = [] {
    auto* d = new market::MarketDataset(
        market::MakeDataset(market::DatasetId::kCryptoA, RunScale::kSmoke));
    return d;
  }();
  return *dataset;
}

core::PolicyConfig SmokePolicyConfig(core::PolicyVariant variant,
                                     int64_t assets) {
  core::PolicyConfig config;
  config.variant = variant;
  config.num_assets = assets;
  config.window = 12;
  config.lstm_hidden = 6;
  config.block1_channels = 4;
  config.block2_channels = 6;
  config.seed = 11;
  return config;
}

// Trains a variant briefly and backtests it on the smoke dataset.
backtest::Metrics TrainAndEvaluate(core::PolicyVariant variant,
                                   double gamma, double lambda,
                                   double cost_rate, int steps = 120) {
  const market::MarketDataset& dataset = SmokeDataset();
  Rng init(42);
  Rng dropout(43);
  auto policy = core::MakePolicy(
      SmokePolicyConfig(variant, dataset.panel.num_assets()), &init, &dropout);
  core::TrainerConfig tc;
  tc.batch_size = 16;
  tc.steps = steps;
  tc.seed = 7;
  tc.reward.gamma = gamma;
  tc.reward.lambda = lambda;
  tc.reward.cost_rate = cost_rate;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, tc);
  trainer.Train();
  core::PolicyStrategy strategy(policy.get(), core::VariantName(variant));
  return backtest::ComputeMetrics(
      backtest::RunOnTestRange(&strategy, dataset, cost_rate));
}

TEST(EndToEndTest, FullPipelineProducesFiniteMetrics) {
  const backtest::Metrics metrics = TrainAndEvaluate(
      core::PolicyVariant::kPpn, 1e-3, 1e-4, 0.0025);
  EXPECT_TRUE(std::isfinite(metrics.apv));
  EXPECT_GT(metrics.apv, 0.0);
  EXPECT_GE(metrics.turnover, 0.0);
  EXPECT_LE(metrics.mdd_pct, 100.0);
}

TEST(EndToEndTest, LargeGammaSuppressesTurnover) {
  // The paper's Table 6 shape: a strongly constrained policy must trade
  // far less than an unconstrained one.
  const backtest::Metrics aggressive = TrainAndEvaluate(
      core::PolicyVariant::kPpn, 0.0, 1e-4, 0.0025, /*steps=*/250);
  const backtest::Metrics passive = TrainAndEvaluate(
      core::PolicyVariant::kPpn, 0.5, 1e-4, 0.0025, /*steps=*/250);
  EXPECT_LT(passive.turnover, aggressive.turnover);
}

TEST(EndToEndTest, ClassicBaselinesRunOnPresetDataset) {
  const market::MarketDataset& dataset = SmokeDataset();
  for (const std::string& name : strategies::ClassicBaselineNames()) {
    auto strategy = strategies::MakeStrategy({.name = name}, dataset);
    const backtest::BacktestRecord record =
        backtest::RunOnTestRange(strategy.get(), dataset, 0.0025);
    EXPECT_GT(record.wealth_curve.back(), 0.0) << name;
  }
}

TEST(EndToEndTest, AllVariantsSurviveTrainingAndBacktest) {
  for (const core::PolicyVariant variant : core::Table4Variants()) {
    const backtest::Metrics metrics =
        TrainAndEvaluate(variant, 1e-3, 1e-4, 0.0025, /*steps=*/25);
    EXPECT_TRUE(std::isfinite(metrics.apv)) << core::VariantName(variant);
  }
}

TEST(EndToEndTest, SavedPolicyReproducesDecisions) {
  const market::MarketDataset& dataset = SmokeDataset();
  const int64_t m = dataset.panel.num_assets();
  Rng init(42);
  Rng dropout(43);
  auto policy = core::MakePolicy(
      SmokePolicyConfig(core::PolicyVariant::kPpn, m), &init, &dropout);
  core::TrainerConfig tc;
  tc.batch_size = 16;
  tc.steps = 10;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, tc);
  trainer.Train();
  const std::string path = ::testing::TempDir() + "/ppn_weights.txt";
  ASSERT_TRUE(policy->SaveParameters(path));

  Rng init2(999);
  Rng dropout2(998);
  auto restored = core::MakePolicy(
      SmokePolicyConfig(core::PolicyVariant::kPpn, m), &init2, &dropout2);
  ASSERT_TRUE(restored->LoadParameters(path));

  core::PolicyStrategy s1(policy.get(), "orig");
  core::PolicyStrategy s2(restored.get(), "restored");
  const backtest::BacktestRecord r1 =
      backtest::RunOnTestRange(&s1, dataset, 0.0025);
  const backtest::BacktestRecord r2 =
      backtest::RunOnTestRange(&s2, dataset, 0.0025);
  ASSERT_EQ(r1.actions.size(), r2.actions.size());
  for (size_t t = 0; t < r1.actions.size(); ++t) {
    for (size_t i = 0; i < r1.actions[t].size(); ++i) {
      EXPECT_NEAR(r1.actions[t][i], r2.actions[t][i], 1e-6);
    }
  }
}

}  // namespace
}  // namespace ppn
