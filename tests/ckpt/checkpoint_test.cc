#include "ckpt/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ppn::ckpt {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/ckpt_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void WriteSimpleCheckpoint(const std::string& path, int64_t payload) {
  CheckpointWriter writer(path);
  writer.BeginSection("data");
  writer.writer().WriteI64(payload);
  std::string error;
  ASSERT_TRUE(writer.Commit(&error)) << error;
}

/// Reads the "data" section written by WriteSimpleCheckpoint.
bool ReadSimpleCheckpoint(const std::string& path, int64_t* payload,
                          std::string* error) {
  CheckpointReader reader;
  if (!reader.Open(path, error)) return false;
  if (!reader.EnterSection("data", error)) return false;
  if (!reader.reader().ReadI64(payload)) {
    *error = "short read";
    return false;
  }
  return reader.Finish(error);
}

TEST(CheckpointTest, RoundTrip) {
  const std::string path = FreshDir("roundtrip") + "/x.ckpt";
  WriteSimpleCheckpoint(path, 1234);
  int64_t payload = 0;
  std::string error;
  ASSERT_TRUE(ReadSimpleCheckpoint(path, &payload, &error)) << error;
  EXPECT_EQ(payload, 1234);
}

TEST(CheckpointTest, NoTempFileLeftBehind) {
  const std::string dir = FreshDir("notmp");
  WriteSimpleCheckpoint(dir + "/x.ckpt", 1);
  EXPECT_TRUE(std::filesystem::exists(dir + "/x.ckpt"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/x.ckpt.tmp"));
}

TEST(CheckpointTest, UncommittedWriterLeavesTargetUntouched) {
  const std::string dir = FreshDir("uncommitted");
  const std::string path = dir + "/x.ckpt";
  WriteSimpleCheckpoint(path, 7);
  {
    CheckpointWriter writer(path);
    writer.BeginSection("data");
    writer.writer().WriteI64(999);
    // No Commit: simulates a crash mid-write.
  }
  int64_t payload = 0;
  std::string error;
  ASSERT_TRUE(ReadSimpleCheckpoint(path, &payload, &error)) << error;
  EXPECT_EQ(payload, 7);  // The previous checkpoint survives intact.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointTest, FlippedByteFailsCrc) {
  const std::string path = FreshDir("flip") + "/x.ckpt";
  WriteSimpleCheckpoint(path, 42);
  // Flip one payload byte in place.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(14);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(14);
    byte ^= 0x01;
    file.write(&byte, 1);
  }
  CheckpointReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST(CheckpointTest, TruncationDetected) {
  const std::string path = FreshDir("trunc") + "/x.ckpt";
  WriteSimpleCheckpoint(path, 42);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 3);
  CheckpointReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointTest, TruncationToBelowHeaderDetected) {
  const std::string path = FreshDir("tiny") + "/x.ckpt";
  WriteSimpleCheckpoint(path, 42);
  std::filesystem::resize_file(path, 5);
  CheckpointReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("too short"), std::string::npos) << error;
}

TEST(CheckpointTest, BadMagicDetected) {
  const std::string path = FreshDir("magic") + "/x.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPTxxxxxxxxxxxxxxxxxxxx";
  }
  CheckpointReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(CheckpointTest, MissingFileReportsOpenError) {
  CheckpointReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(FreshDir("missing") + "/absent.ckpt", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(CheckpointTest, WrongSectionNameReported) {
  const std::string path = FreshDir("section") + "/x.ckpt";
  WriteSimpleCheckpoint(path, 42);
  CheckpointReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_FALSE(reader.EnterSection("other", &error));
  EXPECT_NE(error.find("expected section 'other'"), std::string::npos)
      << error;
}

TEST(CheckpointTest, FinishRejectsTrailingBytes) {
  const std::string path = FreshDir("trailing") + "/x.ckpt";
  {
    CheckpointWriter writer(path);
    writer.BeginSection("data");
    writer.writer().WriteI64(1);
    writer.writer().WriteI64(2);  // Extra payload the reader won't consume.
    std::string error;
    ASSERT_TRUE(writer.Commit(&error)) << error;
  }
  CheckpointReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  ASSERT_TRUE(reader.EnterSection("data", &error)) << error;
  int64_t value = 0;
  ASSERT_TRUE(reader.reader().ReadI64(&value));
  EXPECT_FALSE(reader.Finish(&error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(CheckpointerTest, RetainsNewestK) {
  Checkpointer checkpointer({FreshDir("retain"), /*retain=*/2});
  std::string error;
  for (int64_t step = 1; step <= 5; ++step) {
    ASSERT_TRUE(checkpointer.WriteSnapshot(
        step,
        [step](CheckpointWriter* writer) {
          writer->BeginSection("data");
          writer->writer().WriteI64(step);
        },
        &error))
        << error;
  }
  EXPECT_EQ(checkpointer.ListSnapshots(), (std::vector<int64_t>{4, 5}));
}

TEST(CheckpointerTest, RestoreLatestPicksNewest) {
  Checkpointer checkpointer({FreshDir("latest"), 3});
  std::string error;
  for (int64_t step : {10, 20, 30}) {
    ASSERT_TRUE(checkpointer.WriteSnapshot(
        step,
        [step](CheckpointWriter* writer) {
          writer->BeginSection("data");
          writer->writer().WriteI64(step * 7);
        },
        &error))
        << error;
  }
  int64_t restored_step = 0;
  int64_t payload = 0;
  ASSERT_TRUE(checkpointer.RestoreLatest(
      [&payload](CheckpointReader* reader, std::string* load_error) {
        if (!reader->EnterSection("data", load_error)) return false;
        if (!reader->reader().ReadI64(&payload)) return false;
        return reader->Finish(load_error);
      },
      &restored_step, &error))
      << error;
  EXPECT_EQ(restored_step, 30);
  EXPECT_EQ(payload, 210);
}

TEST(CheckpointerTest, FallsBackToOlderIntactSnapshot) {
  Checkpointer checkpointer({FreshDir("fallback"), 3});
  std::string error;
  for (int64_t step : {1, 2}) {
    ASSERT_TRUE(checkpointer.WriteSnapshot(
        step,
        [step](CheckpointWriter* writer) {
          writer->BeginSection("data");
          writer->writer().WriteI64(step);
        },
        &error))
        << error;
  }
  // Corrupt the newest snapshot; restore must fall back to step 1.
  const std::string newest = checkpointer.SnapshotPath(2);
  std::filesystem::resize_file(newest,
                               std::filesystem::file_size(newest) - 2);
  int64_t restored_step = 0;
  int64_t payload = 0;
  ASSERT_TRUE(checkpointer.RestoreLatest(
      [&payload](CheckpointReader* reader, std::string* load_error) {
        if (!reader->EnterSection("data", load_error)) return false;
        if (!reader->reader().ReadI64(&payload)) return false;
        return reader->Finish(load_error);
      },
      &restored_step, &error))
      << error;
  EXPECT_EQ(restored_step, 1);
  EXPECT_EQ(payload, 1);
}

TEST(CheckpointerTest, EmptyDirReportsNoSnapshots) {
  Checkpointer checkpointer({FreshDir("empty"), 3});
  int64_t step = 0;
  std::string error;
  EXPECT_FALSE(checkpointer.RestoreLatest(
      [](CheckpointReader*, std::string*) { return true; }, &step, &error));
  EXPECT_NE(error.find("no snapshots"), std::string::npos) << error;
}

TEST(CheckpointerTest, ForeignFilesInDirIgnored) {
  const std::string dir = FreshDir("foreign");
  { std::ofstream(dir + "/notes.txt") << "not a checkpoint"; }
  { std::ofstream(dir + "/step-abc.ckpt") << "bad digits"; }
  Checkpointer checkpointer({dir, 3});
  EXPECT_TRUE(checkpointer.ListSnapshots().empty());
}

}  // namespace
}  // namespace ppn::ckpt
