// Kill/resume bit-identity: training N steps, checkpointing mid-run,
// restoring into FRESH objects, and continuing must reproduce the
// uninterrupted run's final parameters, PVM, RNG-dependent reward
// sequence, and convergence tail — bit for bit. This is the checkpoint
// subsystem's core contract (exact state capture: parameters, Adam
// moments, RNG streams, PVM, step counters).

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "market/generator.h"
#include "ppn/ddpg.h"
#include "ppn/trainer.h"

namespace ppn::core {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/resume_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

market::MarketDataset SmallDataset() {
  market::SyntheticMarketConfig config;
  config.num_assets = 4;
  config.num_periods = 400;
  config.seed = 9;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.GenerateDataset("tiny", 0.8);
}

PolicyConfig SmallPolicyConfig(int64_t assets) {
  PolicyConfig config;
  config.variant = PolicyVariant::kPpn;
  config.num_assets = assets;
  config.window = 10;
  config.lstm_hidden = 4;
  config.block1_channels = 3;
  config.block2_channels = 4;
  config.seed = 3;
  return config;
}

TrainerConfig SmallTrainerConfig() {
  TrainerConfig config;
  config.batch_size = 8;
  config.steps = 30;
  config.seed = 5;
  return config;
}

/// Bitwise parameter comparison (memcmp on the float payloads, so NaNs
/// and signed zeros would also be caught).
void ExpectBitIdenticalParameters(const nn::Module& a, const nn::Module& b) {
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    SCOPED_TRACE("parameter " + std::to_string(i));
    ASSERT_EQ(pa[i]->numel(), pb[i]->numel());
    EXPECT_EQ(std::memcmp(pa[i]->value().Data(), pb[i]->value().Data(),
                          sizeof(float) * pa[i]->numel()),
              0);
  }
}

TEST(TrainerResumeTest, ResumedRunIsBitIdenticalToUninterrupted) {
  const market::MarketDataset dataset = SmallDataset();
  const std::string ckpt_path = FreshDir("ppn") + "/mid.ckpt";
  constexpr int64_t kInterruptAt = 13;

  // Uninterrupted reference run.
  Rng ref_init(1);
  Rng ref_dropout(2);
  auto ref_policy = MakePolicy(SmallPolicyConfig(4), &ref_init, &ref_dropout);
  PolicyGradientTrainer ref_trainer(ref_policy.get(), dataset,
                                    SmallTrainerConfig());
  std::vector<double> ref_rewards;
  while (ref_trainer.steps_done() < SmallTrainerConfig().steps) {
    ref_rewards.push_back(ref_trainer.TrainStep());
  }

  // Interrupted run: train to the interrupt point, checkpoint, and drop
  // everything (simulating a kill).
  {
    Rng init(1);
    Rng dropout(2);
    auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
    PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
    std::vector<double> rewards;
    for (int64_t step = 0; step < kInterruptAt; ++step) {
      rewards.push_back(trainer.TrainStep());
    }
    // The pre-interrupt prefix itself must match the reference.
    for (int64_t step = 0; step < kInterruptAt; ++step) {
      EXPECT_EQ(rewards[step], ref_rewards[step]) << "pre-kill step " << step;
    }
    ckpt::CheckpointWriter writer(ckpt_path);
    trainer.SaveState(&writer, &dropout);
    std::string error;
    ASSERT_TRUE(writer.Commit(&error)) << error;
  }

  // Fresh process simulation: new RNGs, new policy, new trainer — then
  // restore and finish the run.
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
  // Desynchronize the fresh dropout stream on purpose: restore must
  // overwrite it with the checkpointed state.
  dropout.Uniform();
  ckpt::CheckpointReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(ckpt_path, &error)) << error;
  ASSERT_TRUE(trainer.LoadState(&reader, &dropout, &error)) << error;
  EXPECT_EQ(trainer.steps_done(), kInterruptAt);

  std::vector<double> resumed_rewards;
  while (trainer.steps_done() < SmallTrainerConfig().steps) {
    resumed_rewards.push_back(trainer.TrainStep());
  }
  ASSERT_EQ(resumed_rewards.size(), ref_rewards.size() - kInterruptAt);
  for (size_t i = 0; i < resumed_rewards.size(); ++i) {
    EXPECT_EQ(resumed_rewards[i], ref_rewards[kInterruptAt + i])
        << "post-resume step " << i;
  }
  EXPECT_EQ(trainer.tail_mean(), ref_trainer.tail_mean());
  ExpectBitIdenticalParameters(*policy, *ref_policy);
  // PVM contents must match exactly as well.
  for (int64_t t = 0; t < trainer.pvm().num_periods(); ++t) {
    EXPECT_EQ(trainer.pvm().Get(t), ref_trainer.pvm().Get(t)) << "t=" << t;
  }
}

TEST(TrainerResumeTest, LoadRejectsConfigMismatch) {
  const market::MarketDataset dataset = SmallDataset();
  const std::string ckpt_path = FreshDir("mismatch") + "/mid.ckpt";
  {
    Rng init(1);
    Rng dropout(2);
    auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
    PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
    trainer.TrainStep();
    ckpt::CheckpointWriter writer(ckpt_path);
    trainer.SaveState(&writer, &dropout);
    std::string error;
    ASSERT_TRUE(writer.Commit(&error)) << error;
  }
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  TrainerConfig other = SmallTrainerConfig();
  other.seed = 6;  // Different stream: the checkpoint is for another run.
  PolicyGradientTrainer trainer(policy.get(), dataset, other);
  ckpt::CheckpointReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(ckpt_path, &error)) << error;
  EXPECT_FALSE(trainer.LoadState(&reader, &dropout, &error));
  EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

TEST(TrainerResumeTest, LoadRejectsMissingDropoutStream) {
  const market::MarketDataset dataset = SmallDataset();
  const std::string ckpt_path = FreshDir("dropout") + "/mid.ckpt";
  {
    Rng init(1);
    Rng dropout(2);
    auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
    PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
    ckpt::CheckpointWriter writer(ckpt_path);
    trainer.SaveState(&writer, &dropout);
    std::string error;
    ASSERT_TRUE(writer.Commit(&error)) << error;
  }
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
  ckpt::CheckpointReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(ckpt_path, &error)) << error;
  EXPECT_FALSE(trainer.LoadState(&reader, /*dropout_rng=*/nullptr, &error));
  EXPECT_NE(error.find("dropout"), std::string::npos) << error;
}

TEST(DdpgResumeTest, ResumedRunIsBitIdenticalToUninterrupted) {
  const market::MarketDataset dataset = [] {
    market::SyntheticMarketConfig config;
    config.num_assets = 3;
    config.num_periods = 250;
    config.seed = 31;
    config.late_listing_fraction = 0.0;
    market::SyntheticMarketGenerator generator(config);
    return generator.GenerateDataset("ddpg-tiny", 0.8);
  }();
  PolicyConfig policy_config = SmallPolicyConfig(3);
  policy_config.window = 8;
  DdpgConfig ddpg_config;
  ddpg_config.steps = 16;
  ddpg_config.warmup = 6;
  ddpg_config.batch_size = 4;
  ddpg_config.seed = 7;
  const std::string ckpt_path = FreshDir("ddpg") + "/mid.ckpt";
  constexpr int64_t kInterruptAt = 7;

  // Uninterrupted reference run.
  Rng ref_init(1);
  Rng ref_dropout(2);
  auto ref_actor = MakePolicy(policy_config, &ref_init, &ref_dropout);
  DdpgTrainer ref_trainer(ref_actor.get(), dataset, ddpg_config);
  std::vector<double> ref_rewards;
  while (ref_trainer.steps_done() < ddpg_config.steps) {
    ref_rewards.push_back(ref_trainer.TrainStep());
  }

  // Interrupted run: stop past warmup (so Adam moments, target nets, and
  // the replay buffer all carry real state), checkpoint, drop everything.
  {
    Rng init(1);
    Rng dropout(2);
    auto actor = MakePolicy(policy_config, &init, &dropout);
    DdpgTrainer trainer(actor.get(), dataset, ddpg_config);
    for (int64_t step = 0; step < kInterruptAt; ++step) trainer.TrainStep();
    ckpt::CheckpointWriter writer(ckpt_path);
    trainer.SaveState(&writer, &dropout);
    std::string error;
    ASSERT_TRUE(writer.Commit(&error)) << error;
  }

  // Fresh objects, restore, finish.
  Rng init(1);
  Rng dropout(2);
  auto actor = MakePolicy(policy_config, &init, &dropout);
  DdpgTrainer trainer(actor.get(), dataset, ddpg_config);
  ckpt::CheckpointReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(ckpt_path, &error)) << error;
  ASSERT_TRUE(trainer.LoadState(&reader, &dropout, &error)) << error;
  EXPECT_EQ(trainer.steps_done(), kInterruptAt);

  std::vector<double> resumed_rewards;
  while (trainer.steps_done() < ddpg_config.steps) {
    resumed_rewards.push_back(trainer.TrainStep());
  }
  ASSERT_EQ(resumed_rewards.size(), ref_rewards.size() - kInterruptAt);
  for (size_t i = 0; i < resumed_rewards.size(); ++i) {
    EXPECT_EQ(resumed_rewards[i], ref_rewards[kInterruptAt + i])
        << "post-resume step " << i;
  }
  EXPECT_EQ(trainer.tail_mean(), ref_trainer.tail_mean());
  // The actor (including every Polyak-averaged target-network effect baked
  // into later updates) must land on identical bits.
  ExpectBitIdenticalParameters(*actor, *ref_actor);
}

}  // namespace
}  // namespace ppn::core
