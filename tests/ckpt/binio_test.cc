#include "ckpt/binio.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ppn::ckpt {
namespace {

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32Of(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string text = "incremental CRC must equal one-shot CRC";
  Crc32 crc;
  crc.Update(text.data(), 10);
  crc.Update(text.data() + 10, text.size() - 10);
  EXPECT_EQ(crc.value(), Crc32Of(text.data(), text.size()));
}

TEST(Crc32Test, EmptyInput) {
  EXPECT_EQ(Crc32Of(nullptr, 0), 0x00000000u);
}

TEST(BinIoTest, ScalarRoundTrip) {
  std::ostringstream out;
  BinWriter writer(&out);
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI64(-42);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteString("hello");
  ASSERT_TRUE(writer.ok());

  const std::string bytes = out.str();
  EXPECT_EQ(writer.bytes_written(), bytes.size());
  BinReader reader(bytes.data(), bytes.size());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0.0f;
  double f64 = 0.0;
  std::string text;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.ReadI64(&i64));
  EXPECT_TRUE(reader.ReadF32(&f32));
  EXPECT_TRUE(reader.ReadF64(&f64));
  EXPECT_TRUE(reader.ReadString(&text));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(text, "hello");
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.failed());
}

TEST(BinIoTest, NonFiniteFloatsRoundTripExactly) {
  std::ostringstream out;
  BinWriter writer(&out);
  writer.WriteF32(std::numeric_limits<float>::quiet_NaN());
  writer.WriteF32(std::numeric_limits<float>::infinity());
  writer.WriteF32(-std::numeric_limits<float>::infinity());
  writer.WriteF64(std::numeric_limits<double>::quiet_NaN());
  const std::string bytes = out.str();

  BinReader reader(bytes.data(), bytes.size());
  float f = 0.0f;
  EXPECT_TRUE(reader.ReadF32(&f));
  EXPECT_TRUE(std::isnan(f));
  EXPECT_TRUE(reader.ReadF32(&f));
  EXPECT_EQ(f, std::numeric_limits<float>::infinity());
  EXPECT_TRUE(reader.ReadF32(&f));
  EXPECT_EQ(f, -std::numeric_limits<float>::infinity());
  double d = 0.0;
  EXPECT_TRUE(reader.ReadF64(&d));
  EXPECT_TRUE(std::isnan(d));
}

TEST(BinIoTest, ArrayRoundTrip) {
  const std::vector<float> f32s = {1.0f, -2.5f, 3.25f};
  const std::vector<double> f64s = {-0.125, 9.75};
  std::ostringstream out;
  BinWriter writer(&out);
  writer.WriteF32Array(f32s.data(), static_cast<int64_t>(f32s.size()));
  writer.WriteF64Array(f64s.data(), static_cast<int64_t>(f64s.size()));
  const std::string bytes = out.str();

  BinReader reader(bytes.data(), bytes.size());
  std::vector<float> f32_in(f32s.size());
  std::vector<double> f64_in(f64s.size());
  EXPECT_TRUE(
      reader.ReadF32Array(f32_in.data(), static_cast<int64_t>(f32s.size())));
  EXPECT_TRUE(
      reader.ReadF64Array(f64_in.data(), static_cast<int64_t>(f64s.size())));
  EXPECT_EQ(f32_in, f32s);
  EXPECT_EQ(f64_in, f64s);
}

TEST(BinIoTest, ReaderFailsOnExhaustionAndStaysFailed) {
  const char bytes[4] = {1, 2, 3, 4};
  BinReader reader(bytes, sizeof(bytes));
  uint64_t value = 0;
  EXPECT_FALSE(reader.ReadU64(&value));  // 8 bytes from a 4-byte buffer.
  EXPECT_TRUE(reader.failed());
  uint8_t byte = 0;
  // Sticky failure: even an in-bounds read refuses after a failure.
  EXPECT_FALSE(reader.ReadU8(&byte));
}

TEST(BinIoTest, ReadStringRejectsOversizedLength) {
  // A (huge length, tiny payload) prefix must not trigger a giant resize.
  std::ostringstream out;
  BinWriter writer(&out);
  writer.WriteU64(1ull << 40);
  writer.WriteU8('x');
  const std::string bytes = out.str();
  BinReader reader(bytes.data(), bytes.size());
  std::string text;
  EXPECT_FALSE(reader.ReadString(&text));
  EXPECT_TRUE(reader.failed());
}

TEST(BinIoTest, WriterTracksCrcOfWrittenBytes) {
  std::ostringstream out;
  BinWriter writer(&out);
  writer.WriteU32(0x12345678u);
  writer.WriteString("crc");
  const std::string bytes = out.str();
  EXPECT_EQ(writer.crc(), Crc32Of(bytes.data(), bytes.size()));
}

}  // namespace
}  // namespace ppn::ckpt
