// Sweep-level checkpoint/resume: a killed sweep restarted with the same
// spec and checkpoint dir recomputes only the unfinished cells, and the
// assembled results are bit-identical to an uncheckpointed run — cell
// seeds derive from cell keys, so a restored cell and a recomputed cell
// carry the same bits. Also exercises corruption handling (a damaged cell
// file is ignored and recomputed) and the keep_records upgrade path.

#include "exec/experiment.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ppn::exec {
namespace {

using strategies::StrategySpec;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sweep_resume_" + name;
  std::filesystem::remove_all(dir);
  return dir;  // Created by the runner.
}

ExperimentSpec SmallClassicSpec() {
  ExperimentSpec spec;
  spec.title = "ckpt sweep test";
  spec.scale = RunScale::kSmoke;
  spec.datasets = {market::DatasetId::kCryptoA};
  spec.strategies = {StrategySpec{.name = "UBAH"}, StrategySpec{.name = "CRP"},
                     StrategySpec{.name = "OLMAR"}};
  spec.cost_rates = {0.0, 0.0025};
  spec.seeds = {1, 7};
  return spec;
}

void ExpectIdenticalRows(const std::vector<CellResult>& a,
                         const std::vector<CellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(a[i].key.strategy, b[i].key.strategy);
    EXPECT_EQ(a[i].key.dataset, b[i].key.dataset);
    EXPECT_EQ(a[i].key.cost_rate, b[i].key.cost_rate);
    EXPECT_EQ(a[i].key.seed, b[i].key.seed);
    EXPECT_EQ(a[i].derived_seed, b[i].derived_seed);
    // Bitwise equality is the contract, not near-equality.
    EXPECT_EQ(a[i].metrics.apv, b[i].metrics.apv);
    EXPECT_EQ(a[i].metrics.sr_pct, b[i].metrics.sr_pct);
    EXPECT_EQ(a[i].metrics.std_pct, b[i].metrics.std_pct);
    EXPECT_EQ(a[i].metrics.mdd_pct, b[i].metrics.mdd_pct);
    EXPECT_EQ(a[i].metrics.cr, b[i].metrics.cr);
    EXPECT_EQ(a[i].metrics.turnover, b[i].metrics.turnover);
  }
}

size_t CountCellCheckpoints(const std::string& dir) {
  size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") ++count;
  }
  return count;
}

TEST(SweepResumeTest, CheckpointedRunMatchesUncheckpointed) {
  const ExperimentSpec plain = SmallClassicSpec();
  ExperimentSpec checkpointed = plain;
  checkpointed.checkpoint_dir = FreshDir("match");
  const ExperimentRunner runner(2);
  const std::vector<CellResult> expected = runner.Run(plain);
  const std::vector<CellResult> actual = runner.Run(checkpointed);
  ExpectIdenticalRows(expected, actual);
  EXPECT_EQ(CountCellCheckpoints(checkpointed.checkpoint_dir),
            expected.size());
}

TEST(SweepResumeTest, RestartRecomputesOnlyUnfinishedCells) {
  const std::string dir = FreshDir("restart");
  // "Killed" first attempt: only a subset of strategies finished.
  ExperimentSpec partial = SmallClassicSpec();
  partial.checkpoint_dir = dir;
  partial.strategies = {StrategySpec{.name = "UBAH"}};
  const ExperimentRunner runner(2);
  runner.Run(partial);
  const size_t finished = CountCellCheckpoints(dir);
  ASSERT_GT(finished, 0u);

  // Restart with the FULL spec over the same dir: finished cells restore,
  // the rest run fresh. Results must equal a clean uncheckpointed run.
  ExperimentSpec full = SmallClassicSpec();
  full.checkpoint_dir = dir;
  const std::vector<CellResult> resumed = runner.Run(full);
  const std::vector<CellResult> reference = runner.Run(SmallClassicSpec());
  ExpectIdenticalRows(reference, resumed);
  EXPECT_EQ(CountCellCheckpoints(dir), reference.size());
}

TEST(SweepResumeTest, SecondRunRestoresEveryCell) {
  ExperimentSpec spec = SmallClassicSpec();
  spec.checkpoint_dir = FreshDir("warm");
  const ExperimentRunner runner(2);
  const std::vector<CellResult> first = runner.Run(spec);
  const std::vector<CellResult> second = runner.Run(spec);
  ExpectIdenticalRows(first, second);
  // A fully warm rerun restores rather than recomputes; the stored wall
  // time is echoed back, making the rows identical in every field.
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].wall_seconds, second[i].wall_seconds);
  }
}

TEST(SweepResumeTest, CorruptCellCheckpointIsRecomputed) {
  ExperimentSpec spec = SmallClassicSpec();
  spec.checkpoint_dir = FreshDir("corrupt");
  const ExperimentRunner runner(1);
  const std::vector<CellResult> reference = runner.Run(spec);
  // Flip a byte in every cell file; the CRC check must reject them all and
  // the rerun must silently recompute identical results.
  for (const auto& entry :
       std::filesystem::directory_iterator(spec.checkpoint_dir)) {
    std::fstream file(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(16);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(16);
    byte ^= 0x40;
    file.write(&byte, 1);
  }
  const std::vector<CellResult> recomputed = runner.Run(spec);
  ExpectIdenticalRows(reference, recomputed);
}

TEST(SweepResumeTest, RecordRequestForcesRecomputeWhenNotStored) {
  ExperimentSpec spec = SmallClassicSpec();
  spec.checkpoint_dir = FreshDir("records");
  const ExperimentRunner runner(1);
  runner.Run(spec);  // keep_records = false: no records in the cell files.
  spec.keep_records = true;
  const std::vector<CellResult> with_records = runner.Run(spec);
  for (const CellResult& row : with_records) {
    EXPECT_FALSE(row.record.wealth_curve.empty())
        << row.key.strategy << " should have been recomputed with a record";
  }
  // And a further rerun restores the records from the upgraded files.
  const std::vector<CellResult> restored = runner.Run(spec);
  ASSERT_EQ(restored.size(), with_records.size());
  for (size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].record.wealth_curve,
              with_records[i].record.wealth_curve);
    EXPECT_EQ(restored[i].record.actions, with_records[i].record.actions);
  }
}

TEST(SweepResumeTest, ResumeIsBitIdenticalAcrossWorkerCounts) {
  // The killed-sweep restart must preserve the key-derived-seed guarantee:
  // restore on 1 worker, restore on 4 workers, fresh on 4 — all identical.
  const std::string dir = FreshDir("workers");
  ExperimentSpec partial = SmallClassicSpec();
  partial.checkpoint_dir = dir;
  partial.strategies = {StrategySpec{.name = "CRP"}};
  ExperimentRunner(4).Run(partial);

  ExperimentSpec full = SmallClassicSpec();
  full.checkpoint_dir = dir;
  const std::vector<CellResult> one = ExperimentRunner(1).Run(full);
  const std::vector<CellResult> four = ExperimentRunner(4).Run(full);
  const std::vector<CellResult> fresh = ExperimentRunner(4).Run(SmallClassicSpec());
  ExpectIdenticalRows(one, four);
  ExpectIdenticalRows(fresh, one);
}

}  // namespace
}  // namespace ppn::exec
