#include "ppn/ddpg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "backtest/backtester.h"
#include "common/math_utils.h"
#include "market/generator.h"
#include "ppn/strategy_adapter.h"

namespace ppn::core {
namespace {

market::MarketDataset SmallDataset() {
  market::SyntheticMarketConfig config;
  config.num_assets = 3;
  config.num_periods = 250;
  config.seed = 31;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.GenerateDataset("ddpg-tiny", 0.8);
}

PolicyConfig SmallPolicyConfig() {
  PolicyConfig config;
  config.variant = PolicyVariant::kPpn;
  config.num_assets = 3;
  config.window = 8;
  config.lstm_hidden = 4;
  config.block1_channels = 3;
  config.block2_channels = 4;
  config.seed = 3;
  return config;
}

TEST(CriticTest, OutputShape) {
  Rng init(1);
  CriticNetwork critic(SmallPolicyConfig(), &init);
  Tensor windows({2, 3, 8, 4});
  Tensor prev = Tensor::Full({2, 3}, 1.0f / 3);
  Tensor actions = Tensor::Full({2, 4}, 0.25f);
  ag::Var q = critic.Forward(ag::Constant(windows), ag::Constant(prev),
                             ag::Constant(actions));
  EXPECT_EQ(q->value().shape(), (std::vector<int64_t>{2, 1}));
}

TEST(CriticTest, ActionInfluencesQ) {
  Rng init(1);
  CriticNetwork critic(SmallPolicyConfig(), &init);
  Rng data(4);
  Tensor windows = RandomNormal({1, 3, 8, 4}, 1.0f, 0.05f, &data);
  Tensor prev = Tensor::Full({1, 3}, 1.0f / 3);
  Tensor a1 = Tensor::Full({1, 4}, 0.25f);
  Tensor a2({1, 4}, {1.0f, 0.0f, 0.0f, 0.0f});
  ag::Var q1 = critic.Forward(ag::Constant(windows), ag::Constant(prev),
                              ag::Constant(a1));
  ag::Var q2 = critic.Forward(ag::Constant(windows), ag::Constant(prev),
                              ag::Constant(a2));
  EXPECT_NE(q1->value()[0], q2->value()[0]);
}

TEST(CriticTest, GradientFlowsToActionInput) {
  // The actor update depends on dQ/da being nonzero.
  Rng init(1);
  CriticNetwork critic(SmallPolicyConfig(), &init);
  Rng data(4);
  Tensor windows = RandomNormal({1, 3, 8, 4}, 1.0f, 0.05f, &data);
  ag::Var actions = ag::Parameter(Tensor::Full({1, 4}, 0.25f));
  ag::Var q = critic.Forward(ag::Constant(windows),
                             ag::Constant(Tensor::Full({1, 3}, 1.0f / 3)),
                             actions);
  ag::Backward(ag::MeanAll(q));
  ASSERT_TRUE(actions->has_grad());
  bool nonzero = false;
  for (int64_t i = 0; i < 4; ++i) {
    if (actions->grad()[i] != 0.0f) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(DdpgTrainerTest, RunsAndProducesUsableActor) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto actor = MakePolicy(SmallPolicyConfig(), &init, &dropout);
  DdpgConfig config;
  config.steps = 40;
  config.warmup = 8;
  config.batch_size = 8;
  config.seed = 7;
  DdpgTrainer trainer(actor.get(), dataset, config);
  const double tail_reward = trainer.Train();
  EXPECT_TRUE(std::isfinite(tail_reward));
  // The trained actor must still emit valid portfolios.
  PolicyStrategy strategy(actor.get(), "PPN-AC");
  const backtest::BacktestRecord record =
      backtest::RunOnTestRange(&strategy, dataset, 0.0025);
  for (const auto& action : record.actions) {
    EXPECT_TRUE(IsOnSimplex(action, 1e-5));
  }
}

TEST(DdpgTrainerTest, DeterministicWithSeed) {
  market::MarketDataset dataset = SmallDataset();
  auto run = [&dataset]() {
    Rng init(1);
    Rng dropout(2);
    auto actor = MakePolicy(SmallPolicyConfig(), &init, &dropout);
    DdpgConfig config;
    config.steps = 12;
    config.warmup = 6;
    config.batch_size = 4;
    config.seed = 7;
    DdpgTrainer trainer(actor.get(), dataset, config);
    return trainer.Train();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace ppn::core
