#include "ppn/reward.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"

namespace ppn::core {
namespace {

// Fixture: 2 periods, 1 risk asset + cash.
struct Fixture {
  Tensor actions{{2, 2}, {0.5f, 0.5f, 0.2f, 0.8f}};
  RewardInputs inputs;
  Fixture() {
    inputs.relatives = Tensor({2, 2}, {1.0f, 1.1f, 1.0f, 0.9f});
    inputs.prev_hat = Tensor({2, 2}, {1.0f, 0.0f, 0.45f, 0.55f});
  }
};

TEST(RewardTest, ZeroCostZeroLambdaZeroGammaIsMeanLogReturn) {
  Fixture f;
  RewardConfig config;
  config.lambda = 0.0;
  config.gamma = 0.0;
  config.cost_rate = 0.0;
  RewardBreakdown breakdown;
  ag::Var reward = CostSensitiveReward(ag::Constant(f.actions), f.inputs,
                                       config, &breakdown);
  const double r1 = 0.5 * 1.0 + 0.5 * 1.1;
  const double r2 = 0.2 * 1.0 + 0.8 * 0.9;
  const double expected = 0.5 * (std::log(r1) + std::log(r2));
  EXPECT_NEAR(ag::ScalarValue(reward), expected, 1e-6);
  EXPECT_NEAR(breakdown.mean_log_return, expected, 1e-6);
  EXPECT_NEAR(breakdown.total, expected, 1e-6);
}

TEST(RewardTest, LambdaSubtractsVariance) {
  Fixture f;
  RewardConfig no_risk;
  no_risk.lambda = 0.0;
  no_risk.gamma = 0.0;
  no_risk.cost_rate = 0.0;
  RewardConfig with_risk = no_risk;
  with_risk.lambda = 2.0;
  RewardBreakdown b0;
  RewardBreakdown b1;
  CostSensitiveReward(ag::Constant(f.actions), f.inputs, no_risk, &b0);
  CostSensitiveReward(ag::Constant(f.actions), f.inputs, with_risk, &b1);
  EXPECT_GT(b1.variance, 0.0);
  EXPECT_NEAR(b1.total, b0.total - 2.0 * b1.variance, 1e-6);
}

TEST(RewardTest, GammaSubtractsMeanTurnover) {
  Fixture f;
  RewardConfig config;
  config.lambda = 0.0;
  config.gamma = 3.0;
  config.cost_rate = 0.0;
  RewardBreakdown breakdown;
  CostSensitiveReward(ag::Constant(f.actions), f.inputs, config, &breakdown);
  // ‖a_1 - â_0‖₁ = |0.5-1| + |0.5-0| = 1; ‖a_2 - â_1‖ = 0.25+0.25 = 0.5.
  EXPECT_NEAR(breakdown.mean_turnover, 0.75, 1e-6);
  EXPECT_NEAR(breakdown.total,
              breakdown.mean_log_return - 3.0 * 0.75, 1e-6);
}

TEST(RewardTest, TransactionCostLowersReward) {
  Fixture f;
  RewardConfig free;
  free.lambda = 0.0;
  free.gamma = 0.0;
  free.cost_rate = 0.0;
  RewardConfig costly = free;
  costly.cost_rate = 0.01;
  RewardBreakdown b_free;
  RewardBreakdown b_costly;
  std::vector<double> omegas;
  CostSensitiveReward(ag::Constant(f.actions), f.inputs, free, &b_free);
  CostSensitiveReward(ag::Constant(f.actions), f.inputs, costly, &b_costly,
                      &omegas);
  EXPECT_LT(b_costly.total, b_free.total);
  ASSERT_EQ(omegas.size(), 2u);
  for (const double omega : omegas) {
    EXPECT_GT(omega, 0.0);
    EXPECT_LT(omega, 1.0);  // Both periods trade, so both pay.
  }
}

TEST(RewardTest, GradientFlowsToActions) {
  Fixture f;
  RewardConfig config;
  ag::Var actions = ag::Parameter(f.actions.Clone());
  ag::Var reward = CostSensitiveReward(actions, f.inputs, config);
  ag::Backward(reward);
  ASSERT_TRUE(actions->has_grad());
  bool any_nonzero = false;
  for (int64_t i = 0; i < actions->numel(); ++i) {
    if (actions->grad()[i] != 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(RewardTest, GradientPrefersTheWinningAsset) {
  // Single-period... variance needs 2; use two identical periods where the
  // risk asset gains: the gradient on the risk-asset weight must exceed
  // the gradient on cash.
  Tensor actions({2, 2}, {0.5f, 0.5f, 0.5f, 0.5f});
  RewardInputs inputs;
  inputs.relatives = Tensor({2, 2}, {1.0f, 1.2f, 1.0f, 1.2f});
  inputs.prev_hat = Tensor({2, 2}, {0.5f, 0.5f, 0.5f, 0.5f});
  RewardConfig config;
  config.lambda = 0.0;
  config.gamma = 0.0;
  config.cost_rate = 0.0;
  ag::Var actions_var = ag::Parameter(actions);
  ag::Backward(CostSensitiveReward(actions_var, inputs, config));
  // Reward gradient: d mean log(a·x) / da_i = x_i / (a·x) / T > 0, larger
  // for the winning asset.
  EXPECT_GT(actions_var->grad().At({0, 1}), actions_var->grad().At({0, 0}));
}

TEST(RewardTest, DifferentiableCostChangesGradientNotValue) {
  Fixture f;
  RewardConfig with_grad;
  with_grad.lambda = 0.0;
  with_grad.gamma = 0.0;
  with_grad.cost_rate = 0.01;
  with_grad.differentiable_cost = true;
  RewardConfig detached = with_grad;
  detached.differentiable_cost = false;

  ag::Var actions_a = ag::Parameter(f.actions.Clone());
  ag::Var actions_b = ag::Parameter(f.actions.Clone());
  ag::Var reward_a = CostSensitiveReward(actions_a, f.inputs, with_grad);
  ag::Var reward_b = CostSensitiveReward(actions_b, f.inputs, detached);
  // Same value (the cost term is value-identical at the fixed point) ...
  EXPECT_NEAR(ag::ScalarValue(reward_a), ag::ScalarValue(reward_b), 1e-6);
  // ... but different gradients: the detached variant carries no
  // ψ-scaled trading pressure.
  ag::Backward(reward_a);
  ag::Backward(reward_b);
  bool any_difference = false;
  for (int64_t i = 0; i < actions_a->numel(); ++i) {
    if (std::fabs(actions_a->grad()[i] - actions_b->grad()[i]) > 1e-7f) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RewardTest, CostValueMatchesSolvedOmega) {
  // log(1 - c_t(a)) at the fixed point must equal log(ω_t): check via the
  // total reward against a manual recomputation from the returned omegas.
  Fixture f;
  RewardConfig config;
  config.lambda = 0.0;
  config.gamma = 0.0;
  config.cost_rate = 0.005;
  std::vector<double> omegas;
  RewardBreakdown breakdown;
  CostSensitiveReward(ag::Constant(f.actions), f.inputs, config, &breakdown,
                      &omegas);
  const double r1 = 0.5 * 1.0 + 0.5 * 1.1;
  const double r2 = 0.2 * 1.0 + 0.8 * 0.9;
  const double expected =
      0.5 * (std::log(r1 * omegas[0]) + std::log(r2 * omegas[1]));
  EXPECT_NEAR(breakdown.mean_log_return, expected, 1e-6);
}

TEST(RewardDeathTest, SinglePeriodAborts) {
  Tensor actions({1, 2}, {0.5f, 0.5f});
  RewardInputs inputs;
  inputs.relatives = Tensor({1, 2}, {1.0f, 1.0f});
  inputs.prev_hat = Tensor({1, 2}, {0.5f, 0.5f});
  EXPECT_DEATH(
      CostSensitiveReward(ag::Constant(actions), inputs, RewardConfig()),
      "at least two periods");
}

TEST(RewardDeathTest, ShapeMismatchAborts) {
  Tensor actions({2, 2});
  RewardInputs inputs;
  inputs.relatives = Tensor({2, 3});
  inputs.prev_hat = Tensor({2, 2});
  EXPECT_DEATH(
      CostSensitiveReward(ag::Constant(actions), inputs, RewardConfig()),
      "PPN_CHECK");
}

}  // namespace
}  // namespace ppn::core
