#include "ppn/strategy_adapter.h"

#include <gtest/gtest.h>

#include "backtest/backtester.h"
#include "common/math_utils.h"
#include "market/generator.h"

namespace ppn::core {
namespace {

market::OhlcPanel SmallPanel() {
  market::SyntheticMarketConfig config;
  config.num_assets = 3;
  config.num_periods = 120;
  config.seed = 4;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.Generate();
}

PolicyConfig SmallConfig() {
  PolicyConfig config;
  config.variant = PolicyVariant::kPpn;
  config.num_assets = 3;
  config.window = 10;
  config.lstm_hidden = 4;
  config.block1_channels = 3;
  config.block2_channels = 4;
  return config;
}

TEST(PolicyStrategyTest, NameIsForwarded) {
  Rng init(1), dropout(2);
  auto policy = MakePolicy(SmallConfig(), &init, &dropout);
  PolicyStrategy strategy(policy.get(), "MyPolicy");
  EXPECT_EQ(strategy.name(), "MyPolicy");
}

TEST(PolicyStrategyTest, DecisionsAreOnSimplex) {
  market::OhlcPanel panel = SmallPanel();
  Rng init(1), dropout(2);
  auto policy = MakePolicy(SmallConfig(), &init, &dropout);
  PolicyStrategy strategy(policy.get(), "PPN");
  backtest::BacktestConfig config;
  config.start_period = 20;
  config.end_period = 100;
  const backtest::BacktestRecord record =
      backtest::RunBacktest(&strategy, panel, config);
  for (const auto& action : record.actions) {
    EXPECT_TRUE(IsOnSimplex(action, 1e-5));
  }
}

TEST(PolicyStrategyTest, EvalDisablesDropoutNoise) {
  // Two identical runs must produce identical decisions even though the
  // policy was constructed with nonzero dropout.
  market::OhlcPanel panel = SmallPanel();
  Rng init(1), dropout(2);
  auto policy = MakePolicy(SmallConfig(), &init, &dropout);
  PolicyStrategy strategy(policy.get(), "PPN");
  backtest::BacktestConfig config;
  config.start_period = 20;
  config.end_period = 60;
  const backtest::BacktestRecord r1 =
      backtest::RunBacktest(&strategy, panel, config);
  const backtest::BacktestRecord r2 =
      backtest::RunBacktest(&strategy, panel, config);
  ASSERT_EQ(r1.actions.size(), r2.actions.size());
  for (size_t t = 0; t < r1.actions.size(); ++t) {
    for (size_t i = 0; i < r1.actions[t].size(); ++i) {
      EXPECT_DOUBLE_EQ(r1.actions[t][i], r2.actions[t][i]);
    }
  }
}

TEST(PolicyStrategyTest, RecursionFeedsOwnPreviousAction) {
  // The second decision must differ from what it would be with a cash
  // previous action (the recursive input matters).
  market::OhlcPanel panel = SmallPanel();
  Rng init(1), dropout(2);
  auto policy = MakePolicy(SmallConfig(), &init, &dropout);
  PolicyStrategy continuous(policy.get(), "PPN");
  continuous.Reset(panel, 20);
  std::vector<double> dummy(4, 0.25);
  continuous.DecideWeights({panel, 20}, dummy);
  const std::vector<double> second = continuous.DecideWeights({panel, 21}, dummy);

  PolicyStrategy fresh(policy.get(), "PPN");
  fresh.Reset(panel, 21);  // Previous action = cash.
  const std::vector<double> fresh_second = fresh.DecideWeights({panel, 21}, dummy);
  bool differs = false;
  for (size_t i = 0; i < second.size(); ++i) {
    if (std::abs(second[i] - fresh_second[i]) > 1e-9) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(PolicyStrategyDeathTest, TooEarlyFirstPeriodAborts) {
  market::OhlcPanel panel = SmallPanel();
  Rng init(1), dropout(2);
  auto policy = MakePolicy(SmallConfig(), &init, &dropout);
  PolicyStrategy strategy(policy.get(), "PPN");
  EXPECT_DEATH(strategy.Reset(panel, 5), "history");
}

TEST(PolicyStrategyDeathTest, AssetCountMismatchAborts) {
  market::SyntheticMarketConfig config;
  config.num_assets = 7;  // Policy expects 3.
  config.num_periods = 60;
  config.seed = 4;
  market::SyntheticMarketGenerator generator(config);
  market::OhlcPanel panel = generator.Generate();
  Rng init(1), dropout(2);
  auto policy = MakePolicy(SmallConfig(), &init, &dropout);
  PolicyStrategy strategy(policy.get(), "PPN");
  EXPECT_DEATH(strategy.Reset(panel, 20), "PPN_CHECK");
}

}  // namespace
}  // namespace ppn::core
