#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "ppn/eiie.h"
#include "ppn/policy_network.h"

namespace ppn::core {
namespace {

PolicyConfig SmallConfig(PolicyVariant variant) {
  PolicyConfig config;
  config.variant = variant;
  config.num_assets = 4;
  config.window = 12;
  config.lstm_hidden = 6;
  config.block1_channels = 4;
  config.block2_channels = 6;
  config.seed = 5;
  return config;
}

Tensor RandomWindows(int64_t batch, const PolicyConfig& config,
                     uint64_t seed = 11) {
  Rng rng(seed);
  Tensor windows(
      {batch, config.num_assets, config.window, market::kNumPriceFields});
  for (int64_t i = 0; i < windows.numel(); ++i) {
    windows.MutableData()[i] = static_cast<float>(1.0 + 0.05 * rng.Normal());
  }
  return windows;
}

Tensor UniformPrev(int64_t batch, int64_t m) {
  return Tensor::Full({batch, m}, 1.0f / static_cast<float>(m));
}

std::vector<PolicyVariant> AllVariants() {
  auto variants = Table4Variants();
  variants.push_back(PolicyVariant::kEiie);
  return variants;
}

class PolicyVariantTest : public ::testing::TestWithParam<PolicyVariant> {};

TEST_P(PolicyVariantTest, OutputShapeAndSimplex) {
  const PolicyConfig config = SmallConfig(GetParam());
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(config, &init, &dropout);
  policy->SetTraining(false);
  const int64_t batch = 3;
  ag::Var out = policy->Forward(
      ag::Constant(RandomWindows(batch, config)),
      ag::Constant(UniformPrev(batch, config.num_assets)));
  ASSERT_EQ(out->value().shape(),
            (std::vector<int64_t>{batch, config.num_assets + 1}));
  for (int64_t b = 0; b < batch; ++b) {
    double total = 0.0;
    for (int64_t i = 0; i <= config.num_assets; ++i) {
      const float v = out->value().At({b, i});
      EXPECT_GE(v, 0.0f);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST_P(PolicyVariantTest, GradientReachesAllParameters) {
  const PolicyConfig config = SmallConfig(GetParam());
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(config, &init, &dropout);
  policy->SetTraining(false);  // Deterministic; dropout masks off.
  policy->ZeroGrad();
  ag::Var out = policy->Forward(
      ag::Constant(RandomWindows(2, config)),
      ag::Constant(UniformPrev(2, config.num_assets)));
  // A weighted sum so each output contributes differently.
  Tensor weights_data({2, config.num_assets + 1});
  for (int64_t i = 0; i < weights_data.numel(); ++i) {
    weights_data.MutableData()[i] = static_cast<float>(i + 1);
  }
  ag::Backward(ag::SumAll(ag::Mul(out, ag::Constant(weights_data))));
  int64_t nonzero_params = 0;
  for (const ag::Var& p : policy->Parameters()) {
    ASSERT_TRUE(p->has_grad());
    for (int64_t i = 0; i < p->numel(); ++i) {
      if (p->grad()[i] != 0.0f) {
        ++nonzero_params;
        break;
      }
    }
  }
  // Every parameter tensor should receive some gradient.
  EXPECT_EQ(nonzero_params,
            static_cast<int64_t>(policy->Parameters().size()));
}

TEST_P(PolicyVariantTest, DeterministicInEvalMode) {
  const PolicyConfig config = SmallConfig(GetParam());
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(config, &init, &dropout);
  policy->SetTraining(false);
  Tensor windows = RandomWindows(1, config);
  Tensor prev = UniformPrev(1, config.num_assets);
  ag::Var out1 = policy->Forward(ag::Constant(windows), ag::Constant(prev));
  ag::Var out2 = policy->Forward(ag::Constant(windows), ag::Constant(prev));
  EXPECT_TRUE(out1->value().AllClose(out2->value()));
}

TEST_P(PolicyVariantTest, PreviousActionInfluencesDecision) {
  const PolicyConfig config = SmallConfig(GetParam());
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(config, &init, &dropout);
  policy->SetTraining(false);
  Tensor windows = RandomWindows(1, config);
  Tensor prev_a = UniformPrev(1, config.num_assets);
  Tensor prev_b({1, config.num_assets});
  prev_b.MutableData()[0] = 1.0f;  // All-in asset 0.
  ag::Var out_a = policy->Forward(ag::Constant(windows), ag::Constant(prev_a));
  ag::Var out_b = policy->Forward(ag::Constant(windows), ag::Constant(prev_b));
  EXPECT_FALSE(out_a->value().AllClose(out_b->value(), 1e-7f));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PolicyVariantTest,
                         ::testing::ValuesIn(AllVariants()),
                         [](const auto& info) {
                           std::string name = VariantName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(VariantMetadataTest, VariantFromNameRoundTrip) {
  auto variants = Table4Variants();
  variants.push_back(PolicyVariant::kEiie);
  for (const PolicyVariant variant : variants) {
    PolicyVariant parsed;
    ASSERT_TRUE(VariantFromName(VariantName(variant), &parsed));
    EXPECT_EQ(parsed, variant);
  }
  PolicyVariant unused = PolicyVariant::kPpn;
  EXPECT_FALSE(VariantFromName("ppn", &unused));  // Case-sensitive.
  EXPECT_FALSE(VariantFromName("Nope", &unused));
  EXPECT_EQ(unused, PolicyVariant::kPpn);  // Untouched on failure.
}

TEST(VariantMetadataTest, NamesAndCorrelationFlags) {
  EXPECT_EQ(VariantName(PolicyVariant::kPpn), "PPN");
  EXPECT_EQ(VariantName(PolicyVariant::kPpnTccbLstm), "PPN-TCCB-LSTM");
  EXPECT_TRUE(UsesAssetCorrelation(PolicyVariant::kPpn));
  EXPECT_TRUE(UsesAssetCorrelation(PolicyVariant::kPpnTccb));
  EXPECT_FALSE(UsesAssetCorrelation(PolicyVariant::kPpnI));
  EXPECT_FALSE(UsesAssetCorrelation(PolicyVariant::kEiie));
  EXPECT_EQ(Table4Variants().size(), 7u);
}

TEST(PolicyStructureTest, PpnSeesCrossAssetInformation) {
  // Changing asset 3's window must change the PPN's logit RATIO between
  // assets 1 and 2 (cross-asset mixing). For PPN-I the same perturbation
  // must leave that ratio unchanged (independent evaluation + softmax
  // renormalization only).
  for (const PolicyVariant variant :
       {PolicyVariant::kPpn, PolicyVariant::kPpnI}) {
    const PolicyConfig config = SmallConfig(variant);
    Rng init(1);
    Rng dropout(2);
    auto policy = MakePolicy(config, &init, &dropout);
    policy->SetTraining(false);
    Tensor base = RandomWindows(1, config);
    Tensor perturbed = base.Clone();
    // Shift all prices of asset 3 (row 3 of the window).
    for (int64_t j = 0; j < config.window; ++j) {
      for (int f = 0; f < market::kNumPriceFields; ++f) {
        const int64_t idx =
            (3 * config.window + j) * market::kNumPriceFields + f;
        perturbed.MutableData()[idx] *= 1.2f;
      }
    }
    Tensor prev = UniformPrev(1, config.num_assets);
    ag::Var out_base =
        policy->Forward(ag::Constant(base), ag::Constant(prev));
    ag::Var out_pert =
        policy->Forward(ag::Constant(perturbed), ag::Constant(prev));
    const double ratio_base =
        out_base->value().At({0, 1}) / out_base->value().At({0, 2});
    const double ratio_pert =
        out_pert->value().At({0, 1}) / out_pert->value().At({0, 2});
    if (variant == PolicyVariant::kPpn) {
      EXPECT_GT(std::fabs(ratio_base - ratio_pert), 1e-6)
          << "PPN failed to propagate cross-asset information";
    } else {
      EXPECT_NEAR(ratio_base, ratio_pert, 1e-4)
          << "PPN-I leaked information across assets";
    }
  }
}

TEST(PolicyStructureTest, CausalityAcrossTime) {
  // In eval mode, changing only the OLDEST slot of the window must change
  // the output (receptive field covers it)...
  const PolicyConfig config = SmallConfig(PolicyVariant::kPpn);
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(config, &init, &dropout);
  policy->SetTraining(false);
  Tensor base = RandomWindows(1, config);
  Tensor perturbed = base.Clone();
  for (int64_t a = 0; a < config.num_assets; ++a) {
    for (int f = 0; f < market::kNumPriceFields; ++f) {
      perturbed.MutableData()[(a * config.window) * market::kNumPriceFields +
                              f] *= 1.5f;
    }
  }
  Tensor prev = UniformPrev(1, config.num_assets);
  ag::Var out_base = policy->Forward(ag::Constant(base), ag::Constant(prev));
  ag::Var out_pert =
      policy->Forward(ag::Constant(perturbed), ag::Constant(prev));
  EXPECT_FALSE(out_base->value().AllClose(out_pert->value(), 1e-8f));
}

TEST(PolicyStructureTest, ParameterCountsDifferAcrossVariants) {
  Rng dropout(2);
  Rng init1(1), init2(1), init3(1);
  auto ppn = MakePolicy(SmallConfig(PolicyVariant::kPpn), &init1, &dropout);
  auto ppn_i = MakePolicy(SmallConfig(PolicyVariant::kPpnI), &init2, &dropout);
  auto lstm_only =
      MakePolicy(SmallConfig(PolicyVariant::kPpnLstm), &init3, &dropout);
  // PPN has the CCONV parameters PPN-I lacks.
  EXPECT_GT(ppn->ParameterCount(), ppn_i->ParameterCount());
  EXPECT_GT(ppn_i->ParameterCount(), lstm_only->ParameterCount());
}

TEST(PolicyDeathTest, WrongAssetCountAborts) {
  const PolicyConfig config = SmallConfig(PolicyVariant::kPpn);
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(config, &init, &dropout);
  Tensor windows({1, config.num_assets + 1, config.window, 4});
  EXPECT_DEATH(policy->Forward(ag::Constant(windows),
                               ag::Constant(UniformPrev(1, config.num_assets))),
               "PPN_CHECK");
}

TEST(EiieTest, TrainingModeHasNoDropoutNondeterminism) {
  const PolicyConfig config = SmallConfig(PolicyVariant::kEiie);
  Rng init(1);
  EiieNetwork eiie(config, &init);
  eiie.SetTraining(true);
  Tensor windows = RandomWindows(1, config);
  Tensor prev = UniformPrev(1, config.num_assets);
  ag::Var a = eiie.Forward(ag::Constant(windows), ag::Constant(prev));
  ag::Var b = eiie.Forward(ag::Constant(windows), ag::Constant(prev));
  EXPECT_TRUE(a->value().AllClose(b->value()));
}

}  // namespace
}  // namespace ppn::core
