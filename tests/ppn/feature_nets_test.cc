#include "ppn/feature_nets.h"

#include <gtest/gtest.h>

namespace ppn::core {
namespace {

PolicyConfig SmallConfig() {
  PolicyConfig config;
  config.num_assets = 5;
  config.window = 16;
  config.lstm_hidden = 6;
  config.block1_channels = 4;
  config.block2_channels = 8;
  config.seed = 3;
  return config;
}

Tensor RandomWindows(const PolicyConfig& config, int64_t batch,
                     uint64_t seed = 9) {
  Rng rng(seed);
  return RandomNormal(
      {batch, config.num_assets, config.window, market::kNumPriceFields},
      0.0f, 0.1f, &rng);
}

TEST(SequentialInfoNetTest, OutputShape) {
  const PolicyConfig config = SmallConfig();
  Rng rng(1);
  SequentialInfoNet net(config, &rng);
  net.SetTraining(false);
  ag::Var out = net.Forward(ag::Constant(RandomWindows(config, 3)));
  EXPECT_EQ(out->value().shape(), (std::vector<int64_t>{3, 5, 6}));
  EXPECT_EQ(net.feature_size(), 6);
}

TEST(SequentialInfoNetTest, AssetsProcessedIndependently) {
  // Changing asset 2's window must not change asset 0's features.
  const PolicyConfig config = SmallConfig();
  Rng rng(1);
  SequentialInfoNet net(config, &rng);
  net.SetTraining(false);
  Tensor base = RandomWindows(config, 1);
  Tensor perturbed = base.Clone();
  for (int64_t j = 0; j < config.window; ++j) {
    for (int f = 0; f < market::kNumPriceFields; ++f) {
      perturbed.MutableData()[(2 * config.window + j) *
                                  market::kNumPriceFields +
                              f] += 0.5f;
    }
  }
  ag::Var out_base = net.Forward(ag::Constant(base));
  ag::Var out_pert = net.Forward(ag::Constant(perturbed));
  for (int64_t h = 0; h < 6; ++h) {
    EXPECT_FLOAT_EQ(out_base->value().At({0, 0, h}),
                    out_pert->value().At({0, 0, h}));
  }
  // Asset 2's own features must change.
  bool changed = false;
  for (int64_t h = 0; h < 6; ++h) {
    if (out_base->value().At({0, 2, h}) != out_pert->value().At({0, 2, h})) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(TemporalConvBlockTest, ShapePreserving) {
  Rng init(1);
  Rng dropout(2);
  TemporalConvBlock block(4, 8, /*dilation=*/2, /*num_assets=*/5,
                          /*correlational=*/true, 0.2f, &init, &dropout);
  block.SetTraining(false);
  Rng data(3);
  Tensor input = RandomNormal({2, 4, 5, 16}, 0.0f, 1.0f, &data);
  ag::Var out = block.Forward(ag::Constant(input));
  EXPECT_EQ(out->value().shape(), (std::vector<int64_t>{2, 8, 5, 16}));
}

TEST(TemporalConvBlockTest, TcbHasNoCrossAssetFlow) {
  Rng init(1);
  Rng dropout(2);
  TemporalConvBlock tcb(1, 2, 1, /*num_assets=*/4, /*correlational=*/false,
                        0.0f, &init, &dropout);
  tcb.SetTraining(false);
  Tensor base({1, 1, 4, 8});
  Tensor perturbed = base.Clone();
  perturbed.Set({0, 0, 1, 3}, 2.0f);  // Touch asset 1 only.
  ag::Var out_base = tcb.Forward(ag::Constant(base));
  ag::Var out_pert = tcb.Forward(ag::Constant(perturbed));
  // Asset 0's row must be untouched in every channel/time.
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t t = 0; t < 8; ++t) {
      EXPECT_FLOAT_EQ(out_base->value().At({0, c, 0, t}),
                      out_pert->value().At({0, c, 0, t}));
    }
  }
}

TEST(TemporalConvBlockTest, TccbHasCrossAssetFlow) {
  Rng init(1);
  Rng dropout(2);
  TemporalConvBlock tccb(1, 2, 1, /*num_assets=*/4, /*correlational=*/true,
                         0.0f, &init, &dropout);
  tccb.SetTraining(false);
  Rng data(5);
  Tensor base = RandomNormal({1, 1, 4, 8}, 0.0f, 1.0f, &data);
  Tensor perturbed = base.Clone();
  perturbed.Set({0, 0, 1, 3}, perturbed.At({0, 0, 1, 3}) + 2.0f);
  ag::Var out_base = tccb.Forward(ag::Constant(base));
  ag::Var out_pert = tccb.Forward(ag::Constant(perturbed));
  bool other_asset_changed = false;
  for (int64_t c = 0; c < 2; ++c) {
    if (out_base->value().At({0, c, 0, 3}) !=
        out_pert->value().At({0, c, 0, 3})) {
      other_asset_changed = true;
    }
  }
  EXPECT_TRUE(other_asset_changed);
}

TEST(CorrelationInfoNetTest, ForwardShapeCollapsesTime) {
  const PolicyConfig config = SmallConfig();
  Rng init(1);
  Rng dropout(2);
  CorrelationInfoNet net(config, /*correlational=*/true, &init, &dropout);
  net.SetTraining(false);
  ag::Var out = net.Forward(ag::Constant(RandomWindows(config, 2)));
  EXPECT_EQ(out->value().shape(), (std::vector<int64_t>{2, 5, 8}));
}

TEST(CorrelationInfoNetTest, ForwardSequenceKeepsTime) {
  const PolicyConfig config = SmallConfig();
  Rng init(1);
  Rng dropout(2);
  CorrelationInfoNet net(config, /*correlational=*/false, &init, &dropout,
                         /*collapse_time=*/false);
  net.SetTraining(false);
  ag::Var out = net.ForwardSequence(ag::Constant(RandomWindows(config, 2)));
  EXPECT_EQ(out->value().shape(), (std::vector<int64_t>{2, 5, 16, 8}));
}

TEST(CorrelationInfoNetTest, NoCollapseOmitsConv4Parameters) {
  const PolicyConfig config = SmallConfig();
  Rng init1(1), init2(1);
  Rng dropout(2);
  CorrelationInfoNet with_conv4(config, true, &init1, &dropout, true);
  CorrelationInfoNet without_conv4(config, true, &init2, &dropout, false);
  EXPECT_GT(with_conv4.ParameterCount(), without_conv4.ParameterCount());
}

TEST(CorrelationInfoNetDeathTest, ForwardWithoutConv4Aborts) {
  const PolicyConfig config = SmallConfig();
  Rng init(1);
  Rng dropout(2);
  CorrelationInfoNet net(config, true, &init, &dropout,
                         /*collapse_time=*/false);
  EXPECT_DEATH(net.Forward(ag::Constant(RandomWindows(config, 1))),
               "collapse_time");
}

TEST(CorrelationInfoNetTest, CausalAcrossTimeEndToEnd) {
  // Perturbing the LAST time slot must not change ForwardSequence outputs
  // at earlier time slots (whole-stack causality).
  const PolicyConfig config = SmallConfig();
  Rng init(1);
  Rng dropout(2);
  CorrelationInfoNet net(config, true, &init, &dropout, false);
  net.SetTraining(false);
  Tensor base = RandomWindows(config, 1);
  Tensor perturbed = base.Clone();
  const int64_t last = config.window - 1;
  for (int64_t a = 0; a < config.num_assets; ++a) {
    for (int f = 0; f < market::kNumPriceFields; ++f) {
      perturbed.MutableData()[(a * config.window + last) *
                                  market::kNumPriceFields +
                              f] += 1.0f;
    }
  }
  ag::Var out_base = net.ForwardSequence(ag::Constant(base));
  ag::Var out_pert = net.ForwardSequence(ag::Constant(perturbed));
  for (int64_t a = 0; a < config.num_assets; ++a) {
    for (int64_t t = 0; t < last; ++t) {
      for (int64_t c = 0; c < 8; ++c) {
        ASSERT_FLOAT_EQ(out_base->value().At({0, a, t, c}),
                        out_pert->value().At({0, a, t, c}))
            << "future leaked to t=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace ppn::core
