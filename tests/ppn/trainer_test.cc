#include "ppn/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "backtest/backtester.h"
#include "common/math_utils.h"
#include "market/generator.h"
#include "ppn/strategy_adapter.h"

namespace ppn::core {
namespace {

market::MarketDataset SmallDataset(uint64_t seed = 9) {
  market::SyntheticMarketConfig config;
  config.num_assets = 4;
  config.num_periods = 400;
  config.seed = seed;
  config.late_listing_fraction = 0.0;
  // Strong planted structure so a few steps of training show progress.
  config.momentum = 0.25;
  config.lead_lag_strength = 0.5;
  market::SyntheticMarketGenerator generator(config);
  return generator.GenerateDataset("tiny", 0.8);
}

PolicyConfig SmallPolicyConfig(int64_t assets) {
  PolicyConfig config;
  config.variant = PolicyVariant::kPpn;
  config.num_assets = assets;
  config.window = 10;
  config.lstm_hidden = 4;
  config.block1_channels = 3;
  config.block2_channels = 4;
  config.seed = 3;
  return config;
}

TrainerConfig SmallTrainerConfig() {
  TrainerConfig config;
  config.batch_size = 8;
  config.steps = 30;
  config.seed = 5;
  return config;
}

TEST(TrainerTest, TrainStepRunsAndReturnsFiniteReward) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
  const double reward = trainer.TrainStep();
  EXPECT_TRUE(std::isfinite(reward));
}

TEST(TrainerTest, PvmIsUpdatedByTraining) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
  // Initially uniform over risk assets.
  const std::vector<double> before = trainer.pvm().Get(trainer.first_period());
  for (int step = 0; step < 20; ++step) trainer.TrainStep();
  // After enough random batches some period near the start must have been
  // rewritten with a network output (cash weight > 0 is the give-away:
  // uniform init has cash == 0).
  bool changed = false;
  for (int64_t t = trainer.first_period(); t < trainer.last_period(); ++t) {
    if (trainer.pvm().Get(t) != before) changed = true;
  }
  EXPECT_TRUE(changed);
  // All PVM entries remain simplex vectors.
  for (int64_t t = trainer.first_period(); t < trainer.last_period(); ++t) {
    EXPECT_TRUE(IsOnSimplex(trainer.pvm().Get(t), 1e-5)) << "t=" << t;
  }
}

TEST(TrainerTest, DeterministicWithSameSeeds) {
  market::MarketDataset dataset = SmallDataset();
  auto run = [&dataset]() {
    Rng init(1);
    Rng dropout(2);
    auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
    PolicyGradientTrainer trainer(policy.get(), dataset,
                                  SmallTrainerConfig());
    double last = 0.0;
    for (int step = 0; step < 5; ++step) last = trainer.TrainStep();
    return last;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TrainerTest, AdversarialEpsilonZeroIsBitIdenticalToLegacy) {
  // ε = 0 must not consume a single RNG draw: the training stream (and
  // hence every checkpoint) is bit-identical to a config without the knob.
  market::MarketDataset dataset = SmallDataset();
  auto run = [&dataset](double epsilon) {
    Rng init(1);
    Rng dropout(2);
    auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
    TrainerConfig tc = SmallTrainerConfig();
    tc.adversarial_epsilon = epsilon;
    PolicyGradientTrainer trainer(policy.get(), dataset, tc);
    std::vector<double> rewards;
    for (int step = 0; step < 5; ++step) rewards.push_back(trainer.TrainStep());
    return rewards;
  };
  const std::vector<double> legacy = run(0.0);
  EXPECT_EQ(legacy, run(0.0));
  // A live adversary perturbs the relatives, so the stream must diverge.
  EXPECT_NE(legacy, run(0.05));
}

TEST(TrainerDeathTest, AdversarialEpsilonOutOfRangeAborts) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  TrainerConfig tc = SmallTrainerConfig();
  tc.adversarial_epsilon = 1.0;
  EXPECT_DEATH(PolicyGradientTrainer(policy.get(), dataset, tc),
               "adversarial_epsilon");
}

TEST(TrainerTest, TrainingImprovesRewardOnEasyMarket) {
  // A strongly trending market: the policy should learn to beat the
  // uniform starting point within a few dozen steps.
  market::SyntheticMarketConfig mc;
  mc.num_assets = 3;
  mc.num_periods = 300;
  mc.seed = 21;
  mc.late_listing_fraction = 0.0;
  mc.regime_drifts = {4e-3};  // Strong steady uptrend.
  mc.regime_switch_prob = 0.0;
  mc.idio_vol = 0.004;
  mc.factor_vol = 0.002;
  market::SyntheticMarketGenerator generator(mc);
  market::MarketDataset dataset = generator.GenerateDataset("trend", 0.85);

  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(3), &init, &dropout);
  TrainerConfig tc = SmallTrainerConfig();
  tc.steps = 60;
  PolicyGradientTrainer trainer(policy.get(), dataset, tc);
  double early_sum = 0.0;
  double late_sum = 0.0;
  for (int step = 0; step < 60; ++step) {
    const double reward = trainer.TrainStep();
    if (step < 10) early_sum += reward;
    if (step >= 50) late_sum += reward;
  }
  EXPECT_GT(late_sum / 10.0, early_sum / 10.0);
}

TEST(TrainerTest, GeometricSamplingStaysInRange) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  TrainerConfig tc = SmallTrainerConfig();
  tc.geometric_p = 0.05;
  PolicyGradientTrainer trainer(policy.get(), dataset, tc);
  for (int step = 0; step < 20; ++step) {
    EXPECT_TRUE(std::isfinite(trainer.TrainStep()));
  }
}

TEST(TrainerTest, StrategyAdapterBacktestsAfterTraining) {
  market::MarketDataset dataset = SmallDataset();
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  PolicyGradientTrainer trainer(policy.get(), dataset, SmallTrainerConfig());
  trainer.Train();
  PolicyStrategy strategy(policy.get(), "PPN");
  const backtest::BacktestRecord record =
      backtest::RunOnTestRange(&strategy, dataset, 0.0025);
  EXPECT_EQ(record.wealth_curve.size(),
            static_cast<size_t>(dataset.panel.num_periods() -
                                dataset.train_end));
  for (const auto& action : record.actions) {
    EXPECT_TRUE(IsOnSimplex(action, 1e-5));
  }
}

TEST(TrainerDeathTest, TooShortTrainingRangeAborts) {
  market::MarketDataset dataset = SmallDataset();
  dataset.train_end = 15;  // window 10 + batch 8 does not fit.
  Rng init(1);
  Rng dropout(2);
  auto policy = MakePolicy(SmallPolicyConfig(4), &init, &dropout);
  EXPECT_DEATH(
      PolicyGradientTrainer(policy.get(), dataset, SmallTrainerConfig()),
      "training range too short");
}

TEST(PvmTest, InitializedUniformAndSettable) {
  PortfolioVectorMemory pvm(10, 4);
  const std::vector<double>& initial = pvm.Get(3);
  EXPECT_DOUBLE_EQ(initial[0], 0.0);
  EXPECT_DOUBLE_EQ(initial[1], 0.25);
  pvm.Set(3, {1.0, 0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(pvm.Get(3)[0], 1.0);
}

TEST(PvmDeathTest, OutOfRangeAborts) {
  PortfolioVectorMemory pvm(10, 2);
  EXPECT_DEATH(pvm.Get(10), "PPN_CHECK");
  EXPECT_DEATH(pvm.Set(0, {1.0}), "PPN_CHECK");
}

}  // namespace
}  // namespace ppn::core
