// Contract tests for the shared config validation: every trainer-facing
// config exposes Validate(), called at trainer construction, that aborts
// on malformed hyperparameters instead of silently training garbage.

#include <gtest/gtest.h>

#include "ppn/ddpg.h"
#include "ppn/reward.h"
#include "ppn/trainer.h"

namespace ppn::core {
namespace {

// --- RewardConfig. -------------------------------------------------------

TEST(RewardConfigTest, DefaultsAreValid) {
  RewardConfig config;
  config.Validate();  // Must not abort.
}

TEST(RewardConfigDeathTest, NegativeLambdaAborts) {
  RewardConfig config;
  config.lambda = -1e-4;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(RewardConfigDeathTest, NegativeGammaAborts) {
  RewardConfig config;
  config.gamma = -1e-3;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(RewardConfigDeathTest, CostRateOutOfRangeAborts) {
  RewardConfig config;
  config.cost_rate = 1.0;
  EXPECT_DEATH(config.Validate(), "");
  config.cost_rate = -0.01;
  EXPECT_DEATH(config.Validate(), "");
}

// --- TrainerConfig. ------------------------------------------------------

TEST(TrainerConfigTest, DefaultsAreValid) {
  TrainerConfig config;
  config.Validate();
}

TEST(TrainerConfigDeathTest, NonPositiveBatchSizeAborts) {
  TrainerConfig config;
  config.batch_size = 0;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(TrainerConfigDeathTest, NonPositiveStepsAborts) {
  TrainerConfig config;
  config.steps = -5;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(TrainerConfigDeathTest, NonPositiveLearningRateAborts) {
  TrainerConfig config;
  config.learning_rate = 0.0f;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(TrainerConfigDeathTest, NegativeWeightDecayAborts) {
  TrainerConfig config;
  config.weight_decay = -1e-3f;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(TrainerConfigDeathTest, NonPositiveGradClipAborts) {
  TrainerConfig config;
  config.grad_clip = 0.0;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(TrainerConfigDeathTest, GeometricPOutOfRangeAborts) {
  TrainerConfig config;
  config.geometric_p = 1.0;  // Weight (1-p)^k degenerates at p = 1.
  EXPECT_DEATH(config.Validate(), "");
  config.geometric_p = -0.1;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(TrainerConfigDeathTest, InvalidNestedRewardAborts) {
  // Validate recurses into the reward config.
  TrainerConfig config;
  config.reward.lambda = -1.0;
  EXPECT_DEATH(config.Validate(), "");
}

// --- DdpgConfig. ---------------------------------------------------------

TEST(DdpgConfigTest, DefaultsAreValid) {
  DdpgConfig config;
  config.Validate();
}

TEST(DdpgConfigDeathTest, NonPositiveStepsAborts) {
  DdpgConfig config;
  config.steps = 0;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(DdpgConfigDeathTest, BufferSmallerThanBatchAborts) {
  DdpgConfig config;
  config.batch_size = 32;
  config.buffer_capacity = 16;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(DdpgConfigDeathTest, NegativeWarmupAborts) {
  DdpgConfig config;
  config.warmup = -1;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(DdpgConfigDeathTest, NonPositiveLearningRatesAbort) {
  DdpgConfig config;
  config.actor_lr = 0.0f;
  EXPECT_DEATH(config.Validate(), "");
  config = DdpgConfig{};
  config.critic_lr = -1e-3f;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(DdpgConfigDeathTest, TauOutOfRangeAborts) {
  DdpgConfig config;
  config.tau = 0.0f;  // Target networks would never update.
  EXPECT_DEATH(config.Validate(), "");
  config.tau = 1.5f;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(DdpgConfigDeathTest, DiscountOutOfRangeAborts) {
  DdpgConfig config;
  config.discount = 1.5f;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(DdpgConfigDeathTest, ExploreWeightsOutOfRangeAbort) {
  DdpgConfig config;
  config.explore_start = 1.5;
  EXPECT_DEATH(config.Validate(), "");
  config = DdpgConfig{};
  config.explore_end = -0.1;
  EXPECT_DEATH(config.Validate(), "");
}

TEST(DdpgConfigDeathTest, CostRateOutOfRangeAborts) {
  DdpgConfig config;
  config.cost_rate = 1.0;
  EXPECT_DEATH(config.Validate(), "");
}

}  // namespace
}  // namespace ppn::core
