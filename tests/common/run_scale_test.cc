#include "common/run_scale.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(RunScaleTest, DefaultsToQuick) {
  unsetenv("PPN_SCALE");
  EXPECT_EQ(GetRunScale(), RunScale::kQuick);
}

TEST(RunScaleTest, ParsesFull) {
  setenv("PPN_SCALE", "full", 1);
  EXPECT_EQ(GetRunScale(), RunScale::kFull);
  unsetenv("PPN_SCALE");
}

TEST(RunScaleTest, ParsesSmoke) {
  setenv("PPN_SCALE", "smoke", 1);
  EXPECT_EQ(GetRunScale(), RunScale::kSmoke);
  unsetenv("PPN_SCALE");
}

TEST(RunScaleTest, UnknownFallsBackToQuick) {
  setenv("PPN_SCALE", "banana", 1);
  EXPECT_EQ(GetRunScale(), RunScale::kQuick);
  unsetenv("PPN_SCALE");
}

TEST(RunScaleTest, ScaledStepsTiers) {
  EXPECT_EQ(ScaledSteps(400, RunScale::kQuick), 400);
  EXPECT_EQ(ScaledSteps(400, RunScale::kSmoke), 50);
  EXPECT_EQ(ScaledSteps(400, RunScale::kFull, 10), 4000);
}

TEST(RunScaleTest, SmokeNeverBelowOne) {
  EXPECT_EQ(ScaledSteps(4, RunScale::kSmoke), 1);
}

TEST(RunScaleTest, Names) {
  EXPECT_STREQ(RunScaleName(RunScale::kQuick), "quick");
  EXPECT_STREQ(RunScaleName(RunScale::kFull), "full");
  EXPECT_STREQ(RunScaleName(RunScale::kSmoke), "smoke");
}

}  // namespace
}  // namespace ppn
