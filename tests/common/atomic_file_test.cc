// AtomicFileWriter is the durability primitive under every persistence
// path (checkpoints, results JSON, the fabric's queue/status files): the
// target must only ever hold a complete previous file or a complete new
// file, and Commit must not succeed unless the data is actually down.

#include "common/atomic_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace ppn {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/atomic_file_" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFileTest, CommitPublishesContentAndRemovesTemp) {
  const std::string path = TempPath("commit");
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.stream() << "hello";
    EXPECT_TRUE(writer.Commit());
  }
  EXPECT_EQ(ReadAll(path), "hello");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFileTest, AbandonedWriterLeavesTargetUntouched) {
  const std::string path = TempPath("abandon");
  {
    std::ofstream prior(path);
    prior << "prior";
  }
  {
    AtomicFileWriter writer(path);
    writer.stream() << "half-written";
    // No Commit: destructor must roll back.
  }
  EXPECT_EQ(ReadAll(path), "prior");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFileTest, CommitFailsWhenTempVanished) {
  // If the temporary disappears under us (tmp reaper, hostile cleanup),
  // the fsync-before-rename path must report failure, not publish.
  const std::string path = TempPath("vanished");
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.ok());
  writer.stream() << "data";
  writer.stream().flush();
  std::remove((path + ".tmp").c_str());
  EXPECT_FALSE(writer.Commit());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(AtomicFileTest, CommitIsSingleShot) {
  const std::string path = TempPath("single");
  AtomicFileWriter writer(path);
  writer.stream() << "x";
  EXPECT_TRUE(writer.Commit());
  EXPECT_FALSE(writer.Commit());  // Second call must refuse.
  EXPECT_EQ(ReadAll(path), "x");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, UnopenableTargetReportsNotOk) {
  AtomicFileWriter writer("/nonexistent-dir-zzz/file");
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.Commit());
}

}  // namespace
}  // namespace ppn
