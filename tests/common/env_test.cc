// Typed environment-knob accessors: registry completeness, strict parsing
// (set-but-malformed aborts, including the empty string), flag semantics,
// and the unregistered-name trap.

#include "common/env.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace ppn::env {
namespace {

/// Saves and restores one knob around a test (tests mutate the process
/// environment, so each fixture puts the original value back).
class ScopedEnvVar {
 public:
  explicit ScopedEnvVar(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    had_value_ = value != nullptr;
    if (had_value_) original_ = value;
  }
  ~ScopedEnvVar() {
    if (had_value_) {
      ::setenv(name_, original_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void Set(const char* value) { ::setenv(name_, value, 1); }
  void Unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  bool had_value_ = false;
  std::string original_;
};

TEST(EnvRegistryTest, ListsEveryKnownKnob) {
  const std::vector<VarInfo>& registry = Registry();
  EXPECT_GE(registry.size(), 12u);
  for (const char* required :
       {"PPN_WORKERS", "PPN_SCALE", "PPN_OBS", "PPN_PROFILE_JSON",
        "PPN_TRACE_JSON", "PPN_TRACE_CAPACITY", "PPN_TRACE_MIN_US",
        "PPN_RUNLOG_DIR", "PPN_RESULTS_JSON", "PPN_NO_POOL",
        "PPN_BENCH_GATE", "PPN_BENCH_REPS", "PPN_STATS_JSONL",
        "PPN_SAMPLE_MS", "PPN_HEALTH"}) {
    bool found = false;
    for (const VarInfo& info : registry) {
      if (std::string(info.name) == required) {
        found = true;
        EXPECT_NE(std::string(info.description), "") << required;
      }
    }
    EXPECT_TRUE(found) << required << " missing from env registry";
  }
}

TEST(EnvAccessorTest, IsSetHasValueDistinguishEmpty) {
  ScopedEnvVar var("PPN_RUNLOG_DIR");
  var.Unset();
  EXPECT_FALSE(IsSet("PPN_RUNLOG_DIR"));
  EXPECT_FALSE(HasValue("PPN_RUNLOG_DIR"));
  var.Set("");
  EXPECT_TRUE(IsSet("PPN_RUNLOG_DIR"));
  EXPECT_FALSE(HasValue("PPN_RUNLOG_DIR"));
  var.Set("/tmp/logs");
  EXPECT_TRUE(IsSet("PPN_RUNLOG_DIR"));
  EXPECT_TRUE(HasValue("PPN_RUNLOG_DIR"));
}

TEST(EnvAccessorTest, FlagSemantics) {
  ScopedEnvVar var("PPN_OBS");
  var.Unset();
  EXPECT_FALSE(FlagSet("PPN_OBS"));
  var.Set("");
  EXPECT_FALSE(FlagSet("PPN_OBS"));
  var.Set("0");
  EXPECT_FALSE(FlagSet("PPN_OBS"));
  var.Set("1");
  EXPECT_TRUE(FlagSet("PPN_OBS"));
  var.Set("yes");
  EXPECT_TRUE(FlagSet("PPN_OBS"));
  var.Set("00");  // Only the exact string "0" means off.
  EXPECT_TRUE(FlagSet("PPN_OBS"));
}

TEST(EnvAccessorTest, Int64FallsBackOnlyWhenUnset) {
  ScopedEnvVar var("PPN_TRACE_CAPACITY");
  var.Unset();
  EXPECT_EQ(Int64Or("PPN_TRACE_CAPACITY", 123), 123);
  var.Set("4096");
  EXPECT_EQ(Int64Or("PPN_TRACE_CAPACITY", 123), 4096);
  var.Set("-7");
  EXPECT_EQ(Int64Or("PPN_TRACE_CAPACITY", 123), -7);
}

TEST(EnvAccessorTest, DoubleFallsBackOnlyWhenUnset) {
  ScopedEnvVar var("PPN_TRACE_MIN_US");
  var.Unset();
  EXPECT_DOUBLE_EQ(DoubleOr("PPN_TRACE_MIN_US", 2.5), 2.5);
  var.Set("0.75");
  EXPECT_DOUBLE_EQ(DoubleOr("PPN_TRACE_MIN_US", 2.5), 0.75);
}

TEST(EnvAccessorTest, StringOrUsesFallbackForEmpty) {
  ScopedEnvVar var("PPN_SCALE");
  var.Unset();
  EXPECT_EQ(StringOr("PPN_SCALE", "quick"), "quick");
  var.Set("");
  EXPECT_EQ(StringOr("PPN_SCALE", "quick"), "quick");
  var.Set("full");
  EXPECT_EQ(StringOr("PPN_SCALE", "quick"), "full");
}

TEST(EnvDeathTest, MalformedIntAbortsNamingTheVariable) {
  ScopedEnvVar var("PPN_TRACE_CAPACITY");
  var.Set("not-a-number");
  EXPECT_DEATH(Int64Or("PPN_TRACE_CAPACITY", 1), "PPN_TRACE_CAPACITY");
  var.Set("");  // Set-but-empty is malformed, not "use the fallback".
  EXPECT_DEATH(Int64Or("PPN_TRACE_CAPACITY", 1), "PPN_TRACE_CAPACITY");
}

TEST(EnvDeathTest, MalformedDoubleAborts) {
  ScopedEnvVar var("PPN_TRACE_MIN_US");
  var.Set("fast");
  EXPECT_DEATH(DoubleOr("PPN_TRACE_MIN_US", 0.0), "PPN_TRACE_MIN_US");
}

TEST(EnvDeathTest, MalformedSampleIntervalAborts) {
  ScopedEnvVar var("PPN_SAMPLE_MS");
  var.Set("abc");
  EXPECT_DEATH(Int64Or("PPN_SAMPLE_MS", 250), "PPN_SAMPLE_MS");
}

TEST(EnvDeathTest, UnregisteredNameAborts) {
  EXPECT_DEATH(Raw("PPN_NOT_A_REAL_KNOB"), "not registered");
  EXPECT_DEATH(IsSet("PPN_NOT_A_REAL_KNOB"), "not registered");
}

}  // namespace
}  // namespace ppn::env
