#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal_count = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal_count;
  }
  EXPECT_LT(equal_count, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngDeathTest, UniformIntRejectsNonPositive) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(0), "PPN_CHECK");
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, GammaMeanEqualsShape) {
  Rng rng(23);
  for (const double shape : {0.5, 1.0, 2.0, 7.5}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.1 * shape + 0.05) << "shape=" << shape;
  }
}

TEST(RngTest, GammaIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Gamma(0.3), 0.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(41);
  for (const double alpha : {0.2, 1.0, 5.0}) {
    const std::vector<double> sample = rng.Dirichlet(8, alpha);
    ASSERT_EQ(sample.size(), 8u);
    double total = 0.0;
    for (const double v : sample) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletMeanIsUniform) {
  Rng rng(43);
  std::vector<double> mean(4, 0.0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::vector<double> sample = rng.Dirichlet(4, 1.0);
    for (int d = 0; d < 4; ++d) mean[d] += sample[d];
  }
  for (int d = 0; d < 4; ++d) {
    EXPECT_NEAR(mean[d] / n, 0.25, 0.01);
  }
}

TEST(RngTest, PermutationIsBijection) {
  Rng rng(47);
  const std::vector<int64_t> perm = rng.Permutation(100);
  std::set<int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(RngTest, SplitProducesDecorrelatedStreams) {
  Rng parent(53);
  Rng child1 = parent.Split(1);
  Rng child2 = parent.Split(2);
  int equal_count = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++equal_count;
  }
  EXPECT_LT(equal_count, 3);
}

}  // namespace
}  // namespace ppn
