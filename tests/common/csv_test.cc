#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace ppn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTrip) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  table.rows = {{1.0, 2.5, -3.0}, {0.0, 1e-9, 4.25}};
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  CsvTable loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded));
  ASSERT_EQ(loaded.header, table.header);
  ASSERT_EQ(loaded.rows.size(), table.rows.size());
  for (size_t r = 0; r < table.rows.size(); ++r) {
    for (size_t c = 0; c < table.rows[r].size(); ++c) {
      EXPECT_NEAR(loaded.rows[r][c], table.rows[r][c], 1e-12);
    }
  }
}

TEST(CsvTest, EmptyRowsRoundTrip) {
  CsvTable table;
  table.header = {"x"};
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  CsvTable loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded));
  EXPECT_EQ(loaded.header.size(), 1u);
  EXPECT_TRUE(loaded.rows.empty());
}

TEST(CsvTest, WriteRejectsRaggedRows) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{1.0}};
  EXPECT_FALSE(WriteCsv(TempPath("ragged.csv"), table));
}

TEST(CsvTest, ReadFailsOnMissingFile) {
  CsvTable table;
  EXPECT_FALSE(ReadCsv(TempPath("does_not_exist.csv"), &table));
  EXPECT_TRUE(table.header.empty());
}

TEST(CsvTest, ReadFailsOnNonNumericCell) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1.0,hello\n";
  }
  CsvTable table;
  EXPECT_FALSE(ReadCsv(path, &table));
  EXPECT_TRUE(table.rows.empty());
}

TEST(CsvTest, ReadFailsOnRaggedRow) {
  const std::string path = TempPath("ragged_read.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1.0\n";
  }
  CsvTable table;
  EXPECT_FALSE(ReadCsv(path, &table));
}

TEST(CsvTest, WriteFailsOnBadPath) {
  CsvTable table;
  table.header = {"a"};
  EXPECT_FALSE(WriteCsv("/nonexistent_dir/zzz/file.csv", table));
}

}  // namespace
}  // namespace ppn
