#include "common/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace ppn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTrip) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  table.rows = {{1.0, 2.5, -3.0}, {0.0, 1e-9, 4.25}};
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  CsvTable loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded));
  ASSERT_EQ(loaded.header, table.header);
  ASSERT_EQ(loaded.rows.size(), table.rows.size());
  for (size_t r = 0; r < table.rows.size(); ++r) {
    for (size_t c = 0; c < table.rows[r].size(); ++c) {
      EXPECT_NEAR(loaded.rows[r][c], table.rows[r][c], 1e-12);
    }
  }
}

TEST(CsvTest, EmptyRowsRoundTrip) {
  CsvTable table;
  table.header = {"x"};
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  CsvTable loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded));
  EXPECT_EQ(loaded.header.size(), 1u);
  EXPECT_TRUE(loaded.rows.empty());
}

TEST(CsvTest, WriteRejectsRaggedRows) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{1.0}};
  EXPECT_FALSE(WriteCsv(TempPath("ragged.csv"), table));
}

TEST(CsvTest, ReadFailsOnMissingFile) {
  CsvTable table;
  EXPECT_FALSE(ReadCsv(TempPath("does_not_exist.csv"), &table));
  EXPECT_TRUE(table.header.empty());
}

TEST(CsvTest, ReadFailsOnNonNumericCell) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1.0,hello\n";
  }
  CsvTable table;
  EXPECT_FALSE(ReadCsv(path, &table));
  EXPECT_TRUE(table.rows.empty());
}

TEST(CsvTest, ReadFailsOnRaggedRow) {
  const std::string path = TempPath("ragged_read.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1.0\n";
  }
  CsvTable table;
  EXPECT_FALSE(ReadCsv(path, &table));
}

TEST(CsvTest, WriteFailsOnBadPath) {
  CsvTable table;
  table.header = {"a"};
  EXPECT_FALSE(WriteCsv("/nonexistent_dir/zzz/file.csv", table));
}

TEST(CsvTest, ReadRejectsTrailingGarbageInCell) {
  // Regression: strtod("1.5abc") parses 1.5 and the old reader accepted
  // it, silently truncating malformed data. A cell must be fully numeric.
  const std::string path = TempPath("trailing_garbage.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1.5abc,2.0\n";
  }
  CsvTable table;
  EXPECT_FALSE(ReadCsv(path, &table));
  EXPECT_TRUE(table.rows.empty());
}

TEST(CsvTest, ReadRejectsEmbeddedSecondNumber) {
  const std::string path = TempPath("two_numbers.csv");
  {
    std::ofstream out(path);
    out << "a\n1.5 2.5\n";
  }
  CsvTable table;
  EXPECT_FALSE(ReadCsv(path, &table));
}

TEST(CsvTest, ReadAcceptsSurroundingWhitespaceAndCrlf) {
  // Whitespace padding and DOS line endings are benign formatting, not
  // data corruption; the strict parse must still accept them.
  const std::string path = TempPath("whitespace.csv");
  {
    std::ofstream out(path);
    out << "a,b\n 1.5 ,2.5\r\n";
  }
  CsvTable table;
  ASSERT_TRUE(ReadCsv(path, &table));
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(table.rows[0][1], 2.5);
}

TEST(CsvTest, ReadRejectsWhitespaceOnlyCell) {
  const std::string path = TempPath("blank_cell.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1.0,  \n";
  }
  CsvTable table;
  EXPECT_FALSE(ReadCsv(path, &table));
}

TEST(CsvTest, WriteIsAtomic) {
  CsvTable table;
  table.header = {"a"};
  table.rows = {{1.0}};
  const std::string path = TempPath("atomic.csv");
  ASSERT_TRUE(WriteCsv(path, table));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

}  // namespace
}  // namespace ppn
