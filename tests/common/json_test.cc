#include "common/json.h"

#include <string>

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(JsonTest, ParsesScalars) {
  JsonValue value;
  ASSERT_TRUE(ParseJson("null", &value));
  EXPECT_TRUE(value.is_null());
  ASSERT_TRUE(ParseJson("true", &value));
  EXPECT_TRUE(value.AsBool());
  ASSERT_TRUE(ParseJson("false", &value));
  EXPECT_FALSE(value.AsBool());
  ASSERT_TRUE(ParseJson("42", &value));
  EXPECT_DOUBLE_EQ(value.AsNumber(), 42.0);
  ASSERT_TRUE(ParseJson("-1.5e-3", &value));
  EXPECT_DOUBLE_EQ(value.AsNumber(), -1.5e-3);
  ASSERT_TRUE(ParseJson("\"hi\"", &value));
  EXPECT_EQ(value.AsString(), "hi");
}

TEST(JsonTest, ParsesNestedContainers) {
  JsonValue value;
  ASSERT_TRUE(ParseJson(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": -0.25})", &value));
  ASSERT_TRUE(value.is_object());
  const JsonValue* a = value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[0].AsNumber(), 1.0);
  EXPECT_EQ(a->AsArray()[2].StringOr("b", ""), "x");
  EXPECT_TRUE(value.Find("c")->Find("d")->is_null());
  EXPECT_DOUBLE_EQ(value.NumberOr("e", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(value.NumberOr("missing", 7.0), 7.0);
}

TEST(JsonTest, ParsesStringEscapes) {
  JsonValue value;
  ASSERT_TRUE(ParseJson(R"("a\"b\\c\n\tA")", &value));
  EXPECT_EQ(value.AsString(), "a\"b\\c\n\tA");
}

TEST(JsonTest, RoundTripsSeventeenDigitDoubles) {
  // The RunLog writes %.17g; the parser must read those back bit-exactly.
  const double original = 0.1234567890123456789;
  char text[64];
  std::snprintf(text, sizeof(text), "%.17g", original);
  JsonValue value;
  ASSERT_TRUE(ParseJson(text, &value));
  EXPECT_EQ(value.AsNumber(), original);
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("", &value, &error));
  EXPECT_FALSE(ParseJson("{", &value, &error));
  EXPECT_FALSE(ParseJson("[1, ]", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\" 1}", &value, &error));
  EXPECT_FALSE(ParseJson("nulL", &value, &error));
  EXPECT_FALSE(ParseJson("1 2", &value, &error));  // Trailing garbage.
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, FindChecksObjectAndReturnsFirstMatch) {
  JsonValue value;
  ASSERT_TRUE(ParseJson(R"({"k": 1, "k": 2})", &value));
  ASSERT_NE(value.Find("k"), nullptr);
  EXPECT_DOUBLE_EQ(value.Find("k")->AsNumber(), 1.0);
  EXPECT_EQ(value.Find("absent"), nullptr);
}

}  // namespace
}  // namespace ppn
