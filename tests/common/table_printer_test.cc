#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter printer({"Algo", "APV", "SR"});
  printer.AddRow({"UBAH", "2.59", "3.87"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("Algo"), std::string::npos);
  EXPECT_NE(out.find("UBAH"), std::string::npos);
  EXPECT_NE(out.find("2.59"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter printer({"Algo", "APV", "TO"});
  printer.AddRow("PPN", {32.04, 5e-8});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("32.04"), std::string::npos);
  EXPECT_NE(out.find("5e-08"), std::string::npos);
}

TEST(TablePrinterTest, FormatCellFixedVsScientific) {
  EXPECT_EQ(TablePrinter::FormatCell(1.5, 2), "1.50");
  EXPECT_EQ(TablePrinter::FormatCell(0.0, 2), "0.00");
  EXPECT_EQ(TablePrinter::FormatCell(2e-7, 2), "2e-07");
  EXPECT_EQ(TablePrinter::FormatCell(-3.456, 1), "-3.5");
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter printer({"A", "LongHeader"});
  printer.AddRow({"LongLabelHere", "1"});
  const std::string out = printer.ToString();
  // Every rendered line has the same length when columns are aligned.
  size_t first_line_len = out.find('\n');
  size_t pos = first_line_len + 1;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_line_len);
    pos = next + 1;
  }
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter printer({"A", "B"});
  EXPECT_DEATH(printer.AddRow({"only one"}), "PPN_CHECK");
}

}  // namespace
}  // namespace ppn
