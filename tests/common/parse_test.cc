#include "common/parse.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(ParseInt64Test, AcceptsPlainIntegers) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("9223372036854775807"), 9223372036854775807ll);
}

TEST(ParseInt64Test, RejectsMalformedInput) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());   // atoi would give 12.
  EXPECT_FALSE(ParseInt64(" 12").has_value());   // No whitespace skipping.
  EXPECT_FALSE(ParseInt64("12 ").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("+5").has_value());    // from_chars: no '+'.
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());  // Overflow.
}

TEST(ParseDoubleTest, AcceptsUsualSpellings) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.0025"), 0.0025);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2.5E2"), -250.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("7"), 7.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(".5"), 0.5);
}

TEST(ParseDoubleTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("O.01").has_value());   // The classic typo.
  EXPECT_FALSE(ParseDouble("0.01x").has_value());  // atof would give 0.01.
  EXPECT_FALSE(ParseDouble(" 0.01").has_value());
  EXPECT_FALSE(ParseDouble("0,01").has_value());
  EXPECT_FALSE(ParseDouble("1e").has_value());
}

TEST(ParseOrDieTest, ReturnsParsedValues) {
  EXPECT_EQ(ParseInt64OrDie("5", "PPN_WORKERS"), 5);
  EXPECT_DOUBLE_EQ(ParseDoubleOrDie("0.01", "--costs"), 0.01);
}

TEST(ParseOrDieDeathTest, AbortsWithContextInMessage) {
  EXPECT_DEATH(ParseInt64OrDie("abc", "PPN_WORKERS"), "PPN_WORKERS");
  EXPECT_DEATH(ParseDoubleOrDie("O.01", "--costs"), "--costs");
  EXPECT_DEATH(ParseDoubleOrDie("", "--gamma"), "--gamma");
}

}  // namespace
}  // namespace ppn
