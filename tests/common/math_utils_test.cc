#include "common/math_utils.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ppn {
namespace {

TEST(SimplexProjectionTest, AlreadyOnSimplexIsIdentity) {
  const std::vector<double> v = {0.2, 0.3, 0.5};
  const std::vector<double> p = ProjectToSimplex(v);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(p[i], v[i], 1e-12);
}

TEST(SimplexProjectionTest, SingleElement) {
  const std::vector<double> p = ProjectToSimplex({42.0});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(SimplexProjectionTest, LargeValueDominates) {
  const std::vector<double> p = ProjectToSimplex({10.0, 0.0, 0.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(SimplexProjectionTest, SymmetricInputGivesUniform) {
  const std::vector<double> p = ProjectToSimplex({5.0, 5.0, 5.0, 5.0});
  for (const double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

// Property sweep: projection of random vectors is on the simplex and is
// the closest simplex point (checked against a dense grid of candidates
// via the optimality condition).
class SimplexProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProjectionProperty, ResultOnSimplexAndNotFurtherThanInputs) {
  Rng rng(GetParam());
  const int dim = 2 + GetParam() % 9;
  std::vector<double> v(dim);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  const std::vector<double> p = ProjectToSimplex(v);
  EXPECT_TRUE(IsOnSimplex(p, 1e-9));
  // Optimality: p must be at least as close to v as any random simplex
  // point.
  double dist_p = 0.0;
  for (int i = 0; i < dim; ++i) dist_p += (p[i] - v[i]) * (p[i] - v[i]);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> q = rng.Dirichlet(dim, 1.0);
    double dist_q = 0.0;
    for (int i = 0; i < dim; ++i) dist_q += (q[i] - v[i]) * (q[i] - v[i]);
    EXPECT_LE(dist_p, dist_q + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProjectionProperty,
                         ::testing::Range(1, 25));

TEST(IsOnSimplexTest, DetectsNegativeEntries) {
  EXPECT_FALSE(IsOnSimplex({-0.1, 0.6, 0.5}));
  EXPECT_TRUE(IsOnSimplex({0.0, 0.4, 0.6}));
}

TEST(IsOnSimplexTest, DetectsWrongSum) {
  EXPECT_FALSE(IsOnSimplex({0.5, 0.6}));
  EXPECT_TRUE(IsOnSimplex({0.5, 0.5}));
}

TEST(NormsTest, L1NormAndDistance) {
  EXPECT_DOUBLE_EQ(L1Norm({1.0, -2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(L1Distance({1.0, 2.0}, {3.0, 0.0}), 4.0);
}

TEST(NormsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

TEST(StatsTest, MeanVarianceStdDev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(SoftmaxTest, SumsToOneAndOrdersPreserved) {
  const std::vector<double> p = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  const std::vector<double> p = Softmax({1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-9);
  EXPECT_FALSE(std::isnan(p[1]));
}

TEST(ClampTest, Clamps) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(CorrelationTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {-1, -2, -3, -4}), -1.0,
              1e-12);
}

TEST(CorrelationTest, ZeroVarianceGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace ppn
