// PortfolioServer contract: the batched grad-free forward is bit-identical
// to per-user sequential serving at any batch size and any worker count
// (pool on or off), a single served user reproduces the backtester's
// wealth trajectory exactly, the bounded intake queue sheds/defers
// correctly, and serving metrics reach the obs layer.

#include "serve/portfolio_server.h"

#include <gtest/gtest.h>

#include "backtest/backtester.h"
#include "market/generator.h"
#include "obs/stats.h"
#include "ppn/strategy_adapter.h"
#include "tensor/pool.h"

namespace ppn::serve {
namespace {

market::OhlcPanel TestPanel(int64_t assets = 3, int64_t periods = 160) {
  market::SyntheticMarketConfig config;
  config.num_assets = assets;
  config.num_periods = periods;
  config.seed = 7;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.Generate();
}

core::PolicyConfig SmallConfig(int64_t assets = 3) {
  core::PolicyConfig config;
  config.variant = core::PolicyVariant::kPpn;
  config.num_assets = assets;
  config.window = 10;
  config.lstm_hidden = 4;
  config.block1_channels = 3;
  config.block2_channels = 4;
  return config;
}

std::unique_ptr<core::PolicyModule> MakeTestPolicy(int64_t assets = 3) {
  Rng init(1), dropout(2);
  return core::MakePolicy(SmallConfig(assets), &init, &dropout);
}

ServerConfig SmallServerConfig(int64_t max_batch, int workers = 0) {
  ServerConfig config;
  config.max_batch = max_batch;
  config.queue_capacity = 1024;
  config.workers = workers;
  config.costs = backtest::CostModel::Uniform(0.0025);
  return config;
}

struct UserResult {
  double wealth;
  std::vector<double> weights;
  std::vector<double> pvm_row;
  int64_t decisions;
};

/// Runs `num_users` staggered users for `ticks` rounds through one server
/// and returns their final states.
std::vector<UserResult> RunServer(const market::OhlcPanel& panel,
                                  core::PolicyModule* policy,
                                  int64_t max_batch, int workers,
                                  int64_t num_users, int64_t ticks) {
  PortfolioServer server(&panel, policy,
                         SmallServerConfig(max_batch, workers));
  for (int64_t u = 0; u < num_users; ++u) {
    server.AddUser(20 + (u % 7));  // Staggered starts: batch rows differ.
  }
  for (int64_t tick = 0; tick < ticks; ++tick) {
    for (int64_t u = 0; u < num_users; ++u) {
      EXPECT_TRUE(server.SubmitTick(u));
    }
    server.DrainPending();
  }
  std::vector<UserResult> results;
  for (int64_t u = 0; u < num_users; ++u) {
    const UserState& user = server.user(u);
    results.push_back(
        {user.wealth, user.weights, user.pvm_row, user.decisions});
  }
  return results;
}

void ExpectBitIdentical(const std::vector<UserResult>& a,
                        const std::vector<UserResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t u = 0; u < a.size(); ++u) {
    SCOPED_TRACE(label + ", user " + std::to_string(u));
    EXPECT_EQ(a[u].decisions, b[u].decisions);
    EXPECT_EQ(a[u].wealth, b[u].wealth);  // Bitwise, not approximate.
    ASSERT_EQ(a[u].weights.size(), b[u].weights.size());
    for (size_t i = 0; i < a[u].weights.size(); ++i) {
      EXPECT_EQ(a[u].weights[i], b[u].weights[i]) << "weights[" << i << "]";
      EXPECT_EQ(a[u].pvm_row[i], b[u].pvm_row[i]) << "pvm_row[" << i << "]";
    }
  }
}

TEST(PortfolioServerTest, BatchSizeNeverChangesResults) {
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  constexpr int64_t kUsers = 64;
  constexpr int64_t kTicks = 100;
  const std::vector<UserResult> batched =
      RunServer(panel, policy.get(), /*max_batch=*/64, /*workers=*/0, kUsers,
                kTicks);
  for (const int64_t max_batch : {int64_t{1}, int64_t{7}}) {
    const std::vector<UserResult> other = RunServer(
        panel, policy.get(), max_batch, /*workers=*/0, kUsers, kTicks);
    ExpectBitIdentical(batched, other,
                       "max_batch=" + std::to_string(max_batch));
  }
}

TEST(PortfolioServerTest, PoolDisabledMatchesPoolEnabled) {
  // Same comparison the PPN_NO_POOL=1 env switch exercises: the pool and
  // the plain heap path must produce bit-identical decisions.
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  constexpr int64_t kUsers = 16;
  constexpr int64_t kTicks = 100;
  const std::vector<UserResult> pooled = RunServer(
      panel, policy.get(), /*max_batch=*/16, /*workers=*/0, kUsers, kTicks);
  pool::ScopedPoolDisable no_pool;
  const std::vector<UserResult> unpooled = RunServer(
      panel, policy.get(), /*max_batch=*/16, /*workers=*/0, kUsers, kTicks);
  ExpectBitIdentical(pooled, unpooled, "pool off");
}

TEST(PortfolioServerTest, WorkerCountNeverChangesResults) {
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  constexpr int64_t kUsers = 24;
  constexpr int64_t kTicks = 40;
  const std::vector<UserResult> inline_run = RunServer(
      panel, policy.get(), /*max_batch=*/24, /*workers=*/0, kUsers, kTicks);
  for (const int workers : {1, 3}) {
    const std::vector<UserResult> pooled_run = RunServer(
        panel, policy.get(), /*max_batch=*/24, workers, kUsers, kTicks);
    ExpectBitIdentical(inline_run, pooled_run,
                       "workers=" + std::to_string(workers));
  }
}

TEST(PortfolioServerTest, SingleUserMatchesBacktesterExactly) {
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  constexpr int64_t kStart = 20;
  constexpr int64_t kEnd = 120;

  core::PolicyStrategy strategy(policy.get(), "PPN");
  backtest::BacktestConfig config;
  config.start_period = kStart;
  config.end_period = kEnd;
  config.costs = backtest::CostModel::Uniform(0.0025);
  const backtest::BacktestRecord record =
      backtest::RunBacktest(&strategy, panel, config);

  PortfolioServer server(&panel, policy.get(), SmallServerConfig(8));
  const int64_t user = server.AddUser(kStart);
  for (int64_t t = kStart; t < kEnd; ++t) {
    ASSERT_TRUE(server.SubmitTick(user));
    ASSERT_EQ(server.ProcessBatch(), 1);
    EXPECT_EQ(server.user(user).wealth, record.wealth_curve[t - kStart])
        << "wealth diverged from the backtester at t=" << t;
  }
  EXPECT_EQ(server.user(user).decisions, kEnd - kStart);
}

TEST(PortfolioServerTest, DuplicateTicksDeferToLaterRounds) {
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  PortfolioServer server(&panel, policy.get(), SmallServerConfig(8));
  const int64_t u0 = server.AddUser(20);
  const int64_t u1 = server.AddUser(20);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(server.SubmitTick(u0));
  ASSERT_TRUE(server.SubmitTick(u1));

  // Round one serves each user once; the two duplicate u0 ticks hold over.
  EXPECT_EQ(server.ProcessBatch(), 2);
  EXPECT_EQ(server.user(u0).decisions, 1);
  EXPECT_EQ(server.user(u1).decisions, 1);

  EXPECT_EQ(server.DrainPending(), 2);
  EXPECT_EQ(server.user(u0).decisions, 3);
  EXPECT_EQ(server.user(u0).next_period, 23);
  EXPECT_EQ(server.decisions(), 4);
  EXPECT_EQ(server.latency_seconds().size(), 4u);
}

TEST(PortfolioServerTest, FullQueueShedsTrySubmit) {
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  ServerConfig config = SmallServerConfig(8);
  config.queue_capacity = 4;
  PortfolioServer server(&panel, policy.get(), config);
  const int64_t user = server.AddUser(20);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(server.TrySubmitTick(user));
  EXPECT_FALSE(server.TrySubmitTick(user));  // Admission control kicks in.
  server.DrainPending();
  EXPECT_TRUE(server.TrySubmitTick(user));  // Capacity freed.
}

TEST(PortfolioServerTest, CloseIntakeRejectsAndDrains) {
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  PortfolioServer server(&panel, policy.get(), SmallServerConfig(8));
  const int64_t user = server.AddUser(20);
  ASSERT_TRUE(server.SubmitTick(user));
  server.CloseIntake();
  EXPECT_FALSE(server.SubmitTick(user));
  EXPECT_FALSE(server.TrySubmitTick(user));
  EXPECT_EQ(server.ProcessBatch(), 1);  // Admitted work still serves.
  EXPECT_EQ(server.ProcessBatch(), 0);  // Closed and fully drained.
}

TEST(PortfolioServerTest, MetricsReachTheObsLayer) {
#ifdef PPN_OBS_DISABLED
  GTEST_SKIP() << "obs compiled out (-DPPN_OBS_COMPILED=OFF)";
#endif
  obs::ScopedObsEnable obs_on;
  obs::ResetAll();
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  PortfolioServer server(&panel, policy.get(), SmallServerConfig(8));
  const int64_t u0 = server.AddUser(20);
  const int64_t u1 = server.AddUser(21);
  for (int tick = 0; tick < 5; ++tick) {
    ASSERT_TRUE(server.SubmitTick(u0));
    ASSERT_TRUE(server.SubmitTick(u1));
    server.DrainPending();
  }
  const obs::Snapshot snapshot = obs::TakeSnapshot();
  ASSERT_NE(snapshot.counters.find("serve.decisions"),
            snapshot.counters.end());
  EXPECT_EQ(snapshot.counters.at("serve.decisions"), 10.0);
  ASSERT_NE(snapshot.histograms.find("serve.decide.latency.seconds"),
            snapshot.histograms.end());
  EXPECT_EQ(snapshot.histograms.at("serve.decide.latency.seconds").count, 10);
  ASSERT_NE(snapshot.histograms.find("serve.batch.size"),
            snapshot.histograms.end());
  // The batched forward must not touch the tape.
  const auto tape = snapshot.counters.find("autograd.tape.nodes");
  EXPECT_TRUE(tape == snapshot.counters.end() || tape->second == 0.0);
}

TEST(PortfolioServerDeathTest, UserWithoutHistoryAborts) {
  const market::OhlcPanel panel = TestPanel();
  auto policy = MakeTestPolicy();
  PortfolioServer server(&panel, policy.get(), SmallServerConfig(8));
  EXPECT_DEATH(server.AddUser(5), "history");
}

TEST(PortfolioServerDeathTest, AssetMismatchAborts) {
  const market::OhlcPanel panel = TestPanel(/*assets=*/5);
  auto policy = MakeTestPolicy(/*assets=*/3);
  EXPECT_DEATH(
      PortfolioServer(&panel, policy.get(), SmallServerConfig(8)),
      "PPN_CHECK");
}

}  // namespace
}  // namespace ppn::serve
