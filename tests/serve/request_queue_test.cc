// RequestQueue: FIFO order, bounded admission (TryPush sheds, Push blocks),
// batched draining, and close semantics waking blocked producers/consumers.

#include "serve/request_queue.h"

#include <array>
#include <thread>

#include <gtest/gtest.h>

namespace ppn::serve {
namespace {

TickRequest Req(int64_t user_id) {
  return {user_id, std::chrono::steady_clock::now()};
}

TEST(RequestQueueTest, PopBatchPreservesFifoOrder) {
  RequestQueue queue(8);
  for (int64_t i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(Req(i)));
  std::vector<TickRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, 3), 3);
  EXPECT_EQ(queue.TryPopBatch(&out, 8), 2);
  ASSERT_EQ(out.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].user_id, i);
  EXPECT_EQ(queue.size(), 0);
}

TEST(RequestQueueTest, TryPushShedsWhenFull) {
  RequestQueue queue(2);
  EXPECT_TRUE(queue.TryPush(Req(0)));
  EXPECT_TRUE(queue.TryPush(Req(1)));
  EXPECT_FALSE(queue.TryPush(Req(2)));
  std::vector<TickRequest> out;
  queue.TryPopBatch(&out, 1);
  EXPECT_TRUE(queue.TryPush(Req(2)));
}

TEST(RequestQueueTest, TryPopBatchIsNonBlocking) {
  RequestQueue queue(4);
  std::vector<TickRequest> out;
  EXPECT_EQ(queue.TryPopBatch(&out, 4), 0);
  EXPECT_TRUE(out.empty());
}

TEST(RequestQueueTest, PushBlocksUntilSpaceFrees) {
  RequestQueue queue(1);
  ASSERT_TRUE(queue.TryPush(Req(0)));
  std::thread producer([&queue] { EXPECT_TRUE(queue.Push(Req(1))); });
  std::vector<TickRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, 1), 1);  // Frees the slot.
  producer.join();
  EXPECT_EQ(queue.size(), 1);
  EXPECT_EQ(queue.TryPopBatch(&out, 1), 1);
  EXPECT_EQ(out.back().user_id, 1);
}

TEST(RequestQueueTest, PopBatchBlocksUntilWork) {
  RequestQueue queue(4);
  std::vector<TickRequest> out;
  std::thread consumer([&queue, &out] { EXPECT_EQ(queue.PopBatch(&out, 4), 1); });
  queue.Push(Req(7));
  consumer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user_id, 7);
}

TEST(RequestQueueTest, CloseWakesBlockedProducerAndConsumer) {
  RequestQueue queue(1);
  ASSERT_TRUE(queue.TryPush(Req(0)));
  // Nothing drains the queue before Close(), so it stays FULL: the
  // producer can only be released by the close and must report
  // rejection. (A concurrent consumer here would race the close and
  // could legitimately free the slot first, making Push succeed.)
  std::thread producer([&queue] { EXPECT_FALSE(queue.Push(Req(1))); });
  queue.Close();
  producer.join();
  // Admitted work drains even after close; the next pop reports done.
  std::vector<TickRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, 1), 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user_id, 0);
  EXPECT_EQ(queue.PopBatch(&out, 1), 0);
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(Req(2)));

  // A consumer blocked on an EMPTY queue is likewise woken by close:
  // whether the pop starts before or after it, a closed empty queue
  // reports done rather than blocking forever.
  RequestQueue empty(1);
  std::thread consumer([&empty] {
    std::vector<TickRequest> drained;
    EXPECT_EQ(empty.PopBatch(&drained, 1), 0);
  });
  empty.Close();
  consumer.join();
}

TEST(RequestQueueTest, ManyProducersDeliverEverything) {
  RequestQueue queue(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(Req(p)));
      }
    });
  }
  std::vector<TickRequest> out;
  while (static_cast<int>(out.size()) < kProducers * kPerProducer) {
    queue.PopBatch(&out, 16);
  }
  for (auto& producer : producers) producer.join();
  std::array<int, kProducers> per_user{};
  for (const TickRequest& request : out) per_user[request.user_id]++;
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(per_user[p], kPerProducer);
}

}  // namespace
}  // namespace ppn::serve
