#include "bench_util.h"

#include <cstdio>

#include "common/check.h"
#include "common/csv.h"
#include "strategies/registry.h"

namespace ppn::bench {

NeuralBudget BudgetFor(RunScale scale, int64_t num_assets,
                       int64_t base_steps) {
  NeuralBudget budget;
  budget.steps = ScaledSteps(static_cast<int>(base_steps), scale,
                             /*full_multiplier=*/50);
  // The correlational conv costs O(m²): shrink the step budget for wide
  // panels so every dataset costs roughly the same wall-clock.
  if (num_assets > 12) {
    budget.steps = std::max<int64_t>(
        80, budget.steps * 12 / num_assets);
  }
  if (scale == RunScale::kFull) {
    budget.batch_size = 32;
    budget.learning_rate = 1e-3f;  // The paper's setting.
  }
  return budget;
}

core::PolicyConfig PaperPolicyConfig(core::PolicyVariant variant,
                                     int64_t num_assets, uint64_t seed) {
  core::PolicyConfig config;
  config.variant = variant;
  config.num_assets = num_assets;
  config.window = 30;
  config.lstm_hidden = 16;
  config.block1_channels = 8;
  config.block2_channels = 16;
  // The paper uses dropout 0.2 over 1e5 training steps; at the harness's
  // reduced step budgets 0.1 reaches comparable regularization without
  // drowning the gradient signal (see EXPERIMENTS.md).
  config.dropout = 0.1f;
  config.seed = seed;
  return config;
}

NeuralRunResult RunNeural(const market::MarketDataset& dataset,
                          const NeuralRunOptions& options, RunScale scale) {
  const int64_t m = dataset.panel.num_assets();
  const NeuralBudget budget = BudgetFor(scale, m, options.base_steps);
  Rng init(options.seed * 7919 + 13);
  Rng dropout(options.seed * 104729 + 17);
  auto policy =
      core::MakePolicy(PaperPolicyConfig(options.variant, m, options.seed),
                       &init, &dropout);
  core::TrainerConfig tc;
  tc.batch_size = budget.batch_size;
  tc.steps = budget.steps;
  tc.learning_rate = budget.learning_rate;
  tc.seed = options.seed * 31 + 7;
  tc.weight_decay = 1e-3f;  // AdamW decay; calibrated for short budgets.
  tc.reward.gamma = options.gamma;
  tc.reward.lambda = options.lambda;
  tc.reward.cost_rate = options.train_cost_rate >= 0.0
                            ? options.train_cost_rate
                            : options.cost_rate;
  // EIIE optimizes the plain rebalanced log-return: its cost factor is a
  // stop-gradient constant (Jiang et al. 2017), unlike the cost-sensitive
  // reward's differentiable cost + explicit L1 constraint.
  tc.reward.differentiable_cost =
      options.variant != core::PolicyVariant::kEiie;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, tc);
  trainer.Train();
  core::PolicyStrategy strategy(policy.get(),
                                core::VariantName(options.variant));
  NeuralRunResult result;
  result.record =
      backtest::RunOnTestRange(&strategy, dataset, options.cost_rate);
  result.metrics = backtest::ComputeMetrics(result.record);
  return result;
}

NeuralRunResult RunClassic(const std::string& name,
                           const market::MarketDataset& dataset,
                           double cost_rate) {
  auto strategy = strategies::MakeClassicBaseline(name);
  NeuralRunResult result;
  result.record = backtest::RunOnTestRange(strategy.get(), dataset, cost_rate);
  result.metrics = backtest::ComputeMetrics(result.record);
  return result;
}

std::string WriteWealthCurves(
    const std::string& file_stem,
    const std::vector<std::pair<std::string, std::vector<double>>>& curves) {
  PPN_CHECK(!curves.empty());
  CsvTable table;
  table.header.push_back("period");
  size_t length = 0;
  for (const auto& [label, curve] : curves) {
    table.header.push_back(label);
    length = std::max(length, curve.size());
  }
  for (size_t t = 0; t < length; ++t) {
    std::vector<double> row;
    row.push_back(static_cast<double>(t));
    for (const auto& [label, curve] : curves) {
      row.push_back(t < curve.size() ? curve[t] : curve.back());
    }
    table.rows.push_back(std::move(row));
  }
  const std::string path = file_stem + ".csv";
  if (!WriteCsv(path, table)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
  return path;
}

void PrintBenchHeader(const std::string& title, RunScale scale) {
  std::printf("==== %s (scale: %s) ====\n", title.c_str(),
              RunScaleName(scale));
  std::printf(
      "Synthetic-market reproduction: compare SHAPES (orderings, trends),\n"
      "not absolute values, against the paper. See EXPERIMENTS.md.\n\n");
}

}  // namespace ppn::bench
