#include "bench_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/check.h"
#include "common/csv.h"
#include "common/env.h"
#include "exec/thread_pool.h"
#include "obs/health.h"
#include "obs/sampler.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::bench {

namespace {

std::string SlugFromTitle(const std::string& title) {
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? "results" : slug;
}

/// Groups rows by a key (first-appearance order) and prints one table per
/// group with the strategy label leading each row.
void PrintGrouped(
    const std::vector<exec::CellResult>& rows,
    const std::vector<std::string>& metric_columns,
    const std::string& label_header, int precision,
    const std::function<std::string(const exec::CellResult&)>& group_of) {
  std::vector<std::string> group_order;
  for (const exec::CellResult& row : rows) {
    const std::string group = group_of(row);
    bool seen = false;
    for (const std::string& existing : group_order) {
      if (existing == group) seen = true;
    }
    if (!seen) group_order.push_back(group);
  }
  for (const std::string& group : group_order) {
    std::printf("--- %s ---\n", group.c_str());
    std::vector<std::pair<std::string, const exec::CellResult*>> table_rows;
    for (const exec::CellResult& row : rows) {
      if (group_of(row) == group) {
        table_rows.emplace_back(row.key.strategy, &row);
      }
    }
    const TablePrinter printer = exec::MakeMetricsTable(
        label_header, table_rows, metric_columns, precision);
    std::printf("%s\n", printer.ToString().c_str());
  }
}

}  // namespace

BenchContext::BenchContext(std::string title)
    : title_(std::move(title)),
      scale_(GetRunScale()),
      runner_(exec::DefaultWorkerCount()) {
  PrintBenchHeader(title_, scale_);
  // `PPN_STATS_JSONL=<path>` streams periodic registry samples for the
  // whole bench binary (tail with `ppn_cli top --dir <path>`).
  sampler_ = obs::StartSamplerFromEnv("bench." + SlugFromTitle(title_));
}

BenchContext::~BenchContext() {
  if (sampler_ != nullptr) {
    const std::string stats_path = sampler_->path();
    if (sampler_->Stop()) {
      std::fprintf(stderr, "stats stream written to %s\n",
                   stats_path.c_str());
    } else {
      std::fprintf(stderr,
                   "WARNING: stats stream %s lost writes (queue overflow "
                   "or I/O error)\n",
                   stats_path.c_str());
    }
  }
  // A bench dtor cannot change the process exit status, but the printed
  // `PPN_HEALTH: PASS|FAIL` token is what run_benches.sh gates on.
  obs::ReportHealthIfRequested();
  if (obs::WriteProfileIfRequested()) {
    std::fprintf(stderr, "profile written to %s\n",
                 env::StringOr("PPN_PROFILE_JSON", "").c_str());
  }
  if (obs::WriteTraceIfRequested()) {
    std::fprintf(stderr, "trace written to %s (open in ui.perfetto.dev)\n",
                 env::StringOr("PPN_TRACE_JSON", "").c_str());
  }
}

const market::MarketDataset& BenchContext::dataset(market::DatasetId id) {
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    it = datasets_.emplace(id, market::MakeDataset(id, scale_)).first;
  }
  return it->second;
}

std::vector<exec::CellResult> BenchContext::Run(
    exec::ExperimentSpec spec) const {
  spec.scale = scale_;
  if (spec.title.empty()) spec.title = title_;
  // `PPN_RUNLOG_DIR=<dir>` streams one per-step JSONL run log per trained
  // cell there (see obs/run_log.h; summarize with `ppn_cli report`).
  if (spec.telemetry_dir.empty()) {
    spec.telemetry_dir = env::StringOr("PPN_RUNLOG_DIR", "");
  }
  std::vector<exec::CellResult> rows = runner_.Run(spec);
  if (env::HasValue("PPN_RESULTS_JSON")) {
    const std::string path = env::StringOr("PPN_RESULTS_JSON", "") + "/" +
                             SlugFromTitle(spec.title) + ".cells.json";
    if (!exec::WriteResultsJson(path, rows)) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }
  // Per-cell wall times, printed ONLY under profiling so the metric output
  // of a plain run stays bit-identical to an uninstrumented build.
  if (obs::Enabled() && !rows.empty()) {
    std::printf("--- cell wall times (profiling) ---\n");
    TablePrinter timing({"Cell", "wall(s)"});
    for (const exec::CellResult& row : rows) {
      timing.AddRow(row.key.strategy + " | " + row.key.dataset + " | psi=" +
                        TablePrinter::FormatCell(row.key.cost_rate, 4) +
                        " | seed=" + std::to_string(row.key.seed),
                    {row.wall_seconds}, 3);
    }
    std::printf("%s\n", timing.ToString().c_str());
    // Distribution summary across every cell the process has run so far
    // (the merged exec.cell.seconds histogram; ±2× bucket resolution).
    const obs::Snapshot snapshot = obs::TakeSnapshot();
    if (const auto it = snapshot.histograms.find("exec.cell.seconds");
        it != snapshot.histograms.end() && it->second.count > 0) {
      std::printf(
          "cell seconds: n=%lld p50=%.3f p95=%.3f p99=%.3f max=%.3f\n\n",
          static_cast<long long>(it->second.count),
          it->second.Percentile(0.50), it->second.Percentile(0.95),
          it->second.Percentile(0.99), it->second.max);
    }
  }
  return rows;
}

void BenchContext::PrintByDataset(
    const std::vector<exec::CellResult>& rows,
    const std::vector<std::string>& metric_columns,
    const std::string& label_header, int precision) const {
  PrintGrouped(rows, metric_columns, label_header, precision,
               [](const exec::CellResult& row) { return row.key.dataset; });
}

void BenchContext::PrintByCostRate(
    const std::vector<exec::CellResult>& rows,
    const std::vector<std::string>& metric_columns,
    const std::string& label_header, int precision) const {
  PrintGrouped(rows, metric_columns, label_header, precision,
               [](const exec::CellResult& row) {
                 char buffer[32];
                 std::snprintf(buffer, sizeof(buffer), "c = %.2f%%",
                               row.key.cost_rate * 100.0);
                 return std::string(buffer);
               });
}

std::string WriteWealthCurves(
    const std::string& file_stem,
    const std::vector<std::pair<std::string, std::vector<double>>>& curves) {
  PPN_CHECK(!curves.empty());
  CsvTable table;
  table.header.push_back("period");
  size_t length = 0;
  for (const auto& [label, curve] : curves) {
    table.header.push_back(label);
    length = std::max(length, curve.size());
  }
  for (size_t t = 0; t < length; ++t) {
    std::vector<double> row;
    row.push_back(static_cast<double>(t));
    for (const auto& [label, curve] : curves) {
      row.push_back(t < curve.size() ? curve[t] : curve.back());
    }
    table.rows.push_back(std::move(row));
  }
  const std::string path = file_stem + ".csv";
  if (!WriteCsv(path, table)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
  return path;
}

void PrintBenchHeader(const std::string& title, RunScale scale) {
  std::printf("==== %s (scale: %s) ====\n", title.c_str(),
              RunScaleName(scale));
  std::printf(
      "Synthetic-market reproduction: compare SHAPES (orderings, trends),\n"
      "not absolute values, against the paper. See EXPERIMENTS.md.\n\n");
}

}  // namespace ppn::bench
