// Reproduces Table 8: all fifteen algorithms on the S&P500 stock dataset
// (daily bars, 94-period test window) — APV, SR(%), CR, TO.
//
// Expected shape (paper): the same ordering as the crypto datasets
// (PPN > PPN-I > EIIE > classic baselines), demonstrating that the method
// generalizes beyond crypto-currencies.

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context("Table 8: S&P500 stock dataset");

  exec::ExperimentSpec spec;
  spec.datasets = {market::DatasetId::kSp500};
  for (const std::string& name : strategies::ClassicBaselineNames()) {
    spec.strategies.push_back({.name = name});
  }
  strategies::StrategySpec eiie{.name = "EIIE"};
  eiie.gamma = 0.0;
  eiie.lambda = 0.0;
  eiie.base_steps = 600;  // Counteract the asset-count step scaling.
  spec.strategies.push_back(eiie);
  strategies::StrategySpec ppn_i{.name = "PPN-I"};
  ppn_i.base_steps = 600;
  spec.strategies.push_back(ppn_i);
  strategies::StrategySpec ppn{.name = "PPN"};
  ppn.base_steps = 600;
  spec.strategies.push_back(ppn);

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  context.PrintByDataset(rows, {"APV", "SR(%)", "CR", "TO"});
  return 0;
}
