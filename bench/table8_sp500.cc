// Reproduces Table 8: all fifteen algorithms on the S&P500 stock dataset
// (daily bars, 94-period test window) — APV, SR(%), CR, TO.
//
// Expected shape (paper): the same ordering as the crypto datasets
// (PPN > PPN-I > EIIE > classic baselines), demonstrating that the method
// generalizes beyond crypto-currencies.

#include <cstdio>

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Table 8: S&P500 stock dataset", scale);
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kSp500, scale);
  constexpr double kCostRate = 0.0025;

  TablePrinter printer({"Algos", "APV", "SR(%)", "CR", "TO"});
  auto add_row = [&printer](const std::string& name,
                            const backtest::Metrics& metrics) {
    printer.AddRow(name, {metrics.apv, metrics.sr_pct, metrics.cr,
                          metrics.turnover}, 3);
  };
  for (const std::string& name : strategies::ClassicBaselineNames()) {
    add_row(name, bench::RunClassic(name, dataset, kCostRate).metrics);
  }
  bench::NeuralRunOptions eiie;
  eiie.variant = core::PolicyVariant::kEiie;
  eiie.gamma = 0.0;
  eiie.lambda = 0.0;
  eiie.base_steps = 600;  // Counteract the asset-count step scaling.
  add_row("EIIE", bench::RunNeural(dataset, eiie, scale).metrics);
  bench::NeuralRunOptions ppn_i;
  ppn_i.variant = core::PolicyVariant::kPpnI;
  ppn_i.base_steps = 600;
  add_row("PPN-I", bench::RunNeural(dataset, ppn_i, scale).metrics);
  bench::NeuralRunOptions ppn;
  ppn.variant = core::PolicyVariant::kPpn;
  ppn.base_steps = 600;
  add_row("PPN", bench::RunNeural(dataset, ppn, scale).metrics);

  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
