// Engineering microbenchmarks (google-benchmark): throughput of the hot
// kernels underneath training — matmul, im2col/col2im, conv2d forward and
// backward, LSTM steps, softmax, the transaction-cost fixed point, and a
// full policy forward pass.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "backtest/costs.h"
#include "common/random.h"
#include "nn/conv.h"
#include "nn/lstm.h"
#include "ppn/policy_module.h"
#include "tensor/ops.h"
#include "tensor/pool.h"

namespace ppn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomNormal({n, n}, 0.0f, 1.0f, &rng);
  Tensor b = RandomNormal({n, n}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  const int64_t rows = 11520;
  const int64_t patch = state.range(0);
  Rng rng(1);
  Tensor cols = RandomNormal({rows, patch}, 0.0f, 1.0f, &rng);
  Tensor weights = RandomNormal({16, patch}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(cols, weights));
  }
  state.SetItemsProcessed(state.iterations() * rows * patch * 16);
}
BENCHMARK(BM_MatMulTransB)->Arg(48)->Arg(192);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(1);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  const Conv2dGeometry g = nn::CausalTimeConvGeometry(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Im2Col(input, g));
  }
}
BENCHMARK(BM_Im2Col);

void BM_Col2Im(benchmark::State& state) {
  Rng rng(1);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  const Conv2dGeometry g = nn::CausalTimeConvGeometry(3, 2);
  Tensor cols = Im2Col(input, g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Col2Im(cols, input.shape(), g));
  }
}
BENCHMARK(BM_Col2Im);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2dLayer layer(16, 16, nn::CorrelationalConvGeometry(12), &rng);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    ag::Var out = layer.Forward(ag::Constant(input));
    benchmark::DoNotOptimize(out->value().Data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dForwardBackward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2dLayer layer(16, 16, nn::CorrelationalConvGeometry(12), &rng);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    layer.ZeroGrad();
    ag::Var in = ag::Parameter(input);
    ag::Var out = layer.Forward(in);
    ag::Backward(ag::SumAll(ag::Mul(out, out)));
    benchmark::DoNotOptimize(in->grad().Data());
  }
}
BENCHMARK(BM_Conv2dForwardBackward);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(1);
  nn::Lstm lstm(4, 16, &rng);
  Tensor sequence = RandomNormal({192, 30, 4}, 0.0f, 0.1f, &rng);
  for (auto _ : state) {
    ag::Var out = lstm.ForwardLastHidden(ag::Constant(sequence));
    benchmark::DoNotOptimize(out->value().Data());
  }
}
BENCHMARK(BM_LstmForward);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(1);
  Tensor logits = RandomNormal({128, 45}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    ag::Var out = ag::SoftmaxRows(ag::Constant(logits));
    benchmark::DoNotOptimize(out->value().Data());
  }
}
BENCHMARK(BM_SoftmaxRows);

// Elementwise: the fused (statically dispatched) kernels against the
// type-erased std::function path they replaced on the hot autograd ops.

void BM_ElementwiseMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomNormal({n}, 0.0f, 1.0f, &rng);
  Tensor b = RandomNormal({n}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseMul)->Arg(1024)->Arg(65536);

void BM_MapTypeErased(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomNormal({n}, 0.0f, 1.0f, &rng);
  std::function<float(float)> fn = [](float x) { return x * 1.5f + 2.0f; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(Map(a, fn));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MapTypeErased)->Arg(65536);

void BM_MapFused(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomNormal({n}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapFused(a, [](float x) { return x * 1.5f + 2.0f; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MapFused)->Arg(65536);

// Allocator: one alloc+free cycle per iteration, distinguishing the
// zero-filled constructor, the uninitialized fast path, and the pool
// bypass (what every allocation cost before the pool existed).

void BM_TensorAllocZeroed(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    Tensor t({n});
    benchmark::DoNotOptimize(t.Data());
  }
}
BENCHMARK(BM_TensorAllocZeroed)->Arg(1024)->Arg(65536);

void BM_TensorAllocUninitialized(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    Tensor t = Tensor::Uninitialized({n});
    benchmark::DoNotOptimize(t.Data());
  }
}
BENCHMARK(BM_TensorAllocUninitialized)->Arg(1024)->Arg(65536);

void BM_TensorAllocNoPool(benchmark::State& state) {
  const int64_t n = state.range(0);
  pool::ScopedPoolDisable disable;
  for (auto _ : state) {
    Tensor t({n});
    benchmark::DoNotOptimize(t.Data());
  }
}
BENCHMARK(BM_TensorAllocNoPool)->Arg(1024)->Arg(65536);

void BM_Concat(benchmark::State& state) {
  Rng rng(1);
  // The policy head's shape: per-asset feature blocks glued along the
  // channel axis.
  std::vector<Tensor> parts;
  for (int i = 0; i < 4; ++i) {
    parts.push_back(RandomNormal({64, 16, 30}, 0.0f, 1.0f, &rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Concat(parts, 1));
  }
}
BENCHMARK(BM_Concat);

// --- Autograd bookkeeping: tape-recording vs InferenceMode. --------------
// A deep chain of small elementwise ops isolates what the tape itself
// costs: per-op Node allocation, parent links, backward closures, and —
// the dominant term — every intermediate staying alive until the graph is
// dropped, defeating the pool's buffer reuse. Under ag::InferenceMode the
// same chain recycles two buffers and keeps no graph.

void BM_AutogradChainTape(benchmark::State& state) {
  const int64_t depth = state.range(0);
  Rng rng(1);
  const ag::Var weight = ag::Parameter(RandomNormal({64}, 0.0f, 0.1f, &rng));
  for (auto _ : state) {
    ag::Var x = ag::Constant(Tensor::Full({64}, 0.5f));
    for (int64_t i = 0; i < depth; ++i) {
      x = ag::Tanh(ag::Mul(x, weight));
    }
    benchmark::DoNotOptimize(x->value().Data());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_AutogradChainTape)->Arg(256);

void BM_AutogradChainInferenceMode(benchmark::State& state) {
  const int64_t depth = state.range(0);
  Rng rng(1);
  const ag::Var weight = ag::Parameter(RandomNormal({64}, 0.0f, 0.1f, &rng));
  for (auto _ : state) {
    ag::InferenceMode inference;
    ag::Var x = ag::Constant(Tensor::Full({64}, 0.5f));
    for (int64_t i = 0; i < depth; ++i) {
      x = ag::Tanh(ag::Mul(x, weight));
    }
    benchmark::DoNotOptimize(x->value().Data());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_AutogradChainInferenceMode)->Arg(256);

// --- Full policy forward: tape-recording vs InferenceMode. ---------------
// The pair quantifies what ag::InferenceMode buys a serving forward: no
// tape nodes, no parent links, eagerly-freed intermediates. Same weights,
// same inputs, bit-identical outputs — only the autograd bookkeeping
// differs.

core::PolicyConfig BenchPolicyConfig() {
  core::PolicyConfig config;
  config.variant = core::PolicyVariant::kPpn;
  config.num_assets = 11;
  config.window = 30;
  return config;
}

void BM_PolicyForwardTape(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const core::PolicyConfig config = BenchPolicyConfig();
  Rng init(1), dropout(2), data(3);
  auto policy = core::MakePolicy(config, &init, &dropout);
  policy->SetTraining(false);
  const Tensor windows = RandomNormal(
      {batch, config.num_assets, config.window, 4}, 1.0f, 0.01f, &data);
  const Tensor prev =
      Tensor::Full({batch, config.num_assets},
                   1.0f / static_cast<float>(config.num_assets));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy->Forward(ag::Constant(windows), ag::Constant(prev)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PolicyForwardTape)->Arg(1)->Arg(64);

void BM_PolicyForwardInferenceMode(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const core::PolicyConfig config = BenchPolicyConfig();
  Rng init(1), dropout(2), data(3);
  auto policy = core::MakePolicy(config, &init, &dropout);
  policy->SetTraining(false);
  const Tensor windows = RandomNormal(
      {batch, config.num_assets, config.window, 4}, 1.0f, 0.01f, &data);
  const Tensor prev =
      Tensor::Full({batch, config.num_assets},
                   1.0f / static_cast<float>(config.num_assets));
  for (auto _ : state) {
    ag::InferenceMode inference;
    benchmark::DoNotOptimize(
        policy->Forward(ag::Constant(windows), ag::Constant(prev)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PolicyForwardInferenceMode)->Arg(1)->Arg(64);

void BM_CostFixedPoint(benchmark::State& state) {
  Rng rng(1);
  const int m = static_cast<int>(state.range(0));
  std::vector<double> prev = rng.Dirichlet(m + 1, 1.0);
  std::vector<double> target = rng.Dirichlet(m + 1, 1.0);
  const backtest::CostModel model = backtest::CostModel::Uniform(0.0025);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backtest::SolveNetWealthFactor(prev, target, model));
  }
}
BENCHMARK(BM_CostFixedPoint)->Arg(12)->Arg(44);

}  // namespace
}  // namespace ppn

BENCHMARK_MAIN();
