// Engineering microbenchmarks (google-benchmark): throughput of the hot
// kernels underneath training — matmul, im2col/col2im, conv2d forward and
// backward, LSTM steps, softmax, the transaction-cost fixed point, and a
// full policy forward pass.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "backtest/costs.h"
#include "common/random.h"
#include "nn/conv.h"
#include "nn/lstm.h"
#include "tensor/ops.h"

namespace ppn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomNormal({n, n}, 0.0f, 1.0f, &rng);
  Tensor b = RandomNormal({n, n}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  const int64_t rows = 11520;
  const int64_t patch = state.range(0);
  Rng rng(1);
  Tensor cols = RandomNormal({rows, patch}, 0.0f, 1.0f, &rng);
  Tensor weights = RandomNormal({16, patch}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(cols, weights));
  }
  state.SetItemsProcessed(state.iterations() * rows * patch * 16);
}
BENCHMARK(BM_MatMulTransB)->Arg(48)->Arg(192);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(1);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  const Conv2dGeometry g = nn::CausalTimeConvGeometry(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Im2Col(input, g));
  }
}
BENCHMARK(BM_Im2Col);

void BM_Col2Im(benchmark::State& state) {
  Rng rng(1);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  const Conv2dGeometry g = nn::CausalTimeConvGeometry(3, 2);
  Tensor cols = Im2Col(input, g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Col2Im(cols, input.shape(), g));
  }
}
BENCHMARK(BM_Col2Im);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2dLayer layer(16, 16, nn::CorrelationalConvGeometry(12), &rng);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    ag::Var out = layer.Forward(ag::Constant(input));
    benchmark::DoNotOptimize(out->value().Data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dForwardBackward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2dLayer layer(16, 16, nn::CorrelationalConvGeometry(12), &rng);
  Tensor input = RandomNormal({16, 16, 12, 30}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    layer.ZeroGrad();
    ag::Var in = ag::Parameter(input);
    ag::Var out = layer.Forward(in);
    ag::Backward(ag::SumAll(ag::Mul(out, out)));
    benchmark::DoNotOptimize(in->grad().Data());
  }
}
BENCHMARK(BM_Conv2dForwardBackward);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(1);
  nn::Lstm lstm(4, 16, &rng);
  Tensor sequence = RandomNormal({192, 30, 4}, 0.0f, 0.1f, &rng);
  for (auto _ : state) {
    ag::Var out = lstm.ForwardLastHidden(ag::Constant(sequence));
    benchmark::DoNotOptimize(out->value().Data());
  }
}
BENCHMARK(BM_LstmForward);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(1);
  Tensor logits = RandomNormal({128, 45}, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    ag::Var out = ag::SoftmaxRows(ag::Constant(logits));
    benchmark::DoNotOptimize(out->value().Data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_CostFixedPoint(benchmark::State& state) {
  Rng rng(1);
  const int m = static_cast<int>(state.range(0));
  std::vector<double> prev = rng.Dirichlet(m + 1, 1.0);
  std::vector<double> target = rng.Dirichlet(m + 1, 1.0);
  const backtest::CostModel model = backtest::CostModel::Uniform(0.0025);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backtest::SolveNetWealthFactor(prev, target, model));
  }
}
BENCHMARK(BM_CostFixedPoint)->Arg(12)->Arg(44);

}  // namespace
}  // namespace ppn

BENCHMARK_MAIN();
