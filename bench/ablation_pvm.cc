// Ablation (ours, called out in DESIGN.md): effect of the recursive
// previous-action input during evaluation. The paper's Section 4.4 argues
// the recursive mechanism discourages portfolio churn; here we compare the
// trained PPN evaluated (a) normally — feeding back its own previous
// action — and (b) with the recursive input frozen to the uniform
// portfolio, which removes the "stay where you are" signal.
//
// Expected shape: freezing the recursive input raises turnover.

#include <cstdio>

#include "bench_util.h"

namespace ppn {
namespace {

/// Evaluation adapter that lies to the policy about its previous action.
class FrozenPrevStrategy : public backtest::Strategy {
 public:
  explicit FrozenPrevStrategy(core::PolicyModule* policy) : policy_(policy) {}
  std::string name() const override { return "PPN(frozen prev)"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override {
    (void)panel;
    (void)first_period;
    policy_->SetTraining(false);
  }
  std::vector<double> Decide(const market::OhlcPanel& panel, int64_t period,
                             const std::vector<double>& prev_hat) override {
    (void)prev_hat;
    const int64_t m = policy_->config().num_assets;
    const int64_t k = policy_->config().window;
    Tensor window = market::NormalizedWindow(panel, period - 1, k);
    Tensor prev = Tensor::Full({1, m}, 1.0f / static_cast<float>(m));
    ag::Var out = policy_->Forward(
        ag::Constant(window.Reshaped({1, m, k, market::kNumPriceFields})),
        ag::Constant(prev));
    std::vector<double> action(m + 1);
    for (int64_t i = 0; i <= m; ++i) action[i] = out->value()[i];
    return action;
  }

 private:
  core::PolicyModule* policy_;
};

}  // namespace
}  // namespace ppn

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Ablation: recursive previous-action input", scale);
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, scale);
  const int64_t m = dataset.panel.num_assets();
  constexpr double kCostRate = 0.0025;

  Rng init(2023);
  Rng dropout(2024);
  auto policy = core::MakePolicy(
      bench::PaperPolicyConfig(core::PolicyVariant::kPpn, m, 1), &init,
      &dropout);
  core::TrainerConfig tc;
  tc.batch_size = 16;
  tc.steps = bench::BudgetFor(scale, m).steps;
  tc.learning_rate = bench::BudgetFor(scale, m).learning_rate;
  tc.reward.cost_rate = kCostRate;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, tc);
  trainer.Train();

  TablePrinter printer({"Evaluation mode", "APV", "TO", "SR(%)"});
  {
    core::PolicyStrategy normal(policy.get(), "PPN");
    const backtest::Metrics metrics = backtest::ComputeMetrics(
        backtest::RunOnTestRange(&normal, dataset, kCostRate));
    printer.AddRow("recursive prev action",
                   {metrics.apv, metrics.turnover, metrics.sr_pct}, 3);
  }
  {
    FrozenPrevStrategy frozen(policy.get());
    const backtest::Metrics metrics = backtest::ComputeMetrics(
        backtest::RunOnTestRange(&frozen, dataset, kCostRate));
    printer.AddRow("frozen uniform prev action",
                   {metrics.apv, metrics.turnover, metrics.sr_pct}, 3);
  }
  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
