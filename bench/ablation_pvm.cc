// Ablation (ours, called out in DESIGN.md): effect of the recursive
// previous-action input during evaluation. The paper's Section 4.4 argues
// the recursive mechanism discourages portfolio churn; here we compare the
// trained PPN evaluated (a) normally — feeding back its own previous
// action — and (b) with the recursive input frozen to the uniform
// portfolio, which removes the "stay where you are" signal.
//
// Expected shape: freezing the recursive input raises turnover.

#include <cstdio>

#include "backtest/backtester.h"
#include "bench_util.h"
#include "ppn/policy_module.h"
#include "strategies/registry.h"

namespace ppn {
namespace {

/// Evaluation adapter that lies to the policy about its previous action.
/// Bespoke eval probe, not a portfolio strategy — hence not registered.
class FrozenPrevStrategy : public backtest::Strategy {
 public:
  explicit FrozenPrevStrategy(core::PolicyModule* policy) : policy_(policy) {}
  std::string name() const override { return "PPN(frozen prev)"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override {
    (void)panel;
    (void)first_period;
    policy_->SetTraining(false);
  }
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override {
    (void)prev_hat;
    const int64_t m = policy_->config().num_assets;
    const int64_t k = policy_->config().window;
    Tensor window = market::NormalizedWindow(view.panel, view.period - 1, k);
    Tensor prev = Tensor::Full({1, m}, 1.0f / static_cast<float>(m));
    ag::Var out = policy_->Forward(
        ag::Constant(window.Reshaped({1, m, k, market::kNumPriceFields})),
        ag::Constant(prev));
    std::vector<double> action(m + 1);
    for (int64_t i = 0; i <= m; ++i) action[i] = out->value()[i];
    return action;
  }

 private:
  core::PolicyModule* policy_;
};

}  // namespace
}  // namespace ppn

int main() {
  using namespace ppn;
  bench::BenchContext context("Ablation: recursive previous-action input");
  const market::MarketDataset& dataset =
      context.dataset(market::DatasetId::kCryptoA);
  constexpr double kCostRate = 0.0025;

  // One training run through the registry, two evaluation modes of the
  // same weights.
  strategies::StrategySpec spec{.name = "PPN"};
  spec.scale = context.scale();
  spec.cost_rate = kCostRate;
  const strategies::TrainedPolicy trained =
      strategies::TrainPolicy(spec, dataset);

  TablePrinter printer({"Evaluation mode", "APV", "TO", "SR(%)"});
  {
    const std::unique_ptr<backtest::Strategy> normal =
        trained.MakeEvalStrategy("PPN");
    const backtest::Metrics metrics = backtest::ComputeMetrics(
        backtest::RunOnTestRange(normal.get(), dataset, kCostRate));
    printer.AddRow("recursive prev action",
                   {metrics.apv, metrics.turnover, metrics.sr_pct}, 3);
  }
  {
    FrozenPrevStrategy frozen(trained.policy());
    const backtest::Metrics metrics = backtest::ComputeMetrics(
        backtest::RunOnTestRange(&frozen, dataset, kCostRate));
    printer.AddRow("frozen uniform prev action",
                   {metrics.apv, metrics.turnover, metrics.sr_pct}, 3);
  }
  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
