// Scenario-engine benchmark (google-benchmark): throughput of stress-pack
// application, CSV replay loading, and a backtest over a stressed panel
// with a tradeability mask plus a per-period cost-multiplier schedule.
//
// run_benches.sh archives the JSON report as bench_results/stress_bench.json
// and (under PPN_BENCH_GATE=1) diffs medians against the previous archive,
// exactly like micro_kernels and serve_bench.

#include <filesystem>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "backtest/backtester.h"
#include "common/csv.h"
#include "market/generator.h"
#include "market/replay_io.h"
#include "market/stress.h"
#include "strategies/registry.h"

namespace ppn {
namespace {

constexpr uint64_t kStressSeed = 7;

const market::MarketDataset& BaseDataset() {
  static const market::MarketDataset dataset = [] {
    market::SyntheticMarketConfig config;
    config.num_assets = 11;
    config.num_periods = 1200;
    config.seed = 17;
    return market::SyntheticMarketGenerator(config).GenerateDataset("Bench",
                                                                    0.85);
  }();
  return dataset;
}

void BM_ApplyStressPack(benchmark::State& state) {
  const market::MarketDataset& base = BaseDataset();
  const market::StressPack pack =
      market::AllStressPacks()[static_cast<size_t>(state.range(0))];
  state.SetLabel(market::StressPackName(pack));
  for (auto _ : state) {
    market::StressedDataset stressed =
        market::ApplyStressPack(base, pack, kStressSeed);
    benchmark::DoNotOptimize(stressed.dataset.panel);
  }
  state.SetItemsProcessed(state.iterations() *
                          BaseDataset().panel.num_periods());
}
BENCHMARK(BM_ApplyStressPack)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_ApplyAllPacksComposed(benchmark::State& state) {
  const market::MarketDataset& base = BaseDataset();
  const std::vector<market::StressPack> packs = market::AllStressPacks();
  for (auto _ : state) {
    market::StressedDataset stressed =
        market::ApplyStressPacks(base, packs, kStressSeed);
    benchmark::DoNotOptimize(stressed.cost_multipliers);
  }
  state.SetItemsProcessed(state.iterations() *
                          BaseDataset().panel.num_periods());
}
BENCHMARK(BM_ApplyAllPacksComposed)->Unit(benchmark::kMillisecond);

void BM_ReplayCsvLoad(benchmark::State& state) {
  // The file is written once, off the clock; each iteration parses and
  // validates it end to end.
  static const std::string path = [] {
    const market::MarketDataset& base = BaseDataset();
    CsvTable table;
    table.header = {"period", "asset", "open", "high", "low", "close"};
    for (int64_t t = 0; t < base.panel.num_periods(); ++t) {
      for (int64_t a = 0; a < base.panel.num_assets(); ++a) {
        table.rows.push_back({static_cast<double>(t), static_cast<double>(a),
                              base.panel.Price(t, a, market::kOpen),
                              base.panel.Price(t, a, market::kHigh),
                              base.panel.Price(t, a, market::kLow),
                              base.panel.Close(t, a)});
      }
    }
    const std::string out =
        (std::filesystem::temp_directory_path() / "ppn_stress_bench.csv")
            .string();
    WriteCsv(out, table);
    return out;
  }();
  std::string error;
  for (auto _ : state) {
    market::MarketDataset dataset;
    if (!LoadReplayCsv(path, {}, &dataset, &error)) {
      state.SkipWithError(error.c_str());
      break;
    }
    benchmark::DoNotOptimize(dataset.train_end);
  }
  // The file stays in the temp dir for the remaining repetitions; the OS
  // cleans it up.
  state.SetItemsProcessed(state.iterations() *
                          BaseDataset().panel.num_periods() *
                          BaseDataset().panel.num_assets());
}
BENCHMARK(BM_ReplayCsvLoad)->Unit(benchmark::kMillisecond);

void BM_StressedBacktest(benchmark::State& state) {
  // OLMAR (trades every period) over the fully composed scenario: masked
  // delistings plus the liquidity hole's cost-multiplier schedule.
  static const market::StressedDataset stressed = market::ApplyStressPacks(
      BaseDataset(), market::AllStressPacks(), kStressSeed);
  strategies::StrategySpec spec;
  spec.name = "OLMAR";
  for (auto _ : state) {
    auto strategy = strategies::MakeStrategy(spec, stressed.dataset);
    const backtest::BacktestRecord record = backtest::RunOnTestRange(
        strategy.get(), stressed.dataset, 0.0025, stressed.cost_multipliers);
    benchmark::DoNotOptimize(record.wealth_curve);
  }
  const int64_t test_periods =
      stressed.dataset.panel.num_periods() - stressed.dataset.train_end;
  state.SetItemsProcessed(state.iterations() * test_periods);
}
BENCHMARK(BM_StressedBacktest)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ppn

BENCHMARK_MAIN();
