// Reproduces Table 7 (+ Sup.5): PPN under λ ∈ {1e-4, 1e-3, 1e-2, 1e-1} on
// all four crypto datasets (APV, STD, MDD).
//
// Expected shape (paper): STD decreases monotonically with λ and MDD
// mostly decreases (the risk penalty suppresses return volatility at some
// cost in APV).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Table 7: cost-sensitivity to lambda", scale);
  const double lambdas[] = {1e-4, 1e-3, 1e-2, 1e-1};

  // The full 4-dataset sweep is reserved for PPN_SCALE=full; quick scale
  // covers the smallest and a mid-size market to bound wall-clock.
  std::vector<market::DatasetId> datasets = market::CryptoDatasets();
  if (scale != RunScale::kFull) {
    datasets = {market::DatasetId::kCryptoA, market::DatasetId::kCryptoC};
  }
  for (const market::DatasetId id : datasets) {
    const market::MarketDataset dataset = market::MakeDataset(id, scale);
    std::printf("--- %s ---\n", dataset.name.c_str());
    TablePrinter printer({"lambda", "APV", "STD(%)", "MDD(%)", "TO"});
    for (const double lambda : lambdas) {
      bench::NeuralRunOptions options;
      options.base_steps = 200;
      options.variant = core::PolicyVariant::kPpn;
      options.lambda = lambda;
      const backtest::Metrics metrics =
          bench::RunNeural(dataset, options, scale).metrics;
      printer.AddRow(TablePrinter::FormatCell(lambda, 4),
                     {metrics.apv, metrics.std_pct, metrics.mdd_pct,
                      metrics.turnover}, 3);
    }
    std::printf("%s\n", printer.ToString().c_str());
  }
  return 0;
}
