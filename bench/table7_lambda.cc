// Reproduces Table 7 (+ Sup.5): PPN under λ ∈ {1e-4, 1e-3, 1e-2, 1e-1} on
// all four crypto datasets (APV, STD, MDD).
//
// Expected shape (paper): STD decreases monotonically with λ and MDD
// mostly decreases (the risk penalty suppresses return volatility at some
// cost in APV).

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context("Table 7: cost-sensitivity to lambda");

  exec::ExperimentSpec spec;
  // The full 4-dataset sweep is reserved for PPN_SCALE=full; quick scale
  // covers the smallest and a mid-size market to bound wall-clock.
  spec.datasets = {market::DatasetId::kCryptoA, market::DatasetId::kCryptoC};
  if (context.scale() == RunScale::kFull) {
    spec.datasets = market::CryptoDatasets();
  }
  for (const double lambda : {1e-4, 1e-3, 1e-2, 1e-1}) {
    strategies::StrategySpec ppn{.name = "PPN"};
    ppn.label = TablePrinter::FormatCell(lambda, 4);
    ppn.lambda = lambda;
    ppn.base_steps = 200;
    spec.strategies.push_back(ppn);
  }

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  context.PrintByDataset(rows, {"APV", "STD(%)", "MDD(%)", "TO"}, "lambda");
  return 0;
}
