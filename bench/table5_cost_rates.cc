// Reproduces Table 5 (+ Sup.3): EIIE vs PPN-I vs PPN across transaction
// cost rates ψ ∈ {0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5}% on Crypto-A.
// Each policy is retrained with the evaluated rate in its reward (the
// runner's default: train_cost_rate < 0).
//
// Expected shape (paper): PPN best APV at every rate; PPN-family TO below
// EIIE's; at ψ = 5% PPN stops trading (TO → 0, APV → 1) while EIIE keeps
// trading and loses wealth.

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context(
      "Table 5: transaction-cost-rate sweep (Crypto-A)");

  exec::ExperimentSpec spec;
  spec.datasets = {market::DatasetId::kCryptoA};
  // Quick scale sweeps the paper's four pivotal rates; PPN_SCALE=full
  // runs all eight of Table 5.
  spec.cost_rates = {0.0005, 0.0025, 0.01, 0.05};
  if (context.scale() == RunScale::kFull) {
    spec.cost_rates = {0.0001, 0.0005, 0.001, 0.0025,
                       0.005,  0.01,   0.02,  0.05};
  }
  strategies::StrategySpec eiie{.name = "EIIE"};
  eiie.gamma = 0.0;
  eiie.lambda = 0.0;
  eiie.base_steps = 200;
  spec.strategies.push_back(eiie);
  strategies::StrategySpec ppn_i{.name = "PPN-I"};
  ppn_i.base_steps = 200;
  spec.strategies.push_back(ppn_i);
  strategies::StrategySpec ppn{.name = "PPN"};
  ppn.base_steps = 200;
  spec.strategies.push_back(ppn);

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  context.PrintByCostRate(rows, {"APV", "SR(%)", "CR", "TO"});
  return 0;
}
