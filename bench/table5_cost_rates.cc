// Reproduces Table 5 (+ Sup.3): EIIE vs PPN-I vs PPN across transaction
// cost rates ψ ∈ {0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5}% on Crypto-A.
// Each policy is retrained with the evaluated rate in its reward.
//
// Expected shape (paper): PPN best APV at every rate; PPN-family TO below
// EIIE's; at ψ = 5% PPN stops trading (TO → 0, APV → 1) while EIIE keeps
// trading and loses wealth.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Table 5: transaction-cost-rate sweep (Crypto-A)",
                          scale);
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, scale);

  // Quick scale sweeps the paper's four pivotal rates; PPN_SCALE=full
  // runs all eight of Table 5.
  std::vector<double> rates = {0.0005, 0.0025, 0.01, 0.05};
  if (scale == RunScale::kFull) {
    rates = {0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.02, 0.05};
  }
  struct Contender {
    const char* name;
    core::PolicyVariant variant;
    double gamma;
    double lambda;
  };
  const Contender contenders[] = {
      {"EIIE", core::PolicyVariant::kEiie, 0.0, 0.0},
      {"PPN-I", core::PolicyVariant::kPpnI, 1e-3, 1e-4},
      {"PPN", core::PolicyVariant::kPpn, 1e-3, 1e-4},
  };

  for (const double rate : rates) {
    std::printf("--- c = %.2f%% ---\n", rate * 100.0);
    TablePrinter printer({"Algos", "APV", "SR(%)", "CR", "TO"});
    for (const Contender& contender : contenders) {
      bench::NeuralRunOptions options;
      options.variant = contender.variant;
      options.gamma = contender.gamma;
      options.lambda = contender.lambda;
      options.cost_rate = rate;
      options.base_steps = 200;
      const backtest::Metrics metrics =
          bench::RunNeural(dataset, options, scale).metrics;
      printer.AddRow(contender.name,
                     {metrics.apv, metrics.sr_pct, metrics.cr,
                      metrics.turnover}, 3);
    }
    std::printf("%s\n", printer.ToString().c_str());
  }
  return 0;
}
