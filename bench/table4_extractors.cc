// Reproduces Table 4 (+ Sup.2): the representation-ability ablation — the
// seven PPN-family feature extractors on the four crypto datasets.
//
// Expected shape (paper): correlation-aware variants beat their independent
// twins (TCCB > TCB, TCCB-LSTM > TCB-LSTM, PPN > PPN-I); two-stream beats
// single-stream; PPN best overall.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Table 4: feature-extractor ablation", scale);
  constexpr double kCostRate = 0.0025;

  // Quick scale covers Crypto-A/B (PPN_SCALE=full runs all four; the
  // correlational conv makes wide panels O(m^2) per step).
  std::vector<market::DatasetId> datasets = market::CryptoDatasets();
  if (scale != RunScale::kFull) {
    datasets = {market::DatasetId::kCryptoA, market::DatasetId::kCryptoB};
  }
  for (const market::DatasetId id : datasets) {
    const market::MarketDataset dataset = market::MakeDataset(id, scale);
    std::printf("--- %s ---\n", dataset.name.c_str());
    TablePrinter printer({"Module", "APV", "SR(%)", "CR", "TO"});
    for (const core::PolicyVariant variant : core::Table4Variants()) {
      bench::NeuralRunOptions options;
      options.variant = variant;
      options.base_steps = 200;
      options.cost_rate = kCostRate;
      const backtest::Metrics metrics =
          bench::RunNeural(dataset, options, scale).metrics;
      printer.AddRow(core::VariantName(variant),
                     {metrics.apv, metrics.sr_pct, metrics.cr,
                      metrics.turnover}, 3);
    }
    std::printf("%s\n", printer.ToString().c_str());
  }
  return 0;
}
