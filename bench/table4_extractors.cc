// Reproduces Table 4 (+ Sup.2): the representation-ability ablation — the
// seven PPN-family feature extractors on the four crypto datasets.
//
// Expected shape (paper): correlation-aware variants beat their independent
// twins (TCCB > TCB, TCCB-LSTM > TCB-LSTM, PPN > PPN-I); two-stream beats
// single-stream; PPN best overall.

#include "bench_util.h"
#include "ppn/config.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context("Table 4: feature-extractor ablation");

  exec::ExperimentSpec spec;
  // Quick scale covers Crypto-A/B (PPN_SCALE=full runs all four; the
  // correlational conv makes wide panels O(m^2) per step).
  spec.datasets = {market::DatasetId::kCryptoA, market::DatasetId::kCryptoB};
  if (context.scale() == RunScale::kFull) {
    spec.datasets = market::CryptoDatasets();
  }
  for (const core::PolicyVariant variant : core::Table4Variants()) {
    strategies::StrategySpec module{.name = core::VariantName(variant)};
    module.base_steps = 200;
    spec.strategies.push_back(module);
  }

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  context.PrintByDataset(rows, {"APV", "SR(%)", "CR", "TO"}, "Module");
  return 0;
}
