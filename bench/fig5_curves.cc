// Reproduces Fig. 5 (+ supplementary enlarged figure): the wealth-curve
// development of every PPN feature-extractor variant plus EIIE on the
// Crypto-A test range. Emits fig5_wealth_curves.csv (one column per
// series) and prints checkpoint wealth values.
//
// Expected shape (paper): curves interleave early; PPN pulls ahead in the
// later stage; model-agnostic drawdowns appear at the same periods in all
// curves (market factor).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Fig 5: wealth development per extractor (Crypto-A)",
                          scale);
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, scale);

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  // EIIE first, then the Table-4 variants.
  {
    bench::NeuralRunOptions options;
    options.variant = core::PolicyVariant::kEiie;
    options.base_steps = 450;
    options.gamma = 0.0;
    options.lambda = 0.0;
    curves.emplace_back(
        "EIIE", bench::RunNeural(dataset, options, scale).record.wealth_curve);
  }
  for (const core::PolicyVariant variant : core::Table4Variants()) {
    bench::NeuralRunOptions options;
    options.variant = variant;
    options.base_steps = 450;
    curves.emplace_back(
        core::VariantName(variant),
        bench::RunNeural(dataset, options, scale).record.wealth_curve);
  }

  const std::string path = bench::WriteWealthCurves("fig5_wealth_curves",
                                                    curves);
  std::printf("Wealth curves written to %s\n\n", path.c_str());

  // Print wealth at 5 checkpoints for a quick textual read.
  TablePrinter printer({"Series", "20%", "40%", "60%", "80%", "final"});
  for (const auto& [label, curve] : curves) {
    std::vector<double> checkpoints;
    for (int q = 1; q <= 5; ++q) {
      const size_t index =
          std::min(curve.size() - 1, curve.size() * q / 5);
      checkpoints.push_back(curve[index]);
    }
    printer.AddRow(label, checkpoints, 3);
  }
  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
