// Reproduces Fig. 5 (+ supplementary enlarged figure): the wealth-curve
// development of every PPN feature-extractor variant plus EIIE on the
// Crypto-A test range. Emits fig5_wealth_curves.csv (one column per
// series) and prints checkpoint wealth values.
//
// Expected shape (paper): curves interleave early; PPN pulls ahead in the
// later stage; model-agnostic drawdowns appear at the same periods in all
// curves (market factor).

#include <cstdio>

#include "bench_util.h"
#include "ppn/config.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context(
      "Fig 5: wealth development per extractor (Crypto-A)");

  exec::ExperimentSpec spec;
  spec.datasets = {market::DatasetId::kCryptoA};
  spec.keep_records = true;
  strategies::StrategySpec eiie{.name = "EIIE"};
  eiie.gamma = 0.0;
  eiie.lambda = 0.0;
  eiie.base_steps = 450;
  spec.strategies.push_back(eiie);
  for (const core::PolicyVariant variant : core::Table4Variants()) {
    strategies::StrategySpec module{.name = core::VariantName(variant)};
    module.base_steps = 450;
    spec.strategies.push_back(module);
  }

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (const exec::CellResult& row : rows) {
    curves.emplace_back(row.key.strategy, row.record.wealth_curve);
  }
  const std::string path = bench::WriteWealthCurves("fig5_wealth_curves",
                                                    curves);
  std::printf("Wealth curves written to %s\n\n", path.c_str());

  // Print wealth at 5 checkpoints for a quick textual read.
  TablePrinter printer({"Series", "20%", "40%", "60%", "80%", "final"});
  for (const auto& [label, curve] : curves) {
    std::vector<double> checkpoints;
    for (int q = 1; q <= 5; ++q) {
      const size_t index =
          std::min(curve.size() - 1, curve.size() * q / 5);
      checkpoints.push_back(curve[index]);
    }
    printer.AddRow(label, checkpoints, 3);
  }
  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
