// Reproduces Table 3 (+ supplementary Table Sup.1): profitability of the
// twelve classic baselines, EIIE, PPN-I and PPN on the four crypto
// datasets — APV, SR(%), CR and TO at ψ = 0.25%.
//
// Expected shape (paper): PPN > PPN-I > EIIE > every classic baseline on
// APV; mean-reversion baselines erratic under transaction costs.

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context("Table 3: profitability comparison");

  exec::ExperimentSpec spec;
  spec.datasets = market::CryptoDatasets();
  for (const std::string& name : strategies::ClassicBaselineNames()) {
    spec.strategies.push_back({.name = name});
  }
  strategies::StrategySpec eiie{.name = "EIIE"};
  eiie.gamma = 0.0;
  eiie.lambda = 0.0;
  eiie.base_steps = 600;
  spec.strategies.push_back(eiie);
  strategies::StrategySpec ppn_i{.name = "PPN-I"};
  ppn_i.base_steps = 600;
  spec.strategies.push_back(ppn_i);
  strategies::StrategySpec ppn{.name = "PPN"};
  ppn.base_steps = 600;
  spec.strategies.push_back(ppn);

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  context.PrintByDataset(rows, {"APV", "SR(%)", "CR", "TO"});
  return 0;
}
