// Reproduces Table 3 (+ supplementary Table Sup.1): profitability of the
// twelve classic baselines, EIIE, PPN-I and PPN on the four crypto
// datasets — APV, SR(%), CR and TO at ψ = 0.25%.
//
// Expected shape (paper): PPN > PPN-I > EIIE > every classic baseline on
// APV; mean-reversion baselines erratic under transaction costs.

#include <cstdio>

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Table 3: profitability comparison", scale);
  constexpr double kCostRate = 0.0025;

  for (const market::DatasetId id : market::CryptoDatasets()) {
    const market::MarketDataset dataset = market::MakeDataset(id, scale);
    std::printf("--- %s (m=%lld) ---\n", dataset.name.c_str(),
                static_cast<long long>(dataset.panel.num_assets()));
    TablePrinter printer({"Algos", "APV", "SR(%)", "CR", "TO"});
    auto add_row = [&printer](const std::string& name,
                              const backtest::Metrics& metrics) {
      printer.AddRow(name, {metrics.apv, metrics.sr_pct, metrics.cr,
                            metrics.turnover}, 3);
    };
    for (const std::string& name : strategies::ClassicBaselineNames()) {
      add_row(name, bench::RunClassic(name, dataset, kCostRate).metrics);
    }
    bench::NeuralRunOptions eiie;
    eiie.base_steps = 600;
    eiie.variant = core::PolicyVariant::kEiie;
    eiie.gamma = 0.0;
    eiie.lambda = 0.0;
    eiie.cost_rate = kCostRate;
    add_row("EIIE", bench::RunNeural(dataset, eiie, scale).metrics);

    bench::NeuralRunOptions ppn_i;
    ppn_i.base_steps = 600;
    ppn_i.variant = core::PolicyVariant::kPpnI;
    ppn_i.cost_rate = kCostRate;
    add_row("PPN-I", bench::RunNeural(dataset, ppn_i, scale).metrics);

    bench::NeuralRunOptions ppn;
    ppn.base_steps = 600;
    ppn.variant = core::PolicyVariant::kPpn;
    ppn.cost_rate = kCostRate;
    add_row("PPN", bench::RunNeural(dataset, ppn, scale).metrics);

    std::printf("%s\n", printer.ToString().c_str());
  }
  return 0;
}
