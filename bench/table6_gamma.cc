// Reproduces Table 6 (+ Sup.4): PPN under γ ∈ {1e-4, 1e-3, 1e-2, 1e-1} on
// all four crypto datasets (APV and TO).
//
// Expected shape (paper): TO decreases monotonically in γ; APV peaks at an
// interior γ (too small → cost bleed, too large → no trading).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Table 6: cost-sensitivity to gamma", scale);
  const double gammas[] = {1e-4, 1e-3, 1e-2, 1e-1};

  // The full 4-dataset sweep is reserved for PPN_SCALE=full; quick scale
  // covers the smallest and a mid-size market to bound wall-clock.
  std::vector<market::DatasetId> datasets = market::CryptoDatasets();
  if (scale != RunScale::kFull) {
    datasets = {market::DatasetId::kCryptoA, market::DatasetId::kCryptoC};
  }
  for (const market::DatasetId id : datasets) {
    const market::MarketDataset dataset = market::MakeDataset(id, scale);
    std::printf("--- %s ---\n", dataset.name.c_str());
    TablePrinter printer({"gamma", "APV", "SR(%)", "CR", "TO"});
    for (const double gamma : gammas) {
      bench::NeuralRunOptions options;
      options.base_steps = 200;
      options.variant = core::PolicyVariant::kPpn;
      options.gamma = gamma;
      const backtest::Metrics metrics =
          bench::RunNeural(dataset, options, scale).metrics;
      printer.AddRow(TablePrinter::FormatCell(gamma, 4),
                     {metrics.apv, metrics.sr_pct, metrics.cr,
                      metrics.turnover}, 3);
    }
    std::printf("%s\n", printer.ToString().c_str());
  }
  return 0;
}
