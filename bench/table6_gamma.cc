// Reproduces Table 6 (+ Sup.4): PPN under γ ∈ {1e-4, 1e-3, 1e-2, 1e-1} on
// all four crypto datasets (APV and TO).
//
// Expected shape (paper): TO decreases monotonically in γ; APV peaks at an
// interior γ (too small → cost bleed, too large → no trading).

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context("Table 6: cost-sensitivity to gamma");

  exec::ExperimentSpec spec;
  // The full 4-dataset sweep is reserved for PPN_SCALE=full; quick scale
  // covers the smallest and a mid-size market to bound wall-clock.
  spec.datasets = {market::DatasetId::kCryptoA, market::DatasetId::kCryptoC};
  if (context.scale() == RunScale::kFull) {
    spec.datasets = market::CryptoDatasets();
  }
  for (const double gamma : {1e-4, 1e-3, 1e-2, 1e-1}) {
    strategies::StrategySpec ppn{.name = "PPN"};
    // Same variant four times: a distinct label per γ keys (and seeds)
    // each cell.
    ppn.label = TablePrinter::FormatCell(gamma, 4);
    ppn.gamma = gamma;
    ppn.base_steps = 200;
    spec.strategies.push_back(ppn);
  }

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  context.PrintByDataset(rows, {"APV", "SR(%)", "CR", "TO"}, "gamma");
  return 0;
}
