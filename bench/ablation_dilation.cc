// Ablation (ours, called out in DESIGN.md): dilated vs plain causal
// convolutions (paper Section 4.3.1 / Fig. 4). The dilated stack's
// receptive field covers the whole 30-period window; an undilated stack of
// the same depth sees only the most recent ~13 periods.
//
// We measure the receptive field directly (how far back an input
// perturbation can move the output) for both configurations.

#include <cstdio>

#include "bench_util.h"
#include "nn/conv.h"

namespace ppn {
namespace {

/// Builds a 3-block stack of causal convolutions with the given dilation
/// schedule and returns the empirical receptive field: the largest lag L
/// such that perturbing input at time t-L changes the output at time t.
int64_t EmpiricalReceptiveField(const std::vector<int64_t>& dilations,
                                int64_t window) {
  Rng rng(7);
  std::vector<std::unique_ptr<nn::Conv2dLayer>> layers;
  int64_t channels = 1;
  for (const int64_t dilation : dilations) {
    layers.push_back(std::make_unique<nn::Conv2dLayer>(
        channels, 4, nn::CausalTimeConvGeometry(3, dilation), &rng));
    channels = 4;
    layers.push_back(std::make_unique<nn::Conv2dLayer>(
        channels, 4, nn::CausalTimeConvGeometry(3, dilation), &rng));
  }
  auto forward = [&layers](const Tensor& input) {
    ag::Var h = ag::Constant(input);
    for (const auto& layer : layers) h = layer->Forward(h);
    return h->value();
  };
  Tensor base({1, 1, 1, window});
  const Tensor base_out = forward(base);
  const int64_t t = window - 1;
  int64_t receptive = 0;
  for (int64_t lag = 0; lag < window; ++lag) {
    Tensor perturbed = base.Clone();
    perturbed.MutableData()[t - lag] = 1.0f;
    const Tensor out = forward(perturbed);
    bool changed = false;
    for (int64_t c = 0; c < 4; ++c) {
      if (out.At({0, c, 0, t}) != base_out.At({0, c, 0, t})) changed = true;
    }
    if (changed) receptive = lag;
  }
  return receptive + 1;
}

}  // namespace
}  // namespace ppn

int main() {
  using namespace ppn;
  bench::BenchContext context(
      "Ablation: dilated vs plain causal convolutions");
  constexpr int64_t kWindow = 30;
  TablePrinter printer({"Stack", "dilations", "receptive field (of 30)"});
  printer.AddRow({"TCCB (paper)", "1,2,4",
                  std::to_string(EmpiricalReceptiveField({1, 2, 4}, kWindow))});
  printer.AddRow({"undilated", "1,1,1",
                  std::to_string(EmpiricalReceptiveField({1, 1, 1}, kWindow))});
  std::printf("%s\n", printer.ToString().c_str());
  std::printf(
      "Theory: each block adds 2*(kernel-1)*dilation = 4*dilation lags;\n"
      "dilated 1+4+8+16 = 29 -> covers the window; plain 1+4+4+4 = 13.\n");
  return 0;
}
