// Reproduces Table 1 (crypto datasets) and Table 10 (S&P500): asset counts
// and train/test period counts of every dataset preset.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppn;
  bench::BenchContext context("Table 1 & Table 10: dataset statistics");

  TablePrinter printer({"Dataset", "#Asset", "Train Num.", "Test Num."});
  auto add = [&](market::DatasetId id) {
    const market::DatasetStats stats =
        market::ComputeStats(context.dataset(id));
    printer.AddRow({stats.name, std::to_string(stats.num_assets),
                    std::to_string(stats.train_periods),
                    std::to_string(stats.test_periods)});
  };
  for (const market::DatasetId id : market::CryptoDatasets()) add(id);
  add(market::DatasetId::kSp500);
  std::printf("%s\n", printer.ToString().c_str());
  std::printf(
      "Paper (full scale): Crypto-A 12/32269/2796, B 16/32249/2776,\n"
      "C 21/32205/2772, D 44/32205/2772; S&P500 506/1101/94.\n");
  return 0;
}
