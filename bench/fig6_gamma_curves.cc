// Reproduces Fig. 6 (+ supplementary enlarged figure): PPN's wealth curves
// on Crypto-A under the four γ values. Emits fig6_gamma_curves.csv and
// prints the fraction of no-trade periods per γ.
//
// Expected shape (paper): with larger γ there are longer flat stretches
// (the policy stops trading when costs outweigh the edge); γ = 1e-3 ends
// highest; γ = 1e-1 stays near 1.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Fig 6: wealth development per gamma (Crypto-A)",
                          scale);
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, scale);
  const double gammas[] = {1e-4, 1e-3, 1e-2, 1e-1};

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  TablePrinter printer({"gamma", "final wealth", "no-trade fraction", "TO"});
  for (const double gamma : gammas) {
    bench::NeuralRunOptions options;
    options.variant = core::PolicyVariant::kPpn;
    options.gamma = gamma;
    options.base_steps = 300;
    const bench::NeuralRunResult result =
        bench::RunNeural(dataset, options, scale);
    int64_t no_trade = 0;
    for (const double term : result.record.turnover_terms) {
      if (term < 1e-3) ++no_trade;
    }
    const std::string label =
        "gamma=" + TablePrinter::FormatCell(gamma, 4);
    printer.AddRow(label,
                   {result.metrics.apv,
                    static_cast<double>(no_trade) /
                        result.record.turnover_terms.size(),
                    result.metrics.turnover}, 3);
    curves.emplace_back(label, result.record.wealth_curve);
  }
  const std::string path =
      bench::WriteWealthCurves("fig6_gamma_curves", curves);
  std::printf("Wealth curves written to %s\n\n%s\n", path.c_str(),
              printer.ToString().c_str());
  return 0;
}
