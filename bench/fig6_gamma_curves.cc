// Reproduces Fig. 6 (+ supplementary enlarged figure): PPN's wealth curves
// on Crypto-A under the four γ values. Emits fig6_gamma_curves.csv and
// prints the fraction of no-trade periods per γ.
//
// Expected shape (paper): with larger γ there are longer flat stretches
// (the policy stops trading when costs outweigh the edge); γ = 1e-3 ends
// highest; γ = 1e-1 stays near 1.

#include <cstdio>

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context(
      "Fig 6: wealth development per gamma (Crypto-A)");

  exec::ExperimentSpec spec;
  spec.datasets = {market::DatasetId::kCryptoA};
  spec.keep_records = true;
  for (const double gamma : {1e-4, 1e-3, 1e-2, 1e-1}) {
    strategies::StrategySpec ppn{.name = "PPN"};
    ppn.label = "gamma=" + TablePrinter::FormatCell(gamma, 4);
    ppn.gamma = gamma;
    ppn.base_steps = 300;
    spec.strategies.push_back(ppn);
  }

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  std::vector<std::pair<std::string, std::vector<double>>> curves;
  TablePrinter printer({"gamma", "final wealth", "no-trade fraction", "TO"});
  for (const exec::CellResult& row : rows) {
    int64_t no_trade = 0;
    for (const double term : row.record.turnover_terms) {
      if (term < 1e-3) ++no_trade;
    }
    printer.AddRow(row.key.strategy,
                   {row.metrics.apv,
                    static_cast<double>(no_trade) /
                        row.record.turnover_terms.size(),
                    row.metrics.turnover}, 3);
    curves.emplace_back(row.key.strategy, row.record.wealth_curve);
  }
  const std::string path =
      bench::WriteWealthCurves("fig6_gamma_curves", curves);
  std::printf("Wealth curves written to %s\n\n%s\n", path.c_str(),
              printer.ToString().c_str());
  return 0;
}
