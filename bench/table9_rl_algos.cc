// Reproduces Table 9: reinforcement-learning algorithm choice on Crypto-A —
// PPN trained by direct policy gradient vs PPN-AC (the same actor trained
// with DDPG + dueling-style critic).
//
// Expected shape (paper): PPN-AC clearly worse than PPN on APV/SR/CR but
// still better than most classic baselines (the actor's representation
// carries it); the critic's value-function approximation is the bottleneck.

#include "bench_util.h"
#include "strategies/registry.h"

int main() {
  using namespace ppn;
  bench::BenchContext context(
      "Table 9: direct policy gradient vs actor-critic");

  exec::ExperimentSpec spec;
  spec.datasets = {market::DatasetId::kCryptoA};
  strategies::StrategySpec ac{.name = "PPN-AC"};
  ac.base_steps = 250;
  spec.strategies.push_back(ac);
  spec.strategies.push_back({.name = "PPN"});

  const std::vector<exec::CellResult> rows = context.Run(std::move(spec));
  context.PrintByDataset(rows, {"APV", "STD(%)", "SR(%)", "MDD(%)", "CR"});
  return 0;
}
