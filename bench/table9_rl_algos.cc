// Reproduces Table 9: reinforcement-learning algorithm choice on Crypto-A —
// PPN trained by direct policy gradient vs PPN-AC (the same actor trained
// with DDPG + dueling-style critic).
//
// Expected shape (paper): PPN-AC clearly worse than PPN on APV/SR/CR but
// still better than most classic baselines (the actor's representation
// carries it); the critic's value-function approximation is the bottleneck.

#include <cstdio>

#include "bench_util.h"
#include "ppn/ddpg.h"

int main() {
  using namespace ppn;
  const RunScale scale = GetRunScale();
  bench::PrintBenchHeader("Table 9: direct policy gradient vs actor-critic",
                          scale);
  const market::MarketDataset dataset =
      market::MakeDataset(market::DatasetId::kCryptoA, scale);
  constexpr double kCostRate = 0.0025;
  TablePrinter printer({"Algos", "APV", "STD(%)", "SR(%)", "MDD(%)", "CR"});

  // --- PPN-AC: DDPG-trained actor. -------------------------------------
  {
    const int64_t m = dataset.panel.num_assets();
    Rng init(1021);
    Rng dropout(1022);
    auto actor = core::MakePolicy(
        bench::PaperPolicyConfig(core::PolicyVariant::kPpn, m, 77), &init,
        &dropout);
    core::DdpgConfig config;
    config.steps = bench::BudgetFor(scale, m, 250).steps;
    config.batch_size = 16;
    config.cost_rate = kCostRate;
    config.seed = 5;
    core::DdpgTrainer trainer(actor.get(), dataset, config);
    trainer.Train();
    core::PolicyStrategy strategy(actor.get(), "PPN-AC");
    const backtest::Metrics metrics = backtest::ComputeMetrics(
        backtest::RunOnTestRange(&strategy, dataset, kCostRate));
    printer.AddRow("PPN-AC", {metrics.apv, metrics.std_pct, metrics.sr_pct,
                              metrics.mdd_pct, metrics.cr}, 3);
  }

  // --- PPN: direct policy gradient. -------------------------------------
  {
    bench::NeuralRunOptions options;
    options.variant = core::PolicyVariant::kPpn;
    options.cost_rate = kCostRate;
    const backtest::Metrics metrics =
        bench::RunNeural(dataset, options, scale).metrics;
    printer.AddRow("PPN", {metrics.apv, metrics.std_pct, metrics.sr_pct,
                           metrics.mdd_pct, metrics.cr}, 3);
  }

  std::printf("%s\n", printer.ToString().c_str());
  return 0;
}
