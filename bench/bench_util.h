#ifndef PPN_BENCH_BENCH_UTIL_H_
#define PPN_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/run_scale.h"
#include "common/table_printer.h"
#include "exec/experiment.h"
#include "market/presets.h"

namespace ppn::obs {
class StatsSampler;
}  // namespace ppn::obs

/// \file
/// Shared machinery of the experiment harness. A `BenchContext` owns the
/// scale tier, the parallel `ExperimentRunner`, and the table/JSON output
/// conventions, so each bench binary reduces to: declare an
/// `ExperimentSpec`, run it, print the grouped tables.
///
/// Strategy construction and training moved to the unified registry
/// (strategies/registry.h); bench binaries must not instantiate strategy
/// or trainer types directly.

namespace ppn::bench {

/// Per-binary harness state: prints the header at construction, runs specs
/// through a shared `ExperimentRunner` (worker count from `PPN_WORKERS`,
/// default: hardware threads), and renders grouped result tables.
class BenchContext {
 public:
  /// Prints the bench header for `title` at the active `PPN_SCALE` tier.
  explicit BenchContext(std::string title);

  /// Stops the periodic stats sampler (if `PPN_STATS_JSONL` started one in
  /// the constructor), prints the `PPN_HEALTH` verdict when rules are set,
  /// and writes the merged obs profile to `PPN_PROFILE_JSON` when that
  /// variable is set (after every spec of the binary has run).
  ~BenchContext();

  RunScale scale() const { return scale_; }

  /// Generates (and caches) a dataset preset at the context's scale, for
  /// benches that need panel access beyond what a spec run returns.
  const market::MarketDataset& dataset(market::DatasetId id);

  /// Runs `spec` through the parallel runner. The context's scale and (if
  /// unset) title are stamped onto the spec first. When the
  /// `PPN_RESULTS_JSON` environment variable names a directory, the rows
  /// are also dumped there as `<slugged title>.cells.json`.
  std::vector<exec::CellResult> Run(exec::ExperimentSpec spec) const;

  /// Prints one table per dataset (spec enumeration order): rows are the
  /// strategy labels, columns the requested metrics.
  void PrintByDataset(const std::vector<exec::CellResult>& rows,
                      const std::vector<std::string>& metric_columns,
                      const std::string& label_header = "Algos",
                      int precision = 3) const;

  /// Prints one table per cost rate ("--- c = X% ---"): rows are the
  /// strategy labels, columns the requested metrics.
  void PrintByCostRate(const std::vector<exec::CellResult>& rows,
                       const std::vector<std::string>& metric_columns,
                       const std::string& label_header = "Algos",
                       int precision = 3) const;

 private:
  std::string title_;
  RunScale scale_;
  exec::ExperimentRunner runner_;
  std::unique_ptr<obs::StatsSampler> sampler_;
  std::map<market::DatasetId, market::MarketDataset> datasets_;
};

/// Writes per-period wealth curves (one column per labelled series) to a
/// CSV under the current directory; returns the path.
std::string WriteWealthCurves(
    const std::string& file_stem,
    const std::vector<std::pair<std::string,
                                std::vector<double>>>& curves);

/// Prints a header naming the experiment and the active scale.
void PrintBenchHeader(const std::string& title, RunScale scale);

}  // namespace ppn::bench

#endif  // PPN_BENCH_BENCH_UTIL_H_
