#ifndef PPN_BENCH_BENCH_UTIL_H_
#define PPN_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "backtest/backtester.h"
#include "common/run_scale.h"
#include "common/table_printer.h"
#include "market/presets.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"

/// \file
/// Shared machinery of the experiment harness: one-call "train a policy
/// variant on a dataset and backtest it" with budgets scaled to the active
/// `PPN_SCALE` tier, plus helpers to print paper-style tables and dump
/// wealth curves as CSV.

namespace ppn::bench {

/// Training budget for one neural run at the given scale, shrunk for
/// large-asset-count datasets (the correlational convolution costs O(m²)).
struct NeuralBudget {
  int64_t steps = 400;
  int64_t batch_size = 16;
  float learning_rate = 3e-3f;
};

/// Computes the budget for a dataset with `num_assets` assets.
NeuralBudget BudgetFor(RunScale scale, int64_t num_assets,
                       int64_t base_steps = 400);

/// Everything produced by one trained-and-backtested neural run.
struct NeuralRunResult {
  backtest::Metrics metrics;
  backtest::BacktestRecord record;
};

/// Options of one neural run.
struct NeuralRunOptions {
  core::PolicyVariant variant = core::PolicyVariant::kPpn;
  double gamma = 1e-3;          ///< 0 for EIIE (it optimizes plain log-return).
  double lambda = 1e-4;
  double cost_rate = 0.0025;
  uint64_t seed = 1;
  int64_t base_steps = 400;
  /// Train-time cost rate override; < 0 means "same as cost_rate".
  double train_cost_rate = -1.0;
};

/// Trains `options.variant` on the dataset's training range and backtests
/// on the test range. Deterministic in `options.seed`.
NeuralRunResult RunNeural(const market::MarketDataset& dataset,
                          const NeuralRunOptions& options, RunScale scale);

/// Runs one classic baseline on the dataset's test range.
NeuralRunResult RunClassic(const std::string& name,
                           const market::MarketDataset& dataset,
                           double cost_rate);

/// Standard PPN policy config for a dataset (paper Table 2 sizes).
core::PolicyConfig PaperPolicyConfig(core::PolicyVariant variant,
                                     int64_t num_assets, uint64_t seed);

/// Writes per-period wealth curves (one column per labelled series) to a
/// CSV under the current directory; returns the path.
std::string WriteWealthCurves(
    const std::string& file_stem,
    const std::vector<std::pair<std::string,
                                std::vector<double>>>& curves);

/// Prints a header naming the experiment and the active scale.
void PrintBenchHeader(const std::string& title, RunScale scale);

}  // namespace ppn::bench

#endif  // PPN_BENCH_BENCH_UTIL_H_
