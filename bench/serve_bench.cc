// Serving-engine benchmark (google-benchmark): decisions/second and
// decision-latency percentiles for the batched grad-free PortfolioServer
// at paper scale (11 assets, 30-period windows). Each iteration ticks
// every user once (submit -> batched forward -> per-user ψ accounting);
// when the synthetic feed runs out the server is rebuilt off the clock.
//
// Reported counters: items/sec is decisions/sec; p50/p95/p99_ms are exact
// percentiles over the final server's submit-to-applied latency samples.
// run_benches.sh archives the JSON report and (under PPN_BENCH_GATE=1)
// diffs medians against the previous archive, exactly like micro_kernels.

#include <algorithm>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "market/generator.h"
#include "ppn/policy_module.h"
#include "serve/portfolio_server.h"

namespace ppn {
namespace {

constexpr int64_t kAssets = 11;
constexpr int64_t kWindow = 30;
constexpr int64_t kPeriods = 400;

market::OhlcPanel ServePanel() {
  market::SyntheticMarketConfig config;
  config.num_assets = kAssets;
  config.num_periods = kPeriods;
  config.seed = 17;
  config.late_listing_fraction = 0.0;
  market::SyntheticMarketGenerator generator(config);
  return generator.Generate();
}

double ExactPercentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

void BM_ServeTickAllUsers(benchmark::State& state) {
  const int64_t num_users = state.range(0);
  const int64_t max_batch = state.range(1);
  const market::OhlcPanel panel = ServePanel();
  core::PolicyConfig config;
  config.variant = core::PolicyVariant::kPpn;
  config.num_assets = kAssets;
  config.window = kWindow;
  Rng init(1), dropout(2);
  auto policy = core::MakePolicy(config, &init, &dropout);

  serve::ServerConfig server_config;
  server_config.max_batch = max_batch;
  server_config.queue_capacity = 2 * num_users;
  server_config.costs = backtest::CostModel::Uniform(0.0025);
  auto make_server = [&] {
    auto server = std::make_unique<serve::PortfolioServer>(
        &panel, policy.get(), server_config);
    for (int64_t u = 0; u < num_users; ++u) server->AddUser(kWindow);
    return server;
  };
  auto server = make_server();
  int64_t tick = 0;
  const int64_t max_ticks = kPeriods - kWindow;
  for (auto _ : state) {
    if (tick >= max_ticks) {
      state.PauseTiming();
      server = make_server();
      tick = 0;
      state.ResumeTiming();
    }
    for (int64_t u = 0; u < num_users; ++u) server->SubmitTick(u);
    server->DrainPending();
    ++tick;
  }
  state.SetItemsProcessed(state.iterations() * num_users);
  const std::vector<double>& latencies = server->latency_seconds();
  state.counters["p50_ms"] = 1e3 * ExactPercentile(latencies, 0.50);
  state.counters["p95_ms"] = 1e3 * ExactPercentile(latencies, 0.95);
  state.counters["p99_ms"] = 1e3 * ExactPercentile(latencies, 0.99);
}
BENCHMARK(BM_ServeTickAllUsers)
    ->Args({64, 64})
    ->Args({256, 64})
    ->Args({1024, 256})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ppn

BENCHMARK_MAIN();
