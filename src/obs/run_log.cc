#include "obs/run_log.h"

#ifndef PPN_OBS_DISABLED

#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/stats.h"

namespace ppn::obs {

namespace {

/// Queue bound: ~100KB of buffered records. Deep enough that the writer
/// thread absorbs disk hiccups, shallow enough that a stalled disk
/// back-pressures the producer instead of ballooning memory.
constexpr size_t kQueueCapacity = 1024;

/// %.17g round-trips every finite double exactly (JSON has no infinities;
/// they never occur in these records, but degrade to null defensively).
void AppendDouble(std::string* out, double value) {
  char buffer[40];
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "null");
  }
  *out += buffer;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatHeader(const RunLogMeta& meta) {
  std::string line = "{\"schema\": \"ppn.runlog.v1\"";
  line += ", \"run\": \"" + JsonEscape(meta.run_id) + "\"";
  line += ", \"strategy\": \"" + JsonEscape(meta.strategy) + "\"";
  line += ", \"dataset\": \"" + JsonEscape(meta.dataset) + "\"";
  line += ", \"gamma\": ";
  AppendDouble(&line, meta.gamma);
  line += ", \"lambda\": ";
  AppendDouble(&line, meta.lambda);
  line += ", \"cost_rate\": ";
  AppendDouble(&line, meta.cost_rate);
  line += ", \"seed\": " + std::to_string(meta.seed);
  line += ", \"steps\": " + std::to_string(meta.steps);
  line += "}\n";
  return line;
}

std::string FormatRecord(const RunLogRecord& record) {
  std::string line = "{\"step\": " + std::to_string(record.step);
  const std::pair<const char*, double> fields[] = {
      {"reward_total", record.reward_total},
      {"reward_log_return", record.reward_log_return},
      {"reward_variance", record.reward_variance},
      {"reward_turnover", record.reward_turnover},
      {"grad_norm", record.grad_norm},
      {"pvm_staleness", record.pvm_staleness},
      {"solver_iterations", record.solver_iterations},
      {"step_seconds", record.step_seconds},
  };
  for (const auto& [name, value] : fields) {
    line += ", \"";
    line += name;
    line += "\": ";
    AppendDouble(&line, value);
  }
  line += "}\n";
  return line;
}

}  // namespace

std::unique_ptr<RunLog> RunLog::Open(const std::string& path,
                                     const RunLogMeta& meta) {
  if (!Enabled() || path.empty()) return nullptr;
  // unique_ptr via `new`: the constructor is private.
  std::unique_ptr<RunLog> log(new RunLog(path, meta));
  if (log->file_ == nullptr) return nullptr;
  return log;
}

RunLog::RunLog(std::string path, const RunLogMeta& meta)
    : path_(std::move(path)) {
  auto file = std::make_unique<AtomicFileWriter>(path_);
  if (!file->ok()) return;
  file->stream() << FormatHeader(meta);
  if (!file->ok()) return;
  file_ = std::move(file);
  writer_ = std::thread([this] { WriterLoop(); });
}

RunLog::~RunLog() { Close(); }

void RunLog::Append(const RunLogRecord& record) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] {
    return queue_.size() < kQueueCapacity || closing_;
  });
  if (closing_) return;  // Appends after Close are discarded.
  queue_.push_back(record);
  lock.unlock();
  not_empty_.notify_one();
}

bool RunLog::Close() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return ok_;
    closed_ = true;
    closing_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (file_ != nullptr) {
    ok_ = ok_ && file_->Commit();
    file_.reset();
  } else {
    ok_ = false;
  }
  return ok_;
}

void RunLog::WriterLoop() {
  for (;;) {
    RunLogRecord record;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || closing_; });
      if (queue_.empty()) return;  // closing_ with a drained queue.
      record = queue_.front();
      queue_.pop_front();
    }
    not_full_.notify_one();
    file_->stream() << FormatRecord(record);
    if (!file_->ok()) {
      std::unique_lock<std::mutex> lock(mutex_);
      ok_ = false;
    }
  }
}

}  // namespace ppn::obs

#endif  // PPN_OBS_DISABLED
