#ifndef PPN_OBS_RUN_LOG_H_
#define PPN_OBS_RUN_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/atomic_file.h"

/// \file
/// Streaming per-step training telemetry: `obs::RunLog` records EVERY
/// training step's scalars — the cost-sensitive reward total and its
/// λ-variance / γ-turnover components, gradient norm, PVM staleness,
/// cost-solver iterations, step wall time — as one JSONL line per step,
/// one file per experiment cell. This replaces the capped 4-field
/// `TraceRing` as the substrate for training-dynamics analysis (Table 6
/// turnover trajectories, Table 7 variance suppression): nothing is
/// downsampled and nothing wraps.
///
/// Architecture: `Append` pushes onto a bounded in-memory queue and a
/// background writer thread formats and streams the records, so the
/// training loop never blocks on disk — until the queue fills, at which
/// point `Append` BLOCKS (backpressure) rather than dropping: a gap in a
/// dynamics curve is worse than a slow step. The file is written through
/// `common/atomic_file.h`, so a crash mid-run leaves no partial file at
/// the target path; `Close()` (or destruction) drains, commits, and
/// renames.
///
/// File format (schema-versioned): first line is a header object
///   {"schema": "ppn.runlog.v1", "run": "<id>", ...metadata...}
/// and every following line is one step record
///   {"step": 0, "reward_total": ..., "reward_log_return": ...,
///    "reward_variance": ..., "reward_turnover": ..., "grad_norm": ...,
///    "pvm_staleness": ..., "solver_iterations": ..., "step_seconds": ...}
/// Doubles are printed with %.17g, so the file round-trips bit-exactly:
/// `ppn_cli report` reproduces the trainer's returned metrics EXACTLY,
/// not approximately.
///
/// Gating follows the rest of `src/obs`: `Open` returns null when
/// `obs::Enabled()` is false (training code holds a null-tolerant
/// pointer), and the whole class is a no-op stub under
/// -DPPN_OBS_COMPILED=OFF. Determinism contract: a RunLog only observes
/// values already computed by the trainer; it feeds nothing back.

namespace ppn::obs {

/// One training step's scalars. Fields that do not apply to a given
/// trainer (e.g. PVM staleness for DDPG) stay 0.
struct RunLogRecord {
  int64_t step = 0;
  double reward_total = 0.0;
  double reward_log_return = 0.0;
  double reward_variance = 0.0;    ///< λ-weighted term's raw variance.
  double reward_turnover = 0.0;    ///< γ-weighted term's raw turnover.
  double grad_norm = 0.0;          ///< Pre-clip global gradient norm.
  double pvm_staleness = 0.0;      ///< Mean steps since batch rows' PVM write.
  double solver_iterations = 0.0;  ///< Cost-solver fixed-point iterations.
  double step_seconds = 0.0;       ///< Wall time of this step.
};

/// Key/value metadata stamped into the header line (strategy, dataset,
/// γ/λ/cost-rate, seed, planned steps).
struct RunLogMeta {
  std::string run_id;
  std::string strategy;
  std::string dataset;
  double gamma = 0.0;
  double lambda = 0.0;
  double cost_rate = 0.0;
  int64_t seed = 0;
  int64_t steps = 0;
};

#ifndef PPN_OBS_DISABLED

class RunLog {
 public:
  /// Opens a run log writing to `path` (atomically, via a .tmp sibling).
  /// Returns null — callers must tolerate it — when `obs::Enabled()` is
  /// false or the file cannot be opened. The header line is written
  /// immediately.
  static std::unique_ptr<RunLog> Open(const std::string& path,
                                      const RunLogMeta& meta);

  /// Drains and commits if `Close` was not called.
  ~RunLog();

  RunLog(const RunLog&) = delete;
  RunLog& operator=(const RunLog&) = delete;

  /// Enqueues one step record. Blocks when the queue is full
  /// (backpressure — records are never dropped). Thread-compatible: one
  /// producer per RunLog, which is how trainers use it.
  void Append(const RunLogRecord& record);

  /// Drains the queue, joins the writer, commits the file (atomic
  /// rename). Returns false if any write failed. Idempotent.
  bool Close();

  /// Final target path.
  const std::string& path() const { return path_; }

 private:
  RunLog(std::string path, const RunLogMeta& meta);

  void WriterLoop();

  std::string path_;
  std::unique_ptr<AtomicFileWriter> file_;

  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<RunLogRecord> queue_;
  bool closing_ = false;
  bool closed_ = false;
  bool ok_ = true;
  std::thread writer_;
};

#else  // PPN_OBS_DISABLED: the logger compiles to nothing.

class RunLog {
 public:
  static std::unique_ptr<RunLog> Open(const std::string&,
                                      const RunLogMeta&) {
    return nullptr;
  }
  void Append(const RunLogRecord&) {}
  bool Close() { return true; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

#endif  // PPN_OBS_DISABLED

}  // namespace ppn::obs

#endif  // PPN_OBS_RUN_LOG_H_
