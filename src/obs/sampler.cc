#include "obs/sampler.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/env.h"
#include "common/json.h"

namespace ppn::obs {

namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[40];
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "null");
  }
  *out += buffer;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Stream readers — always compiled (only need common/json).

bool ReadStatsStream(const std::string& path, StatsStream* out,
                     std::string* error) {
  *out = StatsStream{};
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    if (error != nullptr) *error = "empty stream " + path;
    return false;
  }
  JsonValue header;
  if (!ParseJson(line, &header) || !header.is_object() ||
      header.StringOr("schema", "") != "ppn.stats.v1") {
    if (error != nullptr) {
      *error = "not a ppn.stats.v1 stream: " + path;
    }
    return false;
  }
  out->process = header.StringOr("process", "");
  out->sample_ms = static_cast<int64_t>(header.NumberOr("sample_ms", 0.0));
  out->start_unix_ms =
      static_cast<int64_t>(header.NumberOr("start_unix_ms", 0.0));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue value;
    // A torn trailing line (sampler mid-write) is expected; skip quietly.
    if (!ParseJson(line, &value) || !value.is_object()) continue;
    StatsSample sample;
    sample.t_ms = value.NumberOr("t_ms", 0.0);
    sample.window_ms = value.NumberOr("window_ms", 0.0);
    if (const JsonValue* counters = value.Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, member] : counters->AsObject()) {
        if (member.is_number()) sample.counters[name] = member.AsNumber();
      }
    }
    if (const JsonValue* gauges = value.Find("gauges");
        gauges != nullptr && gauges->is_object()) {
      for (const auto& [name, member] : gauges->AsObject()) {
        if (member.is_number()) sample.gauges[name] = member.AsNumber();
      }
    }
    if (const JsonValue* hists = value.Find("hists");
        hists != nullptr && hists->is_object()) {
      for (const auto& [name, member] : hists->AsObject()) {
        if (!member.is_object()) continue;
        StatsHistWindow window;
        window.count = static_cast<int64_t>(member.NumberOr("count", 0.0));
        window.mean = member.NumberOr("mean", 0.0);
        window.min = member.NumberOr("min", 0.0);
        window.max = member.NumberOr("max", 0.0);
        window.p50 = member.NumberOr("p50", 0.0);
        window.p95 = member.NumberOr("p95", 0.0);
        window.p99 = member.NumberOr("p99", 0.0);
        sample.hists[name] = window;
      }
    }
    if (const JsonValue* health = value.Find("health");
        health != nullptr && health->is_array()) {
      for (const JsonValue& verdict : health->AsArray()) {
        if (!verdict.is_object()) continue;
        ++sample.health_checked;
        const JsonValue* ok = verdict.Find("ok");
        if (ok != nullptr && ok->is_bool() && !ok->AsBool()) {
          ++sample.health_failed;
        }
      }
    }
    out->samples.push_back(std::move(sample));
  }
  return true;
}

bool MergeStatsStreams(const std::vector<std::string>& inputs,
                       const std::string& out_path, std::string* error,
                       int* skipped) {
  struct MergedLine {
    double t_unix_ms;
    size_t order;  ///< Tie-break: stable within and across streams.
    std::string text;
  };
  std::vector<MergedLine> lines;
  std::vector<std::string> processes;
  int skipped_count = 0;
  size_t order = 0;
  for (const std::string& input : inputs) {
    StatsStream parsed;
    if (!ReadStatsStream(input, &parsed)) {
      ++skipped_count;
      continue;
    }
    // Re-read raw lines so the merged stream preserves each sample's
    // original bytes (doubles stay bit-exact through the merge).
    std::ifstream in(input);
    std::string line;
    std::getline(in, line);  // Header, already parsed.
    std::string process = parsed.process.empty() ? input : parsed.process;
    processes.push_back(process);
    std::string prefix = "{\"process\": \"" + JsonEscape(process) + "\"";
    while (std::getline(in, line)) {
      size_t open = line.find('{');
      if (open == std::string::npos) continue;
      JsonValue value;
      if (!ParseJson(line, &value) || !value.is_object()) continue;
      double t_ms = value.NumberOr("t_ms", 0.0);
      double t_unix_ms = static_cast<double>(parsed.start_unix_ms) + t_ms;
      std::string text = prefix + ", \"t_unix_ms\": ";
      AppendDouble(&text, t_unix_ms);
      std::string rest = line.substr(open + 1);
      size_t body = rest.find_first_not_of(" \t");
      if (body == std::string::npos || rest[body] == '}') {
        text += "}";
      } else {
        text += ", " + rest;
      }
      lines.push_back({t_unix_ms, order++, std::move(text)});
    }
  }
  if (skipped != nullptr) *skipped = skipped_count;
  std::stable_sort(lines.begin(), lines.end(),
                   [](const MergedLine& a, const MergedLine& b) {
                     if (a.t_unix_ms != b.t_unix_ms) {
                       return a.t_unix_ms < b.t_unix_ms;
                     }
                     return a.order < b.order;
                   });
  AtomicFileWriter writer(out_path);
  if (!writer.ok()) {
    if (error != nullptr) *error = "cannot open " + out_path;
    return false;
  }
  std::string header = "{\"schema\": \"ppn.stats.merged.v1\", \"streams\": [";
  for (size_t i = 0; i < processes.size(); ++i) {
    if (i > 0) header += ", ";
    header += "\"" + JsonEscape(processes[i]) + "\"";
  }
  header += "]}\n";
  writer.stream() << header;
  for (const MergedLine& line : lines) {
    writer.stream() << line.text << "\n";
  }
  if (!writer.Commit()) {
    if (error != nullptr) *error = "cannot write " + out_path;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Sampler — compiles out with the rest of the obs write path.

#ifndef PPN_OBS_DISABLED

namespace {

constexpr size_t kQueueCapacity = 1024;

/// Lower bound of histogram bucket `index` (inclusive); bucket 0 also
/// absorbs clamped non-positive values, so its floor is 0.
double BucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  return HistogramBucketUpperBound(index - 1);
}

/// Per-window histogram: bucket-wise delta of two cumulative snapshots.
/// The window's exact min/max are not recoverable from cumulative
/// watermarks, so they are estimated from the first/last nonempty delta
/// bucket (tightened by the cumulative watermarks, which bound every
/// window) — exactly the resolution `Percentile` already has.
HistogramSnapshot WindowHistogram(const HistogramSnapshot* prev,
                                  const HistogramSnapshot& cur) {
  HistogramSnapshot delta;
  delta.count = cur.count - (prev != nullptr ? prev->count : 0);
  if (delta.count <= 0) return delta;
  delta.sum = cur.sum - (prev != nullptr ? prev->sum : 0.0);
  int first = -1;
  int last = -1;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    delta.buckets[i] =
        cur.buckets[i] - (prev != nullptr ? prev->buckets[i] : 0);
    if (delta.buckets[i] > 0) {
      if (first < 0) first = i;
      last = i;
    }
  }
  if (prev == nullptr || prev->count <= 0) {
    // First active window: cumulative == window, watermarks are exact.
    delta.min = cur.min;
    delta.max = cur.max;
  } else {
    delta.min = std::max(BucketLowerBound(first), cur.min);
    delta.max = std::min(HistogramBucketUpperBound(last), cur.max);
    if (delta.min > delta.max) delta.min = delta.max;
  }
  return delta;
}

/// Counter deltas + current gauges + per-window histograms: the view one
/// sample line describes, and the view window health rules see.
Snapshot WindowView(const Snapshot& prev, const Snapshot& cur) {
  Snapshot window;
  for (const auto& [name, value] : cur.counters) {
    auto it = prev.counters.find(name);
    double delta = value - (it != prev.counters.end() ? it->second : 0.0);
    if (delta != 0.0) window.counters[name] = delta;
  }
  window.gauges = cur.gauges;
  for (const auto& [name, hist] : cur.histograms) {
    auto it = prev.histograms.find(name);
    HistogramSnapshot delta = WindowHistogram(
        it != prev.histograms.end() ? &it->second : nullptr, hist);
    if (delta.count > 0) window.histograms[name] = delta;
  }
  return window;
}

void AppendHistogram(std::string* out, const HistogramSnapshot& hist) {
  *out += "{\"count\": " + std::to_string(hist.count);
  const std::pair<const char*, double> stats[] = {
      {"mean", hist.count > 0 ? hist.sum / static_cast<double>(hist.count)
                              : 0.0},
      {"min", hist.min},
      {"max", hist.max},
      {"p50", hist.Percentile(0.50)},
      {"p95", hist.Percentile(0.95)},
      {"p99", hist.Percentile(0.99)},
  };
  for (const auto& [name, value] : stats) {
    *out += ", \"";
    *out += name;
    *out += "\": ";
    AppendDouble(out, value);
  }
  *out += "}";
}

std::string FormatSample(const Snapshot& window, double t_ms,
                         double window_ms,
                         const std::vector<HealthEval>& evals) {
  std::string line = "{\"t_ms\": ";
  AppendDouble(&line, t_ms);
  line += ", \"window_ms\": ";
  AppendDouble(&line, window_ms);
  if (!window.counters.empty()) {
    line += ", \"counters\": {";
    bool sep = false;
    for (const auto& [name, value] : window.counters) {
      if (sep) line += ", ";
      sep = true;
      line += "\"" + JsonEscape(name) + "\": ";
      AppendDouble(&line, value);
    }
    line += "}";
  }
  if (!window.gauges.empty()) {
    line += ", \"gauges\": {";
    bool sep = false;
    for (const auto& [name, value] : window.gauges) {
      if (sep) line += ", ";
      sep = true;
      line += "\"" + JsonEscape(name) + "\": ";
      AppendDouble(&line, value);
    }
    line += "}";
  }
  if (!window.histograms.empty()) {
    line += ", \"hists\": {";
    bool sep = false;
    for (const auto& [name, hist] : window.histograms) {
      if (sep) line += ", ";
      sep = true;
      line += "\"" + JsonEscape(name) + "\": ";
      AppendHistogram(&line, hist);
    }
    line += "}";
  }
  bool any_eval = false;
  for (const HealthEval& eval : evals) {
    if (eval.evaluated) any_eval = true;
  }
  if (any_eval) {
    line += ", \"health\": [";
    bool sep = false;
    for (const HealthEval& eval : evals) {
      if (!eval.evaluated) continue;
      if (sep) line += ", ";
      sep = true;
      line += "{\"rule\": \"" + JsonEscape(eval.rule->raw) + "\", \"ok\": ";
      line += eval.ok ? "true" : "false";
      line += ", \"value\": ";
      AppendDouble(&line, eval.value);
      line += "}";
    }
    line += "]";
  }
  line += "}\n";
  return line;
}

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// `<dir>/serve.stats.jsonl` → "serve": the stream basename is the
/// natural process label (fabric workers inherit slot/gen identity from
/// their redirected path).
std::string ProcessFromPath(const std::string& path,
                            const std::string& fallback) {
  size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  for (const char* suffix : {".stats.jsonl", ".jsonl"}) {
    size_t len = std::strlen(suffix);
    if (base.size() > len &&
        base.compare(base.size() - len, len, suffix) == 0) {
      return base.substr(0, base.size() - len);
    }
  }
  return fallback.empty() ? base : fallback;
}

}  // namespace

struct StatsSampler::Impl {
  SamplerOptions options;
  int64_t sample_ms = 250;
  int fd = -1;
  bool write_ok = true;
  // Evaluated on the sampling thread, read by `healthy()` / (possibly
  // live) `HealthSummary()` on the owner thread.
  mutable std::mutex monitor_mutex;
  HealthMonitor monitor{{}};
  Snapshot prev;
  std::chrono::steady_clock::time_point start;

  std::mutex mutex;
  std::condition_variable not_full;
  std::condition_variable not_empty;
  std::condition_variable wake;
  std::deque<std::string> queue;
  bool stop_sampling = false;  ///< Sampling thread: emit final line, exit.
  bool writer_closing = false;  ///< Writer thread: drain queue, exit.
  bool stopped = false;
  std::thread sampling_thread;
  std::thread writer_thread;

  void Enqueue(std::string line) {
    std::unique_lock<std::mutex> lock(mutex);
    not_full.wait(lock, [this] { return queue.size() < kQueueCapacity; });
    queue.push_back(std::move(line));
    lock.unlock();
    not_empty.notify_one();
  }

  void SampleOnce(std::chrono::steady_clock::time_point now) {
    Snapshot cur = TakeSnapshot();
    Snapshot window = WindowView(prev, cur);
    std::vector<HealthEval> evals;
    {
      std::lock_guard<std::mutex> lock(monitor_mutex);
      evals = monitor.Evaluate(window);
    }
    double t_ms =
        std::chrono::duration<double, std::milli>(now - start).count();
    double window_ms = t_ms - last_t_ms;
    last_t_ms = t_ms;
    Enqueue(FormatSample(window, t_ms, window_ms, evals));
    prev = std::move(cur);
  }

  void SamplingLoop() {
    auto deadline = start;
    for (;;) {
      deadline += std::chrono::milliseconds(sample_ms);
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait_until(lock, deadline, [this] { return stop_sampling; });
        if (stop_sampling) break;
      }
      SampleOnce(std::chrono::steady_clock::now());
    }
    // Final (usually partial) window: short runs still get >= 1 sample.
    SampleOnce(std::chrono::steady_clock::now());
  }

  void WriterLoop() {
    for (;;) {
      std::string line;
      {
        std::unique_lock<std::mutex> lock(mutex);
        not_empty.wait(lock,
                       [this] { return !queue.empty() || writer_closing; });
        if (queue.empty()) return;
        line = std::move(queue.front());
        queue.pop_front();
      }
      not_full.notify_one();
      WriteLine(line);
    }
  }

  /// One full-line write(2) per sample: a tailer never sees interleaved
  /// fragments, only whole lines plus at most one in-flight partial.
  void WriteLine(const std::string& line) {
    size_t written = 0;
    while (written < line.size()) {
      ssize_t n = ::write(fd, line.data() + written, line.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        write_ok = false;
        return;
      }
      written += static_cast<size_t>(n);
    }
  }

  double last_t_ms = 0.0;
};

StatsSampler::StatsSampler(std::unique_ptr<Impl> impl)
    : path_(impl->options.path), impl_(std::move(impl)) {}

std::unique_ptr<StatsSampler> StatsSampler::Start(
    const SamplerOptions& options) {
  if (!Enabled() || options.path.empty()) return nullptr;
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->sample_ms = options.sample_ms > 0
                        ? options.sample_ms
                        : env::Int64Or("PPN_SAMPLE_MS", 250);
  PPN_CHECK(impl->sample_ms >= 1)
      << "PPN_SAMPLE_MS must be >= 1, got " << impl->sample_ms;
  impl->monitor = HealthMonitor(options.health);
  impl->fd = ::open(options.path.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (impl->fd < 0) {
    std::fprintf(stderr, "[obs] cannot open stats stream %s: %s\n",
                 options.path.c_str(), std::strerror(errno));
    return nullptr;
  }
  std::string process = ProcessFromPath(options.path, options.process);
  std::string header = "{\"schema\": \"ppn.stats.v1\", \"process\": \"" +
                       JsonEscape(process) + "\", \"sample_ms\": " +
                       std::to_string(impl->sample_ms) +
                       ", \"start_unix_ms\": " + std::to_string(NowUnixMs()) +
                       "}\n";
  impl->start = std::chrono::steady_clock::now();
  impl->prev = TakeSnapshot();
  impl->WriteLine(header);
  Impl* raw = impl.get();
  impl->writer_thread = std::thread([raw] { raw->WriterLoop(); });
  impl->sampling_thread = std::thread([raw] { raw->SamplingLoop(); });
  // unique_ptr via `new`: the constructor is private.
  return std::unique_ptr<StatsSampler>(new StatsSampler(std::move(impl)));
}

bool StatsSampler::Stop() {
  Impl& impl = *impl_;
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    if (impl.stopped) return impl.write_ok;
    impl.stopped = true;
    impl.stop_sampling = true;
  }
  impl.wake.notify_all();
  // The sampling thread emits its final window before exiting, so the
  // writer must only be closed after it joins.
  if (impl.sampling_thread.joinable()) impl.sampling_thread.join();
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    impl.writer_closing = true;
  }
  impl.not_empty.notify_all();
  if (impl.writer_thread.joinable()) impl.writer_thread.join();
  if (impl.fd >= 0) {
    ::close(impl.fd);
    impl.fd = -1;
  }
  return impl.write_ok;
}

StatsSampler::~StatsSampler() { Stop(); }

bool StatsSampler::healthy() const {
  std::lock_guard<std::mutex> lock(impl_->monitor_mutex);
  return impl_->monitor.ok();
}

std::string StatsSampler::HealthSummary(bool color) const {
  std::lock_guard<std::mutex> lock(impl_->monitor_mutex);
  return impl_->monitor.Summary(color);
}

std::unique_ptr<StatsSampler> StartSamplerFromEnv(
    const std::string& process) {
  std::string path = env::StringOr("PPN_STATS_JSONL", "");
  if (path.empty()) return nullptr;
  SamplerOptions options;
  options.path = path;
  options.process = process;
  options.health = HealthRulesFromEnv();
  return StatsSampler::Start(options);
}

#else  // PPN_OBS_DISABLED

struct StatsSampler::Impl {};

StatsSampler::StatsSampler(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

std::unique_ptr<StatsSampler> StatsSampler::Start(const SamplerOptions&) {
  return nullptr;
}

bool StatsSampler::Stop() { return true; }

StatsSampler::~StatsSampler() = default;

bool StatsSampler::healthy() const { return true; }

std::string StatsSampler::HealthSummary(bool) const { return ""; }

std::unique_ptr<StatsSampler> StartSamplerFromEnv(const std::string&) {
  return nullptr;
}

#endif  // PPN_OBS_DISABLED

}  // namespace ppn::obs
