#include "obs/trace_merge.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/atomic_file.h"
#include "common/json.h"

namespace ppn::obs {

namespace {

namespace fs = std::filesystem;

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendUs(std::string* out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  *out += buffer;
}

void AppendNumber(std::string* out, double value) {
  char buffer[40];
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "null");
  }
  *out += buffer;
}

/// Serializes a parsed args subtree back to JSON (numbers as %.17g).
void AppendJsonValue(std::string* out, const JsonValue& value) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += value.AsBool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      AppendNumber(out, value.AsNumber());
      break;
    case JsonValue::Type::kString:
      *out += "\"" + JsonEscape(value.AsString()) + "\"";
      break;
    case JsonValue::Type::kArray: {
      *out += "[";
      bool sep = false;
      for (const JsonValue& item : value.AsArray()) {
        if (sep) *out += ", ";
        sep = true;
        AppendJsonValue(out, item);
      }
      *out += "]";
      break;
    }
    case JsonValue::Type::kObject: {
      *out += "{";
      bool sep = false;
      for (const auto& [key, member] : value.AsObject()) {
        if (sep) *out += ", ";
        sep = true;
        *out += "\"" + JsonEscape(key) + "\": ";
        AppendJsonValue(out, member);
      }
      *out += "}";
      break;
    }
  }
}

/// One event of the merged timeline, already pid-stamped and time-shifted.
struct MergedEvent {
  int pid = 0;
  int tid = 0;
  double ts = 0.0;
  double dur = 0.0;
  std::string name;
  std::string ph;
  std::string cat;
  std::string bp;
  uint64_t id = 0;
  bool has_id = false;
  bool has_dur = false;
  JsonValue args;  ///< kNull when absent.
  bool metadata = false;  ///< process_name events sort before peers.
};

void AppendEventJson(std::string* out, const MergedEvent& event) {
  *out += "{\"name\": \"" + JsonEscape(event.name) + "\"";
  if (!event.cat.empty()) {
    *out += ", \"cat\": \"" + JsonEscape(event.cat) + "\"";
  }
  *out += ", \"ph\": \"" + JsonEscape(event.ph) + "\"";
  if (!event.bp.empty()) {
    *out += ", \"bp\": \"" + JsonEscape(event.bp) + "\"";
  }
  if (event.has_id) {
    // Chrome's trace format allows string ids; hex strings keep 64-bit
    // remapped ids exact in readers that parse JSON numbers as doubles.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "\"0x%llx\"",
                  static_cast<unsigned long long>(event.id));
    *out += ", \"id\": ";
    *out += buffer;
  }
  *out += ", \"ts\": ";
  AppendUs(out, event.ts);
  if (event.has_dur) {
    *out += ", \"dur\": ";
    AppendUs(out, event.dur);
  }
  *out += ", \"pid\": " + std::to_string(event.pid);
  *out += ", \"tid\": " + std::to_string(event.tid);
  if (event.args.is_object()) {
    *out += ", \"args\": ";
    AppendJsonValue(out, event.args);
  }
  *out += "}";
}

/// Flow ids from different processes must not collide after the merge;
/// 40 bits leaves room for any realistic per-process id while keeping
/// pid tags distinct. Synthetic fabric flows get their own tag.
uint64_t RemapFlowId(int pid, uint64_t id) {
  return (static_cast<uint64_t>(pid) << 40) | (id & ((1ull << 40) - 1));
}

uint64_t FabricFlowId(int64_t index) {
  return (0xffull << 48) | static_cast<uint64_t>(index);
}

struct ParsedInput {
  std::string name;
  std::vector<JsonValue> events;
  int64_t epoch_unix_us = 0;
  int64_t dropped = 0;
};

bool ParseInput(const TraceProcess& input, ParsedInput* out) {
  std::ifstream in(input.path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  JsonValue root;
  if (!ParseJson(text.str(), &root) || !root.is_object()) return false;
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return false;
  out->name = input.name;
  out->events = events->AsArray();
  if (const JsonValue* other = root.Find("otherData");
      other != nullptr && other->is_object()) {
    out->epoch_unix_us =
        static_cast<int64_t>(other->NumberOr("ppn_epoch_unix_us", 0.0));
    out->dropped =
        static_cast<int64_t>(other->NumberOr("ppn_dropped_events", 0.0));
  }
  return true;
}

/// One side of a cross-process stitch candidate.
struct SpanRef {
  int pid = 0;
  int tid = 0;
  double ts = 0.0;
  double dur = 0.0;
  bool valid = false;
};

}  // namespace

bool MergeChromeTraces(const std::vector<TraceProcess>& inputs,
                       const std::string& out_path, std::string* error,
                       TraceMergeStats* stats) {
  TraceMergeStats local;
  std::vector<ParsedInput> parsed;
  for (const TraceProcess& input : inputs) {
    ParsedInput one;
    if (!ParseInput(input, &one)) {
      ++local.skipped_files;
      continue;
    }
    parsed.push_back(std::move(one));
  }
  if (parsed.empty()) {
    if (stats != nullptr) *stats = local;
    if (error != nullptr) *error = "no readable trace inputs";
    return false;
  }
  local.processes = static_cast<int>(parsed.size());

  // Shared time axis: shift each process by its wall-clock distance from
  // the earliest anchored process. Unanchored inputs stay at offset 0.
  int64_t min_epoch = 0;
  bool have_epoch = false;
  for (const ParsedInput& input : parsed) {
    if (input.epoch_unix_us <= 0) continue;
    if (!have_epoch || input.epoch_unix_us < min_epoch) {
      min_epoch = input.epoch_unix_us;
      have_epoch = true;
    }
  }

  std::vector<MergedEvent> merged;
  // index → dispatch end / earliest cell span, for cross-process flows.
  std::map<int64_t, SpanRef> dispatches;
  std::map<int64_t, SpanRef> cells;

  for (size_t p = 0; p < parsed.size(); ++p) {
    const ParsedInput& input = parsed[p];
    const int pid = static_cast<int>(p) + 1;
    local.dropped_events += input.dropped;
    double offset_us = 0.0;
    if (have_epoch && input.epoch_unix_us > 0) {
      offset_us = static_cast<double>(input.epoch_unix_us - min_epoch);
    }

    MergedEvent meta;
    meta.pid = pid;
    meta.tid = 0;
    meta.name = "process_name";
    meta.ph = "M";
    meta.metadata = true;
    meta.args = JsonValue::MakeObject(
        {{"name", JsonValue::MakeString(input.name)}});
    merged.push_back(std::move(meta));

    for (const JsonValue& raw : input.events) {
      if (!raw.is_object()) continue;
      MergedEvent event;
      event.pid = pid;
      event.tid = static_cast<int>(raw.NumberOr("tid", 0.0));
      event.ts = raw.NumberOr("ts", 0.0) + offset_us;
      event.name = raw.StringOr("name", "");
      event.ph = raw.StringOr("ph", "X");
      event.cat = raw.StringOr("cat", "");
      event.bp = raw.StringOr("bp", "");
      if (const JsonValue* dur = raw.Find("dur");
          dur != nullptr && dur->is_number()) {
        event.dur = dur->AsNumber();
        event.has_dur = true;
      }
      if (const JsonValue* id = raw.Find("id"); id != nullptr) {
        if (id->is_number()) {
          event.id = RemapFlowId(pid, static_cast<uint64_t>(id->AsNumber()));
          event.has_id = true;
        } else if (id->is_string()) {
          // "0x..." or decimal string ids (the format this merger emits).
          event.id = RemapFlowId(
              pid, std::strtoull(id->AsString().c_str(), nullptr, 0));
          event.has_id = true;
        }
      }
      if (const JsonValue* args = raw.Find("args");
          args != nullptr && args->is_object()) {
        event.args = *args;
        if (event.ph == "X") {
          const double index = args->NumberOr("index", -1.0);
          if (index >= 0.0) {
            const auto key = static_cast<int64_t>(index);
            SpanRef ref{pid, event.tid, event.ts, event.dur, true};
            if (event.name == "fabric.dispatch") {
              // Last dispatch wins: a redispatched cell's arrow should
              // leave the attempt that actually reached a worker.
              dispatches[key] = ref;
            } else if (event.name == "exec.cell") {
              // Earliest cell wins: the first claimant did the work.
              auto it = cells.find(key);
              if (it == cells.end() || ref.ts < it->second.ts) {
                cells[key] = ref;
              }
            }
          }
        }
      }
      merged.push_back(std::move(event));
      ++local.events;
    }
  }

  // Stitch: one s→f pair per cell index seen on both sides of a process
  // boundary. `s` leaves the end of the dispatch span; `f` binds to the
  // enclosing worker cell span (bp:"e"). Clock skew between anchors can
  // put the dispatch end marginally after the cell start; clamp so the
  // arrow never points backwards.
  for (const auto& [index, dispatch] : dispatches) {
    auto it = cells.find(index);
    if (it == cells.end() || it->second.pid == dispatch.pid) continue;
    const SpanRef& cell = it->second;
    MergedEvent start;
    start.pid = dispatch.pid;
    start.tid = dispatch.tid;
    start.ts = std::min(dispatch.ts + dispatch.dur, cell.ts);
    start.name = "fabric.cell";
    start.ph = "s";
    start.cat = "fabric";
    start.id = FabricFlowId(index);
    start.has_id = true;
    MergedEvent finish;
    finish.pid = cell.pid;
    finish.tid = cell.tid;
    finish.ts = cell.ts;
    finish.name = "fabric.cell";
    finish.ph = "f";
    finish.bp = "e";
    finish.cat = "fabric";
    finish.id = FabricFlowId(index);
    finish.has_id = true;
    merged.push_back(std::move(start));
    merged.push_back(std::move(finish));
    local.events += 2;
    ++local.flow_pairs;
  }

  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.metadata != b.metadata) return a.metadata;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.tid < b.tid;
                   });

  AtomicFileWriter writer(out_path);
  if (!writer.ok()) {
    if (stats != nullptr) *stats = local;
    if (error != nullptr) *error = "cannot open " + out_path;
    return false;
  }
  std::string out = "{\n\"traceEvents\": [";
  bool first = true;
  for (const MergedEvent& event : merged) {
    out += first ? "\n" : ",\n";
    first = false;
    AppendEventJson(&out, event);
    writer.stream() << out;
    out.clear();
  }
  writer.stream() << (first ? "" : "\n") << "],\n"
                  << "\"displayTimeUnit\": \"ms\",\n"
                  << "\"otherData\": {\"ppn_dropped_events\": "
                  << local.dropped_events
                  << ", \"ppn_merged_processes\": " << local.processes
                  << ", \"ppn_flow_pairs\": " << local.flow_pairs << "}\n}\n";
  if (!writer.Commit()) {
    if (stats != nullptr) *stats = local;
    if (error != nullptr) *error = "cannot write " + out_path;
    return false;
  }
  if (stats != nullptr) *stats = local;
  return true;
}

bool MergeFabricTraces(const std::string& fabric_dir,
                       const std::string& out_path, std::string* error,
                       TraceMergeStats* stats) {
  const fs::path obs_dir = fs::path(fabric_dir) / "obs";
  std::error_code ec;
  std::vector<TraceProcess> workers;
  TraceProcess coordinator;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(obs_dir, ec)) {
    const std::string filename = entry.path().filename().string();
    const std::string suffix = ".trace.json";
    if (filename.size() <= suffix.size() ||
        filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
      continue;
    }
    TraceProcess process;
    process.name = filename.substr(0, filename.size() - suffix.size());
    // A prior merge's own output lives in the same directory; re-merging
    // it would double every event and break flow pairing.
    if (process.name == "merged") continue;
    process.path = entry.path().string();
    if (process.name == "coordinator") {
      coordinator = process;
    } else {
      workers.push_back(std::move(process));
    }
  }
  if (ec) {
    if (error != nullptr) {
      *error = "cannot list " + obs_dir.string() + ": " + ec.message();
    }
    return false;
  }
  std::sort(workers.begin(), workers.end(),
            [](const TraceProcess& a, const TraceProcess& b) {
              return a.name < b.name;
            });
  std::vector<TraceProcess> inputs;
  if (!coordinator.path.empty()) inputs.push_back(coordinator);
  inputs.insert(inputs.end(), workers.begin(), workers.end());
  if (inputs.empty()) {
    if (error != nullptr) {
      *error = "no *.trace.json files under " + obs_dir.string();
    }
    return false;
  }
  return MergeChromeTraces(inputs, out_path, error, stats);
}

}  // namespace ppn::obs
