#ifndef PPN_OBS_TRACE_MERGE_H_
#define PPN_OBS_TRACE_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Cross-process trace stitching: folds the Chrome-trace JSONs written by
/// a fabric coordinator and its worker generations into ONE
/// Perfetto-loadable timeline.
///
/// Each input process becomes one `pid` in the merged file (tids keep
/// their per-process values — they are already disjoint per pid), led by
/// a `ph:"M"` / `process_name` metadata event so Perfetto labels the
/// tracks `coordinator`, `worker-0.g0`, ....
///
/// Three things make the merge more than concatenation:
///
///   1. **Clock alignment.** Every process timestamps spans against its
///      own steady-clock epoch (microseconds since first trace touch), so
///      raw timelines would all start at 0. The exporter records the wall
///      clock captured at that same instant (`otherData.ppn_epoch_unix_us`);
///      the merge shifts each process by `epoch_i - min(epoch)` onto a
///      shared axis. Inputs missing the anchor (older files) keep offset
///      0.
///   2. **Flow-id remapping.** Per-process flow ids are both counted from
///      1; merged as-is they would cross-link unrelated arrows. Ids are
///      rewritten to `(pid << 40) | id`.
///   3. **Cross-process flows.** The coordinator's `fabric.dispatch`
///      spans and the workers' `exec.cell` spans both carry the cell
///      `index` arg; the merge emits one `s`→`f` flow pair per index seen
///      on both sides (dispatch end → earliest matching cell span), so
///      the handoff of every cell is an arrow across process tracks.
///
/// Like `obs/report.h`, this is reader-side tooling and never compiles
/// out: it operates on files, not on the live registry.

namespace ppn::obs {

/// One input timeline.
struct TraceProcess {
  std::string name;  ///< Merged process_name, e.g. "worker-0.g1".
  std::string path;  ///< Chrome trace JSON written by obs/trace.cc.
};

struct TraceMergeStats {
  int64_t events = 0;      ///< Events in the merged output (sans metadata).
  int processes = 0;       ///< Inputs successfully folded in.
  int skipped_files = 0;   ///< Inputs dropped as unreadable/unparsable.
  int64_t flow_pairs = 0;  ///< Cross-process dispatch→cell pairs emitted.
  int64_t dropped_events = 0;  ///< Sum of inputs' ppn_dropped_events.
};

/// Merges `inputs` into `out_path` (atomic write). Unreadable inputs are
/// skipped and counted, not fatal; returns false only when no input
/// parses or the output cannot be written. Events are emitted sorted by
/// `(pid, ts, tid)` with each pid's metadata event first.
bool MergeChromeTraces(const std::vector<TraceProcess>& inputs,
                       const std::string& out_path, std::string* error,
                       TraceMergeStats* stats = nullptr);

/// Discovers `<fabric_dir>/obs/*.trace.json` (the coordinator's stream
/// first, then workers in name order) and merges them into `out_path`.
bool MergeFabricTraces(const std::string& fabric_dir,
                       const std::string& out_path, std::string* error,
                       TraceMergeStats* stats = nullptr);

}  // namespace ppn::obs

#endif  // PPN_OBS_TRACE_MERGE_H_
