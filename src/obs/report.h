#ifndef PPN_OBS_REPORT_H_
#define PPN_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/run_log.h"

/// \file
/// Offline readers for the telemetry files this repo writes: RunLog JSONL
/// streams (`run_log.h`) and Chrome trace-event JSON (`trace.h`). These
/// back the `ppn_cli report` subcommand and the exporter-validation
/// tests. Unlike the recording side, this layer does NOT compile out
/// under -DPPN_OBS_COMPILED=OFF: reading a telemetry file produced by an
/// instrumented build is useful from any build.

namespace ppn::obs {

/// One fully parsed run-log file: the header metadata plus every step
/// record, in file order.
struct ParsedRunLog {
  std::string schema;
  RunLogMeta meta;
  std::vector<RunLogRecord> records;
};

/// Parses a RunLog JSONL file. Returns false (with a message in `error`
/// when non-null) on I/O failure, a malformed line, or an unsupported
/// schema version. Doubles round-trip exactly (%.17g on the write side,
/// strtod on the read side are inverses for finite values).
bool ReadRunLog(const std::string& path, ParsedRunLog* out,
                std::string* error = nullptr);

/// Per-cell digest used by `ppn_cli report`: final-step reward
/// decomposition plus a first-vs-last-window turnover trajectory.
struct RunLogSummary {
  std::string file;  ///< Basename of the run-log file.
  RunLogMeta meta;
  int64_t steps = 0;
  RunLogRecord final_step;     ///< Last record in the file.
  double turnover_first = 0.0;  ///< Mean turnover, first `window` steps.
  double turnover_last = 0.0;   ///< Mean turnover, last `window` steps.
  double grad_norm_last = 0.0;  ///< Mean grad norm, last `window` steps.
  double solver_iters_mean = 0.0;
  double step_seconds_total = 0.0;
};

/// Summarizes one parsed log. `window` bounds the head/tail averaging
/// windows (clamped to the record count).
RunLogSummary SummarizeRunLog(const ParsedRunLog& log, int64_t window = 50);

/// Finds `*.runlog.jsonl` files directly inside `dir` (sorted by name),
/// parses and summarizes each. Unparseable files are skipped with a note
/// appended to `errors` when non-null.
std::vector<RunLogSummary> SummarizeRunLogDir(
    const std::string& dir, int64_t window = 50,
    std::vector<std::string>* errors = nullptr);

/// Aggregate of one span name across a trace file.
struct SpanStat {
  std::string name;
  int64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

/// Parses a Chrome trace-event JSON file and aggregates its "X" events
/// by name, sorted by total duration (descending), name ascending on
/// ties. Returns false on I/O or parse failure.
bool SummarizeTrace(const std::string& path, std::vector<SpanStat>* out,
                    std::string* error = nullptr);

/// Renders the report `ppn_cli report` prints: one table row per cell
/// (reward decomposition at the final step, turnover first→last), and a
/// slowest-spans table when `trace_path` is non-empty.
std::string RenderReport(const std::vector<RunLogSummary>& cells,
                         const std::vector<SpanStat>& spans);

}  // namespace ppn::obs

#endif  // PPN_OBS_REPORT_H_
