#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"
#include "common/env.h"

namespace ppn::obs {

#ifndef PPN_OBS_DISABLED

namespace internal {

std::atomic<bool>& TraceFlag() {
  // First use decides the default: an explicit trace destination arms the
  // sink (and PPN_TRACE_JSON also flips EnabledFlag via the check below,
  // so `PPN_TRACE_JSON=t.json ppn_cli ...` works without PPN_OBS=1 —
  // see EnabledFlag() in stats.cc).
  static std::atomic<bool> flag{[] { return env::HasValue("PPN_TRACE_JSON"); }()};
  return flag;
}

}  // namespace internal

bool SetTraceEnabled(bool enabled) {
  return internal::TraceFlag().exchange(enabled);
}

namespace {

/// One recorded event. `name` is move-assigned in (no allocation in the
/// append itself); arg keys are string literals held by pointer.
struct TraceEvent {
  enum class Phase : uint8_t { kComplete, kFlowStart, kFlowFinish };

  Phase phase = Phase::kComplete;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint64_t flow_id = 0;
  int num_args = 0;
  std::array<std::pair<const char*, double>, kMaxSpanArgs> args{};
  std::string name;
};

/// One thread's private event store: a fixed-size slot array written only
/// by the owner. `count` is release-published so an exporting thread that
/// acquire-loads it sees fully written slots; overflow drops (counted)
/// rather than growing, keeping appends allocation- and lock-free.
struct TraceBuffer {
  explicit TraceBuffer(int tid_in, int64_t capacity) : tid(tid_in) {
    events.resize(static_cast<size_t>(capacity));
  }

  const int tid;
  std::vector<TraceEvent> events;
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> dropped{0};
};

struct TraceRegistry {
  std::mutex mutex;
  // Leaked on purpose, like the stats shards: a pool worker's events must
  // survive its join so the end-of-run export still sees them.
  std::vector<TraceBuffer*> buffers;
};

TraceRegistry& GlobalTraceRegistry() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

int64_t BufferCapacity() {
  // Strict parse: a malformed capacity aborts instead of silently mapping
  // to the default; non-positive values still fall back.
  static const int64_t capacity = [] {
    const int64_t parsed = env::Int64Or("PPN_TRACE_CAPACITY", 65536);
    return parsed > 0 ? parsed : static_cast<int64_t>(65536);
  }();
  return capacity;
}

double GlobalMinDurationUs() {
  static const double min_us = [] {
    const double parsed = env::DoubleOr("PPN_TRACE_MIN_US", 0.0);
    return parsed > 0.0 ? parsed : 0.0;
  }();
  return min_us;
}

TraceBuffer& LocalTraceBuffer() {
  thread_local TraceBuffer* buffer = [] {
    TraceRegistry& registry = GlobalTraceRegistry();
    std::unique_lock<std::mutex> lock(registry.mutex);
    auto* created = new TraceBuffer(
        static_cast<int>(registry.buffers.size()) + 1, BufferCapacity());
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

/// Common timebase for every thread: microseconds since the first trace
/// touch in the process. The wall clock is captured at the same instant
/// and exported as `otherData.ppn_epoch_unix_us`, so the cross-process
/// trace merge (obs/trace_merge) can place each process's steady-clock
/// timeline on one shared axis.
struct EpochAnchor {
  std::chrono::steady_clock::time_point steady;
  int64_t unix_us = 0;
};

const EpochAnchor& Anchor() {
  static const EpochAnchor anchor = [] {
    EpochAnchor a;
    a.steady = std::chrono::steady_clock::now();
    a.unix_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    return a;
  }();
  return anchor;
}

std::chrono::steady_clock::time_point Epoch() { return Anchor().steady; }

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch())
      .count();
}

void AppendEvent(TraceEvent&& event) {
  TraceBuffer& buffer = LocalTraceBuffer();
  const int64_t count = buffer.count.load(std::memory_order_relaxed);
  if (count >= static_cast<int64_t>(buffer.events.size())) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events[static_cast<size_t>(count)] = std::move(event);
  buffer.count.store(count + 1, std::memory_order_release);
}

uint64_t NextFlowId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Span::Span(std::string_view name, double min_duration_us) {
  if (!TraceEnabled()) return;
  active_ = true;
  min_duration_us_ = std::max(min_duration_us, GlobalMinDurationUs());
  name_.assign(name);
  start_us_ = NowUs();
}

Span::~Span() {
  if (!active_) return;
  const double end_us = NowUs();
  const double dur_us = end_us - start_us_;
  if (dur_us < min_duration_us_) return;
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.ts_us = start_us_;
  event.dur_us = dur_us;
  event.num_args = num_args_;
  event.args = args_;
  event.name = std::move(name_);
  AppendEvent(std::move(event));
}

void Span::AddArg(const char* key, double value) {
  if (!active_ || num_args_ >= kMaxSpanArgs) return;
  args_[static_cast<size_t>(num_args_)] = {key, value};
  ++num_args_;
}

uint64_t BeginFlow(const char* name) {
  if (!TraceEnabled()) return 0;
  const uint64_t id = NextFlowId();
  TraceEvent event;
  event.phase = TraceEvent::Phase::kFlowStart;
  event.ts_us = NowUs();
  event.flow_id = id;
  event.name = name;
  AppendEvent(std::move(event));
  return id;
}

void EndFlow(uint64_t id, const char* name) {
  if (id == 0 || !TraceEnabled()) return;
  TraceEvent event;
  event.phase = TraceEvent::Phase::kFlowFinish;
  event.ts_us = NowUs();
  event.flow_id = id;
  event.name = name;
  AppendEvent(std::move(event));
}

int64_t TraceDroppedEvents() {
  TraceRegistry& registry = GlobalTraceRegistry();
  std::vector<TraceBuffer*> buffers;
  {
    std::unique_lock<std::mutex> lock(registry.mutex);
    buffers = registry.buffers;
  }
  int64_t dropped = 0;
  for (const TraceBuffer* buffer : buffers) {
    dropped += buffer->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendUs(std::ostringstream* out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  (*out) << buffer;
}

}  // namespace

std::string TraceToJson() {
  TraceRegistry& registry = GlobalTraceRegistry();
  std::vector<TraceBuffer*> buffers;
  {
    std::unique_lock<std::mutex> lock(registry.mutex);
    buffers = registry.buffers;
  }
  // Stable file structure: buffers in tid order, events in append
  // (= timestamp) order within each.
  std::sort(buffers.begin(), buffers.end(),
            [](const TraceBuffer* a, const TraceBuffer* b) {
              return a->tid < b->tid;
            });
  std::ostringstream out;
  out.precision(17);
  out << "{\n\"traceEvents\": [";
  bool first = true;
  int64_t dropped = 0;
  for (const TraceBuffer* buffer : buffers) {
    dropped += buffer->dropped.load(std::memory_order_relaxed);
    const int64_t count = buffer->count.load(std::memory_order_acquire);
    for (int64_t i = 0; i < count; ++i) {
      const TraceEvent& event = buffer->events[static_cast<size_t>(i)];
      out << (first ? "\n" : ",\n");
      first = false;
      out << "{\"name\": \"" << JsonEscape(event.name) << "\", ";
      switch (event.phase) {
        case TraceEvent::Phase::kComplete:
          out << "\"ph\": \"X\", \"ts\": ";
          AppendUs(&out, event.ts_us);
          out << ", \"dur\": ";
          AppendUs(&out, event.dur_us);
          break;
        case TraceEvent::Phase::kFlowStart:
          out << "\"cat\": \"flow\", \"ph\": \"s\", \"id\": "
              << event.flow_id << ", \"ts\": ";
          AppendUs(&out, event.ts_us);
          break;
        case TraceEvent::Phase::kFlowFinish:
          // bp:"e" binds the arrow to the ENCLOSING slice, which is the
          // worker-side task span the flow terminates inside.
          out << "\"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", "
              << "\"id\": " << event.flow_id << ", \"ts\": ";
          AppendUs(&out, event.ts_us);
          break;
      }
      out << ", \"pid\": 1, \"tid\": " << buffer->tid;
      if (event.phase == TraceEvent::Phase::kComplete &&
          event.num_args > 0) {
        out << ", \"args\": {";
        for (int a = 0; a < event.num_args; ++a) {
          out << (a == 0 ? "" : ", ") << "\""
              << JsonEscape(event.args[static_cast<size_t>(a)].first)
              << "\": ";
          const double value = event.args[static_cast<size_t>(a)].second;
          if (std::isfinite(value)) {
            out << value;
          } else {
            out << "null";
          }
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << (first ? "" : "\n") << "],\n";
  out << "\"displayTimeUnit\": \"ms\",\n";
  out << "\"otherData\": {\"ppn_dropped_events\": " << dropped
      << ", \"ppn_epoch_unix_us\": " << Anchor().unix_us << "}\n}\n";
  return out.str();
}

bool WriteTraceJson(const std::string& path) {
  AtomicFileWriter writer(path);
  if (!writer.ok()) return false;
  writer.stream() << TraceToJson();
  return writer.Commit();
}

bool WriteTraceIfRequested() {
  const std::string path = env::StringOr("PPN_TRACE_JSON", "");
  if (path.empty()) return false;
  return WriteTraceJson(path);
}

void ResetTrace() {
  TraceRegistry& registry = GlobalTraceRegistry();
  std::vector<TraceBuffer*> buffers;
  {
    std::unique_lock<std::mutex> lock(registry.mutex);
    buffers = registry.buffers;
  }
  for (TraceBuffer* buffer : buffers) {
    buffer->count.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

#else  // PPN_OBS_DISABLED: keep the link surface, do nothing.

bool SetTraceEnabled(bool) { return false; }

uint64_t BeginFlow(const char*) { return 0; }

void EndFlow(uint64_t, const char*) {}

int64_t TraceDroppedEvents() { return 0; }

std::string TraceToJson() {
  return "{\n\"traceEvents\": [],\n\"displayTimeUnit\": \"ms\",\n"
         "\"otherData\": {\"ppn_dropped_events\": 0, "
         "\"ppn_epoch_unix_us\": 0}\n}\n";
}

bool WriteTraceJson(const std::string& path) {
  AtomicFileWriter writer(path);
  if (!writer.ok()) return false;
  writer.stream() << TraceToJson();
  return writer.Commit();
}

bool WriteTraceIfRequested() { return false; }

void ResetTrace() {}

#endif  // PPN_OBS_DISABLED

}  // namespace ppn::obs
