#include "obs/health.h"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/parse.h"

namespace ppn::obs {

namespace {

// Histogram stat suffixes a metric name may carry. An exact counter or
// gauge match takes precedence, so a counter literally named "...count"
// still resolves as itself.
struct StatSuffix {
  const char* suffix;
  double (*extract)(const HistogramSnapshot&);
};

const StatSuffix kStatSuffixes[] = {
    {".count", [](const HistogramSnapshot& h) {
       return static_cast<double>(h.count);
     }},
    {".mean", [](const HistogramSnapshot& h) {
       return h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
     }},
    {".min", [](const HistogramSnapshot& h) { return h.min; }},
    {".max", [](const HistogramSnapshot& h) { return h.max; }},
    {".p50", [](const HistogramSnapshot& h) { return h.Percentile(0.50); }},
    {".p95", [](const HistogramSnapshot& h) { return h.Percentile(0.95); }},
    {".p99", [](const HistogramSnapshot& h) { return h.Percentile(0.99); }},
};

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Compare(double value, HealthOp op, double threshold) {
  switch (op) {
    case HealthOp::kLt: return value < threshold;
    case HealthOp::kLe: return value <= threshold;
    case HealthOp::kGt: return value > threshold;
    case HealthOp::kGe: return value >= threshold;
    case HealthOp::kEq: return value == threshold;
    case HealthOp::kNe: return value != threshold;
  }
  return false;
}

/// Parses a threshold like "5ms" / "120us" / "0.25s" / "3": a strict
/// double with an optional time-unit suffix converted to seconds.
bool ParseThreshold(const std::string& text, double* out) {
  std::string number = text;
  double scale = 1.0;
  if (EndsWith(text, "ms")) {
    number = text.substr(0, text.size() - 2);
    scale = 1e-3;
  } else if (EndsWith(text, "us")) {
    number = text.substr(0, text.size() - 2);
    scale = 1e-6;
  } else if (EndsWith(text, "s") && text.size() > 1) {
    // Bare "s" is not a number; require digits before the suffix.
    number = text.substr(0, text.size() - 1);
    scale = 1.0;
  }
  std::optional<double> parsed = ParseDouble(number);
  if (!parsed.has_value()) return false;
  *out = *parsed * scale;
  return true;
}

bool ParseOneRule(const std::string& text, HealthRule* rule,
                  std::string* error) {
  // Two-character operators must be probed before their one-character
  // prefixes, or "<=" would parse as "<" with threshold "=...".
  struct OpSpelling {
    const char* text;
    HealthOp op;
  };
  static const OpSpelling kOps[] = {
      {"<=", HealthOp::kLe}, {">=", HealthOp::kGe}, {"==", HealthOp::kEq},
      {"!=", HealthOp::kNe}, {"<", HealthOp::kLt},  {">", HealthOp::kGt},
  };
  for (const OpSpelling& spelling : kOps) {
    size_t pos = text.find(spelling.text);
    if (pos == std::string::npos) continue;
    rule->metric = Trim(text.substr(0, pos));
    rule->op = spelling.op;
    rule->raw = text;
    std::string threshold_text =
        Trim(text.substr(pos + std::string(spelling.text).size()));
    if (rule->metric.empty()) {
      if (error != nullptr) *error = "health rule has empty metric: " + text;
      return false;
    }
    if (!ParseThreshold(threshold_text, &rule->threshold)) {
      if (error != nullptr) {
        *error = "health rule has malformed threshold \"" + threshold_text +
                 "\" (want a number with optional s/ms/us suffix): " + text;
      }
      return false;
    }
    return true;
  }
  if (error != nullptr) {
    *error = "health rule has no comparison operator (< <= > >= == !=): " +
             text;
  }
  return false;
}

}  // namespace

std::string HealthOpName(HealthOp op) {
  switch (op) {
    case HealthOp::kLt: return "<";
    case HealthOp::kLe: return "<=";
    case HealthOp::kGt: return ">";
    case HealthOp::kGe: return ">=";
    case HealthOp::kEq: return "==";
    case HealthOp::kNe: return "!=";
  }
  return "?";
}

bool ParseHealthRules(const std::string& text, std::vector<HealthRule>* out,
                      std::string* error) {
  out->clear();
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    std::string piece = Trim(text.substr(begin, end - begin));
    if (!piece.empty()) {
      HealthRule rule;
      if (!ParseOneRule(piece, &rule, error)) return false;
      out->push_back(std::move(rule));
    }
    begin = end + 1;
  }
  return true;
}

std::vector<HealthRule> HealthRulesFromEnv() {
  std::string text = env::StringOr("PPN_HEALTH", "");
  std::vector<HealthRule> rules;
  std::string error;
  PPN_CHECK(ParseHealthRules(text, &rules, &error))
      << "PPN_HEALTH: " << error;
  return rules;
}

bool ResolveHealthMetric(const Snapshot& snapshot, const std::string& metric,
                         double* value) {
  auto counter = snapshot.counters.find(metric);
  if (counter != snapshot.counters.end()) {
    *value = counter->second;
    return true;
  }
  auto gauge = snapshot.gauges.find(metric);
  if (gauge != snapshot.gauges.end()) {
    *value = gauge->second;
    return true;
  }
  for (const StatSuffix& stat : kStatSuffixes) {
    std::string suffix = stat.suffix;
    if (!EndsWith(metric, suffix) || metric.size() == suffix.size()) continue;
    std::string base = metric.substr(0, metric.size() - suffix.size());
    auto hist = snapshot.histograms.find(base);
    // A stat suffix marks the rule as a histogram rule: an absent or
    // empty histogram is "no data yet" and must be SKIPPED — a latency
    // bound must never pass (or fail) against a defaulted 0.
    if (hist == snapshot.histograms.end() || hist->second.count <= 0) {
      return false;
    }
    *value = stat.extract(hist->second);
    return true;
  }
  // Plain names default to 0: a counter that was never bumped — the
  // common shape of "== 0" invariants — should PASS, not skip.
  *value = 0.0;
  return true;
}

HealthMonitor::HealthMonitor(std::vector<HealthRule> rules)
    : rules_(std::move(rules)), tallies_(rules_.size()) {}

std::vector<HealthEval> HealthMonitor::Evaluate(const Snapshot& snapshot) {
  std::vector<HealthEval> evals(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    HealthEval& eval = evals[i];
    eval.rule = &rules_[i];
    eval.evaluated = ResolveHealthMetric(snapshot, rules_[i].metric,
                                         &eval.value);
    if (!eval.evaluated) continue;
    eval.ok = Compare(eval.value, rules_[i].op, rules_[i].threshold);
    RuleTally& tally = tallies_[i];
    ++tally.evaluations;
    if (!eval.ok) ++tally.violations;
    tally.last_value = eval.value;
    tally.value_seen = true;
  }
  return evals;
}

bool HealthMonitor::ok() const {
  for (const RuleTally& tally : tallies_) {
    if (tally.violations > 0) return false;
  }
  return true;
}

std::string HealthMonitor::Summary(bool color) const {
  const char* red = color ? "\x1b[31m" : "";
  const char* green = color ? "\x1b[32m" : "";
  const char* reset = color ? "\x1b[0m" : "";
  std::string out;
  char line[512];
  for (size_t i = 0; i < rules_.size(); ++i) {
    const HealthRule& rule = rules_[i];
    const RuleTally& tally = tallies_[i];
    if (tally.evaluations == 0) {
      std::snprintf(line, sizeof(line), "[health] SKIP %s (no data)\n",
                    rule.raw.c_str());
    } else if (tally.violations == 0) {
      std::snprintf(line, sizeof(line),
                    "[health] %sPASS%s %s (last value %.6g, %lld windows)\n",
                    green, reset, rule.raw.c_str(), tally.last_value,
                    static_cast<long long>(tally.evaluations));
    } else {
      std::snprintf(
          line, sizeof(line),
          "[health] %sFAIL%s %s (last value %.6g, violated %lld/%lld "
          "windows)\n",
          red, reset, rule.raw.c_str(), tally.last_value,
          static_cast<long long>(tally.violations),
          static_cast<long long>(tally.evaluations));
    }
    out += line;
  }
  bool failed = !ok();
  std::snprintf(line, sizeof(line), "%sPPN_HEALTH: %s%s\n",
                failed ? red : green, failed ? "FAIL" : "PASS", reset);
  out += line;
  return out;
}

int ReportHealthIfRequested() {
  std::vector<HealthRule> rules = HealthRulesFromEnv();
  if (rules.empty()) return 0;
  HealthMonitor monitor(std::move(rules));
  monitor.Evaluate(TakeSnapshot());
  bool color = ::isatty(2) != 0;
  std::fputs(monitor.Summary(color).c_str(), stderr);
  return monitor.ok() ? 0 : 1;
}

}  // namespace ppn::obs
