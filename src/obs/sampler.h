#ifndef PPN_OBS_SAMPLER_H_
#define PPN_OBS_SAMPLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/stats.h"

/// \file
/// Periodic time-series sampling of the obs registry: a background thread
/// snapshots every `PPN_SAMPLE_MS` milliseconds and appends one JSON line
/// per window to an append-only `ppn.stats.v1` stream, giving every
/// long-running process (trainers, `ppn_cli serve`, fabric workers,
/// benches) a live, tailable view instead of one end-of-run aggregate.
///
/// ## Stream format (`ppn.stats.v1`)
///
/// Line 1 is a header object; every subsequent line is one sample window:
///
///   {"schema": "ppn.stats.v1", "process": "serve", "sample_ms": 250,
///    "start_unix_ms": 1754650000123}
///   {"t_ms": 250.1, "window_ms": 250.1,
///    "counters": {"serve.decisions": 1210},
///    "gauges": {"serve.queue.depth": 32},
///    "hists": {"serve.decide.latency.seconds":
///              {"count": 1210, "mean": 0.0011, "min": 0.0002,
///               "max": 0.004, "p50": 0.0009, "p95": 0.002, "p99": 0.003}},
///    "health": [{"rule": "...p99<5ms", "ok": true, "value": 0.003}]}
///
///   - `t_ms` is MONOTONIC (steady-clock milliseconds since sampler
///     start); `start_unix_ms` in the header anchors it to wall time so
///     the fabric coordinator can merge-sort worker streams.
///   - `counters` holds per-window DELTAS (zero deltas omitted);
///     `gauges` holds the current high-watermark values; `hists` holds
///     per-window distributions (bucket-wise snapshot deltas — a rolling
///     p99, not the cumulative one). Empty sections are omitted;
///     a window with no activity still emits `{"t_ms": ..}` so liveness
///     is observable.
///   - `health` appears when `PPN_HEALTH` rules are configured,
///     evaluated against the WINDOW view (so a latency rule reads the
///     rolling percentile). Violations also tally into the monitor
///     consumed by the end-of-run summary.
///   - Doubles print as `%.17g`, so a parse→reprint round trip through
///     `common/json` is bit-exact.
///
/// Each line is committed with a single `write(2)` on an append-only fd,
/// so concurrent tailers never observe a torn line (except a benign
/// trailing partial while a write is in flight). Formatting happens on
/// the sampling thread; a bounded queue + dedicated writer thread (the
/// `RunLog` backpressure design) keeps a stalled disk from delaying
/// sampling until the queue fills.
///
/// The sampler only OBSERVES: it never feeds values back into
/// computation, so result paths stay bit-identical with sampling on or
/// off. Under -DPPN_OBS_COMPILED=OFF, `Start` returns null and the whole
/// implementation compiles out; the stream readers below stay available
/// (they only need `common/json`).

namespace ppn::obs {

struct SamplerOptions {
  std::string path;          ///< Stream path; empty disables.
  std::string process;       ///< `process` field; derived from path if "".
  int64_t sample_ms = 0;     ///< Window length; <= 0 reads PPN_SAMPLE_MS.
  std::vector<HealthRule> health;  ///< Rules evaluated per window.
};

class StatsSampler {
 public:
  /// Starts sampling. Returns null when obs is disabled (runtime or
  /// compile-time) or `options.path` is empty. Aborts on a sample_ms < 1
  /// or an unwritable path is reported via `ok()` after Stop.
  static std::unique_ptr<StatsSampler> Start(const SamplerOptions& options);

  /// Stops with a final window sample (so even sub-window runs emit at
  /// least one line), drains the queue, and closes the stream. Returns
  /// false if any write failed. Idempotent; the destructor calls it.
  bool Stop();

  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  /// True while every configured health rule has held in every window
  /// sampled so far (vacuously true without rules).
  bool healthy() const;

  /// Cumulative PASS/FAIL summary of the per-window health verdicts.
  std::string HealthSummary(bool color) const;

  const std::string& path() const { return path_; }

 private:
  struct Impl;
  explicit StatsSampler(std::unique_ptr<Impl> impl);

  std::string path_;
  std::unique_ptr<Impl> impl_;
};

/// Honors `PPN_STATS_JSONL` / `PPN_SAMPLE_MS` / `PPN_HEALTH`: starts a
/// sampler streaming to `$PPN_STATS_JSONL` (null when unset/empty or obs
/// is off). `process` labels the stream; when the path's basename looks
/// like `<name>.stats.jsonl` that name wins (fabric workers get their
/// slot/generation identity from their redirected path).
std::unique_ptr<StatsSampler> StartSamplerFromEnv(const std::string& process);

// ---------------------------------------------------------------------------
// Stream readers (always compiled; used by `ppn_cli top` and the fabric
// coordinator's stream merge).

/// Reader-side view of one histogram window (the stream stores derived
/// stats, not buckets).
struct StatsHistWindow {
  int64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One parsed sample line.
struct StatsSample {
  double t_ms = 0.0;
  double window_ms = 0.0;
  std::map<std::string, double> counters;  ///< Window deltas.
  std::map<std::string, double> gauges;
  std::map<std::string, StatsHistWindow> hists;
  int health_checked = 0;
  int health_failed = 0;
};

/// One parsed stream: header + samples.
struct StatsStream {
  std::string process;
  int64_t sample_ms = 0;
  int64_t start_unix_ms = 0;
  std::vector<StatsSample> samples;
};

/// Parses a `ppn.stats.v1` file. False (with `*error`) when the file is
/// unreadable or the header is not a ppn.stats.v1 object; individual
/// malformed sample lines are skipped, not fatal.
bool ReadStatsStream(const std::string& path, StatsStream* out,
                     std::string* error = nullptr);

/// Merges several streams into one: every sample line is re-emitted with
/// `"process"` and a wall-clock `"t_unix_ms"` sort key stamped in front
/// of its original (byte-identical) payload, merge-sorted by that global
/// time. Inputs that fail to parse are skipped (counted in `*skipped`);
/// false only when the output cannot be written.
bool MergeStatsStreams(const std::vector<std::string>& inputs,
                       const std::string& out_path, std::string* error,
                       int* skipped = nullptr);

}  // namespace ppn::obs

#endif  // PPN_OBS_SAMPLER_H_
