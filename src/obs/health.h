#ifndef PPN_OBS_HEALTH_H_
#define PPN_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats.h"

/// \file
/// Declarative SLO health rules over the obs registry: `PPN_HEALTH` names
/// a comma-separated list of threshold rules like
///
///   PPN_HEALTH=serve.decide.latency.seconds.p99<5ms,
///              exec.cells.ckpt_write_failed==0,
///              backtest.solver.nonconverged==0
///
/// Each rule compares one METRIC against one THRESHOLD:
///
///   metric    a counter or gauge name from the registry, or a histogram
///             name suffixed with `.p50` / `.p95` / `.p99` / `.mean` /
///             `.min` / `.max` / `.count`. A plain name absent from the
///             snapshot resolves to 0 (counters start at zero); a
///             histogram stat with no observations is SKIPPED for that
///             evaluation (no data is not a violation).
///   op        one of  <  <=  >  >=  ==  !=
///   threshold a double, optionally suffixed with a time unit: `s`, `ms`,
///             or `us` (converted to seconds — the unit every obs timer
///             records in).
///
/// Rules are evaluated in two places: per sample window by the periodic
/// `obs::StatsSampler` (each window's verdicts are appended as a
/// structured `health` field on the `ppn.stats.v1` sample line), and once
/// at process exit by `ReportHealthIfRequested`, which prints a loud
/// PASS/FAIL summary and makes the caller's exit status nonzero on FAIL
/// (`ppn_cli` and `run_benches.sh` both consume it).
///
/// Like the rest of the reader-side tooling (report.h, trace_merge.h),
/// rule parsing and evaluation never compile out: under
/// -DPPN_OBS_COMPILED=OFF the snapshot is simply empty, so counter rules
/// compare against 0 and histogram rules skip.

namespace ppn::obs {

enum class HealthOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// One parsed rule: `metric op threshold`.
struct HealthRule {
  std::string metric;
  HealthOp op = HealthOp::kLt;
  double threshold = 0.0;
  std::string raw;  ///< Original rule text, for messages.
};

/// Renders the operator back to its source spelling.
std::string HealthOpName(HealthOp op);

/// Parses a comma-separated rule list. Returns false (with a message
/// naming the offending rule in `*error`, when non-null) on the first
/// malformed rule: missing operator, empty metric, or a threshold that is
/// not a number with an optional s/ms/us suffix. An empty `text` parses
/// to an empty rule list.
bool ParseHealthRules(const std::string& text, std::vector<HealthRule>* out,
                      std::string* error = nullptr);

/// Reads and parses `PPN_HEALTH`. Unset/empty yields no rules; a
/// malformed value ABORTS naming the variable and the bad rule (the same
/// strict-parse contract as the numeric env knobs).
std::vector<HealthRule> HealthRulesFromEnv();

/// Verdict of one rule against one snapshot.
struct HealthEval {
  const HealthRule* rule = nullptr;
  bool evaluated = false;  ///< False when the metric had no data (skip).
  bool ok = true;          ///< Meaningful only when `evaluated`.
  double value = 0.0;      ///< The resolved metric value when `evaluated`.
};

/// Resolves `metric` against a snapshot (see the file comment for the
/// naming scheme). Returns false when the metric names a histogram stat
/// with no observations; plain names always resolve (absent = 0).
bool ResolveHealthMetric(const Snapshot& snapshot, const std::string& metric,
                         double* value);

/// Stateful evaluator: every `Evaluate` call checks all rules against the
/// given snapshot and folds the verdicts into cumulative per-rule
/// tallies, so the end-of-run summary can say "violated in 3/120
/// windows" rather than only reporting the final state.
class HealthMonitor {
 public:
  explicit HealthMonitor(std::vector<HealthRule> rules);

  /// Evaluates every rule against `snapshot`; returns this round's
  /// verdicts (in rule order) and updates the cumulative tallies.
  std::vector<HealthEval> Evaluate(const Snapshot& snapshot);

  const std::vector<HealthRule>& rules() const { return rules_; }
  bool has_rules() const { return !rules_.empty(); }

  /// True while no rule has ever been violated.
  bool ok() const;

  /// Multi-line PASS/FAIL summary of the cumulative tallies. With
  /// `color`, FAIL lines are wrapped in ANSI red.
  std::string Summary(bool color) const;

 private:
  struct RuleTally {
    int64_t evaluations = 0;
    int64_t violations = 0;
    double last_value = 0.0;
    bool value_seen = false;
  };

  std::vector<HealthRule> rules_;
  std::vector<RuleTally> tallies_;
};

/// End-of-run gate: parses `PPN_HEALTH`, evaluates the rules once against
/// the current merged snapshot, and prints the PASS/FAIL summary to
/// stderr (red when stderr is a TTY; the FAIL line always carries the
/// grep-stable token `PPN_HEALTH: FAIL`). Returns 0 when no rules are
/// configured or all pass, 1 when any rule is violated — callers fold
/// this into their exit status.
int ReportHealthIfRequested();

}  // namespace ppn::obs

#endif  // PPN_OBS_HEALTH_H_
