#include "obs/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/check.h"
#include "common/env.h"

namespace ppn::obs {

namespace internal {

std::atomic<bool>& EnabledFlag() {
  // First use decides the default from the environment: an explicit
  // telemetry destination (profile, trace, or run-log) or PPN_OBS != "0"
  // turns instrumentation on.
  static std::atomic<bool> flag{[] {
    for (const char* var : {"PPN_PROFILE_JSON", "PPN_TRACE_JSON",
                            "PPN_RUNLOG_DIR", "PPN_STATS_JSONL"}) {
      if (env::HasValue(var)) return true;
    }
    return env::FlagSet("PPN_OBS");
  }()};
  return flag;
}

}  // namespace internal

bool SetEnabled(bool enabled) {
  return internal::EnabledFlag().exchange(enabled);
}

// ---------------------------------------------------------------------------
// Metric cells.

namespace {

/// Relaxed-atomic max update (CAS loop; uncontended in practice since
/// only the owning thread writes).
void AtomicMax(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value < current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::UpdateMax(double value) {
  AtomicMax(&value_, value);
  touched_.store(true, std::memory_order_relaxed);
}

void Gauge::Reset() {
  value_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
  touched_.store(false, std::memory_order_relaxed);
}

/// Private accessors for the merge (kept out of the public surface).
struct GaugeAccess {
  static bool Touched(const Gauge& gauge) {
    return gauge.touched_.load(std::memory_order_relaxed);
  }
};

double HistogramBucketUpperBound(int index) {
  PPN_CHECK(index >= 0 && index < kHistogramBuckets);
  return std::ldexp(1.0, index - 30);
}

namespace {

int BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // Non-positive and NaN clamp low.
  const int index = static_cast<int>(std::floor(std::log2(value))) + 31;
  if (index < 0) return 0;
  if (index >= kHistogramBuckets) return kHistogramBuckets - 1;
  return index;
}

}  // namespace

void Histogram::Observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

struct HistogramAccess {
  static void MergeInto(const Histogram& histogram,
                        HistogramSnapshot* merged) {
    const int64_t count = histogram.count_.load(std::memory_order_relaxed);
    if (count == 0) return;
    const double min = histogram.min_.load(std::memory_order_relaxed);
    const double max = histogram.max_.load(std::memory_order_relaxed);
    if (merged->count == 0) {
      merged->min = min;
      merged->max = max;
    } else {
      merged->min = std::min(merged->min, min);
      merged->max = std::max(merged->max, max);
    }
    merged->count += count;
    merged->sum += histogram.sum_.load(std::memory_order_relaxed);
    for (int i = 0; i < kHistogramBuckets; ++i) {
      merged->buckets[i] +=
          histogram.buckets_[i].load(std::memory_order_relaxed);
    }
  }
};

double HistogramSnapshot::Percentile(double q) const {
  // Explicit empty case: no observations, every quantile is 0.
  if (count <= 0) return 0.0;
  // `!(q > 0)` also catches NaN, which would otherwise poison the rank
  // comparison below and skip every bucket.
  if (!(q > 0.0)) return min;
  if (q >= 1.0) return max;
  // The result is monotone in q by construction: a larger q gives a
  // larger rank, which lands in the same or a later bucket, and within a
  // bucket the interpolated fraction grows with rank. The final clamp
  // into the fixed interval [min, max] preserves that ordering, so
  // p50 <= p95 <= p99 holds for every bucket shape.
  const double rank = q * static_cast<double>(count);
  double value = max;  // Rank past the last bucket (or empty buckets
                       // despite count > 0): degrade to the watermark.
  double cumulative = 0.0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] <= 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= rank) {
      const double hi = HistogramBucketUpperBound(i);
      const double lo = hi * 0.5;
      const double fraction =
          (rank - cumulative) / static_cast<double>(buckets[i]);
      value = lo + fraction * (hi - lo);
      break;
    }
    cumulative = next;
  }
  // Clamp into the observed range — but only when the watermarks are
  // coherent; a hand-built snapshot with min > max must not turn every
  // quantile into the crossed bounds.
  if (min <= max) value = std::min(std::max(value, min), max);
  return value;
}

TraceRing::TraceRing(std::array<std::string, 4> fields, int64_t capacity)
    : fields_(std::move(fields)), capacity_(capacity) {
  PPN_CHECK_GT(capacity, 0);
  ring_.resize(static_cast<size_t>(capacity));
}

void TraceRing::Append(int64_t step, double v0, double v1, double v2,
                       double v3) {
  std::unique_lock<std::mutex> lock(mutex_);
  ring_[static_cast<size_t>(next_)] = TracePoint{step, {v0, v1, v2, v3}};
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TracePoint> TraceRing::Points() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<TracePoint> points;
  const int64_t kept = std::min(total_, capacity_);
  points.reserve(static_cast<size_t>(kept));
  // Oldest-first: when the ring has wrapped, the oldest entry sits at
  // `next_`; before wrapping, at 0.
  const int64_t start = total_ < capacity_ ? 0 : next_;
  for (int64_t i = 0; i < kept; ++i) {
    points.push_back(ring_[static_cast<size_t>((start + i) % capacity_)]);
  }
  return points;
}

int64_t TraceRing::total_appended() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return total_;
}

void TraceRing::Reset() {
  std::unique_lock<std::mutex> lock(mutex_);
  next_ = 0;
  total_ = 0;
}

// ---------------------------------------------------------------------------
// Shards and registry.

namespace {

/// One thread's private metric store. The owning thread is the only
/// mutator; `mutex` guards the MAP STRUCTURE (owner inserts vs. merge
/// iteration) — value updates go through the cells' own atomics.
struct Shard {
  std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  std::unordered_map<std::string, std::unique_ptr<TraceRing>> traces;
};

struct Registry {
  std::mutex mutex;
  // Shards are heap-allocated and never destroyed: a pool worker's stats
  // must survive the worker's join so report-time merges still see them.
  std::vector<Shard*> shards;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

Shard& LocalShard() {
  thread_local Shard* shard = [] {
    auto* created = new Shard();
    Registry& registry = GlobalRegistry();
    std::unique_lock<std::mutex> lock(registry.mutex);
    registry.shards.push_back(created);
    return created;
  }();
  return *shard;
}

/// Find-or-create in the local shard. Lookup is lock-free (only the
/// owner mutates the map); insertion of a NEW name takes the shard lock
/// to stay ordered with report-time iteration.
template <typename Cell, typename MapType, typename... MakeArgs>
Cell& FindOrCreate(MapType Shard::* map, std::string_view name,
                   MakeArgs&&... make_args) {
  Shard& shard = LocalShard();
  auto& cells = shard.*map;
  const auto it = cells.find(std::string(name));
  if (it != cells.end()) return *it->second;
  std::unique_lock<std::mutex> lock(shard.mutex);
  auto [inserted, unused] = cells.emplace(
      std::string(name),
      std::make_unique<Cell>(std::forward<MakeArgs>(make_args)...));
  return *inserted->second;
}

}  // namespace

Counter& GetCounter(std::string_view name) {
  return FindOrCreate<Counter>(&Shard::counters, name);
}

Gauge& GetGauge(std::string_view name) {
  return FindOrCreate<Gauge>(&Shard::gauges, name);
}

Histogram& GetHistogram(std::string_view name) {
  return FindOrCreate<Histogram>(&Shard::histograms, name);
}

TraceRing& GetTraceRing(std::string_view name,
                        const std::array<std::string, 4>& fields,
                        int64_t capacity) {
  return FindOrCreate<TraceRing>(&Shard::traces, name, fields, capacity);
}

ScopedTimer::ScopedTimer(std::string_view name) {
  if (!Enabled()) return;
  histogram_ = &GetHistogram(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::ScopedTimer(Histogram* histogram) {
  if (!Enabled() || histogram == nullptr) return;
  histogram_ = histogram;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  histogram_->Observe(seconds);
}

Snapshot TakeSnapshot() {
  Snapshot snapshot;
  Registry& registry = GlobalRegistry();
  std::vector<Shard*> shards;
  {
    std::unique_lock<std::mutex> lock(registry.mutex);
    shards = registry.shards;
  }
  for (Shard* shard : shards) {
    std::unique_lock<std::mutex> lock(shard->mutex);
    for (const auto& [name, counter] : shard->counters) {
      snapshot.counters[name] += counter->value();
    }
    for (const auto& [name, gauge] : shard->gauges) {
      if (!GaugeAccess::Touched(*gauge)) continue;
      const auto it = snapshot.gauges.find(name);
      if (it == snapshot.gauges.end()) {
        snapshot.gauges[name] = gauge->value();
      } else {
        it->second = std::max(it->second, gauge->value());
      }
    }
    for (const auto& [name, histogram] : shard->histograms) {
      HistogramAccess::MergeInto(*histogram,
                                 &snapshot.histograms[name]);
    }
    for (const auto& [name, ring] : shard->traces) {
      TraceSnapshot& merged = snapshot.traces[name];
      if (merged.points.empty() && merged.total_appended == 0) {
        merged.fields = ring->fields();
      }
      merged.total_appended += ring->total_appended();
      const std::vector<TracePoint> points = ring->Points();
      merged.points.insert(merged.points.end(), points.begin(), points.end());
    }
  }
  // Same-named rings on several threads concatenate in shard-registration
  // order, which follows thread start order — not deterministic. Sort by
  // step AND values so equal-step points also land in a fixed order and
  // profile files diff cleanly across runs and worker counts.
  for (auto& [name, trace] : snapshot.traces) {
    std::sort(trace.points.begin(), trace.points.end(),
              [](const TracePoint& a, const TracePoint& b) {
                if (a.step != b.step) return a.step < b.step;
                return a.values < b.values;
              });
  }
  // Drop empty histogram entries (created but never observed).
  for (auto it = snapshot.histograms.begin();
       it != snapshot.histograms.end();) {
    it = it->second.count == 0 ? snapshot.histograms.erase(it) : ++it;
  }
  return snapshot;
}

void ResetAll() {
  Registry& registry = GlobalRegistry();
  std::vector<Shard*> shards;
  {
    std::unique_lock<std::mutex> lock(registry.mutex);
    shards = registry.shards;
  }
  for (Shard* shard : shards) {
    std::unique_lock<std::mutex> lock(shard->mutex);
    for (const auto& [name, counter] : shard->counters) counter->Reset();
    for (const auto& [name, gauge] : shard->gauges) gauge->Reset();
    for (const auto& [name, histogram] : shard->histograms) {
      histogram->Reset();
    }
    for (const auto& [name, ring] : shard->traces) ring->Reset();
  }
}

// ---------------------------------------------------------------------------
// JSON rendering.

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Doubles render round-trippably; infinities (never produced by the
/// merge, but cheap to guard) fall back to null.
void AppendNumber(std::ostringstream* out, double value) {
  if (std::isfinite(value)) {
    (*out) << value;
  } else {
    (*out) << "null";
  }
}

}  // namespace

std::string SnapshotToJson(const Snapshot& snapshot) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": ";
    AppendNumber(&out, value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": ";
    AppendNumber(&out, value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": {\"count\": " << histogram.count << ", \"sum\": ";
    AppendNumber(&out, histogram.sum);
    out << ", \"mean\": ";
    AppendNumber(&out, histogram.count > 0
                           ? histogram.sum / static_cast<double>(
                                                 histogram.count)
                           : 0.0);
    out << ", \"min\": ";
    AppendNumber(&out, histogram.min);
    out << ", \"max\": ";
    AppendNumber(&out, histogram.max);
    out << ", \"p50\": ";
    AppendNumber(&out, histogram.Percentile(0.50));
    out << ", \"p95\": ";
    AppendNumber(&out, histogram.Percentile(0.95));
    out << ", \"p99\": ";
    AppendNumber(&out, histogram.Percentile(0.99));
    out << ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (histogram.buckets[i] == 0) continue;
      if (!first_bucket) out << ", ";
      out << "{\"le\": ";
      AppendNumber(&out, HistogramBucketUpperBound(i));
      out << ", \"count\": " << histogram.buckets[i] << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"traces\": {";
  first = true;
  for (const auto& [name, trace] : snapshot.traces) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": {\"total_appended\": " << trace.total_appended
        << ", \"points\": [";
    for (size_t i = 0; i < trace.points.size(); ++i) {
      const TracePoint& point = trace.points[i];
      out << (i == 0 ? "" : ", ") << "{\"step\": " << point.step;
      for (size_t f = 0; f < trace.fields.size(); ++f) {
        if (trace.fields[f].empty()) continue;
        out << ", \"" << JsonEscape(trace.fields[f]) << "\": ";
        AppendNumber(&out, point.values[f]);
      }
      out << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool WriteProfileJson(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << SnapshotToJson(TakeSnapshot());
  return out.good();
}

bool WriteProfileIfRequested() {
  const std::string path = env::StringOr("PPN_PROFILE_JSON", "");
  if (path.empty()) return false;
  return WriteProfileJson(path);
}

}  // namespace ppn::obs
