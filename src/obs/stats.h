#ifndef PPN_OBS_STATS_H_
#define PPN_OBS_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Lightweight observability: a process-wide registry of named counters,
/// gauges, histograms, and fixed-size trace rings, accumulated in
/// PER-THREAD SHARDS and merged only at report time.
///
/// Design constraints (in priority order):
///
/// 1. **No locks on hot paths.** Every metric update touches only the
///    calling thread's shard. Counter/gauge/histogram cells are relaxed
///    atomics so a concurrent `TakeSnapshot` reads well-defined values
///    (and the ThreadSanitizer lane stays clean) without any mutex on the
///    update path. The only shard lock is taken when a thread *creates* a
///    metric it has never touched before (amortized away by the
///    `static thread_local` handle idiom below), and by trace rings,
///    whose multi-word entries take a per-ring, owner-only-contended
///    mutex (trace appends are per-training-step, not per-kernel).
/// 2. **Determinism is untouched.** Instrumentation only *observes*
///    values; it never feeds anything back into computation, so the
///    bit-identical worker-count contract of `src/exec` holds with
///    profiling on or off. Snapshot maps are name-ordered, so merged
///    *counter* values are also independent of thread count and
///    scheduling (timings, by nature, are not).
/// 3. **Negligible overhead when off.** Every call site guards on
///    `obs::Enabled()` (one relaxed atomic load; constant-false when the
///    library is compiled with PPN_OBS_DISABLED, letting the compiler
///    drop the whole block).
///
/// Runtime enablement: profiling is ON when the `PPN_PROFILE_JSON` or
/// `PPN_OBS` (≠ "0") environment variables are set, OFF otherwise;
/// `SetEnabled` / `ScopedObsEnable` override at runtime (tests).
///
/// Call-site idiom for hot kernels (one map lookup per thread, ever):
///
///   if (obs::Enabled()) {
///     static thread_local obs::Counter& calls =
///         obs::GetCounter("tensor.matmul.calls");
///     calls.Add(1.0);
///   }

namespace ppn::obs {

namespace internal {
std::atomic<bool>& EnabledFlag();
}  // namespace internal

/// True when instrumentation should record. Constant false when compiled
/// out (-DPPN_OBS_COMPILED=OFF ⇒ PPN_OBS_DISABLED).
inline bool Enabled() {
#ifdef PPN_OBS_DISABLED
  return false;
#else
  return internal::EnabledFlag().load(std::memory_order_relaxed);
#endif
}

/// Sets the runtime flag; returns the previous value. The compile-out
/// build ignores the setting (Enabled() stays false).
bool SetEnabled(bool enabled);

/// RAII enable/disable for tests.
class ScopedObsEnable {
 public:
  explicit ScopedObsEnable(bool enabled = true)
      : previous_(SetEnabled(enabled)) {}
  ~ScopedObsEnable() { SetEnabled(previous_); }

  ScopedObsEnable(const ScopedObsEnable&) = delete;
  ScopedObsEnable& operator=(const ScopedObsEnable&) = delete;

 private:
  bool previous_;
};

/// Monotonic accumulator. Doubles (not integers) so FLOP estimates fit.
/// Merge across shards: sum.
class Counter {
 public:
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// High-watermark gauge: `UpdateMax` keeps the largest value seen since
/// the last reset. Merge across shards: max. (A last-write-wins gauge
/// would make merged output depend on scheduling; a watermark does not.)
class Gauge {
 public:
  void UpdateMax(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<double> value_{-std::numeric_limits<double>::infinity()};
  std::atomic<bool> touched_{false};

  friend struct GaugeAccess;
};

/// Number of log2-spaced histogram buckets. Bucket i covers
/// [2^(i-31), 2^(i-30)) — from ~4.7e-10 up to ~4.3e9, wide enough for
/// nanosecond timers and iteration counts alike; out-of-range values
/// clamp to the end buckets.
inline constexpr int kHistogramBuckets = 64;

/// Upper bound of histogram bucket `index` (exclusive).
double HistogramBucketUpperBound(int index);

/// Log2-bucketed histogram with count/sum/min/max. Merge across shards:
/// elementwise bucket sum, sum of sums, min of mins, max of maxes.
class Histogram {
 public:
  void Observe(double value);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<int64_t>, kHistogramBuckets> buckets_{};

  friend struct HistogramAccess;
};

/// One entry of a trace ring: a step index plus up to four named values
/// (field names live on the ring).
struct TracePoint {
  int64_t step = 0;
  std::array<double, 4> values{};
};

/// Fixed-capacity ring keeping the LAST `capacity` appended points.
/// Unlike the scalar metrics, entries are multi-word, so appends and
/// snapshot reads synchronize on a per-ring mutex (uncontended on the
/// hot path: only the report-time merge ever takes it from another
/// thread).
class TraceRing {
 public:
  TraceRing(std::array<std::string, 4> fields, int64_t capacity);

  void Append(int64_t step, double v0, double v1 = 0.0, double v2 = 0.0,
              double v3 = 0.0);

  /// Points in append order (oldest first), plus total appended count.
  std::vector<TracePoint> Points() const;
  int64_t total_appended() const;
  const std::array<std::string, 4>& fields() const { return fields_; }
  int64_t capacity() const { return capacity_; }

  void Reset();

 private:
  std::array<std::string, 4> fields_;
  int64_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TracePoint> ring_;
  int64_t next_ = 0;   ///< Ring slot the next append writes.
  int64_t total_ = 0;  ///< Appends since construction/reset.
};

/// Finds or creates the named metric in the CALLING THREAD's shard and
/// returns a reference that stays valid for the life of the process
/// (shards are owned by the global registry and survive thread exit, so
/// the merged report still sees work done by joined pool workers).
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);
TraceRing& GetTraceRing(std::string_view name,
                        const std::array<std::string, 4>& fields,
                        int64_t capacity = 512);

/// RAII wall-clock span: records elapsed seconds into the named
/// histogram at destruction. Inert when profiling is disabled at
/// construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name);
  explicit ScopedTimer(Histogram* histogram);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;  ///< Null when inert.
  std::chrono::steady_clock::time_point start_;
};

/// Merged view of one histogram.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  /// Percentile estimate for quantile `q` in [0, 1]: finds the log2
  /// bucket containing rank q·count, interpolates linearly inside it,
  /// and clamps to the observed [min, max] (so p0 = min, p100 = max and
  /// single-value histograms report that value at every quantile).
  /// Resolution is bounded by the 2× bucket width. Returns 0 when empty.
  double Percentile(double q) const;
};

/// Merged view of one trace (same-named rings concatenate, sorted by
/// step for thread-count independence).
struct TraceSnapshot {
  std::array<std::string, 4> fields;
  int64_t total_appended = 0;
  std::vector<TracePoint> points;
};

/// Name-ordered merge of every shard (locks each shard briefly; call at
/// report time, not from hot paths).
struct Snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, TraceSnapshot> traces;
};

Snapshot TakeSnapshot();

/// Zeroes every metric in every shard (handles stay valid). Callers must
/// be quiescent (no concurrent updates); intended for tests.
void ResetAll();

/// Renders a snapshot as pretty-printed JSON (stable: name-ordered maps,
/// only non-empty histogram buckets).
std::string SnapshotToJson(const Snapshot& snapshot);

/// Takes a snapshot and writes it to `path`; false if the file cannot be
/// written.
bool WriteProfileJson(const std::string& path);

/// Honors `PPN_PROFILE_JSON=<path>`: writes the merged profile there and
/// returns true on success. No-op (returns false) when the variable is
/// unset or empty. Called by `bench::BenchContext` at destruction and by
/// `ppn_cli` before exit.
bool WriteProfileIfRequested();

}  // namespace ppn::obs

#endif  // PPN_OBS_STATS_H_
