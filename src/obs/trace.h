#ifndef PPN_OBS_TRACE_H_
#define PPN_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "obs/stats.h"

/// \file
/// Span-level timeline tracing: RAII `obs::Span` scopes record Chrome
/// trace-event "complete" slices (name, thread, wall-clock start,
/// duration, numeric args) into PER-THREAD buffers, and
/// `BeginFlow`/`EndFlow` record cross-thread flow arrows — stitched
/// through `exec::ThreadPool` task submission so a Perfetto timeline
/// shows which submit produced which worker slice.
///
/// Design constraints, in the same priority order as stats.h:
///
/// 1. **No locks, no allocation on the hot path.** A thread appends into
///    its own preallocated buffer; the only synchronization is a
///    release-store of the event count (so an export from another thread
///    reads fully-constructed events and the TSAN lane stays clean). A
///    full buffer drops further events (counted) instead of growing.
/// 2. **Determinism is untouched.** Tracing only reads clocks and copies
///    values; it feeds nothing back.
/// 3. **Inert when off.** `Span` construction is one branch when tracing
///    is disabled, and the whole layer compiles out with the rest of
///    `src/obs` under -DPPN_OBS_COMPILED=OFF.
///
/// Runtime enablement: tracing is ON when profiling is on (`Enabled()`)
/// AND a trace sink is armed — `PPN_TRACE_JSON=<path>` at startup, or
/// `SetTraceEnabled(true)` from tests. `WriteTraceIfRequested()` (called
/// by `ppn_cli` and `bench::BenchContext` on exit) writes the merged
/// Chrome trace-event JSON to the `PPN_TRACE_JSON` path; load it at
/// https://ui.perfetto.dev or chrome://tracing.
///
/// Environment knobs:
///   PPN_TRACE_JSON=<path>   arm tracing + set the export destination
///   PPN_TRACE_CAPACITY=<n>  per-thread event-buffer capacity (default
///                           65536; events beyond it are dropped and
///                           counted in `TraceDroppedEvents()` / the
///                           export's "ppn_dropped_events" metadata)
///   PPN_TRACE_MIN_US=<n>    global floor on recorded span duration, in
///                           microseconds (default 0 = keep everything)

namespace ppn::obs {

#ifndef PPN_OBS_DISABLED
namespace internal {
std::atomic<bool>& TraceFlag();
}  // namespace internal
#endif

/// True when span/flow recording is active right now.
inline bool TraceEnabled() {
#ifdef PPN_OBS_DISABLED
  return false;
#else
  return Enabled() &&
         internal::TraceFlag().load(std::memory_order_relaxed);
#endif
}

/// Arms/disarms the trace sink at runtime (tests); returns the previous
/// value. `Enabled()` must also hold for recording to happen. The
/// compile-out build ignores the setting.
bool SetTraceEnabled(bool enabled);

/// RAII trace arming for tests (enables profiling too, since tracing is
/// gated on both).
class ScopedTraceEnable {
 public:
  explicit ScopedTraceEnable(bool enabled = true)
      : previous_obs_(SetEnabled(enabled)),
        previous_trace_(SetTraceEnabled(enabled)) {}
  ~ScopedTraceEnable() {
    SetTraceEnabled(previous_trace_);
    SetEnabled(previous_obs_);
  }

  ScopedTraceEnable(const ScopedTraceEnable&) = delete;
  ScopedTraceEnable& operator=(const ScopedTraceEnable&) = delete;

 private:
  bool previous_obs_;
  bool previous_trace_;
};

/// Maximum numeric args per span.
inline constexpr int kMaxSpanArgs = 4;

#ifndef PPN_OBS_DISABLED

/// RAII wall-clock slice. Records a Chrome "X" (complete) event into the
/// calling thread's buffer at destruction — begin/end nesting therefore
/// follows C++ scope nesting exactly. Arg KEYS must be string literals
/// (stored by pointer); values are doubles.
///
///   {
///     obs::Span span("trainer.step");
///     span.AddArg("step", static_cast<double>(step));
///     ...
///   }  // recorded here
///
/// `min_duration_us` suppresses recording of spans shorter than the
/// threshold (useful for per-kernel spans that would otherwise flood the
/// buffer); the global PPN_TRACE_MIN_US floor applies on top.
class Span {
 public:
  explicit Span(std::string_view name, double min_duration_us = 0.0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric arg (shown in the trace viewer). `key` must be a
  /// string literal. Silently keeps only the first kMaxSpanArgs args.
  void AddArg(const char* key, double value);

  /// True when this span will record (tracing was on at construction).
  bool active() const { return active_; }

 private:
  bool active_ = false;
  double min_duration_us_ = 0.0;
  double start_us_ = 0.0;
  int num_args_ = 0;
  std::array<std::pair<const char*, double>, kMaxSpanArgs> args_;
  std::string name_;
};

#else  // PPN_OBS_DISABLED: spans compile to nothing.

class Span {
 public:
  explicit Span(std::string_view, double = 0.0) {}
  void AddArg(const char*, double) {}
  bool active() const { return false; }
};

#endif  // PPN_OBS_DISABLED

/// Starts a cross-thread flow arrow named `name` on the CALLING thread
/// and returns its id, or 0 when tracing is off. `name` must be a string
/// literal and the SAME literal must be passed to `EndFlow`.
uint64_t BeginFlow(const char* name);

/// Terminates flow `id` (from `BeginFlow`) on the calling thread; no-op
/// for id 0.
void EndFlow(uint64_t id, const char* name);

/// Number of events dropped because a thread buffer filled up.
int64_t TraceDroppedEvents();

/// Renders every thread's events as Chrome trace-event JSON (an object
/// with a "traceEvents" array, sorted by thread id then timestamp so the
/// file structure is stable).
std::string TraceToJson();

/// Writes `TraceToJson()` to `path` atomically; false if the file cannot
/// be written.
bool WriteTraceJson(const std::string& path);

/// Honors `PPN_TRACE_JSON=<path>`: writes the merged trace there and
/// returns true on success. No-op (returns false) when unset or empty.
bool WriteTraceIfRequested();

/// Clears every thread's event buffer and the drop counter (handles stay
/// valid). Callers must be quiescent; intended for tests.
void ResetTrace();

}  // namespace ppn::obs

#endif  // PPN_OBS_TRACE_H_
