#include "obs/report.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>
#include <string_view>

#include "common/json.h"

namespace ppn::obs {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool ReadRunLog(const std::string& path, ParsedRunLog* out,
                std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) return Fail(error, path + ": cannot open");
  out->records.clear();
  std::string line;
  bool saw_header = false;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    JsonValue value;
    std::string parse_error;
    if (!ParseJson(line, &value, &parse_error)) {
      return Fail(error, path + ":" + std::to_string(line_number) + ": " +
                             parse_error);
    }
    if (!value.is_object()) {
      return Fail(error, path + ":" + std::to_string(line_number) +
                             ": expected an object");
    }
    if (!saw_header) {
      out->schema = value.StringOr("schema", "");
      if (out->schema != "ppn.runlog.v1") {
        return Fail(error, path + ": unsupported schema \"" + out->schema +
                               "\" (want ppn.runlog.v1)");
      }
      out->meta.run_id = value.StringOr("run", "");
      out->meta.strategy = value.StringOr("strategy", "");
      out->meta.dataset = value.StringOr("dataset", "");
      out->meta.gamma = value.NumberOr("gamma", 0.0);
      out->meta.lambda = value.NumberOr("lambda", 0.0);
      out->meta.cost_rate = value.NumberOr("cost_rate", 0.0);
      out->meta.seed = static_cast<int64_t>(value.NumberOr("seed", 0.0));
      out->meta.steps = static_cast<int64_t>(value.NumberOr("steps", 0.0));
      saw_header = true;
      continue;
    }
    RunLogRecord record;
    record.step = static_cast<int64_t>(value.NumberOr("step", 0.0));
    record.reward_total = value.NumberOr("reward_total", 0.0);
    record.reward_log_return = value.NumberOr("reward_log_return", 0.0);
    record.reward_variance = value.NumberOr("reward_variance", 0.0);
    record.reward_turnover = value.NumberOr("reward_turnover", 0.0);
    record.grad_norm = value.NumberOr("grad_norm", 0.0);
    record.pvm_staleness = value.NumberOr("pvm_staleness", 0.0);
    record.solver_iterations = value.NumberOr("solver_iterations", 0.0);
    record.step_seconds = value.NumberOr("step_seconds", 0.0);
    out->records.push_back(record);
  }
  if (!saw_header) return Fail(error, path + ": empty file (no header)");
  return true;
}

RunLogSummary SummarizeRunLog(const ParsedRunLog& log, int64_t window) {
  RunLogSummary summary;
  summary.meta = log.meta;
  summary.steps = static_cast<int64_t>(log.records.size());
  if (log.records.empty()) return summary;
  summary.final_step = log.records.back();

  const int64_t n = summary.steps;
  const int64_t w = std::max<int64_t>(1, std::min(window, n));
  double first_turnover = 0.0;
  double last_turnover = 0.0;
  double last_grad = 0.0;
  for (int64_t i = 0; i < w; ++i) {
    first_turnover += log.records[static_cast<size_t>(i)].reward_turnover;
    const RunLogRecord& tail = log.records[static_cast<size_t>(n - w + i)];
    last_turnover += tail.reward_turnover;
    last_grad += tail.grad_norm;
  }
  summary.turnover_first = first_turnover / static_cast<double>(w);
  summary.turnover_last = last_turnover / static_cast<double>(w);
  summary.grad_norm_last = last_grad / static_cast<double>(w);

  double solver = 0.0;
  double seconds = 0.0;
  for (const RunLogRecord& record : log.records) {
    solver += record.solver_iterations;
    seconds += record.step_seconds;
  }
  summary.solver_iters_mean = solver / static_cast<double>(n);
  summary.step_seconds_total = seconds;
  return summary;
}

std::vector<RunLogSummary> SummarizeRunLogDir(
    const std::string& dir, int64_t window,
    std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".runlog.jsonl";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0) {
      files.push_back(entry.path());
    }
  }
  if (ec && errors != nullptr) {
    errors->push_back(dir + ": " + ec.message());
  }
  std::sort(files.begin(), files.end());
  std::vector<RunLogSummary> summaries;
  for (const fs::path& file : files) {
    ParsedRunLog log;
    std::string error;
    if (!ReadRunLog(file.string(), &log, &error)) {
      if (errors != nullptr) errors->push_back(error);
      continue;
    }
    RunLogSummary summary = SummarizeRunLog(log, window);
    summary.file = file.filename().string();
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

bool SummarizeTrace(const std::string& path, std::vector<SpanStat>* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) return Fail(error, path + ": cannot open");
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(buffer.str(), &root, &parse_error)) {
    return Fail(error, path + ": " + parse_error);
  }
  if (!root.is_object()) return Fail(error, path + ": expected an object");
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail(error, path + ": missing traceEvents array");
  }
  // Aggregate by name; a vector+find keeps first-seen order out of the
  // result (we sort below), and span-name cardinality is tiny.
  std::vector<SpanStat> stats;
  for (const JsonValue& event : events->AsArray()) {
    if (!event.is_object()) continue;
    if (event.StringOr("ph", "") != "X") continue;
    const std::string name = event.StringOr("name", "");
    const double dur = event.NumberOr("dur", 0.0);
    auto it = std::find_if(stats.begin(), stats.end(),
                           [&name](const SpanStat& s) {
                             return s.name == name;
                           });
    if (it == stats.end()) {
      stats.push_back(SpanStat{name, 0, 0.0, 0.0});
      it = std::prev(stats.end());
    }
    ++it->count;
    it->total_us += dur;
    it->max_us = std::max(it->max_us, dur);
  }
  std::sort(stats.begin(), stats.end(),
            [](const SpanStat& a, const SpanStat& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  *out = std::move(stats);
  return true;
}

std::string RenderReport(const std::vector<RunLogSummary>& cells,
                         const std::vector<SpanStat>& spans) {
  std::ostringstream out;
  out << "== run logs (" << cells.size() << " cell"
      << (cells.size() == 1 ? "" : "s") << ") ==\n";
  for (const RunLogSummary& cell : cells) {
    out << "\ncell " << cell.file << "\n";
    out << "  run=" << cell.meta.run_id << " strategy=" << cell.meta.strategy
        << " dataset=" << cell.meta.dataset << " seed=" << cell.meta.seed
        << "\n";
    out << "  gamma=" << cell.meta.gamma << " lambda=" << cell.meta.lambda
        << " cost_rate=" << cell.meta.cost_rate << " steps=" << cell.steps
        << "\n";
    out << std::setprecision(17);
    out << "  final step " << cell.final_step.step
        << ": reward_total=" << cell.final_step.reward_total << "\n";
    out << "    log_return=" << cell.final_step.reward_log_return
        << " variance=" << cell.final_step.reward_variance
        << " turnover=" << cell.final_step.reward_turnover << "\n";
    out << std::setprecision(6);
    out << "  turnover trajectory: first=" << cell.turnover_first
        << " -> last=" << cell.turnover_last << "\n";
    out << "  tail grad_norm=" << cell.grad_norm_last
        << " mean solver_iters=" << cell.solver_iters_mean
        << " train wall=" << cell.step_seconds_total << "s\n";
  }
  if (!spans.empty()) {
    out << "\n== slowest spans ==\n";
    out << "  " << std::left << std::setw(32) << "name" << std::right
        << std::setw(10) << "count" << std::setw(14) << "total_ms"
        << std::setw(14) << "max_ms" << "\n";
    const size_t limit = std::min<size_t>(spans.size(), 20);
    for (size_t i = 0; i < limit; ++i) {
      const SpanStat& span = spans[i];
      out << "  " << std::left << std::setw(32) << span.name << std::right
          << std::setw(10) << span.count << std::setw(14) << std::fixed
          << std::setprecision(3) << span.total_us / 1000.0 << std::setw(14)
          << span.max_us / 1000.0 << "\n";
      out.unsetf(std::ios::fixed);
    }
  }
  return out.str();
}

}  // namespace ppn::obs
