#include "exec/fabric.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/env.h"
#include "common/json.h"
#include "common/parse.h"
#include "obs/sampler.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"

extern char** environ;

namespace ppn::exec {

namespace fs = std::filesystem;

namespace {

constexpr char kTaskMagic[] = "ppnfab1";

// ------------------------------------------------------- file layout ----

std::string ShardDir(const std::string& fabric_dir, int shard) {
  return (fs::path(fabric_dir) / "queue" / ("shard-" + std::to_string(shard)))
      .string();
}

std::string TaskFileName(int64_t index, int attempt) {
  char name[48];
  std::snprintf(name, sizeof(name), "T%lld.a%d.task",
                static_cast<long long>(index), attempt);
  return name;
}

/// True when `name` ends in ".task" — a fully published task file. The
/// claim scan must never touch anything else: an in-flight temp (e.g. a
/// "*.task.tmp" from an atomic writer) renamed away mid-write would make
/// the writer's commit fail and abort the sweep for a phantom reason.
bool HasTaskSuffix(const std::string& name) {
  constexpr char kSuffix[] = ".task";
  constexpr size_t kLen = sizeof(kSuffix) - 1;
  return name.size() > kLen &&
         name.compare(name.size() - kLen, kLen, kSuffix) == 0;
}

/// Parses "T<index>.a<attempt>" from the front of a queue/claim/fail file
/// name. False when the name is not ours (e.g. editor droppings).
bool ParseIndexAttempt(const std::string& name, int64_t* index,
                       int* attempt) {
  long long idx = 0;
  int att = 0;
  if (std::sscanf(name.c_str(), "T%lld.a%d.", &idx, &att) != 2) return false;
  *index = idx;
  *attempt = att;
  return true;
}

std::string ClaimFileName(int64_t index, int attempt, int slot, int gen) {
  char name[80];
  std::snprintf(name, sizeof(name), "T%lld.a%d.s%d.g%d.claim",
                static_cast<long long>(index), attempt, slot, gen);
  return name;
}

std::string FailFileName(int64_t index, int attempt, int slot, int gen) {
  char name[80];
  std::snprintf(name, sizeof(name), "T%lld.a%d.s%d.g%d.fail",
                static_cast<long long>(index), attempt, slot, gen);
  return name;
}

/// Parses the owner out of "T<i>.a<k>.s<slot>.g<gen>.claim" (or ".fail").
bool ParseClaimOwner(const std::string& name, int64_t* index, int* attempt,
                     int* slot, int* gen) {
  long long idx = 0;
  if (std::sscanf(name.c_str(), "T%lld.a%d.s%d.g%d.", &idx, attempt, slot,
                  gen) != 4) {
    return false;
  }
  *index = idx;
  return true;
}

std::string DoneFileName(int64_t index) {
  return "T" + std::to_string(index) + ".done";
}

std::string TaskContent(const PlannedCell& cell) {
  char line[64];
  std::snprintf(line, sizeof(line), "%s %lld %016llx\n", kTaskMagic,
                static_cast<long long>(cell.index),
                static_cast<unsigned long long>(cell.derived_seed));
  return line;
}

bool ParseTaskContent(const std::string& content, int64_t* index,
                      uint64_t* seed) {
  char magic[16] = {0};
  long long idx = 0;
  unsigned long long seed_bits = 0;
  if (std::sscanf(content.c_str(), "%15s %lld %llx", magic, &idx,
                  &seed_bits) != 3) {
    return false;
  }
  if (std::strcmp(magic, kTaskMagic) != 0 || idx < 0) return false;
  *index = idx;
  *seed = seed_bits;
  return true;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return in.good() || in.eof();
}

bool WriteFileAtomic(const std::string& path, const std::string& content) {
  AtomicFileWriter file(path);
  if (!file.ok()) return false;
  file.stream() << content;
  return file.Commit();
}

/// Names (not paths) of the regular files in `dir`, sorted for
/// deterministic claim order. Missing dir = empty.
std::vector<std::string> ListDirSorted(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  std::sort(names.begin(), names.end());
  return names;
}

void MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  PPN_CHECK(!ec) << "cannot create " << path << ": " << ec.message();
}

std::string CellsDir(const ExperimentSpec& spec,
                     const std::string& fabric_dir) {
  // Both sides derive this the same way: the worker's spec comes from the
  // same flags the coordinator's did, so a user --checkpoint-dir is
  // shared and the default lands inside the fabric scratch dir.
  return spec.checkpoint_dir.empty()
             ? (fs::path(fabric_dir) / "cells").string()
             : spec.checkpoint_dir;
}

// -------------------------------------------------- fault injection ----

/// Parses a "<slot>:<count>" fault knob; true when it names `slot`.
bool FaultKnobFor(const char* knob, int slot, int64_t* count) {
  const std::string value = env::StringOr(knob, "");
  if (value.empty()) return false;
  const size_t colon = value.find(':');
  PPN_CHECK(colon != std::string::npos)
      << knob << " must be <slot>:<cells>, got \"" << value << "\"";
  const int64_t knob_slot = ParseInt64OrDie(value.substr(0, colon), knob);
  *count = ParseInt64OrDie(value.substr(colon + 1), knob);
  return knob_slot == slot;
}

// ------------------------------------------------------ status files ----

struct WorkerStatus {
  int64_t cells_done = 0;
  int64_t cells_restored = 0;
  int64_t cells_stolen = 0;
  int64_t ckpt_write_failed = 0;
};

std::string StatusPath(const std::string& fabric_dir, int slot, int gen) {
  char name[48];
  std::snprintf(name, sizeof(name), "worker-%d.g%d.status", slot, gen);
  return (fs::path(fabric_dir) / "obs" / name).string();
}

void WriteStatus(const std::string& fabric_dir, int slot, int gen,
                 const WorkerStatus& status) {
  std::ostringstream out;
  out << "ppnfabstatus1\n"
      << "cells_done=" << status.cells_done << "\n"
      << "cells_restored=" << status.cells_restored << "\n"
      << "cells_stolen=" << status.cells_stolen << "\n"
      << "ckpt_write_failed=" << status.ckpt_write_failed << "\n";
  if (!WriteFileAtomic(StatusPath(fabric_dir, slot, gen), out.str())) {
    std::fprintf(stderr, "[fabric] worker status write failed\n");
  }
}

bool ParseStatus(const std::string& content, WorkerStatus* status) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != "ppnfabstatus1") return false;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const long long value = std::atoll(line.c_str() + eq + 1);
    if (key == "cells_done") status->cells_done = value;
    else if (key == "cells_restored") status->cells_restored = value;
    else if (key == "cells_stolen") status->cells_stolen = value;
    else if (key == "ckpt_write_failed") status->ckpt_write_failed = value;
  }
  return true;
}

// ---------------------------------------------------------- spawning ----

struct Child {
  int slot = 0;
  int gen = 0;
  pid_t pid = -1;
  bool alive = false;
};

/// argv/envp marshalled into exec()-shaped arrays. Built BEFORE fork so
/// the child only touches async-signal-safe calls.
struct ExecImage {
  std::vector<std::string> argv_storage;
  std::vector<std::string> env_storage;
  std::vector<char*> argv;
  std::vector<char*> envp;
  std::string log_path;
};

ExecImage BuildExecImage(const FabricOptions& options,
                         const std::string& fabric_dir, int slot, int gen) {
  ExecImage image;
  image.argv_storage = options.worker_argv;
  image.argv_storage.push_back("--fabric-dir");
  image.argv_storage.push_back(fabric_dir);
  image.argv_storage.push_back("--worker-slot");
  image.argv_storage.push_back(std::to_string(slot));
  image.argv_storage.push_back("--worker-gen");
  image.argv_storage.push_back(std::to_string(gen));

  // The child environment is the coordinator's, minus the per-worker
  // overrides: fault knobs reach only first-generation workers (a
  // replacement must not re-die on the same injected fault), and obs sink
  // paths are redirected per worker so children never clobber the
  // coordinator's own profile/trace files.
  // PPN_HEALTH stays coordinator-only: a worker tripping a health rule
  // would exit nonzero and read as a death, burning the restart budget
  // for an SLO miss; the coordinator judges health on the merged view.
  std::set<std::string> drop = {"PPN_PROFILE_JSON", "PPN_TRACE_JSON",
                                "PPN_STATS_JSONL", "PPN_HEALTH"};
  if (gen > 0) {
    drop.insert("PPN_FABRIC_TEST_KILL_AFTER");
    drop.insert("PPN_FABRIC_TEST_HANG_AFTER");
  }
  for (char** env = environ; *env != nullptr; ++env) {
    const std::string entry = *env;
    const size_t eq = entry.find('=');
    if (eq != std::string::npos && drop.count(entry.substr(0, eq)) > 0) {
      continue;
    }
    image.env_storage.push_back(entry);
  }
  char name[64];
  if (obs::Enabled()) {
    std::snprintf(name, sizeof(name), "worker-%d.g%d.profile.json", slot, gen);
    image.env_storage.push_back(
        "PPN_PROFILE_JSON=" +
        (fs::path(fabric_dir) / "obs" / name).string());
  }
  if (env::HasValue("PPN_TRACE_JSON")) {
    std::snprintf(name, sizeof(name), "worker-%d.g%d.trace.json", slot, gen);
    image.env_storage.push_back(
        "PPN_TRACE_JSON=" + (fs::path(fabric_dir) / "obs" / name).string());
  }
  if (env::HasValue("PPN_STATS_JSONL")) {
    std::snprintf(name, sizeof(name), "worker-%d.g%d.stats.jsonl", slot, gen);
    image.env_storage.push_back(
        "PPN_STATS_JSONL=" + (fs::path(fabric_dir) / "obs" / name).string());
  }

  for (std::string& arg : image.argv_storage) {
    image.argv.push_back(arg.data());
  }
  image.argv.push_back(nullptr);
  for (std::string& entry : image.env_storage) {
    image.envp.push_back(entry.data());
  }
  image.envp.push_back(nullptr);
  std::snprintf(name, sizeof(name), "worker-%d.g%d.log", slot, gen);
  image.log_path = (fs::path(fabric_dir) / "obs" / name).string();
  return image;
}

pid_t SpawnWorker(const FabricOptions& options, const std::string& fabric_dir,
                  int slot, int gen) {
  const ExecImage image = BuildExecImage(options, fabric_dir, slot, gen);
  const pid_t pid = ::fork();
  PPN_CHECK(pid >= 0) << "fork failed: " << std::strerror(errno);
  if (pid == 0) {
    // Child: async-signal-safe territory only.
    const int fd = ::open(image.log_path.c_str(),
                          O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      if (fd > 2) ::close(fd);
    }
    ::execve(image.argv[0], image.argv.data(), image.envp.data());
    _exit(127);  // exec failed; the coordinator sees a death.
  }
  if (options.on_spawn) options.on_spawn(slot, static_cast<long>(pid));
  return pid;
}

// ------------------------------------------------- profile merging ----

/// Folds one worker profile JSON into the coordinator's obs registry:
/// counters add, gauges take the max — the same merge semantics the
/// per-thread shards use in-process, lifted across processes. Histogram
/// and trace detail stays in the per-worker files (log2 buckets cannot
/// be re-observed exactly). False when the profile cannot be read or
/// parsed — the caller counts it (`exec.fabric.profile_merge_failed`)
/// and surfaces it in the sweep summary; a silently dropped profile
/// understates the merged counters with no trace in the results.
bool MergeWorkerProfile(const std::string& path) {
  std::string text;
  if (!ReadFileToString(path, &text)) {
    std::fprintf(stderr, "[fabric] skipping unreadable profile %s\n",
                 path.c_str());
    return false;
  }
  JsonValue root;
  std::string error;
  if (!ParseJson(text, &root, &error) || !root.is_object()) {
    std::fprintf(stderr, "[fabric] skipping unreadable profile %s: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  const JsonValue* counters = root.Find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->AsObject()) {
      if (value.is_number()) obs::GetCounter(name).Add(value.AsNumber());
    }
  }
  const JsonValue* gauges = root.Find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->AsObject()) {
      if (value.is_number()) obs::GetGauge(name).UpdateMax(value.AsNumber());
    }
  }
  return true;
}

}  // namespace

// =============================================================== worker ==

int FabricWorkerMain(const ExperimentSpec& spec, const std::string& fabric_dir,
                     int worker_slot, int worker_gen) {
  PPN_CHECK(!fabric_dir.empty()) << "worker needs --fabric-dir";
  PPN_CHECK_GE(worker_slot, 0);
  const CellPlan plan(spec);
  const std::string cells_dir = CellsDir(spec, fabric_dir);
  const fs::path claims = fs::path(fabric_dir) / "claims";
  const fs::path done = fs::path(fabric_dir) / "done";
  const fs::path failed = fs::path(fabric_dir) / "failed";
  const fs::path corrupt = fs::path(fabric_dir) / "corrupt";
  const fs::path queue = fs::path(fabric_dir) / "queue";

  // Shard count comes from the queue layout, not argv: the worker joins
  // whatever fabric the coordinator laid out.
  int num_shards = 0;
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(queue, ec)) {
      if (entry.is_directory()) ++num_shards;
    }
    PPN_CHECK(num_shards > 0) << "no queue shards under " << queue.string();
  }

  int64_t kill_after = -1;
  int64_t hang_after = -1;
  if (!FaultKnobFor("PPN_FABRIC_TEST_KILL_AFTER", worker_slot, &kill_after)) {
    kill_after = -1;
  }
  if (!FaultKnobFor("PPN_FABRIC_TEST_HANG_AFTER", worker_slot, &hang_after)) {
    hang_after = -1;
  }

  WorkerStatus status;
  int64_t claimed_count = 0;
  while (true) {
    // Claim: own shard first, then steal round-robin from the others.
    std::string claim_path;
    int64_t task_index = -1;
    int task_attempt = 0;
    bool stolen = false;
    for (int offset = 0; offset < num_shards && claim_path.empty(); ++offset) {
      const int shard = (worker_slot + offset) % num_shards;
      const std::string shard_dir = ShardDir(fabric_dir, shard);
      for (const std::string& name : ListDirSorted(shard_dir)) {
        int64_t index = 0;
        int attempt = 0;
        const std::string task_path =
            (fs::path(shard_dir) / name).string();
        if (!HasTaskSuffix(name) ||
            !ParseIndexAttempt(name, &index, &attempt)) {
          // Not a published task file: quarantine it for the coordinator
          // rather than looping over it forever. Safe because the
          // coordinator publishes tasks by rename from a staging dir, so
          // nothing of its own is ever mid-write in a shard.
          ::rename(task_path.c_str(),
                   (corrupt / (name + ".corrupt")).string().c_str());
          continue;
        }
        const std::string target =
            (claims / ClaimFileName(index, attempt, worker_slot, worker_gen))
                .string();
        // Atomic claim: exactly one renamer wins; losers see ENOENT and
        // move on.
        if (::rename(task_path.c_str(), target.c_str()) == 0) {
          // Stamp the claim with the CLAIM time — rename preserves mtime,
          // so the file would otherwise still carry the task's write
          // time. Debugging aid only: the coordinator ages claims against
          // its own first-seen clock, never this timestamp.
          ::utimensat(AT_FDCWD, target.c_str(), nullptr, 0);
          claim_path = target;
          task_index = index;
          task_attempt = attempt;
          stolen = offset != 0;
          break;
        }
      }
    }
    if (claim_path.empty()) break;  // Every shard drained: clean exit.
    ++claimed_count;
    if (hang_after >= 0 && claimed_count >= hang_after) {
      // Injected straggler: sit on the claim forever (the coordinator's
      // timeout path must re-dispatch, and its completion path must kill
      // us).
      while (true) ::sleep(1);
    }

    // Validate the claim against our own plan. A mismatch means either a
    // corrupted queue file or a coordinator/worker spec divergence; both
    // are quarantined for the coordinator to recover (bounded), never
    // silently computed.
    std::string content;
    int64_t content_index = -1;
    uint64_t content_seed = 0;
    const bool readable = ReadFileToString(claim_path, &content) &&
                          ParseTaskContent(content, &content_index,
                                           &content_seed);
    const bool valid =
        readable && content_index == task_index &&
        task_index < static_cast<int64_t>(plan.cells().size()) &&
        plan.cells()[task_index].derived_seed == content_seed;
    if (!valid) {
      std::fprintf(stderr, "[fabric] worker %d: quarantining task T%lld "
                   "(unreadable or mismatched vs this worker's spec)\n",
                   worker_slot, static_cast<long long>(task_index));
      ::rename(claim_path.c_str(),
               (corrupt / (TaskFileName(task_index, task_attempt) + ".corrupt"))
                   .string()
                   .c_str());
      continue;
    }
    const PlannedCell& cell = plan.cells()[task_index];

    // A complete checkpoint may already exist: a predecessor died after
    // committing but before marking done, or a straggler's duplicate
    // finished first. Restoring instead of recomputing is what makes
    // elastic rejoin cheap.
    CellResult result;
    std::string error;
    bool persisted = true;
    if (plan.TryLoadCell(cells_dir, cell, &result, &error)) {
      ++status.cells_restored;
      if (obs::Enabled()) {
        static thread_local obs::Counter& counter =
            obs::GetCounter("exec.cells.restored");
        counter.Add(1.0);
      }
    } else {
      result = plan.RunCell(cell);
      if (!plan.SaveCell(cells_dir, result, &error)) {
        persisted = false;
        ++status.ckpt_write_failed;
        if (obs::Enabled()) {
          static thread_local obs::Counter& counter =
              obs::GetCounter("exec.cells.ckpt_write_failed");
          counter.Add(1.0);
        }
        std::fprintf(stderr,
                     "[fabric] worker %d: cell T%lld checkpoint write "
                     "failed: %s\n",
                     worker_slot, static_cast<long long>(task_index),
                     error.c_str());
      }
    }
    if (persisted) {
      // The checkpoint is durable; publish completion. An existing done
      // marker (duplicate execution) is replaced with identical content.
      ::rename(claim_path.c_str(),
               (done / DoneFileName(task_index)).string().c_str());
      ++status.cells_done;
      if (stolen) ++status.cells_stolen;
    } else {
      // The result exists only in this process; hand the cell back so the
      // coordinator can retry it (bounded) somewhere with working disk.
      ::rename(claim_path.c_str(),
               (failed / FailFileName(task_index, task_attempt, worker_slot,
                                      worker_gen))
                   .string()
                   .c_str());
    }
    if (kill_after >= 0 && status.cells_done >= kill_after) {
      // Injected crash: die the hard way, mid-fleet, like a real OOM kill.
      ::raise(SIGKILL);
    }
  }
  WriteStatus(fabric_dir, worker_slot, worker_gen, status);
  std::printf("[fabric] worker %d.g%d: %lld done (%lld restored, %lld "
              "stolen), %lld ckpt failures\n",
              worker_slot, worker_gen,
              static_cast<long long>(status.cells_done),
              static_cast<long long>(status.cells_restored),
              static_cast<long long>(status.cells_stolen),
              static_cast<long long>(status.ckpt_write_failed));
  return 0;
}

// ========================================================== coordinator ==

std::vector<CellResult> RunSweepFabric(const ExperimentSpec& spec,
                                       const FabricOptions& options,
                                       FabricStats* stats_out) {
  PPN_CHECK_GE(options.num_processes, 1);
  PPN_CHECK(!options.fabric_dir.empty()) << "fabric needs a fabric_dir";
  PPN_CHECK(!options.worker_argv.empty()) << "fabric needs a worker argv";
  const double timeout_s =
      options.worker_timeout_s >= 0.0
          ? options.worker_timeout_s
          : env::DoubleOr("PPN_FABRIC_WORKER_TIMEOUT_S", 300.0);
  const int max_restarts =
      options.max_restarts >= 0
          ? options.max_restarts
          : static_cast<int>(env::Int64Or("PPN_FABRIC_MAX_RESTARTS", 8));
  PPN_CHECK(timeout_s > 0.0) << "worker timeout must be > 0";

  obs::Span fabric_span("exec.fabric");
  FabricStats stats;
  // The coordinator plans but never computes: EnumerateCells derives every
  // key and seed without generating a single dataset.
  const std::vector<PlannedCell> cells = EnumerateCells(spec);
  const int64_t total = static_cast<int64_t>(cells.size());
  const std::string& dir = options.fabric_dir;
  const std::string cells_dir = CellsDir(spec, dir);
  const fs::path claims = fs::path(dir) / "claims";
  const fs::path done_dir = fs::path(dir) / "done";
  const fs::path failed_dir = fs::path(dir) / "failed";
  const fs::path corrupt_dir = fs::path(dir) / "corrupt";
  const fs::path staging_dir = fs::path(dir) / "staging";
  for (int s = 0; s < options.num_processes; ++s) MakeDirs(ShardDir(dir, s));
  MakeDirs(staging_dir.string());
  MakeDirs(claims.string());
  MakeDirs(done_dir.string());
  MakeDirs(failed_dir.string());
  MakeDirs(corrupt_dir.string());
  MakeDirs((fs::path(dir) / "obs").string());
  MakeDirs(cells_dir);
  if (!spec.telemetry_dir.empty()) MakeDirs(spec.telemetry_dir);

  /// An index parsed from a claim/corrupt/fail file NAME is untrusted: a
  /// reused fabric dir can hold entries from a previous, larger spec, and
  /// indexing attempts/cells with one would be out-of-bounds UB.
  auto in_range = [total](int64_t index) {
    return index >= 0 && index < total;
  };

  // Tasks are PUBLISHED by writing into staging/ and renaming into the
  // shard: an AtomicFileWriter temp inside the shard itself ("T5.a1.task
  // .tmp") would be visible to live workers mid-write — claimed or
  // quarantined out from under the writer, failing the commit and
  // aborting the sweep with a phantom "exceeded max_cell_attempts".
  auto publish_task = [&](int64_t index, int attempt) -> bool {
    // The dispatch span carries the cell index so the trace stitcher can
    // draw a flow arrow from this span's end to the worker-side
    // `exec.cell` span that eventually claims the task.
    obs::Span dispatch_span("fabric.dispatch");
    dispatch_span.AddArg("index", static_cast<double>(index));
    dispatch_span.AddArg("attempt", static_cast<double>(attempt));
    const std::string name = TaskFileName(index, attempt);
    const std::string staged = (staging_dir / name).string();
    if (!WriteFileAtomic(staged, TaskContent(cells[static_cast<size_t>(
                                     index)]))) {
      return false;
    }
    const int shard = static_cast<int>(index % options.num_processes);
    const std::string dest =
        (fs::path(ShardDir(dir, shard)) / name).string();
    return ::rename(staged.c_str(), dest.c_str()) == 0;
  };

  // Queue: cells round-robin across shards, so each worker starts on an
  // interleaved slice of the grid and stealing only kicks in for
  // stragglers. Cells already checkpointed (a resumed sweep) are not
  // queued at all — the assembly loads them directly.
  //
  // Per-cell bookkeeping is split three ways: `dispatches` is the
  // monotonic task-name counter (every queue file needs a fresh attempt
  // number), `failures` is the abort budget (worker deaths, corruption,
  // failed commits, lost checkpoints), and `backups` caps speculative
  // straggler duplicates WITHOUT counting toward the abort budget — a
  // healthy cell that merely runs longer than the timeout must never
  // take the sweep down.
  std::vector<int> dispatches(static_cast<size_t>(total), 0);
  std::vector<int> failures(static_cast<size_t>(total), 0);
  std::vector<int> backups(static_cast<size_t>(total), 0);
  const CellPlan assembly_plan(spec);  // Datasets stay ungenerated.
  int64_t queued = 0;
  for (const PlannedCell& cell : cells) {
    CellResult probe;
    std::string probe_error;
    if (assembly_plan.TryLoadCell(cells_dir, cell, &probe, &probe_error)) {
      continue;  // Complete from a previous run; nothing to dispatch.
    }
    PPN_CHECK(publish_task(cell.index, 0))
        << "cannot write queue file for cell T" << cell.index;
    ++queued;
  }
  if (options.after_queue_hook) options.after_queue_hook();

  // Requeues a cell after a FAILURE; false (sweep must abort) when the
  // per-cell failure budget is exhausted. Straggler backups go through
  // dispatch_backup instead.
  auto requeue = [&](int64_t index) -> bool {
    PPN_CHECK(in_range(index));
    if (++failures[static_cast<size_t>(index)] >=
        options.max_cell_attempts) {
      return false;
    }
    return publish_task(index, ++dispatches[static_cast<size_t>(index)]);
  };

  // Dispatches a speculative duplicate for a straggler; false when the
  // per-cell backup cap is spent (or the write failed). Never fatal: the
  // slow claim holder may yet finish, and identical bits make whichever
  // copy commits first the winner.
  auto dispatch_backup = [&](int64_t index) -> bool {
    PPN_CHECK(in_range(index));
    int& used = backups[static_cast<size_t>(index)];
    if (used >= options.max_cell_attempts) return false;
    ++used;
    return publish_task(index, ++dispatches[static_cast<size_t>(index)]);
  };

  std::vector<Child> children;
  std::vector<int> slot_gen(static_cast<size_t>(options.num_processes), 0);
  std::vector<std::chrono::steady_clock::time_point> slot_backoff_until(
      static_cast<size_t>(options.num_processes),
      std::chrono::steady_clock::now());
  std::vector<int> slot_deaths(static_cast<size_t>(options.num_processes), 0);
  int restarts_used = 0;
  auto spawn = [&](int slot) {
    const int gen = slot_gen[static_cast<size_t>(slot)]++;
    Child child;
    child.slot = slot;
    child.gen = gen;
    child.pid = SpawnWorker(options, dir, slot, gen);
    child.alive = true;
    children.push_back(child);
    ++stats.workers_spawned;
    if (gen > 0) ++stats.workers_restarted;
  };
  if (queued > 0) {
    for (int s = 0; s < options.num_processes; ++s) spawn(s);
  }

  // Claims the coordinator already re-dispatched as stragglers: one
  // duplicate per stuck claim, not one per poll tick.
  std::set<std::string> redispatched;
  // When each claim was FIRST OBSERVED by the supervision loop. This is
  // what staleness ages against: rename(2) preserves mtime, so a claim
  // file's on-disk timestamp reflects when the TASK was written, and a
  // cell whose queue wait exceeded the timeout would look stale the
  // instant it was claimed. Claim names are unique per dispatch
  // (index, attempt, slot, gen), so first-seen is unambiguous.
  std::map<std::string, std::chrono::steady_clock::time_point>
      claim_first_seen;
  bool complete = queued == 0;
  std::string abort_reason;

  while (!complete && abort_reason.empty()) {
    // 1. Reap. A clean exit (status 0) is a drained worker; anything else
    //    is a death whose claims must go back on the queue.
    for (Child& child : children) {
      if (!child.alive) continue;
      int wait_status = 0;
      const pid_t reaped = ::waitpid(child.pid, &wait_status, WNOHANG);
      if (reaped != child.pid) continue;
      child.alive = false;
      const bool clean =
          WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0;
      if (!clean) {
        ++stats.workers_died;
        ++slot_deaths[static_cast<size_t>(child.slot)];
        const double backoff_s = std::min(
            2.0, 0.1 * static_cast<double>(
                           1 << std::min(5, slot_deaths[static_cast<size_t>(
                                                child.slot)])));
        slot_backoff_until[static_cast<size_t>(child.slot)] =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(backoff_s));
        std::fprintf(stderr,
                     "[fabric] worker %d.g%d (pid %ld) died; requeueing "
                     "its claims\n",
                     child.slot, child.gen, static_cast<long>(child.pid));
      }
      // Requeue everything the worker held, clean exit or not (a clean
      // exit holds nothing; a death may hold one claim).
      for (const std::string& name : ListDirSorted(claims.string())) {
        int64_t index = 0;
        int attempt = 0, slot = 0, gen = 0;
        if (!ParseClaimOwner(name, &index, &attempt, &slot, &gen)) continue;
        if (slot != child.slot || gen != child.gen) continue;
        std::error_code ec;
        fs::remove(claims / name, ec);
        if (!in_range(index)) {
          ++stats.queue_corrupt;  // Foreign entry (reused fabric dir).
          continue;
        }
        ++stats.cells_redispatched;
        if (!requeue(index)) {
          abort_reason = "cell T" + std::to_string(index) +
                         " exceeded max_cell_attempts after worker deaths";
        }
      }
    }

    // 2. Recover quarantined (corrupt/mismatched) queue files from the
    //    coordinator's authoritative cell list.
    for (const std::string& name : ListDirSorted(corrupt_dir.string())) {
      int64_t index = 0;
      int attempt = 0;
      std::error_code ec;
      fs::remove(corrupt_dir / name, ec);
      ++stats.queue_corrupt;
      if (!ParseIndexAttempt(name, &index, &attempt)) continue;
      if (!in_range(index)) continue;  // Junk from a reused fabric dir.
      ++stats.cells_redispatched;
      if (!requeue(index)) {
        abort_reason = "cell T" + std::to_string(index) +
                       " repeatedly corrupt/mismatched in the queue "
                       "(coordinator and worker specs may differ)";
      }
    }

    // 3. Failed checkpoint commits: surfaced and retried elsewhere.
    for (const std::string& name : ListDirSorted(failed_dir.string())) {
      int64_t index = 0;
      int attempt = 0, slot = 0, gen = 0;
      std::error_code ec;
      fs::remove(failed_dir / name, ec);
      if (!ParseClaimOwner(name, &index, &attempt, &slot, &gen)) continue;
      if (!in_range(index)) {
        ++stats.queue_corrupt;  // Foreign entry (reused fabric dir).
        continue;
      }
      ++stats.ckpt_write_failures;
      ++stats.cells_redispatched;
      if (!requeue(index)) {
        abort_reason = "cell T" + std::to_string(index) +
                       " cannot be persisted (checkpoint writes keep "
                       "failing — disk full?)";
      }
    }

    // 4. Stragglers: a claim observed unchanged for longer than the
    //    timeout gets a backup task (speculative duplicate, not a kill —
    //    identical bits make the duplicate harmless, and the slow worker
    //    may yet finish first). Backups are capped per cell but NEVER
    //    abort: only real failures spend the max_cell_attempts budget.
    {
      const auto now = std::chrono::steady_clock::now();
      std::set<std::string> live_claims;
      for (const std::string& name : ListDirSorted(claims.string())) {
        int64_t index = 0;
        int attempt = 0, slot = 0, gen = 0;
        if (!ParseClaimOwner(name, &index, &attempt, &slot, &gen)) continue;
        if (!in_range(index)) {
          // Foreign claim (reused fabric dir): it can never complete
          // against this spec, so discard it instead of indexing with it.
          std::error_code ec;
          fs::remove(claims / name, ec);
          ++stats.queue_corrupt;
          continue;
        }
        live_claims.insert(name);
        if (redispatched.count(name) > 0) continue;
        const auto [seen, first_sighting] = claim_first_seen.emplace(name,
                                                                     now);
        if (first_sighting) continue;  // The stale clock starts here.
        if (std::chrono::duration<double>(now - seen->second).count() <
            timeout_s) {
          continue;
        }
        redispatched.insert(name);
        if (!dispatch_backup(index)) {
          std::fprintf(stderr,
                       "[fabric] claim %s stale (> %.1fs) but its backup "
                       "budget is spent; waiting on the claim holder\n",
                       name.c_str(), timeout_s);
          continue;
        }
        ++stats.cells_redispatched;
        std::fprintf(stderr,
                     "[fabric] claim %s stale (> %.1fs); re-dispatching a "
                     "backup task\n",
                     name.c_str(), timeout_s);
      }
      // Completed (vanished) claims leave the first-seen map so it stays
      // bounded by the number of in-flight claims.
      for (auto it = claim_first_seen.begin();
           it != claim_first_seen.end();) {
        it = live_claims.count(it->first) > 0 ? std::next(it)
                                              : claim_first_seen.erase(it);
      }
    }

    // 5. Completion: every cell marked done AND loadable. A done marker
    //    whose checkpoint does not load (torn by a concurrent duplicate,
    //    eaten by the disk) is dropped and the cell requeued.
    if (static_cast<int64_t>(ListDirSorted(done_dir.string()).size()) >=
        queued) {
      // Cheap gate passed (a marker exists for every dispatched cell);
      // verify for real — markers are hints, loadable checkpoints are
      // the truth.
      int64_t missing = 0;
      for (const PlannedCell& cell : cells) {
        if (fs::exists(done_dir / DoneFileName(cell.index)) ||
            dispatches[static_cast<size_t>(cell.index)] == 0) {
          CellResult probe;
          std::string probe_error;
          if (assembly_plan.TryLoadCell(cells_dir, cell, &probe,
                                        &probe_error)) {
            continue;
          }
        }
        if (!fs::exists(done_dir / DoneFileName(cell.index))) {
          ++missing;  // Still in flight.
          continue;
        }
        std::error_code ec;
        fs::remove(done_dir / DoneFileName(cell.index), ec);
        ++missing;
        ++stats.cells_redispatched;
        std::fprintf(stderr,
                     "[fabric] done marker for T%lld had no loadable "
                     "checkpoint; requeueing\n",
                     static_cast<long long>(cell.index));
        if (!requeue(cell.index)) {
          abort_reason = "cell T" + std::to_string(cell.index) +
                         " keeps losing its checkpoint";
        }
      }
      complete = missing == 0;
      if (complete) break;
    }

    // 6. Elastic capacity: any slot without a live worker respawns (past
    //    its backoff) while claimable work remains, bounded by the
    //    restart budget.
    int64_t tasks_outstanding = 0;
    for (int s = 0; s < options.num_processes; ++s) {
      tasks_outstanding +=
          static_cast<int64_t>(ListDirSorted(ShardDir(dir, s)).size());
    }
    if (tasks_outstanding > 0 && abort_reason.empty()) {
      std::vector<bool> slot_live(static_cast<size_t>(options.num_processes),
                                  false);
      int live = 0;
      for (const Child& child : children) {
        if (child.alive) {
          slot_live[static_cast<size_t>(child.slot)] = true;
          ++live;
        }
      }
      const auto now = std::chrono::steady_clock::now();
      for (int s = 0; s < options.num_processes; ++s) {
        if (slot_live[static_cast<size_t>(s)]) continue;
        if (now < slot_backoff_until[static_cast<size_t>(s)]) continue;
        if (restarts_used >= max_restarts) {
          if (live == 0) {
            abort_reason =
                "work remains but the restart budget (" +
                std::to_string(max_restarts) + ") is exhausted";
          }
          break;
        }
        ++restarts_used;
        spawn(s);
        slot_live[static_cast<size_t>(s)] = true;
        ++live;
      }
    }

    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.poll_interval_s));
  }

  // Shut the fleet down. A worker that drained the queue is already on
  // its clean-exit path — writing its status file and flushing its
  // trace + stats stream — and the coordinator can observe every cell
  // complete (checkpoints land first) while that flush is still in
  // flight, especially on a loaded machine. Give live workers a bounded
  // grace to finish, or the kill below eats their end-of-run telemetry.
  const auto grace_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              std::max(0.0, options.shutdown_grace_s)));
  bool any_alive = true;
  while (any_alive && std::chrono::steady_clock::now() < grace_deadline) {
    any_alive = false;
    for (Child& child : children) {
      if (!child.alive) continue;
      int wait_status = 0;
      if (::waitpid(child.pid, &wait_status, WNOHANG) == child.pid) {
        child.alive = false;
      } else {
        any_alive = true;
      }
    }
    if (any_alive) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  // Anything still alive (hung stragglers whose cells were finished by
  // backups) goes down hard, like any disposable worker.
  for (Child& child : children) {
    if (!child.alive) continue;
    ::kill(child.pid, SIGKILL);
    int wait_status = 0;
    ::waitpid(child.pid, &wait_status, 0);
    child.alive = false;
  }

  // Merge per-worker telemetry into this process: status files (always
  // written on clean exits) and, when profiling is on, profile JSONs.
  for (const std::string& name :
       ListDirSorted((fs::path(dir) / "obs").string())) {
    const std::string path = (fs::path(dir) / "obs" / name).string();
    if (name.size() > 7 && name.rfind(".status") == name.size() - 7) {
      std::string content;
      WorkerStatus status;
      if (ReadFileToString(path, &content) && ParseStatus(content, &status)) {
        stats.cells_stolen += status.cells_stolen;
        stats.cells_restored += status.cells_restored;
        // Worker-side counts: failures whose markers were already
        // consumed in step 3 are not double-counted — markers are the
        // authoritative count; status files only catch markers lost to
        // a mid-rename kill.
      }
    } else if (obs::Enabled() && name.rfind(".profile.json") ==
                                     name.size() - 13) {
      if (!MergeWorkerProfile(path)) ++stats.profile_merge_failed;
    }
  }
  if (obs::Enabled()) {
    obs::GetCounter("exec.fabric.workers_spawned")
        .Add(static_cast<double>(stats.workers_spawned));
    obs::GetCounter("exec.fabric.workers_died")
        .Add(static_cast<double>(stats.workers_died));
    obs::GetCounter("exec.fabric.workers_restarted")
        .Add(static_cast<double>(stats.workers_restarted));
    obs::GetCounter("exec.fabric.cells_stolen")
        .Add(static_cast<double>(stats.cells_stolen));
    obs::GetCounter("exec.fabric.cells_redispatched")
        .Add(static_cast<double>(stats.cells_redispatched));
    obs::GetCounter("exec.fabric.queue_corrupt")
        .Add(static_cast<double>(stats.queue_corrupt));
    obs::GetCounter("exec.fabric.ckpt_write_failed")
        .Add(static_cast<double>(stats.ckpt_write_failures));
    obs::GetCounter("exec.fabric.profile_merge_failed")
        .Add(static_cast<double>(stats.profile_merge_failed));
  }
  if (stats_out != nullptr) *stats_out = stats;
  PPN_CHECK(abort_reason.empty())
      << "fabric sweep failed: " << abort_reason << " (scratch kept at "
      << dir << "; see obs/worker-*.log)";

  // Stitch the cross-process observability artifacts while the scratch
  // dir still holds the per-worker files. Merged outputs are also copied
  // next to the user's own sink paths so they survive scratch cleanup.
  if (env::HasValue("PPN_TRACE_JSON")) {
    const std::string coord_trace =
        (fs::path(dir) / "obs" / "coordinator.trace.json").string();
    obs::WriteTraceJson(coord_trace);
    const std::string merged =
        (fs::path(dir) / "obs" / "merged.trace.json").string();
    std::string merge_error;
    obs::TraceMergeStats merge_stats;
    if (obs::MergeFabricTraces(dir, merged, &merge_error, &merge_stats)) {
      const std::string persist =
          env::StringOr("PPN_TRACE_JSON", "") + ".merged.json";
      std::error_code copy_ec;
      fs::copy_file(merged, persist, fs::copy_options::overwrite_existing,
                    copy_ec);
      std::fprintf(stderr,
                   "[fabric] merged trace: %d processes, %lld events, "
                   "%lld flow pairs -> %s\n",
                   merge_stats.processes,
                   static_cast<long long>(merge_stats.events),
                   static_cast<long long>(merge_stats.flow_pairs),
                   copy_ec ? merged.c_str() : persist.c_str());
    } else {
      std::fprintf(stderr, "[fabric] trace merge failed: %s\n",
                   merge_error.c_str());
    }
  }
  if (env::HasValue("PPN_STATS_JSONL")) {
    std::vector<std::string> streams;
    for (const std::string& name :
         ListDirSorted((fs::path(dir) / "obs").string())) {
      const std::string suffix = ".stats.jsonl";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) == 0 &&
          name != "merged.stats.jsonl") {  // a prior merge's own output
        streams.push_back((fs::path(dir) / "obs" / name).string());
      }
    }
    if (!streams.empty()) {
      const std::string merged =
          (fs::path(dir) / "obs" / "merged.stats.jsonl").string();
      std::string merge_error;
      if (obs::MergeStatsStreams(streams, merged, &merge_error)) {
        const std::string persist =
            env::StringOr("PPN_STATS_JSONL", "") + ".workers.jsonl";
        std::error_code copy_ec;
        fs::copy_file(merged, persist, fs::copy_options::overwrite_existing,
                      copy_ec);
        std::fprintf(stderr, "[fabric] merged %zu worker stats streams -> %s\n",
                     streams.size(),
                     copy_ec ? merged.c_str() : persist.c_str());
      } else {
        std::fprintf(stderr, "[fabric] stats stream merge failed: %s\n",
                     merge_error.c_str());
      }
    }
  }

  // Assemble the merged rows from the cell checkpoints — the only state
  // that ever crossed a process boundary.
  std::vector<CellResult> rows;
  rows.reserve(cells.size());
  for (const PlannedCell& cell : cells) {
    CellResult result;
    std::string error;
    PPN_CHECK(assembly_plan.TryLoadCell(cells_dir, cell, &result, &error))
        << "fabric assembly lost cell T" << cell.index << ": " << error;
    rows.push_back(std::move(result));
  }

  if (!options.keep_fabric_dir) {
    std::error_code ec;
    fs::remove_all(dir, ec);  // Best-effort; scratch only.
  }
  return rows;
}

}  // namespace ppn::exec
