#ifndef PPN_EXEC_EXPERIMENT_H_
#define PPN_EXEC_EXPERIMENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "backtest/metrics.h"
#include "common/run_scale.h"
#include "common/table_printer.h"
#include "market/presets.h"
#include "strategies/registry.h"

/// \file
/// The declarative experiment harness: an `ExperimentSpec` names the axes
/// of a sweep (strategy × dataset × cost-rate × seed), the
/// `ExperimentRunner` fans the independent cells out across a thread pool,
/// and a thread-safe `ResultSink` collects the `CellResult` rows.
///
/// Determinism rule: the RNG seed of every cell is derived from the CELL
/// KEY (strategy label, dataset name, cost rate, sweep seed) — never from
/// submission or completion order — so an N-worker run is bit-identical to
/// the 1-worker (and inline 0-worker) run of the same spec.

namespace ppn::exec {

/// Declarative description of a full sweep. The runner evaluates the cross
/// product of `datasets` × `strategies` × `cost_rates` × `seeds`.
struct ExperimentSpec {
  std::string title;
  RunScale scale = RunScale::kQuick;
  std::vector<market::DatasetId> datasets;
  std::vector<strategies::StrategySpec> strategies;
  /// Backtest cost rates ψ. Neural cells also TRAIN at the evaluated rate
  /// unless `train_cost_rate` fixes one.
  std::vector<double> cost_rates = {0.0025};
  /// Sweep seeds; each multiplies the grid (multi-seed confidence runs).
  std::vector<uint64_t> seeds = {1};
  /// Fixed train-time cost rate; < 0 trains each cell at its evaluated
  /// backtest rate (the paper's protocol).
  double train_cost_rate = -1.0;
  /// Retain each cell's full `BacktestRecord` (wealth curves etc.).
  bool keep_records = false;
  /// When non-empty, each finished cell is checkpointed to
  /// `<checkpoint_dir>/cell-<derived_seed hex>.ckpt` and a rerun of the
  /// same spec restores finished cells instead of recomputing them — a
  /// killed sweep restarted with the same spec only runs the unfinished
  /// cells. Because cell seeds derive from cell keys (never scheduling),
  /// restored and recomputed cells carry bit-identical metrics.
  std::string checkpoint_dir;
  /// When non-empty AND obs is enabled, each NEURAL cell streams one
  /// run-log record per training step to
  /// `<telemetry_dir>/cell-<derived_seed hex>.runlog.jsonl` (see
  /// obs/run_log.h; `ppn_cli report --dir` summarizes the directory).
  /// Like cell checkpoints, files are named by the derived seed — a pure
  /// function of the cell key — so reruns overwrite in place and names
  /// never depend on scheduling. Telemetry only: results stay
  /// bit-identical with or without it, at any worker count.
  std::string telemetry_dir;
};

/// Identity of one cell within a sweep.
struct CellKey {
  std::string strategy;  ///< `StrategySpec::display()` label.
  std::string dataset;   ///< Dataset display name.
  double cost_rate = 0.0025;
  uint64_t seed = 1;     ///< Sweep-level seed entry.
};

/// Derives the root RNG seed of a cell from its key alone (FNV-1a over the
/// key fields with a splitmix64 finalizer). Independent of submission
/// order, worker count, and the other cells in the spec.
uint64_t CellSeed(const CellKey& key);

/// Everything produced by one evaluated cell.
struct CellResult {
  CellKey key;
  uint64_t derived_seed = 0;  ///< `CellSeed(key)`; seeds the cell's RNGs.
  backtest::Metrics metrics;
  backtest::BacktestRecord record;  ///< Filled when `spec.keep_records`.
  double wall_seconds = 0.0;
};

/// Thread-safe, position-addressed collector of cell results. Rows come
/// back in cell-enumeration order regardless of completion order.
class ResultSink {
 public:
  explicit ResultSink(int64_t num_cells);

  /// Stores the result of cell `index` (thread-safe, each index once).
  void Set(int64_t index, CellResult result);

  /// Returns all rows in enumeration order; checks every cell reported.
  std::vector<CellResult> Take();

 private:
  std::mutex mutex_;
  std::vector<CellResult> rows_;
  std::vector<bool> filled_;
};

/// Metric accessor by the paper's column names: "APV", "SR(%)", "STD(%)",
/// "MDD(%)", "CR", "TO". Checks the name is known.
double MetricValue(const backtest::Metrics& metrics,
                   const std::string& column);

/// Renders rows as a paper-style table: `label_header` heads the first
/// column, each row is (label, metric columns).
TablePrinter MakeMetricsTable(
    const std::string& label_header,
    const std::vector<std::pair<std::string, const CellResult*>>& rows,
    const std::vector<std::string>& metric_columns, int precision = 3);

/// Dumps rows as a JSON array (key fields + metrics + wall_seconds), for
/// machine consumption by `run_benches.sh` and downstream tooling.
/// Returns false if the file cannot be written.
bool WriteResultsJson(const std::string& path,
                      const std::vector<CellResult>& rows);

/// Fans the cells of a spec out across a fixed-size thread pool.
class ExperimentRunner {
 public:
  /// `num_workers` = 0 runs every cell inline on the calling thread; the
  /// default honors `PPN_WORKERS` (see thread_pool.h).
  explicit ExperimentRunner(int num_workers);
  ExperimentRunner();

  /// Evaluates every cell of the spec and returns rows in enumeration
  /// order: datasets-major, then strategies, then cost rates, then seeds.
  /// Bit-identical across worker counts.
  std::vector<CellResult> Run(const ExperimentSpec& spec) const;

  int num_workers() const { return num_workers_; }

 private:
  int num_workers_;
};

}  // namespace ppn::exec

#endif  // PPN_EXEC_EXPERIMENT_H_
