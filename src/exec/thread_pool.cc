#include "exec/thread_pool.h"

#include <cstdlib>

#include "common/check.h"
#include "common/parallel.h"

namespace ppn::exec {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  PPN_CHECK_GE(num_threads, 0);
  // Leave the kernels' OpenMP parallelism on only while the pool occupies
  // at most half the machine; a saturating pool owns all cores already and
  // nested OpenMP teams would only oversubscribe.
  const bool allow_inner = num_threads * 2 <= HardwareThreads();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, allow_inner] { WorkerLoop(allow_inner); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PPN_CHECK(task != nullptr);
  if (num_threads_ == 0) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    PPN_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (num_threads_ == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(bool allow_inner_parallel) {
  SetInnerParallelEnabled(allow_inner_parallel);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int DefaultWorkerCount() {
  const char* value = std::getenv("PPN_WORKERS");
  if (value != nullptr) {
    const int workers = std::atoi(value);
    if (workers >= 0) return workers;
  }
  return HardwareThreads();
}

}  // namespace ppn::exec
