#include "exec/thread_pool.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/env.h"
#include "common/parallel.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::exec {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  PPN_CHECK_GE(num_threads, 0);
  // Leave the kernels' OpenMP parallelism on only while the pool occupies
  // at most half the machine; a saturating pool owns all cores already and
  // nested OpenMP teams would only oversubscribe.
  const bool allow_inner = num_threads * 2 <= HardwareThreads();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, allow_inner] { WorkerLoop(allow_inner); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PPN_CHECK(task != nullptr);
  const bool profiling = obs::Enabled();
  if (num_threads_ == 0) {
    if (profiling) {
      obs::ScopedTimer run_timer("exec.pool.task_run.seconds");
      task();
    } else {
      task();
    }
    return;
  }
  QueuedTask queued;
  queued.fn = std::move(task);
  if (profiling) queued.enqueued = std::chrono::steady_clock::now();
  // Flow arrow from this submit to the worker slice that runs the task
  // (returns 0 when tracing is off). Inline mode has no cross-thread hop,
  // so no flow (the task already nests under the caller's span).
  queued.flow_id = obs::BeginFlow("exec.pool.task");
  size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    PPN_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(queued));
    ++in_flight_;
    depth = queue_.size();
  }
  if (profiling) {
    static thread_local obs::Gauge& queue_depth =
        obs::GetGauge("exec.pool.queue_depth.max");
    queue_depth.UpdateMax(static_cast<double>(depth));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (num_threads_ == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(bool allow_inner_parallel) {
  SetInnerParallelEnabled(allow_inner_parallel);
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::Enabled()) {
      // A default-constructed timestamp means the task was enqueued with
      // profiling off; skip the wait sample rather than record a bogus one.
      if (task.enqueued != std::chrono::steady_clock::time_point{}) {
        static thread_local obs::Histogram& wait =
            obs::GetHistogram("exec.pool.task_wait.seconds");
        wait.Observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - task.enqueued)
                         .count());
      }
      obs::ScopedTimer run_timer("exec.pool.task_run.seconds");
      // The flow terminates inside this span (bp:"e" in the export binds
      // the arrow to the enclosing slice), so the submit→run handoff is
      // visible per task in the timeline.
      obs::Span run_span("exec.pool.task_run");
      obs::EndFlow(task.flow_id, "exec.pool.task");
      task.fn();
    } else {
      task.fn();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int DefaultWorkerCount() {
  if (env::IsSet("PPN_WORKERS")) {
    const int64_t workers = env::Int64Or("PPN_WORKERS", 0);
    if (workers < 0) {
      std::fprintf(stderr, "ppn: PPN_WORKERS must be >= 0, got %lld\n",
                   static_cast<long long>(workers));
      std::fflush(stderr);
      std::abort();
    }
    return static_cast<int>(workers);
  }
  return HardwareThreads();
}

}  // namespace ppn::exec
