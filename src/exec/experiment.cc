#include "exec/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "backtest/backtester.h"
#include "ckpt/checkpoint.h"
#include "ckpt/state_io.h"
#include "common/check.h"
#include "exec/thread_pool.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::exec {

namespace {

/// FNV-1a over a byte range.
uint64_t FnvMix(uint64_t hash, const void* bytes, size_t size) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= kPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, const std::string& text) {
  // Fold the length in as well so ("ab", "c") != ("a", "bc").
  const uint64_t length = text.size();
  hash = FnvMix(hash, &length, sizeof(length));
  return FnvMix(hash, text.data(), text.size());
}

/// splitmix64 finalizer: diffuses the FNV state across all 64 bits.
uint64_t Finalize(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// ------------------------------------------------- cell checkpoints ----
//
// One finished cell is one small checkpoint file named by the cell's
// derived seed (a pure function of the cell key, so the same cell in a
// restarted sweep maps to the same file regardless of spec ordering). The
// single "cell" section echoes the full key for validation, then carries
// the metrics and, optionally, the backtest record.

std::string CellCheckpointPath(const std::string& dir, uint64_t derived_seed) {
  char name[32];
  std::snprintf(name, sizeof(name), "cell-%016llx.ckpt",
                static_cast<unsigned long long>(derived_seed));
  return (std::filesystem::path(dir) / name).string();
}

/// Per-cell run-log path, named by the derived seed like the checkpoint so
/// a rerun of the same spec overwrites in place.
std::string CellRunLogPath(const std::string& dir, uint64_t derived_seed) {
  char name[40];
  std::snprintf(name, sizeof(name), "cell-%016llx.runlog.jsonl",
                static_cast<unsigned long long>(derived_seed));
  return (std::filesystem::path(dir) / name).string();
}

void SaveCellCheckpoint(const std::string& path, const CellResult& result) {
  ckpt::CheckpointWriter writer(path);
  writer.BeginSection("cell");
  ckpt::BinWriter& out = writer.writer();
  out.WriteString(result.key.strategy);
  out.WriteString(result.key.dataset);
  out.WriteF64(result.key.cost_rate);
  out.WriteU64(result.key.seed);
  out.WriteU64(result.derived_seed);
  out.WriteF64(result.wall_seconds);
  out.WriteF64(result.metrics.apv);
  out.WriteF64(result.metrics.sr_pct);
  out.WriteF64(result.metrics.std_pct);
  out.WriteF64(result.metrics.mdd_pct);
  out.WriteF64(result.metrics.cr);
  out.WriteF64(result.metrics.turnover);
  const bool has_record = !result.record.wealth_curve.empty();
  out.WriteU8(has_record ? 1 : 0);
  if (has_record) {
    ckpt::WriteDoubleVector(&out, result.record.wealth_curve);
    ckpt::WriteDoubleVector(&out, result.record.log_returns);
    ckpt::WriteDoubleVector(&out, result.record.cost_fractions);
    ckpt::WriteDoubleVector(&out, result.record.turnover_terms);
    out.WriteI64(static_cast<int64_t>(result.record.actions.size()));
    for (const std::vector<double>& action : result.record.actions) {
      ckpt::WriteDoubleVector(&out, action);
    }
  }
  std::string error;
  if (!writer.Commit(&error)) {
    std::fprintf(stderr, "[exec] cell checkpoint write failed: %s\n",
                 error.c_str());
  }
}

/// Restores a finished cell from `path` into `*result` (whose `key` and
/// `derived_seed` are already set and are validated against the stored
/// echo). False — with the reason in *error — when the file is absent,
/// corrupt, for a different cell, or lacks a record the spec needs.
bool TryLoadCellCheckpoint(const std::string& path, bool need_record,
                           CellResult* result, std::string* error) {
  ckpt::CheckpointReader reader;
  if (!reader.Open(path, error)) return false;
  if (!reader.EnterSection("cell", error)) return false;
  ckpt::BinReader& in = reader.reader();
  std::string strategy;
  std::string dataset;
  double cost_rate = 0.0;
  uint64_t seed = 0;
  uint64_t derived_seed = 0;
  if (!in.ReadString(&strategy) || !in.ReadString(&dataset) ||
      !in.ReadF64(&cost_rate) || !in.ReadU64(&seed) ||
      !in.ReadU64(&derived_seed)) {
    *error = "cell checkpoint: short read in key echo";
    return false;
  }
  if (strategy != result->key.strategy || dataset != result->key.dataset ||
      cost_rate != result->key.cost_rate || seed != result->key.seed ||
      derived_seed != result->derived_seed) {
    *error = "cell checkpoint: key mismatch (stored \"" + strategy + "|" +
             dataset + "\", expected \"" + result->key.strategy + "|" +
             result->key.dataset + "\")";
    return false;
  }
  uint8_t has_record = 0;
  if (!in.ReadF64(&result->wall_seconds) || !in.ReadF64(&result->metrics.apv) ||
      !in.ReadF64(&result->metrics.sr_pct) ||
      !in.ReadF64(&result->metrics.std_pct) ||
      !in.ReadF64(&result->metrics.mdd_pct) ||
      !in.ReadF64(&result->metrics.cr) ||
      !in.ReadF64(&result->metrics.turnover) || !in.ReadU8(&has_record)) {
    *error = "cell checkpoint: short read in metrics";
    return false;
  }
  if (need_record && has_record == 0) {
    // Written by a keep_records=false sweep; the record must be recomputed.
    *error = "cell checkpoint: record requested but not stored";
    return false;
  }
  if (has_record != 0) {
    int64_t num_actions = 0;
    if (!ckpt::ReadDoubleVector(&in, &result->record.wealth_curve) ||
        !ckpt::ReadDoubleVector(&in, &result->record.log_returns) ||
        !ckpt::ReadDoubleVector(&in, &result->record.cost_fractions) ||
        !ckpt::ReadDoubleVector(&in, &result->record.turnover_terms) ||
        !in.ReadI64(&num_actions) || num_actions < 0) {
      *error = "cell checkpoint: short read in record";
      return false;
    }
    result->record.actions.resize(static_cast<size_t>(num_actions));
    for (std::vector<double>& action : result->record.actions) {
      if (!ckpt::ReadDoubleVector(&in, &action)) {
        *error = "cell checkpoint: short read in record actions";
        return false;
      }
    }
    if (!need_record) result->record = backtest::BacktestRecord{};
  }
  return reader.Finish(error);
}

}  // namespace

uint64_t CellSeed(const CellKey& key) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  hash = FnvMix(hash, key.strategy);
  hash = FnvMix(hash, key.dataset);
  // Hash the IEEE bits, not a decimal rendering: formatting can round two
  // distinct rates to the same string but never maps one rate to two.
  uint64_t cost_bits = 0;
  static_assert(sizeof(cost_bits) == sizeof(key.cost_rate));
  std::memcpy(&cost_bits, &key.cost_rate, sizeof(cost_bits));
  hash = FnvMix(hash, &cost_bits, sizeof(cost_bits));
  hash = FnvMix(hash, &key.seed, sizeof(key.seed));
  const uint64_t seed = Finalize(hash);
  // Keep the seed nonzero so downstream multiply-based stream derivations
  // (seed * k + c) never collapse streams onto their constants.
  return seed == 0 ? 0x9e3779b97f4a7c15ull : seed;
}

ResultSink::ResultSink(int64_t num_cells)
    : rows_(static_cast<size_t>(num_cells)),
      filled_(static_cast<size_t>(num_cells), false) {
  PPN_CHECK_GE(num_cells, 0);
}

void ResultSink::Set(int64_t index, CellResult result) {
  std::unique_lock<std::mutex> lock(mutex_);
  PPN_CHECK(index >= 0 && index < static_cast<int64_t>(rows_.size()))
      << "cell index out of range: " << index;
  PPN_CHECK(!filled_[index]) << "cell " << index << " reported twice";
  rows_[index] = std::move(result);
  filled_[index] = true;
}

std::vector<CellResult> ResultSink::Take() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (size_t i = 0; i < filled_.size(); ++i) {
    PPN_CHECK(filled_[i]) << "cell " << i << " never reported";
  }
  return std::move(rows_);
}

double MetricValue(const backtest::Metrics& metrics,
                   const std::string& column) {
  if (column == "APV") return metrics.apv;
  if (column == "SR(%)") return metrics.sr_pct;
  if (column == "STD(%)") return metrics.std_pct;
  if (column == "MDD(%)") return metrics.mdd_pct;
  if (column == "CR") return metrics.cr;
  if (column == "TO") return metrics.turnover;
  PPN_CHECK(false) << "unknown metric column: " << column;
  return 0.0;
}

TablePrinter MakeMetricsTable(
    const std::string& label_header,
    const std::vector<std::pair<std::string, const CellResult*>>& rows,
    const std::vector<std::string>& metric_columns, int precision) {
  std::vector<std::string> header = {label_header};
  header.insert(header.end(), metric_columns.begin(), metric_columns.end());
  TablePrinter table(std::move(header));
  for (const auto& [label, result] : rows) {
    PPN_CHECK(result != nullptr);
    std::vector<double> values;
    values.reserve(metric_columns.size());
    for (const std::string& column : metric_columns) {
      values.push_back(MetricValue(result->metrics, column));
    }
    table.AddRow(label, values, precision);
  }
  return table;
}

bool WriteResultsJson(const std::string& path,
                      const std::vector<CellResult>& rows) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const CellResult& row = rows[i];
    out << "  {\"strategy\": \"" << JsonEscape(row.key.strategy)
        << "\", \"dataset\": \"" << JsonEscape(row.key.dataset)
        << "\", \"cost_rate\": " << row.key.cost_rate
        << ", \"seed\": " << row.key.seed
        << ", \"derived_seed\": " << row.derived_seed
        << ", \"apv\": " << row.metrics.apv
        << ", \"sr_pct\": " << row.metrics.sr_pct
        << ", \"std_pct\": " << row.metrics.std_pct
        << ", \"mdd_pct\": " << row.metrics.mdd_pct
        << ", \"cr\": " << row.metrics.cr
        << ", \"turnover\": " << row.metrics.turnover
        << ", \"wall_seconds\": " << row.wall_seconds << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

ExperimentRunner::ExperimentRunner(int num_workers)
    : num_workers_(num_workers) {
  PPN_CHECK_GE(num_workers, 0);
}

ExperimentRunner::ExperimentRunner()
    : ExperimentRunner(DefaultWorkerCount()) {}

std::vector<CellResult> ExperimentRunner::Run(
    const ExperimentSpec& spec) const {
  PPN_CHECK(spec.datasets.empty() != spec.custom_datasets.empty())
      << "spec needs exactly one dataset source: preset `datasets` or "
         "pre-built `custom_datasets`";
  PPN_CHECK(!spec.strategies.empty()) << "spec has no strategies";
  PPN_CHECK(!spec.cost_rates.empty()) << "spec has no cost rates";
  PPN_CHECK(!spec.seeds.empty()) << "spec has no seeds";
  std::set<std::string> labels;
  for (const strategies::StrategySpec& strategy : spec.strategies) {
    strategy.Validate();
    PPN_CHECK(labels.insert(strategy.display()).second)
        << "duplicate strategy label in spec: " << strategy.display()
        << " (cells are keyed by label; disambiguate with StrategySpec::label)";
  }

  // Datasets are resolved once, serially, before any cell runs: every cell
  // then reads the shared immutable panels, and generation cost is not
  // multiplied across the grid. Preset ids are generated here; custom
  // datasets are referenced in place. Either way the dataset axis is fixed
  // before the pool starts, so scheduling cannot touch it.
  std::vector<market::MarketDataset> generated;
  generated.reserve(spec.datasets.size());
  for (const market::DatasetId id : spec.datasets) {
    generated.push_back(market::MakeDataset(id, spec.scale));
  }
  static const std::vector<double> kNoMultipliers;
  struct DatasetEntry {
    const market::MarketDataset* dataset;
    const std::vector<double>* cost_multipliers;  ///< Never null; may be empty.
    std::string display_name;
  };
  std::vector<DatasetEntry> datasets;
  if (spec.custom_datasets.empty()) {
    for (size_t d = 0; d < generated.size(); ++d) {
      datasets.push_back(DatasetEntry{&generated[d], &kNoMultipliers,
                                      market::DatasetName(spec.datasets[d])});
    }
  } else {
    std::set<std::string> names;
    for (const CustomDataset& custom : spec.custom_datasets) {
      PPN_CHECK(!custom.dataset.name.empty())
          << "custom dataset needs a name (cells are keyed by it)";
      PPN_CHECK(names.insert(custom.dataset.name).second)
          << "duplicate custom dataset name in spec: " << custom.dataset.name;
      if (!custom.cost_multipliers.empty()) {
        PPN_CHECK_GE(
            static_cast<int64_t>(custom.cost_multipliers.size()),
            custom.dataset.panel.num_periods())
            << "cost multipliers of " << custom.dataset.name
            << " do not cover the panel";
      }
      datasets.push_back(DatasetEntry{&custom.dataset,
                                      &custom.cost_multipliers,
                                      custom.dataset.name});
    }
  }

  struct Cell {
    int64_t index;
    size_t dataset_index;
    size_t strategy_index;
    double cost_rate;
    uint64_t seed;
  };
  std::vector<Cell> cells;
  for (size_t d = 0; d < datasets.size(); ++d) {
    for (size_t s = 0; s < spec.strategies.size(); ++s) {
      for (const double cost_rate : spec.cost_rates) {
        for (const uint64_t seed : spec.seeds) {
          cells.push_back(Cell{static_cast<int64_t>(cells.size()), d, s,
                               cost_rate, seed});
        }
      }
    }
  }

  if (!spec.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.checkpoint_dir, ec);
    PPN_CHECK(!ec) << "cannot create checkpoint dir " << spec.checkpoint_dir
                   << ": " << ec.message();
  }
  if (!spec.telemetry_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.telemetry_dir, ec);
    PPN_CHECK(!ec) << "cannot create telemetry dir " << spec.telemetry_dir
                   << ": " << ec.message();
  }

  ResultSink sink(static_cast<int64_t>(cells.size()));
  ThreadPool pool(num_workers_);
  for (const Cell& cell : cells) {
    pool.Submit([&spec, &datasets, &sink, cell] {
      obs::Span cell_span("exec.cell");
      cell_span.AddArg("index", static_cast<double>(cell.index));
      cell_span.AddArg("cost_rate", cell.cost_rate);
      const auto start = std::chrono::steady_clock::now();
      const DatasetEntry& entry = datasets[cell.dataset_index];
      const market::MarketDataset& dataset = *entry.dataset;
      strategies::StrategySpec cell_spec = spec.strategies[cell.strategy_index];
      cell_spec.scale = spec.scale;
      // Train at the evaluated rate (the paper's protocol) unless the spec
      // pins a fixed train-time rate.
      cell_spec.cost_rate =
          spec.train_cost_rate >= 0.0 ? spec.train_cost_rate : cell.cost_rate;
      CellResult result;
      result.key = CellKey{cell_spec.display(), entry.display_name,
                           cell.cost_rate, cell.seed};
      // The cell's RNG root comes from its key, never from scheduling, so
      // any worker count reproduces the same bits.
      result.derived_seed = CellSeed(result.key);
      cell_spec.seed = result.derived_seed;
      if (!spec.telemetry_dir.empty()) {
        cell_spec.runlog_path =
            CellRunLogPath(spec.telemetry_dir, result.derived_seed);
      }
      const std::string cell_ckpt_path =
          spec.checkpoint_dir.empty()
              ? std::string()
              : CellCheckpointPath(spec.checkpoint_dir, result.derived_seed);
      if (!cell_ckpt_path.empty()) {
        std::string load_error;
        if (TryLoadCellCheckpoint(cell_ckpt_path, spec.keep_records, &result,
                                  &load_error)) {
          if (obs::Enabled()) {
            static thread_local obs::Counter& restored =
                obs::GetCounter("exec.cells.restored");
            restored.Add(1.0);
          }
          sink.Set(cell.index, std::move(result));
          return;
        }
        // Fall through to a fresh run; a missing file is the normal cold
        // path, anything else is worth a note.
        if (std::filesystem::exists(cell_ckpt_path)) {
          std::fprintf(stderr, "[exec] ignoring cell checkpoint %s: %s\n",
                       cell_ckpt_path.c_str(), load_error.c_str());
        }
      }
      const std::unique_ptr<backtest::Strategy> strategy =
          strategies::MakeStrategy(cell_spec, dataset);
      backtest::BacktestRecord record = backtest::RunOnTestRange(
          strategy.get(), dataset, cell.cost_rate, *entry.cost_multipliers);
      result.metrics = backtest::ComputeMetrics(record);
      if (spec.keep_records) result.record = std::move(record);
      result.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!cell_ckpt_path.empty()) {
        SaveCellCheckpoint(cell_ckpt_path, result);
      }
      if (obs::Enabled()) {
        static thread_local obs::Counter& completed =
            obs::GetCounter("exec.cells.completed");
        static thread_local obs::Histogram& cell_seconds =
            obs::GetHistogram("exec.cell.seconds");
        completed.Add(1.0);
        cell_seconds.Observe(result.wall_seconds);
        // One gauge per cell key: readable per-cell wall times in the
        // profile. A watermark (not last-write) so re-running the same spec
        // merges deterministically. Cell-grid cardinality is small enough
        // that a metric per cell is fine.
        obs::GetGauge("exec.cell_seconds." + result.key.strategy + "|" +
                      result.key.dataset + "|psi=" +
                      std::to_string(result.key.cost_rate) + "|seed=" +
                      std::to_string(result.key.seed))
            .UpdateMax(result.wall_seconds);
      }
      sink.Set(cell.index, std::move(result));
    });
  }
  pool.Wait();
  return sink.Take();
}

}  // namespace ppn::exec
