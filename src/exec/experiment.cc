#include "exec/experiment.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <set>
#include <utility>

#include "backtest/backtester.h"
#include "ckpt/checkpoint.h"
#include "ckpt/state_io.h"
#include "common/atomic_file.h"
#include "common/check.h"
#include "exec/thread_pool.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::exec {

namespace {

/// FNV-1a over a byte range.
uint64_t FnvMix(uint64_t hash, const void* bytes, size_t size) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= kPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, const std::string& text) {
  // Fold the length in as well so ("ab", "c") != ("a", "bc").
  const uint64_t length = text.size();
  hash = FnvMix(hash, &length, sizeof(length));
  return FnvMix(hash, text.data(), text.size());
}

/// splitmix64 finalizer: diffuses the FNV state across all 64 bits.
uint64_t Finalize(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Shortest-exact decimal rendering is not needed here; %.17g is enough
/// for any double to round-trip bit-exactly through strtod.
std::string FormatDoubleExact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Validates the sweep axes shared by every consumer of a spec.
void ValidateSpec(const ExperimentSpec& spec) {
  PPN_CHECK(spec.datasets.empty() != spec.custom_datasets.empty())
      << "spec needs exactly one dataset source: preset `datasets` or "
         "pre-built `custom_datasets`";
  PPN_CHECK(!spec.strategies.empty()) << "spec has no strategies";
  PPN_CHECK(!spec.cost_rates.empty()) << "spec has no cost rates";
  PPN_CHECK(!spec.seeds.empty()) << "spec has no seeds";
  std::set<std::string> labels;
  for (const strategies::StrategySpec& strategy : spec.strategies) {
    strategy.Validate();
    PPN_CHECK(labels.insert(strategy.display()).second)
        << "duplicate strategy label in spec: " << strategy.display()
        << " (cells are keyed by label; disambiguate with StrategySpec::label)";
  }
  if (!spec.custom_datasets.empty()) {
    std::set<std::string> names;
    for (const CustomDataset& custom : spec.custom_datasets) {
      PPN_CHECK(!custom.dataset.name.empty())
          << "custom dataset needs a name (cells are keyed by it)";
      PPN_CHECK(names.insert(custom.dataset.name).second)
          << "duplicate custom dataset name in spec: " << custom.dataset.name;
      if (!custom.cost_multipliers.empty()) {
        PPN_CHECK_GE(static_cast<int64_t>(custom.cost_multipliers.size()),
                     custom.dataset.panel.num_periods())
            << "cost multipliers of " << custom.dataset.name
            << " do not cover the panel";
      }
    }
  }
}

/// Display names of the dataset axis, without generating anything.
std::vector<std::string> DatasetDisplayNames(const ExperimentSpec& spec) {
  std::vector<std::string> names;
  if (spec.custom_datasets.empty()) {
    for (const market::DatasetId id : spec.datasets) {
      names.push_back(market::DatasetName(id));
    }
  } else {
    for (const CustomDataset& custom : spec.custom_datasets) {
      names.push_back(custom.dataset.name);
    }
  }
  return names;
}

}  // namespace

uint64_t CellSeed(const CellKey& key) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  hash = FnvMix(hash, key.strategy);
  hash = FnvMix(hash, key.dataset);
  // Hash the IEEE bits, not a decimal rendering: formatting can round two
  // distinct rates to the same string but never maps one rate to two.
  uint64_t cost_bits = 0;
  static_assert(sizeof(cost_bits) == sizeof(key.cost_rate));
  std::memcpy(&cost_bits, &key.cost_rate, sizeof(cost_bits));
  hash = FnvMix(hash, &cost_bits, sizeof(cost_bits));
  hash = FnvMix(hash, &key.seed, sizeof(key.seed));
  const uint64_t seed = Finalize(hash);
  // Keep the seed nonzero so downstream multiply-based stream derivations
  // (seed * k + c) never collapse streams onto their constants.
  return seed == 0 ? 0x9e3779b97f4a7c15ull : seed;
}

// ------------------------------------------------- cell checkpoints ----
//
// One finished cell is one small checkpoint file named by the cell's
// derived seed (a pure function of the cell key, so the same cell in a
// restarted sweep — or a sweep sharded across fabric worker processes —
// maps to the same file regardless of spec ordering or placement). The
// single "cell" section echoes the full key for validation, then carries
// the metrics and, optionally, the backtest record.

std::string CellCheckpointPath(const std::string& dir, uint64_t derived_seed) {
  char name[32];
  std::snprintf(name, sizeof(name), "cell-%016llx.ckpt",
                static_cast<unsigned long long>(derived_seed));
  return (std::filesystem::path(dir) / name).string();
}

std::string CellRunLogPath(const std::string& dir, uint64_t derived_seed) {
  char name[40];
  std::snprintf(name, sizeof(name), "cell-%016llx.runlog.jsonl",
                static_cast<unsigned long long>(derived_seed));
  return (std::filesystem::path(dir) / name).string();
}

std::vector<PlannedCell> EnumerateCells(const ExperimentSpec& spec) {
  ValidateSpec(spec);
  const std::vector<std::string> dataset_names = DatasetDisplayNames(spec);
  std::vector<PlannedCell> cells;
  for (size_t d = 0; d < dataset_names.size(); ++d) {
    for (size_t s = 0; s < spec.strategies.size(); ++s) {
      for (const double cost_rate : spec.cost_rates) {
        for (const uint64_t seed : spec.seeds) {
          PlannedCell cell;
          cell.index = static_cast<int64_t>(cells.size());
          cell.dataset_index = d;
          cell.strategy_index = s;
          cell.key = CellKey{spec.strategies[s].display(), dataset_names[d],
                             cost_rate, seed};
          // The cell's RNG root comes from its key, never from
          // scheduling or process placement, so any worker count — and
          // any process count — reproduces the same bits.
          cell.derived_seed = CellSeed(cell.key);
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

/// One dataset-axis entry, materialized on first use. Presets generate
/// lazily under `once` (a fabric worker that only ever claims crypto-a
/// cells never pays for sp500); custom datasets are referenced in place.
struct CellPlan::DatasetSlot {
  market::DatasetId preset_id = market::DatasetId::kCryptoA;
  bool is_preset = false;
  const market::MarketDataset* external = nullptr;  ///< Custom datasets.
  const std::vector<double>* cost_multipliers = nullptr;  ///< Never null.
  market::MarketDataset generated;
  std::once_flag once;
};

CellPlan::CellPlan(const ExperimentSpec& spec)
    : spec_(spec), cells_(EnumerateCells(spec)) {
  static const std::vector<double> kNoMultipliers;
  const size_t axis = spec.custom_datasets.empty()
                          ? spec.datasets.size()
                          : spec.custom_datasets.size();
  datasets_ = std::vector<DatasetSlot>(axis);
  for (size_t d = 0; d < axis; ++d) {
    DatasetSlot& slot = datasets_[d];
    if (spec.custom_datasets.empty()) {
      slot.is_preset = true;
      slot.preset_id = spec.datasets[d];
      slot.cost_multipliers = &kNoMultipliers;
    } else {
      slot.external = &spec.custom_datasets[d].dataset;
      slot.cost_multipliers = &spec.custom_datasets[d].cost_multipliers;
    }
  }
}

CellPlan::~CellPlan() = default;

const market::MarketDataset& CellPlan::Dataset(size_t index) const {
  DatasetSlot& slot = datasets_[index];
  if (!slot.is_preset) return *slot.external;
  std::call_once(slot.once, [&slot, this] {
    slot.generated = market::MakeDataset(slot.preset_id, spec_.scale);
  });
  return slot.generated;
}

CellResult CellPlan::RunCell(const PlannedCell& cell) const {
  obs::Span cell_span("exec.cell");
  cell_span.AddArg("index", static_cast<double>(cell.index));
  cell_span.AddArg("cost_rate", cell.key.cost_rate);
  const auto start = std::chrono::steady_clock::now();
  const market::MarketDataset& dataset = Dataset(cell.dataset_index);
  strategies::StrategySpec cell_spec = spec_.strategies[cell.strategy_index];
  cell_spec.scale = spec_.scale;
  // Train at the evaluated rate (the paper's protocol) unless the spec
  // pins a fixed train-time rate.
  cell_spec.cost_rate = spec_.train_cost_rate >= 0.0 ? spec_.train_cost_rate
                                                     : cell.key.cost_rate;
  CellResult result;
  result.key = cell.key;
  result.derived_seed = cell.derived_seed;
  cell_spec.seed = result.derived_seed;
  if (!spec_.telemetry_dir.empty()) {
    cell_spec.runlog_path =
        CellRunLogPath(spec_.telemetry_dir, result.derived_seed);
  }
  const std::unique_ptr<backtest::Strategy> strategy =
      strategies::MakeStrategy(cell_spec, dataset);
  backtest::BacktestRecord record =
      backtest::RunOnTestRange(strategy.get(), dataset, cell.key.cost_rate,
                               *datasets_[cell.dataset_index].cost_multipliers);
  result.metrics = backtest::ComputeMetrics(record);
  if (spec_.keep_records) result.record = std::move(record);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (obs::Enabled()) {
    static thread_local obs::Counter& completed =
        obs::GetCounter("exec.cells.completed");
    static thread_local obs::Histogram& cell_seconds =
        obs::GetHistogram("exec.cell.seconds");
    completed.Add(1.0);
    cell_seconds.Observe(result.wall_seconds);
    // One gauge per cell key: readable per-cell wall times in the
    // profile. A watermark (not last-write) so re-running the same spec
    // merges deterministically. Cell-grid cardinality is small enough
    // that a metric per cell is fine.
    obs::GetGauge("exec.cell_seconds." + result.key.strategy + "|" +
                  result.key.dataset + "|psi=" +
                  std::to_string(result.key.cost_rate) + "|seed=" +
                  std::to_string(result.key.seed))
        .UpdateMax(result.wall_seconds);
  }
  return result;
}

bool CellPlan::SaveCell(const std::string& dir, const CellResult& result,
                        std::string* error) const {
  const std::string path = CellCheckpointPath(dir, result.derived_seed);
  ckpt::CheckpointWriter writer(path);
  writer.BeginSection("cell");
  ckpt::BinWriter& out = writer.writer();
  out.WriteString(result.key.strategy);
  out.WriteString(result.key.dataset);
  out.WriteF64(result.key.cost_rate);
  out.WriteU64(result.key.seed);
  out.WriteU64(result.derived_seed);
  out.WriteF64(result.wall_seconds);
  out.WriteF64(result.metrics.apv);
  out.WriteF64(result.metrics.sr_pct);
  out.WriteF64(result.metrics.std_pct);
  out.WriteF64(result.metrics.mdd_pct);
  out.WriteF64(result.metrics.cr);
  out.WriteF64(result.metrics.turnover);
  const bool has_record = !result.record.wealth_curve.empty();
  out.WriteU8(has_record ? 1 : 0);
  if (has_record) {
    ckpt::WriteDoubleVector(&out, result.record.wealth_curve);
    ckpt::WriteDoubleVector(&out, result.record.log_returns);
    ckpt::WriteDoubleVector(&out, result.record.cost_fractions);
    ckpt::WriteDoubleVector(&out, result.record.turnover_terms);
    out.WriteI64(static_cast<int64_t>(result.record.actions.size()));
    for (const std::vector<double>& action : result.record.actions) {
      ckpt::WriteDoubleVector(&out, action);
    }
  }
  return writer.Commit(error);
}

bool CellPlan::TryLoadCell(const std::string& dir, const PlannedCell& cell,
                           CellResult* result, std::string* error) const {
  const std::string path = CellCheckpointPath(dir, cell.derived_seed);
  result->key = cell.key;
  result->derived_seed = cell.derived_seed;
  const bool need_record = spec_.keep_records;
  ckpt::CheckpointReader reader;
  if (!reader.Open(path, error)) return false;
  if (!reader.EnterSection("cell", error)) return false;
  ckpt::BinReader& in = reader.reader();
  std::string strategy;
  std::string dataset;
  double cost_rate = 0.0;
  uint64_t seed = 0;
  uint64_t derived_seed = 0;
  if (!in.ReadString(&strategy) || !in.ReadString(&dataset) ||
      !in.ReadF64(&cost_rate) || !in.ReadU64(&seed) ||
      !in.ReadU64(&derived_seed)) {
    *error = "cell checkpoint: short read in key echo";
    return false;
  }
  if (strategy != result->key.strategy || dataset != result->key.dataset ||
      cost_rate != result->key.cost_rate || seed != result->key.seed ||
      derived_seed != result->derived_seed) {
    *error = "cell checkpoint: key mismatch (stored \"" + strategy + "|" +
             dataset + "\", expected \"" + result->key.strategy + "|" +
             result->key.dataset + "\")";
    return false;
  }
  uint8_t has_record = 0;
  if (!in.ReadF64(&result->wall_seconds) || !in.ReadF64(&result->metrics.apv) ||
      !in.ReadF64(&result->metrics.sr_pct) ||
      !in.ReadF64(&result->metrics.std_pct) ||
      !in.ReadF64(&result->metrics.mdd_pct) ||
      !in.ReadF64(&result->metrics.cr) ||
      !in.ReadF64(&result->metrics.turnover) || !in.ReadU8(&has_record)) {
    *error = "cell checkpoint: short read in metrics";
    return false;
  }
  if (need_record && has_record == 0) {
    // Written by a keep_records=false sweep; the record must be recomputed.
    *error = "cell checkpoint: record requested but not stored";
    return false;
  }
  if (has_record != 0) {
    int64_t num_actions = 0;
    if (!ckpt::ReadDoubleVector(&in, &result->record.wealth_curve) ||
        !ckpt::ReadDoubleVector(&in, &result->record.log_returns) ||
        !ckpt::ReadDoubleVector(&in, &result->record.cost_fractions) ||
        !ckpt::ReadDoubleVector(&in, &result->record.turnover_terms) ||
        !in.ReadI64(&num_actions) || num_actions < 0) {
      *error = "cell checkpoint: short read in record";
      return false;
    }
    result->record.actions.resize(static_cast<size_t>(num_actions));
    for (std::vector<double>& action : result->record.actions) {
      if (!ckpt::ReadDoubleVector(&in, &action)) {
        *error = "cell checkpoint: short read in record actions";
        return false;
      }
    }
    if (!need_record) result->record = backtest::BacktestRecord{};
  }
  return reader.Finish(error);
}

ResultSink::ResultSink(int64_t num_cells)
    : rows_(static_cast<size_t>(num_cells)),
      filled_(static_cast<size_t>(num_cells), false) {
  PPN_CHECK_GE(num_cells, 0);
}

void ResultSink::Set(int64_t index, CellResult result) {
  std::unique_lock<std::mutex> lock(mutex_);
  PPN_CHECK(index >= 0 && index < static_cast<int64_t>(rows_.size()))
      << "cell index out of range: " << index;
  PPN_CHECK(!filled_[index]) << "cell " << index << " reported twice";
  rows_[index] = std::move(result);
  filled_[index] = true;
}

std::vector<CellResult> ResultSink::Take() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (size_t i = 0; i < filled_.size(); ++i) {
    PPN_CHECK(filled_[i]) << "cell " << i << " never reported";
  }
  return std::move(rows_);
}

double MetricValue(const backtest::Metrics& metrics,
                   const std::string& column) {
  if (column == "APV") return metrics.apv;
  if (column == "SR(%)") return metrics.sr_pct;
  if (column == "STD(%)") return metrics.std_pct;
  if (column == "MDD(%)") return metrics.mdd_pct;
  if (column == "CR") return metrics.cr;
  if (column == "TO") return metrics.turnover;
  PPN_CHECK(false) << "unknown metric column: " << column;
  return 0.0;
}

TablePrinter MakeMetricsTable(
    const std::string& label_header,
    const std::vector<std::pair<std::string, const CellResult*>>& rows,
    const std::vector<std::string>& metric_columns, int precision) {
  std::vector<std::string> header = {label_header};
  header.insert(header.end(), metric_columns.begin(), metric_columns.end());
  TablePrinter table(std::move(header));
  for (const auto& [label, result] : rows) {
    PPN_CHECK(result != nullptr);
    std::vector<double> values;
    values.reserve(metric_columns.size());
    for (const std::string& column : metric_columns) {
      values.push_back(MetricValue(result->metrics, column));
    }
    table.AddRow(label, values, precision);
  }
  return table;
}

bool WriteResultsJson(const std::string& path,
                      const std::vector<CellResult>& rows) {
  // Atomic (temp-then-rename, like every other persistence path) and
  // %.17g so every double round-trips bit-exactly: downstream equality
  // checks — the fabric's N-process-vs-1 comparison in particular —
  // compare these files, not in-memory rows.
  AtomicFileWriter file(path);
  if (!file.ok()) return false;
  std::ofstream& out = file.stream();
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const CellResult& row = rows[i];
    out << "  {\"strategy\": \"" << JsonEscape(row.key.strategy)
        << "\", \"dataset\": \"" << JsonEscape(row.key.dataset)
        << "\", \"cost_rate\": " << FormatDoubleExact(row.key.cost_rate)
        << ", \"seed\": " << row.key.seed
        << ", \"derived_seed\": " << row.derived_seed
        << ", \"apv\": " << FormatDoubleExact(row.metrics.apv)
        << ", \"sr_pct\": " << FormatDoubleExact(row.metrics.sr_pct)
        << ", \"std_pct\": " << FormatDoubleExact(row.metrics.std_pct)
        << ", \"mdd_pct\": " << FormatDoubleExact(row.metrics.mdd_pct)
        << ", \"cr\": " << FormatDoubleExact(row.metrics.cr)
        << ", \"turnover\": " << FormatDoubleExact(row.metrics.turnover)
        << ", \"wall_seconds\": " << FormatDoubleExact(row.wall_seconds)
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return file.Commit();
}

ExperimentRunner::ExperimentRunner(int num_workers)
    : num_workers_(num_workers) {
  PPN_CHECK_GE(num_workers, 0);
}

ExperimentRunner::ExperimentRunner()
    : ExperimentRunner(DefaultWorkerCount()) {}

std::vector<CellResult> ExperimentRunner::Run(const ExperimentSpec& spec,
                                              RunStats* stats) const {
  const CellPlan plan(spec);

  if (!spec.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.checkpoint_dir, ec);
    PPN_CHECK(!ec) << "cannot create checkpoint dir " << spec.checkpoint_dir
                   << ": " << ec.message();
  }
  if (!spec.telemetry_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.telemetry_dir, ec);
    PPN_CHECK(!ec) << "cannot create telemetry dir " << spec.telemetry_dir
                   << ": " << ec.message();
  }

  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> restored{0};
  std::atomic<int64_t> ckpt_failures{0};
  ResultSink sink(static_cast<int64_t>(plan.cells().size()));
  ThreadPool pool(num_workers_);
  for (const PlannedCell& cell : plan.cells()) {
    pool.Submit([&plan, &spec, &sink, &completed, &restored, &ckpt_failures,
                 &cell] {
      if (!spec.checkpoint_dir.empty()) {
        CellResult result;
        std::string load_error;
        if (plan.TryLoadCell(spec.checkpoint_dir, cell, &result,
                             &load_error)) {
          restored.fetch_add(1, std::memory_order_relaxed);
          if (obs::Enabled()) {
            static thread_local obs::Counter& counter =
                obs::GetCounter("exec.cells.restored");
            counter.Add(1.0);
          }
          sink.Set(cell.index, std::move(result));
          return;
        }
        // Fall through to a fresh run; a missing file is the normal cold
        // path, anything else is worth a note.
        const std::string path =
            CellCheckpointPath(spec.checkpoint_dir, cell.derived_seed);
        if (std::filesystem::exists(path)) {
          std::fprintf(stderr, "[exec] ignoring cell checkpoint %s: %s\n",
                       path.c_str(), load_error.c_str());
        }
      }
      CellResult result = plan.RunCell(cell);
      completed.fetch_add(1, std::memory_order_relaxed);
      if (!spec.checkpoint_dir.empty()) {
        std::string save_error;
        if (!plan.SaveCell(spec.checkpoint_dir, result, &save_error)) {
          // The cell's in-memory result is intact; only durability is
          // lost. Count it so the sweep summary can surface the loss —
          // an fprintf alone disappears into scrollback while a rerun
          // silently recomputes the cell.
          ckpt_failures.fetch_add(1, std::memory_order_relaxed);
          if (obs::Enabled()) {
            static thread_local obs::Counter& counter =
                obs::GetCounter("exec.cells.ckpt_write_failed");
            counter.Add(1.0);
          }
          std::fprintf(stderr, "[exec] cell checkpoint write failed: %s\n",
                       save_error.c_str());
        }
      }
      sink.Set(cell.index, std::move(result));
    });
  }
  pool.Wait();
  if (stats != nullptr) {
    stats->cells_completed = completed.load(std::memory_order_relaxed);
    stats->cells_restored = restored.load(std::memory_order_relaxed);
    stats->ckpt_write_failures = ckpt_failures.load(std::memory_order_relaxed);
  }
  return sink.Take();
}

}  // namespace ppn::exec
