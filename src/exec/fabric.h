#ifndef PPN_EXEC_FABRIC_H_
#define PPN_EXEC_FABRIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/experiment.h"

/// \file
/// The sharded multi-process sweep fabric: a coordinator that fans the
/// cells of an `ExperimentSpec` out across WORKER PROCESSES (fork/exec of
/// `ppn_cli sweep-worker`, or any binary speaking the same protocol),
/// with a spill-to-disk work queue, work-stealing, and elastic worker
/// restart. This is what scales a sweep past one address space — and the
/// stepping stone to multi-machine execution (the whole protocol is
/// files; nothing below assumes a shared memory space, only a shared
/// filesystem).
///
/// ## Protocol (everything lives under `fabric_dir`)
///
///   queue/shard-<s>/T<index>.a<attempt>.task   one claimable cell
///   staging/                                   task files mid-write; the
///                                              coordinator publishes by
///                                              rename so shards only ever
///                                              hold complete `.task` files
///   claims/T<index>.a<k>.s<slot>.g<gen>.claim  claimed by worker slot/gen
///   done/T<index>.done                         cell finished + persisted
///   failed/T<index>.a<k>.s<slot>.g<gen>.fail   checkpoint commit failed
///   corrupt/<name>.corrupt                     unreadable/mismatched task
///   cells/cell-<seed>.ckpt                     the ONLY result state
///   obs/worker-<slot>.g<gen>.{log,status,profile.json,trace.json,
///                              stats.jsonl}
///   obs/{coordinator.trace.json,merged.trace.json,merged.stats.jsonl}
///                                              written at assembly when
///                                              tracing/sampling is on
///
/// A task file carries `ppnfab1 <index> <derived_seed hex>`; the worker
/// validates the seed echo against its own `CellPlan`, so a coordinator
/// and worker that disagree about the spec can never silently mix
/// results. A worker CLAIMS a cell by renaming the task file into
/// `claims/` — rename is atomic within a filesystem, so exactly one
/// worker wins — runs it, commits the per-cell checkpoint (the PR-4
/// crash-safe kind), and renames its claim into `done/`. Workers prefer
/// their own shard and STEAL from other shards once it drains.
///
/// Because the only cross-process state is the atomically-committed cell
/// checkpoint, workers are disposable: a worker SIGKILLed mid-cell leaves
/// either no checkpoint (the cell is re-dispatched and recomputed — same
/// key, same seed, same bits) or a complete one (the replacement restores
/// it). Merged results are therefore bit-identical to a single-process
/// run, modulo `wall_seconds`.
///
/// ## Failure matrix (coordinator side)
///
///   worker exits nonzero / dies by signal → requeue its claims, respawn
///     the slot with exponential backoff, bounded by `max_restarts`
///   claim unchanged for `worker_timeout_s` → straggler: re-dispatch a
///     duplicate task (checkpoint commits are idempotent — identical
///     bits — so whoever finishes first wins and the other is harmless).
///     Staleness ages against the coordinator's FIRST-SEEN clock, not the
///     claim file's mtime (rename preserves mtime, which reflects queue
///     wait). Backups are capped per cell but are speculative, not
///     failures: they never spend the abort budget.
///   corrupt/mismatched task file           → rewrite from the
///     coordinator's authoritative cell list, bounded per cell
///   done marker without a loadable ckpt    → drop the marker, requeue
///   cell FAILING `max_cell_attempts` times → abort loudly (worker
///     deaths, corruption, failed commits, lost checkpoints — not
///     straggler backups)
///
/// Observability: `exec.fabric.*` counters (workers spawned / died /
/// restarted, cells stolen / re-dispatched, corrupt queue files, failed
/// checkpoint writes, profiles dropped unmerged), per-worker console
/// logs, and — when obs is on — per-worker profile JSONs whose counters
/// and gauges are merged into the coordinator's registry so one report
/// covers the whole sweep. With `PPN_TRACE_JSON` set, the assembly also
/// stitches the coordinator's and every worker generation's Chrome
/// traces into one Perfetto timeline (obs/trace_merge.h), copied to
/// `$PPN_TRACE_JSON.merged.json`; with `PPN_STATS_JSONL` set, per-worker
/// `ppn.stats.v1` streams are merged to `$PPN_STATS_JSONL.workers.jsonl`.

namespace ppn::exec {

/// Coordinator-side bookkeeping for one fabric sweep. Mirrored into
/// `exec.fabric.*` obs counters when profiling is enabled.
struct FabricStats {
  int64_t workers_spawned = 0;     ///< Including respawns.
  int64_t workers_died = 0;        ///< Nonzero exit or killed by signal.
  int64_t workers_restarted = 0;   ///< Replacement spawns.
  int64_t cells_stolen = 0;        ///< Claimed outside the owner shard.
  int64_t cells_redispatched = 0;  ///< Requeued after death/timeout/loss.
  int64_t queue_corrupt = 0;       ///< Corrupt task files recovered.
  int64_t ckpt_write_failures = 0; ///< Worker-side failed cell commits.
  int64_t cells_restored = 0;      ///< Loaded from pre-existing ckpts.
  int64_t profile_merge_failed = 0;  ///< Worker profiles dropped unmerged.
};

struct FabricOptions {
  /// Worker processes to keep alive while work remains. Must be >= 1.
  int num_processes = 2;

  /// Scratch + handoff directory (created if needed). Unless
  /// `keep_fabric_dir`, it is removed after a fully successful sweep.
  std::string fabric_dir;

  /// Base argv of a worker, e.g. {"/path/ppn_cli", "sweep-worker",
  /// "--datasets", "crypto-a", ...} — flags that rebuild THE SAME spec
  /// the coordinator was given. The fabric appends
  /// `--fabric-dir <dir> --worker-slot <s> --worker-gen <g>`.
  std::vector<std::string> worker_argv;

  /// Claims older than this are considered stragglers and re-dispatched.
  /// < 0 reads `PPN_FABRIC_WORKER_TIMEOUT_S` (default 300).
  double worker_timeout_s = -1.0;

  /// Total worker (re)spawns beyond the initial `num_processes` before
  /// the coordinator gives up. < 0 reads `PPN_FABRIC_MAX_RESTARTS`
  /// (default 8).
  int max_restarts = -1;

  /// FAILURE-driven requeues (worker death, corrupt task, failed
  /// checkpoint commit, lost checkpoint) one cell may absorb before the
  /// sweep aborts. Speculative straggler backups are capped at the same
  /// count per cell but never abort — a cell legitimately slower than
  /// `worker_timeout_s` keeps its original claim running.
  int max_cell_attempts = 4;

  /// Supervision poll interval.
  double poll_interval_s = 0.05;

  /// How long the shutdown path waits for still-live workers to finish
  /// their clean exit (status file, trace + stats stream flush) before
  /// SIGKILLing them. Workers that already exited cost nothing; only a
  /// genuinely hung worker pays the full grace. 0 restores the old
  /// kill-immediately behavior (which loses end-of-run telemetry from
  /// any worker slower to exit than the coordinator's final poll).
  double shutdown_grace_s = 5.0;

  /// Leave `fabric_dir` in place after success (debugging; always left
  /// in place on failure).
  bool keep_fabric_dir = false;

  /// Test hooks. `after_queue_hook` runs after the queue is written but
  /// before any worker spawns (fault injection); `on_spawn` observes
  /// every (slot, pid) spawn.
  std::function<void()> after_queue_hook;
  std::function<void(int slot, long pid)> on_spawn;
};

/// Runs the sweep across worker processes and returns rows in cell
/// enumeration order — bit-identical to `ExperimentRunner::Run` on the
/// same spec (modulo `wall_seconds`), at any process count, and across
/// worker kills. Aborts (PPN_CHECK) when the sweep cannot be completed
/// within the restart/attempt bounds; `stats`, when non-null, receives
/// the supervision counters either way.
std::vector<CellResult> RunSweepFabric(const ExperimentSpec& spec,
                                       const FabricOptions& options,
                                       FabricStats* stats = nullptr);

/// Worker entry point (what `ppn_cli sweep-worker` calls after rebuilding
/// the spec from its flags): claims cells from shard `worker_slot` (then
/// steals), computes or restores each, commits its checkpoint, and marks
/// it done. Returns 0 on a clean drain. Honors the fault-injection knobs
/// `PPN_FABRIC_TEST_KILL_AFTER` / `PPN_FABRIC_TEST_HANG_AFTER`
/// ("<slot>:<cells>") for the fabric test suite.
int FabricWorkerMain(const ExperimentSpec& spec, const std::string& fabric_dir,
                     int worker_slot, int worker_gen);

}  // namespace ppn::exec

#endif  // PPN_EXEC_FABRIC_H_
