#ifndef PPN_EXEC_THREAD_POOL_H_
#define PPN_EXEC_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Fixed-size thread pool for coarse-grained experiment parallelism. Tasks
/// are independent by contract (the `ExperimentRunner` gives every cell its
/// own strategy, RNG stream, and result slot), so the pool needs no futures
/// or task graphs — just submit/wait.

namespace ppn::exec {

/// A fixed-size worker pool executing submitted tasks FIFO.
///
/// `num_threads == 0` makes the pool inline: `Submit` runs the task on the
/// calling thread immediately. This degenerate mode shares every code path
/// with the threaded mode above it, which is what the determinism tests
/// compare against.
///
/// Workers of a pool that saturates the hardware disable the inner OpenMP
/// parallelism of the tensor kernels (see common/parallel.h) so cells never
/// oversubscribe the machine with nested thread teams.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = inline mode).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. In inline mode the task runs before `Submit` returns.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Worker count the pool was built with (0 = inline).
  int num_threads() const { return num_threads_; }

 private:
  /// A queued task plus its enqueue timestamp (feeds the obs
  /// `exec.pool.task_wait.seconds` histogram; the clock read is skipped
  /// when profiling is off) and trace flow id (stitches the submitting
  /// thread's timeline to the worker slice that ran the task; 0 when
  /// tracing is off).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    uint64_t flow_id = 0;
  };

  void WorkerLoop(bool allow_inner_parallel);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;  // Queued + currently running tasks.
  bool shutting_down_ = false;
};

/// Worker count for experiment runners: the `PPN_WORKERS` environment
/// variable when set, otherwise the hardware thread count. Aborts with a
/// clear message when `PPN_WORKERS` is set but is not a non-negative
/// integer (it used to atoi-parse, so `PPN_WORKERS=abc` silently meant 0,
/// i.e. a serial run).
int DefaultWorkerCount();

}  // namespace ppn::exec

#endif  // PPN_EXEC_THREAD_POOL_H_
