#ifndef PPN_TENSOR_VEC_KERNELS_H_
#define PPN_TENSOR_VEC_KERNELS_H_

#include <cstdint>

/// \file
/// The per-ISA kernel table. Each entry is a raw-pointer kernel with the
/// same signature in every implementation; `tensor/dispatch.h` selects
/// one table at startup (CPUID + PPN_SIMD) and `tensor/ops.cc` /
/// `autograd/ops.cc` call through it. Elementwise kernels are enumerated
/// (rather than templated on a functor) because the AVX2 bodies must
/// live in the one TU compiled with -mavx2; the enum covers every hot
/// elementwise op the autograd layer emits. Transcendental forwards
/// (exp/log/tanh/sigmoid/sqrt) are NOT here: libm has no fixed-bits
/// vector counterpart, so they stay on the scalar MapFused path.

namespace ppn::vec {

/// Elementwise kernels of one input (plus up to two float parameters).
enum class UnaryOp : int {
  kAddScalar,  ///< x + p0
  kMulScalar,  ///< x * p0
  kReluFwd,    ///< x > 0 ? x : 0
  kAbsFwd,     ///< |x| (sign bit cleared; NaN payload preserved)
  kClampFwd,   ///< x < p0 ? p0 : (x > p1 ? p1 : x)
};

/// Elementwise kernels of two inputs (plus up to two float parameters).
/// The *Bwd entries fuse an activation derivative with the incoming
/// gradient: a = grad, b = the saved forward tensor (output or input,
/// matching autograd/ops.cc).
enum class BinaryOp : int {
  kAdd,         ///< a + b
  kSub,         ///< a - b
  kMul,         ///< a * b
  kDiv,         ///< a / b
  kTanhBwd,     ///< g * (1 - y*y)           (b = tanh output y)
  kSigmoidBwd,  ///< g * (y * (1 - y))       (b = sigmoid output y)
  kReluBwd,     ///< g * (x > 0 ? 1 : 0)     (b = forward input x)
  kAbsBwd,      ///< g * sign(x), sign(0)=0  (b = forward input x)
  kSqrtBwd,     ///< g * (0.5 / max(y,1e-12))(b = sqrt output y)
  kClampBwd,    ///< g * (p0 < x && x < p1 ? 1 : 0)
};

/// Geometry for the im2col/col2im kernels — a flattened, dependency-free
/// mirror of `Conv2dGeometry` plus the derived sizes (tensor/ops.cc
/// fills it; kernels never recompute shapes).
struct Im2ColArgs {
  int64_t n, c, h, w;          ///< input [N, C, H, W]
  int64_t out_h, out_w;        ///< output spatial dims (stride 1)
  int64_t patch;               ///< c * kernel_h * kernel_w
  int64_t kernel_h, kernel_w;
  int64_t dilation_h, dilation_w;
  int64_t pad_top, pad_left;
};

/// One ISA's kernel set. All pointers are always non-null in a built
/// table. `parallel_ok` mirrors InnerParallelEnabled() at each call.
struct KernelTable {
  /// out[m,n] = A·B where A(i,p) = a[i*lda+p], B rows `b + p*ldb`
  /// contiguous. Single ascending-k accumulator per output element.
  void (*matmul)(const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* out, int64_t m, int64_t n, int64_t k, bool parallel_ok);
  /// Same with A(i,p) = a[p*lda+i] (transposed-A layout).
  void (*matmul_ta)(const float* a, int64_t lda, const float* b, int64_t ldb,
                    float* out, int64_t m, int64_t n, int64_t k,
                    bool parallel_ok);
  /// Lowers input [N,C,H,W] to columns [N*out_h*out_w, patch].
  void (*im2col)(const float* input, float* columns, const Im2ColArgs& args,
                 bool parallel_ok);
  /// Adjoint scatter-add of im2col. `image` must be zero-initialized.
  void (*col2im)(const float* columns, float* image, const Im2ColArgs& args,
                 bool parallel_ok);
  /// Column sums of a [m,n] matrix into out[n]. Writes every output
  /// column exactly once (no zero init required).
  void (*sum_rows)(const float* a, float* out, int64_t m, int64_t n);
  /// out[i,:] = a[i,:] + b[:] for a [m,n] and b [n].
  void (*add_row_vector)(const float* a, const float* b, float* out, int64_t m,
                         int64_t n);
  /// Enumerated elementwise kernels over flat arrays of n floats.
  void (*unary)(UnaryOp op, const float* a, float* out, int64_t n, float p0,
                float p1);
  void (*binary)(BinaryOp op, const float* a, const float* b, float* out,
                 int64_t n, float p0, float p1);
};

/// The portable table (VecScalar). Always available.
const KernelTable& ScalarKernels();

/// The AVX2 table (VecAvx2), or nullptr when this binary was built
/// without the AVX2 translation unit (non-x86 target). Calling into the
/// table on a CPU without AVX2 is illegal — dispatch.cc guards this.
const KernelTable* Avx2KernelsOrNull();

}  // namespace ppn::vec

#endif  // PPN_TENSOR_VEC_KERNELS_H_
