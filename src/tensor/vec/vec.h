#ifndef PPN_TENSOR_VEC_VEC_H_
#define PPN_TENSOR_VEC_VEC_H_

/// \file
/// The `Vectorized<float>` concept: a fixed-width bundle of 8 float
/// lanes with load/store (aligned, unaligned, and masked-partial),
/// arithmetic, an explicitly FMA-free `MulAdd`, min/max, comparisons
/// that produce lane masks, and sign-bit `Blend` selection.
///
/// Two implementations exist:
///   - `VecScalar` (vec_scalar.h): plain loops, compiled everywhere.
///   - `VecAvx2`   (vec_avx2.h):  AVX2 intrinsics, only defined in TUs
///     built with -mavx2 (kernels_avx2.cc).
///
/// Kernels in kernels_impl.h are templates over the implementation, so
/// each translation unit of src/tensor/vec instantiates the full kernel
/// set for exactly one ISA. Runtime selection between the resulting
/// tables happens in tensor/dispatch.{h,cc} (CPUID + PPN_SIMD).
///
/// THE CONTRACT: every lane operation is one correctly-rounded IEEE-754
/// single-precision operation, identical between implementations — no
/// FMA contraction, no approximate reciprocals, no reassociation.
/// Kernels that additionally keep each output element's reduction terms
/// in ascending order with a single accumulator (the repo-wide matmul
/// rule, DESIGN.md §2.4) are therefore bit-identical across VecScalar,
/// VecAvx2, and the pre-SIMD kernels.

#include "tensor/vec/vec_avx2.h"
#include "tensor/vec/vec_scalar.h"

#endif  // PPN_TENSOR_VEC_VEC_H_
