#ifndef PPN_TENSOR_VEC_KERNELS_IMPL_H_
#define PPN_TENSOR_VEC_KERNELS_IMPL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/vec/kernels.h"
#include "tensor/vec/vec.h"

/// \file
/// Kernel bodies, templated on the `Vectorized<float>` implementation.
/// kernels_scalar.cc instantiates them with `VecScalar`; kernels_avx2.cc
/// (the only TU built with -mavx2) instantiates them with `VecAvx2`.
/// Nothing here may depend on the ISA except through the Vec type.
///
/// Bit-identity rules (DESIGN.md §2.8):
///  - Reductions (matmul, sum_rows, col2im) keep ONE accumulator per
///    output element, summed in the reference order. SIMD lanes only
///    ever hold DISTINCT output elements, so widening the vector cannot
///    reorder any element's sum.
///  - Elementwise kernels replicate the scalar expression tree per lane
///    (a select stays a select, a multiply-by-mask stays a multiply).
///  - Tails run the same lane ops under a partial mask (vmaskmovps
///    semantics), never a different formula.

namespace ppn::vec::detail {

// ---------------------------------------------------------------------------
// Elementwise drivers: full vectors, then one masked tail step.
// ---------------------------------------------------------------------------

template <class Vec, class Fn>
inline void ApplyUnary(Fn fn, const float* a, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + Vec::kWidth <= n; i += Vec::kWidth) {
    fn(Vec::LoadU(a + i)).StoreU(out + i);
  }
  const int64_t rest = n - i;
  if (rest > 0) {
    fn(Vec::LoadPartial(a + i, rest)).StorePartial(out + i, rest);
  }
}

template <class Vec, class Fn>
inline void ApplyBinary(Fn fn, const float* a, const float* b, float* out,
                        int64_t n) {
  int64_t i = 0;
  for (; i + Vec::kWidth <= n; i += Vec::kWidth) {
    fn(Vec::LoadU(a + i), Vec::LoadU(b + i)).StoreU(out + i);
  }
  const int64_t rest = n - i;
  if (rest > 0) {
    fn(Vec::LoadPartial(a + i, rest), Vec::LoadPartial(b + i, rest))
        .StorePartial(out + i, rest);
  }
}

template <class Vec>
void UnaryKernel(UnaryOp op, const float* a, float* out, int64_t n, float p0,
                 float p1) {
  const Vec zero = Vec::Zero();
  switch (op) {
    case UnaryOp::kAddScalar: {
      const Vec s = Vec::Broadcast(p0);
      ApplyUnary<Vec>([s](Vec x) { return x + s; }, a, out, n);
      return;
    }
    case UnaryOp::kMulScalar: {
      const Vec s = Vec::Broadcast(p0);
      ApplyUnary<Vec>([s](Vec x) { return x * s; }, a, out, n);
      return;
    }
    case UnaryOp::kReluFwd:
      // x > 0 ? x : 0 — a true select (not a max: NaN must fall through
      // to the zero branch exactly like the scalar ternary).
      ApplyUnary<Vec>(
          [zero](Vec x) { return Vec::Blend(Vec::Gt(x, zero), x, zero); }, a,
          out, n);
      return;
    case UnaryOp::kAbsFwd:
      ApplyUnary<Vec>([](Vec x) { return Vec::Abs(x); }, a, out, n);
      return;
    case UnaryOp::kClampFwd: {
      // x < lo ? lo : (x > hi ? hi : x). Applying the hi-clamp first and
      // letting the lo-clamp override gives the same value for every
      // input (lo <= hi), including NaN (both compares false -> x).
      const Vec lo = Vec::Broadcast(p0);
      const Vec hi = Vec::Broadcast(p1);
      ApplyUnary<Vec>(
          [lo, hi](Vec x) {
            const Vec capped = Vec::Blend(Vec::Gt(x, hi), hi, x);
            return Vec::Blend(Vec::Lt(x, lo), lo, capped);
          },
          a, out, n);
      return;
    }
  }
}

template <class Vec>
void BinaryKernel(BinaryOp op, const float* a, const float* b, float* out,
                  int64_t n, float p0, float p1) {
  const Vec zero = Vec::Zero();
  const Vec one = Vec::Broadcast(1.0f);
  switch (op) {
    case BinaryOp::kAdd:
      ApplyBinary<Vec>([](Vec x, Vec y) { return x + y; }, a, b, out, n);
      return;
    case BinaryOp::kSub:
      ApplyBinary<Vec>([](Vec x, Vec y) { return x - y; }, a, b, out, n);
      return;
    case BinaryOp::kMul:
      ApplyBinary<Vec>([](Vec x, Vec y) { return x * y; }, a, b, out, n);
      return;
    case BinaryOp::kDiv:
      ApplyBinary<Vec>([](Vec x, Vec y) { return x / y; }, a, b, out, n);
      return;
    case BinaryOp::kTanhBwd:
      ApplyBinary<Vec>([one](Vec g, Vec y) { return g * (one - y * y); }, a, b,
                       out, n);
      return;
    case BinaryOp::kSigmoidBwd:
      ApplyBinary<Vec>([one](Vec g, Vec y) { return g * (y * (one - y)); }, a,
                       b, out, n);
      return;
    case BinaryOp::kReluBwd:
      // g * (x > 0 ? 1 : 0): the scalar code MULTIPLIES by the mask
      // (Inf * 0 => NaN), so the vector path must too.
      ApplyBinary<Vec>(
          [zero, one](Vec g, Vec x) {
            return g * Vec::Blend(Vec::Gt(x, zero), one, zero);
          },
          a, b, out, n);
      return;
    case BinaryOp::kAbsBwd: {
      const Vec neg_one = Vec::Broadcast(-1.0f);
      ApplyBinary<Vec>(
          [zero, one, neg_one](Vec g, Vec x) {
            const Vec negative = Vec::Blend(Vec::Lt(x, zero), neg_one, zero);
            return g * Vec::Blend(Vec::Gt(x, zero), one, negative);
          },
          a, b, out, n);
      return;
    }
    case BinaryOp::kSqrtBwd: {
      const Vec eps = Vec::Broadcast(1e-12f);
      const Vec half = Vec::Broadcast(0.5f);
      ApplyBinary<Vec>(
          [eps, half](Vec g, Vec y) {
            const Vec floored = Vec::Blend(Vec::Gt(y, eps), y, eps);
            return g * (half / floored);
          },
          a, b, out, n);
      return;
    }
    case BinaryOp::kClampBwd: {
      const Vec lo = Vec::Broadcast(p0);
      const Vec hi = Vec::Broadcast(p1);
      ApplyBinary<Vec>(
          [zero, one, lo, hi](Vec g, Vec x) {
            const Vec inside = Vec::And(Vec::Gt(x, lo), Vec::Lt(x, hi));
            return g * Vec::Blend(inside, one, zero);
          },
          a, b, out, n);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked matmul. Same structure as the pre-SIMD kernel (8-row register
// blocks, j vectorized, ascending-k single accumulators); the interior
// microkernel now holds its 8 j-lane accumulators in Vec registers.
// ---------------------------------------------------------------------------

constexpr int64_t kIB = 8;

template <class Vec, bool kATransposed>
inline void MicroKernel(const float* a, int64_t lda, const float* b,
                        int64_t ldb, float* out, int64_t ldo, int64_t k) {
  Vec acc[kIB];
  for (int64_t i = 0; i < kIB; ++i) acc[i] = Vec::Zero();
  for (int64_t p = 0; p < k; ++p) {
    const Vec b_row = Vec::LoadU(b + p * ldb);
    for (int64_t i = 0; i < kIB; ++i) {
      const float av = kATransposed ? a[p * lda + i] : a[i * lda + p];
      acc[i] = Vec::MulAdd(Vec::Broadcast(av), b_row, acc[i]);
    }
  }
  for (int64_t i = 0; i < kIB; ++i) acc[i].StoreU(out + i * ldo);
}

// Variable-size remainder block (right/bottom edges): scalar loops with
// the same accumulator discipline. Edge work is O(edge * k); keeping it
// scalar costs little and stays trivially bit-identical.
template <class Vec, bool kATransposed>
inline void EdgeBlock(const float* a, int64_t lda, const float* b, int64_t ldb,
                      float* out, int64_t ldo, int64_t k, int64_t ib,
                      int64_t jb) {
  float acc[kIB][Vec::kWidth] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * ldb;
    for (int64_t i = 0; i < ib; ++i) {
      const float av = kATransposed ? a[p * lda + i] : a[i * lda + p];
      for (int64_t j = 0; j < jb; ++j) acc[i][j] += av * b_row[j];
    }
  }
  for (int64_t i = 0; i < ib; ++i) {
    for (int64_t j = 0; j < jb; ++j) out[i * ldo + j] = acc[i][j];
  }
}

template <class Vec, bool kATransposed>
void BlockedMatMul(const float* a, int64_t lda, const float* b, int64_t ldb,
                   float* out, int64_t m, int64_t n, int64_t k,
                   bool parallel_ok) {
  constexpr int64_t kJB = Vec::kWidth;
  // OpenMP splits row blocks; every output element is computed wholly by
  // one thread with the same per-element order, so any thread count gives
  // bit-identical results.
#ifdef _OPENMP
#pragma omp parallel for if (parallel_ok && m * n * k > 65536) schedule(static)
#else
  (void)parallel_ok;
#endif
  for (int64_t i0 = 0; i0 < m; i0 += kIB) {
    const int64_t ib = m - i0 < kIB ? m - i0 : kIB;
    // A's row-block origin: row i0 in the row-major layout, column i0 in
    // the transposed layout.
    const float* a_block = kATransposed ? a + i0 : a + i0 * lda;
    float* out_block = out + i0 * n;
    int64_t j0 = 0;
    if (ib == kIB) {
      for (; j0 + kJB <= n; j0 += kJB) {
        MicroKernel<Vec, kATransposed>(a_block, lda, b + j0, ldb,
                                       out_block + j0, n, k);
      }
    }
    for (; j0 < n; j0 += kJB) {
      const int64_t jb = n - j0 < kJB ? n - j0 : kJB;
      EdgeBlock<Vec, kATransposed>(a_block, lda, b + j0, ldb, out_block + j0, n,
                                   k, ib, jb);
    }
  }
}

// ---------------------------------------------------------------------------
// im2col / col2im.
// ---------------------------------------------------------------------------

// For output pixels whose every tap is in bounds, the patch is a fixed
// gather pattern: tap (ch, ky, kx) reads base + ch*h*w + ky*dil_h*w +
// kx*dil_w where base is the pixel's top-left input element. The
// interior fast path precomputes those offsets once and gathers; only
// boundary pixels (and inputs too large for int32 offsets) take the
// bounds-checked scalar loop. Pure data movement: bit-identity is free.
template <class Vec>
void Im2Col(const float* pi, float* pc, const Im2ColArgs& g, bool parallel_ok) {
  const int64_t plane = g.h * g.w;
  const bool gatherable = g.c * plane <= INT32_MAX;
  std::vector<int32_t> rel;
  if (gatherable) {
    rel.reserve(static_cast<size_t>(g.patch));
    for (int64_t ch = 0; ch < g.c; ++ch) {
      for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
        for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
          rel.push_back(static_cast<int32_t>(ch * plane + ky * g.dilation_h * g.w +
                                             kx * g.dilation_w));
        }
      }
    }
  }
  const int32_t* rel_data = rel.data();
  // Tap extents: pixel (oy, ox) is interior iff its first and last taps
  // are in bounds on both axes.
  const int64_t span_y = g.dilation_h * (g.kernel_h - 1);
  const int64_t span_x = g.dilation_w * (g.kernel_w - 1);
#ifdef _OPENMP
#pragma omp parallel for \
    if (parallel_ok && g.n * g.out_h * g.out_w * g.patch > 65536) \
    schedule(static)
#else
  (void)parallel_ok;
#endif
  for (int64_t b = 0; b < g.n; ++b) {
    const float* batch = pi + b * g.c * plane;
    for (int64_t oy = 0; oy < g.out_h; ++oy) {
      const int64_t y0 = oy - g.pad_top;
      const bool y_interior = y0 >= 0 && y0 + span_y < g.h;
      for (int64_t ox = 0; ox < g.out_w; ++ox) {
        float* col = pc + ((b * g.out_h + oy) * g.out_w + ox) * g.patch;
        const int64_t x0 = ox - g.pad_left;
        if (gatherable && y_interior && x0 >= 0 && x0 + span_x < g.w) {
          const float* base = batch + y0 * g.w + x0;
          int64_t ci = 0;
          for (; ci + Vec::kWidth <= g.patch; ci += Vec::kWidth) {
            Vec::Gather(base, rel_data + ci).StoreU(col + ci);
          }
          for (; ci < g.patch; ++ci) col[ci] = base[rel_data[ci]];
          continue;
        }
        int64_t col_index = 0;
        for (int64_t ch = 0; ch < g.c; ++ch) {
          for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const int64_t in_y = y0 + ky * g.dilation_h;
            for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const int64_t in_x = x0 + kx * g.dilation_w;
              float value = 0.0f;
              if (in_y >= 0 && in_y < g.h && in_x >= 0 && in_x < g.w) {
                value = batch[(ch * g.h + in_y) * g.w + in_x];
              }
              col[col_index++] = value;
            }
          }
        }
      }
    }
  }
}

// Adjoint scatter-add. Overlapping patches accumulate into shared
// pixels, so vector lanes could not hold distinct output elements along
// the patch axis in general; the kernel stays scalar (its cost is small
// next to the conv matmuls) and identical in both tables.
template <class Vec>
void Col2Im(const float* pc, float* pi, const Im2ColArgs& g, bool parallel_ok) {
  // Parallel over the batch only: overlapping patches of one image
  // accumulate into shared pixels, but images never alias each other, and
  // the within-image accumulation order is untouched (bit-identical).
#ifdef _OPENMP
#pragma omp parallel for \
    if (parallel_ok && g.n * g.out_h * g.out_w * g.patch > 65536) \
    schedule(static)
#else
  (void)parallel_ok;
#endif
  for (int64_t b = 0; b < g.n; ++b) {
    for (int64_t oy = 0; oy < g.out_h; ++oy) {
      for (int64_t ox = 0; ox < g.out_w; ++ox) {
        const float* col = pc + ((b * g.out_h + oy) * g.out_w + ox) * g.patch;
        int64_t col_index = 0;
        for (int64_t ch = 0; ch < g.c; ++ch) {
          for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const int64_t in_y = oy - g.pad_top + ky * g.dilation_h;
            for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const int64_t in_x = ox - g.pad_left + kx * g.dilation_w;
              const float value = col[col_index++];
              if (in_y >= 0 && in_y < g.h && in_x >= 0 && in_x < g.w) {
                pi[((b * g.c + ch) * g.h + in_y) * g.w + in_x] += value;
              }
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Row reductions / broadcasts. Lanes are distinct output columns; each
// out[j] sums its m terms in ascending row order, exactly the reference
// loop.
// ---------------------------------------------------------------------------

template <class Vec>
void SumRows(const float* a, float* out, int64_t m, int64_t n) {
  int64_t j = 0;
  for (; j + Vec::kWidth <= n; j += Vec::kWidth) {
    Vec acc = Vec::Zero();
    for (int64_t i = 0; i < m; ++i) {
      acc = acc + Vec::LoadU(a + i * n + j);
    }
    acc.StoreU(out + j);
  }
  const int64_t rest = n - j;
  if (rest > 0) {
    Vec acc = Vec::Zero();
    for (int64_t i = 0; i < m; ++i) {
      acc = acc + Vec::LoadPartial(a + i * n + j, rest);
    }
    acc.StorePartial(out + j, rest);
  }
}

template <class Vec>
void AddRowVector(const float* a, const float* b, float* out, int64_t m,
                  int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* row = a + i * n;
    float* out_row = out + i * n;
    int64_t j = 0;
    for (; j + Vec::kWidth <= n; j += Vec::kWidth) {
      (Vec::LoadU(row + j) + Vec::LoadU(b + j)).StoreU(out_row + j);
    }
    const int64_t rest = n - j;
    if (rest > 0) {
      (Vec::LoadPartial(row + j, rest) + Vec::LoadPartial(b + j, rest))
          .StorePartial(out_row + j, rest);
    }
  }
}

template <class Vec>
KernelTable MakeTable() {
  KernelTable table;
  table.matmul = &BlockedMatMul<Vec, /*kATransposed=*/false>;
  table.matmul_ta = &BlockedMatMul<Vec, /*kATransposed=*/true>;
  table.im2col = &Im2Col<Vec>;
  table.col2im = &Col2Im<Vec>;
  table.sum_rows = &SumRows<Vec>;
  table.add_row_vector = &AddRowVector<Vec>;
  table.unary = &UnaryKernel<Vec>;
  table.binary = &BinaryKernel<Vec>;
  return table;
}

}  // namespace ppn::vec::detail

#endif  // PPN_TENSOR_VEC_KERNELS_IMPL_H_
