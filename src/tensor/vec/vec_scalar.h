#ifndef PPN_TENSOR_VEC_VEC_SCALAR_H_
#define PPN_TENSOR_VEC_VEC_SCALAR_H_

#include <bit>
#include <cstdint>

/// \file
/// Portable fallback implementation of the `Vectorized<float>` concept
/// (see vec.h for the concept contract): eight lanes held in a plain
/// float array, every operation a fixed-count loop the compiler may
/// autovectorize to whatever the baseline ISA offers. Semantics mirror
/// the AVX2 implementation EXACTLY — including the quirks:
///
///  - `Blend` and the partial load/store select on the lane's TOP BIT
///    only (vblendvps / vmaskmovps semantics), not on zero/non-zero.
///  - Comparison masks are all-ones / all-zero lane bit patterns.
///  - `Min`/`Max` return the SECOND operand when either lane is NaN
///    (vminps/vmaxps semantics: `b < a ? b : a`), unlike std::min.
///  - `LoadPartial` fills masked-out lanes with +0.0f.
///
/// Because every lane op is the same IEEE-754 single operation the AVX2
/// lane performs, kernels written against this concept produce the same
/// bits under either implementation.

namespace ppn::vec {

class VecScalar {
 public:
  static constexpr int kWidth = 8;

  VecScalar() = default;

  static VecScalar Broadcast(float value) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) out.lane_[i] = value;
    return out;
  }

  static VecScalar Zero() { return Broadcast(0.0f); }

  /// Unaligned load of kWidth floats.
  static VecScalar LoadU(const float* ptr) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) out.lane_[i] = ptr[i];
    return out;
  }

  /// Aligned load (pointer must be 32-byte aligned; the pool's 64-byte
  /// buffers qualify at offset 0).
  static VecScalar Load(const float* ptr) { return LoadU(ptr); }

  /// Masked load of the first `count` lanes; the rest read as +0.0f
  /// (vmaskmovps semantics). 0 <= count <= kWidth.
  static VecScalar LoadPartial(const float* ptr, int64_t count) {
    VecScalar out = Zero();
    for (int64_t i = 0; i < count; ++i) out.lane_[i] = ptr[i];
    return out;
  }

  void StoreU(float* ptr) const {
    for (int i = 0; i < kWidth; ++i) ptr[i] = lane_[i];
  }

  void Store(float* ptr) const { StoreU(ptr); }

  /// Masked store of the first `count` lanes; the rest of the
  /// destination is untouched.
  void StorePartial(float* ptr, int64_t count) const {
    for (int64_t i = 0; i < count; ++i) ptr[i] = lane_[i];
  }

  friend VecScalar operator+(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) out.lane_[i] = a.lane_[i] + b.lane_[i];
    return out;
  }
  friend VecScalar operator-(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) out.lane_[i] = a.lane_[i] - b.lane_[i];
    return out;
  }
  friend VecScalar operator*(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) out.lane_[i] = a.lane_[i] * b.lane_[i];
    return out;
  }
  friend VecScalar operator/(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) out.lane_[i] = a.lane_[i] / b.lane_[i];
    return out;
  }

  /// acc + a*b as two separate correctly-rounded operations — never an
  /// FMA (-ffp-contract=off semantics; the bit-identity contract).
  static VecScalar MulAdd(const VecScalar& a, const VecScalar& b,
                          const VecScalar& acc) {
    return acc + a * b;
  }

  /// vminps: per lane `b < a ? b : a` (returns b when either is NaN).
  static VecScalar Min(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) {
      out.lane_[i] = b.lane_[i] < a.lane_[i] ? b.lane_[i] : a.lane_[i];
    }
    return out;
  }

  /// vmaxps: per lane `a < b ? b : a`.
  static VecScalar Max(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) {
      out.lane_[i] = a.lane_[i] < b.lane_[i] ? b.lane_[i] : a.lane_[i];
    }
    return out;
  }

  /// All-ones mask where a > b (ordered, quiet — vcmpps _CMP_GT_OQ).
  static VecScalar Gt(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) {
      out.lane_[i] =
          std::bit_cast<float>(a.lane_[i] > b.lane_[i] ? 0xFFFFFFFFu : 0u);
    }
    return out;
  }

  /// All-ones mask where a < b.
  static VecScalar Lt(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) {
      out.lane_[i] =
          std::bit_cast<float>(a.lane_[i] < b.lane_[i] ? 0xFFFFFFFFu : 0u);
    }
    return out;
  }

  /// Bitwise AND of lane patterns (for combining masks).
  static VecScalar And(const VecScalar& a, const VecScalar& b) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) {
      out.lane_[i] = std::bit_cast<float>(std::bit_cast<uint32_t>(a.lane_[i]) &
                                          std::bit_cast<uint32_t>(b.lane_[i]));
    }
    return out;
  }

  /// Clears every sign bit (vandps with 0x7FFFFFFF): exact std::fabs,
  /// including for NaN payloads.
  static VecScalar Abs(const VecScalar& a) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) {
      out.lane_[i] = std::bit_cast<float>(std::bit_cast<uint32_t>(a.lane_[i]) &
                                          0x7FFFFFFFu);
    }
    return out;
  }

  /// vgatherdps: lane i reads base[idx[i]]. All eight indices must be
  /// in bounds (no masking).
  static VecScalar Gather(const float* base, const int32_t* idx) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) out.lane_[i] = base[idx[i]];
    return out;
  }

  /// vblendvps: lane i takes `if_true` when mask lane i's TOP BIT is
  /// set, else `if_false`.
  static VecScalar Blend(const VecScalar& mask, const VecScalar& if_true,
                         const VecScalar& if_false) {
    VecScalar out;
    for (int i = 0; i < kWidth; ++i) {
      const bool top = (std::bit_cast<uint32_t>(mask.lane_[i]) >> 31) != 0;
      out.lane_[i] = top ? if_true.lane_[i] : if_false.lane_[i];
    }
    return out;
  }

 private:
  float lane_[kWidth];
};

}  // namespace ppn::vec

#endif  // PPN_TENSOR_VEC_VEC_SCALAR_H_
