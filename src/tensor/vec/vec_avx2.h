#ifndef PPN_TENSOR_VEC_VEC_AVX2_H_
#define PPN_TENSOR_VEC_VEC_AVX2_H_

/// \file
/// AVX2 implementation of the `Vectorized<float>` concept (vec.h). Only
/// meaningful in translation units compiled with -mavx2; everything is
/// guarded so including this header from a portable TU is harmless.
///
/// The whole point of this type is bit-identity with VecScalar: every
/// lane op is one correctly-rounded IEEE-754 single operation, `MulAdd`
/// is an explicit vmulps+vaddps pair (never vfmadd — the TU compiles
/// with -ffp-contract=off and without -mfma), and the comparison /
/// blend / masked-memory semantics are the ISA's, which VecScalar
/// mirrors loop-for-loop.

#ifdef __AVX2__

#include <immintrin.h>

#include <cstdint>

namespace ppn::vec {

class VecAvx2 {
 public:
  static constexpr int kWidth = 8;

  VecAvx2() = default;
  explicit VecAvx2(__m256 raw) : raw_(raw) {}

  static VecAvx2 Broadcast(float value) {
    return VecAvx2(_mm256_set1_ps(value));
  }

  static VecAvx2 Zero() { return VecAvx2(_mm256_setzero_ps()); }

  static VecAvx2 LoadU(const float* ptr) {
    return VecAvx2(_mm256_loadu_ps(ptr));
  }

  static VecAvx2 Load(const float* ptr) { return VecAvx2(_mm256_load_ps(ptr)); }

  /// vmaskmovps load: lanes < count are read, the rest are +0.0f. Never
  /// touches memory past ptr[count-1], so tails at the end of a mapped
  /// region are safe.
  static VecAvx2 LoadPartial(const float* ptr, int64_t count) {
    return VecAvx2(_mm256_maskload_ps(ptr, TailMask(count)));
  }

  void StoreU(float* ptr) const { _mm256_storeu_ps(ptr, raw_); }

  void Store(float* ptr) const { _mm256_store_ps(ptr, raw_); }

  void StorePartial(float* ptr, int64_t count) const {
    _mm256_maskstore_ps(ptr, TailMask(count), raw_);
  }

  friend VecAvx2 operator+(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_add_ps(a.raw_, b.raw_));
  }
  friend VecAvx2 operator-(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_sub_ps(a.raw_, b.raw_));
  }
  friend VecAvx2 operator*(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_mul_ps(a.raw_, b.raw_));
  }
  friend VecAvx2 operator/(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_div_ps(a.raw_, b.raw_));
  }

  static VecAvx2 MulAdd(const VecAvx2& a, const VecAvx2& b,
                        const VecAvx2& acc) {
    // Explicit mul + add; the TU is built without -mfma and with
    // -ffp-contract=off, so this can never contract into an FMA.
    return VecAvx2(_mm256_add_ps(acc.raw_, _mm256_mul_ps(a.raw_, b.raw_)));
  }

  static VecAvx2 Min(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_min_ps(a.raw_, b.raw_));
  }

  static VecAvx2 Max(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_max_ps(a.raw_, b.raw_));
  }

  static VecAvx2 Gt(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_cmp_ps(a.raw_, b.raw_, _CMP_GT_OQ));
  }

  static VecAvx2 Lt(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_cmp_ps(a.raw_, b.raw_, _CMP_LT_OQ));
  }

  static VecAvx2 And(const VecAvx2& a, const VecAvx2& b) {
    return VecAvx2(_mm256_and_ps(a.raw_, b.raw_));
  }

  static VecAvx2 Abs(const VecAvx2& a) {
    const __m256 sign_mask = _mm256_set1_ps(-0.0f);
    return VecAvx2(_mm256_andnot_ps(sign_mask, a.raw_));
  }

  static VecAvx2 Gather(const float* base, const int32_t* idx) {
    const __m256i vindex =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return VecAvx2(_mm256_i32gather_ps(base, vindex, 4));
  }

  static VecAvx2 Blend(const VecAvx2& mask, const VecAvx2& if_true,
                       const VecAvx2& if_false) {
    return VecAvx2(_mm256_blendv_ps(if_false.raw_, if_true.raw_, mask.raw_));
  }

 private:
  /// Integer mask with the top bit set in lanes [0, count).
  static __m256i TailMask(int64_t count) {
    const __m256i lane_index = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(count)),
                              lane_index);
  }

  __m256 raw_;
};

}  // namespace ppn::vec

#endif  // __AVX2__

#endif  // PPN_TENSOR_VEC_VEC_AVX2_H_
