// AVX2 kernel table: kernels_impl.h instantiated with VecAvx2.
//
// This is the ONLY translation unit in the project compiled with -mavx2
// (see src/tensor/CMakeLists.txt), and deliberately WITHOUT -mfma and
// with -ffp-contract=off: the mul+add pairs in the kernels must stay
// separate correctly-rounded operations so the AVX2 path is
// bit-identical to the scalar one. The compiler may use AVX2 anywhere
// in this file, which is safe because dispatch.cc only ever calls
// through this table after CPUID confirms AVX2 support.
//
// On targets where the compiler does not define __AVX2__ even for this
// TU (non-x86 builds get no -mavx2 flag), the table degrades to absent
// and dispatch falls back to the scalar path.

#include "tensor/vec/kernels.h"

#ifdef __AVX2__

#include "tensor/vec/kernels_impl.h"

namespace ppn::vec {

const KernelTable* Avx2KernelsOrNull() {
  static const KernelTable table = detail::MakeTable<VecAvx2>();
  return &table;
}

}  // namespace ppn::vec

#else  // !__AVX2__

namespace ppn::vec {

const KernelTable* Avx2KernelsOrNull() { return nullptr; }

}  // namespace ppn::vec

#endif  // __AVX2__
