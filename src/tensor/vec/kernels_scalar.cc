// Portable kernel table: kernels_impl.h instantiated with VecScalar.
// Compiled with the project's baseline flags (no -mavx2), so this TU —
// and therefore the scalar dispatch path — runs on any x86-64 host.

#include "tensor/vec/kernels.h"
#include "tensor/vec/kernels_impl.h"

namespace ppn::vec {

const KernelTable& ScalarKernels() {
  static const KernelTable table = detail::MakeTable<VecScalar>();
  return table;
}

}  // namespace ppn::vec
