#include "tensor/dispatch.h"

#include <atomic>
#include <cstring>

#include "common/check.h"
#include "common/env.h"

namespace ppn::dispatch {

namespace {

const vec::KernelTable* TableFor(SimdPath path) {
  if (path == SimdPath::kAvx2) {
    const vec::KernelTable* table = vec::Avx2KernelsOrNull();
    PPN_CHECK(table != nullptr)
        << "AVX2 kernel table requested but this binary was built without it";
    return table;
  }
  return &vec::ScalarKernels();
}

SimdPath InitialPath() {
  // env::StringOr treats set-but-empty like unset; an empty PPN_SIMD
  // therefore means "auto", matching the other PPN_* string knobs.
  const std::string spec = env::StringOr("PPN_SIMD", "auto");
  return ResolvePathSpec(spec.c_str());
}

// The resolved path/table. Resolution happens once on first kernel use
// (or earlier, from SetActivePathForTest); after that the hot path is a
// single relaxed load of the table pointer.
std::atomic<const vec::KernelTable*>& TablePointer() {
  static std::atomic<const vec::KernelTable*> pointer{nullptr};
  return pointer;
}

std::atomic<int>& PathCell() {
  static std::atomic<int> cell{static_cast<int>(SimdPath::kScalar)};
  return cell;
}

void EnsureResolved() {
  // Resolution is idempotent (same env, same CPU), so a racing first
  // use on two threads writes the same values; relaxed order suffices.
  if (TablePointer().load(std::memory_order_acquire) != nullptr) return;
  const SimdPath path = InitialPath();
  PathCell().store(static_cast<int>(path), std::memory_order_relaxed);
  TablePointer().store(TableFor(path), std::memory_order_release);
}

}  // namespace

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && vec::Avx2KernelsOrNull() != nullptr;
#else
  return false;
#endif
}

SimdPath ResolvePathSpec(const char* spec) {
  PPN_CHECK(spec != nullptr) << "PPN_SIMD: null path spec";
  if (std::strcmp(spec, "auto") == 0) {
    return Avx2Available() ? SimdPath::kAvx2 : SimdPath::kScalar;
  }
  if (std::strcmp(spec, "scalar") == 0) return SimdPath::kScalar;
  if (std::strcmp(spec, "avx2") == 0) {
    PPN_CHECK(Avx2Available())
        << "PPN_SIMD=avx2 forced, but AVX2 is unavailable on this host "
           "(CPU without AVX2, or a build without the AVX2 kernel TU); "
           "use PPN_SIMD=auto or PPN_SIMD=scalar";
    return SimdPath::kAvx2;
  }
  PPN_CHECK(false) << "PPN_SIMD: unknown value \"" << spec
                   << "\" (expected auto | avx2 | scalar)";
  return SimdPath::kScalar;  // Unreachable.
}

SimdPath ActivePath() {
  EnsureResolved();
  return static_cast<SimdPath>(PathCell().load(std::memory_order_relaxed));
}

const vec::KernelTable& Kernels() {
  const vec::KernelTable* table =
      TablePointer().load(std::memory_order_acquire);
  if (table == nullptr) {
    EnsureResolved();
    table = TablePointer().load(std::memory_order_acquire);
  }
  return *table;
}

const char* PathName(SimdPath path) {
  return path == SimdPath::kAvx2 ? "avx2" : "scalar";
}

SimdPath SetActivePathForTest(SimdPath path) {
  EnsureResolved();
  const vec::KernelTable* table = TableFor(path);  // Aborts if unavailable.
  const SimdPath previous = static_cast<SimdPath>(
      PathCell().exchange(static_cast<int>(path), std::memory_order_relaxed));
  TablePointer().store(table, std::memory_order_release);
  return previous;
}

}  // namespace ppn::dispatch
