#ifndef PPN_TENSOR_DISPATCH_H_
#define PPN_TENSOR_DISPATCH_H_

#include "tensor/vec/kernels.h"

/// \file
/// Runtime SIMD dispatch: one portable binary, the widest kernels the
/// host supports. At first kernel use the active `vec::KernelTable` is
/// resolved once from CPUID plus the `PPN_SIMD` env knob:
///
///   PPN_SIMD=auto    (default) AVX2 when the CPU has it, else scalar.
///   PPN_SIMD=avx2    Force the AVX2 table; aborts when the CPU (or the
///                    build) lacks AVX2 — forcing must never silently
///                    degrade.
///   PPN_SIMD=scalar  Force the portable table (CI runs a full-test
///                    lane this way; also the A/B side of bench diffs).
///
/// Any other value aborts with a message naming the knob. Both tables
/// produce bit-identical results for every kernel (tests/tensor/
/// kernel_equiv_test.cc runs the whole suite under each forced path),
/// so the choice affects throughput only.

namespace ppn::dispatch {

enum class SimdPath : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when the CPU reports AVX2 *and* this binary carries the AVX2
/// kernel table.
bool Avx2Available();

/// Parses a PPN_SIMD value ("auto" | "avx2" | "scalar") into a concrete
/// path, resolving "auto" via `Avx2Available`. Aborts on malformed
/// values and on forcing an unavailable path.
SimdPath ResolvePathSpec(const char* spec);

/// The path selected for this process (resolved once, then cached).
SimdPath ActivePath();

/// Kernel table for `ActivePath()`. The hot-path accessor: one relaxed
/// atomic pointer load.
const vec::KernelTable& Kernels();

/// Human-readable path name ("scalar" / "avx2").
const char* PathName(SimdPath path);

/// Swaps the active path at runtime; returns the previous path. Aborts
/// if the requested path is unavailable. For tests and benchmarks —
/// production code selects via PPN_SIMD.
SimdPath SetActivePathForTest(SimdPath path);

/// RAII path override for tests.
class ScopedForcePath {
 public:
  explicit ScopedForcePath(SimdPath path)
      : previous_(SetActivePathForTest(path)) {}
  ~ScopedForcePath() { SetActivePathForTest(previous_); }

  ScopedForcePath(const ScopedForcePath&) = delete;
  ScopedForcePath& operator=(const ScopedForcePath&) = delete;

 private:
  SimdPath previous_;
};

}  // namespace ppn::dispatch

#endif  // PPN_TENSOR_DISPATCH_H_
