#ifndef PPN_TENSOR_OPS_H_
#define PPN_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "tensor/tensor.h"
#include "tensor/vec/kernels.h"

/// \file
/// Raw (non-differentiable) tensor kernels. The autograd layer composes
/// these into differentiable operations. All binary elementwise kernels
/// require identical shapes; broadcasting is handled one level up.
///
/// Kernel rules (see DESIGN.md "Memory & kernel architecture" and §2.8):
///  - Outputs that are fully overwritten come from `Tensor::Uninitialized`
///    (skips the zero-fill); accumulating outputs zero-init.
///  - Every matmul variant accumulates each output element's k terms in
///    ascending order with a single float accumulator, so blocked /
///    vectorized / OpenMP versions stay bit-identical to the naive
///    reference loops at any block size or thread count.
///  - Hot kernels route through `tensor/dispatch.h` to a per-ISA
///    `vec::KernelTable` (scalar always; AVX2 when the CPU has it, or as
///    forced by PPN_SIMD). Every table obeys the same accumulation-order
///    contract, so the dispatch choice never changes any output bit.

namespace ppn {

/// c = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// c = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
/// c = a * b elementwise (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = a / b elementwise (same shape).
Tensor Div(const Tensor& a, const Tensor& b);

/// c = a + s.
Tensor AddScalar(const Tensor& a, float s);
/// c = a * s.
Tensor MulScalar(const Tensor& a, float s);

/// Dispatched elementwise kernel over one input: out_i = op(a_i; p0, p1).
/// See `vec::UnaryOp` for the op catalogue. Used by the autograd layer
/// for activation forwards that have an enumerated kernel.
Tensor EltwiseUnary(vec::UnaryOp op, const Tensor& a, float p0 = 0.0f,
                    float p1 = 0.0f);

/// Dispatched elementwise kernel over two same-shaped inputs:
/// out_i = op(a_i, b_i; p0, p1). The *Bwd ops fuse an activation
/// derivative with the incoming gradient (a = grad, b = saved tensor).
Tensor EltwiseBinary(vec::BinaryOp op, const Tensor& a, const Tensor& b,
                     float p0 = 0.0f, float p1 = 0.0f);

/// Applies `fn` elementwise with static dispatch: the functor inlines
/// into the loop (no per-element `std::function` call). This is the hot
/// path used by the autograd activations.
template <typename Fn>
Tensor MapFused(const Tensor& a, Fn fn) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.Data();
  float* po = out.MutableData();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

/// Applies `fn(a_i, b_i)` elementwise with static dispatch (same shape).
template <typename Fn>
Tensor ZipMapFused(const Tensor& a, const Tensor& b, Fn fn) {
  PPN_CHECK(SameShape(a, b))
      << "ZipMapFused: shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

/// Applies `fn` elementwise. Type-erased fallback API: prefer `MapFused`
/// on hot paths (a `std::function` call per element is ~10x slower).
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

/// Applies `fn(a_i, b_i)` elementwise (same shape). Type-erased fallback
/// API: prefer `ZipMapFused` on hot paths.
Tensor ZipMap(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& fn);

/// Matrix product of a [m,k] and b [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Matrix product a^T b of a [k,m] and b [k,n] -> [m,n].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

/// Matrix product a b^T of a [m,k] and b [n,k] -> [m,n].
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor Transpose2D(const Tensor& a);

/// Sum of all elements.
double SumAll(const Tensor& a);

/// Mean of all elements (numel must be > 0).
double MeanAll(const Tensor& a);

/// Column sums of a [m,n] matrix -> [n].
Tensor SumRows(const Tensor& a);

/// Broadcast-add a row vector b [n] to every row of a [m,n].
Tensor AddRowVector(const Tensor& a, const Tensor& b);

/// Concatenation of tensors along `axis`. All inputs must agree on every
/// other dimension.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Slice of length `length` starting at `start` along `axis` (copy).
Tensor Narrow(const Tensor& a, int axis, int64_t start, int64_t length);

/// Writes `src` into `dst` at offset `start` along `axis` (in place;
/// dst and src must agree on every other dimension).
void NarrowInto(Tensor* dst, const Tensor& src, int axis, int64_t start);

/// Uniform random tensor in [lo, hi).
Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi, Rng* rng);

/// Normal random tensor.
Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev,
                    Rng* rng);

/// Parameters of a 2-D convolution lowering. Stride is fixed at 1 (the only
/// stride the paper's architecture uses).
struct Conv2dGeometry {
  int64_t kernel_h = 1;
  int64_t kernel_w = 1;
  int64_t dilation_h = 1;
  int64_t dilation_w = 1;
  int64_t pad_top = 0;
  int64_t pad_bottom = 0;
  int64_t pad_left = 0;
  int64_t pad_right = 0;

  /// Output height for input height `h` (stride 1).
  int64_t OutH(int64_t h) const {
    return h + pad_top + pad_bottom - dilation_h * (kernel_h - 1);
  }
  /// Output width for input width `w` (stride 1).
  int64_t OutW(int64_t w) const {
    return w + pad_left + pad_right - dilation_w * (kernel_w - 1);
  }
};

/// Lowers input [N, C, H, W] to columns [N * OutH * OutW, C * kh * kw] so a
/// convolution becomes a matrix product with the [C*kh*kw, C_out] filter.
/// Out-of-bounds taps read zero (implicit zero padding).
Tensor Im2Col(const Tensor& input, const Conv2dGeometry& geometry);

/// Adjoint of `Im2Col`: scatters column gradients back to an input-shaped
/// tensor [N, C, H, W].
Tensor Col2Im(const Tensor& columns, const std::vector<int64_t>& input_shape,
              const Conv2dGeometry& geometry);

}  // namespace ppn

#endif  // PPN_TENSOR_OPS_H_
