#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "tensor/pool.h"

namespace ppn {

namespace {

std::shared_ptr<float> AcquireShared(int64_t numel) {
  if (numel == 0) return nullptr;
  float* raw = pool::Acquire(numel);
  return std::shared_ptr<float>(raw,
                                [numel](float* p) { pool::Release(p, numel); });
}

}  // namespace

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t numel = 1;
  for (const int64_t d : shape) {
    PPN_CHECK_GE(d, 0) << "negative dimension in shape";
    numel *= d;
  }
  return numel;
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor() : Tensor(std::vector<int64_t>{0}) {}

Tensor::Tensor(UninitTag, std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      numel_(ShapeNumel(shape_)),
      data_(AcquireShared(numel_)) {}

Tensor::Tensor(std::vector<int64_t> shape) : Tensor(UninitTag{}, std::move(shape)) {
  if (numel_ > 0) {
    std::memset(data_.get(), 0, static_cast<size_t>(numel_) * sizeof(float));
  }
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> values)
    : Tensor(UninitTag{}, std::move(shape)) {
  PPN_CHECK_EQ(numel_, static_cast<int64_t>(values.size()))
      << "value count does not match shape " << ShapeToString(shape_);
  if (numel_ > 0) {
    std::memcpy(data_.get(), values.data(),
                static_cast<size_t>(numel_) * sizeof(float));
  }
}

Tensor Tensor::Uninitialized(std::vector<int64_t> shape) {
  return Tensor(UninitTag{}, std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t = Uninitialized(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  return Tensor({static_cast<int64_t>(values.size())}, values);
}

int64_t Tensor::dim(int axis) const {
  const int n = ndim();
  if (axis < 0) axis += n;
  PPN_CHECK(axis >= 0 && axis < n)
      << "axis " << axis << " out of range for shape " << ShapeToString(shape_);
  return shape_[axis];
}

float Tensor::operator[](int64_t flat_index) const {
  PPN_DCHECK(flat_index >= 0 && flat_index < numel_);
  return data_.get()[flat_index];
}

int64_t Tensor::Offset(std::initializer_list<int64_t> indices) const {
  PPN_CHECK_EQ(static_cast<int>(indices.size()), ndim());
  int64_t offset = 0;
  int axis = 0;
  for (const int64_t index : indices) {
    PPN_DCHECK(index >= 0 && index < shape_[axis]);
    offset = offset * shape_[axis] + index;
    ++axis;
  }
  return offset;
}

float Tensor::At(std::initializer_list<int64_t> indices) const {
  return data_.get()[Offset(indices)];
}

void Tensor::Set(std::initializer_list<int64_t> indices, float value) {
  data_.get()[Offset(indices)] = value;
}

Tensor Tensor::Clone() const {
  Tensor out = Uninitialized(shape_);
  if (numel_ > 0) {
    std::memcpy(out.data_.get(), data_.get(),
                static_cast<size_t>(numel_) * sizeof(float));
  }
  return out;
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  PPN_CHECK_EQ(ShapeNumel(new_shape), numel_)
      << "cannot reshape " << ShapeToString(shape_) << " to "
      << ShapeToString(new_shape);
  Tensor view = *this;
  view.shape_ = std::move(new_shape);
  return view;
}

void Tensor::Fill(float value) {
  float* p = data_.get();
  for (int64_t i = 0; i < numel_; ++i) p[i] = value;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  const float* pa = data_.get();
  const float* pb = other.data_.get();
  for (int64_t i = 0; i < numel_; ++i) {
    const float delta = pa[i] - pb[i];
    if (std::fabs(delta) > atol || std::isnan(delta)) return false;
  }
  return true;
}

std::string Tensor::ToString() const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_);
  if (numel_ <= 32) {
    out << " {";
    for (int64_t i = 0; i < numel_; ++i) {
      if (i > 0) out << ", ";
      out << data_.get()[i];
    }
    out << "}";
  }
  return out.str();
}

}  // namespace ppn
