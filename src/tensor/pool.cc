#include "tensor/pool.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "obs/stats.h"

namespace ppn::pool {

namespace {

static_assert((kAlignment & (kAlignment - 1)) == 0,
              "pool alignment must be a power of two");
static_assert(kAlignment % alignof(float) == 0,
              "pool alignment must satisfy the element type");
static_assert(kAlignment >= 64,
              "SIMD kernels assume at least cache-line alignment");

// Smallest size class: 2^3 = 8 floats (32 bytes). Classes above
// kMaxClassLog2 would overflow int64 byte counts long before being
// reachable; ShapeNumel already guards tensor sizes.
constexpr int kMinClassLog2 = 3;
constexpr int kMaxClassLog2 = 40;
constexpr int kNumClasses = kMaxClassLog2 + 1;

// Per-thread cache cap. Training-step working sets here are a few MB;
// the cap only matters if someone churns huge one-off tensors.
constexpr int64_t kMaxCachedBytesPerThread = int64_t{256} << 20;

int ClassIndex(int64_t numel) {
  PPN_DCHECK(numel > 0);
  const int width = std::bit_width(static_cast<uint64_t>(numel - 1));
  return width < kMinClassLog2 ? kMinClassLog2 : width;
}

int64_t ClassBytes(int cls) {
  return (int64_t{1} << cls) * static_cast<int64_t>(sizeof(float));
}

float* RawAlloc(int cls) {
  float* ptr = static_cast<float*>(
      ::operator new(static_cast<size_t>(ClassBytes(cls)),
                     std::align_val_t{kAlignment}));
  PPN_DCHECK(reinterpret_cast<uintptr_t>(ptr) % kAlignment == 0);
  return ptr;
}

void RawFree(float* ptr) noexcept {
  ::operator delete(ptr, std::align_val_t{kAlignment});
}

bool EnabledFromEnv() { return !env::FlagSet("PPN_NO_POOL"); }

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

// Stats are a trivially-destructible aggregate so they stay readable
// even during thread teardown (unlike the cache below).
thread_local ThreadStats tls_stats;

struct ThreadCache;
// Raw mirror of the function-local static below. Trivially destructible,
// so `Release` can consult it at any point in the thread's lifetime:
// null before first Acquire and again after the cache is destroyed.
thread_local ThreadCache* tls_cache = nullptr;
// Distinguishes "not created yet" from "already destroyed": once true,
// Release must not resurrect the function-local static.
thread_local bool tls_cache_destroyed = false;

struct ThreadCache {
  std::array<std::vector<float*>, kNumClasses> free_lists;

  ThreadCache() { tls_cache = this; }
  ~ThreadCache() {
    tls_cache = nullptr;
    tls_cache_destroyed = true;
    for (auto& list : free_lists) {
      for (float* ptr : list) RawFree(ptr);
      list.clear();
    }
    tls_stats.bytes_cached = 0;
  }
};

ThreadCache* GetCache() {
  if (tls_cache == nullptr && !tls_cache_destroyed) {
    static thread_local ThreadCache cache;
  }
  return tls_cache;
}

void RecordObsAcquire(bool hit) {
  if (!obs::Enabled()) return;
  if (hit) {
    static thread_local obs::Counter& hits = obs::GetCounter("tensor.pool.hit");
    hits.Add(1.0);
  } else {
    static thread_local obs::Counter& misses =
        obs::GetCounter("tensor.pool.miss");
    misses.Add(1.0);
  }
  static thread_local obs::Gauge& in_use =
      obs::GetGauge("tensor.pool.bytes_in_use");
  in_use.UpdateMax(static_cast<double>(tls_stats.bytes_in_use));
}

void RecordObsRelease(bool cached) {
  if (!obs::Enabled()) return;
  if (cached) {
    static thread_local obs::Counter& count =
        obs::GetCounter("tensor.pool.release_cached");
    count.Add(1.0);
  } else {
    static thread_local obs::Counter& count =
        obs::GetCounter("tensor.pool.release_freed");
    count.Add(1.0);
  }
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

bool SetEnabledForTest(bool enabled) {
  return EnabledFlag().exchange(enabled, std::memory_order_relaxed);
}

float* Acquire(int64_t numel) {
  PPN_CHECK_GE(numel, 0);
  if (numel == 0) return nullptr;
  const int cls = ClassIndex(numel);
  const int64_t bytes = ClassBytes(cls);
  tls_stats.bytes_in_use += bytes;
  if (Enabled()) {
    ThreadCache* cache = GetCache();
    if (cache != nullptr && !cache->free_lists[cls].empty()) {
      std::vector<float*>& list = cache->free_lists[cls];
      float* ptr = list.back();
      list.pop_back();
      ++tls_stats.hits;
      tls_stats.bytes_cached -= bytes;
      RecordObsAcquire(/*hit=*/true);
      return ptr;
    }
  }
  ++tls_stats.misses;
  RecordObsAcquire(/*hit=*/false);
  return RawAlloc(cls);
}

void Release(float* ptr, int64_t numel) noexcept {
  if (ptr == nullptr) return;
  const int cls = ClassIndex(numel);
  const int64_t bytes = ClassBytes(cls);
  tls_stats.bytes_in_use -= bytes;
  if (Enabled()) {
    ThreadCache* cache = GetCache();
    if (cache != nullptr &&
        tls_stats.bytes_cached + bytes <= kMaxCachedBytesPerThread) {
      cache->free_lists[cls].push_back(ptr);
      tls_stats.bytes_cached += bytes;
      ++tls_stats.releases_cached;
      RecordObsRelease(/*cached=*/true);
      return;
    }
  }
  ++tls_stats.releases_freed;
  RecordObsRelease(/*cached=*/false);
  RawFree(ptr);
}

ThreadStats LocalStats() { return tls_stats; }

void TrimThreadCache() {
  ThreadCache* cache = tls_cache;
  if (cache == nullptr) return;
  for (auto& list : cache->free_lists) {
    for (float* ptr : list) RawFree(ptr);
    list.clear();
  }
  tls_stats.bytes_cached = 0;
}

}  // namespace ppn::pool
