#ifndef PPN_TENSOR_POOL_H_
#define PPN_TENSOR_POOL_H_

#include <cstdint>

/// \file
/// Thread-local size-class buffer pool underneath `Tensor`.
///
/// Every tensor allocation in a training step has one of a handful of
/// shapes, and the autograd tape frees them all again before the next
/// step. Heap-allocating each one (the seed behaviour:
/// `std::make_shared<std::vector<float>>`) puts malloc/free and a full
/// zero-fill on every hot-path op. The pool replaces that with a
/// per-thread free list keyed by size class (next power of two, floor 8
/// floats): `Acquire` pops a cached buffer when one is available and
/// only touches the heap on a miss, `Release` pushes the buffer back to
/// the *calling* thread's list (buffers may migrate between threads;
/// both sides stay lock-free because no list is ever shared).
///
/// Contracts:
///  - Buffers from `Acquire` are UNINITIALIZED — recycled buffers keep
///    their previous contents. `Tensor(shape)` zero-fills on top;
///    `Tensor::Uninitialized` does not (see tensor.h for when that is
///    legal).
///  - `Release(ptr, numel)` must receive the same `numel` the buffer
///    was acquired with (the size class is recomputed from it).
///  - Per-thread cached bytes are capped; releases beyond the cap free
///    to the heap directly.
///  - `PPN_NO_POOL=1` (env, read once at first use) bypasses caching
///    entirely: every Acquire/Release is a plain aligned heap
///    alloc/free. Results are bit-identical either way; the switch
///    exists to take the allocator out of the picture when debugging.
///
/// Observability (when `obs::Enabled()`): counters `tensor.pool.hit`,
/// `tensor.pool.miss`, `tensor.pool.release_cached`,
/// `tensor.pool.release_freed`, and high-watermark gauge
/// `tensor.pool.bytes_in_use`.

namespace ppn::pool {

/// Alignment of every buffer the pool hands out (both the cached path
/// and the PPN_NO_POOL direct path allocate with this `align_val_t`).
/// 64 bytes = one cache line = two AVX-512 lanes: the SIMD kernel tables
/// (src/tensor/vec/) may assume `Tensor::Data()` of a freshly allocated
/// tensor is at least this aligned, and kernels that use aligned loads
/// on whole tensors depend on it.
inline constexpr int64_t kAlignment = 64;

/// Returns a `kAlignment`-byte-aligned buffer with room for at least
/// `numel` floats (rounded up to the size class). Contents are
/// UNINITIALIZED. Returns nullptr for numel == 0.
float* Acquire(int64_t numel);

/// Returns a buffer obtained from `Acquire(numel)`. Safe to call from a
/// different thread than the acquiring one, and during thread teardown
/// (falls back to a direct free once the cache is gone).
void Release(float* ptr, int64_t numel) noexcept;

/// True when pooling is active (PPN_NO_POOL unset/0 and no test
/// override). Buffers allocated while enabled may be released while
/// disabled and vice versa: both paths share the same underlying heap
/// allocator, only the caching differs.
bool Enabled();

/// Flips the pool on/off at runtime; returns the previous value.
/// Intended for tests and benchmarks (PPN_NO_POOL is the user-facing
/// switch).
bool SetEnabledForTest(bool enabled);

/// RAII disable for tests/benchmarks.
class ScopedPoolDisable {
 public:
  ScopedPoolDisable() : previous_(SetEnabledForTest(false)) {}
  ~ScopedPoolDisable() { SetEnabledForTest(previous_); }

  ScopedPoolDisable(const ScopedPoolDisable&) = delete;
  ScopedPoolDisable& operator=(const ScopedPoolDisable&) = delete;

 private:
  bool previous_;
};

/// Allocator statistics for the CALLING thread (plain thread-locals,
/// always maintained; the obs counters mirror them when profiling is
/// on).
struct ThreadStats {
  int64_t hits = 0;             ///< Acquires served from the free list.
  int64_t misses = 0;           ///< Acquires that hit the heap.
  int64_t releases_cached = 0;  ///< Releases that went back to the list.
  int64_t releases_freed = 0;   ///< Releases freed (cap/pool off).
  int64_t bytes_in_use = 0;     ///< Size-class bytes currently acquired.
  int64_t bytes_cached = 0;     ///< Size-class bytes sitting in the list.
};

/// Snapshot of the calling thread's stats.
ThreadStats LocalStats();

/// Frees every cached buffer on the calling thread (stats keep their
/// counts; bytes_cached drops to 0).
void TrimThreadCache();

}  // namespace ppn::pool

#endif  // PPN_TENSOR_POOL_H_
