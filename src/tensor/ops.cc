#include "tensor/ops.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  PPN_CHECK(SameShape(a, b)) << op << ": shape mismatch "
                             << ShapeToString(a.shape()) << " vs "
                             << ShapeToString(b.shape());
}

/// Shared by the three matmul variants: one call, 2·m·n·k FLOPs.
inline void RecordMatMul(int64_t m, int64_t n, int64_t k) {
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("tensor.matmul.calls");
    static thread_local obs::Counter& flops =
        obs::GetCounter("tensor.matmul.flops");
    calls.Add(1.0);
    flops.Add(2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k));
  }
}

// ---------------------------------------------------------------------------
// Blocked matmul kernels.
//
// All variants compute out[i][j] = sum_p A(i,p) * B(p,j) where A(i,p) is
// either a[i*lda + p] (row-major operand) or a[p*lda + i] (the TransA
// layout), and B rows b + p*ldb are contiguous. Each output element keeps
// ONE float accumulator that sums its k terms in ascending p order — the
// exact summation order of the naive i/p/j loops — so register blocking,
// SIMD over j (lanes are distinct output elements), and OpenMP over row
// blocks are all bit-identical to the reference kernels. Do not introduce
// per-element partial sums (k-splitting) here; see DESIGN.md.
//
// The register block holds kIB x kJB accumulators on the stack; the j
// dimension vectorizes (contiguous B and out rows), the i dimension
// amortizes each B row load across kIB output rows.
// ---------------------------------------------------------------------------

constexpr int64_t kIB = 8;
constexpr int64_t kJB = 8;

template <bool kATransposed, int IB, int JB>
inline void MicroKernel(const float* a, int64_t lda, const float* b,
                        int64_t ldb, float* out, int64_t ldo, int64_t k) {
  float acc[IB][JB] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * ldb;
    float av[IB];
    for (int i = 0; i < IB; ++i) {
      av[i] = kATransposed ? a[p * lda + i] : a[i * lda + p];
    }
    for (int i = 0; i < IB; ++i) {
      for (int j = 0; j < JB; ++j) acc[i][j] += av[i] * b_row[j];
    }
  }
  for (int i = 0; i < IB; ++i) {
    for (int j = 0; j < JB; ++j) out[i * ldo + j] = acc[i][j];
  }
}

// Variable-size remainder block (right/bottom edges): same accumulator
// discipline, scalar loops.
template <bool kATransposed>
inline void EdgeBlock(const float* a, int64_t lda, const float* b, int64_t ldb,
                      float* out, int64_t ldo, int64_t k, int64_t ib,
                      int64_t jb) {
  float acc[kIB][kJB] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * ldb;
    for (int64_t i = 0; i < ib; ++i) {
      const float av = kATransposed ? a[p * lda + i] : a[i * lda + p];
      for (int64_t j = 0; j < jb; ++j) acc[i][j] += av * b_row[j];
    }
  }
  for (int64_t i = 0; i < ib; ++i) {
    for (int64_t j = 0; j < jb; ++j) out[i * ldo + j] = acc[i][j];
  }
}

// out[m,n] = A·B with A(i,p) as described above and B rows contiguous.
// `a_block` points at A's element (i0, 0) advanced per row block outside;
// here `a` is the full operand and indexing handles both layouts.
template <bool kATransposed>
void BlockedMatMul(const float* a, int64_t lda, const float* b, int64_t ldb,
                   float* out, int64_t m, int64_t n, int64_t k) {
  // OpenMP splits row blocks; every output element is computed wholly by
  // one thread with the same per-element order, so any thread count gives
  // bit-identical results.
#ifdef _OPENMP
#pragma omp parallel for if (InnerParallelEnabled() && m * n * k > 65536) \
    schedule(static)
#endif
  for (int64_t i0 = 0; i0 < m; i0 += kIB) {
    const int64_t ib = m - i0 < kIB ? m - i0 : kIB;
    // A's row-block origin: row i0 in the row-major layout, column i0 in
    // the transposed layout.
    const float* a_block = kATransposed ? a + i0 : a + i0 * lda;
    float* out_block = out + i0 * n;
    int64_t j0 = 0;
    if (ib == kIB) {
      for (; j0 + kJB <= n; j0 += kJB) {
        MicroKernel<kATransposed, kIB, kJB>(a_block, lda, b + j0, ldb,
                                            out_block + j0, n, k);
      }
    }
    for (; j0 < n; j0 += kJB) {
      const int64_t jb = n - j0 < kJB ? n - j0 : kJB;
      EdgeBlock<kATransposed>(a_block, lda, b + j0, ldb, out_block + j0, n, k,
                              ib, jb);
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  return ZipMapFused(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  return ZipMapFused(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  return ZipMapFused(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Div");
  return ZipMapFused(a, b, [](float x, float y) { return x / y; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return MapFused(a, [s](float x) { return x + s; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return MapFused(a, [s](float x) { return x * s; });
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return MapFused(a, [&fn](float x) { return fn(x); });
}

Tensor ZipMap(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& fn) {
  CheckSameShape(a, b, "ZipMap");
  return ZipMapFused(a, b, [&fn](float x, float y) { return fn(x, y); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  PPN_CHECK_EQ(k, b.dim(0)) << "MatMul inner dims " << ShapeToString(a.shape())
                            << " x " << ShapeToString(b.shape());
  RecordMatMul(m, n, k);
  // Matmuls run at very high frequency; only trace the ones big enough to
  // show up on a timeline.
  obs::Span span("tensor.matmul", /*min_duration_us=*/20.0);
  span.AddArg("m", static_cast<double>(m));
  span.AddArg("n", static_cast<double>(n));
  span.AddArg("k", static_cast<double>(k));
  Tensor out = Tensor::Uninitialized({m, n});
  BlockedMatMul<false>(a.Data(), k, b.Data(), n, out.MutableData(), m, n, k);
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0);
  const int64_t m = a.dim(1);
  const int64_t n = b.dim(1);
  PPN_CHECK_EQ(k, b.dim(0));
  RecordMatMul(m, n, k);
  obs::Span span("tensor.matmul_ta", /*min_duration_us=*/20.0);
  Tensor out = Tensor::Uninitialized({m, n});
  // a is [k, m]: A(i,p) = a[p*m + i], contiguous across the register
  // block's i dimension.
  BlockedMatMul<true>(a.Data(), m, b.Data(), n, out.MutableData(), m, n, k);
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(0);
  PPN_CHECK_EQ(k, b.dim(1));
  RecordMatMul(m, n, k);
  obs::Span span("tensor.matmul_tb", /*min_duration_us=*/20.0);
  // B's rows are the dot-product operands here, so the j-contiguous
  // blocked kernel needs B^T. The transpose costs n*k against the m*n*k
  // multiply: a clear win whenever several output rows amortize it. For
  // very short outputs fall back to direct row dots (same ascending-p
  // order, so both paths are bit-identical to the naive kernel).
  if (m >= 4) {
    Tensor bt = Transpose2D(b);  // [k, n]
    Tensor out = Tensor::Uninitialized({m, n});
    BlockedMatMul<false>(a.Data(), k, bt.Data(), n, out.MutableData(), m, n,
                         k);
    return out;
  }
  Tensor out = Tensor::Uninitialized({m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * k;
    float* out_row = po + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = pb + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  }
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  PPN_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out = Tensor::Uninitialized({n, m});
  const float* pa = a.Data();
  float* po = out.MutableData();
  // Tiled to keep both the source rows and the destination rows in cache
  // for large matrices (pure data movement: no float ops to reorder).
  constexpr int64_t kTile = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kTile) {
    const int64_t i_end = i0 + kTile < m ? i0 + kTile : m;
    for (int64_t j0 = 0; j0 < n; j0 += kTile) {
      const int64_t j_end = j0 + kTile < n ? j0 + kTile : n;
      for (int64_t i = i0; i < i_end; ++i) {
        for (int64_t j = j0; j < j_end; ++j) po[j * m + i] = pa[i * n + j];
      }
    }
  }
  return out;
}

double SumAll(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.Data();
  for (int64_t i = 0; i < a.numel(); ++i) total += pa[i];
  return total;
}

double MeanAll(const Tensor& a) {
  PPN_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<double>(a.numel());
}

Tensor SumRows(const Tensor& a) {
  PPN_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  // Accumulates row-by-row into the output: needs the zero init.
  Tensor out({n});
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pa + i * n;
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
  return out;
}

Tensor AddRowVector(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 1);
  PPN_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[i * n + j] = pa[i * n + j] + pb[j];
  }
  return out;
}

namespace {

// Computes the product of dims before `axis` (outer), the dim at `axis`,
// and the product of dims after (inner).
void AxisSplit(const std::vector<int64_t>& shape, int axis, int64_t* outer,
               int64_t* axis_len, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int i = 0; i < axis; ++i) *outer *= shape[i];
  *axis_len = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) *inner *= shape[i];
}

int NormalizeAxis(int axis, int ndim) {
  if (axis < 0) axis += ndim;
  PPN_CHECK(axis >= 0 && axis < ndim) << "axis out of range";
  return axis;
}

inline void CopyFloats(float* dst, const float* src, int64_t count) {
  if (count > 0) {
    std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
  }
}

}  // namespace

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  PPN_CHECK(!parts.empty());
  const int ndim = parts[0].ndim();
  axis = NormalizeAxis(axis, ndim);
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& part : parts) {
    PPN_CHECK_EQ(part.ndim(), ndim);
    for (int d = 0; d < ndim; ++d) {
      if (d != axis) {
        PPN_CHECK_EQ(part.shape()[d], out_shape[d])
            << "Concat: incompatible shapes along non-concat axis " << d;
      }
    }
    total_axis += part.shape()[axis];
  }
  out_shape[axis] = total_axis;
  // Every element is written exactly once below: one memcpy per part per
  // outer slice, directly into place (the seed zero-filled the output and
  // then copied each part a second time through NarrowInto).
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(out_shape, axis, &outer, &axis_len, &inner);
  float* po = out.MutableData();
  int64_t offset = 0;
  for (const Tensor& part : parts) {
    const int64_t part_axis = part.shape()[axis];
    const int64_t row = part_axis * inner;
    const float* ps = part.Data();
    for (int64_t o = 0; o < outer; ++o) {
      CopyFloats(po + (o * axis_len + offset) * inner, ps + o * row, row);
    }
    offset += part_axis;
  }
  return out;
}

Tensor Narrow(const Tensor& a, int axis, int64_t start, int64_t length) {
  axis = NormalizeAxis(axis, a.ndim());
  PPN_CHECK(start >= 0 && length >= 0 && start + length <= a.shape()[axis])
      << "Narrow out of range: start=" << start << " length=" << length
      << " dim=" << a.shape()[axis];
  std::vector<int64_t> out_shape = a.shape();
  out_shape[axis] = length;
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(a.shape(), axis, &outer, &axis_len, &inner);
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t o = 0; o < outer; ++o) {
    CopyFloats(po + o * length * inner, pa + (o * axis_len + start) * inner,
               length * inner);
  }
  return out;
}

void NarrowInto(Tensor* dst, const Tensor& src, int axis, int64_t start) {
  axis = NormalizeAxis(axis, dst->ndim());
  PPN_CHECK_EQ(src.ndim(), dst->ndim());
  for (int d = 0; d < dst->ndim(); ++d) {
    if (d != axis) {
      PPN_CHECK_EQ(src.shape()[d], dst->shape()[d]);
    }
  }
  const int64_t length = src.shape()[axis];
  PPN_CHECK(start >= 0 && start + length <= dst->shape()[axis]);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(dst->shape(), axis, &outer, &axis_len, &inner);
  const float* ps = src.Data();
  float* pd = dst->MutableData();
  for (int64_t o = 0; o < outer; ++o) {
    CopyFloats(pd + (o * axis_len + start) * inner, ps + o * length * inner,
               length * inner);
  }
}

Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi,
                     Rng* rng) {
  PPN_CHECK(rng != nullptr);
  Tensor out = Tensor::Uninitialized(std::move(shape));
  float* po = out.MutableData();
  for (int64_t i = 0; i < out.numel(); ++i) {
    po[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return out;
}

Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev,
                    Rng* rng) {
  PPN_CHECK(rng != nullptr);
  Tensor out = Tensor::Uninitialized(std::move(shape));
  float* po = out.MutableData();
  for (int64_t i = 0; i < out.numel(); ++i) {
    po[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Tensor Im2Col(const Tensor& input, const Conv2dGeometry& g) {
  PPN_CHECK_EQ(input.ndim(), 4);
  const int64_t n = input.dim(0);
  const int64_t c = input.dim(1);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t out_h = g.OutH(h);
  const int64_t out_w = g.OutW(w);
  PPN_CHECK(out_h > 0 && out_w > 0)
      << "conv output is empty for input " << ShapeToString(input.shape());
  const int64_t patch = c * g.kernel_h * g.kernel_w;
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("tensor.im2col.calls");
    calls.Add(1.0);
  }
  obs::Span span("tensor.im2col", /*min_duration_us=*/20.0);
  // Every column element is written (out-of-bounds taps store 0.0f).
  Tensor columns = Tensor::Uninitialized({n * out_h * out_w, patch});
  const float* pi = input.Data();
  float* pc = columns.MutableData();
#ifdef _OPENMP
#pragma omp parallel for \
    if (InnerParallelEnabled() && n * out_h * out_w * patch > 65536) \
    schedule(static)
#endif
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        float* col =
            pc + ((b * out_h + oy) * out_w + ox) * patch;
        int64_t col_index = 0;
        for (int64_t ch = 0; ch < c; ++ch) {
          for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const int64_t in_y = oy - g.pad_top + ky * g.dilation_h;
            for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const int64_t in_x = ox - g.pad_left + kx * g.dilation_w;
              float value = 0.0f;
              if (in_y >= 0 && in_y < h && in_x >= 0 && in_x < w) {
                value = pi[((b * c + ch) * h + in_y) * w + in_x];
              }
              col[col_index++] = value;
            }
          }
        }
      }
    }
  }
  return columns;
}

Tensor Col2Im(const Tensor& columns, const std::vector<int64_t>& input_shape,
              const Conv2dGeometry& g) {
  PPN_CHECK_EQ(columns.ndim(), 2);
  PPN_CHECK_EQ(static_cast<int>(input_shape.size()), 4);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t h = input_shape[2];
  const int64_t w = input_shape[3];
  const int64_t out_h = g.OutH(h);
  const int64_t out_w = g.OutW(w);
  const int64_t patch = c * g.kernel_h * g.kernel_w;
  PPN_CHECK_EQ(columns.dim(0), n * out_h * out_w);
  PPN_CHECK_EQ(columns.dim(1), patch);
  // Overlapping patches accumulate: the output must start zeroed.
  Tensor image(input_shape);
  const float* pc = columns.Data();
  float* pi = image.MutableData();
  // Parallel over the batch only: overlapping patches of one image
  // accumulate into shared pixels, but images never alias each other, and
  // the within-image accumulation order is untouched (bit-identical).
#ifdef _OPENMP
#pragma omp parallel for \
    if (InnerParallelEnabled() && n * out_h * out_w * patch > 65536) \
    schedule(static)
#endif
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        const float* col =
            pc + ((b * out_h + oy) * out_w + ox) * patch;
        int64_t col_index = 0;
        for (int64_t ch = 0; ch < c; ++ch) {
          for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const int64_t in_y = oy - g.pad_top + ky * g.dilation_h;
            for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const int64_t in_x = ox - g.pad_left + kx * g.dilation_w;
              const float value = col[col_index++];
              if (in_y >= 0 && in_y < h && in_x >= 0 && in_x < w) {
                pi[((b * c + ch) * h + in_y) * w + in_x] += value;
              }
            }
          }
        }
      }
    }
  }
  return image;
}

}  // namespace ppn
