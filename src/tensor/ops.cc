#include "tensor/ops.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "tensor/dispatch.h"

namespace ppn {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  PPN_CHECK(SameShape(a, b)) << op << ": shape mismatch "
                             << ShapeToString(a.shape()) << " vs "
                             << ShapeToString(b.shape());
}

/// Shared by the three matmul variants: one call, 2·m·n·k FLOPs.
inline void RecordMatMul(int64_t m, int64_t n, int64_t k) {
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("tensor.matmul.calls");
    static thread_local obs::Counter& flops =
        obs::GetCounter("tensor.matmul.flops");
    calls.Add(1.0);
    flops.Add(2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k));
  }
}

// ---------------------------------------------------------------------------
// The kernel bodies live in src/tensor/vec/ (one instantiation per ISA,
// selected at runtime by tensor/dispatch.{h,cc} — CPUID + PPN_SIMD).
// All variants keep ONE float accumulator per output element that sums
// its k terms in ascending order — the exact summation order of the
// naive i/p/j loops — so register blocking, SIMD over j (lanes are
// distinct output elements), and OpenMP over row blocks are all
// bit-identical to the reference kernels AND across dispatch paths. Do
// not introduce per-element partial sums (k-splitting); see DESIGN.md
// §2.4 and §2.8.
// ---------------------------------------------------------------------------

}  // namespace

Tensor EltwiseUnary(vec::UnaryOp op, const Tensor& a, float p0, float p1) {
  Tensor out = Tensor::Uninitialized(a.shape());
  dispatch::Kernels().unary(op, a.Data(), out.MutableData(), a.numel(), p0,
                            p1);
  return out;
}

Tensor EltwiseBinary(vec::BinaryOp op, const Tensor& a, const Tensor& b,
                     float p0, float p1) {
  CheckSameShape(a, b, "EltwiseBinary");
  Tensor out = Tensor::Uninitialized(a.shape());
  dispatch::Kernels().binary(op, a.Data(), b.Data(), out.MutableData(),
                             a.numel(), p0, p1);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  return EltwiseBinary(vec::BinaryOp::kAdd, a, b);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  return EltwiseBinary(vec::BinaryOp::kSub, a, b);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  return EltwiseBinary(vec::BinaryOp::kMul, a, b);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Div");
  return EltwiseBinary(vec::BinaryOp::kDiv, a, b);
}

Tensor AddScalar(const Tensor& a, float s) {
  return EltwiseUnary(vec::UnaryOp::kAddScalar, a, s);
}

Tensor MulScalar(const Tensor& a, float s) {
  return EltwiseUnary(vec::UnaryOp::kMulScalar, a, s);
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return MapFused(a, [&fn](float x) { return fn(x); });
}

Tensor ZipMap(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& fn) {
  CheckSameShape(a, b, "ZipMap");
  return ZipMapFused(a, b, [&fn](float x, float y) { return fn(x, y); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  PPN_CHECK_EQ(k, b.dim(0)) << "MatMul inner dims " << ShapeToString(a.shape())
                            << " x " << ShapeToString(b.shape());
  RecordMatMul(m, n, k);
  // Matmuls run at very high frequency; only trace the ones big enough to
  // show up on a timeline.
  obs::Span span("tensor.matmul", /*min_duration_us=*/20.0);
  span.AddArg("m", static_cast<double>(m));
  span.AddArg("n", static_cast<double>(n));
  span.AddArg("k", static_cast<double>(k));
  Tensor out = Tensor::Uninitialized({m, n});
  dispatch::Kernels().matmul(a.Data(), k, b.Data(), n, out.MutableData(), m, n,
                             k, InnerParallelEnabled());
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0);
  const int64_t m = a.dim(1);
  const int64_t n = b.dim(1);
  PPN_CHECK_EQ(k, b.dim(0));
  RecordMatMul(m, n, k);
  obs::Span span("tensor.matmul_ta", /*min_duration_us=*/20.0);
  Tensor out = Tensor::Uninitialized({m, n});
  // a is [k, m]: A(i,p) = a[p*m + i], contiguous across the register
  // block's i dimension.
  dispatch::Kernels().matmul_ta(a.Data(), m, b.Data(), n, out.MutableData(), m,
                                n, k, InnerParallelEnabled());
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(0);
  PPN_CHECK_EQ(k, b.dim(1));
  RecordMatMul(m, n, k);
  obs::Span span("tensor.matmul_tb", /*min_duration_us=*/20.0);
  // B's rows are the dot-product operands here, so the j-contiguous
  // blocked kernel needs B^T. The transpose costs n*k against the m*n*k
  // multiply: a clear win whenever several output rows amortize it. For
  // very short outputs fall back to direct row dots (same ascending-p
  // order — and the fallback is shared by every dispatch path, so all
  // paths stay bit-identical to the naive kernel).
  if (m >= 4) {
    Tensor bt = Transpose2D(b);  // [k, n]
    Tensor out = Tensor::Uninitialized({m, n});
    dispatch::Kernels().matmul(a.Data(), k, bt.Data(), n, out.MutableData(), m,
                               n, k, InnerParallelEnabled());
    return out;
  }
  Tensor out = Tensor::Uninitialized({m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * k;
    float* out_row = po + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = pb + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  }
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  PPN_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out = Tensor::Uninitialized({n, m});
  const float* pa = a.Data();
  float* po = out.MutableData();
  // Tiled to keep both the source rows and the destination rows in cache
  // for large matrices (pure data movement: no float ops to reorder).
  constexpr int64_t kTile = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kTile) {
    const int64_t i_end = i0 + kTile < m ? i0 + kTile : m;
    for (int64_t j0 = 0; j0 < n; j0 += kTile) {
      const int64_t j_end = j0 + kTile < n ? j0 + kTile : n;
      for (int64_t i = i0; i < i_end; ++i) {
        for (int64_t j = j0; j < j_end; ++j) po[j * m + i] = pa[i * n + j];
      }
    }
  }
  return out;
}

double SumAll(const Tensor& a) {
  // One double accumulator over the flat array. NOT dispatched: a
  // vectorized version would split the accumulator across lanes and
  // change the summation order (and therefore the bits).
  double total = 0.0;
  const float* pa = a.Data();
  for (int64_t i = 0; i < a.numel(); ++i) total += pa[i];
  return total;
}

double MeanAll(const Tensor& a) {
  PPN_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<double>(a.numel());
}

Tensor SumRows(const Tensor& a) {
  PPN_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  // The kernel writes every output column exactly once (per-column
  // register accumulators), so no zero init is needed.
  Tensor out = Tensor::Uninitialized({n});
  dispatch::Kernels().sum_rows(a.Data(), out.MutableData(), m, n);
  return out;
}

Tensor AddRowVector(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 1);
  PPN_CHECK_EQ(a.dim(1), b.dim(0));
  Tensor out = Tensor::Uninitialized(a.shape());
  dispatch::Kernels().add_row_vector(a.Data(), b.Data(), out.MutableData(),
                                     a.dim(0), a.dim(1));
  return out;
}

namespace {

// Computes the product of dims before `axis` (outer), the dim at `axis`,
// and the product of dims after (inner).
void AxisSplit(const std::vector<int64_t>& shape, int axis, int64_t* outer,
               int64_t* axis_len, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int i = 0; i < axis; ++i) *outer *= shape[i];
  *axis_len = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) *inner *= shape[i];
}

int NormalizeAxis(int axis, int ndim) {
  if (axis < 0) axis += ndim;
  PPN_CHECK(axis >= 0 && axis < ndim) << "axis out of range";
  return axis;
}

inline void CopyFloats(float* dst, const float* src, int64_t count) {
  if (count > 0) {
    std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
  }
}

vec::Im2ColArgs MakeIm2ColArgs(const std::vector<int64_t>& input_shape,
                               const Conv2dGeometry& g) {
  vec::Im2ColArgs args;
  args.n = input_shape[0];
  args.c = input_shape[1];
  args.h = input_shape[2];
  args.w = input_shape[3];
  args.out_h = g.OutH(args.h);
  args.out_w = g.OutW(args.w);
  args.patch = args.c * g.kernel_h * g.kernel_w;
  args.kernel_h = g.kernel_h;
  args.kernel_w = g.kernel_w;
  args.dilation_h = g.dilation_h;
  args.dilation_w = g.dilation_w;
  args.pad_top = g.pad_top;
  args.pad_left = g.pad_left;
  return args;
}

}  // namespace

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  PPN_CHECK(!parts.empty());
  const int ndim = parts[0].ndim();
  axis = NormalizeAxis(axis, ndim);
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& part : parts) {
    PPN_CHECK_EQ(part.ndim(), ndim);
    for (int d = 0; d < ndim; ++d) {
      if (d != axis) {
        PPN_CHECK_EQ(part.shape()[d], out_shape[d])
            << "Concat: incompatible shapes along non-concat axis " << d;
      }
    }
    total_axis += part.shape()[axis];
  }
  out_shape[axis] = total_axis;
  // Every element is written exactly once below: one memcpy per part per
  // outer slice, directly into place (the seed zero-filled the output and
  // then copied each part a second time through NarrowInto).
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(out_shape, axis, &outer, &axis_len, &inner);
  float* po = out.MutableData();
  int64_t offset = 0;
  for (const Tensor& part : parts) {
    const int64_t part_axis = part.shape()[axis];
    const int64_t row = part_axis * inner;
    const float* ps = part.Data();
    for (int64_t o = 0; o < outer; ++o) {
      CopyFloats(po + (o * axis_len + offset) * inner, ps + o * row, row);
    }
    offset += part_axis;
  }
  return out;
}

Tensor Narrow(const Tensor& a, int axis, int64_t start, int64_t length) {
  axis = NormalizeAxis(axis, a.ndim());
  PPN_CHECK(start >= 0 && length >= 0 && start + length <= a.shape()[axis])
      << "Narrow out of range: start=" << start << " length=" << length
      << " dim=" << a.shape()[axis];
  std::vector<int64_t> out_shape = a.shape();
  out_shape[axis] = length;
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(a.shape(), axis, &outer, &axis_len, &inner);
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t o = 0; o < outer; ++o) {
    CopyFloats(po + o * length * inner, pa + (o * axis_len + start) * inner,
               length * inner);
  }
  return out;
}

void NarrowInto(Tensor* dst, const Tensor& src, int axis, int64_t start) {
  axis = NormalizeAxis(axis, dst->ndim());
  PPN_CHECK_EQ(src.ndim(), dst->ndim());
  for (int d = 0; d < dst->ndim(); ++d) {
    if (d != axis) {
      PPN_CHECK_EQ(src.shape()[d], dst->shape()[d]);
    }
  }
  const int64_t length = src.shape()[axis];
  PPN_CHECK(start >= 0 && start + length <= dst->shape()[axis]);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(dst->shape(), axis, &outer, &axis_len, &inner);
  const float* ps = src.Data();
  float* pd = dst->MutableData();
  for (int64_t o = 0; o < outer; ++o) {
    CopyFloats(pd + (o * axis_len + start) * inner, ps + o * length * inner,
               length * inner);
  }
}

Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi,
                     Rng* rng) {
  PPN_CHECK(rng != nullptr);
  Tensor out = Tensor::Uninitialized(std::move(shape));
  float* po = out.MutableData();
  for (int64_t i = 0; i < out.numel(); ++i) {
    po[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return out;
}

Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev,
                    Rng* rng) {
  PPN_CHECK(rng != nullptr);
  Tensor out = Tensor::Uninitialized(std::move(shape));
  float* po = out.MutableData();
  for (int64_t i = 0; i < out.numel(); ++i) {
    po[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Tensor Im2Col(const Tensor& input, const Conv2dGeometry& g) {
  PPN_CHECK_EQ(input.ndim(), 4);
  const vec::Im2ColArgs args = MakeIm2ColArgs(input.shape(), g);
  PPN_CHECK(args.out_h > 0 && args.out_w > 0)
      << "conv output is empty for input " << ShapeToString(input.shape());
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("tensor.im2col.calls");
    calls.Add(1.0);
  }
  obs::Span span("tensor.im2col", /*min_duration_us=*/20.0);
  // Every column element is written (out-of-bounds taps store 0.0f).
  Tensor columns =
      Tensor::Uninitialized({args.n * args.out_h * args.out_w, args.patch});
  dispatch::Kernels().im2col(input.Data(), columns.MutableData(), args,
                             InnerParallelEnabled());
  return columns;
}

Tensor Col2Im(const Tensor& columns, const std::vector<int64_t>& input_shape,
              const Conv2dGeometry& g) {
  PPN_CHECK_EQ(columns.ndim(), 2);
  PPN_CHECK_EQ(static_cast<int>(input_shape.size()), 4);
  const vec::Im2ColArgs args = MakeIm2ColArgs(input_shape, g);
  PPN_CHECK_EQ(columns.dim(0), args.n * args.out_h * args.out_w);
  PPN_CHECK_EQ(columns.dim(1), args.patch);
  // Overlapping patches accumulate: the output must start zeroed.
  Tensor image(input_shape);
  dispatch::Kernels().col2im(columns.Data(), image.MutableData(), args,
                             InnerParallelEnabled());
  return image;
}

}  // namespace ppn
