#include "tensor/ops.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/stats.h"

namespace ppn {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  PPN_CHECK(SameShape(a, b)) << op << ": shape mismatch "
                             << ShapeToString(a.shape()) << " vs "
                             << ShapeToString(b.shape());
}

/// Shared by the three matmul variants: one call, 2·m·n·k FLOPs.
inline void RecordMatMul(int64_t m, int64_t n, int64_t k) {
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("tensor.matmul.calls");
    static thread_local obs::Counter& flops =
        obs::GetCounter("tensor.matmul.flops");
    calls.Add(1.0);
    flops.Add(2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k));
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] - pb[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * pb[i];
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Div");
  Tensor out(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] / pb[i];
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + s;
  return out;
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * s;
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.shape());
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = fn(pa[i]);
  return out;
}

Tensor ZipMap(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& fn) {
  CheckSameShape(a, b, "ZipMap");
  Tensor out(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  PPN_CHECK_EQ(k, b.dim(0)) << "MatMul inner dims " << ShapeToString(a.shape())
                            << " x " << ShapeToString(b.shape());
  RecordMatMul(m, n, k);
  Tensor out({m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
#ifdef _OPENMP
#pragma omp parallel for if (InnerParallelEnabled() && m * n * k > 65536) \
    schedule(static)
#endif
  for (int64_t i = 0; i < m; ++i) {
    float* out_row = po + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = pa[i * k + p];
      if (a_ip == 0.0f) continue;
      const float* b_row = pb + p * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0);
  const int64_t m = a.dim(1);
  const int64_t n = b.dim(1);
  PPN_CHECK_EQ(k, b.dim(0));
  RecordMatMul(m, n, k);
  Tensor out({m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  // Rows of the output are independent, so the parallel loop runs over i
  // with p inner. Each out[i][j] still accumulates its k terms in
  // p-ascending order — the same float summation order as the serial
  // p-outer form — so results are bit-identical at any thread count.
#ifdef _OPENMP
#pragma omp parallel for if (InnerParallelEnabled() && m * n * k > 65536) \
    schedule(static)
#endif
  for (int64_t i = 0; i < m; ++i) {
    float* out_row = po + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float a_pi = pa[p * m + i];
      if (a_pi == 0.0f) continue;
      const float* b_row = pb + p * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += a_pi * b_row[j];
    }
  }
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(0);
  PPN_CHECK_EQ(k, b.dim(1));
  RecordMatMul(m, n, k);
  Tensor out({m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
#ifdef _OPENMP
#pragma omp parallel for if (InnerParallelEnabled() && m * n * k > 65536) \
    schedule(static)
#endif
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * k;
    float* out_row = po + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = pb + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  }
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  PPN_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out({n, m});
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  return out;
}

double SumAll(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.Data();
  for (int64_t i = 0; i < a.numel(); ++i) total += pa[i];
  return total;
}

double MeanAll(const Tensor& a) {
  PPN_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<double>(a.numel());
}

Tensor SumRows(const Tensor& a) {
  PPN_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out({n});
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pa + i * n;
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
  return out;
}

Tensor AddRowVector(const Tensor& a, const Tensor& b) {
  PPN_CHECK_EQ(a.ndim(), 2);
  PPN_CHECK_EQ(b.ndim(), 1);
  PPN_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out(a.shape());
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[i * n + j] = pa[i * n + j] + pb[j];
  }
  return out;
}

namespace {

// Computes the product of dims before `axis` (outer), the dim at `axis`,
// and the product of dims after (inner).
void AxisSplit(const std::vector<int64_t>& shape, int axis, int64_t* outer,
               int64_t* axis_len, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int i = 0; i < axis; ++i) *outer *= shape[i];
  *axis_len = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) *inner *= shape[i];
}

int NormalizeAxis(int axis, int ndim) {
  if (axis < 0) axis += ndim;
  PPN_CHECK(axis >= 0 && axis < ndim) << "axis out of range";
  return axis;
}

}  // namespace

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  PPN_CHECK(!parts.empty());
  const int ndim = parts[0].ndim();
  axis = NormalizeAxis(axis, ndim);
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& part : parts) {
    PPN_CHECK_EQ(part.ndim(), ndim);
    for (int d = 0; d < ndim; ++d) {
      if (d != axis) {
        PPN_CHECK_EQ(part.shape()[d], out_shape[d])
            << "Concat: incompatible shapes along non-concat axis " << d;
      }
    }
    total_axis += part.shape()[axis];
  }
  out_shape[axis] = total_axis;
  Tensor out(out_shape);
  int64_t offset = 0;
  for (const Tensor& part : parts) {
    NarrowInto(&out, part, axis, offset);
    offset += part.shape()[axis];
  }
  return out;
}

Tensor Narrow(const Tensor& a, int axis, int64_t start, int64_t length) {
  axis = NormalizeAxis(axis, a.ndim());
  PPN_CHECK(start >= 0 && length >= 0 && start + length <= a.shape()[axis])
      << "Narrow out of range: start=" << start << " length=" << length
      << " dim=" << a.shape()[axis];
  std::vector<int64_t> out_shape = a.shape();
  out_shape[axis] = length;
  Tensor out(out_shape);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(a.shape(), axis, &outer, &axis_len, &inner);
  const float* pa = a.Data();
  float* po = out.MutableData();
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = pa + (o * axis_len + start) * inner;
    float* dst = po + o * length * inner;
    for (int64_t i = 0; i < length * inner; ++i) dst[i] = src[i];
  }
  return out;
}

void NarrowInto(Tensor* dst, const Tensor& src, int axis, int64_t start) {
  axis = NormalizeAxis(axis, dst->ndim());
  PPN_CHECK_EQ(src.ndim(), dst->ndim());
  for (int d = 0; d < dst->ndim(); ++d) {
    if (d != axis) {
      PPN_CHECK_EQ(src.shape()[d], dst->shape()[d]);
    }
  }
  const int64_t length = src.shape()[axis];
  PPN_CHECK(start >= 0 && start + length <= dst->shape()[axis]);
  int64_t outer;
  int64_t axis_len;
  int64_t inner;
  AxisSplit(dst->shape(), axis, &outer, &axis_len, &inner);
  const float* ps = src.Data();
  float* pd = dst->MutableData();
  for (int64_t o = 0; o < outer; ++o) {
    float* out_ptr = pd + (o * axis_len + start) * inner;
    const float* src_ptr = ps + o * length * inner;
    for (int64_t i = 0; i < length * inner; ++i) out_ptr[i] = src_ptr[i];
  }
}

Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi,
                     Rng* rng) {
  PPN_CHECK(rng != nullptr);
  Tensor out(std::move(shape));
  float* po = out.MutableData();
  for (int64_t i = 0; i < out.numel(); ++i) {
    po[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return out;
}

Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev,
                    Rng* rng) {
  PPN_CHECK(rng != nullptr);
  Tensor out(std::move(shape));
  float* po = out.MutableData();
  for (int64_t i = 0; i < out.numel(); ++i) {
    po[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Tensor Im2Col(const Tensor& input, const Conv2dGeometry& g) {
  PPN_CHECK_EQ(input.ndim(), 4);
  const int64_t n = input.dim(0);
  const int64_t c = input.dim(1);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t out_h = g.OutH(h);
  const int64_t out_w = g.OutW(w);
  PPN_CHECK(out_h > 0 && out_w > 0)
      << "conv output is empty for input " << ShapeToString(input.shape());
  const int64_t patch = c * g.kernel_h * g.kernel_w;
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("tensor.im2col.calls");
    calls.Add(1.0);
  }
  Tensor columns({n * out_h * out_w, patch});
  const float* pi = input.Data();
  float* pc = columns.MutableData();
#ifdef _OPENMP
#pragma omp parallel for \
    if (InnerParallelEnabled() && n * out_h * out_w * patch > 65536) \
    schedule(static)
#endif
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        float* col =
            pc + ((b * out_h + oy) * out_w + ox) * patch;
        int64_t col_index = 0;
        for (int64_t ch = 0; ch < c; ++ch) {
          for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const int64_t in_y = oy - g.pad_top + ky * g.dilation_h;
            for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const int64_t in_x = ox - g.pad_left + kx * g.dilation_w;
              float value = 0.0f;
              if (in_y >= 0 && in_y < h && in_x >= 0 && in_x < w) {
                value = pi[((b * c + ch) * h + in_y) * w + in_x];
              }
              col[col_index++] = value;
            }
          }
        }
      }
    }
  }
  return columns;
}

Tensor Col2Im(const Tensor& columns, const std::vector<int64_t>& input_shape,
              const Conv2dGeometry& g) {
  PPN_CHECK_EQ(columns.ndim(), 2);
  PPN_CHECK_EQ(static_cast<int>(input_shape.size()), 4);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t h = input_shape[2];
  const int64_t w = input_shape[3];
  const int64_t out_h = g.OutH(h);
  const int64_t out_w = g.OutW(w);
  const int64_t patch = c * g.kernel_h * g.kernel_w;
  PPN_CHECK_EQ(columns.dim(0), n * out_h * out_w);
  PPN_CHECK_EQ(columns.dim(1), patch);
  Tensor image(input_shape);
  const float* pc = columns.Data();
  float* pi = image.MutableData();
  // Parallel over the batch only: overlapping patches of one image
  // accumulate into shared pixels, but images never alias each other, and
  // the within-image accumulation order is untouched (bit-identical).
#ifdef _OPENMP
#pragma omp parallel for \
    if (InnerParallelEnabled() && n * out_h * out_w * patch > 65536) \
    schedule(static)
#endif
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        const float* col =
            pc + ((b * out_h + oy) * out_w + ox) * patch;
        int64_t col_index = 0;
        for (int64_t ch = 0; ch < c; ++ch) {
          for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const int64_t in_y = oy - g.pad_top + ky * g.dilation_h;
            for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const int64_t in_x = ox - g.pad_left + kx * g.dilation_w;
              const float value = col[col_index++];
              if (in_y >= 0 && in_y < h && in_x >= 0 && in_x < w) {
                pi[((b * c + ch) * h + in_y) * w + in_x] += value;
              }
            }
          }
        }
      }
    }
  }
  return image;
}

}  // namespace ppn
