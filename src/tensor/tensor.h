#ifndef PPN_TENSOR_TENSOR_H_
#define PPN_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

/// \file
/// Dense row-major float32 tensor. This is the storage type underneath the
/// autograd engine and the neural-network layers; it carries no gradient
/// information itself. Buffers come from the thread-local size-class pool
/// in `tensor/pool.h` (64-byte aligned, recycled across allocations).

namespace ppn {

/// A dense N-dimensional float32 array with row-major layout.
///
/// Copying a `Tensor` is shallow: copies share the underlying buffer (like
/// `std::shared_ptr`). Operations in `tensor/ops.h` always allocate fresh
/// outputs, so sharing is only observable through explicit `MutableData()`
/// writes. Use `Clone()` for a deep copy.
class Tensor {
 public:
  /// An empty 0-element tensor with shape {0}.
  Tensor();

  /// Allocates a zero-initialized tensor of the given shape. All dimensions
  /// must be non-negative.
  explicit Tensor(std::vector<int64_t> shape);

  /// Allocates WITHOUT initializing: recycled pool buffers keep their
  /// previous contents. Only legal for callers that overwrite every
  /// element before the tensor can be read (elementwise outputs, matmul
  /// outputs, copies, …). Ops that *accumulate* into their output (e.g.
  /// `Col2Im`, `SumRows`) must use the zeroing constructor instead.
  static Tensor Uninitialized(std::vector<int64_t> shape);

  /// Allocates and fills from `values`; `values.size()` must equal the
  /// number of elements implied by `shape`.
  Tensor(std::vector<int64_t> shape, std::vector<float> values);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Factory: tensor filled with `value`.
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// Factory: 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// Number of dimensions.
  int ndim() const { return static_cast<int>(shape_.size()); }

  /// Shape vector.
  const std::vector<int64_t>& shape() const { return shape_; }

  /// Size of dimension `axis` (supports negative axes, Python style).
  int64_t dim(int axis) const;

  /// Total element count.
  int64_t numel() const { return numel_; }

  /// Read-only flat data pointer (null iff numel() == 0).
  const float* Data() const { return data_.get(); }

  /// Mutable flat data pointer (writes are visible to all shallow copies).
  float* MutableData() { return data_.get(); }

  /// Element access by flat index.
  float operator[](int64_t flat_index) const;

  /// Element access by multi-index (size must equal ndim()).
  float At(std::initializer_list<int64_t> indices) const;

  /// Mutable element access by multi-index.
  void Set(std::initializer_list<int64_t> indices, float value);

  /// Flat offset of a multi-index.
  int64_t Offset(std::initializer_list<int64_t> indices) const;

  /// Deep copy.
  Tensor Clone() const;

  /// Returns a tensor with the same data buffer but a new shape. The new
  /// shape must have the same element count. This is a view: data is shared.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// True if shapes are equal and all elements differ by at most `atol`.
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;

  /// Debug string: shape plus (for small tensors) the values.
  std::string ToString() const;

 private:
  struct UninitTag {};
  Tensor(UninitTag, std::vector<int64_t> shape);

  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  /// Pooled buffer; the deleter returns it to `pool::Release`. Null iff
  /// numel_ == 0.
  std::shared_ptr<float> data_;
};

/// Computes the element count of a shape; checks dims are non-negative.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// True iff the two shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

/// Renders a shape as "[a, b, c]".
std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace ppn

#endif  // PPN_TENSOR_TENSOR_H_
