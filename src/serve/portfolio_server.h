#ifndef PPN_SERVE_PORTFOLIO_SERVER_H_
#define PPN_SERVE_PORTFOLIO_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "backtest/costs.h"
#include "exec/thread_pool.h"
#include "market/dataset.h"
#include "ppn/policy_inference.h"
#include "serve/request_queue.h"

/// \file
/// The policy-serving engine: advances many independent user portfolios
/// through one trained policy network. Per tick the server drains admitted
/// requests from the bounded intake queue, gathers each user's normalized
/// price window into ONE batched tensor, runs a single grad-free forward
/// pass for the whole batch (one matmul/conv per layer, amortizing kernel
/// and cache costs across users), scatters the weight rows back, and
/// applies the ψ transaction-cost accounting per user — exactly the
/// backtester's arithmetic, so a served user's wealth trajectory is
/// bit-identical to backtesting that user alone.

namespace ppn::serve {

/// Serving knobs.
struct ServerConfig {
  /// Upper bound on users per forward pass.
  int64_t max_batch = 256;
  /// Intake queue bound (admission control / backpressure, see
  /// `RequestQueue`).
  int64_t queue_capacity = 4096;
  /// Worker threads for the per-user ψ-accounting scatter (0 = inline).
  /// Results are bit-identical at any worker count: each task touches one
  /// user's disjoint state and the forward pass runs on the serving
  /// thread.
  int workers = 0;
  /// Transaction-cost model applied on every rebalance.
  backtest::CostModel costs;
};

/// Everything the server tracks per user. `weights` is the clipped and
/// renormalized portfolio actually held (cash at index 0); `pvm_row` is
/// the raw previous network output, fed back as the policy's recursive
/// input (the serving-side portfolio-vector-memory row — same convention
/// as `core::PolicyStrategy`).
struct UserState {
  std::vector<double> weights;
  std::vector<double> pvm_row;
  double wealth = 1.0;
  int64_t next_period = 0;
  int64_t decisions = 0;
};

/// Batched grad-free inference server over one market panel and one
/// trained policy. Submissions (`SubmitTick` / `TrySubmitTick`) are
/// thread-safe; `ProcessBatch` is the single-consumer serving loop.
class PortfolioServer {
 public:
  /// `panel` and `policy` must outlive the server. The panel must cover
  /// every period the users will be advanced through. Forces the policy
  /// into eval mode.
  PortfolioServer(const market::OhlcPanel* panel, core::PolicyModule* policy,
                  ServerConfig config);

  /// Registers a user starting fully in cash whose first decision period
  /// is `start_period` (must allow a full lookback window). Returns the
  /// user id. Not safe concurrently with `ProcessBatch`.
  int64_t AddUser(int64_t start_period);

  /// Enqueues one tick advance for `user_id`, blocking while the intake
  /// queue is full (backpressure). False only when intake is closed.
  bool SubmitTick(int64_t user_id);

  /// Non-blocking variant: false when the queue is full or closed
  /// (admission control — the caller sheds the request).
  bool TrySubmitTick(int64_t user_id);

  /// One serving round: drains up to `max_batch` admitted requests
  /// (blocking until at least one arrives or intake is closed), runs the
  /// batched forward, applies the cost model per user, records metrics.
  /// Duplicate requests for the same user within a round are deferred to
  /// the next round — a user's ticks are strictly sequential. Returns the
  /// number of decisions made; 0 means intake closed and fully drained.
  int64_t ProcessBatch();

  /// Runs `ProcessBatch` until the queue and holdover are empty. Returns
  /// total decisions made. (Non-blocking: intended for a driver thread
  /// that has already submitted the work.)
  int64_t DrainPending();

  /// Closes intake: later submissions fail, blocked submitters wake.
  void CloseIntake();

  int64_t num_users() const { return static_cast<int64_t>(users_.size()); }
  const UserState& user(int64_t user_id) const;

  /// Total decisions served.
  int64_t decisions() const { return decisions_; }

  /// Exact per-decision latency samples in seconds (submit → state
  /// applied), in completion order. Grows by one per decision; intended
  /// for end-of-run percentile reporting.
  const std::vector<double>& latency_seconds() const { return latencies_; }

 private:
  /// Applies one scattered decision row to one user (ψ accounting).
  void ApplyDecision(UserState* user, int64_t period,
                     const float* action_row);

  const market::OhlcPanel* panel_;
  core::PolicyInference inference_;
  ServerConfig config_;
  RequestQueue queue_;
  exec::ThreadPool accounting_pool_;
  std::vector<UserState> users_;
  /// Requests deferred from the previous round (same-user duplicates).
  std::vector<TickRequest> holdover_;
  std::vector<double> latencies_;
  int64_t decisions_ = 0;
};

}  // namespace ppn::serve

#endif  // PPN_SERVE_PORTFOLIO_SERVER_H_
