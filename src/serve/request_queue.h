#ifndef PPN_SERVE_REQUEST_QUEUE_H_
#define PPN_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

/// \file
/// Bounded multi-producer multi-consumer intake queue for the serving
/// engine. Producers are user-facing threads submitting tick requests;
/// the consumer is the serving loop draining admitted requests in batches.
/// The bound is the admission-control / backpressure knob: `TryPush`
/// rejects when full (load shedding), `Push` blocks until space frees
/// (backpressure).

namespace ppn::serve {

/// One "advance user U by one tick" request. The submit timestamp feeds
/// the decision-latency histogram (queue wait + batch + forward + apply).
struct TickRequest {
  int64_t user_id = 0;
  std::chrono::steady_clock::time_point submitted;
};

/// Bounded FIFO of tick requests. All methods are thread-safe.
class RequestQueue {
 public:
  explicit RequestQueue(int64_t capacity);

  /// Admission control: enqueues unless the queue is full or closed.
  /// Returns false on rejection (the caller sheds or retries later).
  bool TryPush(TickRequest request);

  /// Backpressure: blocks while the queue is full; returns false only if
  /// the queue is (or becomes) closed.
  bool Push(TickRequest request);

  /// Moves up to `max_batch` requests into `out` (appended), blocking
  /// until at least one request is available or the queue is closed.
  /// Returns the number moved; 0 means closed-and-drained.
  int64_t PopBatch(std::vector<TickRequest>* out, int64_t max_batch);

  /// Non-blocking drain of up to `max_batch` requests. Returns the number
  /// moved (0 when currently empty).
  int64_t TryPopBatch(std::vector<TickRequest>* out, int64_t max_batch);

  /// Closes intake: every later push fails, blocked pushers and poppers
  /// wake. Already-admitted requests stay poppable.
  void Close();

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const int64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<TickRequest> queue_;
  bool closed_ = false;
};

}  // namespace ppn::serve

#endif  // PPN_SERVE_REQUEST_QUEUE_H_
