#include "serve/request_queue.h"

#include "common/check.h"

namespace ppn::serve {

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity) {
  PPN_CHECK_GT(capacity, 0);
}

bool RequestQueue::TryPush(TickRequest request) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || static_cast<int64_t>(queue_.size()) >= capacity_) {
      return false;
    }
    queue_.push_back(request);
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::Push(TickRequest request) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return closed_ || static_cast<int64_t>(queue_.size()) < capacity_;
    });
    if (closed_) return false;
    queue_.push_back(request);
  }
  not_empty_.notify_one();
  return true;
}

int64_t RequestQueue::PopBatch(std::vector<TickRequest>* out,
                               int64_t max_batch) {
  PPN_CHECK(out != nullptr);
  PPN_CHECK_GT(max_batch, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  int64_t moved = 0;
  while (moved < max_batch && !queue_.empty()) {
    out->push_back(queue_.front());
    queue_.pop_front();
    ++moved;
  }
  lock.unlock();
  if (moved > 0) not_full_.notify_all();
  return moved;
}

int64_t RequestQueue::TryPopBatch(std::vector<TickRequest>* out,
                                  int64_t max_batch) {
  PPN_CHECK(out != nullptr);
  PPN_CHECK_GT(max_batch, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  int64_t moved = 0;
  while (moved < max_batch && !queue_.empty()) {
    out->push_back(queue_.front());
    queue_.pop_front();
    ++moved;
  }
  lock.unlock();
  if (moved > 0) not_full_.notify_all();
  return moved;
}

void RequestQueue::Close() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

int64_t RequestQueue::size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return static_cast<int64_t>(queue_.size());
}

bool RequestQueue::closed() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace ppn::serve
