#include "serve/portfolio_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/math_utils.h"
#include "obs/stats.h"

namespace ppn::serve {

PortfolioServer::PortfolioServer(const market::OhlcPanel* panel,
                                 core::PolicyModule* policy,
                                 ServerConfig config)
    : panel_(panel),
      inference_(policy),
      config_(config),
      queue_(config.queue_capacity),
      accounting_pool_(config.workers) {
  PPN_CHECK(panel != nullptr);
  PPN_CHECK_GT(config.max_batch, 0);
  PPN_CHECK_GE(config.workers, 0);
  PPN_CHECK_EQ(panel->num_assets(), inference_.config().num_assets);
}

int64_t PortfolioServer::AddUser(int64_t start_period) {
  PPN_CHECK_GE(start_period, inference_.config().window)
      << "user needs " << inference_.config().window
      << " periods of history before its first decision";
  PPN_CHECK_LT(start_period, panel_->num_periods());
  const int64_t m = inference_.config().num_assets;
  UserState user;
  user.weights.assign(m + 1, 0.0);
  user.weights[0] = 1.0;  // Start fully in cash, like the backtester.
  user.pvm_row = user.weights;
  user.next_period = start_period;
  users_.push_back(std::move(user));
  return static_cast<int64_t>(users_.size()) - 1;
}

bool PortfolioServer::SubmitTick(int64_t user_id) {
  PPN_CHECK_GE(user_id, 0);
  PPN_CHECK_LT(user_id, num_users());
  return queue_.Push({user_id, std::chrono::steady_clock::now()});
}

bool PortfolioServer::TrySubmitTick(int64_t user_id) {
  PPN_CHECK_GE(user_id, 0);
  PPN_CHECK_LT(user_id, num_users());
  return queue_.TryPush({user_id, std::chrono::steady_clock::now()});
}

void PortfolioServer::ApplyDecision(UserState* user, int64_t period,
                                    const float* action_row) {
  const int64_t m = inference_.config().num_assets;
  // Identical arithmetic, in identical order, to backtest::RunBacktest —
  // a served user's trajectory must be bit-equal to backtesting it alone.
  std::vector<double> prev_hat = user->weights;
  if (period >= 2) {
    prev_hat = backtest::DriftPortfolio(
        user->weights, market::PriceRelativesWithCash(*panel_, period - 1));
  }
  std::vector<double> action(m + 1);
  for (int64_t i = 0; i <= m; ++i) {
    action[i] = static_cast<double>(action_row[i]);
  }
  user->pvm_row = action;  // Raw output is the recursive policy input.
  PPN_CHECK(IsOnSimplex(action, 1e-4))
      << "serving policy produced a non-simplex portfolio at t=" << period;
  double total = 0.0;
  for (double& v : action) {
    v = std::max(v, 0.0);
    total += v;
  }
  for (double& v : action) v /= total;

  const backtest::NetWealthSolve solve =
      backtest::SolveNetWealthFactorDetailed(prev_hat, action, config_.costs);
  PPN_CHECK(solve.converged)
      << "net-wealth solve failed at t=" << period
      << " (psi_p=" << config_.costs.purchase_rate
      << ", psi_s=" << config_.costs.sale_rate << ")";
  const std::vector<double> relative =
      market::PriceRelativesWithCash(*panel_, period);
  const double gross_return = Dot(action, relative);
  PPN_CHECK_GT(gross_return, 0.0);
  user->wealth *= gross_return * solve.omega;
  user->weights = std::move(action);
  user->next_period = period + 1;
  ++user->decisions;
}

int64_t PortfolioServer::ProcessBatch() {
  // Deferred same-user duplicates from the previous round go first; the
  // queue tops the batch up. Holdover is bounded by max_batch - 1, so the
  // combined batch never exceeds max_batch.
  std::vector<TickRequest> drained = std::move(holdover_);
  holdover_.clear();
  const int64_t room =
      config_.max_batch - static_cast<int64_t>(drained.size());
  if (drained.empty()) {
    if (queue_.PopBatch(&drained, config_.max_batch) == 0) return 0;
  } else if (room > 0) {
    queue_.TryPopBatch(&drained, room);
  }

  // One request per user per forward pass: a user's ticks are strictly
  // sequential (decision t feeds decision t+1 through the PVM row), so
  // duplicates defer to the next round.
  std::vector<TickRequest> batch;
  batch.reserve(drained.size());
  std::vector<char> in_batch(users_.size(), 0);
  for (const TickRequest& request : drained) {
    if (in_batch[request.user_id] != 0) {
      holdover_.push_back(request);
    } else {
      in_batch[request.user_id] = 1;
      batch.push_back(request);
    }
  }
  PPN_CHECK(!batch.empty());

  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t m = inference_.config().num_assets;
  const int64_t k = inference_.config().window;

  // Gather: one [B, m, k, 4] window tensor + one [B, m] PVM tensor.
  Tensor windows =
      Tensor::Uninitialized({b, m, k, market::kNumPriceFields});
  Tensor prev_actions = Tensor::Uninitialized({b, m});
  const int64_t window_numel = m * k * market::kNumPriceFields;
  for (int64_t i = 0; i < b; ++i) {
    const UserState& user = users_[batch[i].user_id];
    const int64_t t = user.next_period;
    PPN_CHECK_LT(t, panel_->num_periods())
        << "user " << batch[i].user_id << " ticked past the end of the feed";
    const Tensor window = market::NormalizedWindow(*panel_, t - 1, k);
    std::memcpy(windows.MutableData() + i * window_numel, window.Data(),
                static_cast<size_t>(window_numel) * sizeof(float));
    for (int64_t a = 0; a < m; ++a) {
      prev_actions.MutableData()[i * m + a] =
          static_cast<float>(user.pvm_row[a + 1]);
    }
  }

  // One forward pass for the whole batch, grad-free.
  Tensor out;
  {
    obs::ScopedTimer forward_timer("serve.forward.seconds");
    out = inference_.DecideBatch(windows, prev_actions);
  }

  // Scatter + ψ accounting, optionally fanned across the worker pool.
  // Tasks touch disjoint user states and the batch rows are fixed before
  // the fan-out, so results are bit-identical at any worker count.
  const float* rows = out.Data();
  for (int64_t i = 0; i < b; ++i) {
    UserState* user = &users_[batch[i].user_id];
    const int64_t period = user->next_period;
    const float* row = rows + i * (m + 1);
    accounting_pool_.Submit(
        [this, user, period, row] { ApplyDecision(user, period, row); });
  }
  accounting_pool_.Wait();

  // Metrics on the serving thread, in request order (deterministic).
  const auto applied = std::chrono::steady_clock::now();
  decisions_ += b;
  for (const TickRequest& request : batch) {
    latencies_.push_back(
        std::chrono::duration<double>(applied - request.submitted).count());
  }
  if (obs::Enabled()) {
    static thread_local obs::Counter& decisions =
        obs::GetCounter("serve.decisions");
    static thread_local obs::Histogram& batch_size =
        obs::GetHistogram("serve.batch.size");
    static thread_local obs::Histogram& latency =
        obs::GetHistogram("serve.decide.latency.seconds");
    decisions.Add(static_cast<double>(b));
    batch_size.Observe(static_cast<double>(b));
    for (size_t i = latencies_.size() - static_cast<size_t>(b);
         i < latencies_.size(); ++i) {
      latency.Observe(latencies_[i]);
    }
  }
  return b;
}

int64_t PortfolioServer::DrainPending() {
  int64_t total = 0;
  while (!holdover_.empty() || queue_.size() > 0) {
    total += ProcessBatch();
  }
  return total;
}

void PortfolioServer::CloseIntake() { queue_.Close(); }

const UserState& PortfolioServer::user(int64_t user_id) const {
  PPN_CHECK_GE(user_id, 0);
  PPN_CHECK_LT(user_id, num_users());
  return users_[static_cast<size_t>(user_id)];
}

}  // namespace ppn::serve
