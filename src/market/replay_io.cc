#include "market/replay_io.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/csv.h"
#include "obs/trace.h"

namespace ppn::market {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Index of `name` in `header`, or -1.
int FindColumn(const std::vector<std::string>& header,
               const std::string& name) {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

bool LoadReplayCsv(const std::string& path, const ReplayCsvOptions& options,
                   MarketDataset* dataset, std::string* error) {
  PPN_CHECK(dataset != nullptr);
  obs::Span span("market.replay.load_csv");

  CsvTable table;
  if (!ReadCsv(path, &table)) {
    return Fail(error, "cannot read numeric CSV at " + path);
  }
  if (table.rows.empty()) {
    return Fail(error, path + " has a header but no data rows");
  }
  const int col_period = FindColumn(table.header, "period");
  const int col_asset = FindColumn(table.header, "asset");
  const int col_open = FindColumn(table.header, "open");
  const int col_high = FindColumn(table.header, "high");
  const int col_low = FindColumn(table.header, "low");
  const int col_close = FindColumn(table.header, "close");
  const std::pair<int, const char*> required[] = {
      {col_period, "period"}, {col_asset, "asset"}, {col_open, "open"},
      {col_high, "high"},     {col_low, "low"},     {col_close, "close"}};
  for (const auto& [column, name] : required) {
    if (column < 0) {
      return Fail(error, path + " is missing required column '" +
                             std::string(name) + "'");
    }
  }

  // First pass: panel shape from the index maxima.
  int64_t num_periods = 0;
  int64_t num_assets = 0;
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const double period_raw = row[col_period];
    const double asset_raw = row[col_asset];
    const int64_t t = static_cast<int64_t>(period_raw);
    const int64_t a = static_cast<int64_t>(asset_raw);
    if (period_raw != static_cast<double>(t) || t < 0 ||
        asset_raw != static_cast<double>(a) || a < 0) {
      return Fail(error, path + " row " + std::to_string(r + 2) +
                             ": period/asset must be non-negative integers");
    }
    num_periods = std::max(num_periods, t + 1);
    num_assets = std::max(num_assets, a + 1);
  }
  if (num_periods < 2) {
    return Fail(error, path + " holds fewer than 2 periods; nothing to trade");
  }

  // Second pass: fill the panel, rejecting duplicate bars.
  OhlcPanel panel(num_periods, num_assets);
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const int64_t t = static_cast<int64_t>(row[col_period]);
    const int64_t a = static_cast<int64_t>(row[col_asset]);
    if (!panel.IsMissing(t, a)) {
      return Fail(error, path + " row " + std::to_string(r + 2) +
                             ": duplicate bar (period " + std::to_string(t) +
                             ", asset " + std::to_string(a) + ")");
    }
    panel.SetPrice(t, a, kOpen, row[col_open]);
    panel.SetPrice(t, a, kHigh, row[col_high]);
    panel.SetPrice(t, a, kLow, row[col_low]);
    panel.SetPrice(t, a, kClose, row[col_close]);
  }

  if (!panel.IsComplete()) {
    if (!options.fill_missing) {
      for (int64_t t = 0; t < num_periods; ++t) {
        for (int64_t a = 0; a < num_assets; ++a) {
          if (panel.IsMissing(t, a)) {
            return Fail(error, path + ": missing bar (period " +
                                   std::to_string(t) + ", asset " +
                                   std::to_string(a) +
                                   ") and fill_missing is off");
          }
        }
      }
    }
    // FlatFillMissing aborts on an all-missing asset; pre-check it here so
    // untrusted data reports instead.
    for (int64_t a = 0; a < num_assets; ++a) {
      bool observed = false;
      for (int64_t t = 0; t < num_periods && !observed; ++t) {
        observed = !panel.IsMissing(t, a);
      }
      if (!observed) {
        return Fail(error, path + ": asset " + std::to_string(a) +
                               " has no observed bars");
      }
    }
    FlatFillMissing(&panel);
  }

  // OHLC sanity, reported with the offending bar named (IsValid alone only
  // says "no").
  for (int64_t t = 0; t < num_periods; ++t) {
    for (int64_t a = 0; a < num_assets; ++a) {
      const double open = panel.Price(t, a, kOpen);
      const double high = panel.Price(t, a, kHigh);
      const double low = panel.Price(t, a, kLow);
      const double close = panel.Price(t, a, kClose);
      if (!std::isfinite(open) || !std::isfinite(high) ||
          !std::isfinite(low) || !std::isfinite(close)) {
        return Fail(error, path + ": non-finite price at (period " +
                               std::to_string(t) + ", asset " +
                               std::to_string(a) + ")");
      }
      if (!(low > 0.0) || low > open || low > close || high < open ||
          high < close) {
        return Fail(error,
                    path + ": invalid OHLC bar at (period " +
                        std::to_string(t) + ", asset " + std::to_string(a) +
                        "): open=" + std::to_string(open) +
                        " high=" + std::to_string(high) +
                        " low=" + std::to_string(low) +
                        " close=" + std::to_string(close));
      }
    }
  }
  PPN_CHECK(panel.IsValid());

  int64_t train_end = options.train_end;
  if (train_end < 0) {
    if (!(options.train_fraction > 0.0 && options.train_fraction < 1.0)) {
      return Fail(error, "train_fraction must be in (0, 1), got " +
                             std::to_string(options.train_fraction));
    }
    train_end = static_cast<int64_t>(options.train_fraction *
                                     static_cast<double>(num_periods));
  }
  if (train_end < 1 || train_end >= num_periods) {
    return Fail(error, "degenerate split: train_end " +
                           std::to_string(train_end) + " of " +
                           std::to_string(num_periods) +
                           " periods leaves an empty train or test range");
  }

  MarketDataset loaded;
  loaded.name = options.name.empty() ? path : options.name;
  loaded.panel = std::move(panel);
  loaded.train_end = train_end;
  loaded.asset_names.reserve(num_assets);
  for (int64_t a = 0; a < num_assets; ++a) {
    loaded.asset_names.push_back("ASSET" + std::to_string(a));
  }
  span.AddArg("periods", static_cast<double>(num_periods));
  span.AddArg("assets", static_cast<double>(num_assets));
  *dataset = std::move(loaded);
  return true;
}

}  // namespace ppn::market
