#include "market/io.h"

#include "common/check.h"
#include "common/csv.h"

namespace ppn::market {

bool SaveDataset(const MarketDataset& dataset,
                 const std::string& path_prefix) {
  PPN_CHECK(dataset.panel.IsComplete()) << "cannot save incomplete panel";
  CsvTable meta;
  meta.header = {"num_periods", "num_assets", "train_end"};
  meta.rows = {{static_cast<double>(dataset.panel.num_periods()),
                static_cast<double>(dataset.panel.num_assets()),
                static_cast<double>(dataset.train_end)}};
  if (!WriteCsv(path_prefix + ".meta.csv", meta)) return false;

  CsvTable prices;
  prices.header = {"period", "asset", "open", "high", "low", "close"};
  prices.rows.reserve(dataset.panel.num_periods() *
                      dataset.panel.num_assets());
  for (int64_t t = 0; t < dataset.panel.num_periods(); ++t) {
    for (int64_t a = 0; a < dataset.panel.num_assets(); ++a) {
      prices.rows.push_back({static_cast<double>(t), static_cast<double>(a),
                             dataset.panel.Price(t, a, kOpen),
                             dataset.panel.Price(t, a, kHigh),
                             dataset.panel.Price(t, a, kLow),
                             dataset.panel.Price(t, a, kClose)});
    }
  }
  return WriteCsv(path_prefix + ".prices.csv", prices);
}

bool LoadDataset(const std::string& path_prefix, MarketDataset* dataset) {
  PPN_CHECK(dataset != nullptr);
  CsvTable meta;
  if (!ReadCsv(path_prefix + ".meta.csv", &meta)) return false;
  if (meta.rows.size() != 1 || meta.header.size() != 3) return false;
  const int64_t num_periods = static_cast<int64_t>(meta.rows[0][0]);
  const int64_t num_assets = static_cast<int64_t>(meta.rows[0][1]);
  const int64_t train_end = static_cast<int64_t>(meta.rows[0][2]);
  if (num_periods <= 0 || num_assets <= 0 || train_end < 0 ||
      train_end > num_periods) {
    return false;
  }

  CsvTable prices;
  if (!ReadCsv(path_prefix + ".prices.csv", &prices)) return false;
  if (prices.header.size() != 6 ||
      static_cast<int64_t>(prices.rows.size()) != num_periods * num_assets) {
    return false;
  }
  MarketDataset loaded;
  loaded.name = path_prefix;
  loaded.panel = OhlcPanel(num_periods, num_assets);
  loaded.train_end = train_end;
  for (const auto& row : prices.rows) {
    const int64_t t = static_cast<int64_t>(row[0]);
    const int64_t a = static_cast<int64_t>(row[1]);
    if (t < 0 || t >= num_periods || a < 0 || a >= num_assets) return false;
    loaded.panel.SetPrice(t, a, kOpen, row[2]);
    loaded.panel.SetPrice(t, a, kHigh, row[3]);
    loaded.panel.SetPrice(t, a, kLow, row[4]);
    loaded.panel.SetPrice(t, a, kClose, row[5]);
  }
  if (!loaded.panel.IsComplete()) return false;
  loaded.asset_names.reserve(num_assets);
  for (int64_t a = 0; a < num_assets; ++a) {
    loaded.asset_names.push_back("ASSET" + std::to_string(a));
  }
  *dataset = std::move(loaded);
  return true;
}

}  // namespace ppn::market
