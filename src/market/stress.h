#ifndef PPN_MARKET_STRESS_H_
#define PPN_MARKET_STRESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "market/dataset.h"

/// \file
/// Stress-scenario library (scenario engine v2): composable packs that
/// post-process any complete `OhlcPanel` into an adversarial market. The
/// synthetic generator plants the paper's benign regimes; these packs plant
/// the tails production systems are judged on — flash crashes, fat-tailed
/// jump clusters, correlation-breakdown crises, liquidity holes that layer
/// volume-dependent slippage onto the ψ cost model, and mid-episode
/// delistings expressed through the panel's tradeability mask (see
/// dataset.h) instead of a PPN_CHECK abort.
///
/// Protocol: packs perturb the TEST range only ([train_end, num_periods)).
/// Strategies train on the benign history and are evaluated on the
/// stressed future — the robustness question the paper's ψ model matters
/// for. All perturbations are multiplicative on every OHLC field of a bar,
/// so intra-bar sanity (`OhlcPanel::IsValid`) is preserved by
/// construction, and everything is deterministic in the scenario seed.

namespace ppn::market {

/// The stress packs, in canonical (application and table) order.
enum class StressPack {
  kFlashCrash,        ///< Sudden severe drop, partial recovery.
  kJumpCluster,       ///< Self-exciting fat-tailed jump shocks.
  kCorrelationBreak,  ///< Common crisis factor: correlations → 1.
  kLiquidityHole,     ///< Volume collapse → slippage on ψ (costs only).
  kDelisting,         ///< Assets stop trading mid-episode (mask).
};

/// All packs in canonical order.
std::vector<StressPack> AllStressPacks();

/// Stable CLI/table name: "flash-crash", "jump-cluster", "corr-break",
/// "liquidity-hole", "delisting".
std::string StressPackName(StressPack pack);

/// Inverse of `StressPackName`; returns false on an unknown name.
bool StressPackFromName(const std::string& name, StressPack* pack);

/// Severity knobs, shared by all packs. Defaults produce clearly stressed
/// but survivable markets at every preset scale.
struct StressConfig {
  // --- Flash crash. ------------------------------------------------------
  /// Peak fractional drop of affected assets at the crash bottom.
  double crash_depth = 0.35;
  /// Fraction of assets hit by the crash (at least one).
  double crash_breadth = 0.75;
  /// Periods over which the crash unwinds toward the recovered level.
  int64_t crash_recovery_periods = 16;
  /// Fraction of the drop that is recovered (0 = permanent, 1 = full V).
  double crash_recovery_fraction = 0.5;

  // --- Fat-tailed jump clusters (Hawkes-style self-excitation). ----------
  /// Baseline per-period probability of a jump event.
  double jump_base_prob = 0.015;
  /// Probability bump added right after an event (clusters).
  double jump_excite = 0.25;
  /// Per-period geometric decay of the excitation.
  double jump_decay = 0.8;
  /// Log-return scale of one jump.
  double jump_scale = 0.04;
  /// Student-t degrees of freedom of the jump size (lower = fatter tails).
  double jump_tail_df = 3.0;

  // --- Correlation breakdown. --------------------------------------------
  /// Fraction of the test range spent in the crisis window.
  double corr_window_fraction = 0.3;
  /// Per-period volatility of the common crisis factor.
  double corr_shock_vol = 0.015;
  /// Per-period drift of the common crisis factor (negative: risk-off).
  double corr_shock_drift = -0.002;

  // --- Liquidity hole. ---------------------------------------------------
  /// Fractional volume drop at the bottom of the hole (0.9 = -90%).
  double hole_depth = 0.9;
  /// Length of the hole in periods.
  int64_t hole_periods = 24;
  /// Slippage exponent: multiplier = (normal/observed volume)^exponent.
  double slippage_exponent = 0.75;
  /// Hard cap on the per-period cost multiplier.
  double max_cost_multiplier = 8.0;

  // --- Delisting. --------------------------------------------------------
  /// Fraction of assets delisted mid-episode (at least one asset, and at
  /// least one asset always survives).
  double delist_fraction = 0.25;

  /// Checks every knob is in range; aborts with a message on violation.
  void Validate() const;
};

/// A stressed market: the perturbed dataset (same name-base, split and
/// asset names as the input, name suffixed with the applied packs) plus
/// the per-period cost multiplier schedule packs like the liquidity hole
/// emit (size num_periods, all 1 where unstressed; feed it to
/// `BacktestConfig::cost_multipliers`).
struct StressedDataset {
  MarketDataset dataset;
  std::vector<double> cost_multipliers;
  std::vector<std::string> applied_packs;
};

/// Applies `packs` to `base` in the given order, each pack drawing from a
/// seed derived from (`seed`, pack position). `base.panel` must be
/// complete and valid with a non-degenerate split. Deterministic:
/// identical inputs produce bit-identical outputs. The result's dataset
/// name is `base.name + "+" + joined pack names` (cells in a robustness
/// sweep are keyed by it).
StressedDataset ApplyStressPacks(const MarketDataset& base,
                                 const std::vector<StressPack>& packs,
                                 uint64_t seed,
                                 const StressConfig& config = {});

/// Convenience: one pack.
StressedDataset ApplyStressPack(const MarketDataset& base, StressPack pack,
                                uint64_t seed,
                                const StressConfig& config = {});

}  // namespace ppn::market

#endif  // PPN_MARKET_STRESS_H_
