#include "market/stress.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::market {

namespace {

/// Span/metric names must be static strings; one literal per pack.
const char* StressPackSpanName(StressPack pack) {
  switch (pack) {
    case StressPack::kFlashCrash:
      return "market.stress.flash-crash";
    case StressPack::kJumpCluster:
      return "market.stress.jump-cluster";
    case StressPack::kCorrelationBreak:
      return "market.stress.corr-break";
    case StressPack::kLiquidityHole:
      return "market.stress.liquidity-hole";
    case StressPack::kDelisting:
      return "market.stress.delisting";
  }
  return "market.stress.unknown";
}

/// Multiplies every OHLC field of one bar by `factor` (> 0), preserving
/// intra-bar ordering and hence `IsValid`.
void ScaleBar(OhlcPanel* panel, int64_t t, int64_t a, double factor) {
  for (int f = 0; f < kNumPriceFields; ++f) {
    const auto field = static_cast<PriceField>(f);
    panel->SetPrice(t, a, field, panel->Price(t, a, field) * factor);
  }
}

/// Student-t sample with `df` degrees of freedom: Normal / sqrt(χ²_df/df),
/// the fat-tailed jump-size distribution.
double StudentT(Rng* rng, double df) {
  const double normal = rng->Normal();
  const double chi2 = 2.0 * rng->Gamma(df / 2.0);
  return normal / std::sqrt(std::max(chi2 / df, 1e-9));
}

void ApplyFlashCrash(OhlcPanel* panel, int64_t t0, const StressConfig& config,
                     Rng* rng) {
  const int64_t n = panel->num_periods();
  const int64_t m = panel->num_assets();
  const int64_t len = n - t0;
  // Crash somewhere in the middle half of the test range, so there is
  // history before it and aftermath behind it.
  const int64_t crash_t = t0 + len / 4 + rng->UniformInt(std::max<int64_t>(
                                             1, len / 2));
  std::vector<bool> affected(m, false);
  int64_t num_affected = 0;
  for (int64_t a = 0; a < m; ++a) {
    if (rng->Bernoulli(config.crash_breadth)) {
      affected[a] = true;
      ++num_affected;
    }
  }
  if (num_affected == 0) affected[rng->UniformInt(m)] = true;
  for (int64_t a = 0; a < m; ++a) {
    if (!affected[a]) continue;
    // Per-asset severity jitter, capped below a total wipeout.
    const double depth =
        std::min(0.9, config.crash_depth * rng->Uniform(0.8, 1.2));
    const double bottom = 1.0 - depth;
    const double recovered =
        1.0 - depth * (1.0 - config.crash_recovery_fraction);
    for (int64_t t = crash_t; t < n; ++t) {
      const int64_t since = t - crash_t;
      double factor;
      if (since == 0) {
        factor = bottom;
      } else if (since < config.crash_recovery_periods) {
        // Geometric climb from the bottom toward the recovered level.
        const double frac = static_cast<double>(since) /
                            static_cast<double>(config.crash_recovery_periods);
        factor = std::exp(std::log(bottom) +
                          frac * (std::log(recovered) - std::log(bottom)));
      } else {
        factor = recovered;
      }
      ScaleBar(panel, t, a, factor);
    }
  }
}

void ApplyJumpCluster(OhlcPanel* panel, int64_t t0, const StressConfig& config,
                      Rng* rng) {
  const int64_t n = panel->num_periods();
  const int64_t m = panel->num_assets();
  // Self-exciting (Hawkes-style) event process on the test range; each
  // event applies a permanent fat-tailed log-price shock, so shocks are
  // accumulated per asset and applied as a running factor.
  std::vector<double> cumulative(m, 0.0);
  double excitation = 0.0;
  for (int64_t t = t0; t < n; ++t) {
    const double p = std::min(0.9, config.jump_base_prob + excitation);
    if (rng->Bernoulli(p)) {
      const double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
      for (int64_t a = 0; a < m; ++a) {
        // Common sign (market-wide gap), per-asset fat-tailed magnitude.
        const double magnitude =
            config.jump_scale * std::fabs(StudentT(rng, config.jump_tail_df));
        cumulative[a] += sign * std::min(magnitude, 0.4);
      }
      excitation = config.jump_excite;
    } else {
      excitation *= config.jump_decay;
    }
    for (int64_t a = 0; a < m; ++a) {
      if (cumulative[a] != 0.0) ScaleBar(panel, t, a, std::exp(cumulative[a]));
    }
  }
}

void ApplyCorrelationBreak(OhlcPanel* panel, int64_t t0,
                           const StressConfig& config, Rng* rng) {
  const int64_t n = panel->num_periods();
  const int64_t m = panel->num_assets();
  const int64_t len = n - t0;
  const int64_t window = std::max<int64_t>(
      4, static_cast<int64_t>(config.corr_window_fraction * len));
  const int64_t start =
      t0 + rng->UniformInt(std::max<int64_t>(1, len - window + 1));
  const int64_t end = std::min(n, start + window);
  // One common crisis factor hits every asset identically inside the
  // window: pairwise correlations spike toward 1 (diversification fails)
  // while the drift makes it a risk-off episode. The shock is a permanent
  // log-price shift accumulated forward like any return perturbation.
  double cumulative = 0.0;
  for (int64_t t = start; t < n; ++t) {
    if (t < end) {
      cumulative += rng->Normal(config.corr_shock_drift, config.corr_shock_vol);
    }
    if (cumulative != 0.0) {
      const double factor = std::exp(cumulative);
      for (int64_t a = 0; a < m; ++a) ScaleBar(panel, t, a, factor);
    }
  }
}

void ApplyLiquidityHole(std::vector<double>* cost_multipliers, int64_t t0,
                        int64_t n, const StressConfig& config, Rng* rng) {
  const int64_t len = n - t0;
  const int64_t hole = std::min(config.hole_periods, len);
  const int64_t start =
      t0 + rng->UniformInt(std::max<int64_t>(1, len - hole + 1));
  for (int64_t j = 0; j < hole; ++j) {
    // V-shaped volume collapse: down to (1 - depth) of normal volume at
    // the middle of the hole, back to normal at the edges.
    const double shape =
        hole > 1 ? 1.0 - std::fabs(2.0 * static_cast<double>(j) /
                                       static_cast<double>(hole - 1) -
                                   1.0)
                 : 1.0;
    const double volume =
        std::max(0.01, (1.0 - config.hole_depth * shape) *
                           std::exp(rng->Normal(0.0, 0.05)));
    // Slippage grows as a power of the volume shortfall, layered onto ψ.
    const double multiplier = std::min(
        config.max_cost_multiplier,
        std::pow(1.0 / volume, config.slippage_exponent));
    (*cost_multipliers)[start + j] *= std::max(1.0, multiplier);
  }
}

void ApplyDelisting(OhlcPanel* panel, int64_t t0, const StressConfig& config,
                    Rng* rng) {
  const int64_t n = panel->num_periods();
  const int64_t m = panel->num_assets();
  const int64_t len = n - t0;
  // At least one asset delists, at least one always survives.
  const int64_t count = std::clamp<int64_t>(
      static_cast<int64_t>(std::lround(config.delist_fraction * m)), 1, m - 1);
  const std::vector<int64_t> order = rng->Permutation(m);
  for (int64_t i = 0; i < count; ++i) {
    const int64_t a = order[i];
    const int64_t delist_t =
        t0 + len / 4 + rng->UniformInt(std::max<int64_t>(1, len / 2));
    // The last trade freezes the asset's value; from the delist period on
    // the quotes are flat at that close and the bar is non-tradeable. The
    // backtester force-liquidates any held position at the frozen price.
    const double last_close = panel->Close(delist_t - 1, a);
    for (int64_t t = delist_t; t < n; ++t) {
      for (int f = 0; f < kNumPriceFields; ++f) {
        panel->SetPrice(t, a, static_cast<PriceField>(f), last_close);
      }
      panel->SetTradeable(t, a, false);
    }
  }
}

}  // namespace

void StressConfig::Validate() const {
  PPN_CHECK(crash_depth > 0.0 && crash_depth < 0.95)
      << "crash_depth out of (0, 0.95): " << crash_depth;
  PPN_CHECK(crash_breadth > 0.0 && crash_breadth <= 1.0);
  PPN_CHECK_GE(crash_recovery_periods, 1);
  PPN_CHECK(crash_recovery_fraction >= 0.0 && crash_recovery_fraction <= 1.0);
  PPN_CHECK(jump_base_prob >= 0.0 && jump_base_prob < 1.0);
  PPN_CHECK(jump_excite >= 0.0 && jump_excite < 1.0);
  PPN_CHECK(jump_decay >= 0.0 && jump_decay < 1.0);
  PPN_CHECK_GT(jump_scale, 0.0);
  PPN_CHECK_GT(jump_tail_df, 1.0);
  PPN_CHECK(corr_window_fraction > 0.0 && corr_window_fraction <= 1.0);
  PPN_CHECK_GE(corr_shock_vol, 0.0);
  PPN_CHECK(hole_depth > 0.0 && hole_depth < 1.0);
  PPN_CHECK_GE(hole_periods, 1);
  PPN_CHECK_GT(slippage_exponent, 0.0);
  PPN_CHECK_GE(max_cost_multiplier, 1.0);
  PPN_CHECK(delist_fraction > 0.0 && delist_fraction < 1.0);
}

std::vector<StressPack> AllStressPacks() {
  return {StressPack::kFlashCrash, StressPack::kJumpCluster,
          StressPack::kCorrelationBreak, StressPack::kLiquidityHole,
          StressPack::kDelisting};
}

std::string StressPackName(StressPack pack) {
  switch (pack) {
    case StressPack::kFlashCrash:
      return "flash-crash";
    case StressPack::kJumpCluster:
      return "jump-cluster";
    case StressPack::kCorrelationBreak:
      return "corr-break";
    case StressPack::kLiquidityHole:
      return "liquidity-hole";
    case StressPack::kDelisting:
      return "delisting";
  }
  return "unknown";
}

bool StressPackFromName(const std::string& name, StressPack* pack) {
  for (const StressPack candidate : AllStressPacks()) {
    if (StressPackName(candidate) == name) {
      *pack = candidate;
      return true;
    }
  }
  return false;
}

StressedDataset ApplyStressPacks(const MarketDataset& base,
                                 const std::vector<StressPack>& packs,
                                 uint64_t seed, const StressConfig& config) {
  config.Validate();
  PPN_CHECK(base.panel.IsComplete()) << "stress packs need a complete panel";
  PPN_CHECK(base.panel.IsValid()) << "stress packs need a valid panel";
  const int64_t n = base.panel.num_periods();
  PPN_CHECK(base.train_end >= 1 && base.train_end < n)
      << "stress packs need a non-degenerate train/test split, got train_end="
      << base.train_end << " of " << n << " periods";
  const int64_t t0 = base.train_end;
  PPN_CHECK_GE(n - t0, 8) << "test range too short to stress (" << n - t0
                          << " periods)";

  StressedDataset stressed;
  stressed.dataset = base;
  stressed.cost_multipliers.assign(static_cast<size_t>(n), 1.0);

  std::string name = base.name;
  for (size_t i = 0; i < packs.size(); ++i) {
    const StressPack pack = packs[i];
    obs::Span span(StressPackSpanName(pack));
    span.AddArg("test_periods", static_cast<double>(n - t0));
    // Each pack draws from its own child stream, keyed by the pack and its
    // position, so composition order matters but scheduling never does.
    Rng rng = Rng(seed).Split(static_cast<uint64_t>(pack) * 1000003ull + i + 1);
    switch (pack) {
      case StressPack::kFlashCrash:
        ApplyFlashCrash(&stressed.dataset.panel, t0, config, &rng);
        break;
      case StressPack::kJumpCluster:
        ApplyJumpCluster(&stressed.dataset.panel, t0, config, &rng);
        break;
      case StressPack::kCorrelationBreak:
        ApplyCorrelationBreak(&stressed.dataset.panel, t0, config, &rng);
        break;
      case StressPack::kLiquidityHole:
        ApplyLiquidityHole(&stressed.cost_multipliers, t0, n, config, &rng);
        break;
      case StressPack::kDelisting:
        ApplyDelisting(&stressed.dataset.panel, t0, config, &rng);
        break;
    }
    stressed.applied_packs.push_back(StressPackName(pack));
    name += "+" + StressPackName(pack);
    if (obs::Enabled()) {
      obs::GetCounter("market.stress.packs_applied").Add(1.0);
    }
  }
  stressed.dataset.name = name;
  PPN_CHECK(stressed.dataset.panel.IsValid())
      << "stress composition produced an invalid panel (" << name << ")";
  return stressed;
}

StressedDataset ApplyStressPack(const MarketDataset& base, StressPack pack,
                                uint64_t seed, const StressConfig& config) {
  return ApplyStressPacks(base, {pack}, seed, config);
}

}  // namespace ppn::market
